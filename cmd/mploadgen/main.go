// Command mploadgen drives a running mpserved with a reproducible query
// load — closed-loop (fixed concurrency) or open-loop (fixed arrival
// rate) — and writes the latency percentiles in the BENCH_serve.json
// schema, optionally failing against a checked-in baseline.
//
// Usage:
//
//	mpserved -addr :8931 &
//	mploadgen -url http://localhost:8931 -n 1000000 -workers 64 \
//	          -env med-cube -hot 0.5 -out BENCH_serve.json
//
// Every query's endpoints are sampled collision-free client-side, so an
// unsolved query means the roadmap genuinely lacks coverage, not that
// the generator asked for a config inside an obstacle. A -hot fraction
// of queries draws from a small fixed set of (start, goal) pairs to
// exercise the server's path cache; the rest draw from a large cold
// pool. The load is a pure function of -seed, independent of worker
// scheduling.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"parmp"
	"parmp/internal/rng"
	"parmp/internal/serve"
	"parmp/internal/servebench"
)

type pair struct {
	start, goal []float64
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mploadgen: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	url := flag.String("url", "http://localhost:8931", "mpserved base URL")
	n := flag.Int("n", 1_000_000, "total queries to issue")
	workers := flag.Int("workers", 64, "concurrent client connections")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in queries/sec (0 = closed loop: workers fire back-to-back)")
	envName := flag.String("env", "med-cube", "benchmark environment to query")
	tenants := flag.Int("tenants", 1, "tenant mix: spread queries over this many tenants (distinct seeds, same environment)")
	procs := flag.Int("procs", 8, "spec: virtual processors per tenant")
	regions := flag.Int("regions", 0, "spec: regions per tenant (0 = engine default)")
	samples := flag.Int("samples", 16, "spec: sampling attempts per region")
	rounds := flag.Int("rounds", 0, "spec: growth rounds per tenant (0 = server default)")
	portfolio := flag.Int("portfolio", 0, "spec: race this many derived-seed configurations per tenant (0 = single engine)")
	restarts := flag.String("restarts", "", "spec: portfolio restart schedule (luby, none; empty = server default)")
	hot := flag.Float64("hot", 0.5, "fraction of queries drawn from the hot pair set")
	hotPairs := flag.Int("hot-pairs", 64, "size of the hot (start, goal) set")
	coldPairs := flag.Int("cold-pairs", 4096, "size of the cold pair pool")
	k := flag.Int("k", 0, "attachment count per query (0 = server default)")
	seed := flag.Uint64("seed", 1, "random seed for the query load")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	warm := flag.Bool("wait-grown", true, "issue one warm-up query per tenant and wait for background growth before the measured run")
	warmTimeout := flag.Duration("warm-timeout", 5*time.Minute, "how long to wait for tenants to finish growing")
	out := flag.String("out", "BENCH_serve.json", "where to write the result (\"-\" = stdout)")
	baseline := flag.String("baseline", "", "baseline BENCH_serve.json to gate p99 against")
	maxRegress := flag.Float64("max-regress", 0.5, "fail when client p99 exceeds the baseline's by more than this fraction (negative = off)")
	maxErrorRate := flag.Float64("max-error-rate", 0.001, "fail when the non-2xx rate exceeds this (negative = off)")
	mutateEvery := flag.Int("mutate-every", 0, "roughly every N queries, drop an obstacle onto the hot path via /v1/env/mutate, probe for stale cached answers, then restore the world; the run fails on any stale path (0 = off)")
	flag.Parse()

	if *n <= 0 || *workers <= 0 || *tenants <= 0 || *hotPairs <= 0 || *coldPairs <= 0 {
		fatalf("-n, -workers, -tenants, -hot-pairs and -cold-pairs must be positive")
	}
	e := parmp.EnvironmentByName(*envName)
	if e == nil {
		fatalf("unknown environment %q", *envName)
	}
	space := parmp.NewPointSpace(e)

	// The query load: hot pairs repeat (cache fodder), cold pairs spread
	// over the environment. All endpoints are collision-free.
	sample := func(r *rng.Stream) []float64 {
		q, ok := space.SampleFreeIn(space.Bounds, r, 256, nil)
		if !ok {
			fatalf("could not sample a free configuration in %s", *envName)
		}
		return q
	}
	r := rng.Derive(*seed, 0x10adbeef)
	hotSet := make([]pair, *hotPairs)
	for i := range hotSet {
		hotSet[i] = pair{sample(r), sample(r)}
	}
	coldSet := make([]pair, *coldPairs)
	for i := range coldSet {
		coldSet[i] = pair{sample(r), sample(r)}
	}
	specs := make([]serve.Spec, *tenants)
	for t := range specs {
		specs[t] = serve.Spec{
			Env:     *envName,
			Procs:   *procs,
			Regions: *regions,
			Samples: *samples,
			Seed:    *seed + uint64(t),
			Rounds:  *rounds,
		}
		if *portfolio > 0 {
			// A portfolio tenant needs its race query: the corner-to-corner
			// pair the benchmark environments are built around.
			specs[t].Portfolio = *portfolio
			specs[t].Restarts = *restarts
			specs[t].Root = cornerConfig(space, 0.05)
			specs[t].Goal = cornerConfig(space, 0.95)
		}
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        2 * *workers,
			MaxIdleConnsPerHost: 2 * *workers,
		},
	}
	waitHealthy(client, *url)
	if *warm {
		warmTenants(client, *url, specs, hotSet[0], *warmTimeout)
	}

	// Measured run. Per-query state is preallocated so workers only
	// write disjoint indices; the only shared mutable state is the
	// dispatch counter and the error tallies.
	latUS := make([]float64, *n)
	serveUS := make([]float64, *n)
	status := make([]int16, *n)
	cacheHit := make([]bool, *n)
	batchSize := make([]int32, *n)
	var solved, errors, rejected atomic.Int64
	var next atomic.Int64
	interval := time.Duration(0)
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}

	fmt.Fprintf(os.Stderr, "mploadgen: %d queries, %d workers, %d tenant(s), hot=%.0f%%",
		*n, *workers, *tenants, 100**hot)
	if interval > 0 {
		fmt.Fprintf(os.Stderr, ", open loop at %.0f qps", *rate)
	}
	fmt.Fprintln(os.Stderr)

	t0 := time.Now()
	var wg sync.WaitGroup
	var mutations, stalePaths atomic.Int64
	var mutWG sync.WaitGroup
	if *mutateEvery > 0 {
		mutWG.Add(1)
		go func() {
			defer mutWG.Done()
			runMutator(client, *url, specs[0], hotSet[0], len(e.Obstacles), space,
				*mutateEvery, int64(*n), &next, &mutations, &stalePaths)
		}()
	}
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				if interval > 0 {
					time.Sleep(time.Until(t0.Add(time.Duration(i) * interval)))
				}
				// Pair choice is a pure function of (seed, i): the load
				// replays identically whatever the worker count.
				qr := rng.Derive(*seed, uint64(i))
				var p pair
				if qr.Float64() < *hot {
					p = hotSet[qr.Intn(len(hotSet))]
				} else {
					p = coldSet[qr.Intn(len(coldSet))]
				}
				req := serve.QueryRequest{Spec: specs[i%len(specs)], Start: p.start, Goal: p.goal, K: *k}
				body, err := json.Marshal(req)
				if err != nil {
					fatalf("marshal: %v", err)
				}
				q0 := time.Now()
				resp, err := client.Post(*url+"/v1/query", "application/json", bytes.NewReader(body))
				latUS[i] = float64(time.Since(q0).Nanoseconds()) / 1e3
				if err != nil {
					status[i] = -1
					errors.Add(1)
					continue
				}
				var ans serve.QueryResponse
				decErr := json.NewDecoder(resp.Body).Decode(&ans)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				status[i] = int16(resp.StatusCode)
				switch {
				case resp.StatusCode == http.StatusOK && decErr == nil:
					serveUS[i] = ans.ServeUS
					cacheHit[i] = ans.CacheHit
					batchSize[i] = int32(ans.BatchSize)
					if ans.OK {
						solved.Add(1)
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected.Add(1)
					errors.Add(1)
				default:
					errors.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	mutWG.Wait()

	// Summarize: client latency over every issued query, server-side
	// percentiles over the 200s, cache-hit percentiles over the hits.
	var serveOK, hitUS []float64
	var hits, batchedN, batchSum int64
	for i := 0; i < *n; i++ {
		if status[i] != http.StatusOK {
			continue
		}
		serveOK = append(serveOK, serveUS[i])
		if cacheHit[i] {
			hits++
			hitUS = append(hitUS, serveUS[i])
		} else if batchSize[i] > 0 {
			batchedN++
			batchSum += int64(batchSize[i])
		}
	}
	res := servebench.Result{
		Source:      "mploadgen",
		Env:         *envName,
		Mode:        "closed",
		Workers:     *workers,
		Queries:     int64(*n),
		Solved:      solved.Load(),
		Errors:      errors.Load(),
		Rejected:    rejected.Load(),
		DurationSec: elapsed.Seconds(),
		Throughput:  float64(*n) / elapsed.Seconds(),
		Latency:     servebench.Compute(latUS),
	}
	res.ErrorRate = float64(res.Errors) / float64(res.Queries)
	if interval > 0 {
		res.Mode, res.RateQPS = "open", *rate
	}
	if len(serveOK) > 0 {
		p := servebench.Compute(serveOK)
		res.Serve = &p
		res.CacheHitRate = float64(hits) / float64(len(serveOK))
	}
	if len(hitUS) > 0 {
		p := servebench.Compute(hitUS)
		res.CacheHit = &p
	}
	if batchedN > 0 {
		res.BatchMean = float64(batchSum) / float64(batchedN)
	}
	res.Mutations = mutations.Load()
	res.StalePaths = stalePaths.Load()

	fmt.Fprintf(os.Stderr, "mploadgen: %d queries in %v (%.0f qps), %d solved, %d errors (%d rejected)\n",
		res.Queries, elapsed.Round(time.Millisecond), res.Throughput, res.Solved, res.Errors, res.Rejected)
	fmt.Fprintf(os.Stderr, "  client latency: p50=%.0fµs p99=%.0fµs p999=%.0fµs max=%.0fµs\n",
		res.Latency.P50, res.Latency.P99, res.Latency.P999, res.Latency.Max)
	if res.Serve != nil {
		fmt.Fprintf(os.Stderr, "  server  time  : p50=%.0fµs p99=%.0fµs p999=%.0fµs cache-hit-rate=%.1f%% batch-mean=%.2f\n",
			res.Serve.P50, res.Serve.P99, res.Serve.P999, 100*res.CacheHitRate, res.BatchMean)
	}
	if res.CacheHit != nil {
		fmt.Fprintf(os.Stderr, "  cache hits    : p50=%.0fµs p99=%.0fµs\n", res.CacheHit.P50, res.CacheHit.P99)
	}
	if *mutateEvery > 0 {
		fmt.Fprintf(os.Stderr, "  mutations     : %d applied, %d stale paths\n", res.Mutations, res.StalePaths)
	}

	if err := servebench.WriteFile(*out, res); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	gate := servebench.Gate{MaxErrorRate: *maxErrorRate, MaxRegress: *maxRegress}
	var base *servebench.Result
	if *baseline != "" {
		b, err := servebench.Load(*baseline)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		base = &b
	}
	if err := gate.Check(res, base); err != nil {
		fmt.Fprintln(os.Stderr, "mploadgen:", err)
		os.Exit(1)
	}
	if res.StalePaths > 0 {
		fmt.Fprintf(os.Stderr, "mploadgen: %d stale path(s) served after a committed mutation — cache invalidation is broken\n", res.StalePaths)
		os.Exit(1)
	}
}

// runMutator periodically walls off the hot pair's current path with a
// sphere through POST /v1/env/mutate, probes the pair for a stale cached
// answer (a returned path through the sphere can only be pre-mutation),
// and restores the world by removing the sphere. The cadence tracks the
// dispatch counter: one mutation cycle per `every` dispatched queries.
func runMutator(client *http.Client, url string, spec serve.Spec, probe pair, removeIdx int,
	space *parmp.Space, every int, n int64, next *atomic.Int64, mutations, stale *atomic.Int64) {

	// Sphere radius: 4% of the shortest workspace span — big enough to
	// catch the path's midpoint, small enough to leave detours open.
	radius := space.Bounds.Hi[0] - space.Bounds.Lo[0]
	for d := 1; d < space.Dim(); d++ {
		if span := space.Bounds.Hi[d] - space.Bounds.Lo[d]; span < radius {
			radius = span
		}
	}
	radius *= 0.04

	last := int64(0)
	for {
		cur := next.Load()
		if cur >= n {
			return
		}
		if cur-last < int64(every) {
			time.Sleep(time.Millisecond)
			continue
		}
		last = cur
		// Find where the hot path currently runs; skip the cycle when the
		// pair is unsolved (nothing cacheable to invalidate).
		path, ok := queryPath(client, url, spec, probe)
		if !ok || len(path) < 3 {
			continue
		}
		center := path[len(path)/2]
		add := serve.MutationSpec{Op: "add", Sphere: &serve.SphereSpec{Center: center, Radius: radius}}
		if !postMutate(client, url, spec, add) {
			continue // e.g. midpoint out of bounds after clamping; try next cycle
		}
		mutations.Add(1)
		// This probe was issued strictly after the mutation committed: a
		// returned path through the sphere can only be a stale cache entry.
		if p2, ok := queryPath(client, url, spec, probe); ok && pathIntersectsSphere(p2, center, radius) {
			stale.Add(1)
		}
		if postMutate(client, url, spec, serve.MutationSpec{Op: "remove", Index: removeIdx}) {
			mutations.Add(1)
		} else {
			fatalf("mutator could not restore the world (remove index %d failed)", removeIdx)
		}
	}
}

// queryPath answers one query, returning the path and whether it solved.
func queryPath(client *http.Client, url string, spec serve.Spec, p pair) ([][]float64, bool) {
	body, _ := json.Marshal(serve.QueryRequest{Spec: spec, Start: p.start, Goal: p.goal})
	resp, err := client.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, false
	}
	var ans serve.QueryResponse
	decErr := json.NewDecoder(resp.Body).Decode(&ans)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || decErr != nil {
		return nil, false
	}
	return ans.Path, ans.OK
}

// postMutate issues one mutation, reporting whether it committed.
func postMutate(client *http.Client, url string, spec serve.Spec, m serve.MutationSpec) bool {
	body, _ := json.Marshal(serve.MutateRequest{Spec: spec, Mutations: []serve.MutationSpec{m}})
	resp, err := client.Post(url+"/v1/env/mutate", "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// pathIntersectsSphere reports whether any path segment passes through
// the sphere, by dense sampling.
func pathIntersectsSphere(path [][]float64, center []float64, radius float64) bool {
	const steps = 64
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		for s := 0; s <= steps; s++ {
			t := float64(s) / steps
			var d2 float64
			for d := range center {
				x := a[d] + t*(b[d]-a[d]) - center[d]
				d2 += x * x
			}
			if d2 < radius*radius {
				return true
			}
		}
	}
	return false
}

// cornerConfig returns the configuration at fraction f of every bound's
// span — the benchmark corner query endpoints.
func cornerConfig(space *parmp.Space, f float64) []float64 {
	q := make([]float64, space.Dim())
	for d := range q {
		lo, hi := space.Bounds.Lo[d], space.Bounds.Hi[d]
		q[d] = lo + f*(hi-lo)
	}
	return q
}

// waitHealthy polls /healthz until the server answers.
func waitHealthy(client *http.Client, url string) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			fatalf("server at %s never became healthy: %v", url, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// warmTenants issues one query per tenant (building each engine), then
// polls /v1/stats until every tenant reports grow_done, so the measured
// run sees steady-state roadmaps.
func warmTenants(client *http.Client, url string, specs []serve.Spec, p pair, timeout time.Duration) {
	for _, sp := range specs {
		body, _ := json.Marshal(serve.QueryRequest{Spec: sp, Start: p.start, Goal: p.goal})
		resp, err := client.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			fatalf("warm-up query: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			fatalf("warm-up query: status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(url + "/v1/stats")
		if err != nil {
			fatalf("stats: %v", err)
		}
		var st serve.StatsResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			fatalf("stats: %v", err)
		}
		done := len(st.Tenants) >= len(specs)
		for _, t := range st.Tenants {
			if !t.GrowDone {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			fatalf("tenants did not finish growing within %v", timeout)
		}
		time.Sleep(250 * time.Millisecond)
	}
}
