// Command mpserved serves motion-planning queries over HTTP: a
// multi-tenant pool of parmp engines behind POST /v1/query and
// POST /v1/batch, with background roadmap growth, server-side request
// coalescing, a per-tenant path cache and bounded admission queues.
//
// Usage:
//
//	mpserved -addr :8931 -rounds 3 -batch-max 32
//
// Drive it with cmd/mploadgen; GET /v1/stats reports per-tenant
// counters and GET /healthz liveness.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parmp/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8931", "listen address")
	maxTenants := flag.Int("max-tenants", 8, "engine pool capacity; least-recently-used tenants are evicted beyond it")
	rounds := flag.Int("rounds", 3, "default background growth rounds for tenants whose spec does not set rounds")
	growInterval := flag.Duration("grow-interval", 0, "pause between background growth rounds (0 = back-to-back)")
	queue := flag.Int("queue", 256, "per-tenant admission queue depth; a full queue answers 429")
	batchWorkers := flag.Int("batch-workers", 0, "batch workers per tenant (0 = GOMAXPROCS)")
	batchMax := flag.Int("batch-max", 32, "max queries coalesced into one batch (1 = no batching)")
	batchWindow := flag.Duration("batch-window", 200*time.Microsecond, "how long a batch waits for stragglers (0 = only already-queued requests join)")
	cache := flag.Int("cache", 4096, "path cache entries per tenant (0 = disable)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request budget, admission queueing included")
	k := flag.Int("k", 8, "default attachment count for queries that omit k")
	flag.Parse()

	cfg := serve.Config{
		MaxTenants:     *maxTenants,
		QueueDepth:     *queue,
		BatchWorkers:   *batchWorkers,
		BatchMax:       *batchMax,
		BatchWindow:    *batchWindow,
		CacheSize:      *cache,
		GrowRounds:     *rounds,
		GrowInterval:   *growInterval,
		RequestTimeout: *timeout,
		DefaultK:       *k,
	}
	// The flags use 0 for "off" (natural on a command line); the config
	// uses negative for "off" so that its zero value means "default".
	if *batchWindow == 0 {
		cfg.BatchWindow = -1
	}
	if *cache == 0 {
		cfg.CacheSize = -1
	}

	srv := serve.New(cfg)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "mpserved: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "mpserved: shutdown:", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "mpserved: listening on %s (rounds=%d batch-max=%d queue=%d cache=%d)\n",
		*addr, *rounds, *batchMax, *queue, *cache)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mpserved:", err)
		os.Exit(1)
	}
	<-done
	srv.Close()
}
