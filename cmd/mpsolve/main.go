// Command mpsolve plans a motion query in one of the benchmark
// environments with a parallel sampling-based planner (PRM, RRT or
// RRT-Connect) and prints the resulting path.
//
// Usage:
//
//	mpsolve -env med-cube -strategy repartition -procs 16 \
//	        -start 0.05,0.05,0.05 -goal 0.95,0.95,0.95
//	mpsolve -env med-cube -planner rrtconnect -rounds 3
//
// The planner runs on the simulated distributed machine; the printed
// breakdown reports virtual-time per phase and the load balance achieved.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parmp"
	"parmp/internal/cspace"
	"parmp/internal/prm"
	"parmp/internal/rng"
	"parmp/internal/servebench"
)

func parseConfig(s string) (parmp.Config, error) {
	parts := strings.Split(s, ",")
	q := make(parmp.Config, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad coordinate %q: %w", p, err)
		}
		q[i] = v
	}
	return q, nil
}

func main() {
	envName := flag.String("env", "med-cube", "environment ("+strings.Join(parmp.EnvironmentNames(), ", ")+")")
	envFile := flag.String("envfile", "", "load the environment from a file in the env text format instead")
	planner := flag.String("planner", "prm", "planner ("+strings.Join(parmp.PlannerNames(), ", ")+")")
	strategy := flag.String("strategy", "repartition", "load balancing (none, repartition, hybrid, rand-8, diffusive)")
	procs := flag.Int("procs", 16, "virtual processors")
	regions := flag.Int("regions", 0, "regions (default 8x procs)")
	samples := flag.Int("samples", 16, "sampling attempts per region (PRM) or tree nodes per region (RRT, RRT-Connect)")
	radius := flag.Float64("radius", 0, "radial region reach for the tree planners (0 = the environment diagonal, so corner-to-corner queries are reachable)")
	startStr := flag.String("start", "0.05,0.05,0.05", "start configuration (comma-separated)")
	goalStr := flag.String("goal", "0.95,0.95,0.95", "goal configuration")
	seed := flag.Uint64("seed", 1, "random seed")
	samplerName := flag.String("sampler", "uniform", "sampling strategy (uniform, gaussian, bridge, mixed)")
	shortcut := flag.Int("shortcut", 0, "post-process the path with this many shortcut iterations")
	rounds := flag.Int("rounds", 1, "growth rounds (each adds -samples attempts per region)")
	nPortfolio := flag.Int("portfolio", 0, "race this many derived-seed configurations to first solution instead of growing one engine (0 = off)")
	restarts := flag.String("restarts", "luby", "portfolio restart schedule (luby, none)")
	maxWaves := flag.Int("max-waves", 256, "portfolio wave budget before giving up (0 = race until -timeout)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for growth; on expiry the committed rounds still serve (0 = none)")
	queries := flag.Int("queries", 0, "serve mode: answer this many random queries against the final snapshot and report latency percentiles")
	queriesJSON := flag.String("queries-json", "", "write the serve-mode result in the BENCH_serve.json schema to this path (\"-\" = stdout), comparable with mploadgen output")
	mutate := flag.String("mutate", "", "dynamic-world mode: play this scripted scenario's mutations after growth, repairing the roadmap incrementally each step ("+strings.Join(parmp.DynamicScenarioNames(), ", ")+"); overrides -env")
	mutateSteps := flag.Int("mutate-steps", 4, "with -mutate, scripted mutation steps to play")
	flag.Parse()

	var mutateScript func(k int) []parmp.Mutation
	var e *parmp.Environment
	if *mutate != "" {
		if *nPortfolio > 0 {
			fmt.Fprintln(os.Stderr, "mpsolve: -mutate does not combine with -portfolio")
			os.Exit(2)
		}
		sc, ok := parmp.DynamicScenarioByName(*mutate)
		if !ok {
			fmt.Fprintf(os.Stderr, "mpsolve: unknown scenario %q (want %s)\n",
				*mutate, strings.Join(parmp.DynamicScenarioNames(), ", "))
			os.Exit(2)
		}
		e, mutateScript = sc.Build()
	} else if *envFile != "" {
		f, err := os.Open(*envFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpsolve:", err)
			os.Exit(2)
		}
		e, err = parmp.ParseEnvironment(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpsolve:", err)
			os.Exit(2)
		}
	} else {
		e = parmp.EnvironmentByName(*envName)
	}
	if e == nil {
		fmt.Fprintf(os.Stderr, "mpsolve: unknown environment %q\n", *envName)
		os.Exit(2)
	}
	start, err := parseConfig(*startStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsolve:", err)
		os.Exit(2)
	}
	goal, err := parseConfig(*goalStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsolve:", err)
		os.Exit(2)
	}
	if len(start) != e.Dim() || len(goal) != e.Dim() {
		fmt.Fprintf(os.Stderr, "mpsolve: %s is %d-dimensional\n", *envName, e.Dim())
		os.Exit(2)
	}

	sampler, ok := cspace.SamplerByName(*samplerName)
	if !ok {
		fmt.Fprintf(os.Stderr, "mpsolve: unknown sampler %q\n", *samplerName)
		os.Exit(2)
	}
	opts := parmp.Options{
		Procs:            *procs,
		Regions:          *regions,
		SamplesPerRegion: *samples,
		NodesPerRegion:   *samples,
		Radius:           *radius,
		Seed:             *seed,
		Sampler:          sampler,
	}
	if opts.Radius == 0 {
		// Default the radial reach to the environment diagonal so the
		// benchmark corner-to-corner queries stay inside every cone.
		var d2 float64
		for d := 0; d < e.Dim(); d++ {
			span := e.Bounds.Hi[d] - e.Bounds.Lo[d]
			d2 += span * span
		}
		opts.Radius = math.Sqrt(d2)
	}
	switch *strategy {
	case "none":
		opts.Strategy = parmp.NoLB
	case "repartition":
		opts.Strategy = parmp.Repartition
	case "hybrid":
		opts.Strategy = parmp.WorkStealing
		opts.Policy = parmp.Hybrid(8)
	case "rand-8":
		opts.Strategy = parmp.WorkStealing
		opts.Policy = parmp.RandK(8)
	case "diffusive":
		opts.Strategy = parmp.WorkStealing
		opts.Policy = parmp.Diffusive()
	default:
		fmt.Fprintf(os.Stderr, "mpsolve: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	space := parmp.NewPointSpace(e)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var snap *parmp.Snapshot
	if *nPortfolio > 0 {
		snap = racePortfolio(ctx, space, start, goal, opts, *planner, *nPortfolio, *restarts, *maxWaves, *rounds)
	} else {
		var eng *parmp.Engine
		switch *planner {
		case "prm":
			eng, err = parmp.NewEngine(space, opts)
		case "rrt":
			eng, err = parmp.NewRRTEngine(space, start, opts)
		case "rrtconnect":
			eng, err = parmp.NewRRTConnectEngine(space, start, goal, opts)
		default:
			fmt.Fprintf(os.Stderr, "mpsolve: unknown planner %q (want %s)\n",
				*planner, strings.Join(parmp.PlannerNames(), ", "))
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpsolve:", err)
			os.Exit(1)
		}
		growErr := eng.GrowN(ctx, *rounds)
		snap = eng.Snapshot()
		if growErr != nil {
			if !errors.Is(growErr, parmp.ErrStopped) {
				fmt.Fprintln(os.Stderr, "mpsolve:", growErr)
				os.Exit(1)
			}
			fmt.Printf("growth      : timed out after %d/%d rounds; serving the committed roadmap\n",
				snap.Rounds(), *rounds)
		}
		if mutateScript != nil {
			// Each step is one replanning cycle: mutate the world, repair
			// the roadmap incrementally, grow one round so freed space
			// refills, then re-answer the query.
			fmt.Printf("scenario    : %s, %d scripted steps\n", *mutate, *mutateSteps)
			for k := 0; k < *mutateSteps; k++ {
				st, err := eng.ApplyDelta(ctx, mutateScript(k)...)
				if err != nil {
					fmt.Fprintf(os.Stderr, "mpsolve: step %d: %v\n", k, err)
					os.Exit(1)
				}
				if err := eng.Grow(ctx); err != nil && !errors.Is(err, parmp.ErrStopped) {
					fmt.Fprintf(os.Stderr, "mpsolve: step %d: %v\n", k, err)
					os.Exit(1)
				}
				s := eng.Snapshot()
				answer := "no path"
				if p, ok := s.Query(start, goal, 8); ok {
					answer = fmt.Sprintf("path %d waypoints", len(p))
				}
				fmt.Printf("  step %d: epoch %d, checked %d nodes + %d edges, removed %d nodes + %d edges, grafted %d, repair T=%.0f — %s\n",
					k, s.Epoch(), st.CheckedNodes, st.CheckedEdges,
					st.RemovedNodes, st.RemovedEdges, st.Grafted, st.Makespan, answer)
			}
			snap = eng.Snapshot()
		}
	}
	fmt.Printf("environment : %s\n", e)
	if *planner == "prm" {
		res := snap.PRM()
		fmt.Printf("roadmap     : %s (after %d rounds)\n", prm.ComputeStats(res.Roadmap), snap.Rounds())
		fmt.Printf("virtual time: %.0f units on %d procs (%s)\n", res.TotalTime, *procs, *strategy)
		fmt.Printf("phases      : sampling=%.0f redistribute=%.0f node-conn=%.0f region-conn=%.0f\n",
			res.Phases.Sampling, res.Phases.Redistribution, res.Phases.NodeConnection, res.Phases.RegionConnection)
		fmt.Printf("load CV     : %.3f -> %.3f (migrated %d regions)\n", res.CVBefore, res.CVAfter, res.MigratedRegions)
	} else {
		res := snap.RRT()
		fmt.Printf("forest      : %d nodes in %d branches, %d bridges, %d cycles pruned (after %d rounds)\n",
			res.TotalNodes(), len(res.Branches), len(res.Bridges), res.PrunedCycles, snap.Rounds())
		if *planner == "rrtconnect" {
			fmt.Printf("two-tree    : %d/%d region pairs met, goal connected: %v\n",
				res.TreesMet, len(res.Branches), res.GoalConnected)
		}
		fmt.Printf("virtual time: %.0f units on %d procs (%s)\n", res.TotalTime, *procs, *strategy)
		fmt.Printf("phases      : redistribute=%.0f grow=%.0f region-conn=%.0f\n",
			res.Phases.Redistribution, res.Phases.NodeConnection, res.Phases.RegionConnection)
		fmt.Printf("load CV     : %.3f -> %.3f\n", res.CVBefore, res.CVAfter)
	}

	if *queries > 0 {
		serve(snap, space, e.Name, *queries, *seed, *queriesJSON)
	}

	path, ok := snap.Query(start, goal, 8)
	if !ok {
		fmt.Println("query       : NO PATH FOUND (try more samples or rounds)")
		os.Exit(1)
	}
	if *shortcut > 0 {
		before := parmp.PathLength(space, path)
		path = parmp.ShortcutPath(space, path, *shortcut, *seed)
		fmt.Printf("shortcut    : length %.3f -> %.3f\n", before, parmp.PathLength(space, path))
	}
	fmt.Printf("query       : path with %d waypoints\n", len(path))
	for i, q := range path {
		fmt.Printf("  %3d: %v\n", i, q)
	}
}

// racePortfolio runs the restart-portfolio meta-planner: n derived-seed
// configurations of the planner race to the first solution of the
// (start, goal) query, then the winner keeps growing until the
// published snapshot has at least rounds committed rounds. Prints the
// race report and returns the final snapshot.
func racePortfolio(ctx context.Context, space *parmp.Space, start, goal parmp.Config, opts parmp.Options, planner string, n int, restarts string, maxWaves, rounds int) *parmp.Snapshot {
	pf, err := parmp.NewPortfolio(space, start, goal, opts, parmp.PortfolioOptions{
		Racers:   n,
		Planners: []string{planner},
		Restarts: restarts,
		MaxWaves: maxWaves,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsolve:", err)
		os.Exit(1)
	}
	t0 := time.Now()
	rep, err := pf.Solve(ctx)
	if err != nil {
		switch {
		case errors.Is(err, parmp.ErrNoSolution):
			fmt.Fprintf(os.Stderr, "mpsolve: portfolio: no racer solved the query within %d waves\n", rep.Waves)
			os.Exit(1)
		case errors.Is(err, parmp.ErrStopped):
			fmt.Printf("portfolio   : timed out undecided after %d waves; serving the empty snapshot\n", rep.Waves)
		default:
			fmt.Fprintln(os.Stderr, "mpsolve:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("portfolio   : %d racers (%s), %s restarts\n", n, planner, restarts)
	if rep.Winner >= 0 {
		fmt.Printf("race        : racer %d won after %d waves in %v (%d restarts across racers)\n",
			rep.Winner, rep.Waves, time.Since(t0).Round(time.Millisecond), rep.Restarts)
		for i, rr := range rep.Racers {
			mark := " "
			switch {
			case rr.Solved && i == rep.Winner:
				mark = "*"
			case rr.Stopped:
				mark = "x" // cancelled mid-round by arbitration
			}
			fmt.Printf("  %s #%d %-10s seed=%#016x rounds=%d restarts=%d\n",
				mark, i, rr.Planner, rr.Seed, rr.Rounds, rr.Restarts)
		}
		// Keep growing the winner toward the requested round target, like
		// a plain engine run.
		for pf.Rounds() < rounds {
			if err := pf.Grow(ctx); err != nil {
				break
			}
		}
	}
	return pf.Snapshot()
}

// serve answers n random queries against the frozen snapshot from one
// goroutine per CPU — exercising the lock-free concurrent read path —
// and reports wall-clock latency percentiles and the hit rate. With a
// jsonPath it also writes the run in the BENCH_serve.json schema, so
// in-process numbers line up against mploadgen's over-the-wire ones.
func serve(snap *parmp.Snapshot, space *parmp.Space, envName string, n int, seed uint64, jsonPath string) {
	pairs := make([][2]parmp.Config, n)
	r := rng.Derive(seed, 0x5e27e)
	for i := range pairs {
		pairs[i] = [2]parmp.Config{randomConfig(space, r), randomConfig(space, r)}
	}
	latUS := make([]float64, n)
	hits := make([]bool, n)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	var next atomic.Int64
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				t0 := time.Now()
				_, ok := snap.Query(pairs[i][0], pairs[i][1], 8)
				latUS[i] = float64(time.Since(t0).Nanoseconds()) / 1e3
				hits[i] = ok
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	solved := 0
	for _, ok := range hits {
		if ok {
			solved++
		}
	}
	pcts := servebench.Compute(latUS)
	fmt.Printf("serve       : %d queries on %d workers in %v (%d solved)\n", n, workers, elapsed.Round(time.Millisecond), solved)
	fmt.Printf("latency     : p50=%.0fµs p99=%.0fµs p999=%.0fµs max=%.0fµs\n",
		pcts.P50, pcts.P99, pcts.P999, pcts.Max)
	if jsonPath != "" {
		res := servebench.Result{
			Source:      "mpsolve",
			Env:         envName,
			Mode:        "closed",
			Workers:     workers,
			Queries:     int64(n),
			Solved:      int64(solved),
			DurationSec: elapsed.Seconds(),
			Throughput:  float64(n) / elapsed.Seconds(),
			Latency:     pcts,
		}
		if err := servebench.WriteFile(jsonPath, res); err != nil {
			fmt.Fprintln(os.Stderr, "mpsolve:", err)
			os.Exit(1)
		}
	}
}

// randomConfig draws a uniform configuration in the space's bounds.
func randomConfig(space *parmp.Space, r *rng.Stream) parmp.Config {
	q := make(parmp.Config, space.Dim())
	for d := 0; d < space.Dim(); d++ {
		lo, hi := space.Bounds.Lo[d], space.Bounds.Hi[d]
		q[d] = lo + r.Float64()*(hi-lo)
	}
	return q
}
