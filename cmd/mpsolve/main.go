// Command mpsolve plans a motion query in one of the benchmark
// environments with parallel PRM and prints the resulting path.
//
// Usage:
//
//	mpsolve -env med-cube -strategy repartition -procs 16 \
//	        -start 0.05,0.05,0.05 -goal 0.95,0.95,0.95
//
// The planner runs on the simulated distributed machine; the printed
// breakdown reports virtual-time per phase and the load balance achieved.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parmp"
	"parmp/internal/cspace"
	"parmp/internal/prm"
)

func parseConfig(s string) (parmp.Config, error) {
	parts := strings.Split(s, ",")
	q := make(parmp.Config, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad coordinate %q: %w", p, err)
		}
		q[i] = v
	}
	return q, nil
}

func main() {
	envName := flag.String("env", "med-cube", "environment ("+strings.Join(parmp.EnvironmentNames(), ", ")+")")
	envFile := flag.String("envfile", "", "load the environment from a file in the env text format instead")
	strategy := flag.String("strategy", "repartition", "load balancing (none, repartition, hybrid, rand-8, diffusive)")
	procs := flag.Int("procs", 16, "virtual processors")
	regions := flag.Int("regions", 0, "regions (default 8x procs)")
	samples := flag.Int("samples", 16, "sampling attempts per region")
	startStr := flag.String("start", "0.05,0.05,0.05", "start configuration (comma-separated)")
	goalStr := flag.String("goal", "0.95,0.95,0.95", "goal configuration")
	seed := flag.Uint64("seed", 1, "random seed")
	samplerName := flag.String("sampler", "uniform", "sampling strategy (uniform, gaussian, bridge, mixed)")
	shortcut := flag.Int("shortcut", 0, "post-process the path with this many shortcut iterations")
	flag.Parse()

	var e *parmp.Environment
	if *envFile != "" {
		f, err := os.Open(*envFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpsolve:", err)
			os.Exit(2)
		}
		e, err = parmp.ParseEnvironment(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpsolve:", err)
			os.Exit(2)
		}
	} else {
		e = parmp.EnvironmentByName(*envName)
	}
	if e == nil {
		fmt.Fprintf(os.Stderr, "mpsolve: unknown environment %q\n", *envName)
		os.Exit(2)
	}
	start, err := parseConfig(*startStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsolve:", err)
		os.Exit(2)
	}
	goal, err := parseConfig(*goalStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsolve:", err)
		os.Exit(2)
	}
	if len(start) != e.Dim() || len(goal) != e.Dim() {
		fmt.Fprintf(os.Stderr, "mpsolve: %s is %d-dimensional\n", *envName, e.Dim())
		os.Exit(2)
	}

	sampler, ok := cspace.SamplerByName(*samplerName)
	if !ok {
		fmt.Fprintf(os.Stderr, "mpsolve: unknown sampler %q\n", *samplerName)
		os.Exit(2)
	}
	opts := parmp.Options{
		Procs:            *procs,
		Regions:          *regions,
		SamplesPerRegion: *samples,
		Seed:             *seed,
		Sampler:          sampler,
	}
	switch *strategy {
	case "none":
		opts.Strategy = parmp.NoLB
	case "repartition":
		opts.Strategy = parmp.Repartition
	case "hybrid":
		opts.Strategy = parmp.WorkStealing
		opts.Policy = parmp.Hybrid(8)
	case "rand-8":
		opts.Strategy = parmp.WorkStealing
		opts.Policy = parmp.RandK(8)
	case "diffusive":
		opts.Strategy = parmp.WorkStealing
		opts.Policy = parmp.Diffusive()
	default:
		fmt.Fprintf(os.Stderr, "mpsolve: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	space := parmp.NewPointSpace(e)
	res, err := parmp.PlanPRM(space, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsolve:", err)
		os.Exit(1)
	}
	fmt.Printf("environment : %s\n", e)
	fmt.Printf("roadmap     : %s\n", prm.ComputeStats(res.Roadmap))
	fmt.Printf("virtual time: %.0f units on %d procs (%s)\n", res.TotalTime, *procs, *strategy)
	fmt.Printf("phases      : sampling=%.0f redistribute=%.0f node-conn=%.0f region-conn=%.0f\n",
		res.Phases.Sampling, res.Phases.Redistribution, res.Phases.NodeConnection, res.Phases.RegionConnection)
	fmt.Printf("load CV     : %.3f -> %.3f (migrated %d regions)\n", res.CVBefore, res.CVAfter, res.MigratedRegions)

	path, ok := parmp.Query(space, res.Roadmap, start, goal, 8)
	if !ok {
		fmt.Println("query       : NO PATH FOUND (try more samples)")
		os.Exit(1)
	}
	if *shortcut > 0 {
		before := parmp.PathLength(space, path)
		path = parmp.ShortcutPath(space, path, *shortcut, *seed)
		fmt.Printf("shortcut    : length %.3f -> %.3f\n", before, parmp.PathLength(space, path))
	}
	fmt.Printf("query       : path with %d waypoints\n", len(path))
	for i, q := range path {
		fmt.Printf("  %3d: %v\n", i, q)
	}
}
