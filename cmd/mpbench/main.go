// Command mpbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	mpbench -exp fig5a -scale quick
//	mpbench -exp all -scale full
//	mpbench -list
//
// Each experiment prints one or more text tables whose rows/series mirror
// the corresponding figure of "Using Load Balancing to Scalably
// Parallelize Sampling-Based Motion Planning Algorithms" (IPDPS 2014).
// The quick scale finishes in seconds; the full scale sweeps the paper's
// processor counts (up to 3072 virtual processors) and takes minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"parmp/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id ("+strings.Join(experiments.Names(), ", ")+")")
	scale := flag.String("scale", "quick", "sweep scale (quick, full)")
	format := flag.String("format", "text", "output format (text, csv, json)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.Names() {
			fmt.Println(id)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mpbench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mpbench:", err)
			}
		}()
	}

	sc, ok := experiments.ScaleByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "mpbench: unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}
	start := time.Now()
	tables, ok := experiments.ByName(*exp, sc)
	if !ok {
		fmt.Fprintf(os.Stderr, "mpbench: unknown experiment %q; try -list\n", *exp)
		os.Exit(2)
	}
	for i, tb := range tables {
		if i > 0 {
			fmt.Println()
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s\n", tb.Title)
			if err := tb.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mpbench:", err)
				os.Exit(1)
			}
		case "json":
			if err := tb.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mpbench:", err)
				os.Exit(1)
			}
		default:
			fmt.Print(tb.String())
		}
	}
	fmt.Fprintf(os.Stderr, "mpbench: %s at scale %s in %v\n", *exp, sc.Name, time.Since(start).Round(time.Millisecond))
}
