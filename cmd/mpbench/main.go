// Command mpbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	mpbench -exp fig5a -scale quick
//	mpbench -exp all -scale full
//	mpbench -list
//	mpbench -kernels BENCH_kernels.json -kernels-max-allocs 50
//	mpbench -balance BENCH_balance.json -balance-baseline results/BENCH_balance_baseline.json
//
// The -kernels mode benchmarks the hot compute kernels (sampling,
// collision checking, kNN, region connection) instead of running
// experiments, writes machine-readable results (ns/op, allocs/op, B/op
// per kernel) to the given file ("-" for stdout), and exits non-zero if
// any kernel allocates more than -kernels-max-allocs per op — the CI
// benchmark-regression gate.
//
// The -balance mode runs the deterministic load-balance benchmark
// (internal/balancebench): a multi-round closed-loop PRM on the
// virtual-time backend, reporting per-phase imbalance, utilization and
// steal efficiency, gated against a checked-in baseline the same way.
//
// The -repair mode runs the deterministic repair-vs-rebuild benchmark
// (internal/repairbench): a PRM roadmap in a scripted dynamic scenario,
// costing each mutation step's incremental repair against a full
// rebuild, gated on the repair speedup and a checked-in baseline.
//
// Each experiment prints one or more text tables whose rows/series mirror
// the corresponding figure of "Using Load Balancing to Scalably
// Parallelize Sampling-Based Motion Planning Algorithms" (IPDPS 2014).
// The quick scale finishes in seconds; the full scale sweeps the paper's
// processor counts (up to 3072 virtual processors) and takes minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"parmp/internal/balancebench"
	"parmp/internal/experiments"
	"parmp/internal/kernelbench"
	"parmp/internal/metrics"
	"parmp/internal/repairbench"
)

func main() {
	testing.Init() // registers test.* flags so -kernels can set benchtime
	exp := flag.String("exp", "all", "experiment id ("+strings.Join(experiments.Names(), ", ")+")")
	planner := flag.String("planner", "", "with -exp planners, race only these planners (comma-separated: rrt, rrtconnect)")
	scale := flag.String("scale", "quick", "sweep scale (quick, full)")
	format := flag.String("format", "text", "output format (text, csv, json)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	kernels := flag.String("kernels", "", "benchmark the compute kernels and write JSON results to this file (\"-\" for stdout)")
	kernelsMaxAllocs := flag.Int64("kernels-max-allocs", -1, "with -kernels, exit non-zero if any kernel exceeds this allocs/op")
	kernelsBenchtime := flag.String("kernels-benchtime", "100x", "with -kernels, benchtime per kernel (e.g. 100x, 1s)")
	kernelsBatchMaxRatio := flag.Float64("kernels-batch-max-ratio", -1, "with -kernels, exit non-zero if any batch kernel's ns/item exceeds its scalar counterpart's by this ratio (e.g. 1.15)")
	kernelsBaseline := flag.String("kernels-baseline", "", "with -kernels, compare ns/op against this baseline JSON file")
	kernelsMaxRegress := flag.Float64("kernels-max-regress", 0.15, "with -kernels-baseline, exit non-zero if any kernel's ns/op regresses by more than this fraction")
	balance := flag.String("balance", "", "run the deterministic load-balance benchmark and write BENCH_balance.json to this file (\"-\" for stdout)")
	balanceBaseline := flag.String("balance-baseline", "", "with -balance, compare against this baseline JSON file")
	balanceMaxRegress := flag.Float64("balance-max-regress", 0.10, "with -balance-baseline, exit non-zero if the construct CV or total virtual time regresses by more than this fraction")
	balanceMaxUtilDrop := flag.Float64("balance-max-util-drop", 0.05, "with -balance-baseline, exit non-zero if mean utilization drops by more than this many absolute points")
	repair := flag.String("repair", "", "run the deterministic repair-vs-rebuild benchmark and write BENCH_repair.json to this file (\"-\" for stdout)")
	repairScenario := flag.String("repair-scenario", "warehouse-forklift", "with -repair, the dynamic scenario to play")
	repairBaseline := flag.String("repair-baseline", "", "with -repair, compare against this baseline JSON file")
	repairMinSpeedup := flag.Float64("repair-min-speedup", 1, "with -repair, exit non-zero if the mean repair speedup falls below this floor")
	repairMaxRegress := flag.Float64("repair-max-regress", 0.10, "with -repair-baseline, exit non-zero if the total repair makespan regresses by more than this fraction")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.Names() {
			fmt.Println(id)
		}
		return
	}

	if *kernels != "" {
		gates := kernelGates{
			maxAllocs:     *kernelsMaxAllocs,
			batchMaxRatio: *kernelsBatchMaxRatio,
			baselinePath:  *kernelsBaseline,
			maxRegress:    *kernelsMaxRegress,
		}
		if err := runKernels(*kernels, *kernelsBenchtime, gates); err != nil {
			fmt.Fprintln(os.Stderr, "mpbench:", err)
			os.Exit(1)
		}
		return
	}

	if *balance != "" {
		if err := runBalance(*balance, *balanceBaseline, *balanceMaxRegress, *balanceMaxUtilDrop); err != nil {
			fmt.Fprintln(os.Stderr, "mpbench:", err)
			os.Exit(1)
		}
		return
	}

	if *repair != "" {
		if err := runRepair(*repair, *repairScenario, *repairBaseline, *repairMinSpeedup, *repairMaxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "mpbench:", err)
			os.Exit(1)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mpbench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mpbench:", err)
			}
		}()
	}

	sc, ok := experiments.ScaleByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "mpbench: unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}
	start := time.Now()
	var tables []*metrics.Table
	if *planner != "" {
		if *exp != "planners" && *exp != "all" {
			fmt.Fprintf(os.Stderr, "mpbench: -planner only applies to -exp planners\n")
			os.Exit(2)
		}
		names := strings.Split(*planner, ",")
		for i, n := range names {
			names[i] = strings.TrimSpace(n)
			switch names[i] {
			case "rrt", "rrtconnect":
			default:
				fmt.Fprintf(os.Stderr, "mpbench: unknown planner %q (want rrt, rrtconnect)\n", names[i])
				os.Exit(2)
			}
		}
		tables = experiments.Planners(sc, names)
	} else {
		var ok bool
		tables, ok = experiments.ByName(*exp, sc)
		if !ok {
			fmt.Fprintf(os.Stderr, "mpbench: unknown experiment %q; try -list\n", *exp)
			os.Exit(2)
		}
	}
	for i, tb := range tables {
		if i > 0 {
			fmt.Println()
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s\n", tb.Title)
			if err := tb.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mpbench:", err)
				os.Exit(1)
			}
		case "json":
			if err := tb.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mpbench:", err)
				os.Exit(1)
			}
		default:
			fmt.Print(tb.String())
		}
	}
	fmt.Fprintf(os.Stderr, "mpbench: %s at scale %s in %v\n", *exp, sc.Name, time.Since(start).Round(time.Millisecond))
}

// runBalance runs the deterministic load-balance benchmark, writes
// BENCH_balance.json to path ("-" for stdout), and when a baseline is
// given enforces the balance regression gate (construct CV, mean
// utilization, total virtual time).
func runBalance(path, baselinePath string, maxRegress, maxUtilDrop float64) error {
	start := time.Now()
	r, err := balancebench.Run(balancebench.DefaultConfig())
	if err != nil {
		return err
	}
	if err := balancebench.WriteFile(path, r); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mpbench: balance %s procs=%d regions=%d rounds=%d: construct CV %.4f, util %.4f, imbalance max %.3f, migrated %d, diffused %d, T=%.1f in %v\n",
		r.Env, r.Procs, r.Regions, r.Rounds,
		r.ConstructCVMean, r.UtilizationMean, r.ImbalanceMax,
		r.MigratedRegions, r.DiffusedRegions, r.TotalVirtualTime,
		time.Since(start).Round(time.Millisecond))
	if baselinePath == "" {
		return nil
	}
	baseline, err := balancebench.Load(baselinePath)
	if err != nil {
		return fmt.Errorf("bad baseline: %w", err)
	}
	gate := balancebench.Gate{
		MaxCVRegress:   maxRegress,
		MaxUtilDrop:    maxUtilDrop,
		MaxTimeRegress: maxRegress,
	}
	return gate.Check(r, &baseline)
}

// runRepair runs the deterministic repair-vs-rebuild benchmark, writes
// BENCH_repair.json to path ("-" for stdout), and enforces the repair
// gate: the speedup floor always, the makespan regression when a
// baseline is given.
func runRepair(path, scenario, baselinePath string, minSpeedup, maxRegress float64) error {
	start := time.Now()
	cfg := repairbench.DefaultConfig()
	cfg.Scenario = scenario
	r, err := repairbench.Run(cfg)
	if err != nil {
		return err
	}
	if err := repairbench.WriteFile(path, r); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mpbench: repair %s procs=%d regions=%d rounds=%d steps=%d: repair T=%.1f vs rebuild T=%.1f, speedup mean %.1fx min %.1fx in %v\n",
		r.Scenario, r.Procs, r.Regions, r.Rounds, len(r.Steps),
		r.RepairTotal, r.RebuildTotal, r.SpeedupMean, r.SpeedupMin,
		time.Since(start).Round(time.Millisecond))
	gate := repairbench.Gate{MinSpeedup: minSpeedup, MaxRepairRegress: maxRegress}
	var baseline *repairbench.Result
	if baselinePath != "" {
		b, err := repairbench.Load(baselinePath)
		if err != nil {
			return fmt.Errorf("bad baseline: %w", err)
		}
		baseline = &b
	}
	return gate.Check(r, baseline)
}

// kernelGates bundles the -kernels mode's regression thresholds.
type kernelGates struct {
	maxAllocs     int64   // < 0 disables
	batchMaxRatio float64 // <= 0 disables
	baselinePath  string  // "" disables
	maxRegress    float64
}

// runKernels benchmarks the kernel suite, writes JSON results to path
// ("-" for stdout), and enforces the configured regression gates: the
// allocs/op ceiling, the batch-vs-scalar ns/item ratio, and the
// baseline-file ns/op comparison.
func runKernels(path, benchtime string, gates kernelGates) error {
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("bad -kernels-benchtime: %w", err)
	}
	start := time.Now()
	results := kernelbench.RunAll()
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := kernelbench.WriteJSON(out, results); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintf(os.Stderr, "mpbench: kernel %-20s %12.1f ns/op %9.1f ns/item %8d B/op %6d allocs/op\n",
			r.Name, r.NsPerOp, r.NsPerItem, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Fprintf(os.Stderr, "mpbench: %d kernels in %v\n", len(results), time.Since(start).Round(time.Millisecond))
	if gates.maxAllocs >= 0 {
		if err := kernelbench.CheckMaxAllocs(results, gates.maxAllocs); err != nil {
			return err
		}
	}
	if gates.batchMaxRatio > 0 {
		if err := kernelbench.CheckBatchNs(results, gates.batchMaxRatio); err != nil {
			return err
		}
	}
	if gates.baselinePath != "" {
		f, err := os.Open(gates.baselinePath)
		if err != nil {
			return err
		}
		baseline, err := kernelbench.ReadJSON(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("bad baseline %s: %w", gates.baselinePath, err)
		}
		if err := kernelbench.CheckNsRegression(results, baseline, gates.maxRegress); err != nil {
			return err
		}
	}
	return nil
}
