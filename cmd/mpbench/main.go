// Command mpbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	mpbench -exp fig5a -scale quick
//	mpbench -exp all -scale full
//	mpbench -list
//	mpbench -kernels BENCH_kernels.json -kernels-max-allocs 50
//
// The -kernels mode benchmarks the hot compute kernels (sampling,
// collision checking, kNN, region connection) instead of running
// experiments, writes machine-readable results (ns/op, allocs/op, B/op
// per kernel) to the given file ("-" for stdout), and exits non-zero if
// any kernel allocates more than -kernels-max-allocs per op — the CI
// benchmark-regression gate.
//
// Each experiment prints one or more text tables whose rows/series mirror
// the corresponding figure of "Using Load Balancing to Scalably
// Parallelize Sampling-Based Motion Planning Algorithms" (IPDPS 2014).
// The quick scale finishes in seconds; the full scale sweeps the paper's
// processor counts (up to 3072 virtual processors) and takes minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"parmp/internal/experiments"
	"parmp/internal/kernelbench"
)

func main() {
	testing.Init() // registers test.* flags so -kernels can set benchtime
	exp := flag.String("exp", "all", "experiment id ("+strings.Join(experiments.Names(), ", ")+")")
	scale := flag.String("scale", "quick", "sweep scale (quick, full)")
	format := flag.String("format", "text", "output format (text, csv, json)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	kernels := flag.String("kernels", "", "benchmark the compute kernels and write JSON results to this file (\"-\" for stdout)")
	kernelsMaxAllocs := flag.Int64("kernels-max-allocs", -1, "with -kernels, exit non-zero if any kernel exceeds this allocs/op")
	kernelsBenchtime := flag.String("kernels-benchtime", "100x", "with -kernels, benchtime per kernel (e.g. 100x, 1s)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.Names() {
			fmt.Println(id)
		}
		return
	}

	if *kernels != "" {
		if err := runKernels(*kernels, *kernelsBenchtime, *kernelsMaxAllocs); err != nil {
			fmt.Fprintln(os.Stderr, "mpbench:", err)
			os.Exit(1)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mpbench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mpbench:", err)
			}
		}()
	}

	sc, ok := experiments.ScaleByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "mpbench: unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}
	start := time.Now()
	tables, ok := experiments.ByName(*exp, sc)
	if !ok {
		fmt.Fprintf(os.Stderr, "mpbench: unknown experiment %q; try -list\n", *exp)
		os.Exit(2)
	}
	for i, tb := range tables {
		if i > 0 {
			fmt.Println()
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s\n", tb.Title)
			if err := tb.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mpbench:", err)
				os.Exit(1)
			}
		case "json":
			if err := tb.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mpbench:", err)
				os.Exit(1)
			}
		default:
			fmt.Print(tb.String())
		}
	}
	fmt.Fprintf(os.Stderr, "mpbench: %s at scale %s in %v\n", *exp, sc.Name, time.Since(start).Round(time.Millisecond))
}

// runKernels benchmarks the kernel suite, writes JSON results to path
// ("-" for stdout), and enforces the allocs/op ceiling when maxAllocs
// is non-negative.
func runKernels(path, benchtime string, maxAllocs int64) error {
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("bad -kernels-benchtime: %w", err)
	}
	start := time.Now()
	results := kernelbench.RunAll()
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := kernelbench.WriteJSON(out, results); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintf(os.Stderr, "mpbench: kernel %-16s %12.1f ns/op %8d B/op %6d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Fprintf(os.Stderr, "mpbench: %d kernels in %v\n", len(results), time.Since(start).Round(time.Millisecond))
	if maxAllocs >= 0 {
		return kernelbench.CheckMaxAllocs(results, maxAllocs)
	}
	return nil
}
