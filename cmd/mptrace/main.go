// Command mptrace runs a small work-stealing simulation with event
// tracing enabled and renders a per-processor utilization timeline, making
// the steal protocol visible: who ran what, who stole from whom, and
// where processors idled. With -chrome it additionally exports the run in
// Chrome trace_event JSON, loadable in chrome://tracing or Perfetto, one
// track per processor.
//
// With -costs it instead runs a multi-round closed-loop PRM (observed
// cost model + repartitioning) and prints a per-region task-cost table
// after every round: where the construct time actually went, which
// regions dominate, and how the per-processor load evens out as the
// cost model warms up.
//
// Usage:
//
//	mptrace -env med-cube -procs 8 -regions 64 -policy hybrid
//	mptrace -policy rand-8 -chrome out.json
//	mptrace -costs -env mixed -rounds 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"parmp/internal/core"
	"parmp/internal/cspace"
	"parmp/internal/dist"
	"parmp/internal/env"
	"parmp/internal/metrics"
	"parmp/internal/obsv"
	"parmp/internal/prm"
	"parmp/internal/region"
	"parmp/internal/rng"
	"parmp/internal/steal"
	"parmp/internal/work"
)

func main() {
	envName := flag.String("env", "med-cube", "environment")
	procs := flag.Int("procs", 8, "virtual processors")
	regions := flag.Int("regions", 64, "regions")
	samples := flag.Int("samples", 12, "sampling attempts per region")
	policyName := flag.String("policy", "hybrid", "steal policy (hybrid, rand-8, diffusive, none)")
	width := flag.Int("width", 72, "timeline width in characters")
	chromeOut := flag.String("chrome", "", "write the trace as Chrome trace_event JSON to this file")
	costs := flag.Bool("costs", false, "run a multi-round closed-loop PRM and print per-region task-cost tables per round")
	rounds := flag.Int("rounds", 4, "with -costs, growth rounds to run")
	top := flag.Int("top", 12, "with -costs, heaviest regions to list per round")
	verbose := flag.Bool("v", false, "print the raw event log too")
	flag.Parse()

	e := env.ByName(*envName)
	if e == nil {
		fmt.Fprintf(os.Stderr, "mptrace: unknown environment %q\n", *envName)
		os.Exit(2)
	}

	if *costs {
		if err := runCosts(e, *procs, *regions, *samples, *rounds, *top); err != nil {
			fmt.Fprintln(os.Stderr, "mptrace:", err)
			os.Exit(1)
		}
		return
	}
	var policy steal.Policy
	if *policyName != "none" {
		var ok bool
		policy, ok = steal.ByName(*policyName)
		if !ok {
			fmt.Fprintf(os.Stderr, "mptrace: unknown policy %q\n", *policyName)
			os.Exit(2)
		}
	}

	// Build the node-connection workload exactly as the PRM driver does.
	s := cspace.NewPointSpace(e)
	rg, err := region.UniformGrid(s.Bounds, region.SplitEvenly(e.Dim(), *regions, 0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mptrace:", err)
		os.Exit(2)
	}
	region.NaiveColumnPartition(rg, *procs)
	params := prm.Params{SamplesPerRegion: *samples, K: 4}
	cost := work.DefaultCostModel()
	nodes := make([][]prm.Node, rg.NumRegions())
	queues := make([][]work.Task, *procs)
	for i := 0; i < rg.NumRegions(); i++ {
		i := i
		nodes[i], _ = prm.SampleRegion(s, rg.Region(i).Box, i, params, rng.Derive(1, uint64(i)))
		queues[rg.Owner[i]] = append(queues[rg.Owner[i]], work.Task{
			ID:      i,
			Payload: len(nodes[i]),
			Run: func() (float64, int) {
				_, w := prm.ConnectRegion(s, nodes[i], params)
				return cost.Time(w), len(nodes[i])
			},
		})
	}

	var events []dist.TraceEvent
	chrome := obsv.NewChromeTrace(obsv.ScaleVirtual)
	rep := dist.Run(dist.Config{
		Workers: *procs,
		Profile: work.Hopper(),
		Policy:  policy,
		Seed:    7,
		Trace: func(ev dist.TraceEvent) {
			events = append(events, ev)
			chrome.Event(ev)
		},
	}, queues)

	fmt.Printf("%d tasks on %d procs, policy=%s, makespan=%.0f units\n\n",
		rep.TotalTasks, *procs, *policyName, rep.Makespan)
	for _, line := range dist.Timeline(events, rep, *procs, *width) {
		fmt.Println(line)
	}
	fmt.Printf("\n'#' executing, '.' idle/communicating; one column = %.0f virtual units\n",
		rep.Makespan/float64(*width))
	m := obsv.Analyze(rep)
	fmt.Printf("utilization=%.2f imbalance=%.2f steal-eff=%.2f (granted %d / issued %d) migrated=%d transfers=%d\n",
		m.Utilization, m.Imbalance, m.StealEfficiency,
		m.StealsGranted, m.StealsIssued, m.TasksMigrated, m.TaskTransfers)

	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mptrace:", err)
			os.Exit(1)
		}
		if _, err := chrome.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, "mptrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mptrace:", err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *chromeOut)
	}

	if *verbose {
		fmt.Println()
		for _, ev := range events {
			fmt.Println(ev)
		}
	}
}

// runCosts drives the closed-loop PRM engine (observed cost model +
// repartitioning) and, after every committed round, prints that round's
// per-region construct costs: the heaviest regions with their owner and
// cumulative mean/max, then the per-processor cost distribution the next
// repartition will balance.
func runCosts(e *env.Environment, procs, regions, samples, rounds, top int) error {
	s := cspace.NewPointSpace(e)
	eng, err := core.NewPRMEngine(s, core.Options{
		Procs:            procs,
		Regions:          regions,
		SamplesPerRegion: samples,
		ConnectK:         3,
		Profile:          work.Hopper(),
		Seed:             7,
		Strategy:         core.Repartition,
		CostModel:        core.CostObserved,
	})
	if err != nil {
		return err
	}
	fmt.Printf("closed-loop PRM on %s: %d procs, %d regions, %d samples/region/round, cost model %s\n",
		e, procs, regions, samples, core.CostObserved)
	prev := make([]float64, regions)
	for round := 0; round < rounds; round++ {
		if err := eng.GrowRound(nil); err != nil {
			return err
		}
		res := eng.Result()
		rg := res.RegionGraph

		type row struct {
			region int
			cost   float64
		}
		thisRound := make([]row, regions)
		perProc := make([]float64, procs)
		var total float64
		for i, rc := range res.RegionCosts {
			c := rc.Sum - prev[i]
			prev[i] = rc.Sum
			thisRound[i] = row{i, c}
			perProc[rg.Owner[i]] += c
			total += c
		}
		sort.Slice(thisRound, func(a, b int) bool { return thisRound[a].cost > thisRound[b].cost })

		fmt.Printf("\nround %d: construct cost %.0f units over %d regions (top %d)\n",
			round, total, regions, top)
		fmt.Printf("%8s %6s %12s %12s %12s\n", "region", "owner", "cost", "cum-mean", "cum-max")
		for _, r := range thisRound[:min(top, len(thisRound))] {
			rc := res.RegionCosts[r.region]
			fmt.Printf("%8d %6d %12.1f %12.1f %12.1f\n",
				r.region, rg.Owner[r.region], r.cost, rc.Mean(), rc.Max)
		}
		fmt.Printf("per-proc: cv=%.3f", metrics.CV(perProc))
		for p, c := range perProc {
			fmt.Printf(" p%d=%.0f", p, c)
		}
		fmt.Println()
	}
	return nil
}
