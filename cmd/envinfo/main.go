// Command envinfo inspects a benchmark environment: obstacle statistics,
// per-region free volume and load-estimate distribution, and (for 2D
// environments) an ASCII occupancy map.
//
// Usage:
//
//	envinfo -env med-cube -regions 64 -procs 8
//	envinfo -env maze-2d
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parmp"
	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/metrics"
	"parmp/internal/prm"
	"parmp/internal/region"
	"parmp/internal/rng"
)

func main() {
	envName := flag.String("env", "med-cube", "environment ("+strings.Join(parmp.EnvironmentNames(), ", ")+")")
	envFile := flag.String("envfile", "", "load the environment from a file in the env text format instead")
	regions := flag.Int("regions", 64, "regions for the load analysis")
	procs := flag.Int("procs", 8, "processors for the partition analysis")
	samples := flag.Int("samples", 32, "sampling attempts per region")
	flag.Parse()

	var e *env.Environment
	if *envFile != "" {
		f, err := os.Open(*envFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "envinfo:", err)
			os.Exit(2)
		}
		e, err = env.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "envinfo:", err)
			os.Exit(2)
		}
	} else {
		e = env.ByName(*envName)
	}
	if e == nil {
		fmt.Fprintf(os.Stderr, "envinfo: unknown environment %q\n", *envName)
		os.Exit(2)
	}
	fmt.Println(e)
	fmt.Printf("planners    : %s\n", strings.Join(parmp.PlannerNames(), ", "))

	// Region-level free volume and sample-count weights.
	rg, err := region.UniformGrid(e.Bounds, region.SplitEvenly(e.Dim(), *regions, 0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "envinfo:", err)
		os.Exit(2)
	}
	s := cspace.NewPointSpace(e)
	n := rg.NumRegions()
	vfree := make([]float64, n)
	weights := make([]float64, n)
	params := prm.Params{SamplesPerRegion: *samples, K: 4}
	for i := 0; i < n; i++ {
		vfree[i] = e.FreeVolumeIn(rg.Region(i).Core, 2000, uint64(i))
		nodes, _ := prm.SampleRegion(s, rg.Region(i).Box, i, params, rng.Derive(1, uint64(i)))
		weights[i] = float64(len(nodes))
	}
	fmt.Printf("regions     : %d (grid), free-volume CV=%.3f, sample-count CV=%.3f\n",
		n, metrics.CV(vfree), metrics.CV(weights))

	region.NaiveColumnPartition(rg, *procs)
	if err := rg.SetWeights(weights); err != nil {
		fmt.Fprintln(os.Stderr, "envinfo:", err)
		os.Exit(2)
	}
	loads := rg.LoadPerProcessor(*procs)
	fmt.Printf("naive map   : %d procs, load CV=%.3f, max/mean=%.2f\n",
		*procs, metrics.CV(loads), metrics.Max(loads)/metrics.Mean(loads))
	fmt.Printf("edge cut    : %d of %d region edges\n", rg.EdgeCut(), rg.G.NumEdges())
	fmt.Printf("weights     : %s (regions in ID order)\n", metrics.Sparkline(weights))
	fmt.Println("per-proc load:")
	labels := make([]string, *procs)
	for p := range labels {
		labels[p] = fmt.Sprintf("p%d", p)
	}
	for _, line := range metrics.BarChart(labels, loads, 40) {
		fmt.Println("  " + line)
	}

	if e.Dim() == 2 {
		fmt.Println()
		printOccupancy(e, 48, 24)
	}
}

// printOccupancy renders a 2D environment as ASCII: '#' blocked, '.' free.
func printOccupancy(e *env.Environment, w, h int) {
	for row := h - 1; row >= 0; row-- {
		var b strings.Builder
		for col := 0; col < w; col++ {
			x := e.Bounds.Lo[0] + (float64(col)+0.5)/float64(w)*(e.Bounds.Hi[0]-e.Bounds.Lo[0])
			y := e.Bounds.Lo[1] + (float64(row)+0.5)/float64(h)*(e.Bounds.Hi[1]-e.Bounds.Lo[1])
			if e.PointFree(geom.V(x, y)) {
				b.WriteByte('.')
			} else {
				b.WriteByte('#')
			}
		}
		fmt.Println(b.String())
	}
}
