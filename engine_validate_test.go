package parmp

import (
	"context"
	"math"
	"testing"
)

// Snapshot.Query must answer (nil, false) — never panic — for malformed
// inputs: k ≤ 0, endpoints of the wrong dimension, endpoints outside the
// space's bounds, and NaN coordinates. Checked against both snapshot
// kinds, since the PRM and tree query paths diverge immediately.
func TestSnapshotQueryValidation(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("med-cube"))
	prmEng, err := NewEngine(space, testEngineOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := prmEng.Grow(context.Background()); err != nil {
		t.Fatal(err)
	}

	rrtSpace := NewPointSpace(EnvironmentByName("mixed-30"))
	root := V(0.5, 0.5, 0.5)
	rrtEng, err := NewRRTEngine(rrtSpace, root, Options{Procs: 4, Regions: 32, NodesPerRegion: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := rrtEng.Grow(context.Background()); err != nil {
		t.Fatal(err)
	}

	good := [2]Config{V(0.05, 0.05, 0.05), V(0.95, 0.95, 0.95)}
	bad := []struct {
		name        string
		start, goal Config
		k           int
	}{
		{"k zero", good[0], good[1], 0},
		{"k negative", good[0], good[1], -3},
		{"start short", V(0.1, 0.1), good[1], 8},
		{"goal long", good[0], V(0.9, 0.9, 0.9, 0.9), 8},
		{"start nil", nil, good[1], 8},
		{"start out of bounds", V(-0.5, 0.5, 0.5), good[1], 8},
		{"goal out of bounds", good[0], V(0.5, 0.5, 1.5), 8},
		{"NaN coordinate", V(math.NaN(), 0.5, 0.5), good[1], 8},
	}
	for _, snap := range []*Snapshot{prmEng.Snapshot(), rrtEng.Snapshot()} {
		for _, tc := range bad {
			path, ok := snap.Query(tc.start, tc.goal, tc.k)
			if ok || path != nil {
				t.Errorf("%s: Query returned ok=%v path=%v, want miss", tc.name, ok, path)
			}
		}
	}

	// Sanity: the screened path still serves well-formed queries.
	if _, ok := prmEng.Snapshot().Query(good[0], good[1], 8); !ok {
		t.Fatal("well-formed PRM query should still succeed after one round")
	}
}

// QueryBatch must align answers with inputs, screen malformed queries
// individually, and agree with Query on every well-formed one.
func TestSnapshotQueryBatchMatchesQuery(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("med-cube"))
	eng, err := NewEngine(space, testEngineOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.GrowN(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()

	starts := []Config{
		V(0.05, 0.05, 0.05),
		V(0.1, 0.1), // wrong dimension: misses alone
		V(0.1, 0.9, 0.1),
		V(0.05, 0.05, 0.05),     // repeat of query 0: dedup path
		V(math.NaN(), 0.5, 0.5), // NaN: misses alone
	}
	goals := []Config{
		V(0.95, 0.95, 0.95),
		V(0.95, 0.95, 0.95),
		V(0.95, 0.95, 0.95), // shares a goal with query 0
		V(0.95, 0.95, 0.95),
		V(0.95, 0.95, 0.95),
	}
	paths, oks := snap.QueryBatch(starts, goals, 8)
	if len(paths) != len(starts) || len(oks) != len(starts) {
		t.Fatalf("batch result length %d/%d, want %d", len(paths), len(oks), len(starts))
	}
	if oks[1] || oks[4] {
		t.Fatal("malformed queries must miss")
	}
	for _, i := range []int{0, 2, 3} {
		refPath, refOK := snap.Query(starts[i], goals[i], 8)
		if oks[i] != refOK {
			t.Fatalf("query %d: batch ok=%v, scalar ok=%v", i, oks[i], refOK)
		}
		if !refOK {
			continue
		}
		if got, want := PathLength(space, paths[i]), PathLength(space, refPath); math.Abs(got-want) > 1e-9 {
			t.Fatalf("query %d: batch length %v, scalar %v", i, got, want)
		}
	}

	// Mismatched slice lengths: whole batch misses, aligned to starts.
	if _, oks := snap.QueryBatch(starts[:2], goals[:1], 8); len(oks) != 2 || oks[0] || oks[1] {
		t.Fatal("mismatched batch must miss everything")
	}
}

// Tree snapshots answer batches too — per query, with the same screening.
func TestSnapshotQueryBatchTree(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("mixed-30"))
	root := V(0.5, 0.5, 0.5)
	eng, err := NewRRTEngine(space, root, Options{Procs: 4, Regions: 32, NodesPerRegion: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.GrowN(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	goalA, goalB := V(0.55, 0.55, 0.55), V(0.45, 0.45, 0.45)
	starts := []Config{root, V(0.1, 0.1), root}
	goals := []Config{goalA, goalA, goalB}
	paths, oks := snap.QueryBatch(starts, goals, 8)
	if oks[1] {
		t.Fatal("wrong-dimension tree query must miss")
	}
	for _, i := range []int{0, 2} {
		refPath, refOK := snap.Query(starts[i], goals[i], 8)
		if oks[i] != refOK {
			t.Fatalf("tree query %d: batch ok=%v, scalar ok=%v", i, oks[i], refOK)
		}
		if refOK && math.Abs(PathLength(space, paths[i])-PathLength(space, refPath)) > 1e-9 {
			t.Fatalf("tree query %d: path lengths differ", i)
		}
	}
}
