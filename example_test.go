package parmp_test

import (
	"fmt"

	"parmp"
)

// ExamplePlanPRM builds a load-balanced roadmap of the med-cube
// benchmark and answers a query through it.
func ExamplePlanPRM() {
	space := parmp.NewPointSpace(parmp.EnvironmentByName("med-cube"))
	res, err := parmp.PlanPRM(space, parmp.Options{
		Procs:            8,
		Regions:          64,
		SamplesPerRegion: 12,
		Strategy:         parmp.Repartition,
		Seed:             1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	_, ok := parmp.Query(space, res.Roadmap,
		parmp.V(0.05, 0.05, 0.05), parmp.V(0.95, 0.95, 0.95), 8)
	fmt.Println("solved:", ok)
	fmt.Println("balanced:", res.CVAfter < res.CVBefore)
	// Output:
	// solved: true
	// balanced: true
}

// ExamplePlanRRT grows a radial tree with work stealing and extracts a
// path to a goal.
func ExamplePlanRRT() {
	space := parmp.NewPointSpace(parmp.EnvironmentByName("free"))
	root := parmp.V(0.5, 0.5, 0.5)
	res, err := parmp.PlanRRT(space, root, parmp.Options{
		Procs:          4,
		Regions:        24,
		NodesPerRegion: 15,
		Radius:         0.45,
		Strategy:       parmp.WorkStealing,
		Policy:         parmp.Diffusive(),
		Seed:           2,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	path, ok := parmp.NewTreeIndex(res).ExtractPath(space, parmp.V(0.7, 0.6, 0.5))
	fmt.Println("reached:", ok, "— path starts at root:", path[0].Equal(root, 1e-9))
	// Output:
	// reached: true — path starts at root: true
}

// ExampleEnvironmentByName lists the benchmark environments bundled with
// the library.
func ExampleEnvironmentByName() {
	for _, name := range parmp.EnvironmentNames() {
		if e := parmp.EnvironmentByName(name); e == nil {
			fmt.Println("missing:", name)
		}
	}
	fmt.Println("all", len(parmp.EnvironmentNames()), "environments available")
	// Output:
	// all 10 environments available
}
