package parmp

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"parmp/internal/rng"
)

// TestEngineSnapshotRolloverUnderLoad hammers Engine.Snapshot().Query
// from many goroutines while the engine grows and publishes new
// snapshots. Run under -race it proves the rollover is tear-free: every
// reader sees a fully committed snapshot, Rounds never goes backwards
// from any goroutine's point of view, and returned paths are
// well-formed against the snapshot that produced them.
func TestEngineSnapshotRolloverUnderLoad(t *testing.T) {
	e := EnvironmentByName("med-cube")
	space := NewPointSpace(e)
	eng, err := NewEngine(space, Options{Procs: 4, Regions: 32, SamplesPerRegion: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 6
	const readers = 8
	stop := make(chan struct{})
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.Derive(7, uint64(w))
			dim := space.Dim()
			last := -1
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := eng.Snapshot()
				rds := snap.Rounds()
				if rds < last {
					errs <- fmt.Errorf("reader %d: rounds went backwards %d -> %d", w, last, rds)
					return
				}
				last = rds
				start := make(Config, dim)
				goal := make(Config, dim)
				for d := 0; d < dim; d++ {
					start[d] = r.Range(space.Bounds.Lo[d], space.Bounds.Hi[d])
					goal[d] = r.Range(space.Bounds.Lo[d], space.Bounds.Hi[d])
				}
				path, ok := snap.Query(start, goal, 8)
				if !ok {
					continue
				}
				if len(path) < 2 {
					errs <- fmt.Errorf("reader %d query %d: solved path with %d waypoints", w, i, len(path))
					return
				}
				for j, q := range path {
					if len(q) != dim {
						errs <- fmt.Errorf("reader %d query %d: waypoint %d has %d coordinates", w, i, j, len(q))
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < rounds; i++ {
		if err := eng.Grow(context.Background()); err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := eng.Rounds(); got != rounds {
		t.Fatalf("rounds = %d, want %d", got, rounds)
	}
}
