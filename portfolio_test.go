package parmp

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// testPortfolioSetup returns a narrow-passage race small enough for CI:
// the walls environment's corner-to-corner query, PRM racers.
func testPortfolioSetup() (*Space, Config, Config, Options) {
	space := NewPointSpace(EnvironmentByName("walls"))
	start := V(0.05, 0.05, 0.05)
	goal := V(0.95, 0.95, 0.95)
	opts := Options{
		Procs:            4,
		Regions:          32,
		SamplesPerRegion: 8,
		Strategy:         Repartition,
		Seed:             3,
	}
	return space, start, goal, opts
}

// A portfolio's winner and published snapshot must be a pure function
// of the configuration: same base seed, same outcome, run after run.
func TestPortfolioDeterministicWinnerAndSnapshot(t *testing.T) {
	run := func() (int, int, string) {
		space, start, goal, opts := testPortfolioSetup()
		pf, err := NewPortfolio(space, start, goal, opts, PortfolioOptions{
			Racers: 3, MaxWaves: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := pf.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		path, ok := pf.Snapshot().Query(start, goal, 8)
		if !ok {
			t.Fatal("winner snapshot does not answer the race query")
		}
		return rep.Winner, pf.Rounds(), fmt.Sprint(path)
	}
	w1, r1, p1 := run()
	w2, r2, p2 := run()
	if w1 != w2 || r1 != r2 || p1 != p2 {
		t.Fatalf("runs diverged: winner %d/%d rounds %d/%d pathEq=%v", w1, w2, r1, r2, p1 == p2)
	}
	if w1 < 0 {
		t.Fatal("race never decided")
	}
}

// Losers are cancelled (or simply stop being grown) without tearing
// committed state: every racer's engine still serves a coherent
// snapshot after the race, and the report stays consistent.
func TestPortfolioLosersUntorn(t *testing.T) {
	space, start, goal, opts := testPortfolioSetup()
	pf, err := NewPortfolio(space, start, goal, opts, PortfolioOptions{
		Racers: 3, MaxWaves: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pf.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Winner < 0 || !rep.Racers[rep.Winner].Solved {
		t.Fatalf("winner %d not marked solved", rep.Winner)
	}
	if rep.WinnerSeed == opts.Seed {
		t.Fatal("winner seed must be derived, not the base seed")
	}
	for i, rr := range rep.Racers {
		if rr.Err != nil {
			t.Fatalf("racer %d failed: %v", i, rr.Err)
		}
		// Several racers may solve in the same wave; the winner must be
		// the lowest-indexed one of them.
		if rr.Solved && i < rep.Winner {
			t.Fatalf("racer %d solved but higher index %d won", i, rep.Winner)
		}
		// A cancelled (Stopped) racer committed nothing that wave; its
		// round count can be at most the wave count either way.
		if rr.Rounds > rep.Waves {
			t.Fatalf("racer %d committed %d rounds in %d waves", i, rr.Rounds, rep.Waves)
		}
		// Committed state is queryable (possibly a miss) — no torn
		// snapshot, no panic — and phase reports survived for obsv.
		if _, err := func() (ok bool, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("racer %d snapshot panicked: %v", i, r)
				}
			}()
			_, ok = pf.Snapshot().Query(start, goal, 8)
			return ok, nil
		}(); err != nil {
			t.Fatal(err)
		}
		if rr.Rounds > 0 && len(rr.PhaseReports) == 0 {
			t.Fatalf("racer %d grew %d rounds but retained no phase reports", i, rr.Rounds)
		}
	}
}

// Cancellation returns ErrStopped with the race intact, and the same
// portfolio resumes to a solution afterwards.
func TestPortfolioCancelAndResume(t *testing.T) {
	space, start, goal, opts := testPortfolioSetup()
	pf, err := NewPortfolio(space, start, goal, opts, PortfolioOptions{Racers: 2, MaxWaves: 64})
	if err != nil {
		t.Fatal(err)
	}
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pf.Solve(done); !errors.Is(err, ErrStopped) {
		t.Fatalf("cancelled Solve returned %v, want ErrStopped", err)
	}
	if pf.Rounds() != 0 {
		t.Fatalf("cancelled race published %d rounds, want 0", pf.Rounds())
	}
	if _, ok := pf.Snapshot().Query(start, goal, 8); ok {
		t.Fatal("empty snapshot answered the race query")
	}
	// Mid-race cancellation: cancel while waves are in flight, then
	// resume on a fresh context.
	mid, cancelMid := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancelMid()
	_, err = pf.Solve(mid)
	if err != nil && !errors.Is(err, ErrStopped) {
		t.Fatalf("mid-race cancel returned %v", err)
	}
	rep, err := pf.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Winner < 0 {
		t.Fatal("resumed race never decided")
	}
	if _, ok := pf.Snapshot().Query(start, goal, 8); !ok {
		t.Fatal("resumed winner does not answer the race query")
	}
}

// After the race, Grow keeps growing the winner like a plain engine.
func TestPortfolioGrowsWinnerAfterRace(t *testing.T) {
	space, start, goal, opts := testPortfolioSetup()
	pf, err := NewPortfolio(space, start, goal, opts, PortfolioOptions{Racers: 2, MaxWaves: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := pf.Rounds()
	if err := pf.Grow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if pf.Rounds() != before+1 {
		t.Fatalf("post-race Grow: rounds %d -> %d, want +1", before, pf.Rounds())
	}
	st := pf.Stats()
	if st.Winner < 0 || st.Racers != 2 {
		t.Fatalf("stats %+v after win", st)
	}
}

// MaxWaves bounds a hopeless race with ErrNoSolution, without tearing.
func TestPortfolioMaxWaves(t *testing.T) {
	// A goal inside an obstacle is unreachable; the engines still grow.
	space, start, _, opts := testPortfolioSetup()
	goal := V(0.25, 0.5, 0.5) // inside the first wall slab
	if space.Valid(goal, nil) {
		t.Skip("expected an in-collision goal for the hopeless race")
	}
	pf, err := NewPortfolio(space, start, goal, opts, PortfolioOptions{Racers: 2, MaxWaves: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pf.Solve(context.Background())
	if !errors.Is(err, ErrNoSolution) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
	if rep.Winner != -1 || rep.Waves != 3 {
		t.Fatalf("report %+v, want undecided after 3 waves", rep)
	}
}

// Mixed planner families race side by side; tree racers root at start.
func TestPortfolioMixedPlanners(t *testing.T) {
	space, start, goal, opts := testPortfolioSetup()
	opts.NodesPerRegion = 8
	opts.Radius = 2 // cover the unit cube from any cone
	pf, err := NewPortfolio(space, start, goal, opts, PortfolioOptions{
		Racers:   3,
		Planners: []string{"prm", "rrtconnect"},
		MaxWaves: 96,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pf.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"prm", "rrtconnect", "prm"}
	for i, rr := range rep.Racers {
		if rr.Planner != want[i] {
			t.Fatalf("racer %d planner %q, want %q", i, rr.Planner, want[i])
		}
	}
	if _, ok := pf.Snapshot().Query(start, goal, 8); !ok {
		t.Fatal("mixed-planner winner does not answer the race query")
	}
}

func TestPortfolioOptionValidation(t *testing.T) {
	space, start, goal, opts := testPortfolioSetup()
	if _, err := NewPortfolio(space, start, goal, opts, PortfolioOptions{Planners: []string{"dijkstra"}}); err == nil {
		t.Fatal("unknown planner accepted")
	}
	if _, err := NewPortfolio(space, start, goal, opts, PortfolioOptions{Restarts: "fibonacci"}); err == nil {
		t.Fatal("unknown restart schedule accepted")
	}
	if _, err := NewPortfolio(space, start[:1], goal, opts, PortfolioOptions{}); err == nil {
		t.Fatal("wrong-dimension start accepted")
	}
}
