package parmp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"parmp/internal/core"
	"parmp/internal/portfolio"
)

// PhaseReport is one phase's scheduler execution profile; see
// core.PhaseReport. Portfolio reports retain every racer's phase reports
// so load-balance analysis (internal/obsv) covers losers too.
type PhaseReport = core.PhaseReport

// ErrNoSolution is returned by Portfolio.Solve when MaxWaves elapse
// without any racer solving the race query. The portfolio is not torn:
// Solve (or Grow) can be called again to keep racing.
var ErrNoSolution = errors.New("parmp: portfolio found no solution within MaxWaves")

// PortfolioOptions configures a restart-portfolio race on top of a base
// Options value. The zero value is usable: 4 racers, the base planner
// list defaulting to PRM, a Luby restart schedule with unit 1.
type PortfolioOptions struct {
	// Racers is the number of concurrent contestants. Default 4.
	Racers int
	// Planners assigns planner families to racers, cycled ("prm",
	// "rrt", "rrtconnect"); racer i runs Planners[i % len]. Default
	// {"prm"}. Tree planners root at the race's start configuration.
	Planners []string
	// Restarts selects the restart schedule: "luby" (default) restarts
	// a racer with a fresh derived seed whenever its Luby round budget
	// expires; "none" races the initial configurations only.
	Restarts string
	// UnitRounds scales Luby budgets into growth rounds (budget =
	// Luby(restart+1) × UnitRounds). Default 1.
	UnitRounds int
	// QueryK is the attachment count used to test the race query
	// against PRM snapshots. Default 8.
	QueryK int
	// MaxWaves bounds Solve: after this many waves without a solution
	// it returns ErrNoSolution. 0 means race until the context says
	// otherwise.
	MaxWaves int
}

// withDefaults fills unset fields and validates names.
func (po PortfolioOptions) withDefaults() (PortfolioOptions, error) {
	if po.Racers <= 0 {
		po.Racers = 4
	}
	if len(po.Planners) == 0 {
		po.Planners = []string{"prm"}
	}
	for _, pl := range po.Planners {
		switch pl {
		case "prm", "rrt", "rrtconnect":
		default:
			return po, fmt.Errorf("parmp: unknown portfolio planner %q (want %s)",
				pl, strings.Join(PlannerNames(), ", "))
		}
	}
	switch po.Restarts {
	case "":
		po.Restarts = "luby"
	case "luby", "none":
	default:
		return po, fmt.Errorf("parmp: unknown restart schedule %q (want luby or none)", po.Restarts)
	}
	if po.UnitRounds <= 0 {
		po.UnitRounds = 1
	}
	if po.QueryK <= 0 {
		po.QueryK = 8
	}
	return po, nil
}

// Portfolio is a restart-portfolio meta-planner: it races Racers engine
// configurations — derived seeds, optionally mixed planner families —
// to the first one whose committed snapshot solves the (start, goal)
// race query, restarting unlucky racers on a Luby schedule. Planner
// runtimes are heavy-tailed, so the portfolio's time-to-first-solution
// concentrates near the luckiest contestant's: this is the service-tier
// answer to p99/p999 solve time, not just a benchmark trick.
//
// A Portfolio serves exactly like an Engine: Snapshot returns the
// latest atomically published immutable snapshot (empty until the race
// is won, then the winner's), so Snapshot.Query/QueryBatch work
// unchanged, concurrently with racing. Growth is serialized internally;
// losers are cancelled through the engines' cooperative-cancellation
// path and never tear committed state.
//
// Determinism: an uninterrupted race's winner and published snapshots
// are a pure function of (space, query, base options, portfolio
// options) — arbitration runs in lockstep waves with ties broken by
// racer index, never by wall clock.
type Portfolio struct {
	space       *Space
	start, goal Config
	base        Options
	po          PortfolioOptions

	mu       sync.Mutex // serializes Grow/Solve; guards the fields below
	race     *portfolio.Race
	engines  []*Engine // current engine per racer (nil before first wave)
	seeds    []uint64  // current derived seed per racer
	prebuilt *Engine   // racer 0's restart-0 engine, built eagerly
	winner   *Engine

	snap atomic.Pointer[Snapshot]

	// Lock-free stats mirrors, readable while a wave is in flight.
	waves     atomic.Int64
	restarts  atomic.Int64
	winnerIdx atomic.Int64 // -1 until decided
}

// NewPortfolio creates a portfolio racing to solve the (start, goal)
// query in space. base supplies every racer's engine options; racer
// seeds are derived deterministically from base.Seed (racer 0's restart
// 0 never equals the base seed itself, so a portfolio of 1 still races
// a well-defined configuration). The initial snapshot is valid and
// empty — every query misses until the race is won.
func NewPortfolio(space *Space, start, goal Config, base Options, po PortfolioOptions) (*Portfolio, error) {
	po, err := po.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(start) != space.Dim() || len(goal) != space.Dim() {
		return nil, fmt.Errorf("parmp: race query is %dD/%dD, space is %dD", len(start), len(goal), space.Dim())
	}
	p := &Portfolio{
		space:   space,
		start:   start.Clone(),
		goal:    goal.Clone(),
		base:    base,
		po:      po,
		engines: make([]*Engine, po.Racers),
		seeds:   make([]uint64, po.Racers),
	}
	p.winnerIdx.Store(-1)
	// Build racer 0's first engine eagerly: it validates the shared
	// configuration up front and donates the initial empty snapshot.
	eng0, seed0, err := p.buildEngine(0, 0)
	if err != nil {
		return nil, err
	}
	p.prebuilt = eng0
	p.seeds[0] = seed0
	p.snap.Store(eng0.Snapshot())

	racers := make([]portfolio.Racer, po.Racers)
	for i := range racers {
		i := i
		racers[i] = portfolio.Racer{Build: func(restart int) (portfolio.Instance, error) {
			eng := p.prebuilt
			seed := p.seeds[0]
			if i == 0 && restart == 0 && eng != nil {
				p.prebuilt = nil
			} else {
				var err error
				eng, seed, err = p.buildEngine(i, restart)
				if err != nil {
					return nil, err
				}
			}
			p.engines[i], p.seeds[i] = eng, seed
			return &racerInstance{eng: eng, pf: p}, nil
		}}
	}
	unit := po.UnitRounds
	if po.Restarts == "none" {
		unit = 0
	}
	p.race = portfolio.New(racers, unit)
	return p, nil
}

// buildEngine constructs racer's engine for the given restart with its
// deterministically derived seed.
func (p *Portfolio) buildEngine(racer, restart int) (*Engine, uint64, error) {
	seed := portfolio.DeriveSeed(p.base.Seed, racer, restart)
	opts := p.base
	opts.Seed = seed
	var (
		eng *Engine
		err error
	)
	switch pl := p.po.Planners[racer%len(p.po.Planners)]; pl {
	case "prm":
		eng, err = NewEngine(p.space, opts)
	case "rrt":
		eng, err = NewRRTEngine(p.space, p.start, opts)
	default: // rrtconnect (names validated in withDefaults)
		eng, err = NewRRTConnectEngine(p.space, p.start, p.goal, opts)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("parmp: portfolio racer %d restart %d: %w", racer, restart, err)
	}
	return eng, seed, nil
}

// racerInstance adapts an Engine onto the race's Instance contract.
type racerInstance struct {
	eng *Engine
	pf  *Portfolio
}

func (ri *racerInstance) Grow(ctx context.Context) error { return ri.eng.Grow(ctx) }

func (ri *racerInstance) Solved() bool {
	_, ok := ri.eng.Snapshot().Query(ri.pf.start, ri.pf.goal, ri.pf.po.QueryK)
	return ok
}

// Grow advances the portfolio by one unit of work and publishes any new
// snapshot: before the race is decided, one lockstep wave (every racer
// grows one round, losers' budgets tick, Luby restarts fire); after,
// one ordinary growth round of the winning engine. Cancellation is
// cooperative exactly as in Engine.Grow — ErrStopped comes back with
// all committed state intact, and the race resumes on the next call.
// With MaxWaves set, an undecided race past that many waves returns
// ErrNoSolution instead of racing further, so callers driving Grow in a
// loop (the serving tier's growLoop) terminate on unsolvable queries.
func (p *Portfolio) Grow(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.winner != nil {
		if err := p.winner.Grow(ctx); err != nil {
			return err
		}
		p.snap.Store(p.winner.Snapshot())
		return nil
	}
	if p.po.MaxWaves > 0 && p.race.Waves() >= p.po.MaxWaves {
		return ErrNoSolution
	}
	won, err := p.race.Wave(ctx)
	p.waves.Store(int64(p.race.Waves()))
	p.restarts.Store(int64(p.race.Restarts()))
	if err != nil {
		if ctx.Err() != nil {
			return ErrStopped
		}
		return err
	}
	if won {
		i := p.race.Winner()
		p.winner = p.engines[i]
		p.winnerIdx.Store(int64(i))
		p.snap.Store(p.winner.Snapshot())
	}
	return nil
}

// Solve races until the first solution and returns the final report.
// On cancellation it returns ErrStopped (with the partial report); with
// MaxWaves set, ErrNoSolution after that many fruitless waves. In both
// cases committed state is intact and Solve can be called again.
func (p *Portfolio) Solve(ctx context.Context) (*PortfolioReport, error) {
	for {
		if p.Winner() >= 0 {
			return p.Report(), nil
		}
		if p.po.MaxWaves > 0 && int(p.waves.Load()) >= p.po.MaxWaves {
			return p.Report(), ErrNoSolution
		}
		if err := p.Grow(ctx); err != nil {
			return p.Report(), err
		}
	}
}

// Winner returns the winning racer's index, or -1 while the race is
// undecided. Safe to call concurrently with Grow.
func (p *Portfolio) Winner() int { return int(p.winnerIdx.Load()) }

// Snapshot returns the latest published snapshot: valid and empty until
// the race is won, then the winner's latest committed state. Immutable
// and safe for concurrent use, exactly like Engine.Snapshot.
func (p *Portfolio) Snapshot() *Snapshot { return p.snap.Load() }

// Rounds returns the published snapshot's committed round count (the
// winner's rounds once the race is decided, 0 before).
func (p *Portfolio) Rounds() int { return p.Snapshot().Rounds() }

// PortfolioStats is a lock-free progress snapshot, readable while a
// wave is in flight (the serving tier's stats endpoint polls it).
type PortfolioStats struct {
	Racers   int
	Waves    int
	Restarts int
	Winner   int // -1 until decided
}

// Stats reports the race's progress without blocking on growth.
func (p *Portfolio) Stats() PortfolioStats {
	return PortfolioStats{
		Racers:   p.po.Racers,
		Waves:    int(p.waves.Load()),
		Restarts: int(p.restarts.Load()),
		Winner:   p.Winner(),
	}
}

// RacerReport is one contestant's final accounting.
type RacerReport struct {
	Planner string
	// Seed is the racer's current (last) derived engine seed.
	Seed uint64
	// Restarts counts completed Luby restarts.
	Restarts int
	// Rounds is the racer's total committed growth rounds across all
	// its restarts.
	Rounds int
	// Stopped reports the racer's last round was cancelled mid-flight
	// by arbitration (its engine's committed state is untorn).
	Stopped bool
	// Solved marks the winner.
	Solved bool
	// Err is a terminal build/grow failure, if any.
	Err error
	// PhaseReports are the racer's last engine's committed per-phase
	// scheduler reports, for load-balance analysis via internal/obsv.
	PhaseReports []PhaseReport
}

// PortfolioReport is the race's final (or, mid-race, partial)
// accounting: who won, how much restart work the schedule spent, and
// per-racer detail.
type PortfolioReport struct {
	// Winner is the winning racer index, -1 while undecided.
	Winner        int
	WinnerPlanner string
	WinnerSeed    uint64
	// Waves is the number of lockstep rounds raced; Restarts the total
	// Luby restarts across racers.
	Waves    int
	Restarts int
	Racers   []RacerReport
}

// Report assembles the race accounting. It blocks while a wave is in
// flight (use Stats for a lock-free view).
func (p *Portfolio) Report() *PortfolioReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	rep := &PortfolioReport{
		Winner:   -1,
		Waves:    p.race.Waves(),
		Restarts: p.race.Restarts(),
		Racers:   make([]RacerReport, p.po.Racers),
	}
	for i, st := range p.race.States() {
		rr := RacerReport{
			Planner:  p.po.Planners[i%len(p.po.Planners)],
			Seed:     p.seeds[i],
			Restarts: st.Restart,
			Rounds:   st.Rounds,
			Stopped:  st.Stopped,
			Solved:   st.Solved,
			Err:      st.Err,
		}
		if eng := p.engines[i]; eng != nil {
			rr.PhaseReports = snapshotPhaseReports(eng.Snapshot())
		}
		rep.Racers[i] = rr
	}
	if w := p.race.Winner(); w >= 0 {
		rep.Winner = w
		rep.WinnerPlanner = rep.Racers[w].Planner
		rep.WinnerSeed = rep.Racers[w].Seed
	}
	return rep
}

// snapshotPhaseReports pulls the committed phase reports out of either
// planner family's result.
func snapshotPhaseReports(s *Snapshot) []PhaseReport {
	if r := s.PRM(); r != nil {
		return r.PhaseReports
	}
	if r := s.RRT(); r != nil {
		return r.PhaseReports
	}
	return nil
}
