package parmp

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

func rrtResultsEqual(t *testing.T, got, want *RRTResult) {
	t.Helper()
	if got.TotalNodes() != want.TotalNodes() {
		t.Fatalf("nodes %d != %d", got.TotalNodes(), want.TotalNodes())
	}
	if len(got.Bridges) != len(want.Bridges) || got.PrunedCycles != want.PrunedCycles {
		t.Fatalf("bridges/pruned %d/%d != %d/%d",
			len(got.Bridges), got.PrunedCycles, len(want.Bridges), want.PrunedCycles)
	}
	if got.TreesMet != want.TreesMet || got.GoalConnected != want.GoalConnected {
		t.Fatalf("met/goal %d/%v != %d/%v", got.TreesMet, got.GoalConnected, want.TreesMet, want.GoalConnected)
	}
	if got.TotalTime != want.TotalTime {
		t.Fatalf("virtual time %v != %v", got.TotalTime, want.TotalTime)
	}
	for i, b := range got.Branches {
		if b.Len() != want.Branches[i].Len() {
			t.Fatalf("branch %d: %d nodes vs %d", i, b.Len(), want.Branches[i].Len())
		}
		for j, n := range b.Nodes {
			w := want.Branches[i].Nodes[j]
			if !n.Q.Equal(w.Q, 0) || n.Parent != w.Parent {
				t.Fatalf("branch %d node %d differs", i, j)
			}
		}
	}
}

// One engine growth round must be bit-identical to the one-shot planner:
// PlanRRTConnect is specified as exactly round 0 of an RRT-Connect engine.
func TestEngineRRTConnectRoundZeroMatchesPlanRRTConnect(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("mixed-30"))
	root, goal := V(0.5, 0.5, 0.5), V(0.9, 0.9, 0.9)
	opts := Options{Procs: 4, Regions: 32, NodesPerRegion: 20, Radius: 0.9,
		Strategy: WorkStealing, Policy: RandK(4), Seed: 7}
	oneShot, err := PlanRRTConnect(space, root, goal, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewRRTConnectEngine(space, root, goal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Grow(context.Background()); err != nil {
		t.Fatal(err)
	}
	rrtResultsEqual(t, eng.Snapshot().RRT(), oneShot)
}

// RRT-Connect engines must be deterministic across call batching, and a
// met region's pair must stop growing while unmet regions continue.
func TestEngineRRTConnectDeterministicAcrossCalls(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("mixed-30"))
	root, goal := V(0.5, 0.5, 0.5), V(0.9, 0.9, 0.9)
	opts := Options{Procs: 4, Regions: 32, NodesPerRegion: 15, Radius: 0.9, Seed: 3}

	a, err := NewRRTConnectEngine(space, root, goal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.GrowN(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	b, err := NewRRTConnectEngine(space, root, goal, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := b.Grow(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ra, rb := a.Snapshot().RRT(), b.Snapshot().RRT()
	rrtResultsEqual(t, ra, rb)
	if a.Rounds() != 2 {
		t.Fatalf("rounds = %d; want 2", a.Rounds())
	}
	one, err := PlanRRTConnect(space, root, goal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ra.TotalNodes() < one.TotalNodes() {
		t.Fatalf("2 rounds (%d nodes) shrank below round 0 (%d nodes)", ra.TotalNodes(), one.TotalNodes())
	}
	if ra.TreesMet < one.TreesMet {
		t.Fatalf("met regions went backwards: %d -> %d", one.TreesMet, ra.TreesMet)
	}
}

// Invalid configurations must be rejected at construction: RRT-Connect
// needs symmetric local motions and a root-dimensioned goal.
func TestEngineRRTConnectRejectsSteeredAndBadGoal(t *testing.T) {
	if _, err := NewRRTConnectEngine(NewDubinsSpace(EnvironmentByName("maze-2d"), 0.1),
		V(0.1, 0.1, 0), V(0.9, 0.9, 0), Options{Procs: 2, Regions: 8}); err == nil {
		t.Fatal("steered (Dubins) space must be rejected")
	}
	space := NewPointSpace(EnvironmentByName("free"))
	if _, err := NewRRTConnectEngine(space, V(0.5, 0.5, 0.5), nil, Options{Procs: 2, Regions: 8}); err == nil {
		t.Fatal("nil goal must be rejected")
	}
	if _, err := NewRRTConnectEngine(space, V(0.5, 0.5, 0.5), V(0.5, 0.5), Options{Procs: 2, Regions: 8}); err == nil {
		t.Fatal("wrong-dimension goal must be rejected")
	}
}

// Snapshots must serve concurrent queries while the RRT-Connect engine
// grows (the -race sentinel for the RRT-Connect serving path).
func TestSnapshotQueryConcurrentWithGrowRRTConnect(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("med-cube"))
	start, goal := V(0.05, 0.05, 0.05), V(0.95, 0.95, 0.95)
	opts := Options{Procs: 4, Regions: 32, NodesPerRegion: 40, Radius: 2.0, Seed: 5}
	eng, err := NewRRTConnectEngine(space, start, goal, opts)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := eng.Snapshot()
				path, ok := snap.Query(start, goal, 8)
				if ok && len(path) < 2 {
					t.Error("degenerate path from snapshot query")
					return
				}
				if snap.Rounds() > 0 && snap.NumNodes() == 0 {
					t.Error("committed snapshot has no nodes")
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		if err := eng.Grow(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if _, ok := eng.Snapshot().Query(start, goal, 8); !ok {
		t.Fatal("final snapshot cannot solve the benchmark query")
	}
}

// A canceled context must abort RRT-Connect growth without tearing
// state, and resumed growth must match uninterrupted growth exactly.
func TestEngineRRTConnectCancellation(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("med-cube"))
	root, goal := V(0.05, 0.05, 0.05), V(0.95, 0.95, 0.95)
	opts := Options{Procs: 4, Regions: 32, NodesPerRegion: 60, Radius: 2.0, Seed: 11}
	eng, err := NewRRTConnectEngine(space, root, goal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Grow(context.Background()); err != nil {
		t.Fatal(err)
	}
	committed := eng.Snapshot().RRT()
	baseline := runtime.NumGoroutine()

	// Pre-canceled context: must refuse immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.Grow(ctx); !errors.Is(err, ErrStopped) {
		t.Fatalf("Grow on canceled context: %v; want ErrStopped", err)
	}

	// Mid-round cancellation: fire the context while the round runs.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	err = eng.Grow(ctx2)
	if err != nil && !errors.Is(err, ErrStopped) {
		t.Fatalf("mid-round Grow: %v", err)
	}
	if err != nil {
		if eng.Rounds() != 1 {
			t.Fatalf("aborted round changed round count: %d", eng.Rounds())
		}
		rrtResultsEqual(t, eng.Snapshot().RRT(), committed)
	}

	// No leaked goroutines once the dust settles.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The engine must keep working after cancellation.
	rounds := eng.Rounds()
	if err := eng.Grow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if eng.Rounds() != rounds+1 {
		t.Fatalf("post-cancel Grow did not commit: rounds %d -> %d", rounds, eng.Rounds())
	}

	// Resumed growth stays deterministic: a fresh engine grown to the
	// same round count (without any cancellations) matches exactly.
	ref, err := NewRRTConnectEngine(space, root, goal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.GrowN(context.Background(), eng.Rounds()); err != nil {
		t.Fatal(err)
	}
	rrtResultsEqual(t, eng.Snapshot().RRT(), ref.Snapshot().RRT())
}
