// Model environment: the paper's theoretical analysis (Section IV-B) made
// executable. For the 2D single-square-obstacle model we compute the
// exact free volume per region, predict the imbalance of the naive
// column partition and the best greedy partition, then run the real
// planner and show the prediction tracking the measurement — the
// reproduction of Figure 4.
//
//	go run ./examples/modelenv
package main

import (
	"fmt"

	"parmp/internal/experiments"
	"parmp/internal/model"
)

func main() {
	m := model.Model{Blocked: 0.25, Grid: 16}
	fmt.Println("Model: 2D unit workspace, centered square obstacle (25% blocked),")
	fmt.Printf("subdivided into %dx%d regions.\n\n", m.Grid, m.Grid)

	fmt.Printf("%6s %18s %18s %18s\n", "procs", "naive CV (model)", "best CV (model)", "improvement %")
	for _, p := range []int{2, 4, 8, 16, 32, 64, 128} {
		fmt.Printf("%6d %18.4f %18.4f %18.1f\n",
			p, m.NaiveCV(p), m.BestCV(p), m.TheoreticalImprovement(p))
	}
	fmt.Println("\nNote the collapse at high processor counts: once each processor")
	fmt.Println("holds only a couple of regions, no rebalancing can help — the")
	fmt.Println("granularity bound of Section III.")

	fmt.Println("\nFull Figure 4 reproduction (model vs measured):")
	sc := experiments.Quick()
	fmt.Println(experiments.Fig4a(sc).String())
	fmt.Println(experiments.Fig4b(sc).String())
}
