// Quickstart: build a roadmap of the med-cube benchmark environment with
// the load-balanced parallel PRM and answer a motion query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parmp"
)

func main() {
	// A 3D workspace with a single cubic obstacle blocking ~24 % of it.
	e := parmp.EnvironmentByName("med-cube")
	space := parmp.NewPointSpace(e)

	// Plan on 16 virtual processors with 128 regions (8x over-decomposed)
	// and bulk-synchronous repartitioning for load balance.
	res, err := parmp.PlanPRM(space, parmp.Options{
		Procs:            16,
		Regions:          128,
		SamplesPerRegion: 16,
		Strategy:         parmp.Repartition,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("roadmap: %d nodes, %d edges\n", res.Roadmap.NumNodes(), res.Roadmap.NumEdges())
	fmt.Printf("virtual execution time: %.0f units\n", res.TotalTime)
	fmt.Printf("load CV: %.3f before balancing, %.3f after\n", res.CVBefore, res.CVAfter)

	// Answer a query through the narrow space around the obstacle.
	start := parmp.V(0.05, 0.05, 0.05)
	goal := parmp.V(0.95, 0.95, 0.95)
	path, ok := parmp.Query(space, res.Roadmap, start, goal, 8)
	if !ok {
		log.Fatal("no path found; increase SamplesPerRegion")
	}
	fmt.Printf("query solved with %d waypoints:\n", len(path))
	for i, q := range path {
		fmt.Printf("  %2d: %v\n", i, q)
	}
}
