// Narrow passage: compare every load balancing strategy on an imbalanced
// PRM workload, reproducing the headline effect of the paper — in a
// heterogeneous environment the naive uniform subdivision leaves most
// processors idle while a few grind, and both repartitioning and work
// stealing recover the lost time.
//
//	go run ./examples/narrowpassage
package main

import (
	"fmt"
	"log"

	"parmp"
)

func main() {
	e := parmp.EnvironmentByName("med-cube")
	space := parmp.NewPointSpace(e)

	type variant struct {
		name string
		opts parmp.Options
	}
	base := parmp.Options{
		Procs:            32,
		Regions:          256,
		SamplesPerRegion: 16,
		Seed:             7,
		Profile:          parmp.HopperProfile(),
	}
	variants := []variant{
		{"without LB", withStrategy(base, parmp.NoLB, nil)},
		{"repartitioning", withStrategy(base, parmp.Repartition, nil)},
		{"hybrid stealing", withStrategy(base, parmp.WorkStealing, parmp.Hybrid(8))},
		{"rand-8 stealing", withStrategy(base, parmp.WorkStealing, parmp.RandK(8))},
		{"diffusive stealing", withStrategy(base, parmp.WorkStealing, parmp.Diffusive())},
	}

	var baseline float64
	fmt.Printf("%-20s %12s %10s %10s %8s\n", "strategy", "virtual time", "speedup", "node-conn", "load CV")
	for i, v := range variants {
		res, err := parmp.PlanPRM(space, v.opts)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = res.TotalTime
		}
		fmt.Printf("%-20s %12.0f %9.2fx %10.0f %8.3f\n",
			v.name, res.TotalTime, baseline/res.TotalTime,
			res.Phases.NodeConnection, res.CVAfter)
	}
	fmt.Println("\nThe same roadmap is produced by every strategy; only the")
	fmt.Println("schedule differs. Expect repartitioning to lead, stealing to")
	fmt.Println("follow, and the naive mapping to trail (paper Figs. 5 and 8).")
}

func withStrategy(o parmp.Options, s parmp.Strategy, p parmp.StealPolicy) parmp.Options {
	o.Strategy = s
	o.Policy = p
	return o
}
