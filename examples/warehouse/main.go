// Warehouse: a rigid rectangular cart (SE(2): x, y, heading) navigating a
// custom 2D warehouse floor loaded from the environment text format,
// exercising the full stack: environment parsing, SE(2) collision
// checking, the load-balanced parallel PRM, query answering and path
// shortcutting.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"strings"

	"parmp"
)

// floor is a small warehouse: shelving rows with a doorway between halls.
const floor = `
name warehouse
bounds 0 0 2 1
# shelving rows (leave an aisle at y ~ 0.5)
box 0.25 0.0  0.45 0.40
box 0.25 0.62 0.45 1.0
box 0.95 0.0  1.15 0.42
box 0.95 0.60 1.15 1.0
box 1.60 0.0  1.80 0.38
box 1.60 0.64 1.80 1.0
`

func main() {
	e, err := parmp.ParseEnvironment(strings.NewReader(floor))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(e)

	// A cart 0.24 long and 0.08 wide; the aisles between shelving rows
	// are ~0.2 wide, so heading matters when crossing them.
	space := parmp.NewSE2Space(e, 0.12, 0.04)

	res, err := parmp.PlanPRM(space, parmp.Options{
		Procs:            16,
		Regions:          192,
		SamplesPerRegion: 40,
		ConnectK:         8,
		Strategy:         parmp.WorkStealing,
		Policy:           parmp.Hybrid(8),
		Seed:             11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("roadmap: %d nodes, %d edges; virtual time %.0f units\n",
		res.Roadmap.NumNodes(), res.Roadmap.NumEdges(), res.TotalTime)

	start := parmp.V(0.15, 0.51, 0) // facing +x in the left hall
	goal := parmp.V(1.85, 0.5, 0)   // far right hall
	path, ok := parmp.Query(space, res.Roadmap, start, goal, 10)
	if !ok {
		log.Fatal("no path found; raise SamplesPerRegion")
	}
	short := parmp.ShortcutPath(space, path, 200, 11)
	fmt.Printf("path: %d waypoints (%.3f length), shortcut to %d (%.3f)\n",
		len(path), parmp.PathLength(space, path),
		len(short), parmp.PathLength(space, short))
	for i, q := range short {
		fmt.Printf("  %2d: x=%.3f y=%.3f heading=%+.2f rad\n", i, q[0], q[1], q[2])
	}
}
