// Dubins car: a forward-only vehicle with a bounded turning radius plans
// through a corridor maze with the radial parallel RRT. Every tree edge
// is a shortest Dubins curve, so the extracted trajectory is drivable —
// the non-holonomic planning workload the paper highlights RRTs for.
//
//	go run ./examples/dubinscar
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"parmp"
)

// scene: a single wall at x = 0.5 with a doorway below y = 0.25. The car
// must dive to the doorway, drive through and climb on the far side.
const scene = `
name one-door
bounds 0 0 1 1
box 0.485 0.25 0.515 1
`

func main() {
	e, err := parmp.ParseEnvironment(strings.NewReader(scene))
	if err != nil {
		log.Fatal(err)
	}
	// Turning radius 0.06 relative to a 0.25-wide doorway.
	space := parmp.NewDubinsSpace(e, 0.06)

	root := parmp.V(0.2, 0.5, 0) // left hall, facing +x
	res, err := parmp.PlanRRT(space, root, parmp.Options{
		Procs:          8,
		Regions:        64,
		NodesPerRegion: 50,
		Step:           0.08,
		Radius:         1.2, // radial subdivision sphere in (x, y, theta)
		Strategy:       parmp.WorkStealing,
		Policy:         parmp.Hybrid(8),
		Seed:           3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grew %d feasible car states across %d cone regions (%.0f virtual units)\n",
		res.TotalNodes(), len(res.Branches), res.TotalTime)

	goal := parmp.V(0.8, 0.8, math.Pi/2) // far side, facing +y
	path, ok := parmp.NewTreeIndex(res).ExtractPath(space, goal)
	if !ok {
		log.Fatal("goal unreachable; grow more nodes per region")
	}
	fmt.Printf("drivable trajectory with %d waypoints:\n", len(path))
	for i, q := range path {
		if i%3 == 0 || i == len(path)-1 {
			fmt.Printf("  %2d: x=%.3f y=%.3f heading=%+.2f rad\n", i, q[0], q[1], q[2])
		}
	}
}
