// Linkage: plan for an articulated 8-DOF planar chain with the radial
// parallel RRT — the many-degrees-of-freedom workload class (manipulator
// arms, protein backbones) that motivates parallel sampling-based
// planning in the paper's introduction.
//
//	go run ./examples/linkage
package main

import (
	"fmt"
	"log"
	"math"

	"parmp"
)

func main() {
	// A 2D maze workspace; the robot is an 8-link chain anchored near the
	// lower-left corner, below the first wall's doorway. Its C-space is
	// 8-dimensional (one absolute angle per link), so exact planning is
	// hopeless and sampling shines.
	e := parmp.EnvironmentByName("maze-2d")
	links := []float64{0.06, 0.06, 0.05, 0.05, 0.04, 0.04, 0.03, 0.03}
	space := parmp.NewLinkageSpace(e, parmp.V(0.05, 0.1), links...)

	// Root the tree at a zig-zag configuration that snakes along the open
	// corridor below the walls' gaps.
	root := make(parmp.Config, len(links))
	for i := range root {
		root[i] = math.Pi / 6
		if i%2 == 1 {
			root[i] = -math.Pi / 6
		}
	}
	res, err := parmp.PlanRRT(space, root, parmp.Options{
		Procs:          8,
		Regions:        48,
		NodesPerRegion: 24,
		Step:           0.15,
		Radius:         2.5, // radial subdivision sphere in joint space
		Strategy:       parmp.WorkStealing,
		Policy:         parmp.Diffusive(),
		Seed:           5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grew %d tree nodes across %d cone regions\n",
		res.TotalNodes(), len(res.Branches))
	fmt.Printf("bridges between branches: %d (pruned %d cycle-closers)\n",
		len(res.Bridges), res.PrunedCycles)
	fmt.Printf("virtual time: %.0f units; per-proc load CV %.3f\n",
		res.TotalTime, res.CVAfter)

	stolen := 0
	for _, ps := range res.ProcStats {
		stolen += ps.TasksStolen
	}
	fmt.Printf("work stealing moved %d of %d region tasks\n", stolen, len(res.Branches))

	// Show how far the chain tip wandered from the root pose.
	var maxDist float64
	for _, tree := range res.Branches {
		for _, n := range tree.Nodes {
			if d := space.Distance(root, n.Q); d > maxDist {
				maxDist = d
			}
		}
	}
	fmt.Printf("deepest configuration is %.2f rad (joint metric) from the root\n", maxDist)
}
