package parmp

import (
	"context"
	"fmt"

	"parmp/internal/core"
	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/prm"
)

// Obstacle is a workspace obstacle; see env.Obstacle.
type Obstacle = env.Obstacle

// Mutation rejection errors; match with errors.Is. A rejected mutation
// fails the whole ApplyDelta with the engine fully unchanged.
var (
	// ErrDegenerateObstacle rejects obstacles that cannot block anything.
	ErrDegenerateObstacle = env.ErrDegenerateObstacle
	// ErrOutOfBounds rejects obstacles (or moves) landing entirely
	// outside the workspace.
	ErrOutOfBounds = env.ErrOutOfBounds
	// ErrNoSuchObstacle rejects removals/moves of nonexistent indices.
	ErrNoSuchObstacle = env.ErrNoSuchObstacle
	// ErrImmovableObstacle rejects moves of untranslatable obstacle types.
	ErrImmovableObstacle = env.ErrImmovableObstacle
)

// RepairStats summarizes incremental-repair work; see core.RepairStats.
// Engines accumulate it across ApplyDelta calls in their results'
// Repairs field, and each ApplyDelta call returns its own share.
type RepairStats = core.RepairStats

// NewBoxObstacle returns an axis-aligned box obstacle spanning [lo, hi].
func NewBoxObstacle(lo, hi Vec) Obstacle {
	return env.BoxObstacle{Box: geom.NewAABB(lo, hi)}
}

// NewSphereObstacle returns a sphere obstacle.
func NewSphereObstacle(center Vec, radius float64) Obstacle {
	return env.SphereObstacle{Center: center, Radius: radius}
}

// A Mutation is one edit to an engine's environment, applied through
// Engine.ApplyDelta (or Portfolio.ApplyDelta). Mutations are pure
// descriptions — constructing one does nothing until it is applied.
type Mutation interface {
	apply(e *Environment) (env.Delta, error)
}

// AddObstacle inserts an obstacle into the world.
type AddObstacle struct{ Obstacle Obstacle }

func (m AddObstacle) apply(e *Environment) (env.Delta, error) {
	return e.AddObstacle(m.Obstacle)
}

// RemoveObstacle deletes the obstacle at Index (position in the
// environment's obstacle slice, as of the moment the mutation applies).
type RemoveObstacle struct{ Index int }

func (m RemoveObstacle) apply(e *Environment) (env.Delta, error) {
	return e.RemoveObstacle(m.Index)
}

// MoveObstacle translates the obstacle at Index by By. It is rejected
// (the whole ApplyDelta fails, nothing changes) when the obstacle would
// land entirely outside the workspace.
type MoveObstacle struct {
	Index int
	By    Vec
}

func (m MoveObstacle) apply(e *Environment) (env.Delta, error) {
	return e.MoveObstacle(m.Index, m.By)
}

// A DynamicScenario scripts a moving-obstacle world: a base environment
// plus a deterministic mutation schedule (forklifts patrolling aisles, a
// door sliding over a narrow passage). Scenarios are the workload for
// incremental repair — feed each step's mutations to Engine.ApplyDelta.
type DynamicScenario struct {
	Name string
	Desc string

	buildMoves func() (*env.Environment, func(k int) []env.Move)
}

// Build returns a fresh base environment and the script: step k's
// mutations, to be applied in order 0, 1, 2, ... (each step's moves are
// relative to the poses the previous step left behind).
func (sc DynamicScenario) Build() (*Environment, func(k int) []Mutation) {
	e, steps := sc.buildMoves()
	return e, func(k int) []Mutation {
		mvs := steps(k)
		muts := make([]Mutation, len(mvs))
		for i, mv := range mvs {
			muts[i] = MoveObstacle{Index: mv.Index, By: mv.By}
		}
		return muts
	}
}

// DynamicScenarios lists the scripted moving-obstacle scenarios
// (warehouse-forklift, door).
func DynamicScenarios() []DynamicScenario {
	all := env.Scenarios()
	out := make([]DynamicScenario, len(all))
	for i, s := range all {
		out[i] = DynamicScenario{Name: s.Name, Desc: s.Desc, buildMoves: s.BuildMoves}
	}
	return out
}

// DynamicScenarioNames lists the scripted scenario names.
func DynamicScenarioNames() []string {
	return env.ScenarioNames()
}

// DynamicScenarioByName returns the named scenario, or ok=false.
func DynamicScenarioByName(name string) (DynamicScenario, bool) {
	for _, s := range DynamicScenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return DynamicScenario{}, false
}

// applyMutations runs muts in order against a fresh copy-on-write clone
// of cur's environment, returning the clone and the merged delta. The
// original environment (and every snapshot holding it) is untouched —
// on error the clone is discarded and nothing happened.
func applyMutations(cur *Space, muts []Mutation) (*env.Environment, env.Delta, error) {
	clone := cur.Env.Clone()
	var delta env.Delta
	for i, m := range muts {
		d, err := m.apply(clone)
		if err != nil {
			return nil, env.Delta{}, fmt.Errorf("parmp: mutation %d: %w", i, err)
		}
		if i == 0 {
			delta = d
		} else {
			delta = delta.Merge(d)
		}
	}
	return clone, delta, nil
}

// ApplyDelta mutates the engine's environment and incrementally repairs
// its committed structure, between growth rounds: the mutations apply to
// a copy-on-write clone of the world (old snapshots keep answering
// against the world they were built in), the planner re-validates only
// the state the delta can have invalidated (kd-scoped candidate
// selection for PRM, subtree pruning with frontier regrafting for the
// tree planners), and a fresh snapshot — carrying the new environment
// epoch and a bumped generation — is published atomically. Subsequent
// Grow calls sample the mutated world.
//
// All mutations commit or none do: a rejected mutation (degenerate
// obstacle, bad index, out-of-bounds move) returns an error with the
// engine fully unchanged. Cancellation matches Grow: on ctx expiry the
// partial repair is discarded, ErrStopped is returned, and the previous
// snapshot stays in place — ApplyDelta can be retried.
//
// The returned stats cover this call alone; cumulative totals live in
// the result's Repairs field. Calling with no mutations is a no-op.
func (e *Engine) ApplyDelta(ctx context.Context, muts ...Mutation) (RepairStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(muts) == 0 {
		return RepairStats{}, nil
	}
	var stop <-chan struct{}
	if ctx != nil {
		if ctx.Err() != nil {
			return RepairStats{}, ErrStopped
		}
		stop = ctx.Done()
	}
	newEnv, delta, err := applyMutations(e.space, muts)
	if err != nil {
		return RepairStats{}, err
	}
	newSpace := e.space.WithEnv(newEnv)
	old := e.snap.Load()
	switch {
	case e.prm != nil:
		// Scope the re-validation with a kd radius query over the
		// committed snapshot's index; AffectedVertices' nil ("nothing
		// affected") must not reach the core as nil ("scan everything").
		dc := cspace.NewDeltaChecker(e.space, delta)
		cand := old.prmIx.AffectedVertices(dc)
		if cand == nil {
			cand = []int{}
		}
		rep, err := e.prm.ApplyDelta(newSpace, delta, cand, stop)
		if err != nil {
			return RepairStats{}, err
		}
		e.space = newSpace
		ix := old.prmIx
		if rep.VertexRemap != nil {
			// Scoped index repair: labels carry over for untouched
			// components, only the kd-tree and touched components rebuild.
			ix = prm.RepairIndex(old.prmIx, e.prm.Result().Roadmap, rep.VertexRemap, rep.TouchedVertices)
		}
		e.publishIndexed(ix)
		return rep.Stats, nil
	case e.rrtc != nil:
		rep, err := e.rrtc.ApplyDelta(newSpace, delta, stop)
		if err != nil {
			return RepairStats{}, err
		}
		e.space = newSpace
		e.publish()
		return rep.Stats, nil
	default:
		rep, err := e.rrt.ApplyDelta(newSpace, delta, stop)
		if err != nil {
			return RepairStats{}, err
		}
		e.space = newSpace
		e.publish()
		return rep.Stats, nil
	}
}

// ApplyDelta mutates the world for every contestant: the race's shared
// space template advances (so engines built by future Luby restarts plan
// the mutated world) and each live engine repairs its committed
// structure via Engine.ApplyDelta. All racers receive the same mutation
// sequence, so their environments — and epochs — stay in lockstep. The
// returned stats sum the racers' repair work for this call.
//
// The mutations are validated against the template first: an invalid
// mutation returns an error with no racer touched. Cancellation mid-way
// leaves each engine individually consistent (repaired or untouched,
// never torn), but racers may briefly disagree on the epoch until a
// retried ApplyDelta completes; the template is only advanced once all
// engines have repaired.
func (p *Portfolio) ApplyDelta(ctx context.Context, muts ...Mutation) (RepairStats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total RepairStats
	if len(muts) == 0 {
		return total, nil
	}
	newEnv, _, err := applyMutations(p.space, muts)
	if err != nil {
		return total, err
	}
	if p.prebuilt != nil {
		st, err := p.prebuilt.ApplyDelta(ctx, muts...)
		if err != nil {
			return total, err
		}
		total.Add(st)
	}
	for _, eng := range p.engines {
		if eng == nil {
			continue
		}
		st, err := eng.ApplyDelta(ctx, muts...)
		if err != nil {
			return total, err
		}
		total.Add(st)
	}
	p.space = p.space.WithEnv(newEnv)
	switch {
	case p.winner != nil:
		p.snap.Store(p.winner.Snapshot())
	case p.prebuilt != nil:
		p.snap.Store(p.prebuilt.Snapshot())
	}
	return total, nil
}
