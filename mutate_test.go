package parmp

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
)

// assertPathValidIn checks that every configuration and every segment of
// path is collision-free in space.
func assertPathValidIn(t *testing.T, space *Space, path []Config) {
	t.Helper()
	for i, q := range path {
		if !space.Valid(q, nil) {
			t.Fatalf("path config %d (%v) collides in the mutated world", i, q)
		}
		if i > 0 && !space.LocalPlan(path[i-1], q, nil) {
			t.Fatalf("path segment %d-%d crosses the mutated obstacle", i-1, i)
		}
	}
}

// The acceptance-criteria stale-query test: a query issued after
// ApplyDelta commits must never return a path through the new obstacle.
func TestApplyDeltaStaleQueryNeverServed(t *testing.T) {
	ctx := context.Background()
	space := NewPointSpace(EnvironmentByName("free"))
	eng, err := NewEngine(space, testEngineOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.GrowN(ctx, 2); err != nil {
		t.Fatal(err)
	}
	start, goal := V(0.05, 0.5, 0.5), V(0.95, 0.5, 0.5)
	before := eng.Snapshot()
	if _, ok := before.Query(start, goal, 8); !ok {
		t.Fatal("free-space query should succeed before mutation")
	}

	// A cube in the middle: paths must re-route around it.
	cube := NewBoxObstacle(V(0.4, 0.4, 0.4), V(0.6, 0.6, 0.6))
	st, err := eng.ApplyDelta(ctx, AddObstacle{Obstacle: cube})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deltas != 1 || st.RemovedNodes == 0 {
		t.Fatalf("cube delta should remove nodes: %+v", st)
	}
	snap := eng.Snapshot()
	if snap.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", snap.Epoch())
	}
	if snap.Generation() <= before.Generation() {
		t.Fatalf("generation %d did not advance past %d", snap.Generation(), before.Generation())
	}
	if snap.Rounds() != before.Rounds() {
		t.Fatalf("repair changed rounds: %d -> %d", before.Rounds(), snap.Rounds())
	}
	path, ok := snap.Query(start, goal, 8)
	if !ok {
		t.Fatal("query should re-route around the cube")
	}
	assertPathValidIn(t, snap.space, path)

	// A full slab: no path can exist — any hit would be stale.
	slab := NewBoxObstacle(V(0.45, 0, 0), V(0.55, 1, 1))
	if _, err := eng.ApplyDelta(ctx, AddObstacle{Obstacle: slab}); err != nil {
		t.Fatal(err)
	}
	snap2 := eng.Snapshot()
	if snap2.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", snap2.Epoch())
	}
	if p, ok := snap2.Query(start, goal, 8); ok {
		t.Fatalf("stale path served through the slab: %v", p)
	}

	// Snapshot isolation: the pre-mutation snapshot still answers
	// against the world it was built in.
	if _, ok := before.Query(start, goal, 8); !ok {
		t.Fatal("old snapshot lost its answer")
	}

	// The engine is not torn: it keeps growing in the mutated world and
	// every new sample respects the slab.
	if err := eng.Grow(ctx); err != nil {
		t.Fatal(err)
	}
	snap3 := eng.Snapshot()
	if _, ok := snap3.Query(start, goal, 8); ok {
		t.Fatal("regrown roadmap reconnected through a solid slab")
	}
	if snap3.PRM().Repairs.Deltas != 2 {
		t.Fatalf("Repairs.Deltas = %d, want 2", snap3.PRM().Repairs.Deltas)
	}
}

// A world that never mutates must plan exactly as if the mutation API
// did not exist: a zero-mutation ApplyDelta is a no-op, and a
// removal-only delta leaves the committed roadmap bit-identical.
func TestApplyDeltaFrozenWorldInvariance(t *testing.T) {
	ctx := context.Background()
	opts := testEngineOpts()

	grow2 := func(mid func(e *Engine)) []byte {
		eng, err := NewEngine(NewPointSpace(EnvironmentByName("med-cube")), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Grow(ctx); err != nil {
			t.Fatal(err)
		}
		if mid != nil {
			mid(eng)
		}
		if err := eng.Grow(ctx); err != nil {
			t.Fatal(err)
		}
		return roadmapBytes(t, eng.Snapshot().PRM().Roadmap)
	}

	plain := grow2(nil)
	noop := grow2(func(e *Engine) {
		st, err := e.ApplyDelta(ctx)
		if err != nil || st != (RepairStats{}) {
			t.Fatalf("no-op ApplyDelta: %+v, %v", st, err)
		}
	})
	if !bytes.Equal(plain, noop) {
		t.Fatal("zero-mutation ApplyDelta changed the roadmap")
	}

	// Removal-only: repair never invalidates, the roadmap is unchanged,
	// but the epoch and generation still roll over (cache invalidation).
	eng, err := NewEngine(NewPointSpace(EnvironmentByName("med-cube")), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Grow(ctx); err != nil {
		t.Fatal(err)
	}
	before := eng.Snapshot()
	m1 := roadmapBytes(t, before.PRM().Roadmap)
	st, err := eng.ApplyDelta(ctx, RemoveObstacle{Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedNodes != 0 || st.CheckedNodes != 0 {
		t.Fatalf("removal-only delta did repair work: %+v", st)
	}
	snap := eng.Snapshot()
	if got := roadmapBytes(t, snap.PRM().Roadmap); !bytes.Equal(m1, got) {
		t.Fatal("removal-only delta changed the roadmap")
	}
	if snap.Epoch() != 1 || snap.Generation() != before.Generation()+1 {
		t.Fatalf("epoch/generation = %d/%d, want 1/%d", snap.Epoch(), snap.Generation(), before.Generation()+1)
	}
}

// Invalid mutations reject atomically: nothing applies, the snapshot
// pointer is untouched, and the error matches the sentinel.
func TestApplyDeltaRejectsInvalidMutations(t *testing.T) {
	ctx := context.Background()
	eng, err := NewEngine(NewPointSpace(EnvironmentByName("med-cube")), testEngineOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Grow(ctx); err != nil {
		t.Fatal(err)
	}
	before := eng.Snapshot()
	cases := []struct {
		name string
		muts []Mutation
		want error
	}{
		{"bad index", []Mutation{RemoveObstacle{Index: 99}}, ErrNoSuchObstacle},
		{"degenerate sphere", []Mutation{AddObstacle{Obstacle: NewSphereObstacle(V(0.5, 0.5, 0.5), -1)}}, ErrDegenerateObstacle},
		{"move out of bounds", []Mutation{MoveObstacle{Index: 0, By: V(5, 5, 5)}}, ErrOutOfBounds},
		{"atomic batch", []Mutation{
			AddObstacle{Obstacle: NewBoxObstacle(V(0.1, 0.1, 0.1), V(0.2, 0.2, 0.2))},
			RemoveObstacle{Index: 99},
		}, ErrNoSuchObstacle},
	}
	for _, tc := range cases {
		st, err := eng.ApplyDelta(ctx, tc.muts...)
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if st != (RepairStats{}) {
			t.Fatalf("%s: stats on failure: %+v", tc.name, st)
		}
		if eng.Snapshot() != before {
			t.Fatalf("%s: failed mutation published a snapshot", tc.name)
		}
	}
	if eng.Snapshot().Epoch() != 0 {
		t.Fatal("failed mutations bumped the epoch")
	}
}

// Tree engines repair too: pruned trees keep answering valid paths in
// the mutated world and keep growing afterwards.
func TestApplyDeltaTreeEngines(t *testing.T) {
	ctx := context.Background()
	root, goal := V(0.1, 0.1, 0.1), V(0.9, 0.9, 0.9)
	build := func(kind string) *Engine {
		space := NewPointSpace(EnvironmentByName("free"))
		opts := Options{Procs: 4, Regions: 32, NodesPerRegion: 25, Step: 0.06, Seed: 3}
		var (
			eng *Engine
			err error
		)
		if kind == "rrt" {
			eng, err = NewRRTEngine(space, root, opts)
		} else {
			eng, err = NewRRTConnectEngine(space, root, goal, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	for _, kind := range []string{"rrt", "rrtconnect"} {
		t.Run(kind, func(t *testing.T) {
			eng := build(kind)
			if err := eng.GrowN(ctx, 2); err != nil {
				t.Fatal(err)
			}
			before := eng.Snapshot()
			// Near the root, where the radial trees are dense — a central
			// obstacle can fall entirely between branches and repair
			// nothing.
			st, err := eng.ApplyDelta(ctx, AddObstacle{
				Obstacle: NewSphereObstacle(V(0.25, 0.25, 0.25), 0.12),
			})
			if err != nil {
				t.Fatal(err)
			}
			if st.Deltas != 1 || st.CheckedNodes == 0 {
				t.Fatalf("delta did no work: %+v", st)
			}
			snap := eng.Snapshot()
			if snap.Epoch() != 1 || snap.Generation() <= before.Generation() {
				t.Fatalf("epoch/gen = %d/%d after %d", snap.Epoch(), snap.Generation(), before.Generation())
			}
			if path, ok := snap.Query(root, goal, 1); ok {
				assertPathValidIn(t, snap.space, path)
			}
			if err := eng.Grow(ctx); err != nil {
				t.Fatal(err)
			}
			snap2 := eng.Snapshot()
			if snap2.NumNodes() <= snap.NumNodes() {
				t.Fatal("engine stopped growing after repair")
			}
			if path, ok := snap2.Query(root, goal, 1); ok {
				assertPathValidIn(t, snap2.space, path)
			}
			if snap2.RRT().Repairs.Deltas != 1 {
				t.Fatalf("Repairs.Deltas = %d, want 1", snap2.RRT().Repairs.Deltas)
			}
		})
	}
}

// Epoch and generation observed through Snapshot must be monotone under
// concurrent mutation, growth and queries (run with -race).
func TestApplyDeltaEpochMonotoneConcurrent(t *testing.T) {
	ctx := context.Background()
	eng, err := NewEngine(NewPointSpace(EnvironmentByName("free")), Options{
		Procs: 4, Regions: 16, SamplesPerRegion: 5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Grow(ctx); err != nil {
		t.Fatal(err)
	}
	const writers, deltasPerWriter = 2, 5
	var readers, producers sync.WaitGroup
	errs := make(chan error, writers+2)
	done := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastGen, lastEpoch uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				s := eng.Snapshot()
				if s.Generation() < lastGen || s.Epoch() < lastEpoch {
					errs <- errors.New("snapshot generation or epoch went backwards")
					return
				}
				lastGen, lastEpoch = s.Generation(), s.Epoch()
				s.Query(V(0.05, 0.05, 0.05), V(0.95, 0.95, 0.95), 4)
			}
		}()
	}
	for w := 0; w < writers; w++ {
		w := w
		producers.Add(1)
		go func() {
			defer producers.Done()
			for i := 0; i < deltasPerWriter; i++ {
				c := 0.05 + 0.03*float64(w*deltasPerWriter+i)
				_, err := eng.ApplyDelta(ctx, AddObstacle{
					Obstacle: NewSphereObstacle(V(c, 0.05, 0.05), 0.02),
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	producers.Add(1)
	go func() {
		defer producers.Done()
		if err := eng.GrowN(ctx, 2); err != nil {
			errs <- err
		}
	}()
	producers.Wait()
	close(done)
	readers.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := eng.Snapshot().Epoch(); got != writers*deltasPerWriter {
		t.Fatalf("final epoch = %d, want %d", got, writers*deltasPerWriter)
	}
}

// The scripted scenarios drive an engine end to end through the public
// API: warehouse forklifts patrol, the roadmap repairs each step, and
// the door scenario severs (then restores) the only passage.
func TestDynamicScenariosDriveEngine(t *testing.T) {
	ctx := context.Background()

	sc, ok := DynamicScenarioByName("warehouse-forklift")
	if !ok {
		t.Fatal("warehouse-forklift scenario missing")
	}
	e, step := sc.Build()
	eng, err := NewEngine(NewPointSpace(e), Options{
		Procs: 4, Regions: 36, SamplesPerRegion: 8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.GrowN(ctx, 2); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if _, err := eng.ApplyDelta(ctx, step(k)...); err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		if err := eng.Grow(ctx); err != nil {
			t.Fatal(err)
		}
	}
	snap := eng.Snapshot()
	if snap.PRM().Repairs.Deltas != 5 {
		t.Fatalf("Repairs.Deltas = %d, want 5", snap.PRM().Repairs.Deltas)
	}
	// 3 forklifts move per step: epoch counts every committed mutation.
	if snap.Epoch() != 15 {
		t.Fatalf("epoch = %d, want 15", snap.Epoch())
	}

	door, ok := DynamicScenarioByName("door")
	if !ok {
		t.Fatal("door scenario missing")
	}
	de, dstep := door.Build()
	deng, err := NewEngine(NewPointSpace(de), testEngineOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := deng.GrowN(ctx, 2); err != nil {
		t.Fatal(err)
	}
	start, goal := V(0.25, 0.2, 0.5), V(0.75, 0.2, 0.5)
	if _, ok := deng.Snapshot().Query(start, goal, 8); !ok {
		t.Fatal("doorway query should succeed while the door is open")
	}
	if _, err := deng.ApplyDelta(ctx, dstep(0)...); err != nil { // close
		t.Fatal(err)
	}
	if p, ok := deng.Snapshot().Query(start, goal, 8); ok {
		t.Fatalf("closed door still traversed: %v", p)
	}
	if _, err := deng.ApplyDelta(ctx, dstep(1)...); err != nil { // open
		t.Fatal(err)
	}
	if err := deng.GrowN(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := deng.Snapshot().Query(start, goal, 8); !ok {
		t.Fatal("reopened doorway never reconnected after regrowth")
	}
}

// Portfolio.ApplyDelta keeps every racer's world in lockstep — before
// the race starts, mid-race, and after a winner is decided.
func TestPortfolioApplyDelta(t *testing.T) {
	ctx := context.Background()
	space := NewPointSpace(EnvironmentByName("free"))
	start, goal := V(0.05, 0.05, 0.05), V(0.95, 0.95, 0.95)
	pf, err := NewPortfolio(space, start, goal, Options{
		Procs: 4, Regions: 16, SamplesPerRegion: 8, Seed: 2,
	}, PortfolioOptions{Racers: 2, MaxWaves: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate before any wave: the prebuilt racer repairs, and racers
	// built later inherit the mutated template.
	cube := NewBoxObstacle(V(0.4, 0.4, 0.4), V(0.6, 0.6, 0.6))
	if _, err := pf.ApplyDelta(ctx, AddObstacle{Obstacle: cube}); err != nil {
		t.Fatal(err)
	}
	if pf.space.Env.Epoch != 1 {
		t.Fatalf("template epoch = %d, want 1", pf.space.Env.Epoch)
	}
	if _, err := pf.Solve(ctx); err != nil {
		t.Fatal(err)
	}
	snap := pf.Snapshot()
	if snap.Epoch() != 1 {
		t.Fatalf("winner snapshot epoch = %d, want 1", snap.Epoch())
	}
	path, ok := snap.Query(start, goal, 8)
	if !ok {
		t.Fatal("winner should solve around the cube")
	}
	assertPathValidIn(t, snap.space, path)

	// Post-race mutation: a full slab severs the space; the published
	// snapshot must stop serving the old path.
	slab := NewBoxObstacle(V(0.45, 0, 0), V(0.55, 1, 1))
	if _, err := pf.ApplyDelta(ctx, AddObstacle{Obstacle: slab}); err != nil {
		t.Fatal(err)
	}
	snap2 := pf.Snapshot()
	if snap2.Epoch() != 2 {
		t.Fatalf("post-slab epoch = %d, want 2", snap2.Epoch())
	}
	if p, ok := snap2.Query(start, goal, 8); ok {
		t.Fatalf("stale path served through the slab: %v", p)
	}
	// Every live racer saw the same mutation sequence.
	for i, eng := range pf.engines {
		if eng == nil {
			continue
		}
		if got := eng.Snapshot().Epoch(); got != 2 {
			t.Fatalf("racer %d epoch = %d, want 2", i, got)
		}
	}
}
