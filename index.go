package parmp

import (
	"parmp/internal/core"
	"parmp/internal/prm"
)

// A RoadmapIndex answers repeated queries against a frozen roadmap: the
// kd-tree and connected-component labels are built once, and every
// Query runs against them without touching the roadmap. This is the
// structure engine snapshots query through; build one directly when
// planning with PlanPRM and answering more than a handful of queries.
//
// The index keeps references into the roadmap, which must not be
// mutated afterwards. Safe for concurrent use.
type RoadmapIndex struct {
	ix *prm.Index
}

// NewRoadmapIndex builds a query index over m (in parallel for large
// roadmaps).
func NewRoadmapIndex(m *Roadmap) *RoadmapIndex {
	return &RoadmapIndex{ix: prm.BuildIndex(m)}
}

// Query connects start and goal to the roadmap (each to its k nearest
// nodes) and extracts a shortest path, returning ok=false if none
// exists. The roadmap is not modified.
func (ix *RoadmapIndex) Query(space *Space, start, goal Config, k int) ([]Config, bool) {
	return ix.ix.Query(space, start, goal, k, nil)
}

// A TreeIndex answers repeated path extractions against a frozen RRT
// result: the tree nodes are gathered into a kd-tree once, and every
// ExtractPath finds attachment candidates by nearest-neighbour lookup
// instead of re-sorting all nodes. This is the structure engine
// snapshots extract through; build one directly when planning with
// PlanRRT or PlanRRTConnect and extracting more than one path.
//
// The index keeps references into the result, which must not be grown
// afterwards. Safe for concurrent use.
type TreeIndex struct {
	ix *core.TreeIndex
}

// NewTreeIndex builds an extraction index over res (in parallel for
// large trees).
func NewTreeIndex(res *RRTResult) *TreeIndex {
	return &TreeIndex{ix: core.BuildTreeIndex(res)}
}

// ExtractPath returns a collision-free path from the tree root to goal,
// or ok=false when the goal cannot be attached to the tree.
func (ix *TreeIndex) ExtractPath(space *Space, goal Config) ([]Config, bool) {
	return ix.ix.ExtractPath(space, goal, nil)
}
