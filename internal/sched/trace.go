package sched

import (
	"fmt"
	"io"
)

// TraceEvent is one runtime occurrence, emitted through Config.Trace.
// "exec" events carry the task's start time and duration; protocol events
// (steal-req/grant/deny, retire) are instants with Dur == 0.
type TraceEvent struct {
	Time float64 // virtual units (simulator) or seconds since start (executor)
	Kind string  // "exec", "steal-req", "steal-grant", "steal-deny", "retire"
	Proc int     // acting worker
	Peer int     // counterpart (victim/thief), -1 when not applicable
	Task int     // task ID, -1 when not applicable
	Dur  float64 // task duration for "exec" events, 0 otherwise
}

// String formats the event as one log line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("t=%.1f %-11s proc=%d peer=%d task=%d", e.Time, e.Kind, e.Proc, e.Peer, e.Task)
}

// Tracer receives runtime events.
type Tracer func(TraceEvent)

// WriteTrace returns a Tracer that writes one line per event to w.
func WriteTrace(w io.Writer) Tracer {
	return func(e TraceEvent) {
		fmt.Fprintln(w, e.String())
	}
}
