package sched_test

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"parmp/internal/dist"
	"parmp/internal/exec"
	"parmp/internal/sched"
	"parmp/internal/steal"
	"parmp/internal/work"
)

// queuesOf builds w queues of n tasks each; every task increments ran and
// reports the given cost.
func queuesOf(w, n int, cost float64, ran *int64) [][]work.Task {
	queues := make([][]work.Task, w)
	id := 0
	for p := 0; p < w; p++ {
		for i := 0; i < n; i++ {
			queues[p] = append(queues[p], work.Task{ID: id, Run: func() (float64, int) {
				if ran != nil {
					atomic.AddInt64(ran, 1)
				}
				return cost, 0
			}})
			id++
		}
	}
	return queues
}

func TestCanceledNilStop(t *testing.T) {
	if sched.Canceled(nil) {
		t.Fatal("nil stop must never read as canceled")
	}
	ch := make(chan struct{})
	if sched.Canceled(ch) {
		t.Fatal("open stop must not read as canceled")
	}
	close(ch)
	if !sched.Canceled(ch) {
		t.Fatal("closed stop must read as canceled")
	}
}

func TestDistStopReturnsPartialReport(t *testing.T) {
	stop := make(chan struct{})
	close(stop) // already canceled: the run must stop at the first event
	var ran int64
	rep := dist.Runtime.Run(sched.Config{
		Workers: 4,
		Profile: work.Hopper(),
		Stop:    stop,
	}, queuesOf(4, 8, 10, &ran))
	if !rep.Stopped {
		t.Fatal("report must be marked Stopped")
	}
	if ran != 0 {
		t.Fatalf("pre-canceled run executed %d tasks", ran)
	}
	if rep.TerminationCost != 0 {
		t.Fatal("stopped run must not charge termination detection")
	}
}

func TestDistNoStopUnaffected(t *testing.T) {
	var ran int64
	base := dist.Runtime.Run(sched.Config{Workers: 4, Profile: work.Hopper()},
		queuesOf(4, 8, 10, &ran))
	var ran2 int64
	withStop := dist.Runtime.Run(sched.Config{
		Workers: 4, Profile: work.Hopper(), Stop: make(chan struct{}),
	}, queuesOf(4, 8, 10, &ran2))
	if base.Stopped || withStop.Stopped {
		t.Fatal("unfired stop must not mark reports stopped")
	}
	if base.Makespan != withStop.Makespan || ran != ran2 {
		t.Fatal("an unfired Stop channel must not perturb the simulation")
	}
}

func TestExecStopBetweenTasks(t *testing.T) {
	stop := make(chan struct{})
	var ran int64
	started := make(chan struct{})
	release := make(chan struct{})
	// Worker 0's first task signals that it is in flight and blocks until
	// released; cancellation fires while it runs, so it must complete but
	// no later task may start.
	queues := make([][]work.Task, 1)
	queues[0] = append(queues[0], work.Task{ID: 0, Run: func() (float64, int) {
		close(started)
		<-release
		atomic.AddInt64(&ran, 1)
		return 1, 0
	}})
	for i := 1; i < 16; i++ {
		queues[0] = append(queues[0], work.Task{ID: i, Run: func() (float64, int) {
			atomic.AddInt64(&ran, 1)
			return 1, 0
		}})
	}
	done := make(chan sched.Report, 1)
	go func() {
		done <- exec.Runtime.Run(sched.Config{Workers: 1, Stop: stop}, queues)
	}()
	<-started
	close(stop)
	close(release)
	rep := <-done
	if !rep.Stopped {
		t.Fatal("report must be marked Stopped")
	}
	if got := atomic.LoadInt64(&ran); got != 1 {
		t.Fatalf("expected only the in-flight task to finish, ran %d", got)
	}
}

func TestExecStopLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	stop := make(chan struct{})
	close(stop)
	rep := exec.Runtime.Run(sched.Config{
		Workers: 8,
		Policy:  steal.RandK{K: 2},
		Stop:    stop,
	}, queuesOf(8, 4, 1, nil))
	if !rep.Stopped {
		t.Fatal("report must be marked Stopped")
	}
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}
