// Package sched defines the scheduler runtime abstraction shared by the
// deterministic virtual-time simulator (internal/dist) and the real
// goroutine work-stealing executor (internal/exec): one Config, one
// Report, one Runtime interface, and the deque/steal-chunk machinery both
// backends execute.
//
// The planners in internal/core drive every pipeline phase through a
// Runtime, so the same phased workload can replay on the simulated
// distributed machine, run for real on host goroutines, or — in the
// future — execute on a network-distributed backend, without the
// planners changing.
package sched

import (
	"math"
	"time"

	"parmp/internal/steal"
	"parmp/internal/work"
)

// Config parameterizes a runtime execution.
type Config struct {
	// Workers is the parallelism degree: virtual processors for the
	// simulator, goroutines for the host executor.
	Workers int
	// Profile supplies latency and handling constants (simulator only;
	// the host executor pays real costs instead).
	Profile work.MachineProfile
	// Policy selects steal victims; nil disables stealing entirely
	// (workers only drain their own queues).
	Policy steal.Policy
	// StealChunk is the fraction of a victim's pending deque transferred
	// per successful steal, from the back (default 0.5). At least one
	// task always transfers, so a vanishing fraction means one task per
	// steal, and values above 1 clamp to 1 ("steal everything"). Both
	// backends round the quantum up (see TakeCount).
	StealChunk float64
	// Seed drives victim randomization.
	Seed uint64
	// MaxBackoff caps the simulator's exponential retry backoff, as a
	// multiple of the remote latency (default 16).
	MaxBackoff float64
	// MaxRounds bounds how many consecutive unsuccessful victim rounds a
	// thief tries before giving up for good (0 = retry until global
	// termination). Bounded retries model schedulers whose idle
	// processors stop polling, leaving residual imbalance when work is
	// scarce — the paper's "low probability of finding work" effect.
	MaxRounds int
	// Stop, when non-nil, requests cooperative cancellation: the host
	// executor observes it between tasks (and while an idle thief sleeps),
	// the simulator between virtual events. A stopped run returns a
	// Report with Stopped set; already-executed tasks keep their recorded
	// results, unexecuted ones are simply absent from the report. Wire a
	// context's Done channel here to make a phase deadline-bounded.
	Stop <-chan struct{}
	// Trace, when non-nil, receives execution events (see TraceEvent):
	// in virtual-time order from the simulator, serialized but
	// real-time-ordered from the host executor. Debugging only.
	Trace Tracer
}

// Chunk returns the normalized steal fraction: the 0.5 default when
// StealChunk is unset (<= 0), clamped to 1 when it exceeds 1 — a caller
// asking for more than the whole deque means "steal everything", not the
// default.
func (c Config) Chunk() float64 {
	if c.StealChunk <= 0 {
		return 0.5
	}
	if c.StealChunk > 1 {
		return 1
	}
	return c.StealChunk
}

// WorkerStats reports one worker's execution profile. Times are virtual
// units for the simulator and seconds for the host executor.
type WorkerStats struct {
	Busy   float64 // time spent executing tasks
	Idle   float64 // makespan minus Busy
	Finish float64 // completion time of the worker's last task
	// TasksLocal counts tasks executed from the original assignment;
	// TasksStolen those stolen from others; TasksLost those stolen away.
	TasksLocal                                int
	TasksStolen                               int
	TasksLost                                 int
	StealsIssued, StealsGranted, StealsDenied int
}

// Report is the outcome of a runtime execution.
type Report struct {
	// Makespan is the completion time of the whole run: virtual time for
	// the simulator, wall-clock seconds for the host executor.
	Makespan float64
	// Wall is the host wall-clock duration (zero for the simulator,
	// whose runs complete in virtual time).
	Wall       time.Duration
	Workers    []WorkerStats
	TotalTasks int
	// ExecutedBy[taskID] is the worker that ultimately ran the task
	// (ownership transfer makes this differ from the initial owner).
	ExecutedBy map[int]int
	// Cost[taskID] is the task's reported cost; Payload[taskID] its
	// reported payload (e.g. roadmap vertices created), for downstream
	// migration pricing.
	Cost    map[int]float64
	Payload map[int]int
	// Elapsed[taskID] is the time the task actually occupied its worker,
	// in the report's time units: for the simulator this is identical to
	// Cost (a task occupies exactly its reported virtual cost); for the
	// host executor it is the measured wall-clock seconds of the task's
	// Run call (Cost stays whatever the closure reported, which may be in
	// different units). Parity contract, asserted in internal/sched's
	// tests: both backends populate Elapsed for every executed task, and
	// each worker's Busy equals the sum of its tasks' Elapsed.
	Elapsed map[int]float64
	// TaskRegion[taskID] is the executed task's work.Task.Region tag, the
	// attribution key the online cost model (internal/costmodel) uses to
	// fold Elapsed into per-region estimates. Tasks tagged work.NoRegion
	// are recorded as such; untagged producers leave the zero value
	// (region 0), so only region-tagged phases should be fed to the model.
	TaskRegion map[int]int
	// TerminationCost is the virtual time spent detecting global
	// termination (simulator only; zero when stealing is disabled).
	TerminationCost float64
	// Stopped reports that the run was cancelled through Config.Stop
	// before all tasks executed. Executed tasks' entries in ExecutedBy/
	// Cost/Payload remain valid; makespans and worker stats cover only
	// the work done before the stop was observed.
	Stopped bool
}

// Canceled reports whether stop is non-nil and has fired, without
// blocking. Both runtime backends use this one check so "between tasks"
// and "between events" observe cancellation identically.
func Canceled(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// Runtime executes per-worker task queues to completion: queues[w] is
// worker w's initial assignment, executed front to back, with steals
// taking a chunk from the back. When the queue count differs from the
// configured worker count, implementations must accept the workload
// anyway and redistribute it with Reshard (round-robin, task by task) —
// both backends share this re-shard path so a workload sharded for one
// parallelism degree runs identically-assigned on another.
// Implementations: internal/dist (virtual time), internal/exec (host
// goroutines).
type Runtime interface {
	Run(cfg Config, queues [][]work.Task) Report
}

// RuntimeFunc adapts a function to the Runtime interface.
type RuntimeFunc func(Config, [][]work.Task) Report

// Run implements Runtime.
func (f RuntimeFunc) Run(cfg Config, queues [][]work.Task) Report { return f(cfg, queues) }

// Entry is a deque entry: a task tagged with its provenance.
type Entry struct {
	Task   work.Task
	Stolen bool
}

// TakeCount returns how many of a victim's n pending tasks one steal
// transfers under the given chunk fraction: ceil(n*chunk), clamped to
// [1, n]. Rounding up is the shared rule for both backends — the
// simulator and the executor must transfer identical quanta so host
// runs reproduce simulated steal granularity.
func TakeCount(n int, chunk float64) int {
	if n <= 0 {
		return 0
	}
	take := int(math.Ceil(float64(n) * chunk))
	if take < 1 {
		take = 1
	}
	if take > n {
		take = n
	}
	return take
}

// Reshard redistributes queues over exactly workers deques when the
// counts differ, assigning tasks round-robin in queue order (task i of
// the flattened workload goes to worker i mod workers). Queues already
// sharded for the right worker count pass through unchanged, preserving
// the caller's assignment. Both Runtime backends use this one path, so a
// mismatched workload is never a panic in one backend and a silent
// re-shard in the other.
func Reshard(queues [][]work.Task, workers int) [][]work.Task {
	if workers <= 0 || len(queues) == workers {
		return queues
	}
	resharded := make([][]work.Task, workers)
	i := 0
	for _, q := range queues {
		for _, t := range q {
			resharded[i%workers] = append(resharded[i%workers], t)
			i++
		}
	}
	return resharded
}

// Backoff returns the bounded exponential backoff delay after attempt
// consecutive failed steal rounds (attempt >= 1): base * 2^(attempt-1),
// capped at base * maxMultiple (default 16 when maxMultiple <= 0). The
// simulator charges it in virtual time; the executor sleeps it in wall
// time — one curve, so idle thieves back off identically instead of
// hot-spinning on their victims' deques.
func Backoff(attempt int, base, maxMultiple float64) float64 {
	if attempt < 1 {
		attempt = 1
	}
	if maxMultiple <= 0 {
		maxMultiple = 16
	}
	d := base * math.Pow(2, float64(attempt-1))
	if lim := base * maxMultiple; d > lim {
		d = lim
	}
	return d
}

// StealBack removes one steal quantum from the back of items, marking the
// granted entries stolen. The grant is an independent copy, so the
// caller may keep appending to rest without clobbering it.
func StealBack(items []Entry, chunk float64) (rest, grant []Entry) {
	n := len(items)
	if n == 0 {
		return items, nil
	}
	take := TakeCount(n, chunk)
	grant = make([]Entry, take)
	copy(grant, items[n-take:])
	for i := range grant {
		grant[i].Stolen = true
	}
	return items[:n-take], grant
}
