// Parity between the two sched.Runtime implementations: the virtual-time
// simulator (internal/dist) and the real goroutine executor
// (internal/exec) must agree on the scheduling contract — every task
// executes exactly once, counts balance, the report covers all IDs —
// when fed the same workload, policy and seed. Run under -race this also
// exercises the executor's concurrent accounting.
package sched_test

import (
	"sync/atomic"
	"testing"

	"parmp/internal/dist"
	"parmp/internal/exec"
	"parmp/internal/sched"
	"parmp/internal/steal"
	"parmp/internal/work"
)

// parityWorkload builds an imbalanced task set (all work on worker 0) and
// a per-task execution counter.
func parityWorkload(workers, tasks int) ([][]work.Task, []int64) {
	execCount := make([]int64, tasks)
	queues := make([][]work.Task, workers)
	for i := 0; i < tasks; i++ {
		i := i
		queues[0] = append(queues[0], work.Task{
			ID:      i,
			Payload: i % 3,
			Run: func() (float64, int) {
				atomic.AddInt64(&execCount[i], 1)
				return float64(1 + i%5), i % 3
			},
		})
	}
	return queues, execCount
}

func checkParityReport(t *testing.T, name string, rep sched.Report, execCount []int64, workers int) {
	t.Helper()
	tasks := len(execCount)
	for i, c := range execCount {
		if c != 1 {
			t.Errorf("%s: task %d ran %d times, want 1", name, i, c)
		}
	}
	if rep.TotalTasks != tasks {
		t.Errorf("%s: TotalTasks = %d, want %d", name, rep.TotalTasks, tasks)
	}
	if len(rep.Workers) != workers {
		t.Fatalf("%s: %d worker stats, want %d", name, len(rep.Workers), workers)
	}
	local, stolen, lost := 0, 0, 0
	for w, ws := range rep.Workers {
		if ws.TasksLocal < 0 || ws.TasksStolen < 0 || ws.TasksLost < 0 {
			t.Errorf("%s: worker %d has negative counts: %+v", name, w, ws)
		}
		if ws.StealsIssued < ws.StealsGranted+ws.StealsDenied {
			t.Errorf("%s: worker %d issued %d < granted %d + denied %d",
				name, w, ws.StealsIssued, ws.StealsGranted, ws.StealsDenied)
		}
		local += ws.TasksLocal
		stolen += ws.TasksStolen
		lost += ws.TasksLost
	}
	if local+stolen != tasks {
		t.Errorf("%s: local %d + stolen %d != total %d", name, local, stolen, tasks)
	}
	// A queued task can be re-stolen before running, so transfers (lost)
	// may exceed stolen executions, never the reverse.
	if lost < stolen {
		t.Errorf("%s: tasks lost %d < tasks stolen %d", name, lost, stolen)
	}
	if len(rep.ExecutedBy) != tasks {
		t.Fatalf("%s: ExecutedBy has %d entries, want %d", name, len(rep.ExecutedBy), tasks)
	}
	for i := 0; i < tasks; i++ {
		w, ok := rep.ExecutedBy[i]
		if !ok {
			t.Errorf("%s: task %d missing from ExecutedBy", name, i)
		} else if w < 0 || w >= workers {
			t.Errorf("%s: task %d executed by out-of-range worker %d", name, i, w)
		}
		if rep.Cost[i] != float64(1+i%5) {
			t.Errorf("%s: task %d cost %v, want %v", name, i, rep.Cost[i], float64(1+i%5))
		}
		if rep.Payload[i] != i%3 {
			t.Errorf("%s: task %d payload %d, want %d", name, i, rep.Payload[i], i%3)
		}
	}
}

func TestRuntimeParity(t *testing.T) {
	const workers, tasks = 4, 24
	runtimes := []struct {
		name string
		rt   sched.Runtime
	}{
		{"dist", dist.Runtime},
		{"exec", exec.Runtime},
	}
	policies := []struct {
		name   string
		policy steal.Policy
	}{
		{"none", nil},
		{"rand2", steal.RandK{K: 2}},
		{"hybrid", steal.Hybrid{K: 2}},
	}
	for _, rt := range runtimes {
		for _, pol := range policies {
			t.Run(rt.name+"/"+pol.name, func(t *testing.T) {
				queues, execCount := parityWorkload(workers, tasks)
				cfg := sched.Config{
					Workers:    workers,
					Profile:    work.Hopper(),
					Policy:     pol.policy,
					StealChunk: 0.25,
					Seed:       42,
				}
				rep := rt.rt.Run(cfg, queues)
				checkParityReport(t, rt.name+"/"+pol.name, rep, execCount, workers)
			})
		}
	}
}

func TestRuntimeParityMaxRounds(t *testing.T) {
	// Bounded retries: with MaxRounds set, thieves eventually retire, but
	// both runtimes must still complete every task (owners drain their own
	// deques regardless).
	const workers, tasks = 4, 16
	for _, rt := range []struct {
		name string
		rt   sched.Runtime
	}{{"dist", dist.Runtime}, {"exec", exec.Runtime}} {
		t.Run(rt.name, func(t *testing.T) {
			queues, execCount := parityWorkload(workers, tasks)
			rep := rt.rt.Run(sched.Config{
				Workers:   workers,
				Profile:   work.Hopper(),
				Policy:    steal.RandK{K: 1},
				MaxRounds: 2,
				Seed:      7,
			}, queues)
			checkParityReport(t, rt.name, rep, execCount, workers)
		})
	}
}
