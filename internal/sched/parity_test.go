// Parity between the two sched.Runtime implementations: the virtual-time
// simulator (internal/dist) and the real goroutine executor
// (internal/exec) must agree on the scheduling contract — every task
// executes exactly once, counts balance, the report covers all IDs —
// when fed the same workload, policy and seed. Run under -race this also
// exercises the executor's concurrent accounting.
package sched_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"parmp/internal/dist"
	"parmp/internal/exec"
	"parmp/internal/rng"
	"parmp/internal/sched"
	"parmp/internal/steal"
	"parmp/internal/work"
)

// parityWorkload builds an imbalanced task set (all work on worker 0) and
// a per-task execution counter.
func parityWorkload(workers, tasks int) ([][]work.Task, []int64) {
	execCount := make([]int64, tasks)
	queues := make([][]work.Task, workers)
	for i := 0; i < tasks; i++ {
		i := i
		queues[0] = append(queues[0], work.Task{
			ID:      i,
			Payload: i % 3,
			Region:  i % 4,
			Run: func() (float64, int) {
				atomic.AddInt64(&execCount[i], 1)
				return float64(1 + i%5), i % 3
			},
		})
	}
	return queues, execCount
}

func checkParityReport(t *testing.T, name string, rep sched.Report, execCount []int64, workers int) {
	t.Helper()
	tasks := len(execCount)
	for i, c := range execCount {
		if c != 1 {
			t.Errorf("%s: task %d ran %d times, want 1", name, i, c)
		}
	}
	if rep.TotalTasks != tasks {
		t.Errorf("%s: TotalTasks = %d, want %d", name, rep.TotalTasks, tasks)
	}
	if len(rep.Workers) != workers {
		t.Fatalf("%s: %d worker stats, want %d", name, len(rep.Workers), workers)
	}
	local, stolen, lost := 0, 0, 0
	for w, ws := range rep.Workers {
		if ws.TasksLocal < 0 || ws.TasksStolen < 0 || ws.TasksLost < 0 {
			t.Errorf("%s: worker %d has negative counts: %+v", name, w, ws)
		}
		if ws.StealsIssued < ws.StealsGranted+ws.StealsDenied {
			t.Errorf("%s: worker %d issued %d < granted %d + denied %d",
				name, w, ws.StealsIssued, ws.StealsGranted, ws.StealsDenied)
		}
		local += ws.TasksLocal
		stolen += ws.TasksStolen
		lost += ws.TasksLost
	}
	if local+stolen != tasks {
		t.Errorf("%s: local %d + stolen %d != total %d", name, local, stolen, tasks)
	}
	// A queued task can be re-stolen before running, so transfers (lost)
	// may exceed stolen executions, never the reverse.
	if lost < stolen {
		t.Errorf("%s: tasks lost %d < tasks stolen %d", name, lost, stolen)
	}
	if len(rep.ExecutedBy) != tasks {
		t.Fatalf("%s: ExecutedBy has %d entries, want %d", name, len(rep.ExecutedBy), tasks)
	}
	for i := 0; i < tasks; i++ {
		w, ok := rep.ExecutedBy[i]
		if !ok {
			t.Errorf("%s: task %d missing from ExecutedBy", name, i)
		} else if w < 0 || w >= workers {
			t.Errorf("%s: task %d executed by out-of-range worker %d", name, i, w)
		}
		if rep.Cost[i] != float64(1+i%5) {
			t.Errorf("%s: task %d cost %v, want %v", name, i, rep.Cost[i], float64(1+i%5))
		}
		if rep.Payload[i] != i%3 {
			t.Errorf("%s: task %d payload %d, want %d", name, i, rep.Payload[i], i%3)
		}
		// Per-task cost attribution (the online cost model's input): both
		// backends must record every executed task's occupancy time and its
		// region tag, whatever the steal schedule did to placement.
		if e, ok := rep.Elapsed[i]; !ok {
			t.Errorf("%s: task %d missing from Elapsed", name, i)
		} else if e < 0 {
			t.Errorf("%s: task %d elapsed %v, want >= 0", name, i, e)
		}
		if r, ok := rep.TaskRegion[i]; !ok {
			t.Errorf("%s: task %d missing from TaskRegion", name, i)
		} else if r != i%4 {
			t.Errorf("%s: task %d region %d, want %d", name, i, r, i%4)
		}
	}
}

func TestRuntimeParity(t *testing.T) {
	const workers, tasks = 4, 24
	runtimes := []struct {
		name string
		rt   sched.Runtime
	}{
		{"dist", dist.Runtime},
		{"exec", exec.Runtime},
	}
	policies := []struct {
		name   string
		policy steal.Policy
	}{
		{"none", nil},
		{"rand2", steal.RandK{K: 2}},
		{"hybrid", steal.Hybrid{K: 2}},
	}
	for _, rt := range runtimes {
		for _, pol := range policies {
			t.Run(rt.name+"/"+pol.name, func(t *testing.T) {
				queues, execCount := parityWorkload(workers, tasks)
				cfg := sched.Config{
					Workers:    workers,
					Profile:    work.Hopper(),
					Policy:     pol.policy,
					StealChunk: 0.25,
					Seed:       42,
				}
				rep := rt.rt.Run(cfg, queues)
				checkParityReport(t, rt.name+"/"+pol.name, rep, execCount, workers)
			})
		}
	}
}

// TestPerTaskCostParity pins the backend-specific halves of the Elapsed
// contract: the simulator's Elapsed is bit-identical to Cost (a task
// occupies exactly its virtual cost), and in both backends each worker's
// Busy equals the sum of the Elapsed of the tasks it executed (measured
// wall time for the executor), so per-region cost attribution and
// per-worker utilization are two views of the same measurements.
func TestPerTaskCostParity(t *testing.T) {
	const workers, tasks = 4, 24
	for _, rt := range []struct {
		name string
		rt   sched.Runtime
	}{{"dist", dist.Runtime}, {"exec", exec.Runtime}} {
		t.Run(rt.name, func(t *testing.T) {
			queues, execCount := parityWorkload(workers, tasks)
			rep := rt.rt.Run(sched.Config{
				Workers:    workers,
				Profile:    work.Hopper(),
				Policy:     steal.RandK{K: 2},
				StealChunk: 0.25,
				Seed:       42,
			}, queues)
			checkParityReport(t, rt.name, rep, execCount, workers)
			if rt.name == "dist" {
				for i := 0; i < tasks; i++ {
					if rep.Elapsed[i] != rep.Cost[i] {
						t.Errorf("dist: task %d elapsed %v != cost %v", i, rep.Elapsed[i], rep.Cost[i])
					}
				}
			}
			busySum := make([]float64, workers)
			for id, e := range rep.Elapsed {
				busySum[rep.ExecutedBy[id]] += e
			}
			for w := range rep.Workers {
				got, want := rep.Workers[w].Busy, busySum[w]
				// Tolerance covers float summation order (the executor sums
				// durations as integers, the check sums float seconds).
				tol := 1e-9 * (1 + want)
				if diff := got - want; diff > tol || diff < -tol {
					t.Errorf("%s: worker %d busy %v != sum of elapsed %v", rt.name, w, got, want)
				}
			}
		})
	}
}

// noVictims is a steal policy with nobody to ask — the mesh-corner
// degenerate case. Thieves must retire (with a trace event) instead of
// spinning, identically in both backends.
type noVictims struct{}

func (noVictims) Name() string                                           { return "no-victims" }
func (noVictims) Victims(thief, procs, attempt int, _ *rng.Stream) []int { return nil }

// kindsByProc groups a trace stream's event kinds per worker, in arrival
// order. The executor's stream is interleaved across workers but ordered
// within one, so per-worker sequences compare deterministically.
func kindsByProc(events []sched.TraceEvent, workers int) [][]string {
	out := make([][]string, workers)
	for _, e := range events {
		out[e.Proc] = append(out[e.Proc], e.Kind)
	}
	return out
}

// TestTraceKindSequenceParity fixes a workload whose schedule is
// deterministic in both backends (every worker drains its own queue; the
// policy has no victims to offer) and asserts the two runtimes emit
// identical per-worker trace-event kind sequences, including the final
// "retire" on every worker. Regression for the simulator retiring
// silently when the policy returned no victims or remaining hit zero,
// which made simulator and executor trace streams disagree.
func TestTraceKindSequenceParity(t *testing.T) {
	const workers = 3
	build := func() [][]work.Task {
		queues := make([][]work.Task, workers)
		for w := 0; w < workers; w++ {
			for j := 0; j <= w; j++ { // 1, 2, 3 tasks
				id := w*10 + j
				queues[w] = append(queues[w], work.Task{
					ID:  id,
					Run: func() (float64, int) { return 1, 0 },
				})
			}
		}
		return queues
	}
	for _, tc := range []struct {
		name   string
		policy steal.Policy
		want   func(w int) []string
	}{
		{
			// Stealing enabled but unservable: each worker execs its own
			// queue then emits exactly one retire.
			name:   "no-victims",
			policy: noVictims{},
			want: func(w int) []string {
				kinds := make([]string, 0, w+2)
				for j := 0; j <= w; j++ {
					kinds = append(kinds, "exec")
				}
				return append(kinds, "retire")
			},
		},
		{
			// Stealing disabled: no thief lifecycle, so no retire events.
			name:   "nil-policy",
			policy: nil,
			want: func(w int) []string {
				kinds := make([]string, 0, w+1)
				for j := 0; j <= w; j++ {
					kinds = append(kinds, "exec")
				}
				return kinds
			},
		},
	} {
		for _, rt := range []struct {
			name string
			rt   sched.Runtime
		}{{"dist", dist.Runtime}, {"exec", exec.Runtime}} {
			t.Run(tc.name+"/"+rt.name, func(t *testing.T) {
				var mu sync.Mutex
				var events []sched.TraceEvent
				rt.rt.Run(sched.Config{
					Workers: workers,
					Profile: work.Hopper(),
					Policy:  tc.policy,
					Seed:    3,
					Trace: func(e sched.TraceEvent) {
						mu.Lock()
						events = append(events, e)
						mu.Unlock()
					},
				}, build())
				got := kindsByProc(events, workers)
				for w := 0; w < workers; w++ {
					want := tc.want(w)
					if len(got[w]) != len(want) {
						t.Fatalf("worker %d kinds = %v, want %v", w, got[w], want)
					}
					for i := range want {
						if got[w][i] != want[i] {
							t.Fatalf("worker %d kinds = %v, want %v", w, got[w], want)
						}
					}
				}
			})
		}
	}
}

// TestRetireOncePerWorker asserts the lifecycle invariant behind the
// trace parity: with stealing enabled on a multi-worker run, every worker
// emits exactly one "retire" event — no silent retirement path in either
// backend, regardless of policy or retry bound.
func TestRetireOncePerWorker(t *testing.T) {
	const workers, tasks = 4, 24
	for _, rt := range []struct {
		name string
		rt   sched.Runtime
	}{{"dist", dist.Runtime}, {"exec", exec.Runtime}} {
		for _, tc := range []struct {
			name      string
			policy    steal.Policy
			maxRounds int
		}{
			{"rand2-unbounded", steal.RandK{K: 2}, 0},
			{"rand1-bounded", steal.RandK{K: 1}, 2},
			{"hybrid-bounded", steal.Hybrid{K: 2}, 3},
			{"no-victims", noVictims{}, 0},
		} {
			t.Run(rt.name+"/"+tc.name, func(t *testing.T) {
				queues, _ := parityWorkload(workers, tasks)
				var mu sync.Mutex
				retires := make(map[int]int)
				rt.rt.Run(sched.Config{
					Workers:   workers,
					Profile:   work.Hopper(),
					Policy:    tc.policy,
					MaxRounds: tc.maxRounds,
					Seed:      11,
					Trace: func(e sched.TraceEvent) {
						if e.Kind == "retire" {
							mu.Lock()
							retires[e.Proc]++
							mu.Unlock()
						}
					},
				}, queues)
				for w := 0; w < workers; w++ {
					if retires[w] != 1 {
						t.Errorf("worker %d emitted %d retire events, want exactly 1", w, retires[w])
					}
				}
			})
		}
	}
}

// TestRuntimeParityMismatchedQueues feeds both backends a queue count
// that differs from Workers. Regression: the simulator used to panic
// here while the executor silently re-sharded; both now redistribute
// round-robin through sched.Reshard and must agree on the assignment.
func TestRuntimeParityMismatchedQueues(t *testing.T) {
	const workers, tasks = 3, 10
	for _, shards := range []int{1, 2, 5} {
		for _, rt := range []struct {
			name string
			rt   sched.Runtime
		}{{"dist", dist.Runtime}, {"exec", exec.Runtime}} {
			t.Run(fmt.Sprintf("%s/shards-%d", rt.name, shards), func(t *testing.T) {
				execCount := make([]int64, tasks)
				queues := make([][]work.Task, shards)
				for i := 0; i < tasks; i++ {
					i := i
					queues[i%shards] = append(queues[i%shards], work.Task{
						ID: i,
						Run: func() (float64, int) {
							atomic.AddInt64(&execCount[i], 1)
							return 1, 0
						},
					})
				}
				// No stealing, so the executed-by map IS the re-shard
				// assignment; it must match sched.Reshard's round-robin.
				rep := rt.rt.Run(sched.Config{Workers: workers, Profile: work.Hopper(), Seed: 5}, queues)
				if rep.TotalTasks != tasks {
					t.Fatalf("TotalTasks = %d, want %d", rep.TotalTasks, tasks)
				}
				for i, c := range execCount {
					if c != 1 {
						t.Errorf("task %d ran %d times, want 1", i, c)
					}
				}
				want := sched.Reshard(queues, workers)
				for w, q := range want {
					for _, task := range q {
						if got := rep.ExecutedBy[task.ID]; got != w {
							t.Errorf("task %d executed by %d, want %d (shared round-robin re-shard)",
								task.ID, got, w)
						}
					}
				}
			})
		}
	}
}

func TestRuntimeParityMaxRounds(t *testing.T) {
	// Bounded retries: with MaxRounds set, thieves eventually retire, but
	// both runtimes must still complete every task (owners drain their own
	// deques regardless).
	const workers, tasks = 4, 16
	for _, rt := range []struct {
		name string
		rt   sched.Runtime
	}{{"dist", dist.Runtime}, {"exec", exec.Runtime}} {
		t.Run(rt.name, func(t *testing.T) {
			queues, execCount := parityWorkload(workers, tasks)
			rep := rt.rt.Run(sched.Config{
				Workers:   workers,
				Profile:   work.Hopper(),
				Policy:    steal.RandK{K: 1},
				MaxRounds: 2,
				Seed:      7,
			}, queues)
			checkParityReport(t, rt.name, rep, execCount, workers)
		})
	}
}
