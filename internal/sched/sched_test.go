package sched

import (
	"strings"
	"testing"

	"parmp/internal/work"
)

func TestTakeCountCeil(t *testing.T) {
	// Regression for the simulator/executor rounding split: the executor
	// used floor(n*chunk) while the simulator used ceil(n*chunk), so any
	// fractional chunk diverged between the two. Both now share this
	// ceiling rule.
	cases := []struct {
		n     int
		chunk float64
		want  int
	}{
		{10, 0.25, 3}, // ceil(2.5); floor would give 2
		{10, 0.5, 5},
		{3, 0.5, 2},  // ceil(1.5); floor would give 1
		{7, 0.33, 3}, // ceil(2.31)
		{1, 0.5, 1},
		{4, 1e-9, 1},  // vanishing chunk: one task per steal
		{5, 0.999, 5}, // ceil(4.995)
		{5, 1, 5},
		{0, 0.5, 0},
		{-3, 0.5, 0},
	}
	for _, c := range cases {
		if got := TakeCount(c.n, c.chunk); got != c.want {
			t.Errorf("TakeCount(%d, %v) = %d, want %d", c.n, c.chunk, got, c.want)
		}
	}
}

func TestStealBack(t *testing.T) {
	mk := func(ids ...int) []Entry {
		es := make([]Entry, len(ids))
		for i, id := range ids {
			es[i].Task.ID = id
		}
		return es
	}
	rest, grant := StealBack(mk(0, 1, 2, 3), 0.5)
	if len(rest) != 2 || len(grant) != 2 {
		t.Fatalf("rest=%d grant=%d, want 2/2", len(rest), len(grant))
	}
	// Thieves take from the back, owners keep the front.
	if rest[0].Task.ID != 0 || rest[1].Task.ID != 1 {
		t.Fatalf("owner should keep front tasks, kept %v", rest)
	}
	if grant[0].Task.ID != 2 || grant[1].Task.ID != 3 {
		t.Fatalf("thief should get back tasks in order, got %v", grant)
	}
	for _, e := range grant {
		if !e.Stolen {
			t.Fatal("granted entries must be marked Stolen")
		}
	}
	for _, e := range rest {
		if e.Stolen {
			t.Fatal("kept entries must not be marked Stolen")
		}
	}
	if rest, grant := StealBack(nil, 0.5); rest != nil || grant != nil {
		t.Fatalf("empty deque must grant nothing, got %v/%v", rest, grant)
	}
}

func TestStealBackGrantIsCopy(t *testing.T) {
	items := make([]Entry, 4)
	for i := range items {
		items[i].Task.ID = i
	}
	rest, grant := StealBack(items, 0.5)
	// Appending to the owner's remainder must not clobber the grant (they
	// would otherwise share the original backing array).
	rest = append(rest, Entry{Task: work.Task{ID: 99}})
	_ = rest
	if grant[0].Task.ID != 2 || grant[1].Task.ID != 3 {
		t.Fatalf("grant aliases the owner's deque: %v", grant)
	}
}

func TestConfigChunkDefault(t *testing.T) {
	if got := (Config{}).Chunk(); got != 0.5 {
		t.Fatalf("zero StealChunk should default to 0.5, got %v", got)
	}
	if got := (Config{StealChunk: 2}).Chunk(); got != 0.5 {
		t.Fatalf("out-of-range StealChunk should default to 0.5, got %v", got)
	}
	if got := (Config{StealChunk: 0.25}).Chunk(); got != 0.25 {
		t.Fatalf("Chunk() = %v, want 0.25", got)
	}
}

func TestWriteTrace(t *testing.T) {
	var sb strings.Builder
	tr := WriteTrace(&sb)
	tr(TraceEvent{Time: 1.5, Kind: "exec", Proc: 3, Peer: -1, Task: 7})
	out := sb.String()
	for _, want := range []string{"t=1.5", "exec", "proc=3", "task=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace line %q missing %q", out, want)
		}
	}
}
