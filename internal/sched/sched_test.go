package sched

import (
	"strings"
	"testing"

	"parmp/internal/work"
)

func TestTakeCountCeil(t *testing.T) {
	// Regression for the simulator/executor rounding split: the executor
	// used floor(n*chunk) while the simulator used ceil(n*chunk), so any
	// fractional chunk diverged between the two. Both now share this
	// ceiling rule.
	cases := []struct {
		n     int
		chunk float64
		want  int
	}{
		{10, 0.25, 3}, // ceil(2.5); floor would give 2
		{10, 0.5, 5},
		{3, 0.5, 2},  // ceil(1.5); floor would give 1
		{7, 0.33, 3}, // ceil(2.31)
		{1, 0.5, 1},
		{4, 1e-9, 1},  // vanishing chunk: one task per steal
		{5, 0.999, 5}, // ceil(4.995)
		{5, 1, 5},
		{0, 0.5, 0},
		{-3, 0.5, 0},
	}
	for _, c := range cases {
		if got := TakeCount(c.n, c.chunk); got != c.want {
			t.Errorf("TakeCount(%d, %v) = %d, want %d", c.n, c.chunk, got, c.want)
		}
	}
}

func TestStealBack(t *testing.T) {
	mk := func(ids ...int) []Entry {
		es := make([]Entry, len(ids))
		for i, id := range ids {
			es[i].Task.ID = id
		}
		return es
	}
	rest, grant := StealBack(mk(0, 1, 2, 3), 0.5)
	if len(rest) != 2 || len(grant) != 2 {
		t.Fatalf("rest=%d grant=%d, want 2/2", len(rest), len(grant))
	}
	// Thieves take from the back, owners keep the front.
	if rest[0].Task.ID != 0 || rest[1].Task.ID != 1 {
		t.Fatalf("owner should keep front tasks, kept %v", rest)
	}
	if grant[0].Task.ID != 2 || grant[1].Task.ID != 3 {
		t.Fatalf("thief should get back tasks in order, got %v", grant)
	}
	for _, e := range grant {
		if !e.Stolen {
			t.Fatal("granted entries must be marked Stolen")
		}
	}
	for _, e := range rest {
		if e.Stolen {
			t.Fatal("kept entries must not be marked Stolen")
		}
	}
	if rest, grant := StealBack(nil, 0.5); rest != nil || grant != nil {
		t.Fatalf("empty deque must grant nothing, got %v/%v", rest, grant)
	}
}

func TestStealBackGrantIsCopy(t *testing.T) {
	items := make([]Entry, 4)
	for i := range items {
		items[i].Task.ID = i
	}
	rest, grant := StealBack(items, 0.5)
	// Appending to the owner's remainder must not clobber the grant (they
	// would otherwise share the original backing array).
	rest = append(rest, Entry{Task: work.Task{ID: 99}})
	_ = rest
	if grant[0].Task.ID != 2 || grant[1].Task.ID != 3 {
		t.Fatalf("grant aliases the owner's deque: %v", grant)
	}
}

func TestConfigChunkDefault(t *testing.T) {
	if got := (Config{}).Chunk(); got != 0.5 {
		t.Fatalf("zero StealChunk should default to 0.5, got %v", got)
	}
	if got := (Config{StealChunk: -1}).Chunk(); got != 0.5 {
		t.Fatalf("negative StealChunk should default to 0.5, got %v", got)
	}
	// Regression: StealChunk > 1 used to silently reset to the 0.5
	// default — a caller asking for "steal everything" got half. It now
	// clamps to 1.
	if got := (Config{StealChunk: 2}).Chunk(); got != 1 {
		t.Fatalf("StealChunk above 1 should clamp to 1, got %v", got)
	}
	if got := (Config{StealChunk: 1}).Chunk(); got != 1 {
		t.Fatalf("Chunk() = %v, want 1", got)
	}
	if got := (Config{StealChunk: 0.25}).Chunk(); got != 0.25 {
		t.Fatalf("Chunk() = %v, want 0.25", got)
	}
}

func TestReshard(t *testing.T) {
	mkQueues := func(sizes ...int) [][]work.Task {
		queues := make([][]work.Task, len(sizes))
		id := 0
		for q, n := range sizes {
			for j := 0; j < n; j++ {
				queues[q] = append(queues[q], work.Task{ID: id})
				id++
			}
		}
		return queues
	}
	// Matching counts pass through untouched, preserving the assignment.
	in := mkQueues(2, 3)
	if got := Reshard(in, 2); len(got) != 2 || got[0][0].ID != 0 || got[1][0].ID != 2 {
		t.Fatalf("matching queues must pass through unchanged, got %v", got)
	}
	// One queue over three workers: round-robin task by task.
	out := Reshard(mkQueues(7), 3)
	if len(out) != 3 {
		t.Fatalf("resharded into %d queues, want 3", len(out))
	}
	for w, wantIDs := range [][]int{{0, 3, 6}, {1, 4}, {2, 5}} {
		if len(out[w]) != len(wantIDs) {
			t.Fatalf("worker %d has %d tasks, want %d", w, len(out[w]), len(wantIDs))
		}
		for i, id := range wantIDs {
			if out[w][i].ID != id {
				t.Errorf("worker %d task %d = ID %d, want %d", w, i, out[w][i].ID, id)
			}
		}
	}
	// Shrinking: five queues onto two workers, flattened in queue order.
	out = Reshard(mkQueues(1, 1, 1, 1, 1), 2)
	if len(out[0]) != 3 || len(out[1]) != 2 {
		t.Fatalf("shrink reshard sizes = %d/%d, want 3/2", len(out[0]), len(out[1]))
	}
	// Degenerate worker counts leave the input alone.
	if got := Reshard(in, 0); len(got) != len(in) {
		t.Fatal("non-positive workers must not reshard")
	}
}

func TestBackoff(t *testing.T) {
	// The shared curve: base * 2^(attempt-1), capped at base * maxMultiple.
	cases := []struct {
		attempt    int
		base, maxM float64
		want       float64
	}{
		{1, 100, 16, 100},
		{2, 100, 16, 200},
		{3, 100, 16, 400},
		{5, 100, 16, 1600},
		{6, 100, 16, 1600},  // capped at 16x
		{99, 100, 16, 1600}, // stays capped
		{3, 100, 2, 200},    // custom cap
		{0, 100, 16, 100},   // attempt clamps up to 1
		{4, 100, 0, 800},    // maxMultiple <= 0 means the default 16
	}
	for _, c := range cases {
		if got := Backoff(c.attempt, c.base, c.maxM); got != c.want {
			t.Errorf("Backoff(%d, %v, %v) = %v, want %v", c.attempt, c.base, c.maxM, got, c.want)
		}
	}
}

func TestWriteTrace(t *testing.T) {
	var sb strings.Builder
	tr := WriteTrace(&sb)
	tr(TraceEvent{Time: 1.5, Kind: "exec", Proc: 3, Peer: -1, Task: 7})
	out := sb.String()
	for _, want := range []string{"t=1.5", "exec", "proc=3", "task=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace line %q missing %q", out, want)
		}
	}
}
