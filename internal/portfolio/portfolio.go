// Package portfolio is the restart-portfolio meta-planner's engine-room:
// the Luby restart schedule, racer lifecycle (build → grow → restart on
// budget exhaustion), and deterministic first-to-solve arbitration.
//
// Sampling-based planner runtimes are heavy-tailed — an unlucky seed can
// take orders of magnitude longer than the median — so a service's tail
// latency is dominated by restarts the planner never takes. Racing N
// independently seeded configurations under a Luby restart schedule is
// the classic fix (Luby, Sinclair, Zuckerman 1993; applied to PRM/RRT by
// "Faster Sampling-Based Motion Planning via Restarts"): the portfolio's
// time-to-first-solution concentrates around the luckiest contestant.
//
// The race runs in lockstep waves: every live racer grows one round
// concurrently, then a barrier arbitrates. Arbitration is deterministic
// — the lowest-indexed racer whose committed round solves the query wins
// — which makes the portfolio's winner and published result a pure
// function of the configuration, like every other planner in this
// repository. Once any racer commits a solving round it cancels all
// higher-indexed racers mid-round (they cannot win this wave: ties break
// by index), exercising the engines' cooperative-cancellation path;
// racers below the first solver always run their round to completion, so
// the arbitration outcome is schedule-independent.
//
// The package is planner-agnostic: contestants implement Instance
// (grow-one-round + solved-yet), and parmp.Portfolio adapts parmp.Engine
// onto it.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"parmp/internal/rng"
)

// Luby returns the i-th element (1-based) of the Luby restart sequence
// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ... The sequence's
// property: restarting with budgets proportional to it is within a log
// factor of the optimal restart strategy for any (unknown) runtime
// distribution.
func Luby(i int) int {
	if i < 1 {
		panic(fmt.Sprintf("portfolio: Luby index %d < 1", i))
	}
	for k := 1; ; k++ {
		if i == 1<<k-1 {
			return 1 << (k - 1)
		}
		if i < 1<<k-1 {
			return Luby(i - (1<<(k-1) - 1))
		}
	}
}

// DeriveSeed maps (base seed, racer, restart) onto a decorrelated engine
// seed, so a portfolio's entire seed tree is a pure function of the base
// seed: racer 0 restart 0 always gets the same seed, across runs and
// across hosts.
func DeriveSeed(base uint64, racer, restart int) uint64 {
	return rng.Derive(rng.Derive(base, 0xb0a7f0110+uint64(racer)).Uint64(), uint64(restart)).Uint64()
}

// Instance is one racer's live engine: grow one round under cooperative
// cancellation, and report whether the latest committed round solves the
// race query. Solved is only called after a successful Grow, from the
// racer's own wave goroutine.
type Instance interface {
	Grow(ctx context.Context) error
	Solved() bool
}

// Racer builds a contestant's instances. Build is called once per
// restart (0-based) and must derive an independent seed per restart —
// see DeriveSeed — so a restarted racer explores a genuinely different
// random trajectory.
type Racer struct {
	Build func(restart int) (Instance, error)
}

// State is one racer's progress, updated by Wave. Fields are read-only
// for callers between waves.
type State struct {
	// Instance is the racer's current engine; nil before its first wave
	// and after a restart has been scheduled but not yet built.
	Instance Instance
	// Restart counts completed restarts (0 = still on the first engine).
	Restart int
	// Round is the committed round count within the current budget.
	Round int
	// Rounds is the total committed rounds across all restarts — the
	// racer's cumulative growth work.
	Rounds int
	// Budget is the current restart's round allowance (Luby value × the
	// race's unit).
	Budget int
	// Stopped reports that the racer's latest wave round was cancelled
	// mid-flight by arbitration (a lower-indexed racer solved first);
	// the engine's committed state is untouched.
	Stopped bool
	// Solved reports that the racer's latest committed round answers
	// the race query.
	Solved bool
	// Err is a terminal build/grow failure; the racer no longer
	// participates.
	Err error
}

// Race coordinates N racers through lockstep waves until the first
// solution. The zero value is not usable; call New.
type Race struct {
	racers []Racer
	states []*State
	// unit scales Luby budgets into rounds; <= 0 disables restarts
	// entirely (every racer keeps its first engine forever).
	unit     int
	winner   int
	waves    int
	restarts int
}

// New creates a race over racers. unit is the Luby budget multiplier in
// growth rounds (1 means budgets of 1, 1, 2, 1, ... rounds); a
// non-positive unit disables restarts, racing the initial configurations
// only.
func New(racers []Racer, unit int) *Race {
	states := make([]*State, len(racers))
	for i := range states {
		states[i] = &State{}
	}
	return &Race{racers: racers, states: states, unit: unit, winner: -1}
}

// Winner returns the winning racer's index, or -1 while the race is
// undecided.
func (r *Race) Winner() int { return r.winner }

// Waves returns the number of completed waves.
func (r *Race) Waves() int { return r.waves }

// Restarts returns the total restarts taken across all racers.
func (r *Race) Restarts() int { return r.restarts }

// States returns the racers' live progress, indexed by racer. The slice
// and its entries are owned by the race: read them only between Wave
// calls.
func (r *Race) States() []*State { return r.states }

// ErrAllRacersFailed reports that every contestant hit a terminal
// build/grow error, so no wave can make progress.
var ErrAllRacersFailed = errors.New("portfolio: every racer failed")

// Wave runs one lockstep wave: each live racer (re)builds its engine if
// needed and grows one round, all concurrently; the barrier then
// arbitrates. It returns true when the race has a winner (immediately,
// without growing, if one was already decided). Cancellation of ctx
// stops every in-flight round cooperatively and returns ctx.Err() with
// all committed state intact — the race can resume with another Wave.
func (r *Race) Wave(ctx context.Context) (bool, error) {
	if r.winner >= 0 {
		return true, nil
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	live := 0
	for i, st := range r.states {
		if st.Err != nil {
			continue
		}
		if st.Instance == nil {
			inst, err := r.racers[i].Build(st.Restart)
			if err != nil {
				st.Err = err
				continue
			}
			st.Instance = inst
			st.Round = 0
			st.Budget = 0
			if r.unit > 0 {
				st.Budget = Luby(st.Restart+1) * r.unit
			}
		}
		live++
	}
	if live == 0 {
		return false, ErrAllRacersFailed
	}

	// One cancellable context per racer: a solver cancels every
	// higher-indexed racer (they lose any same-wave tie), never a lower
	// one, so the set of completed rounds below the eventual winner — and
	// with it the arbitration outcome — is identical in every execution.
	ctxs := make([]context.Context, len(r.states))
	cancels := make([]context.CancelFunc, len(r.states))
	for i := range r.states {
		ctxs[i], cancels[i] = context.WithCancel(ctx)
	}
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	var wg sync.WaitGroup
	for i, st := range r.states {
		if st.Err != nil || st.Instance == nil {
			continue
		}
		wg.Add(1)
		go func(i int, st *State) {
			defer wg.Done()
			if err := st.Instance.Grow(ctxs[i]); err != nil {
				if ctxs[i].Err() != nil {
					st.Stopped = true // cancelled mid-round; nothing committed
				} else {
					st.Err = err
				}
				return
			}
			st.Stopped = false
			st.Round++
			st.Rounds++
			if st.Instance.Solved() {
				st.Solved = true
				for j := i + 1; j < len(cancels); j++ {
					cancels[j]()
				}
			}
		}(i, st)
	}
	wg.Wait()
	r.waves++
	for i, st := range r.states {
		if st.Solved {
			r.winner = i
			return true, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	// Budget exhausted without a solution: schedule the Luby restart. The
	// engine is dropped now and rebuilt (fresh derived seed) next wave.
	for _, st := range r.states {
		if st.Err == nil && st.Instance != nil && r.unit > 0 && st.Round >= st.Budget {
			st.Instance = nil
			st.Restart++
			r.restarts++
		}
	}
	return false, nil
}
