package portfolio

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestLubySequence(t *testing.T) {
	want := []int{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1, 1, 2, 1, 1, 2, 4}
	for i, w := range want {
		if got := Luby(i + 1); got != w {
			t.Fatalf("Luby(%d) = %d, want %d", i+1, got, w)
		}
	}
	// Budgets are powers of two and the sequence repeats each completed
	// block; spot-check a deep index: Luby(2^k - 1) = 2^(k-1).
	if got := Luby(1<<10 - 1); got != 1<<9 {
		t.Fatalf("Luby(2^10-1) = %d, want %d", got, 1<<9)
	}
}

func TestDeriveSeedDecorrelatedAndStable(t *testing.T) {
	seen := make(map[uint64]string)
	for racer := 0; racer < 8; racer++ {
		for restart := 0; restart < 8; restart++ {
			s := DeriveSeed(42, racer, restart)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and %s both derive %d", racer, restart, prev, s)
			}
			seen[s] = fmt.Sprintf("(%d,%d)", racer, restart)
			if again := DeriveSeed(42, racer, restart); again != s {
				t.Fatalf("DeriveSeed not stable for (%d,%d)", racer, restart)
			}
		}
	}
	if DeriveSeed(1, 0, 0) == DeriveSeed(2, 0, 0) {
		t.Fatal("different base seeds derive the same racer seed")
	}
}

// fakeInstance grows instantly (or slowly, to provoke cancellation) and
// solves after a preset number of committed rounds.
type fakeInstance struct {
	rounds     int
	solveAfter int // committed rounds needed to solve; < 0 never solves
	growDelay  time.Duration
	stopped    bool
}

func (f *fakeInstance) Grow(ctx context.Context) error {
	if f.growDelay > 0 {
		select {
		case <-time.After(f.growDelay):
		case <-ctx.Done():
			f.stopped = true
			return errors.New("stopped")
		}
	} else if ctx.Err() != nil {
		f.stopped = true
		return errors.New("stopped")
	}
	f.rounds++
	return nil
}

func (f *fakeInstance) Solved() bool {
	return f.solveAfter >= 0 && f.rounds >= f.solveAfter
}

// mkRacer builds fakes whose solve round depends on the restart index:
// solveAfter[restart] (last entry repeats). delay slows every Grow.
func mkRacer(track *[]*fakeInstance, delay time.Duration, solveAfter ...int) Racer {
	return Racer{Build: func(restart int) (Instance, error) {
		sa := solveAfter[len(solveAfter)-1]
		if restart < len(solveAfter) {
			sa = solveAfter[restart]
		}
		f := &fakeInstance{solveAfter: sa, growDelay: delay}
		*track = append(*track, f)
		return f, nil
	}}
}

func TestRaceLowestIndexWinsDeterministically(t *testing.T) {
	// Racer 1 solves in round 2; racer 0 solves in round 3. Racer 0 must
	// not win, and repeated runs must agree.
	for trial := 0; trial < 20; trial++ {
		var i0, i1 []*fakeInstance
		r := New([]Racer{mkRacer(&i0, 0, 3), mkRacer(&i1, 0, 2)}, 100)
		for {
			won, err := r.Wave(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if won {
				break
			}
		}
		if r.Winner() != 1 {
			t.Fatalf("trial %d: winner %d, want 1", trial, r.Winner())
		}
		if r.Waves() != 2 {
			t.Fatalf("trial %d: %d waves, want 2", trial, r.Waves())
		}
	}
}

func TestRaceSameWaveTieBreaksByIndex(t *testing.T) {
	// Both solve in wave 1, but racer 1 is much faster in wall clock and
	// cancels everything above it — never racer 0, which must still win.
	for trial := 0; trial < 10; trial++ {
		var i0, i1, i2 []*fakeInstance
		r := New([]Racer{
			mkRacer(&i0, 3*time.Millisecond, 1),
			mkRacer(&i1, 0, 1),
			mkRacer(&i2, 20*time.Millisecond, 1),
		}, 100)
		won, err := r.Wave(context.Background())
		if err != nil || !won {
			t.Fatalf("trial %d: won=%v err=%v", trial, won, err)
		}
		if r.Winner() != 0 {
			t.Fatalf("trial %d: winner %d, want 0 (lowest solved index)", trial, r.Winner())
		}
		// The slow racer above the solvers must have been cancelled
		// mid-round: observed stopped with no committed round.
		if st := r.States()[2]; !st.Stopped || st.Rounds != 0 {
			t.Fatalf("trial %d: racer 2 state %+v, want stopped with 0 rounds", trial, st)
		}
	}
}

func TestRaceLubyRestartLifecycle(t *testing.T) {
	// A racer that never solves on restarts 0..2 and solves instantly on
	// restart 3 must walk the Luby budgets 1, 1, 2 (unit 1) before its
	// fourth engine wins in the next wave: waves = 1+1+2+1.
	var insts []*fakeInstance
	r := New([]Racer{mkRacer(&insts, 0, -1, -1, -1, 1)}, 1)
	for {
		won, err := r.Wave(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if won {
			break
		}
	}
	if got, want := r.Waves(), 5; got != want {
		t.Fatalf("waves = %d, want %d (Luby budgets 1,1,2 then solve)", got, want)
	}
	if r.Restarts() != 3 {
		t.Fatalf("restarts = %d, want 3", r.Restarts())
	}
	if len(insts) != 4 {
		t.Fatalf("built %d engines, want 4", len(insts))
	}
	for i, rounds := range []int{1, 1, 2, 1} {
		if insts[i].rounds != rounds {
			t.Fatalf("engine %d grew %d rounds, want %d", i, insts[i].rounds, rounds)
		}
	}
}

func TestRaceNoRestartsWithNonPositiveUnit(t *testing.T) {
	var insts []*fakeInstance
	r := New([]Racer{mkRacer(&insts, 0, 4)}, 0)
	for {
		won, err := r.Wave(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if won {
			break
		}
	}
	if len(insts) != 1 || r.Restarts() != 0 {
		t.Fatalf("unit 0 must never restart: %d engines, %d restarts", len(insts), r.Restarts())
	}
	if insts[0].rounds != 4 {
		t.Fatalf("engine grew %d rounds, want 4", insts[0].rounds)
	}
}

func TestRaceCancelAndResume(t *testing.T) {
	var insts []*fakeInstance
	r := New([]Racer{mkRacer(&insts, 5*time.Millisecond, 3)}, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if won, err := r.Wave(ctx); won || err == nil {
		t.Fatalf("cancelled wave: won=%v err=%v", won, err)
	}
	// Committed state is intact and the race resumes to the same winner.
	for {
		won, err := r.Wave(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if won {
			break
		}
	}
	if r.Winner() != 0 {
		t.Fatalf("winner %d after resume, want 0", r.Winner())
	}
}

func TestRaceAllRacersFailed(t *testing.T) {
	boom := Racer{Build: func(int) (Instance, error) { return nil, errors.New("boom") }}
	r := New([]Racer{boom, boom}, 1)
	if _, err := r.Wave(context.Background()); !errors.Is(err, ErrAllRacersFailed) {
		t.Fatalf("err = %v, want ErrAllRacersFailed", err)
	}
}
