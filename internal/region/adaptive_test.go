package region

import (
	"math"
	"testing"

	"parmp/internal/env"
	"parmp/internal/geom"
)

func mustAdaptive(t *testing.T, e *env.Environment, spec AdaptiveSpec) *Graph {
	t.Helper()
	rg, err := AdaptiveGrid(e, spec)
	if err != nil {
		t.Fatalf("AdaptiveGrid: %v", err)
	}
	return rg
}

func TestAdaptiveGridErrorsOnBadBase(t *testing.T) {
	if _, err := AdaptiveGrid(env.Free(), AdaptiveSpec{Base: GridSpec{Cells: []int{2, 2, 2, 2}}}); err == nil {
		t.Fatal("expected error for base dims > bounds dim")
	}
}

func TestAdaptiveGridRefinesBoundaryCells(t *testing.T) {
	// A 5x5 base grid does NOT align with the obstacle edges at
	// 0.25/0.75, so boundary cells straddle and must split.
	e := env.Model2D(0.25)
	spec := AdaptiveSpec{Base: GridSpec{Cells: []int{5, 5}}, MaxDepth: 2}
	rg := mustAdaptive(t, e, spec)
	if rg.NumRegions() <= 25 {
		t.Fatalf("regions = %d, expected refinement beyond 25", rg.NumRegions())
	}
	// Leaves tile the workspace exactly.
	var total float64
	for _, r := range rg.Regions() {
		total += r.Core.Volume()
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("leaves cover %v, want 1", total)
	}
	// Leaves are pairwise disjoint.
	regs := rg.Regions()
	for i := range regs {
		for j := i + 1; j < len(regs); j++ {
			if regs[i].Core.IntersectionVolume(regs[j].Core) > 1e-12 {
				t.Fatalf("leaves %d and %d overlap", i, j)
			}
		}
	}
}

func TestAdaptiveGridFreeEnvironmentStaysCoarse(t *testing.T) {
	e := env.Free()
	spec := AdaptiveSpec{Base: GridSpec{Cells: []int{3, 3, 3}}, MaxDepth: 3}
	rg := mustAdaptive(t, e, spec)
	if rg.NumRegions() != 27 {
		t.Fatalf("free environment should not refine: %d regions", rg.NumRegions())
	}
}

func TestAdaptiveGridAdjacencyConnected(t *testing.T) {
	e := env.Model2D(0.25)
	rg := mustAdaptive(t, e, AdaptiveSpec{Base: GridSpec{Cells: []int{5, 5}}, MaxDepth: 2})
	// The region graph over a box tiling must be connected.
	labels, count := rg.G.ConnectedComponents()
	if count != 1 {
		t.Fatalf("region graph has %d components; labels=%v", count, labels)
	}
	// Every edge must join genuinely adjacent boxes.
	rg.ForEachAdjacentPair(func(a, b int) {
		if !boxesAdjacent(rg.Region(a).Core, rg.Region(b).Core) {
			t.Fatalf("edge (%d,%d) joins non-adjacent boxes", a, b)
		}
	})
}

func TestAdaptiveGridDeterministic(t *testing.T) {
	e := env.MedCube()
	spec := AdaptiveSpec{Base: GridSpec{Cells: []int{3, 3, 3}}, MaxDepth: 1}
	a := mustAdaptive(t, e, spec)
	b := mustAdaptive(t, e, spec)
	if a.NumRegions() != b.NumRegions() {
		t.Fatal("adaptive grid not deterministic")
	}
	for i := 0; i < a.NumRegions(); i++ {
		if !a.Region(i).Core.Lo.Equal(b.Region(i).Core.Lo, 0) {
			t.Fatalf("region %d differs between runs", i)
		}
	}
}

func TestSplitLongest(t *testing.T) {
	box := geom.Box2(0, 0, 4, 1)
	a, b := splitLongest(box)
	if a.Hi[0] != 2 || b.Lo[0] != 2 {
		t.Fatalf("split = %v %v", a, b)
	}
	if math.Abs(a.Volume()+b.Volume()-box.Volume()) > 1e-12 {
		t.Fatal("split loses volume")
	}
}

func TestBoxesAdjacent(t *testing.T) {
	a := geom.Box2(0, 0, 1, 1)
	cases := []struct {
		b    geom.AABB
		want bool
	}{
		{geom.Box2(1, 0, 2, 1), true},          // shares full right face
		{geom.Box2(1, 0.5, 2, 1.5), true},      // partial face overlap
		{geom.Box2(1, 1, 2, 2), false},         // corner touch only
		{geom.Box2(2, 0, 3, 1), false},         // separated
		{geom.Box2(0.5, 0.5, 1.5, 1.5), false}, // overlapping volumes
	}
	for i, c := range cases {
		if got := boxesAdjacent(a, c.b); got != c.want {
			t.Fatalf("case %d: boxesAdjacent = %v, want %v", i, got, c.want)
		}
	}
}
