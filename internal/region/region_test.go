package region

import (
	"math"
	"strings"
	"testing"

	"parmp/internal/geom"
	"parmp/internal/rng"
)

func TestSplitEvenly(t *testing.T) {
	s := SplitEvenly(2, 16, 0)
	if s.NumRegions() < 16 {
		t.Fatalf("NumRegions = %d", s.NumRegions())
	}
	if s.Cells[0] != 4 || s.Cells[1] != 4 {
		t.Fatalf("Cells = %v", s.Cells)
	}
	s = SplitEvenly(3, 100, 0)
	if s.NumRegions() < 100 {
		t.Fatalf("3D NumRegions = %d", s.NumRegions())
	}
}

func TestUniformGridStructure(t *testing.T) {
	b := geom.Box2(0, 0, 1, 1)
	rg := MustUniformGrid(b, GridSpec{Cells: []int{4, 4}})
	if rg.NumRegions() != 16 {
		t.Fatalf("NumRegions = %d", rg.NumRegions())
	}
	// 2D grid adjacency: 2*4*3 = 24 edges.
	if rg.G.NumEdges() != 24 {
		t.Fatalf("NumEdges = %d", rg.G.NumEdges())
	}
	// Interior region has 4 neighbours, corner has 2.
	corner := rg.Region(0)
	if got := len(rg.Adjacent(corner.ID)); got != 2 {
		t.Fatalf("corner degree = %d", got)
	}
	// Region 5 is coordinate (1,1): interior.
	if got := len(rg.Adjacent(5)); got != 4 {
		t.Fatalf("interior degree = %d", got)
	}
}

func TestUniformGridCellsTile(t *testing.T) {
	b := geom.Box2(0, 0, 2, 1)
	rg := MustUniformGrid(b, GridSpec{Cells: []int{4, 2}})
	var total float64
	for _, r := range rg.Regions() {
		total += r.Core.Volume()
	}
	if math.Abs(total-2) > 1e-12 {
		t.Fatalf("cores cover %v, want 2", total)
	}
	// Cells must be disjoint.
	regs := rg.Regions()
	for i := range regs {
		for j := i + 1; j < len(regs); j++ {
			if regs[i].Core.IntersectionVolume(regs[j].Core) > 1e-12 {
				t.Fatalf("cores %d and %d overlap", i, j)
			}
		}
	}
}

func TestUniformGridOverlap(t *testing.T) {
	b := geom.Box2(0, 0, 1, 1)
	rg := MustUniformGrid(b, GridSpec{Cells: []int{2, 2}, Overlap: 0.1})
	r := rg.Region(0)
	if r.Box.Volume() <= r.Core.Volume() {
		t.Fatal("overlap should expand the sampling box")
	}
	// Box must stay inside the global bounds.
	if !b.Contains(r.Box.Lo) || !b.Contains(r.Box.Hi) {
		t.Fatalf("expanded box %v escapes bounds", r.Box)
	}
}

func TestGridCoordRoundTrip(t *testing.T) {
	b := geom.Box3(0, 0, 0, 1, 1, 1)
	rg := MustUniformGrid(b, GridSpec{Cells: []int{3, 4, 5}})
	for _, r := range rg.Regions() {
		c := r.GridCoord
		id := (c[0]*4+c[1])*5 + c[2]
		if id != r.ID {
			t.Fatalf("coord %v does not encode id %d", c, r.ID)
		}
		// The cell center must be inside the core box.
		if !r.Core.Contains(r.Core.Center()) {
			t.Fatal("core center outside core")
		}
	}
}

func TestNaiveColumnPartitionBalancedCounts(t *testing.T) {
	b := geom.Box2(0, 0, 1, 1)
	rg := MustUniformGrid(b, GridSpec{Cells: []int{8, 8}})
	NaiveColumnPartition(rg, 4)
	counts := make([]int, 4)
	for _, o := range rg.Owner {
		counts[o]++
	}
	for p, c := range counts {
		if c != 16 {
			t.Fatalf("proc %d owns %d regions, want 16", p, c)
		}
	}
	// Contiguity: region IDs per owner must be consecutive.
	for i := 1; i < len(rg.Owner); i++ {
		if rg.Owner[i] < rg.Owner[i-1] {
			t.Fatal("ownership not contiguous in ID order")
		}
	}
}

func TestEdgeCutChangesWithPartition(t *testing.T) {
	b := geom.Box2(0, 0, 1, 1)
	rg := MustUniformGrid(b, GridSpec{Cells: []int{4, 4}})
	NaiveColumnPartition(rg, 4)
	cut := rg.EdgeCut()
	// Column partition of a 4x4 grid with 4 procs: each proc owns one
	// column slab; cut = 3 boundaries * 4 edges = 12.
	if cut != 12 {
		t.Fatalf("column cut = %d, want 12", cut)
	}
	// Single owner: no cut.
	for i := range rg.Owner {
		rg.Owner[i] = 0
	}
	if rg.EdgeCut() != 0 {
		t.Fatal("single-owner cut should be 0")
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	b := geom.Box2(0, 0, 1, 1)
	rg := MustUniformGrid(b, GridSpec{Cells: []int{2, 2}})
	if err := rg.SetWeights([]float64{1, 2, 3, 4}); err != nil {
		t.Fatalf("SetWeights: %v", err)
	}
	w := rg.Weights()
	for i, v := range []float64{1, 2, 3, 4} {
		if w[i] != v {
			t.Fatalf("Weights = %v", w)
		}
	}
	NaiveColumnPartition(rg, 2)
	load := rg.LoadPerProcessor(2)
	if load[0] != 3 || load[1] != 7 {
		t.Fatalf("load = %v", load)
	}
}

func TestSetWeightsErrorsOnLengthMismatch(t *testing.T) {
	b := geom.Box2(0, 0, 1, 1)
	rg := MustUniformGrid(b, GridSpec{Cells: []int{2, 2}})
	err := rg.SetWeights([]float64{1})
	if err == nil {
		t.Fatal("expected error for mismatched weight vector")
	}
	if !strings.Contains(err.Error(), "1 entries for 4 regions") {
		t.Fatalf("undescriptive error: %v", err)
	}
}

func TestRadialSubdivision3D(t *testing.T) {
	apex := geom.V(0.5, 0.5, 0.5)
	r := rng.New(1)
	rg := RadialSubdivision(apex, RadialSpec{Regions: 32, K: 4, Radius: 0.5, Deterministic: true}, r)
	if rg.NumRegions() != 32 {
		t.Fatalf("NumRegions = %d", rg.NumRegions())
	}
	for _, reg := range rg.Regions() {
		if math.Abs(reg.Ray.Norm()-1) > 1e-9 {
			t.Fatalf("ray not unit: %v", reg.Ray)
		}
		if reg.HalfAngle <= 0 || reg.HalfAngle > math.Pi {
			t.Fatalf("half angle = %v", reg.HalfAngle)
		}
		if deg := len(rg.Adjacent(reg.ID)); deg < 4 {
			// Undirected kNN edges: degree >= K is expected (mutual hits
			// dedupe, others add).
			t.Fatalf("region %d degree %d < K", reg.ID, deg)
		}
	}
}

func TestRadialSubdivision2D(t *testing.T) {
	apex := geom.V(0, 0)
	r := rng.New(2)
	rg := RadialSubdivision(apex, RadialSpec{Regions: 8, K: 2, Radius: 1, Deterministic: true}, r)
	if rg.NumRegions() != 8 {
		t.Fatalf("NumRegions = %d", rg.NumRegions())
	}
	// Deterministic 2D points are evenly spaced: nearest angle = 2pi/8.
	want := 2 * math.Pi / 8
	for _, reg := range rg.Regions() {
		if math.Abs(reg.HalfAngle-want) > 1e-9 {
			t.Fatalf("half angle = %v, want %v", reg.HalfAngle, want)
		}
	}
}

func TestInCone(t *testing.T) {
	reg := &Region{
		Kind: KindCone, Ray: geom.V(1, 0), Apex: geom.V(0, 0),
		Radius: 1, HalfAngle: math.Pi / 4,
	}
	if !InCone(reg, geom.V(0.5, 0)) {
		t.Fatal("axis point should be in cone")
	}
	if !InCone(reg, geom.V(0.5, 0.3)) {
		t.Fatal("point within half-angle should be in cone")
	}
	if InCone(reg, geom.V(0.1, 0.5)) {
		t.Fatal("point beyond half-angle should be out")
	}
	if InCone(reg, geom.V(2, 0)) {
		t.Fatal("point beyond radius should be out")
	}
	if !InCone(reg, geom.V(0, 0)) {
		t.Fatal("apex should be in cone")
	}
}

func TestConeTarget(t *testing.T) {
	reg := &Region{Ray: geom.V(0, 1), Apex: geom.V(1, 1), Radius: 2}
	if got := ConeTarget(reg); !got.Equal(geom.V(1, 3), 1e-12) {
		t.Fatalf("ConeTarget = %v", got)
	}
}

func TestSampleInConeStaysInCone(t *testing.T) {
	r := rng.New(3)
	reg := &Region{
		Kind: KindCone, Ray: geom.V(0, 0, 1).Unit(), Apex: geom.V(0.5, 0.5, 0.5),
		Radius: 0.4, HalfAngle: 0.5,
	}
	for i := 0; i < 500; i++ {
		p := SampleInCone(reg, r)
		if p.Dist(reg.Apex) > reg.Radius+1e-9 {
			t.Fatalf("sample %v beyond radius", p)
		}
		if v := p.Sub(reg.Apex); v.Norm() > 1e-9 && geom.AngleBetween(v, reg.Ray) > reg.HalfAngle+1e-6 {
			t.Fatalf("sample %v outside cone angle", p)
		}
	}
}

func TestRadialRandomDirections(t *testing.T) {
	apex := geom.V(0, 0, 0)
	rg := RadialSubdivision(apex, RadialSpec{Regions: 16, K: 3, Radius: 1}, rng.New(9))
	seen := map[string]bool{}
	for _, reg := range rg.Regions() {
		key := reg.Ray.String()
		if seen[key] {
			t.Fatal("duplicate random direction")
		}
		seen[key] = true
	}
}

func TestRegionString(t *testing.T) {
	b := geom.Box2(0, 0, 1, 1)
	rg := MustUniformGrid(b, GridSpec{Cells: []int{2, 2}})
	if rg.Region(0).String() == "" {
		t.Fatal("empty String")
	}
	cone := &Region{Kind: KindCone, Ray: geom.V(1, 0)}
	if cone.String() == "" {
		t.Fatal("empty cone String")
	}
}

func TestUniformGridErrorsOnBadSpec(t *testing.T) {
	if _, err := UniformGrid(geom.Box2(0, 0, 1, 1), GridSpec{Cells: []int{2, 2, 2}}); err == nil {
		t.Fatal("expected error for dims > bounds dim")
	}
	if _, err := UniformGrid(geom.Box2(0, 0, 1, 1), GridSpec{}); err == nil {
		t.Fatal("expected error for empty spec")
	}
	if _, err := UniformGrid(geom.Box2(0, 0, 1, 1), GridSpec{Cells: []int{2, 0}}); err == nil {
		t.Fatal("expected error for zero cell count")
	}
	if _, err := UniformGrid(geom.Box2(0, 0, 1, 1), GridSpec{Cells: []int{2, -1}}); err == nil {
		t.Fatal("expected error for negative cell count")
	}
}

func TestMustUniformGridPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Must variant should panic on invalid spec")
		}
	}()
	MustUniformGrid(geom.Box2(0, 0, 1, 1), GridSpec{Cells: []int{2, 2, 2}})
}

func TestGridSpecNumRegions(t *testing.T) {
	if (GridSpec{Cells: []int{3, 4, 5}}).NumRegions() != 60 {
		t.Fatal("NumRegions wrong")
	}
	if (GridSpec{}).NumRegions() != 1 {
		t.Fatal("empty spec should be 1")
	}
}
