package region

import (
	"math"

	"parmp/internal/geom"
	"parmp/internal/graph"
	"parmp/internal/knn"
	"parmp/internal/rng"
)

// RadialSpec describes a uniform radial subdivision (Algorithm 2 of the
// paper): Nr points sampled on the surface of a sphere about the tree
// root, each defining a conical region; the region graph joins each region
// to its K nearest neighbours on the sphere.
type RadialSpec struct {
	// Regions is Nr, the number of conical regions.
	Regions int
	// K is the number of adjacent regions per region in the region graph.
	K int
	// Radius of the subdivision sphere.
	Radius float64
	// Deterministic selects evenly spread deterministic surface points
	// (Fibonacci lattice in 3D, evenly spaced angles in 2D) instead of
	// random sampling. Random sampling matches the paper; deterministic
	// points make unit tests reproducible across spec changes.
	Deterministic bool
	// OverlapAngle widens each cone's half-angle by this many radians so
	// branches "can explore part of the space in adjacent regions".
	OverlapAngle float64
}

// RadialSubdivision builds the cone regions and their k-NN region graph
// around apex (the tree root configuration's positional part).
func RadialSubdivision(apex geom.Vec, spec RadialSpec, r *rng.Stream) *Graph {
	d := apex.Dim()
	n := spec.Regions
	dirs := make([]geom.Vec, n)
	switch {
	case spec.Deterministic && d == 3:
		copy(dirs, geom.FibonacciSphere(n))
	case spec.Deterministic && d == 2:
		copy(dirs, geom.CirclePoints(n, 0))
	default:
		for i := range dirs {
			dirs[i] = geom.SampleOnSphere(d, r)
		}
	}

	// The natural half-angle for n cones covering the sphere: solid angle
	// per region. For simplicity use the mean angular spacing estimate
	// theta ≈ acos(1 - 2/n) in 3D and pi/n in 2D, generalized via the
	// nearest-direction angle computed below.
	g := graph.New[*Region](n)
	for i, dir := range dirs {
		g.AddVertex(&Region{
			ID:     i,
			Kind:   KindCone,
			Ray:    dir,
			Apex:   apex.Clone(),
			Radius: spec.Radius,
		})
	}

	// k-NN on the sphere: Euclidean distance between unit vectors is
	// monotone in angle, so a kd-tree over the direction points works.
	tree := knn.Build(dirs)
	k := spec.K
	if k >= n {
		k = n - 1
	}
	for i := range dirs {
		res, _ := tree.NearestExcluding(dirs[i], k, func(j int) bool { return j == i })
		nearestAngle := math.Pi
		for _, hit := range res {
			g.AddEdge(graph.ID(i), graph.ID(hit.Index), 1)
			a := geom.AngleBetween(dirs[i], dirs[hit.Index])
			if a < nearestAngle {
				nearestAngle = a
			}
		}
		reg := g.Vertex(graph.ID(i))
		reg.HalfAngle = nearestAngle + spec.OverlapAngle
		if reg.HalfAngle <= 0 || n == 1 {
			reg.HalfAngle = math.Pi
		}
	}

	return &Graph{G: g, Owner: make([]int, n)}
}

// InCone reports whether point p lies within region r's cone (apex at
// r.Apex, axis r.Ray, half-angle r.HalfAngle) and within its radius.
func InCone(r *Region, p geom.Vec) bool {
	v := p.Sub(r.Apex)
	d := v.Norm()
	if d > r.Radius {
		return false
	}
	if d == 0 {
		return true
	}
	return geom.AngleBetween(v, r.Ray) <= r.HalfAngle
}

// ConeTarget returns the biasing target for region r: the point at the
// cone axis on the sphere surface (q_i in Algorithm 2).
func ConeTarget(r *Region) geom.Vec {
	return r.Apex.Add(r.Ray.Scale(r.Radius))
}

// SampleInCone draws a point uniformly-ish inside region r's cone by
// rejection from the enclosing ball sector: a direction within HalfAngle
// of the axis and a radius r^(1/d)-distributed. The direction is produced
// by perturbing the axis and re-normalizing, which concentrates slightly
// toward the axis — acceptable for RRT biasing (the paper's growth is
// biased toward the region target anyway).
func SampleInCone(reg *Region, r *rng.Stream) geom.Vec {
	return SampleInConeInto(nil, reg, r)
}

// SampleInConeInto is SampleInCone writing into dst (growing it as
// needed). The RNG stream consumption is identical to SampleInCone, so
// pooled and unpooled growth produce the same tree from the same stream.
func SampleInConeInto(dst geom.Vec, reg *Region, r *rng.Stream) geom.Vec {
	d := reg.Apex.Dim()
	for tries := 0; tries < 64; tries++ {
		dst = geom.SampleOnSphereInto(dst, d, r)
		if geom.AngleBetween(dst, reg.Ray) > reg.HalfAngle {
			// Blend toward the axis instead of rejecting forever for
			// narrow cones.
			blend := r.Float64()
			scale := blend * math.Sin(reg.HalfAngle)
			var n2 float64
			for i := range dst {
				dst[i] = reg.Ray[i]*(1-blend) + dst[i]*scale
				n2 += dst[i] * dst[i]
			}
			if n2 > 0 {
				dst.ScaleInPlace(1 / math.Sqrt(n2))
			}
		}
		if geom.AngleBetween(dst, reg.Ray) <= reg.HalfAngle {
			rad := reg.Radius * math.Pow(r.Float64(), 1/float64(d))
			for i := range dst {
				dst[i] = reg.Apex[i] + dst[i]*rad
			}
			return dst
		}
	}
	// Fall back to the axis.
	rad := reg.Radius * r.Float64()
	dst = geom.CopyInto(dst, reg.Apex)
	for i := range dst {
		dst[i] += reg.Ray[i] * rad
	}
	return dst
}
