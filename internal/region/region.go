// Package region implements the spatial subdivision layer: uniform grid
// subdivision of the C-space for PRM (Jacobs et al., ICRA 2012) and
// uniform radial subdivision for RRT (Jacobs et al., ICRA 2013), plus the
// region graph that records adjacency between regions.
//
// Regions are the quanta of work for all load-balancing strategies: the
// problem is deliberately over-decomposed (regions ≫ processors) so both
// work stealing and repartitioning have enough granularity to balance.
package region

import (
	"fmt"

	"parmp/internal/geom"
	"parmp/internal/graph"
)

// Kind discriminates grid boxes from radial cones.
type Kind int

const (
	// KindBox is a grid-subdivision region (an AABB of C-space).
	KindBox Kind = iota
	// KindCone is a radial-subdivision region (a cone about a ray).
	KindCone
)

// Region is one quantum of planning work.
type Region struct {
	ID   int
	Kind Kind

	// Box is the sampling volume for KindBox regions (already expanded by
	// any overlap margin). Core holds the unexpanded cell.
	Box  geom.AABB
	Core geom.AABB

	// Ray is the unit direction defining a KindCone region; Apex its
	// origin (the tree root); Radius the subdivision sphere radius;
	// HalfAngle the cone's angular reach used for biased sampling.
	Ray       geom.Vec
	Apex      geom.Vec
	Radius    float64
	HalfAngle float64

	// GridCoord is the integer cell coordinate for KindBox regions.
	GridCoord []int

	// Weight is the load estimate attached by a weighting pass
	// (repartitioning input). Zero until estimated.
	Weight float64
}

// String identifies the region.
func (r *Region) String() string {
	if r.Kind == KindBox {
		return fmt.Sprintf("region#%d box %v", r.ID, r.Core)
	}
	return fmt.Sprintf("region#%d cone dir=%v", r.ID, r.Ray)
}

// Graph is a region graph: vertices are regions, edges join adjacent
// regions between which roadmap connections will be attempted.
type Graph struct {
	G *graph.Graph[*Region]
	// Owner[i] is the processor currently owning region i. Populated by
	// the initial partition and updated by migration.
	Owner []int
}

// NumRegions returns the number of regions.
func (rg *Graph) NumRegions() int { return rg.G.NumVertices() }

// Region returns region i.
func (rg *Graph) Region(i int) *Region { return rg.G.Vertex(graph.ID(i)) }

// Regions returns all regions in ID order.
func (rg *Graph) Regions() []*Region {
	out := make([]*Region, rg.NumRegions())
	for i := range out {
		out[i] = rg.Region(i)
	}
	return out
}

// Adjacent returns the IDs of regions adjacent to i.
func (rg *Graph) Adjacent(i int) []int {
	edges := rg.G.Neighbors(graph.ID(i))
	out := make([]int, len(edges))
	for j, e := range edges {
		out[j] = int(e.To)
	}
	return out
}

// ForEachAdjacentPair calls fn for every region adjacency (a < b).
func (rg *Graph) ForEachAdjacentPair(fn func(a, b int)) {
	rg.G.ForEachEdge(func(a, b graph.ID, _ float64) { fn(int(a), int(b)) })
}

// EdgeCut returns the number of region-graph edges whose endpoints are
// owned by different processors under the current Owner assignment — the
// quantity that drives remote accesses during the region-connection phase.
func (rg *Graph) EdgeCut() int {
	cut := 0
	rg.G.ForEachEdge(func(a, b graph.ID, _ float64) {
		if rg.Owner[a] != rg.Owner[b] {
			cut++
		}
	})
	return cut
}

// SetWeights stores w[i] into each region's Weight. It returns a
// descriptive error (instead of crashing the caller) when the vector
// length does not match the region count.
func (rg *Graph) SetWeights(w []float64) error {
	if len(w) != rg.NumRegions() {
		return fmt.Errorf("region: weight vector has %d entries for %d regions", len(w), rg.NumRegions())
	}
	for i, v := range w {
		rg.Region(i).Weight = v
	}
	return nil
}

// Weights returns a copy of all region weights in ID order.
func (rg *Graph) Weights() []float64 {
	w := make([]float64, rg.NumRegions())
	for i := range w {
		w[i] = rg.Region(i).Weight
	}
	return w
}

// LoadPerProcessor sums region weights per owner over p processors.
func (rg *Graph) LoadPerProcessor(p int) []float64 {
	load := make([]float64, p)
	for i := 0; i < rg.NumRegions(); i++ {
		load[rg.Owner[i]] += rg.Region(i).Weight
	}
	return load
}
