package region

import (
	"sort"

	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/graph"
)

// AdaptiveSpec configures adaptive grid subdivision: start from a coarse
// uniform grid and recursively split cells that straddle obstacle
// boundaries. The paper identifies granularity as the lower bound on
// achievable balance ("the size of the biggest quanta of work establishes
// a lower bound"); adaptive refinement spends granularity where the
// workload is heterogeneous instead of everywhere.
type AdaptiveSpec struct {
	// Base is the coarse starting grid.
	Base GridSpec
	// MaxDepth bounds recursive splits per cell (default 2).
	MaxDepth int
	// MinFree and MaxFree delimit the "interesting" band: cells whose
	// free-volume fraction is strictly between them get refined.
	// Defaults: 0.02 and 0.98.
	MinFree, MaxFree float64
	// MCSamples per cell for free-volume estimation in environments
	// without exact accounting (default 512).
	MCSamples int
}

func (a AdaptiveSpec) maxDepth() int {
	if a.MaxDepth <= 0 {
		return 2
	}
	return a.MaxDepth
}

func (a AdaptiveSpec) band() (lo, hi float64) {
	lo, hi = a.MinFree, a.MaxFree
	if lo <= 0 {
		lo = 0.02
	}
	if hi <= 0 || hi >= 1 {
		hi = 0.98
	}
	return lo, hi
}

// AdaptiveGrid subdivides e's workspace: uniform base cells, then cells
// whose free fraction lies strictly inside (MinFree, MaxFree) are split
// in half along their longest axis, recursively up to MaxDepth. Region
// adjacency is rebuilt from face overlap, so the region graph stays
// consistent across refinement levels. A malformed base grid surfaces as
// an error, as in UniformGrid.
func AdaptiveGrid(e *env.Environment, spec AdaptiveSpec) (*Graph, error) {
	base, err := UniformGrid(e.Bounds, spec.Base)
	if err != nil {
		return nil, err
	}
	lo, hi := spec.band()

	type cell struct {
		box   geom.AABB
		depth int
	}
	var leaves []geom.AABB
	stack := make([]cell, 0, base.NumRegions())
	for _, r := range base.Regions() {
		stack = append(stack, cell{box: r.Core})
	}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		frac := freeFraction(e, c.box, spec.MCSamples)
		if c.depth < spec.maxDepth() && frac > lo && frac < hi {
			a, b := splitLongest(c.box)
			stack = append(stack, cell{box: a, depth: c.depth + 1}, cell{box: b, depth: c.depth + 1})
			continue
		}
		leaves = append(leaves, c.box)
	}

	// Deterministic region IDs: sort leaves lexicographically by corner.
	sort.Slice(leaves, func(i, j int) bool {
		for d := 0; d < leaves[i].Dim(); d++ {
			if leaves[i].Lo[d] != leaves[j].Lo[d] {
				return leaves[i].Lo[d] < leaves[j].Lo[d]
			}
		}
		return leaves[i].Volume() < leaves[j].Volume()
	})

	g := graph.New[*Region](len(leaves))
	for i, box := range leaves {
		g.AddVertex(&Region{ID: i, Kind: KindBox, Box: box, Core: box})
	}
	// Face adjacency: boxes that touch with positive overlap area.
	for i := range leaves {
		for j := i + 1; j < len(leaves); j++ {
			if boxesAdjacent(leaves[i], leaves[j]) {
				g.AddEdge(graph.ID(i), graph.ID(j), 1)
			}
		}
	}
	return &Graph{G: g, Owner: make([]int, len(leaves))}, nil
}

// freeFraction estimates the free fraction of box.
func freeFraction(e *env.Environment, box geom.AABB, mc int) float64 {
	v := box.Volume()
	if v == 0 {
		return 0
	}
	if mc <= 0 {
		mc = 512
	}
	return e.FreeVolumeIn(box, mc, 0x5eed) / v
}

// splitLongest halves box along its longest axis.
func splitLongest(box geom.AABB) (geom.AABB, geom.AABB) {
	ext := box.Extent()
	axis := 0
	for d := 1; d < len(ext); d++ {
		if ext[d] > ext[axis] {
			axis = d
		}
	}
	mid := 0.5 * (box.Lo[axis] + box.Hi[axis])
	aHi := box.Hi.Clone()
	aHi[axis] = mid
	bLo := box.Lo.Clone()
	bLo[axis] = mid
	return geom.AABB{Lo: box.Lo.Clone(), Hi: aHi}, geom.AABB{Lo: bLo, Hi: box.Hi.Clone()}
}

// boxesAdjacent reports whether two boxes share a face with positive
// overlap measure (touching along exactly one axis, overlapping on the
// others).
func boxesAdjacent(a, b geom.AABB) bool {
	touch := 0
	for d := 0; d < a.Dim(); d++ {
		lo := maxf(a.Lo[d], b.Lo[d])
		hi := minf(a.Hi[d], b.Hi[d])
		switch {
		case lo > hi+1e-12:
			return false // separated
		case hi-lo <= 1e-12:
			touch++ // touching plane on this axis
		}
	}
	return touch == 1
}
