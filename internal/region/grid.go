package region

import (
	"fmt"

	"parmp/internal/geom"
	"parmp/internal/graph"
)

// GridSpec describes a uniform grid subdivision of the positional C-space
// dimensions (Algorithm 1, line 2 of the paper).
type GridSpec struct {
	// Cells per dimension; len(Cells) determines how many leading C-space
	// dimensions are subdivided (x, y[, z] for typical workspaces).
	Cells []int
	// Overlap expands each region's sampling box by this fraction of the
	// cell extent on every side, so boundary samples can connect across
	// regions ("some user-defined overlap is allowed between regions").
	Overlap float64
}

// NumRegions returns the total cell count of the spec.
func (s GridSpec) NumRegions() int {
	n := 1
	for _, c := range s.Cells {
		n *= c
	}
	return n
}

// SplitEvenly returns a GridSpec subdividing dims dimensions into at least
// n total regions, keeping per-dimension counts as equal as possible.
func SplitEvenly(dims, n int, overlap float64) GridSpec {
	cells := make([]int, dims)
	for i := range cells {
		cells[i] = 1
	}
	for total := 1; total < n; {
		// Grow the smallest dimension.
		mi := 0
		for i := 1; i < dims; i++ {
			if cells[i] < cells[mi] {
				mi = i
			}
		}
		cells[mi]++
		total = 1
		for _, c := range cells {
			total *= c
		}
	}
	return GridSpec{Cells: cells, Overlap: overlap}
}

// UniformGrid subdivides bounds into the spec's cells and builds the
// region graph with edges between face-adjacent cells. Region IDs are
// row-major over the grid coordinates. A spec whose dimensionality does
// not fit the bounds (or with a non-positive cell count) is a
// configuration error, not a crash: serving processes validate plans
// built from user input, so malformed subdivisions must surface as
// errors.
func UniformGrid(bounds geom.AABB, spec GridSpec) (*Graph, error) {
	dims := len(spec.Cells)
	if dims == 0 || dims > bounds.Dim() {
		return nil, fmt.Errorf("region: grid subdivides %d dimensions but the C-space bounds have %d; configure at most bounds-many cell dimensions", dims, bounds.Dim())
	}
	for i, c := range spec.Cells {
		if c <= 0 {
			return nil, fmt.Errorf("region: grid dimension %d has non-positive cell count %d", i, c)
		}
	}
	n := spec.NumRegions()
	g := graph.New[*Region](n)
	strides := make([]int, dims)
	stride := 1
	for i := dims - 1; i >= 0; i-- {
		strides[i] = stride
		stride *= spec.Cells[i]
	}
	cellExtent := make([]float64, dims)
	for i := 0; i < dims; i++ {
		cellExtent[i] = (bounds.Hi[i] - bounds.Lo[i]) / float64(spec.Cells[i])
	}

	coord := make([]int, dims)
	for id := 0; id < n; id++ {
		// Decode row-major id into grid coordinates.
		rem := id
		for i := 0; i < dims; i++ {
			coord[i] = rem / strides[i]
			rem %= strides[i]
		}
		lo := make(geom.Vec, dims)
		hi := make(geom.Vec, dims)
		for i := 0; i < dims; i++ {
			lo[i] = bounds.Lo[i] + float64(coord[i])*cellExtent[i]
			hi[i] = lo[i] + cellExtent[i]
		}
		core := geom.NewAABB(lo, hi)
		// Expand by overlap, clamped to the global bounds.
		box := core
		if spec.Overlap > 0 {
			elo := make(geom.Vec, dims)
			ehi := make(geom.Vec, dims)
			for i := 0; i < dims; i++ {
				m := spec.Overlap * cellExtent[i]
				elo[i] = maxf(bounds.Lo[i], lo[i]-m)
				ehi[i] = minf(bounds.Hi[i], hi[i]+m)
			}
			box = geom.NewAABB(elo, ehi)
		}
		r := &Region{
			ID:        id,
			Kind:      KindBox,
			Box:       box,
			Core:      core,
			GridCoord: append([]int(nil), coord...),
		}
		g.AddVertex(r)
	}

	// Face adjacency: +1 along each dimension.
	for id := 0; id < n; id++ {
		rem := id
		for i := 0; i < dims; i++ {
			coord[i] = rem / strides[i]
			rem %= strides[i]
		}
		for i := 0; i < dims; i++ {
			if coord[i]+1 < spec.Cells[i] {
				g.AddEdge(graph.ID(id), graph.ID(id+strides[i]), 1)
			}
		}
	}

	return &Graph{G: g, Owner: make([]int, n)}, nil
}

// MustUniformGrid is UniformGrid for specs that are valid by construction
// (analytic models, tests). It panics on error — never use it on
// user-supplied configuration; the planning entry points validate and
// return errors instead.
func MustUniformGrid(bounds geom.AABB, spec GridSpec) *Graph {
	g, err := UniformGrid(bounds, spec)
	if err != nil {
		panic(err)
	}
	return g
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// NaiveColumnPartition assigns regions to p processors by contiguous
// blocks of the leading grid dimension ("a 1D partitioning of the region
// mesh [assigning] a balanced number of region columns to processors") —
// the paper's baseline mapping. It works for any region count by blocking
// contiguous ID ranges, which coincides with column blocks for row-major
// grids.
func NaiveColumnPartition(rg *Graph, p int) {
	n := rg.NumRegions()
	for i := 0; i < n; i++ {
		owner := i * p / n
		if owner >= p {
			owner = p - 1
		}
		rg.Owner[i] = owner
	}
}
