package kernelbench

import (
	"bytes"
	"encoding/json"
	"flag"
	"strings"
	"testing"
)

// TestRunOneKernel smoke-tests the testing.Benchmark plumbing on the
// cheapest kernel with a tiny benchtime.
func TestRunOneKernel(t *testing.T) {
	if err := flag.Set("test.benchtime", "10x"); err != nil {
		t.Fatal(err)
	}
	r := testing.Benchmark(benchLocalPlan)
	if r.N < 10 {
		t.Fatalf("benchmark ran %d iterations, want >= 10", r.N)
	}
	if a := r.AllocsPerOp(); a > 5 {
		t.Fatalf("LocalPlan kernel allocates %d allocs/op, want near zero", a)
	}
}

func TestKernelsNamedAndSorted(t *testing.T) {
	ks := Kernels()
	if len(ks) < 6 {
		t.Fatalf("kernel suite has %d entries, want at least 6", len(ks))
	}
	for i, k := range ks {
		if k.Name == "" || k.Bench == nil {
			t.Fatalf("kernel %d incomplete: %+v", i, k)
		}
		if i > 0 && ks[i-1].Name >= k.Name {
			t.Fatalf("kernels not sorted: %q before %q", ks[i-1].Name, k.Name)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	in := []Result{
		{Name: "A", Iterations: 3, NsPerOp: 12.5, AllocsPerOp: 1, BytesPerOp: 64},
		{Name: "B", Iterations: 9, NsPerOp: 0.5},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Result
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

// TestRunBatchKernel smoke-tests a batched kernel body and its
// steady-state allocation contract.
func TestRunBatchKernel(t *testing.T) {
	if err := flag.Set("test.benchtime", "10x"); err != nil {
		t.Fatal(err)
	}
	r := testing.Benchmark(benchLocalPlanBatch)
	if r.N < 10 {
		t.Fatalf("benchmark ran %d iterations, want >= 10", r.N)
	}
	if a := r.AllocsPerOp(); a > 5 {
		t.Fatalf("LocalPlanBatch kernel allocates %d allocs/op, want near zero", a)
	}
}

func TestCheckBatchNs(t *testing.T) {
	rs := []Result{
		{Name: "LocalPlan", NsPerOp: 100, ItemsPerOp: 1, NsPerItem: 100},
		{Name: "LocalPlanBatch", NsPerOp: 110, ItemsPerOp: 1, NsPerItem: 110},
		{Name: "NearestInto", NsPerOp: 100, ItemsPerOp: 1, NsPerItem: 100},
		{Name: "NearestBatch", NsPerOp: 6400, ItemsPerOp: 64, NsPerItem: 100},
	}
	if err := CheckBatchNs(rs, 1.15); err != nil {
		t.Fatalf("within-ratio results failed the gate: %v", err)
	}
	rs[1].NsPerItem = 120 // 1.2x > 1.15x
	err := CheckBatchNs(rs, 1.15)
	if err == nil {
		t.Fatal("expected ratio gate failure")
	}
	if !strings.Contains(err.Error(), "LocalPlanBatch") || strings.Contains(err.Error(), "NearestBatch") {
		t.Fatalf("error should name only the offending pair: %v", err)
	}
	// Pairs with a missing side are skipped, not failed.
	if err := CheckBatchNs(rs[:2][1:], 1.15); err != nil {
		t.Fatalf("missing scalar side should be skipped: %v", err)
	}
}

func TestCheckNsRegression(t *testing.T) {
	base := []Result{
		{Name: "LocalPlan", NsPerOp: 100},
		{Name: "NearestInto", NsPerOp: 200},
	}
	cur := []Result{
		{Name: "LocalPlan", NsPerOp: 110},    // +10%: fine at 15%
		{Name: "NearestInto", NsPerOp: 260},  // +30%: regression
		{Name: "BrandNewKernel", NsPerOp: 1}, // absent from baseline: skipped
	}
	err := CheckNsRegression(cur, base, 0.15)
	if err == nil {
		t.Fatal("expected regression error")
	}
	if !strings.Contains(err.Error(), "NearestInto") || strings.Contains(err.Error(), "LocalPlan ") {
		t.Fatalf("error should name only the offender: %v", err)
	}
	if err := CheckNsRegression(cur, base, 0.5); err != nil {
		t.Fatalf("generous threshold should pass: %v", err)
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, base); err != nil {
		t.Fatal(err)
	}
	round, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(round) != len(base) || round[0] != base[0] {
		t.Fatalf("ReadJSON round trip: got %+v, want %+v", round, base)
	}
}

func TestCheckMaxAllocs(t *testing.T) {
	rs := []Result{
		{Name: "ok", AllocsPerOp: 2},
		{Name: "hot", AllocsPerOp: 500},
	}
	if err := CheckMaxAllocs(rs, 500); err != nil {
		t.Fatalf("unexpected failure at threshold: %v", err)
	}
	err := CheckMaxAllocs(rs, 10)
	if err == nil {
		t.Fatal("expected regression error")
	}
	if !strings.Contains(err.Error(), "hot") || strings.Contains(err.Error(), "\"ok\"") {
		t.Fatalf("error should name only the offender: %v", err)
	}
}
