// Package kernelbench measures the repository's hot compute kernels —
// sampling, collision checking, nearest-neighbour queries and region
// connection — and emits machine-readable results for the CI
// benchmark-regression gate.
//
// The kernel list mirrors the BenchmarkKernel* benchmarks in the
// internal packages, but lives in normal (non-test) code so that
// `mpbench -kernels` can run it from a plain binary via
// testing.Benchmark. Allocation counts are the contract: the pooled
// kernels are expected to stay at (near) zero allocs/op, and CI fails
// when any kernel regresses above its threshold.
package kernelbench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/knn"
	"parmp/internal/prm"
	"parmp/internal/rng"
)

// Result is one kernel's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// ItemsPerOp is how many logical items (configurations, edges, kNN
	// queries) one op processes; NsPerItem = NsPerOp / ItemsPerOp. Batch
	// kernels amortize per-call overhead over many items, so per-item
	// time — not per-op time — is what the batch regression gate compares
	// against the scalar counterpart.
	ItemsPerOp int     `json:"items_per_op"`
	NsPerItem  float64 `json:"ns_per_item"`
}

// Kernel names a benchmark body runnable via testing.Benchmark. Items is
// the number of logical items one benchmark op processes (0 = 1).
type Kernel struct {
	Name  string
	Items int
	Bench func(b *testing.B)
}

// Kernels returns the canonical kernel suite, sorted by name.
func Kernels() []Kernel {
	ks := []Kernel{
		{Name: "ConnectRegion", Bench: benchConnectRegion},
		{Name: "ConnectBoundary", Bench: benchConnectBoundary},
		{Name: "ConfigFree", Bench: benchConfigFree},
		{Name: "ConfigFreeBatch", Items: batchConfigs, Bench: benchConfigFreeBatch},
		{Name: "EdgeFreeLinkage", Bench: benchEdgeFreeLinkage},
		{Name: "EdgeFreeBatchLinkage", Items: batchEdges, Bench: benchEdgeFreeBatchLinkage},
		{Name: "LocalPlan", Bench: benchLocalPlan},
		{Name: "LocalPlanBatch", Bench: benchLocalPlanBatch},
		{Name: "NearestInto", Bench: benchNearestInto},
		{Name: "NearestBatch", Items: batchQueries, Bench: benchNearestBatch},
		{Name: "DynamicNearest", Bench: benchDynamicNearest},
		{Name: "KDTreeBuild", Bench: benchKDTreeBuild},
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].Name < ks[j].Name })
	return ks
}

// RunAll benchmarks every kernel and returns the results in suite order.
func RunAll() []Result {
	ks := Kernels()
	out := make([]Result, 0, len(ks))
	for _, k := range ks {
		r := testing.Benchmark(k.Bench)
		items := k.Items
		if items <= 0 {
			items = 1
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		out = append(out, Result{
			Name:        k.Name,
			Iterations:  r.N,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			ItemsPerOp:  items,
			NsPerItem:   ns / float64(items),
		})
	}
	return out
}

// WriteJSON emits the results as indented JSON.
func WriteJSON(w io.Writer, rs []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// CheckMaxAllocs returns an error naming every kernel whose allocs/op
// exceeds max — the CI regression gate.
func CheckMaxAllocs(rs []Result, max int64) error {
	var bad []string
	for _, r := range rs {
		if r.AllocsPerOp > max {
			bad = append(bad, fmt.Sprintf("%s (%d allocs/op)", r.Name, r.AllocsPerOp))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("kernels exceed %d allocs/op: %v", max, bad)
	}
	return nil
}

// batchPairs maps each batched kernel to its scalar counterpart. Both
// sides of a pair process the same inputs (the scalar kernel one item
// per op, the batch kernel the whole set), so per-item times are
// directly comparable on any machine.
var batchPairs = []struct{ batch, scalar string }{
	{"ConfigFreeBatch", "ConfigFree"},
	{"EdgeFreeBatchLinkage", "EdgeFreeLinkage"},
	{"LocalPlanBatch", "LocalPlan"},
	{"NearestBatch", "NearestInto"},
}

// CheckBatchNs enforces the batched kernels' ns regression gate: each
// batch kernel's per-item time must stay within maxRatio of its scalar
// counterpart's (e.g. 1.15 = at most 15% slower per item). The ratio is
// machine-independent — both sides run on the same host in the same
// process — so CI needs no stored baseline for this check.
func CheckBatchNs(rs []Result, maxRatio float64) error {
	byName := make(map[string]Result, len(rs))
	for _, r := range rs {
		byName[r.Name] = r
	}
	var bad []string
	for _, p := range batchPairs {
		b, okB := byName[p.batch]
		s, okS := byName[p.scalar]
		if !okB || !okS {
			continue
		}
		if s.NsPerItem <= 0 {
			continue
		}
		if ratio := b.NsPerItem / s.NsPerItem; ratio > maxRatio {
			bad = append(bad, fmt.Sprintf("%s %.1f ns/item vs %s %.1f ns/item (%.2fx > %.2fx)",
				p.batch, b.NsPerItem, p.scalar, s.NsPerItem, ratio, maxRatio))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("batch kernels regressed past the scalar baseline: %v", bad)
	}
	return nil
}

// ReadJSON parses results previously written by WriteJSON.
func ReadJSON(r io.Reader) ([]Result, error) {
	var rs []Result
	if err := json.NewDecoder(r).Decode(&rs); err != nil {
		return nil, err
	}
	return rs, nil
}

// CheckNsRegression compares current results against a stored baseline:
// any kernel present in both whose ns/op grew by more than maxRegress
// (0.15 = 15%) fails the gate. Kernels absent from the baseline are
// skipped, so adding a kernel never breaks an old baseline file.
func CheckNsRegression(cur, baseline []Result, maxRegress float64) error {
	base := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	var bad []string
	for _, r := range cur {
		b, ok := base[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if r.NsPerOp > b.NsPerOp*(1+maxRegress) {
			bad = append(bad, fmt.Sprintf("%s %.1f ns/op vs baseline %.1f ns/op (+%.0f%%)",
				r.Name, r.NsPerOp, b.NsPerOp, (r.NsPerOp/b.NsPerOp-1)*100))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("kernels regressed more than %.0f%% over baseline: %v", maxRegress*100, bad)
	}
	return nil
}

func benchConnectRegion(b *testing.B) {
	s := cspace.NewPointSpace(env.MedCube())
	nodes, _ := prm.SampleRegion(s, s.Bounds, 0, prm.Params{SamplesPerRegion: 200}, rng.New(7))
	p := prm.Params{K: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prm.ConnectRegion(s, nodes, p)
	}
}

func benchConnectBoundary(b *testing.B) {
	s := cspace.NewPointSpace(env.MedCube())
	all, _ := prm.SampleRegion(s, s.Bounds, 0, prm.Params{SamplesPerRegion: 240}, rng.New(7))
	half := len(all) / 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prm.ConnectBoundary(s, all[:half], all[half:], 4, 16)
	}
}

// Batch sizes for the batched kernels; the scalar counterparts iterate
// the same fixture sets one item per op, so per-item times compare the
// exact same work.
const (
	batchConfigs = 64
	batchEdges   = 16
	batchQueries = 64
)

// freeConfigs rejection-samples n collision-free configurations.
func freeConfigs(s *cspace.Space, n int, seed uint64) []cspace.Config {
	r := rng.New(seed)
	var sc cspace.Scratch
	var c cspace.Counters
	out := make([]cspace.Config, 0, n)
	for len(out) < n {
		q := s.SampleIn(s.Bounds, r, nil)
		if s.ValidS(q, &sc, &c) {
			out = append(out, q)
		}
	}
	return out
}

func rigidBenchSpace() *cspace.Space {
	return cspace.NewRigidBodySpace(env.MedCube(), cspace.NewRigidBox(0.03, 0.02, 0.01))
}

func benchConfigFree(b *testing.B) {
	s := rigidBenchSpace()
	var c cspace.Counters
	var sc cspace.Scratch
	qs := freeConfigs(s, batchConfigs, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ValidS(qs[i%len(qs)], &sc, &c)
	}
}

func benchConfigFreeBatch(b *testing.B) {
	s := rigidBenchSpace()
	robot := s.Robot.(cspace.BatchRobot)
	qs := freeConfigs(s, batchConfigs, 11)
	var bt cspace.Batch
	bt.Reset(s.Dim())
	for _, q := range qs {
		bt.Append(q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		robot.ConfigFreeBatch(s.Env, &bt)
	}
}

// linkageBenchEdges returns n short edges whose swept motion is free, so
// a batch sweep never fails fast and every item costs full validation.
func linkageBenchEdges(e *env.Environment, l cspace.Linkage, s *cspace.Space, n int, seed uint64) (qa, qb []cspace.Config) {
	r := rng.New(seed)
	var sc cspace.Scratch
	for len(qa) < n {
		a := s.SampleIn(s.Bounds, r, nil)
		bb := a.Clone()
		for i := range bb {
			bb[i] += 0.01
		}
		if ok, _ := l.EdgeFreeS(e, a, bb, &sc); ok {
			qa = append(qa, a)
			qb = append(qb, bb)
		}
	}
	return qa, qb
}

func linkageBenchSpace() (*env.Environment, cspace.Linkage, *cspace.Space) {
	e := env.Maze2D(4, 0.2)
	l := cspace.Linkage{Base: geom.V(0.5, 0.5), LinkLen: []float64{0.1, 0.1, 0.08, 0.06}}
	return e, l, cspace.NewLinkageSpace(e, l)
}

func benchEdgeFreeLinkage(b *testing.B) {
	e, l, s := linkageBenchSpace()
	qa, qb := linkageBenchEdges(e, l, s, batchEdges, 13)
	var sc cspace.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(qa)
		l.EdgeFreeS(e, qa[j], qb[j], &sc)
	}
}

func benchEdgeFreeBatchLinkage(b *testing.B) {
	e, l, s := linkageBenchSpace()
	qa, qb := linkageBenchEdges(e, l, s, batchEdges, 13)
	var bt cspace.Batch
	bt.Reset(s.Dim())
	for j := range qa {
		bt.AppendEdge(qa[j], qb[j])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.EdgeFreeBatch(e, &bt)
	}
}

// localPlanEdge is a free edge of the med-cube point space (it skirts
// the central cube), so both local planners sweep the full resolution —
// the accepted-edge hot path that dominates PRM connection cost.
func localPlanEdge() (geom.Vec, geom.Vec) {
	return geom.V(0.05, 0.05, 0.05), geom.V(0.1, 0.9, 0.1)
}

func benchLocalPlan(b *testing.B) {
	s := cspace.NewPointSpace(env.MedCube())
	var c cspace.Counters
	var sc cspace.Scratch
	qa, qb := localPlanEdge()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LocalPlanS(qa, qb, &sc, &c)
	}
}

func benchLocalPlanBatch(b *testing.B) {
	s := cspace.NewPointSpace(env.MedCube())
	var c cspace.Counters
	var bt cspace.Batch
	qa, qb := localPlanEdge()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LocalPlanBatch(qa, qb, &bt, &c)
	}
}

func randomPoints(r *rng.Stream, n, d int) []geom.Vec {
	pts := make([]geom.Vec, n)
	for i := range pts {
		pts[i] = make(geom.Vec, d)
		for j := range pts[i] {
			pts[i][j] = r.Float64()
		}
	}
	return pts
}

func benchNearestInto(b *testing.B) {
	r := rng.New(17)
	pts := randomPoints(r, 1000, 3)
	tree := knn.Build(pts)
	qs := randomPoints(r, 64, 3)
	var sc knn.QueryScratch
	var dst []knn.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = tree.NearestInto(&sc, qs[i%len(qs)], 8, -1, dst[:0])
	}
}

func benchNearestBatch(b *testing.B) {
	r := rng.New(17)
	pts := randomPoints(r, 1000, 3)
	tree := knn.Build(pts)
	qs := randomPoints(r, batchQueries, 3)
	var sc knn.QueryScratch
	var dst []knn.Result
	var offs []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, offs, _ = tree.NearestBatch(&sc, qs, 8, -1, dst[:0], offs)
	}
}

func benchDynamicNearest(b *testing.B) {
	r := rng.New(19)
	d := knn.NewDynamic()
	for i := 0; i < 5000; i++ {
		d.Add(randomPoints(r, 1, 3)[0])
	}
	qs := randomPoints(r, 64, 3)
	var sc knn.QueryScratch
	var dst []knn.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = d.NearestInto(&sc, qs[i%len(qs)], 8, dst[:0])
	}
}

func benchKDTreeBuild(b *testing.B) {
	r := rng.New(23)
	pts := randomPoints(r, 20000, 3)
	var tree knn.KDTree
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Reset(pts)
	}
}
