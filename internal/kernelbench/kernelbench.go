// Package kernelbench measures the repository's hot compute kernels —
// sampling, collision checking, nearest-neighbour queries and region
// connection — and emits machine-readable results for the CI
// benchmark-regression gate.
//
// The kernel list mirrors the BenchmarkKernel* benchmarks in the
// internal packages, but lives in normal (non-test) code so that
// `mpbench -kernels` can run it from a plain binary via
// testing.Benchmark. Allocation counts are the contract: the pooled
// kernels are expected to stay at (near) zero allocs/op, and CI fails
// when any kernel regresses above its threshold.
package kernelbench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/knn"
	"parmp/internal/prm"
	"parmp/internal/rng"
)

// Result is one kernel's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Kernel names a benchmark body runnable via testing.Benchmark.
type Kernel struct {
	Name  string
	Bench func(b *testing.B)
}

// Kernels returns the canonical kernel suite, sorted by name.
func Kernels() []Kernel {
	ks := []Kernel{
		{Name: "ConnectRegion", Bench: benchConnectRegion},
		{Name: "ConnectBoundary", Bench: benchConnectBoundary},
		{Name: "ConfigFree", Bench: benchConfigFree},
		{Name: "EdgeFreeLinkage", Bench: benchEdgeFreeLinkage},
		{Name: "LocalPlan", Bench: benchLocalPlan},
		{Name: "NearestInto", Bench: benchNearestInto},
		{Name: "DynamicNearest", Bench: benchDynamicNearest},
		{Name: "KDTreeBuild", Bench: benchKDTreeBuild},
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].Name < ks[j].Name })
	return ks
}

// RunAll benchmarks every kernel and returns the results in suite order.
func RunAll() []Result {
	ks := Kernels()
	out := make([]Result, 0, len(ks))
	for _, k := range ks {
		r := testing.Benchmark(k.Bench)
		out = append(out, Result{
			Name:        k.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}

// WriteJSON emits the results as indented JSON.
func WriteJSON(w io.Writer, rs []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// CheckMaxAllocs returns an error naming every kernel whose allocs/op
// exceeds max — the CI regression gate.
func CheckMaxAllocs(rs []Result, max int64) error {
	var bad []string
	for _, r := range rs {
		if r.AllocsPerOp > max {
			bad = append(bad, fmt.Sprintf("%s (%d allocs/op)", r.Name, r.AllocsPerOp))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("kernels exceed %d allocs/op: %v", max, bad)
	}
	return nil
}

func benchConnectRegion(b *testing.B) {
	s := cspace.NewPointSpace(env.MedCube())
	nodes, _ := prm.SampleRegion(s, s.Bounds, 0, prm.Params{SamplesPerRegion: 200}, rng.New(7))
	p := prm.Params{K: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prm.ConnectRegion(s, nodes, p)
	}
}

func benchConnectBoundary(b *testing.B) {
	s := cspace.NewPointSpace(env.MedCube())
	all, _ := prm.SampleRegion(s, s.Bounds, 0, prm.Params{SamplesPerRegion: 240}, rng.New(7))
	half := len(all) / 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prm.ConnectBoundary(s, all[:half], all[half:], 4, 16)
	}
}

func benchConfigFree(b *testing.B) {
	s := cspace.NewRigidBodySpace(env.MedCube(), cspace.NewRigidBox(0.03, 0.02, 0.01))
	r := rng.New(11)
	var c cspace.Counters
	var sc cspace.Scratch
	qs := make([]cspace.Config, 64)
	for i := range qs {
		qs[i] = s.SampleIn(s.Bounds, r, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ValidS(qs[i%len(qs)], &sc, &c)
	}
}

func benchEdgeFreeLinkage(b *testing.B) {
	e := env.Maze2D(4, 0.2)
	l := cspace.Linkage{Base: geom.V(0.5, 0.5), LinkLen: []float64{0.1, 0.1, 0.08, 0.06}}
	s := cspace.NewLinkageSpace(e, l)
	r := rng.New(13)
	var sc cspace.Scratch
	qa := s.SampleIn(s.Bounds, r, nil)
	qb := qa.Clone()
	for i := range qb {
		qb[i] += 0.01
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.EdgeFreeS(e, qa, qb, &sc)
	}
}

func benchLocalPlan(b *testing.B) {
	s := cspace.NewPointSpace(env.MedCube())
	var c cspace.Counters
	var sc cspace.Scratch
	qa := geom.V(0.1, 0.1, 0.1)
	qb := geom.V(0.35, 0.3, 0.32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LocalPlanS(qa, qb, &sc, &c)
	}
}

func randomPoints(r *rng.Stream, n, d int) []geom.Vec {
	pts := make([]geom.Vec, n)
	for i := range pts {
		pts[i] = make(geom.Vec, d)
		for j := range pts[i] {
			pts[i][j] = r.Float64()
		}
	}
	return pts
}

func benchNearestInto(b *testing.B) {
	r := rng.New(17)
	pts := randomPoints(r, 1000, 3)
	tree := knn.Build(pts)
	qs := randomPoints(r, 64, 3)
	var sc knn.QueryScratch
	var dst []knn.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = tree.NearestInto(&sc, qs[i%len(qs)], 8, -1, dst[:0])
	}
}

func benchDynamicNearest(b *testing.B) {
	r := rng.New(19)
	d := knn.NewDynamic()
	for i := 0; i < 5000; i++ {
		d.Add(randomPoints(r, 1, 3)[0])
	}
	qs := randomPoints(r, 64, 3)
	var sc knn.QueryScratch
	var dst []knn.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = d.NearestInto(&sc, qs[i%len(qs)], 8, dst[:0])
	}
}

func benchKDTreeBuild(b *testing.B) {
	r := rng.New(23)
	pts := randomPoints(r, 20000, 3)
	var tree knn.KDTree
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Reset(pts)
	}
}
