package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if math.Abs(CV(xs)-0.4) > 1e-12 {
		t.Fatalf("CV = %v", CV(xs))
	}
	if Max(xs) != 9 || Min(xs) != 2 || Sum(xs) != 40 {
		t.Fatal("Max/Min/Sum wrong")
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || CV(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Fatal("empty inputs should be zero")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be zero")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Pearson(xs, xs); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self correlation = %v, want 1", got)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti correlation = %v, want -1", got)
	}
	// Affine transforms preserve the coefficient.
	scaled := []float64{10, 30, 50, 70, 90} // 20x - 10
	if got := Pearson(xs, scaled); math.Abs(got-1) > 1e-12 {
		t.Fatalf("affine correlation = %v, want 1", got)
	}
	// Independently computed reference value: sxy=10, sxx=10, syy=14.8,
	// so r = 10/sqrt(148) ≈ 0.82199.
	ys := []float64{2, 1, 4, 3, 6}
	want := 10 / math.Sqrt(148)
	if got := Pearson(xs, ys); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Pearson = %v, want %v", got, want)
	}
}

func TestPearsonUndefined(t *testing.T) {
	if Pearson(nil, nil) != 0 {
		t.Fatal("empty inputs should be 0")
	}
	if Pearson([]float64{1, 2}, []float64{1, 2, 3}) != 0 {
		t.Fatal("mismatched lengths should be 0")
	}
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("zero-variance series should be 0")
	}
}

func TestCVZeroMean(t *testing.T) {
	if CV([]float64{0, 0, 0}) != 0 {
		t.Fatal("zero-mean CV should be 0")
	}
}

func TestCVScaleInvariance(t *testing.T) {
	f := func(a, b, c float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(math.Abs(x), 100) + 1
		}
		xs := []float64{clamp(a), clamp(b), clamp(c)}
		ys := make([]float64, len(xs))
		for i := range xs {
			ys[i] = xs[i] * 7
		}
		return math.Abs(CV(xs)-CV(ys)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if Percentile(xs, 0) != 1 {
		t.Fatalf("P0 = %v", Percentile(xs, 0))
	}
	if Percentile(xs, 100) != 10 {
		t.Fatalf("P100 = %v", Percentile(xs, 100))
	}
	if Percentile(xs, 50) != 5 {
		t.Fatalf("P50 = %v", Percentile(xs, 50))
	}
	// Unsorted input must not matter.
	if Percentile([]float64{9, 1, 5}, 100) != 9 {
		t.Fatal("unsorted percentile wrong")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.9, 1.0}
	h := Histogram(xs, 2)
	if h[0] != 3 || h[1] != 2 {
		t.Fatalf("Histogram = %v", h)
	}
	total := 0
	for _, c := range Histogram(xs, 7) {
		total += c
	}
	if total != len(xs) {
		t.Fatal("histogram loses mass")
	}
	// Degenerate range.
	h = Histogram([]float64{3, 3, 3}, 4)
	if h[0] != 3 {
		t.Fatalf("degenerate histogram = %v", h)
	}
}

func TestTable(t *testing.T) {
	tb := &Table{Title: "Fig X", XLabel: "procs", Columns: []string{"a", "b"}}
	tb.AddRow(2, 1.5, 2.5)
	tb.AddRow(4, 1.0, 2.0)
	if got := tb.Column("b"); len(got) != 2 || got[0] != 2.5 || got[1] != 2.0 {
		t.Fatalf("Column = %v", got)
	}
	if tb.Column("zzz") != nil {
		t.Fatal("missing column should be nil")
	}
	s := tb.String()
	for _, want := range []string{"Fig X", "procs", "a", "b", "1.5000"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
	tb.Notes = append(tb.Notes, "hello")
	if !strings.Contains(tb.String(), "note: hello") {
		t.Fatal("notes not rendered")
	}
}

func TestWriteCSV(t *testing.T) {
	tb := &Table{Title: "T", XLabel: "x", Columns: []string{"a", "b"}}
	tb.AddRow(1, 2, 3)
	tb.AddRow(4, 5, 6)
	var buf strings.Builder
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "x,a,b\n1,2,3\n4,5,6\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tb := &Table{Title: "T", XLabel: "x", Columns: []string{"a"}, Notes: []string{"n"}}
	tb.AddRow(1, 2)
	var buf strings.Builder
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != "T" || back.XLabel != "x" || len(back.Rows) != 1 || back.Rows[0][0] != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	if len(back.Notes) != 1 || back.Notes[0] != "n" {
		t.Fatal("notes lost")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline runes = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("sparkline extremes wrong: %q", s)
	}
	// Constant input: all minimum ticks.
	for _, r := range Sparkline([]float64{5, 5, 5}) {
		if r != '▁' {
			t.Fatalf("constant sparkline should be flat: %q", r)
		}
	}
}

func TestBarChart(t *testing.T) {
	lines := BarChart([]string{"a", "b"}, []float64{1, 2}, 10)
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) {
		t.Fatalf("max bar should be full width: %q", lines[1])
	}
	if strings.Count(lines[0], "█") != 5 {
		t.Fatalf("half bar expected: %q", lines[0])
	}
	// Zero data renders empty bars without panicking.
	for _, l := range BarChart(nil, []float64{0, 0}, 5) {
		if strings.Contains(l, "█") {
			t.Fatal("zero data should have empty bars")
		}
	}
}
