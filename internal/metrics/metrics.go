// Package metrics provides the statistical summaries and table formatting
// the experiment harness uses to report results in the shape of the
// paper's figures: coefficients of variation, per-processor load
// profiles, and labelled series printed as aligned text tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CV returns the coefficient of variation sigma/mu — the paper's measure
// of load imbalance. It returns 0 when the mean is 0.
func CV(xs []float64) float64 {
	mu := Mean(xs)
	if mu == 0 {
		return 0
	}
	return StdDev(xs) / mu
}

// Pearson returns the Pearson correlation coefficient of xs and ys. It
// returns 0 when the correlation is undefined: mismatched or empty
// inputs, or either series with zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	var m float64
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	var m float64
	for i, x := range xs {
		if i == 0 || x < m {
			m = x
		}
	}
	return m
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Histogram buckets xs into n equal-width bins over [min, max] and
// returns the counts. Degenerate ranges place everything in bin 0.
func Histogram(xs []float64, n int) []int {
	counts := make([]int, n)
	if len(xs) == 0 || n == 0 {
		return counts
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		counts[0] = len(xs)
		return counts
	}
	for _, x := range xs {
		b := int(float64(n) * (x - lo) / (hi - lo))
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts
}

// Table is a labelled result table: one row per sweep point, one column
// per series, mirroring one paper figure.
type Table struct {
	Title   string
	XLabel  string
	Columns []string
	XS      []float64
	Rows    [][]float64
	Notes   []string
}

// AddRow appends a sweep point.
func (t *Table) AddRow(x float64, values ...float64) {
	t.XS = append(t.XS, x)
	row := append([]float64(nil), values...)
	t.Rows = append(t.Rows, row)
}

// Column returns the series for column name, or nil if absent.
func (t *Table) Column(name string) []float64 {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r[idx]
	}
	return out
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %16s", c)
	}
	b.WriteByte('\n')
	for i, x := range t.XS {
		fmt.Fprintf(&b, "%-12g", x)
		for _, v := range t.Rows[i] {
			fmt.Fprintf(&b, " %16.4f", v)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
