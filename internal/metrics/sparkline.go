package metrics

import "strings"

// sparkTicks are the eight block characters used for sparklines.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders xs as a compact unicode bar string, scaling to the
// data range. Empty input yields an empty string.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := Min(xs), Max(xs)
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if hi > lo {
			idx = int(float64(len(sparkTicks)-1) * (x - lo) / (hi - lo))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkTicks) {
			idx = len(sparkTicks) - 1
		}
		b.WriteRune(sparkTicks[idx])
	}
	return b.String()
}

// BarChart renders xs as horizontal ASCII bars with labels, width columns
// wide at the longest bar. Useful for load profiles in terminal reports.
func BarChart(labels []string, xs []float64, width int) []string {
	if width < 1 {
		width = 40
	}
	hi := Max(xs)
	out := make([]string, len(xs))
	for i, x := range xs {
		n := 0
		if hi > 0 {
			n = int(float64(width) * x / hi)
		}
		if n < 0 {
			n = 0
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		out[i] = padRight(label, 10) + " " + strings.Repeat("█", n)
	}
	return out
}

func padRight(s string, n int) string {
	if len(s) >= n {
		return s[:n]
	}
	return s + strings.Repeat(" ", n-len(s))
}
