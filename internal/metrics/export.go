package metrics

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// WriteCSV emits the table as CSV: a header row (x label + columns) then
// one row per sweep point. Notes are not included.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{t.XLabel}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, x := range t.XS {
		row := make([]string, 0, len(t.Rows[i])+1)
		row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		for _, v := range t.Rows[i] {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the stable JSON shape for a Table.
type tableJSON struct {
	Title   string      `json:"title"`
	XLabel  string      `json:"xLabel"`
	Columns []string    `json:"columns"`
	XS      []float64   `json:"xs"`
	Rows    [][]float64 `json:"rows"`
	Notes   []string    `json:"notes,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{
		Title: t.Title, XLabel: t.XLabel, Columns: t.Columns,
		XS: t.XS, Rows: t.Rows, Notes: t.Notes,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Table) UnmarshalJSON(data []byte) error {
	var tj tableJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return err
	}
	t.Title, t.XLabel, t.Columns = tj.Title, tj.XLabel, tj.Columns
	t.XS, t.Rows, t.Notes = tj.XS, tj.Rows, tj.Notes
	return nil
}

// WriteJSON emits the table as indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
