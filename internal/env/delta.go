package env

import (
	"errors"
	"fmt"

	"parmp/internal/geom"
)

// Mutation errors. All mutation methods leave the environment unchanged
// (same obstacle set, same epoch) when they return an error.
var (
	// ErrDegenerateObstacle rejects obstacles that cannot block anything:
	// nil obstacles, spheres with non-positive radius, or obstacles whose
	// bounds dimension does not match the workspace.
	ErrDegenerateObstacle = errors.New("env: degenerate obstacle")
	// ErrOutOfBounds rejects obstacles (or moves) that land entirely
	// outside the workspace bounds, where they could never affect a
	// valid configuration.
	ErrOutOfBounds = errors.New("env: obstacle outside workspace bounds")
	// ErrNoSuchObstacle rejects removals/moves of obstacle indices that
	// do not exist.
	ErrNoSuchObstacle = errors.New("env: no such obstacle")
	// ErrImmovableObstacle rejects moves of obstacle types the package
	// does not know how to translate.
	ErrImmovableObstacle = errors.New("env: obstacle type cannot be translated")
)

// Delta describes one committed environment mutation: the epoch it
// produced and the obstacle-set difference. Removed obstacles can only
// free configurations, so repair for a removal-only delta never
// invalidates roadmap state; Added obstacles are the only source of new
// collisions and drive all candidate selection.
type Delta struct {
	// Epoch is the environment epoch after this mutation committed.
	Epoch uint64
	// Added holds obstacles present after the mutation that were not
	// present before.
	Added []Obstacle
	// Removed holds obstacles present before the mutation that are not
	// present after.
	Removed []Obstacle
}

// Empty reports whether the delta changes the obstacle set at all. An
// empty delta still bumps the epoch (callers may commit no-op mutations
// to force cache rollover) but repair is trivially a no-op.
func (d Delta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// Invalidating reports whether the delta can invalidate previously free
// configurations or edges — i.e. whether it added any obstacle.
func (d Delta) Invalidating() bool { return len(d.Added) > 0 }

// AddedBounds returns the union AABB of all added obstacles inflated by
// margin on every side, and ok=false when the delta added nothing. Only
// configurations whose workspace extent intersects this box can have
// been invalidated.
func (d Delta) AddedBounds(margin float64) (geom.AABB, bool) {
	if len(d.Added) == 0 {
		return geom.AABB{}, false
	}
	u := d.Added[0].Bounds()
	lo, hi := u.Lo.Clone(), u.Hi.Clone()
	for _, o := range d.Added[1:] {
		b := o.Bounds()
		for i := range lo {
			if b.Lo[i] < lo[i] {
				lo[i] = b.Lo[i]
			}
			if b.Hi[i] > hi[i] {
				hi[i] = b.Hi[i]
			}
		}
	}
	for i := range lo {
		lo[i] -= margin
		hi[i] += margin
	}
	return geom.AABB{Lo: lo, Hi: hi}, true
}

// Merge returns a delta equivalent to applying d then o: the epoch of o
// and the concatenated obstacle differences. Obstacles both added by d
// and removed by o (or vice versa) are not cancelled — Merge is a
// conservative union, which only costs repair time, never correctness.
func (d Delta) Merge(o Delta) Delta {
	m := Delta{Epoch: o.Epoch}
	m.Added = append(append(m.Added, d.Added...), o.Added...)
	m.Removed = append(append(m.Removed, d.Removed...), o.Removed...)
	return m
}

// Clone returns a deep-enough copy of the environment for copy-on-write
// mutation: the obstacle slice is copied so appends/removals on the
// clone never alias the original, while the obstacle values themselves
// (immutable once constructed) are shared.
func (e *Environment) Clone() *Environment {
	c := *e
	c.Obstacles = make([]Obstacle, len(e.Obstacles))
	copy(c.Obstacles, e.Obstacles)
	return &c
}

// validateObstacle checks that o is a usable obstacle for this
// workspace: non-nil, matching dimension, positive-radius spheres and
// bounds that intersect the workspace. Thin (zero-volume) boxes are
// legal — walls and doors are exactly that.
func (e *Environment) validateObstacle(o Obstacle) error {
	if o == nil {
		return ErrDegenerateObstacle
	}
	if s, ok := o.(SphereObstacle); ok && s.Radius <= 0 {
		return fmt.Errorf("%w: sphere radius %g", ErrDegenerateObstacle, s.Radius)
	}
	b := o.Bounds()
	if b.Dim() != e.Dim() {
		return fmt.Errorf("%w: obstacle dim %d in %d-dimensional workspace",
			ErrDegenerateObstacle, b.Dim(), e.Dim())
	}
	for i := range b.Lo {
		if b.Lo[i] > b.Hi[i] {
			return fmt.Errorf("%w: inverted bounds", ErrDegenerateObstacle)
		}
	}
	if !e.Bounds.Intersects(b) {
		return fmt.Errorf("%w: obstacle bounds %v", ErrOutOfBounds, b)
	}
	return nil
}

// AddObstacle appends o to the obstacle set, bumps the epoch and
// returns the delta. The environment is unchanged on error.
func (e *Environment) AddObstacle(o Obstacle) (Delta, error) {
	if err := e.validateObstacle(o); err != nil {
		return Delta{}, err
	}
	e.Obstacles = append(e.Obstacles, o)
	e.Epoch++
	return Delta{Epoch: e.Epoch, Added: []Obstacle{o}}, nil
}

// RemoveObstacle deletes the obstacle at index i, bumps the epoch and
// returns the delta. Removal can only free space, so the returned delta
// never invalidates roadmap state.
func (e *Environment) RemoveObstacle(i int) (Delta, error) {
	if i < 0 || i >= len(e.Obstacles) {
		return Delta{}, fmt.Errorf("%w: index %d of %d", ErrNoSuchObstacle, i, len(e.Obstacles))
	}
	o := e.Obstacles[i]
	e.Obstacles = append(e.Obstacles[:i:i], e.Obstacles[i+1:]...)
	e.Epoch++
	return Delta{Epoch: e.Epoch, Removed: []Obstacle{o}}, nil
}

// MoveObstacle translates the obstacle at index i by dv, bumps the
// epoch and returns a delta removing the old pose and adding the new
// one. The move is rejected (environment unchanged) when the index is
// invalid, the translation dimension mismatches, the obstacle type is
// not translatable, or the moved obstacle lands entirely outside the
// workspace — a forklift cannot drive through the warehouse wall.
func (e *Environment) MoveObstacle(i int, dv geom.Vec) (Delta, error) {
	if i < 0 || i >= len(e.Obstacles) {
		return Delta{}, fmt.Errorf("%w: index %d of %d", ErrNoSuchObstacle, i, len(e.Obstacles))
	}
	if len(dv) != e.Dim() {
		return Delta{}, fmt.Errorf("%w: translation dim %d in %d-dimensional workspace",
			ErrDegenerateObstacle, len(dv), e.Dim())
	}
	old := e.Obstacles[i]
	moved, ok := TranslateObstacle(old, dv)
	if !ok {
		return Delta{}, fmt.Errorf("%w: %T", ErrImmovableObstacle, old)
	}
	if err := e.validateObstacle(moved); err != nil {
		return Delta{}, err
	}
	e.Obstacles[i] = moved
	e.Epoch++
	return Delta{Epoch: e.Epoch, Added: []Obstacle{moved}, Removed: []Obstacle{old}}, nil
}

// TranslateObstacle returns a copy of o translated by dv, or ok=false
// for obstacle types the package cannot translate.
func TranslateObstacle(o Obstacle, dv geom.Vec) (Obstacle, bool) {
	switch ob := o.(type) {
	case BoxObstacle:
		return BoxObstacle{Box: geom.NewAABB(ob.Box.Lo.Add(dv), ob.Box.Hi.Add(dv))}, true
	case SphereObstacle:
		return SphereObstacle{Center: ob.Center.Add(dv), Radius: ob.Radius}, true
	case ConvexPolygon:
		verts := make([]geom.Vec, len(ob.Verts))
		for i, v := range ob.Verts {
			verts[i] = v.Add(dv)
		}
		if p, ok := NewConvexPolygon(verts); ok {
			return p, true
		}
		return nil, false
	}
	return nil, false
}
