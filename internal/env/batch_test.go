package env

import (
	"testing"

	"parmp/internal/geom"
	"parmp/internal/rng"
)

// batchEnvs returns environments covering every column kernel: boxes
// (med-cube), boxes+spheres (mixed-30), a polygon for the gather
// fallback, and an empty scene.
func batchEnvs(t *testing.T) []*Environment {
	t.Helper()
	poly, ok := NewConvexPolygon([]geom.Vec{geom.V(0.3, 0.3), geom.V(0.7, 0.35), geom.V(0.5, 0.7)})
	if !ok {
		t.Fatal("polygon construction failed")
	}
	polyEnv := &Environment{
		Name:      "poly",
		Bounds:    geom.Box2(0, 0, 1, 1),
		Obstacles: []Obstacle{poly, SphereObstacle{Center: geom.V(0.8, 0.2), Radius: 0.1}},
	}
	return []*Environment{MedCube(), Mixed30(), polyEnv, Free()}
}

func toCols(pts []geom.Vec, d int) [][]float64 {
	cols := make([][]float64, d)
	for k := range cols {
		cols[k] = make([]float64, len(pts))
		for i, p := range pts {
			cols[k][i] = p[k]
		}
	}
	return cols
}

// TestCheckPointsSoAParity sweeps random batches through every
// environment: outcome must match the scalar point-major sweep, and on
// all-free batches the test counts must agree exactly.
func TestCheckPointsSoAParity(t *testing.T) {
	for _, e := range batchEnvs(t) {
		r := rng.New(7)
		d := e.Dim()
		var sc BatchScratch
		for trial := 0; trial < 200; trial++ {
			n := 1 + r.Intn(17)
			pts := make([]geom.Vec, n)
			for i := range pts {
				p := make(geom.Vec, d)
				for k := range p {
					// Overshoot bounds occasionally to hit the bounds sweep.
					p[k] = r.Range(e.Bounds.Lo[k]-0.1, e.Bounds.Hi[k]+0.1)
				}
				pts[i] = p
			}
			wantFree := true
			wantTests := 0
			for _, p := range pts {
				free, tests := e.CheckPoint(p)
				wantTests += tests
				if !free {
					wantFree = false
					break
				}
			}
			gotFree, gotTests := e.CheckPointsSoA(toCols(pts, d), n, &sc)
			if gotFree != wantFree {
				t.Fatalf("%s trial %d: batch free=%v, scalar free=%v", e.Name, trial, gotFree, wantFree)
			}
			if wantFree && gotTests != wantTests {
				t.Fatalf("%s trial %d: all-free batch counted %d tests, scalar %d", e.Name, trial, gotTests, wantTests)
			}
		}
	}
}

// TestSegmentsFreeSoAParity does the same for the segment kernel.
func TestSegmentsFreeSoAParity(t *testing.T) {
	for _, e := range batchEnvs(t) {
		r := rng.New(11)
		d := e.Dim()
		var sc BatchScratch
		for trial := 0; trial < 200; trial++ {
			n := 1 + r.Intn(17)
			as := make([]geom.Vec, n)
			bs := make([]geom.Vec, n)
			for i := range as {
				a := make(geom.Vec, d)
				b := make(geom.Vec, d)
				for k := range a {
					a[k] = r.Range(e.Bounds.Lo[k], e.Bounds.Hi[k])
					// Mostly short segments, some degenerate (zero-length)
					// to hit the slab test's parallel-axis branch.
					if trial%5 == 0 {
						b[k] = a[k]
					} else {
						b[k] = a[k] + r.Range(-0.2, 0.2)
					}
				}
				as[i], bs[i] = a, b
			}
			wantFree := true
			wantTests := 0
			for i := range as {
				free, tests := e.SegmentFree(as[i], bs[i])
				wantTests += tests
				if !free {
					wantFree = false
					break
				}
			}
			gotFree, gotTests := e.SegmentsFreeSoA(toCols(as, d), toCols(bs, d), n, &sc)
			if gotFree != wantFree {
				t.Fatalf("%s trial %d: batch free=%v, scalar free=%v", e.Name, trial, gotFree, wantFree)
			}
			if wantFree && gotTests != wantTests {
				t.Fatalf("%s trial %d: all-free batch counted %d tests, scalar %d", e.Name, trial, gotTests, wantTests)
			}
		}
	}
}

// TestBatchKernelsEmptyBatch checks the n=0 edge case.
func TestBatchKernelsEmptyBatch(t *testing.T) {
	e := MedCube()
	var sc BatchScratch
	if free, tests := e.CheckPointsSoA(nil, 0, &sc); !free || tests != 0 {
		t.Fatalf("empty point batch: got (%v, %d), want (true, 0)", free, tests)
	}
	if free, tests := e.SegmentsFreeSoA(nil, nil, 0, &sc); !free || tests != 0 {
		t.Fatalf("empty segment batch: got (%v, %d), want (true, 0)", free, tests)
	}
}

// TestCheckPointsSoAOutOfBounds confirms the scalar convention that
// out-of-bounds rejections cost zero obstacle tests.
func TestCheckPointsSoAOutOfBounds(t *testing.T) {
	e := MedCube()
	var sc BatchScratch
	pts := []geom.Vec{geom.V(0.1, 0.1, 0.1), geom.V(2, 2, 2)}
	free, tests := e.CheckPointsSoA(toCols(pts, 3), len(pts), &sc)
	if free || tests != 0 {
		t.Fatalf("out-of-bounds batch: got (%v, %d), want (false, 0)", free, tests)
	}
}
