package env

import (
	"errors"
	"strings"
	"testing"

	"parmp/internal/geom"
)

func TestAddObstacleDelta(t *testing.T) {
	e := Free()
	if e.Epoch != 0 {
		t.Fatalf("fresh env epoch = %d, want 0", e.Epoch)
	}
	o := BoxObstacle{Box: geom.Box3(0.4, 0.4, 0.4, 0.6, 0.6, 0.6)}
	d, err := e.AddObstacle(o)
	if err != nil {
		t.Fatal(err)
	}
	if d.Epoch != 1 || e.Epoch != 1 {
		t.Fatalf("epoch after add: delta=%d env=%d, want 1", d.Epoch, e.Epoch)
	}
	if len(d.Added) != 1 || len(d.Removed) != 0 {
		t.Fatalf("delta = %+v, want one added obstacle", d)
	}
	if !d.Invalidating() || d.Empty() {
		t.Fatal("add delta must be invalidating and non-empty")
	}
	if free, _ := e.CheckPoint(geom.V(0.5, 0.5, 0.5)); free {
		t.Fatal("center should now collide")
	}
}

func TestRemoveObstacleDelta(t *testing.T) {
	e := MedCube()
	d, err := e.RemoveObstacle(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Epoch != 1 || len(d.Removed) != 1 || len(d.Added) != 0 {
		t.Fatalf("delta = %+v", d)
	}
	if d.Invalidating() {
		t.Fatal("removal-only delta must not be invalidating")
	}
	if len(e.Obstacles) != 0 {
		t.Fatalf("obstacles left: %d", len(e.Obstacles))
	}
	if free, _ := e.CheckPoint(geom.V(0.5, 0.5, 0.5)); !free {
		t.Fatal("center should be free after removal")
	}
	if _, err := e.RemoveObstacle(0); !errors.Is(err, ErrNoSuchObstacle) {
		t.Fatalf("remove from empty: err = %v, want ErrNoSuchObstacle", err)
	}
}

func TestMoveObstacleDelta(t *testing.T) {
	e := MedCube()
	before := e.Obstacles[0].Bounds()
	d, err := e.MoveObstacle(0, geom.V(0.1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || len(d.Removed) != 1 {
		t.Fatalf("move delta = %+v, want one added + one removed", d)
	}
	after := e.Obstacles[0].Bounds()
	if after.Lo[0] != before.Lo[0]+0.1 {
		t.Fatalf("obstacle did not move: %v -> %v", before, after)
	}
	// A removed pose and an added pose: still invalidating.
	if !d.Invalidating() {
		t.Fatal("move delta must be invalidating")
	}
}

func TestMutationValidation(t *testing.T) {
	e := Free()
	if _, err := e.AddObstacle(nil); !errors.Is(err, ErrDegenerateObstacle) {
		t.Errorf("nil obstacle: err = %v", err)
	}
	if _, err := e.AddObstacle(SphereObstacle{Center: geom.V(0.5, 0.5, 0.5), Radius: 0}); !errors.Is(err, ErrDegenerateObstacle) {
		t.Errorf("zero-radius sphere: err = %v", err)
	}
	if _, err := e.AddObstacle(BoxObstacle{Box: geom.Box2(0, 0, 1, 1)}); !errors.Is(err, ErrDegenerateObstacle) {
		t.Errorf("2D obstacle in 3D env: err = %v", err)
	}
	if _, err := e.AddObstacle(BoxObstacle{Box: geom.Box3(2, 2, 2, 3, 3, 3)}); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("fully outside obstacle: err = %v", err)
	}
	if e.Epoch != 0 {
		t.Fatalf("failed mutations bumped the epoch to %d", e.Epoch)
	}

	// Out-of-bounds move: driving the cube entirely out of the
	// workspace is rejected and leaves the world untouched.
	m := MedCube()
	if _, err := m.MoveObstacle(0, geom.V(5, 0, 0)); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("out-of-bounds move: err = %v", err)
	}
	if m.Epoch != 0 || len(m.Obstacles) != 1 {
		t.Fatal("failed move mutated the environment")
	}
	if _, err := m.MoveObstacle(3, geom.V(0, 0, 0.1)); !errors.Is(err, ErrNoSuchObstacle) {
		t.Errorf("bad index move: err = %v", err)
	}
	if _, err := m.MoveObstacle(0, geom.V(0.1, 0.1)); !errors.Is(err, ErrDegenerateObstacle) {
		t.Errorf("bad translation dim: err = %v", err)
	}
}

func TestEpochMonotonicity(t *testing.T) {
	e := Free()
	var last uint64
	for i := 0; i < 10; i++ {
		d, err := e.AddObstacle(SphereObstacle{Center: geom.V(0.1, 0.1, 0.1), Radius: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		if d.Epoch <= last {
			t.Fatalf("epoch not strictly increasing: %d after %d", d.Epoch, last)
		}
		last = d.Epoch
		d, err = e.RemoveObstacle(0)
		if err != nil {
			t.Fatal(err)
		}
		if d.Epoch <= last {
			t.Fatalf("epoch not strictly increasing: %d after %d", d.Epoch, last)
		}
		last = d.Epoch
	}
}

func TestCloneIsolation(t *testing.T) {
	e := MedCube()
	c := e.Clone()
	if _, err := c.AddObstacle(SphereObstacle{Center: geom.V(0.1, 0.1, 0.1), Radius: 0.05}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RemoveObstacle(0); err != nil {
		t.Fatal(err)
	}
	if len(e.Obstacles) != 1 || e.Epoch != 0 {
		t.Fatalf("mutating the clone changed the original: %d obstacles epoch %d",
			len(e.Obstacles), e.Epoch)
	}
	if c.Epoch != 2 {
		t.Fatalf("clone epoch = %d, want 2", c.Epoch)
	}
}

func TestDeltaAddedBounds(t *testing.T) {
	var d Delta
	if _, ok := d.AddedBounds(0.1); ok {
		t.Fatal("empty delta must have no added bounds")
	}
	d.Added = []Obstacle{
		BoxObstacle{Box: geom.Box2(0.1, 0.1, 0.2, 0.2)},
		BoxObstacle{Box: geom.Box2(0.5, 0.6, 0.7, 0.8)},
	}
	b, ok := d.AddedBounds(0.05)
	if !ok {
		t.Fatal("added bounds missing")
	}
	want := geom.Box2(0.05, 0.05, 0.75, 0.85)
	for i := range want.Lo {
		if diff := b.Lo[i] - want.Lo[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("added bounds = %v, want %v", b, want)
		}
		if diff := b.Hi[i] - want.Hi[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("added bounds = %v, want %v", b, want)
		}
	}
}

func TestZeroAreaDelta(t *testing.T) {
	// A move by zero distance is a legal mutation: the epoch bumps (so
	// caches roll over) but the added/removed poses coincide, and repair
	// finds nothing newly blocked.
	e := MedCube()
	d, err := e.MoveObstacle(0, geom.V(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if d.Epoch != 1 {
		t.Fatalf("epoch = %d", d.Epoch)
	}
	ab := d.Added[0].Bounds()
	rb := d.Removed[0].Bounds()
	for i := range ab.Lo {
		if ab.Lo[i] != rb.Lo[i] || ab.Hi[i] != rb.Hi[i] {
			t.Fatal("zero move changed the obstacle bounds")
		}
	}
}

func TestParsedEnvironmentMutates(t *testing.T) {
	// Environments from the text format participate in versioning like
	// procedural ones, including thin (zero-volume) boxes, which are
	// legal walls.
	src := `name parsed
bounds 0 0 1 1
box 0.4 0 0.4 0.6
`
	e, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if e.Epoch != 0 {
		t.Fatalf("parsed epoch = %d", e.Epoch)
	}
	d, err := e.MoveObstacle(0, geom.V(0.2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if d.Epoch != 1 || len(e.Obstacles) != 1 {
		t.Fatalf("delta %+v, obstacles %d", d, len(e.Obstacles))
	}
	// The thin wall still blocks segments crossing its new position.
	if free, _ := e.SegmentFree(geom.V(0.5, 0.3), geom.V(0.7, 0.3)); free {
		t.Fatal("moved thin wall does not block")
	}
}

func TestPolygonTranslate(t *testing.T) {
	p, ok := NewConvexPolygon([]geom.Vec{geom.V(0.1, 0.1), geom.V(0.3, 0.1), geom.V(0.2, 0.3)})
	if !ok {
		t.Fatal("triangle rejected")
	}
	e := &Environment{Name: "poly", Bounds: unitBox(2), Obstacles: []Obstacle{p}}
	d, err := e.MoveObstacle(0, geom.V(0.4, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Obstacles[0].Contains(geom.V(0.6, 0.55)) {
		t.Fatal("translated polygon lost its interior")
	}
	if d.Removed[0].Contains(geom.V(0.6, 0.55)) {
		t.Fatal("old pose contains the translated interior point")
	}
}

func TestScenariosRunInBounds(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			e, mut := sc.Build()
			if e.Epoch != 0 {
				t.Fatalf("base epoch = %d", e.Epoch)
			}
			var last uint64
			for k := 0; k < 32; k++ {
				d, err := mut(e, k)
				if err != nil {
					t.Fatalf("step %d: %v", k, err)
				}
				if d.Epoch <= last {
					t.Fatalf("step %d: epoch %d after %d", k, d.Epoch, last)
				}
				last = d.Epoch
				for i, o := range e.Obstacles {
					if !e.Bounds.Intersects(o.Bounds()) {
						t.Fatalf("step %d: obstacle %d left the workspace", k, i)
					}
				}
			}
		})
	}
}

func TestScenarioDoorTogglesPassage(t *testing.T) {
	e, mut := Door()
	mid := geom.V(0.5, 0.2, 0.5) // center of the doorway
	if free, _ := e.CheckPoint(mid); !free {
		t.Fatal("doorway must start open")
	}
	if _, err := mut(e, 0); err != nil {
		t.Fatal(err)
	}
	if free, _ := e.CheckPoint(mid); free {
		t.Fatal("doorway must be blocked after closing")
	}
	if _, err := mut(e, 1); err != nil {
		t.Fatal(err)
	}
	if free, _ := e.CheckPoint(mid); !free {
		t.Fatal("doorway must reopen")
	}
}
