package env

import (
	"math"
	"testing"

	"parmp/internal/geom"
	"parmp/internal/rng"
)

func TestBoxObstacle(t *testing.T) {
	o := BoxObstacle{Box: geom.Box2(0.4, 0.4, 0.6, 0.6)}
	if !o.Contains(geom.V(0.5, 0.5)) {
		t.Fatal("center should collide")
	}
	if o.Contains(geom.V(0.1, 0.1)) {
		t.Fatal("far point should be free")
	}
	if !o.SegmentHits(geom.V(0, 0.5), geom.V(1, 0.5)) {
		t.Fatal("crossing segment should hit")
	}
	if o.SegmentHits(geom.V(0, 0.1), geom.V(1, 0.1)) {
		t.Fatal("passing segment should miss")
	}
	if math.Abs(o.Volume()-0.04) > 1e-12 {
		t.Fatalf("Volume = %v", o.Volume())
	}
}

func TestSphereObstacle(t *testing.T) {
	o := SphereObstacle{Center: geom.V(0.5, 0.5), Radius: 0.1}
	if !o.Contains(geom.V(0.55, 0.5)) || o.Contains(geom.V(0.7, 0.5)) {
		t.Fatal("containment wrong")
	}
	if !o.SegmentHits(geom.V(0, 0.5), geom.V(1, 0.5)) {
		t.Fatal("diameter segment should hit")
	}
	if o.SegmentHits(geom.V(0, 0), geom.V(1, 0)) {
		t.Fatal("distant segment should miss")
	}
	// Segment ending near but outside.
	if o.SegmentHits(geom.V(0, 0.8), geom.V(1, 0.8)) {
		t.Fatal("tangent-distance segment should miss")
	}
	want := math.Pi * 0.01
	if math.Abs(o.Volume()-want) > 1e-12 {
		t.Fatalf("Volume = %v, want %v", o.Volume(), want)
	}
	b := o.Bounds()
	if !b.Lo.Equal(geom.V(0.4, 0.4), 1e-12) || !b.Hi.Equal(geom.V(0.6, 0.6), 1e-12) {
		t.Fatalf("Bounds = %v", b)
	}
}

func TestCheckPoint(t *testing.T) {
	e := MedCube()
	free, tests := e.CheckPoint(geom.V(0.5, 0.5, 0.5))
	if free {
		t.Fatal("center of med-cube is inside the obstacle")
	}
	if tests != 1 {
		t.Fatalf("tests = %d", tests)
	}
	free, _ = e.CheckPoint(geom.V(0.05, 0.05, 0.05))
	if !free {
		t.Fatal("corner should be free")
	}
	free, tests = e.CheckPoint(geom.V(2, 2, 2))
	if free || tests != 0 {
		t.Fatal("out-of-bounds should fail with zero obstacle tests")
	}
}

func TestSegmentFree(t *testing.T) {
	e := MedCube()
	if free, _ := e.SegmentFree(geom.V(0, 0.5, 0.5), geom.V(1, 0.5, 0.5)); free {
		t.Fatal("segment through the cube should collide")
	}
	if free, _ := e.SegmentFree(geom.V(0.05, 0.05, 0.05), geom.V(0.95, 0.05, 0.05)); !free {
		t.Fatal("edge-hugging segment should be free")
	}
}

func TestBlockedFractions(t *testing.T) {
	cases := []struct {
		e    *Environment
		want float64
		tol  float64
	}{
		{MedCube(), 0.24, 1e-9},
		{SmallCube(), 0.06, 1e-9},
		{Free(), 0, 1e-12},
		{Mixed(), 0.60, 0.05},
		{Mixed30(), 0.30, 0.05},
	}
	for _, c := range cases {
		got := c.e.BlockedFraction(0, 1)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s blocked fraction = %v, want %v±%v", c.e.Name, got, c.want, c.tol)
		}
	}
}

func TestFreeVolumeInExact(t *testing.T) {
	e := Model2D(0.25) // square obstacle side 0.5 centered in unit square
	// Region covering exactly the obstacle.
	reg := geom.Box2(0.25, 0.25, 0.75, 0.75)
	if got := e.FreeVolumeIn(reg, 0, 1); math.Abs(got) > 1e-12 {
		t.Fatalf("fully-blocked region free volume = %v", got)
	}
	// Region in the open corner.
	reg = geom.Box2(0, 0, 0.2, 0.2)
	if got := e.FreeVolumeIn(reg, 0, 1); math.Abs(got-0.04) > 1e-12 {
		t.Fatalf("open region free volume = %v", got)
	}
	// Partially covered region: the obstacle [0.25,0.75]^2 overlaps it in
	// a 0.5 x 0.5 square.
	reg = geom.Box2(0.25, 0.25, 0.75, 1.0)
	want := reg.Volume() - 0.5*0.5
	if got := e.FreeVolumeIn(reg, 0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("half region free volume = %v, want %v", got, want)
	}
}

func TestFreeVolumeMonteCarloAgreesWithExact(t *testing.T) {
	// Force the MC path with a sphere obstacle and compare against the
	// analytic ball volume.
	e := &Environment{
		Name:   "mc",
		Bounds: unitBox(2),
		Obstacles: []Obstacle{
			SphereObstacle{Center: geom.V(0.5, 0.5), Radius: 0.2},
		},
	}
	got := e.FreeVolumeIn(e.Bounds, 200000, 3)
	want := 1 - math.Pi*0.04
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("MC free volume = %v, want %v", got, want)
	}
}

func TestMixedObstaclesDisjoint(t *testing.T) {
	e := Mixed()
	if !e.obstaclesDisjointBoxes() {
		t.Fatal("cluttered builder must produce disjoint boxes")
	}
	if len(e.Obstacles) < 10 {
		t.Fatalf("expected many obstacles, got %d", len(e.Obstacles))
	}
}

func TestRayDistanceToObstacle(t *testing.T) {
	e := MedCube()
	side := math.Pow(0.24, 1.0/3)
	// Ray from the face center straight at the cube.
	d := e.RayDistanceToObstacle(geom.V(0, 0.5, 0.5), geom.V(1, 0, 0))
	want := 0.5 - side/2
	if math.Abs(d-want) > 1e-9 {
		t.Fatalf("ray distance = %v, want %v", d, want)
	}
	// Ray missing the cube exits at the boundary.
	d = e.RayDistanceToObstacle(geom.V(0.01, 0.01, 0.01), geom.V(1, 0, 0))
	if math.Abs(d-0.99) > 1e-9 {
		t.Fatalf("boundary ray distance = %v", d)
	}
	// Free environment: always the boundary.
	d = Free().RayDistanceToObstacle(geom.V(0.5, 0.5, 0.5), geom.V(0, 1, 0))
	if math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("free ray distance = %v", d)
	}
}

func TestWallsHaveDoorways(t *testing.T) {
	e := Walls(3, 0.15)
	r := rng.New(5)
	// Doorway at x=0.25 is near y=0.2: a point there must be free.
	if !e.PointFree(geom.V(0.25, 0.2, r.Float64())) {
		t.Fatal("doorway should be free")
	}
	// Wall body must be blocked.
	if e.PointFree(geom.V(0.25, 0.6, 0.5)) {
		t.Fatal("wall interior should be blocked")
	}
}

func TestMaze2D(t *testing.T) {
	e := Maze2D(4, 0.2)
	if len(e.Obstacles) != 4 {
		t.Fatalf("expected 4 walls, got %d", len(e.Obstacles))
	}
	if !e.PointFree(geom.V(0.2, 0.05)) {
		t.Fatal("gap below first wall should be free")
	}
	if e.PointFree(geom.V(0.2, 0.9)) {
		t.Fatal("first wall should block the top")
	}
}

func TestCorner2DImbalanced(t *testing.T) {
	e := Corner2D()
	// The cluttered quadrant must have less free volume than the open one.
	clutter := e.FreeVolumeIn(geom.Box2(0.5, 0, 1, 0.5), 0, 1)
	open := e.FreeVolumeIn(geom.Box2(0, 0.5, 0.5, 1), 0, 1)
	if clutter >= open {
		t.Fatalf("clutter quadrant free=%v should be < open quadrant free=%v", clutter, open)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		e := ByName(name)
		if e == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
		if e.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, e.Name)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("unknown name should return nil")
	}
}

func TestEnvironmentString(t *testing.T) {
	s := MedCube().String()
	if s == "" {
		t.Fatal("String should not be empty")
	}
}

func TestWalls45(t *testing.T) {
	e := Walls45(3, 0.2)
	if len(e.Obstacles) == 0 {
		t.Fatal("no diagonal walls built")
	}
	// The first wall runs along x - y = -0.3 with a gap near y = 0.3.
	// A point on the wall line away from the gap must be blocked.
	if e.PointFree(geom.V(0.415, 0.7)) {
		t.Fatal("diagonal wall body should block")
	}
	// The gap itself must be free.
	if !e.PointFree(geom.V(0.015, 0.3)) {
		t.Fatal("gap should be free")
	}
	// Blocked fraction is modest but nonzero.
	frac := e.BlockedFraction(50000, 1)
	if frac <= 0.01 || frac > 0.3 {
		t.Fatalf("blocked fraction = %v", frac)
	}
}

func TestWalls45Plannable(t *testing.T) {
	// A PRM in walls-45 must find diagonal corridors navigable.
	e := ByName("walls-45")
	if e == nil {
		t.Fatal("walls-45 not registered")
	}
	if e.Dim() != 2 {
		t.Fatalf("dim = %d", e.Dim())
	}
}
