package env

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"parmp/internal/geom"
)

// Parse reads an environment from a simple line-oriented text format:
//
//	# comment
//	name my-scene
//	bounds x0 y0 [z0] x1 y1 [z1]
//	box    x0 y0 [z0] x1 y1 [z1]
//	sphere cx cy [cz] r
//
// The bounds line determines the dimension (2D or 3D) and must appear
// before any obstacle. Blank lines and #-comments are ignored.
func Parse(r io.Reader) (*Environment, error) {
	e := &Environment{Name: "custom"}
	dim := 0
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		op, args := fields[0], fields[1:]
		nums := make([]float64, len(args))
		numeric := true
		for i, a := range args {
			v, err := strconv.ParseFloat(a, 64)
			if err != nil {
				numeric = false
				break
			}
			nums[i] = v
		}
		switch op {
		case "name":
			if len(args) != 1 {
				return nil, fmt.Errorf("env: line %d: name wants one token", lineNo)
			}
			e.Name = args[0]
		case "bounds":
			if !numeric || (len(nums) != 4 && len(nums) != 6) {
				return nil, fmt.Errorf("env: line %d: bounds wants 4 (2D) or 6 (3D) numbers", lineNo)
			}
			dim = len(nums) / 2
			lo, hi := geom.Vec(nums[:dim]).Clone(), geom.Vec(nums[dim:]).Clone()
			for i := 0; i < dim; i++ {
				if lo[i] >= hi[i] {
					return nil, fmt.Errorf("env: line %d: degenerate bounds", lineNo)
				}
			}
			e.Bounds = geom.NewAABB(lo, hi)
		case "box":
			if dim == 0 {
				return nil, fmt.Errorf("env: line %d: box before bounds", lineNo)
			}
			if !numeric || len(nums) != 2*dim {
				return nil, fmt.Errorf("env: line %d: box wants %d numbers", lineNo, 2*dim)
			}
			lo, hi := geom.Vec(nums[:dim]).Clone(), geom.Vec(nums[dim:]).Clone()
			for i := 0; i < dim; i++ {
				if lo[i] > hi[i] {
					lo[i], hi[i] = hi[i], lo[i]
				}
			}
			e.Obstacles = append(e.Obstacles, BoxObstacle{Box: geom.NewAABB(lo, hi)})
		case "sphere":
			if dim == 0 {
				return nil, fmt.Errorf("env: line %d: sphere before bounds", lineNo)
			}
			if !numeric || len(nums) != dim+1 {
				return nil, fmt.Errorf("env: line %d: sphere wants %d numbers", lineNo, dim+1)
			}
			radius := nums[dim]
			if radius <= 0 {
				return nil, fmt.Errorf("env: line %d: sphere radius must be positive", lineNo)
			}
			e.Obstacles = append(e.Obstacles, SphereObstacle{
				Center: geom.Vec(nums[:dim]).Clone(),
				Radius: radius,
			})
		default:
			return nil, fmt.Errorf("env: line %d: unknown directive %q", lineNo, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if dim == 0 {
		return nil, fmt.Errorf("env: missing bounds line")
	}
	return e, nil
}

// Write emits the environment in the format Parse reads. Only box and
// sphere obstacles are representable.
func Write(w io.Writer, e *Environment) error {
	if _, err := fmt.Fprintf(w, "name %s\n", e.Name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "bounds%s%s\n", vecStr(e.Bounds.Lo), vecStr(e.Bounds.Hi)); err != nil {
		return err
	}
	for _, o := range e.Obstacles {
		switch ob := o.(type) {
		case BoxObstacle:
			if _, err := fmt.Fprintf(w, "box%s%s\n", vecStr(ob.Box.Lo), vecStr(ob.Box.Hi)); err != nil {
				return err
			}
		case SphereObstacle:
			if _, err := fmt.Fprintf(w, "sphere%s %g\n", vecStr(ob.Center), ob.Radius); err != nil {
				return err
			}
		default:
			return fmt.Errorf("env: obstacle type %T not representable in text format", o)
		}
	}
	return nil
}

func vecStr(v geom.Vec) string {
	var b strings.Builder
	for _, x := range v {
		fmt.Fprintf(&b, " %g", x)
	}
	return b.String()
}
