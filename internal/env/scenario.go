package env

import (
	"fmt"
	"math"

	"parmp/internal/geom"
)

// A Scenario scripts a dynamic world: a base environment plus a
// deterministic sequence of mutation steps (obstacles moving, doors
// opening and closing). Scenarios are the workload for incremental
// roadmap repair — each step produces a Delta whose repair work is
// spatially concentrated around the moved obstacle, exactly the skewed
// distribution the observed-cost load balancer exists for.
type Scenario struct {
	Name string
	Desc string
	// Build returns a fresh base environment (epoch 0) and the Mutator
	// that advances its scripted motion.
	Build func() (*Environment, Mutator)
	// BuildMoves returns a fresh base environment plus the script as
	// data — step k's obstacle translations — for callers that route
	// mutations through a higher layer (parmp.Engine.ApplyDelta) instead
	// of applying them to the environment directly.
	BuildMoves func() (*Environment, func(k int) []Move)
}

// A Mutator applies scripted step k (0-based) to e and returns the
// committed delta. Steps must be applied in order 0, 1, 2, ... to the
// same environment: each step's translation is relative to the pose the
// previous step left behind.
type Mutator func(e *Environment, k int) (Delta, error)

// A Move is one scripted translation: the obstacle at Index moves by By.
type Move struct {
	Index int
	By    geom.Vec
}

// MovesMutator wraps a step-as-data script as a Mutator, committing each
// step's moves in order and merging their deltas.
func MovesMutator(steps func(k int) []Move) Mutator {
	return func(e *Environment, k int) (Delta, error) {
		var merged Delta
		for i, mv := range steps(k) {
			d, err := e.MoveObstacle(mv.Index, mv.By)
			if err != nil {
				return Delta{}, fmt.Errorf("move %d (obstacle %d) step %d: %w", i, mv.Index, k, err)
			}
			if merged.Epoch == 0 {
				merged = d
			} else {
				merged = merged.Merge(d)
			}
		}
		return merged, nil
	}
}

// WarehouseForklift is a 2D warehouse: vertical shelving slabs with
// aisles between them, patrolled by small forklift obstacles that drive
// up and down the aisles on deterministic triangle-wave schedules. Each
// step moves every forklift one increment along its patrol.
func WarehouseForklift() (*Environment, Mutator) {
	e, steps := WarehouseForkliftMoves()
	return e, MovesMutator(steps)
}

// WarehouseForkliftMoves is WarehouseForklift with the patrol script
// returned as data (see Scenario.BuildMoves).
func WarehouseForkliftMoves() (*Environment, func(k int) []Move) {
	e := &Environment{Name: "warehouse-forklift", Bounds: unitBox(2)}
	// Shelving: four vertical slabs leaving aisles and open bands at the
	// top and bottom of the floor.
	const shelfThick = 0.04
	for _, x := range []float64{0.2, 0.4, 0.6, 0.8} {
		e.Obstacles = append(e.Obstacles, BoxObstacle{
			Box: geom.Box2(x-shelfThick/2, 0.15, x+shelfThick/2, 0.85),
		})
	}
	// Forklifts: small square bodies, one per aisle, each with its own
	// patrol span, speed and phase so the repair workload shifts from
	// aisle to aisle over time.
	type patrol struct {
		x, lo, hi, speed, phase float64
	}
	patrols := []patrol{
		{x: 0.30, lo: 0.10, hi: 0.90, speed: 0.08, phase: 0.0},
		{x: 0.50, lo: 0.10, hi: 0.90, speed: 0.12, phase: 0.3},
		{x: 0.70, lo: 0.10, hi: 0.90, speed: 0.10, phase: 0.6},
	}
	const body = 0.05
	base := len(e.Obstacles)
	for _, p := range patrols {
		y := triangleWave(p.phase, p.lo, p.hi-body)
		e.Obstacles = append(e.Obstacles, BoxObstacle{
			Box: geom.Box2(p.x-body/2, y, p.x+body/2, y+body),
		})
	}
	steps := func(k int) []Move {
		mvs := make([]Move, len(patrols))
		for i, p := range patrols {
			prev := triangleWave(p.phase+float64(k)*p.speed, p.lo, p.hi-body)
			next := triangleWave(p.phase+float64(k+1)*p.speed, p.lo, p.hi-body)
			mvs[i] = Move{Index: base + i, By: geom.V(0, next-prev)}
		}
		return mvs
	}
	return e, steps
}

// triangleWave maps phase t (any non-negative value, period 2) onto a
// bounce between lo and hi.
func triangleWave(t, lo, hi float64) float64 {
	span := hi - lo
	if span <= 0 {
		return lo
	}
	u := math.Mod(t, 2)
	if u < 0 {
		u += 2
	}
	if u <= 1 {
		return lo + u*span
	}
	return lo + (2-u)*span
}

// Door is the narrow-passage walls environment with a sliding door over
// the doorway: even steps close it (blocking the only passage through
// the wall), odd steps open it again. The closed door severs every path
// through the passage, so repair must split and re-join the roadmap's
// connected components.
func Door() (*Environment, Mutator) {
	e, steps := DoorMoves()
	return e, MovesMutator(steps)
}

// DoorMoves is Door with the slide script returned as data (see
// Scenario.BuildMoves).
func DoorMoves() (*Environment, func(k int) []Move) {
	const doorW = 0.2
	e := Walls(1, doorW)
	e.Name = "door"
	// Walls(1, doorW) builds one wall at x=0.5 with its doorway at
	// y in [0.1, 0.3]. The door panel starts open: slid down by one
	// door-width so it hides inside the lower wall segment (partially
	// outside the workspace, which is legal — only the in-bounds part
	// blocks, and that part is already wall).
	const thick = 0.04
	door := BoxObstacle{Box: geom.Box3(0.5-thick/2, 0.1-doorW, 0, 0.5+thick/2, 0.1, 1)}
	e.Obstacles = append(e.Obstacles, door)
	doorIdx := len(e.Obstacles) - 1
	steps := func(k int) []Move {
		dy := doorW
		if k%2 == 1 {
			dy = -doorW
		}
		return []Move{{Index: doorIdx, By: geom.V(0, dy, 0)}}
	}
	return e, steps
}

// Scenarios lists the scripted dynamic-world scenarios.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:       "warehouse-forklift",
			Desc:       "2D warehouse shelving with three forklifts patrolling the aisles",
			Build:      WarehouseForklift,
			BuildMoves: WarehouseForkliftMoves,
		},
		{
			Name:       "door",
			Desc:       "narrow-passage wall whose doorway is closed/opened by a sliding door",
			Build:      Door,
			BuildMoves: DoorMoves,
		},
	}
}

// ScenarioByName returns the named scenario, or ok=false.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// ScenarioNames lists the scenario names.
func ScenarioNames() []string {
	all := Scenarios()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}
