package env

import (
	"parmp/internal/geom"
)

// ConvexPolygon is a solid convex polygon obstacle in a 2D workspace,
// defined by vertices in counter-clockwise order. It extends the obstacle
// vocabulary beyond axis-aligned boxes for house/maze style scenes.
type ConvexPolygon struct {
	Verts []geom.Vec
}

// NewConvexPolygon validates the vertex list: at least 3 CCW-ordered 2D
// vertices forming a convex chain. ok is false otherwise.
func NewConvexPolygon(verts []geom.Vec) (ConvexPolygon, bool) {
	if len(verts) < 3 {
		return ConvexPolygon{}, false
	}
	for _, v := range verts {
		if v.Dim() != 2 {
			return ConvexPolygon{}, false
		}
	}
	n := len(verts)
	for i := 0; i < n; i++ {
		a, b, c := verts[i], verts[(i+1)%n], verts[(i+2)%n]
		if cross2(b.Sub(a), c.Sub(b)) < 0 {
			return ConvexPolygon{}, false // clockwise turn: not convex CCW
		}
	}
	return ConvexPolygon{Verts: verts}, true
}

func cross2(u, v geom.Vec) float64 { return u[0]*v[1] - u[1]*v[0] }

// Contains implements Obstacle: p is inside when it is on the left of (or
// on) every edge.
func (o ConvexPolygon) Contains(p geom.Vec) bool {
	n := len(o.Verts)
	for i := 0; i < n; i++ {
		a, b := o.Verts[i], o.Verts[(i+1)%n]
		if cross2(b.Sub(a), p.Sub(a)) < 0 {
			return false
		}
	}
	return true
}

// Bounds implements Obstacle.
func (o ConvexPolygon) Bounds() geom.AABB {
	lo := o.Verts[0].Clone()
	hi := o.Verts[0].Clone()
	for _, v := range o.Verts[1:] {
		for d := 0; d < 2; d++ {
			if v[d] < lo[d] {
				lo[d] = v[d]
			}
			if v[d] > hi[d] {
				hi[d] = v[d]
			}
		}
	}
	return geom.AABB{Lo: lo, Hi: hi}
}

// SegmentHits implements Obstacle: the segment hits when either endpoint
// is inside or it crosses any polygon edge.
func (o ConvexPolygon) SegmentHits(a, b geom.Vec) bool {
	if o.Contains(a) || o.Contains(b) {
		return true
	}
	n := len(o.Verts)
	for i := 0; i < n; i++ {
		if segmentsIntersect(a, b, o.Verts[i], o.Verts[(i+1)%n]) {
			return true
		}
	}
	return false
}

// segmentsIntersect reports proper or touching intersection of segments
// p1p2 and p3p4.
func segmentsIntersect(p1, p2, p3, p4 geom.Vec) bool {
	d1 := cross2(p4.Sub(p3), p1.Sub(p3))
	d2 := cross2(p4.Sub(p3), p2.Sub(p3))
	d3 := cross2(p2.Sub(p1), p3.Sub(p1))
	d4 := cross2(p2.Sub(p1), p4.Sub(p1))
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	onSeg := func(p, q, r geom.Vec) bool {
		// q collinear with pr: is q within the bounding box of pr?
		return minf(p[0], r[0]) <= q[0] && q[0] <= maxf(p[0], r[0]) &&
			minf(p[1], r[1]) <= q[1] && q[1] <= maxf(p[1], r[1])
	}
	switch {
	case d1 == 0 && onSeg(p3, p1, p4):
		return true
	case d2 == 0 && onSeg(p3, p2, p4):
		return true
	case d3 == 0 && onSeg(p1, p3, p2):
		return true
	case d4 == 0 && onSeg(p1, p4, p2):
		return true
	}
	return false
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Volume implements Obstacle via the shoelace formula.
func (o ConvexPolygon) Volume() float64 {
	var area float64
	n := len(o.Verts)
	for i := 0; i < n; i++ {
		a, b := o.Verts[i], o.Verts[(i+1)%n]
		area += a[0]*b[1] - b[0]*a[1]
	}
	if area < 0 {
		area = -area
	}
	return area / 2
}
