package env

import (
	"math"
	"testing"

	"parmp/internal/geom"
	"parmp/internal/rng"
)

func triangle() ConvexPolygon {
	p, ok := NewConvexPolygon([]geom.Vec{geom.V(0, 0), geom.V(1, 0), geom.V(0.5, 1)})
	if !ok {
		panic("triangle invalid")
	}
	return p
}

func TestNewConvexPolygonValidation(t *testing.T) {
	if _, ok := NewConvexPolygon([]geom.Vec{geom.V(0, 0), geom.V(1, 0)}); ok {
		t.Fatal("two vertices should fail")
	}
	// Clockwise square should fail (CCW required).
	if _, ok := NewConvexPolygon([]geom.Vec{
		geom.V(0, 0), geom.V(0, 1), geom.V(1, 1), geom.V(1, 0),
	}); ok {
		t.Fatal("clockwise polygon should fail")
	}
	// Non-convex chevron should fail.
	if _, ok := NewConvexPolygon([]geom.Vec{
		geom.V(0, 0), geom.V(2, 0), geom.V(1, 0.2), geom.V(1, 2),
	}); ok {
		t.Fatal("non-convex polygon should fail")
	}
	// 3D vertices should fail.
	if _, ok := NewConvexPolygon([]geom.Vec{
		geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0),
	}); ok {
		t.Fatal("3D vertices should fail")
	}
}

func TestPolygonContains(t *testing.T) {
	tri := triangle()
	if !tri.Contains(geom.V(0.5, 0.3)) {
		t.Fatal("centroid-ish point should be inside")
	}
	if tri.Contains(geom.V(0.05, 0.9)) {
		t.Fatal("outside point contained")
	}
	if !tri.Contains(geom.V(0.5, 0)) {
		t.Fatal("edge point should count as inside")
	}
}

func TestPolygonSegmentHits(t *testing.T) {
	tri := triangle()
	if !tri.SegmentHits(geom.V(-1, 0.3), geom.V(2, 0.3)) {
		t.Fatal("crossing segment should hit")
	}
	if tri.SegmentHits(geom.V(-1, 2), geom.V(2, 2)) {
		t.Fatal("segment above apex should miss")
	}
	if !tri.SegmentHits(geom.V(0.5, 0.5), geom.V(0.5, 0.4)) {
		t.Fatal("segment inside should hit")
	}
	if !tri.SegmentHits(geom.V(0.5, 2), geom.V(0.5, 0.3)) {
		t.Fatal("segment ending inside should hit")
	}
}

func TestPolygonVolumeAndBounds(t *testing.T) {
	tri := triangle()
	if math.Abs(tri.Volume()-0.5) > 1e-12 {
		t.Fatalf("area = %v, want 0.5", tri.Volume())
	}
	b := tri.Bounds()
	if !b.Lo.Equal(geom.V(0, 0), 1e-12) || !b.Hi.Equal(geom.V(1, 1), 1e-12) {
		t.Fatalf("bounds = %v", b)
	}
}

func TestPolygonMatchesBoxSemantics(t *testing.T) {
	// A CCW square polygon must agree with the equivalent BoxObstacle on
	// random points and segments.
	sq, ok := NewConvexPolygon([]geom.Vec{
		geom.V(0.3, 0.3), geom.V(0.7, 0.3), geom.V(0.7, 0.7), geom.V(0.3, 0.7),
	})
	if !ok {
		t.Fatal("square polygon invalid")
	}
	box := BoxObstacle{Box: geom.Box2(0.3, 0.3, 0.7, 0.7)}
	r := rng.New(9)
	for i := 0; i < 2000; i++ {
		p := geom.V(r.Float64(), r.Float64())
		if sq.Contains(p) != box.Contains(p) {
			t.Fatalf("containment mismatch at %v", p)
		}
	}
	for i := 0; i < 2000; i++ {
		a := geom.V(r.Float64(), r.Float64())
		b := geom.V(r.Float64(), r.Float64())
		if sq.SegmentHits(a, b) != box.SegmentHits(a, b) {
			t.Fatalf("segment mismatch %v -> %v", a, b)
		}
	}
}

func TestPolygonInEnvironment(t *testing.T) {
	tri := triangle()
	e := &Environment{Name: "poly", Bounds: unitBox(2), Obstacles: []Obstacle{tri}}
	if e.PointFree(geom.V(0.5, 0.3)) {
		t.Fatal("triangle interior should block")
	}
	// Blocked fraction via MC should approximate the triangle area.
	got := e.BlockedFraction(100000, 4)
	if math.Abs(got-0.5) > 0.01 {
		t.Fatalf("blocked fraction = %v, want ~0.5", got)
	}
}
