package env

import (
	"math"

	"parmp/internal/geom"
)

// BatchScratch holds the gather buffers the SoA batch queries fall back
// to when an obstacle type has no column kernel. The zero value is ready
// to use; a scratch is not safe for concurrent use.
type BatchScratch struct {
	pa, pb geom.Vec
}

func growVec(v geom.Vec, d int) geom.Vec {
	if cap(v) < d {
		return make(geom.Vec, d)
	}
	return v[:d]
}

// gatherA copies item i of cols into the scratch's first buffer.
func (sc *BatchScratch) gatherA(cols [][]float64, i, d int) geom.Vec {
	sc.pa = growVec(sc.pa, d)
	for k := 0; k < d; k++ {
		sc.pa[k] = cols[k][i]
	}
	return sc.pa
}

// gatherB copies item i of cols into the scratch's second buffer.
func (sc *BatchScratch) gatherB(cols [][]float64, i, d int) geom.Vec {
	sc.pb = growVec(sc.pb, d)
	for k := 0; k < d; k++ {
		sc.pb[k] = cols[k][i]
	}
	return sc.pb
}

// CheckPointsSoA is the batched CheckPoint: point i is
// (cols[0][i], …, cols[d-1][i]) for i < n, with d = e.Dim(). It reports
// whether every point is inside bounds and outside every obstacle,
// along with the number of obstacle containment tests performed.
//
// Iteration is obstacle-major: one bounds sweep over all points, then
// one sweep per obstacle with the obstacle's concrete type resolved
// once per sweep instead of once per point, so the inner loops run over
// contiguous per-dimension columns with no interface dispatch. The
// batch fails fast on the first hit.
//
// Parity contract with the scalar loop: the accept/reject outcome is
// identical to running CheckPoint over every point, and on an all-free
// batch the test count equals the sum of the scalar counts exactly
// (n × len(Obstacles)). A rejecting batch may stop at a different count
// than the point-major sweep — the same contract the fail-fast local
// planner already documents for rejected edges.
func (e *Environment) CheckPointsSoA(cols [][]float64, n int, sc *BatchScratch) (free bool, tests int) {
	if n == 0 {
		return true, 0
	}
	d := e.Dim()
	// Bounds sweep first: an out-of-bounds point costs no obstacle
	// tests, exactly as in CheckPoint.
	for k := 0; k < d; k++ {
		lo, hi := e.Bounds.Lo[k], e.Bounds.Hi[k]
		col := cols[k][:n]
		for i := 0; i < n; i++ {
			if col[i] < lo || col[i] > hi {
				return false, 0
			}
		}
	}
	for _, o := range e.Obstacles {
		switch ob := o.(type) {
		case BoxObstacle:
			if hit, i := boxContainsAny(ob.Box, cols, n); hit {
				return false, tests + i + 1
			}
		case SphereObstacle:
			if hit, i := sphereContainsAny(ob, cols, n); hit {
				return false, tests + i + 1
			}
		default:
			for i := 0; i < n; i++ {
				if o.Contains(sc.gatherA(cols, i, d)) {
					return false, tests + i + 1
				}
			}
		}
		tests += n
	}
	return true, tests
}

// SegmentsFreeSoA is the batched SegmentFree: segment i runs from
// (acols[0][i], …) to (bcols[0][i], …) for i < n. Bounds containment of
// the endpoints is the caller's concern, as with SegmentFree. The
// sweep is obstacle-major and fails fast on the first hit; the parity
// contract matches CheckPointsSoA (identical outcome, test counts sum
// exactly on an all-free batch).
func (e *Environment) SegmentsFreeSoA(acols, bcols [][]float64, n int, sc *BatchScratch) (free bool, tests int) {
	if n == 0 {
		return true, 0
	}
	d := e.Dim()
	for _, o := range e.Obstacles {
		switch ob := o.(type) {
		case BoxObstacle:
			if hit, i := boxSegmentHitsAny(ob.Box, acols, bcols, n); hit {
				return false, tests + i + 1
			}
		case SphereObstacle:
			if hit, i := sphereSegmentHitsAny(ob, acols, bcols, n); hit {
				return false, tests + i + 1
			}
		default:
			for i := 0; i < n; i++ {
				if o.SegmentHits(sc.gatherA(acols, i, d), sc.gatherB(bcols, i, d)) {
					return false, tests + i + 1
				}
			}
		}
		tests += n
	}
	return true, tests
}

// boxContainsAny returns the first batch item inside b (boundary
// inclusive, mirroring AABB.Contains).
func boxContainsAny(b geom.AABB, cols [][]float64, n int) (bool, int) {
	switch len(b.Lo) {
	case 2:
		xs, ys := cols[0][:n], cols[1][:n]
		x0, x1, y0, y1 := b.Lo[0], b.Hi[0], b.Lo[1], b.Hi[1]
		for i := 0; i < n; i++ {
			if xs[i] >= x0 && xs[i] <= x1 && ys[i] >= y0 && ys[i] <= y1 {
				return true, i
			}
		}
	case 3:
		xs, ys, zs := cols[0][:n], cols[1][:n], cols[2][:n]
		x0, x1, y0, y1, z0, z1 := b.Lo[0], b.Hi[0], b.Lo[1], b.Hi[1], b.Lo[2], b.Hi[2]
		for i := 0; i < n; i++ {
			if xs[i] >= x0 && xs[i] <= x1 && ys[i] >= y0 && ys[i] <= y1 && zs[i] >= z0 && zs[i] <= z1 {
				return true, i
			}
		}
	default:
		for i := 0; i < n; i++ {
			inside := true
			for k := range b.Lo {
				if cols[k][i] < b.Lo[k] || cols[k][i] > b.Hi[k] {
					inside = false
					break
				}
			}
			if inside {
				return true, i
			}
		}
	}
	return false, 0
}

// sphereContainsAny returns the first batch item inside o, with the
// same squared-distance arithmetic as SphereObstacle.Contains.
func sphereContainsAny(o SphereObstacle, cols [][]float64, n int) (bool, int) {
	r2 := o.Radius * o.Radius
	switch len(o.Center) {
	case 2:
		xs, ys := cols[0][:n], cols[1][:n]
		cx, cy := o.Center[0], o.Center[1]
		for i := 0; i < n; i++ {
			dx := xs[i] - cx
			dy := ys[i] - cy
			if dx*dx+dy*dy <= r2 {
				return true, i
			}
		}
	case 3:
		xs, ys, zs := cols[0][:n], cols[1][:n], cols[2][:n]
		cx, cy, cz := o.Center[0], o.Center[1], o.Center[2]
		for i := 0; i < n; i++ {
			dx := xs[i] - cx
			dy := ys[i] - cy
			dz := zs[i] - cz
			if dx*dx+dy*dy+dz*dz <= r2 {
				return true, i
			}
		}
	default:
		for i := 0; i < n; i++ {
			var s float64
			for k := range o.Center {
				d := cols[k][i] - o.Center[k]
				s += d * d
			}
			if s <= r2 {
				return true, i
			}
		}
	}
	return false, 0
}

// boxSegmentHitsAny returns the first batch segment intersecting b. The
// per-segment slab test reproduces AABB.SegmentIntersects exactly
// (including its 1e-15 degenerate-axis epsilon and boundary-touching
// semantics).
func boxSegmentHitsAny(b geom.AABB, acols, bcols [][]float64, n int) (bool, int) {
	d := len(b.Lo)
	for i := 0; i < n; i++ {
		tMin, tMax := 0.0, 1.0
		hit := true
		for k := 0; k < d; k++ {
			av := acols[k][i]
			dd := bcols[k][i] - av
			if math.Abs(dd) < 1e-15 {
				if av < b.Lo[k] || av > b.Hi[k] {
					hit = false
					break
				}
				continue
			}
			t1 := (b.Lo[k] - av) / dd
			t2 := (b.Hi[k] - av) / dd
			if t1 > t2 {
				t1, t2 = t2, t1
			}
			tMin = math.Max(tMin, t1)
			tMax = math.Min(tMax, t2)
			if tMin > tMax {
				hit = false
				break
			}
		}
		if hit {
			return true, i
		}
	}
	return false, 0
}

// sphereSegmentHitsAny returns the first batch segment passing through
// o, with the same closest-point arithmetic as
// SphereObstacle.SegmentHits (so results agree bit for bit).
func sphereSegmentHitsAny(o SphereObstacle, acols, bcols [][]float64, n int) (bool, int) {
	d := len(o.Center)
	r2 := o.Radius * o.Radius
	for i := 0; i < n; i++ {
		var den, dot float64
		for k := 0; k < d; k++ {
			ab := bcols[k][i] - acols[k][i]
			den += ab * ab
			ca := o.Center[k] - acols[k][i]
			dot += ab * ca
		}
		t := 0.0
		if den > 0 {
			t = dot / den
			if t < 0 {
				t = 0
			} else if t > 1 {
				t = 1
			}
		}
		var dist2 float64
		for k := 0; k < d; k++ {
			av := acols[k][i]
			closest := av + t*(bcols[k][i]-av)
			dc := closest - o.Center[k]
			dist2 += dc * dc
		}
		if dist2 <= r2 {
			return true, i
		}
	}
	return false, 0
}
