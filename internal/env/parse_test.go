package env

import (
	"strings"
	"testing"

	"parmp/internal/geom"
)

const sample3D = `
# a test scene
name test-scene
bounds 0 0 0 1 1 1
box 0.2 0.2 0.2 0.4 0.4 0.4
sphere 0.7 0.7 0.7 0.1
`

func TestParse3D(t *testing.T) {
	e, err := Parse(strings.NewReader(sample3D))
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "test-scene" || e.Dim() != 3 || len(e.Obstacles) != 2 {
		t.Fatalf("parsed: %s dim=%d obstacles=%d", e.Name, e.Dim(), len(e.Obstacles))
	}
	if e.PointFree(geom.V(0.3, 0.3, 0.3)) {
		t.Fatal("box interior should be blocked")
	}
	if e.PointFree(geom.V(0.7, 0.7, 0.75)) {
		t.Fatal("sphere interior should be blocked")
	}
	if !e.PointFree(geom.V(0.05, 0.05, 0.05)) {
		t.Fatal("corner should be free")
	}
}

func TestParse2DAndSwappedBoxCorners(t *testing.T) {
	src := "bounds 0 0 2 2\nbox 1.5 1.5 0.5 0.5\n"
	e, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if e.Dim() != 2 {
		t.Fatalf("dim = %d", e.Dim())
	}
	if e.PointFree(geom.V(1, 1)) {
		t.Fatal("box (with swapped corners) should block its interior")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"box 0 0 1 1\n",                      // obstacle before bounds
		"bounds 0 0 1\n",                     // wrong arity
		"bounds 1 1 0 0\n",                   // degenerate
		"bounds 0 0 1 1\nsphere 0.5 0.5 0\n", // non-positive radius
		"bounds 0 0 1 1\nwarp 1 2\n",         // unknown directive
		"bounds 0 0 1 1\nbox a b c d\n",      // non-numeric
		"",                                   // missing bounds
		"name\n",                             // name arity
	}
	for i, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Fatalf("case %d should fail: %q", i, src)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig := MedCube()
	orig.Obstacles = append(orig.Obstacles, SphereObstacle{Center: geom.V(0.1, 0.1, 0.1), Radius: 0.05})
	var sb strings.Builder
	if err := Write(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || len(back.Obstacles) != len(orig.Obstacles) {
		t.Fatalf("round trip: %s %d obstacles", back.Name, len(back.Obstacles))
	}
	// Same blocked fraction (MC with same seed).
	a := orig.BlockedFraction(50000, 3)
	b := back.BlockedFraction(50000, 3)
	if a != b {
		t.Fatalf("blocked fractions differ: %v vs %v", a, b)
	}
}

func TestWriteRejectsUnknownObstacle(t *testing.T) {
	e := &Environment{Bounds: unitBox(2), Obstacles: []Obstacle{fakeObstacle{}}}
	var sb strings.Builder
	if err := Write(&sb, e); err == nil {
		t.Fatal("unknown obstacle type should fail")
	}
}

type fakeObstacle struct{}

func (fakeObstacle) Contains(geom.Vec) bool         { return false }
func (fakeObstacle) Bounds() geom.AABB              { return unitBox(2) }
func (fakeObstacle) SegmentHits(a, b geom.Vec) bool { return false }
func (fakeObstacle) Volume() float64                { return 0 }
