// Package env models planning workspaces: a bounding box populated with
// obstacles, plus the collision and free-volume queries the planners and
// the load-estimation heuristics need.
//
// The paper's benchmark environments are provided as procedural builders:
// med-cube / small-cube / free (3D narrow-passage variants around a single
// cubic obstacle blocking ~24 % / ~6 % / 0 % of the workspace) and the
// mixed / mixed-30 cluttered scenes (~60 % / ~30 % blocked) used for the
// radial RRT experiments, alongside walls/maze scenes for the examples.
package env

import (
	"fmt"
	"math"

	"parmp/internal/geom"
	"parmp/internal/rng"
)

// Obstacle is a solid region of the workspace.
type Obstacle interface {
	// Contains reports whether the point collides with the obstacle.
	Contains(p geom.Vec) bool
	// Bounds returns an AABB enclosing the obstacle.
	Bounds() geom.AABB
	// SegmentHits reports whether the segment a→b passes through the
	// obstacle.
	SegmentHits(a, b geom.Vec) bool
	// Volume returns the obstacle's d-dimensional volume.
	Volume() float64
}

// BoxObstacle is an axis-aligned solid box.
type BoxObstacle struct {
	Box geom.AABB
}

// Contains implements Obstacle.
func (o BoxObstacle) Contains(p geom.Vec) bool { return o.Box.Contains(p) }

// Bounds implements Obstacle.
func (o BoxObstacle) Bounds() geom.AABB { return o.Box }

// SegmentHits implements Obstacle.
func (o BoxObstacle) SegmentHits(a, b geom.Vec) bool { return o.Box.SegmentIntersects(a, b) }

// Volume implements Obstacle.
func (o BoxObstacle) Volume() float64 { return o.Box.Volume() }

// SphereObstacle is a solid ball.
type SphereObstacle struct {
	Center geom.Vec
	Radius float64
}

// Contains implements Obstacle.
func (o SphereObstacle) Contains(p geom.Vec) bool {
	return p.Dist2(o.Center) <= o.Radius*o.Radius
}

// Bounds implements Obstacle.
func (o SphereObstacle) Bounds() geom.AABB {
	lo := make(geom.Vec, len(o.Center))
	hi := make(geom.Vec, len(o.Center))
	for i := range o.Center {
		lo[i] = o.Center[i] - o.Radius
		hi[i] = o.Center[i] + o.Radius
	}
	return geom.AABB{Lo: lo, Hi: hi}
}

// SegmentHits implements Obstacle.
func (o SphereObstacle) SegmentHits(a, b geom.Vec) bool {
	// Closest point on segment to center within radius?
	ab := b.Sub(a)
	den := ab.Norm2()
	t := 0.0
	if den > 0 {
		t = ab.Dot(o.Center.Sub(a)) / den
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	closest := a.Lerp(b, t)
	return closest.Dist2(o.Center) <= o.Radius*o.Radius
}

// Volume implements Obstacle. Only 2D and 3D are supported exactly; higher
// dimensions use the general n-ball formula.
func (o SphereObstacle) Volume() float64 {
	d := float64(len(o.Center))
	// V_d(r) = pi^(d/2) / Gamma(d/2+1) * r^d
	return math.Pow(math.Pi, d/2) / math.Gamma(d/2+1) * math.Pow(o.Radius, d)
}

// Environment is a workspace: bounds plus obstacles.
//
// Environments are versioned: the mutation API (AddObstacle,
// RemoveObstacle, MoveObstacle) edits the obstacle set in place, bumps
// Epoch and returns a Delta describing the change, so downstream
// structures (roadmaps, trees, caches) can repair incrementally instead
// of rebuilding. An Environment is not safe for concurrent mutation;
// long-lived services clone (Clone) before mutating so published
// snapshots keep reading a frozen world.
type Environment struct {
	Name      string
	Bounds    geom.AABB
	Obstacles []Obstacle
	// Epoch counts committed mutations. A freshly built environment is
	// epoch 0; every successful AddObstacle/RemoveObstacle/MoveObstacle
	// increments it. Snapshots carry the epoch they were planned
	// against, which is what keys path-cache invalidation in the
	// serving tier.
	Epoch uint64
}

// Dim returns the workspace dimension.
func (e *Environment) Dim() int { return e.Bounds.Dim() }

// PointFree reports whether p is inside bounds and outside every obstacle.
// The number of obstacle tests performed equals len(Obstacles) in the worst
// case; callers that meter work should use CheckPoint.
func (e *Environment) PointFree(p geom.Vec) bool {
	free, _ := e.CheckPoint(p)
	return free
}

// CheckPoint reports whether p is collision-free and how many obstacle
// containment tests were performed, so callers can meter collision work.
func (e *Environment) CheckPoint(p geom.Vec) (free bool, tests int) {
	if !e.Bounds.Contains(p) {
		return false, 0
	}
	for i, o := range e.Obstacles {
		if o.Contains(p) {
			return false, i + 1
		}
	}
	return true, len(e.Obstacles)
}

// SegmentFree reports whether the straight segment a→b avoids all
// obstacles. Bounds containment of the endpoints is the caller's concern.
func (e *Environment) SegmentFree(a, b geom.Vec) (free bool, tests int) {
	for i, o := range e.Obstacles {
		if o.SegmentHits(a, b) {
			return false, i + 1
		}
	}
	return true, len(e.Obstacles)
}

// BlockedFraction estimates the fraction of the bounding volume covered by
// obstacles. For box-only environments with pairwise-disjoint obstacles the
// result is exact; otherwise it falls back to Monte-Carlo with n samples.
func (e *Environment) BlockedFraction(n int, seed uint64) float64 {
	total := e.Bounds.Volume()
	if total == 0 {
		return 0
	}
	if e.obstaclesDisjointBoxes() {
		var blocked float64
		for _, o := range e.Obstacles {
			blocked += e.Bounds.IntersectionVolume(o.Bounds())
		}
		return blocked / total
	}
	if n <= 0 {
		n = 100000
	}
	r := rng.New(seed)
	hit := 0
	p := make(geom.Vec, e.Dim())
	for i := 0; i < n; i++ {
		for j := range p {
			p[j] = r.Range(e.Bounds.Lo[j], e.Bounds.Hi[j])
		}
		for _, o := range e.Obstacles {
			if o.Contains(p) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(n)
}

// FreeVolumeIn returns the free-space volume inside region. Exact for
// disjoint box obstacles; Monte-Carlo (with the given sample count and
// seed) otherwise.
func (e *Environment) FreeVolumeIn(region geom.AABB, mcSamples int, seed uint64) float64 {
	total := region.Volume()
	if e.obstaclesDisjointBoxes() {
		var blocked float64
		for _, o := range e.Obstacles {
			blocked += region.IntersectionVolume(o.Bounds())
		}
		return total - blocked
	}
	if mcSamples <= 0 {
		mcSamples = 2000
	}
	r := rng.New(seed)
	free := 0
	p := make(geom.Vec, region.Dim())
	for i := 0; i < mcSamples; i++ {
		for j := range p {
			p[j] = r.Range(region.Lo[j], region.Hi[j])
		}
		collides := false
		for _, o := range e.Obstacles {
			if o.Contains(p) {
				collides = true
				break
			}
		}
		if !collides {
			free++
		}
	}
	return total * float64(free) / float64(mcSamples)
}

// obstaclesDisjointBoxes reports whether all obstacles are boxes with
// pairwise-disjoint bounds (the condition for exact volume accounting).
func (e *Environment) obstaclesDisjointBoxes() bool {
	boxes := make([]geom.AABB, 0, len(e.Obstacles))
	for _, o := range e.Obstacles {
		b, ok := o.(BoxObstacle)
		if !ok {
			return false
		}
		boxes = append(boxes, b.Box)
	}
	for i := range boxes {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].IntersectionVolume(boxes[j]) > 0 {
				return false
			}
		}
	}
	return true
}

// RayDistanceToObstacle returns the distance along the ray origin+t*dir at
// which the first obstacle (or workspace boundary) is hit. Used by the
// k-random-rays RRT work estimator.
func (e *Environment) RayDistanceToObstacle(origin, dir geom.Vec) float64 {
	best := math.Inf(1)
	// Distance to exit the bounding box (treat the boundary as blocking).
	if t, ok := exitDistance(e.Bounds, origin, dir); ok {
		best = t
	}
	for _, o := range e.Obstacles {
		if t, ok := o.Bounds().RayEnter(origin, dir); ok && t < best {
			best = t
		}
	}
	return best
}

// exitDistance returns the parameter at which a ray starting inside box
// leaves it.
func exitDistance(box geom.AABB, origin, dir geom.Vec) (float64, bool) {
	tMax := math.Inf(1)
	for i := range box.Lo {
		if math.Abs(dir[i]) < 1e-15 {
			continue
		}
		t1 := (box.Lo[i] - origin[i]) / dir[i]
		t2 := (box.Hi[i] - origin[i]) / dir[i]
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t2 < tMax {
			tMax = t2
		}
	}
	if math.IsInf(tMax, 1) || tMax < 0 {
		return 0, false
	}
	return tMax, true
}

// String summarizes the environment.
func (e *Environment) String() string {
	return fmt.Sprintf("env %q: dim=%d obstacles=%d blocked=%.1f%%",
		e.Name, e.Dim(), len(e.Obstacles), 100*e.BlockedFraction(20000, 1))
}
