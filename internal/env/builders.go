package env

import (
	"math"

	"parmp/internal/geom"
	"parmp/internal/rng"
)

// centeredCube returns a d-dimensional unit workspace with a single
// hypercube obstacle centered in it (equidistant from the bounding box, as
// in the paper's theoretical model) sized to block the given volume
// fraction.
func centeredCube(name string, dim int, blocked float64) *Environment {
	e := &Environment{
		Name:   name,
		Bounds: unitBox(dim),
	}
	if blocked > 0 {
		side := math.Pow(blocked, 1/float64(dim))
		lo := make(geom.Vec, dim)
		hi := make(geom.Vec, dim)
		for i := 0; i < dim; i++ {
			lo[i] = 0.5 - side/2
			hi[i] = 0.5 + side/2
		}
		e.Obstacles = []Obstacle{BoxObstacle{Box: geom.NewAABB(lo, hi)}}
	}
	return e
}

func unitBox(dim int) geom.AABB {
	lo := make(geom.Vec, dim)
	hi := make(geom.Vec, dim)
	for i := range hi {
		hi[i] = 1
	}
	return geom.NewAABB(lo, hi)
}

// MedCube is the paper's med-cube environment: a 3D unit workspace with a
// single centered cube blocking roughly 24 % of the volume.
func MedCube() *Environment { return centeredCube("med-cube", 3, 0.24) }

// SmallCube is the paper's small-cube environment (~6 % blocked).
func SmallCube() *Environment { return centeredCube("small-cube", 3, 0.06) }

// Free is the paper's free environment: no obstacles.
func Free() *Environment { return centeredCube("free", 3, 0) }

// Model2D is the theoretical model environment of Section IV-B: a 2D
// workspace with a single square obstacle equidistant from the bounding
// box, blocking the given fraction (the paper's plots correspond to a
// substantial central obstacle; 0.25 is the default used in our
// experiments when not specified).
func Model2D(blocked float64) *Environment {
	return centeredCube("model-2d", 2, blocked)
}

// Mixed is the cluttered 3D environment used in the RRT experiments,
// roughly 60 % blocked: disjoint boxes on a jittered lattice with density
// skewed toward one half of the workspace, which is what makes region
// workloads heterogeneous.
func Mixed() *Environment { return cluttered("mixed", 0.60, 97) }

// Mixed30 is the 30 %-blocked variant of Mixed.
func Mixed30() *Environment { return cluttered("mixed-30", 0.30, 131) }

// cluttered builds a 3D environment with disjoint random boxes covering
// close to the requested fraction of the unit workspace. Boxes sit on a
// jittered lattice (one box per cell, sized to the cell's local density
// target) so high blockage fractions are reachable with guaranteed
// disjointness, which keeps free-volume accounting exact. Density is
// skewed: cells with x < 0.6 carry 1.5× the average, the rest 0.25× —
// the heterogeneity that makes radial RRT loads imbalanced.
func cluttered(name string, target float64, seed uint64) *Environment {
	e := &Environment{Name: name, Bounds: unitBox(3)}
	r := rng.New(seed)
	const m = 6 // lattice cells per dimension
	cell := 1.0 / m
	for ix := 0; ix < m; ix++ {
		for iy := 0; iy < m; iy++ {
			for iz := 0; iz < m; iz++ {
				cx := (float64(ix) + 0.5) * cell
				// Density weights average to 1 over the lattice
				// (0.6*1.5 + 0.4*0.25 = 1).
				w := 0.25
				if cx < 0.6 {
					w = 1.5
				}
				frac := target * w
				if frac <= 0 {
					continue
				}
				if frac > 0.92 {
					frac = 0.92
				}
				side := cell * math.Pow(frac, 1.0/3)
				// Jitter the box inside its cell so the scene is not a
				// perfect lattice.
				slack := cell - side
				lo := geom.V(
					float64(ix)*cell+r.Float64()*slack,
					float64(iy)*cell+r.Float64()*slack,
					float64(iz)*cell+r.Float64()*slack,
				)
				hi := geom.V(lo[0]+side, lo[1]+side, lo[2]+side)
				e.Obstacles = append(e.Obstacles, BoxObstacle{Box: geom.NewAABB(lo, hi)})
			}
		}
	}
	return e
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Walls builds a 3D environment with nWalls slab obstacles perpendicular
// to the x axis, each pierced by a single narrow doorway. Doorway centers
// alternate between low and high y so paths must weave, concentrating
// planner work near the passages.
func Walls(nWalls int, doorWidth float64) *Environment {
	e := &Environment{Name: "walls", Bounds: unitBox(3)}
	if nWalls < 1 {
		return e
	}
	thick := 0.04
	for w := 0; w < nWalls; w++ {
		x := float64(w+1) / float64(nWalls+1)
		doorY := 0.2
		if w%2 == 1 {
			doorY = 0.8
		}
		yLo, yHi := doorY-doorWidth/2, doorY+doorWidth/2
		// Wall below the door.
		if yLo > 0 {
			e.Obstacles = append(e.Obstacles, BoxObstacle{
				Box: geom.Box3(x-thick/2, 0, 0, x+thick/2, yLo, 1),
			})
		}
		// Wall above the door.
		if yHi < 1 {
			e.Obstacles = append(e.Obstacles, BoxObstacle{
				Box: geom.Box3(x-thick/2, yHi, 0, x+thick/2, 1, 1),
			})
		}
	}
	return e
}

// Maze2D builds a 2D corridor maze for the examples: alternating wall
// segments leaving gaps on opposite sides.
func Maze2D(nWalls int, gap float64) *Environment {
	e := &Environment{Name: "maze-2d", Bounds: unitBox(2)}
	thick := 0.03
	for w := 0; w < nWalls; w++ {
		x := float64(w+1) / float64(nWalls+1)
		if w%2 == 0 {
			e.Obstacles = append(e.Obstacles, BoxObstacle{
				Box: geom.Box2(x-thick/2, gap, x+thick/2, 1),
			})
		} else {
			e.Obstacles = append(e.Obstacles, BoxObstacle{
				Box: geom.Box2(x-thick/2, 0, x+thick/2, 1-gap),
			})
		}
	}
	return e
}

// Walls45 builds a 2D environment with diagonal (45-degree) wall slabs —
// the "walls-45" variant named in the paper's Figure 8 caption. Each wall
// is a convex quadrilateral running corner-to-corner with a gap in the
// middle, so free space is a zig-zag of diagonal corridors.
func Walls45(nWalls int, gap float64) *Environment {
	e := &Environment{Name: "walls-45", Bounds: unitBox(2)}
	thick := 0.03
	for w := 0; w < nWalls; w++ {
		// Diagonal line x - y = c, alternating gap position.
		c := -0.6 + 1.2*float64(w+1)/float64(nWalls+1)
		lo, hi := 0.0, 1.0
		gapAt := 0.3
		if w%2 == 1 {
			gapAt = 0.7
		}
		// Two slab segments along the diagonal, leaving [gapAt-gap/2,
		// gapAt+gap/2] free (parameterized by y).
		for _, seg := range [][2]float64{{lo, gapAt - gap/2}, {gapAt + gap/2, hi}} {
			y0, y1 := seg[0], seg[1]
			if y1 <= y0 {
				continue
			}
			quad := []geom.Vec{
				geom.V(clamp01(y0+c), y0),
				geom.V(clamp01(y0+c+thick), y0),
				geom.V(clamp01(y1+c+thick), y1),
				geom.V(clamp01(y1+c), y1),
			}
			if poly, ok := NewConvexPolygon(quad); ok {
				e.Obstacles = append(e.Obstacles, poly)
			}
		}
	}
	return e
}

// Corner2D builds the imbalanced 2D scene of the paper's Figure 3: most of
// the workspace open, with dense clutter packed into one quadrant so a
// naive uniform mapping of regions to processors overloads the processors
// owning the open space (where sampling succeeds) relative to those owning
// the cluttered quadrant.
func Corner2D() *Environment {
	e := &Environment{Name: "corner-2d", Bounds: unitBox(2)}
	r := rng.New(7)
	boxes := []geom.AABB{}
	var blocked float64
	for attempts := 0; blocked < 0.10 && attempts < 5000; attempts++ {
		side := r.Range(0.02, 0.08)
		cx := r.Range(0.55, 1)
		cy := r.Range(0, 0.45)
		lo := geom.V(clamp01(cx-side/2), clamp01(cy-side/2))
		hi := geom.V(clamp01(cx+side/2), clamp01(cy+side/2))
		box := geom.NewAABB(lo, hi)
		overlap := false
		for _, b := range boxes {
			if b.IntersectionVolume(box) > 0 {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		boxes = append(boxes, box)
		blocked += box.Volume()
	}
	for _, b := range boxes {
		e.Obstacles = append(e.Obstacles, BoxObstacle{Box: b})
	}
	return e
}

// ByName returns a paper environment by its experiment name, or nil if
// unknown. Recognized names: med-cube, small-cube, free, mixed, mixed-30,
// walls, maze-2d, corner-2d, model-2d.
func ByName(name string) *Environment {
	switch name {
	case "med-cube":
		return MedCube()
	case "small-cube":
		return SmallCube()
	case "free":
		return Free()
	case "mixed":
		return Mixed()
	case "mixed-30":
		return Mixed30()
	case "walls":
		return Walls(3, 0.15)
	case "walls-45":
		return Walls45(3, 0.2)
	case "maze-2d":
		return Maze2D(4, 0.2)
	case "corner-2d":
		return Corner2D()
	case "model-2d":
		return Model2D(0.25)
	}
	return nil
}

// Names lists the environments known to ByName.
func Names() []string {
	return []string{"med-cube", "small-cube", "free", "mixed", "mixed-30",
		"walls", "walls-45", "maze-2d", "corner-2d", "model-2d"}
}
