package servebench

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestComputePercentiles(t *testing.T) {
	if p := Compute(nil); p.P99 != 0 || p.Max != 0 {
		t.Fatal("empty input must yield zeros")
	}
	us := make([]float64, 1000)
	for i := range us {
		us[i] = float64(999 - i) // reversed: Compute must sort
	}
	p := Compute(us)
	if p.P50 != 499 || p.P99 != 989 || p.P999 != 998 || p.Max != 999 {
		t.Fatalf("percentiles = %+v", p)
	}
	if us[0] != 0 {
		t.Fatal("Compute must sort its input")
	}
}

func TestGateCheck(t *testing.T) {
	base := Result{Latency: Percentiles{P99: 1000}}
	ok := Result{Queries: 10000, Errors: 5, ErrorRate: 0.0005, Latency: Percentiles{P99: 1200}}
	g := Gate{MaxErrorRate: 0.001, MaxRegress: 0.5}
	if err := g.Check(ok, &base); err != nil {
		t.Fatalf("passing run failed the gate: %v", err)
	}

	slow := ok
	slow.Latency.P99 = 1600
	if err := g.Check(slow, &base); err == nil || !strings.Contains(err.Error(), "p99") {
		t.Fatalf("p99 regression not caught: %v", err)
	}

	errored := ok
	errored.Errors, errored.ErrorRate = 100, 0.01
	if err := g.Check(errored, &base); err == nil || !strings.Contains(err.Error(), "error rate") {
		t.Fatalf("error-rate violation not caught: %v", err)
	}

	// Both violations reported together.
	both := slow
	both.Errors, both.ErrorRate = 100, 0.01
	if err := g.Check(both, &base); err == nil ||
		!strings.Contains(err.Error(), "p99") || !strings.Contains(err.Error(), "error rate") {
		t.Fatalf("combined violations not fully reported: %v", err)
	}

	// No baseline: only the error gate applies.
	if err := g.Check(slow, nil); err != nil {
		t.Fatalf("baseline-less run must skip the p99 gate: %v", err)
	}
	// Disabled gates pass everything.
	if err := (Gate{MaxErrorRate: -1, MaxRegress: -1}).Check(both, &base); err != nil {
		t.Fatalf("disabled gate rejected a run: %v", err)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	in := Result{
		Source: "mploadgen", Env: "med-cube", Mode: "closed", Workers: 8,
		Queries: 12345, Solved: 12000, Errors: 3, ErrorRate: 3.0 / 12345,
		DurationSec: 1.5, Throughput: 8230,
		Latency:      Percentiles{P50: 100, P90: 200, P99: 400, P999: 900, Max: 1500},
		Serve:        &Percentiles{P50: 80, P99: 300},
		CacheHit:     &Percentiles{P50: 4, P99: 20},
		CacheHitRate: 0.42, BatchMean: 5.5,
	}
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		// Pointer fields break direct comparison; compare piecewise.
		if out.Source != in.Source || out.Latency != in.Latency ||
			out.Serve == nil || *out.Serve != *in.Serve ||
			out.CacheHit == nil || *out.CacheHit != *in.CacheHit ||
			out.Queries != in.Queries || out.BatchMean != in.BatchMean {
			t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
		}
	}
}
