// Package servebench defines the serving-tier benchmark schema
// (BENCH_serve.json) and its regression gate, the serving sibling of
// internal/kernelbench's allocation gate.
//
// Sampling-based planners have heavy-tailed solve and query times, so
// the contract here is percentile-first: every producer — cmd/mploadgen
// driving a live mpserved, and cmd/mpsolve's in-process -queries serve
// mode — reports p50/p99/p999 in the same schema, which makes offline
// and served numbers directly comparable and lets CI fail a build on a
// tail-latency regression against a checked-in baseline, not just on a
// mean shift.
package servebench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Percentiles summarizes a latency distribution in microseconds.
type Percentiles struct {
	P50  float64 `json:"p50_us"`
	P90  float64 `json:"p90_us"`
	P99  float64 `json:"p99_us"`
	P999 float64 `json:"p999_us"`
	Max  float64 `json:"max_us"`
}

// Compute sorts us (in place) and extracts the summary percentiles.
// Empty input yields zeros.
func Compute(us []float64) Percentiles {
	if len(us) == 0 {
		return Percentiles{}
	}
	sort.Float64s(us)
	at := func(p float64) float64 {
		i := int(p * float64(len(us)-1))
		return us[i]
	}
	return Percentiles{
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		P999: at(0.999),
		Max:  us[len(us)-1],
	}
}

// Result is one serving benchmark run: the BENCH_serve.json schema.
type Result struct {
	// Source identifies the producer: "mploadgen" (over-the-wire against
	// mpserved) or "mpsolve" (in-process serve mode).
	Source string `json:"source"`
	Env    string `json:"env"`
	// Mode is the load shape: "closed" (fixed concurrency) or "open"
	// (fixed arrival rate); mpsolve reports "closed".
	Mode    string  `json:"mode,omitempty"`
	Workers int     `json:"workers,omitempty"`
	RateQPS float64 `json:"rate_qps,omitempty"`

	Queries     int64   `json:"queries"`
	Solved      int64   `json:"solved"`
	Errors      int64   `json:"errors"` // non-2xx responses + transport failures
	ErrorRate   float64 `json:"error_rate"`
	Rejected    int64   `json:"rejected,omitempty"` // 429 backpressure rejections (subset of Errors)
	DurationSec float64 `json:"duration_sec"`
	Throughput  float64 `json:"throughput_qps"`

	// Latency is what the client observed (over-the-wire for mploadgen,
	// call latency for mpsolve).
	Latency Percentiles `json:"latency"`
	// Serve is the server-side processing time per request, when the
	// producer has it (mploadgen reads it off each response).
	Serve *Percentiles `json:"serve,omitempty"`
	// CacheHit is the server-side latency of path-cache hits only.
	CacheHit     *Percentiles `json:"cache_hit,omitempty"`
	CacheHitRate float64      `json:"cache_hit_rate,omitempty"`
	// BatchMean is the mean coalesced batch size over non-cache-hit
	// queries, as reported by the server.
	BatchMean float64 `json:"batch_mean,omitempty"`
	// Mutations counts environment mutations issued during the run
	// (mploadgen -mutate-every); StalePaths counts probe responses that
	// returned a path through a freshly-added obstacle — any nonzero
	// value is a cache-invalidation bug.
	Mutations  int64 `json:"mutations,omitempty"`
	StalePaths int64 `json:"stale_paths,omitempty"`
}

// Write marshals r as indented JSON.
func Write(w io.Writer, r Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes r to path ("-" for stdout).
func WriteFile(path string, r Result) error {
	if path == "-" {
		return Write(os.Stdout, r)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a Result from path.
func Load(path string) (Result, error) {
	var r Result
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Gate bundles the serving regression thresholds.
type Gate struct {
	// MaxErrorRate fails the run when Errors/Queries exceeds it.
	// Negative disables.
	MaxErrorRate float64
	// MaxRegress fails the run when the client p99 exceeds the
	// baseline's by more than this fraction (0.5 = up to 1.5x the
	// baseline p99 passes). Ignored without a baseline. Negative
	// disables.
	MaxRegress float64
}

// Check enforces g against r, comparing tails to baseline when non-nil.
// It returns every violation, not just the first.
func (g Gate) Check(r Result, baseline *Result) error {
	var errs []error
	if g.MaxErrorRate >= 0 && r.ErrorRate > g.MaxErrorRate {
		errs = append(errs, fmt.Errorf("error rate %.4f%% exceeds %.4f%% (%d/%d)",
			100*r.ErrorRate, 100*g.MaxErrorRate, r.Errors, r.Queries))
	}
	if baseline != nil && g.MaxRegress >= 0 {
		if limit := baseline.Latency.P99 * (1 + g.MaxRegress); baseline.Latency.P99 > 0 && r.Latency.P99 > limit {
			errs = append(errs, fmt.Errorf("latency p99 %.0fµs exceeds baseline %.0fµs by more than %.0f%% (limit %.0fµs)",
				r.Latency.P99, baseline.Latency.P99, 100*g.MaxRegress, limit))
		}
	}
	if len(errs) == 0 {
		return nil
	}
	msg := "serve gate:"
	for _, e := range errs {
		msg += "\n  " + e.Error()
	}
	return fmt.Errorf("%s", msg)
}
