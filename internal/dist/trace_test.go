package dist

import (
	"strings"
	"testing"

	"parmp/internal/steal"
)

func TestTraceEventsEmitted(t *testing.T) {
	rows := [][]float64{{5, 5, 5, 5}, {}}
	var events []TraceEvent
	cfg := Config{
		Workers: 2, Profile: testProfile(), Policy: steal.RandK{K: 1}, Seed: 1,
		Trace: func(e TraceEvent) { events = append(events, e) },
	}
	Run(cfg, fixedTasks(rows))
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	kinds := map[string]int{}
	lastT := -1.0
	for _, e := range events {
		kinds[e.Kind]++
		if e.Time < lastT-1e-9 {
			t.Fatalf("trace not time-ordered: %v after %v", e.Time, lastT)
		}
		lastT = e.Time
	}
	if kinds["exec"] != 4 {
		t.Fatalf("exec events = %d, want 4", kinds["exec"])
	}
	if kinds["steal-req"] == 0 {
		t.Fatal("no steal requests traced")
	}
	if kinds["steal-grant"]+kinds["steal-deny"] == 0 {
		t.Fatal("no steal outcomes traced")
	}
}

func TestTraceNilSafe(t *testing.T) {
	rows := [][]float64{{1}}
	Run(Config{Workers: 1, Profile: testProfile()}, fixedTasks(rows)) // no panic without Trace
}

func TestTimeline(t *testing.T) {
	rows := [][]float64{{10, 10}, {}}
	var events []TraceEvent
	rep := Run(Config{
		Workers: 2, Profile: testProfile(), Policy: steal.RandK{K: 1}, Seed: 1,
		Trace: func(e TraceEvent) { events = append(events, e) },
	}, fixedTasks(rows))
	lines := Timeline(events, rep, 2, 40)
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "#") {
		t.Fatal("proc 0 should show execution")
	}
	for _, l := range lines {
		if !strings.Contains(l, "busy=") {
			t.Fatalf("line missing stats: %q", l)
		}
	}
	// Degenerate width clamps.
	if got := Timeline(events, rep, 2, 0); len(got) != 2 {
		t.Fatal("zero width should still render")
	}
}
