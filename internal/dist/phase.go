package dist

// StaticPhase models a bulk-synchronous phase with no stealing: each
// processor executes its assigned costs sequentially; the phase ends at
// the slowest processor (followed by a barrier, priced by the caller).
// It returns the phase makespan and the per-processor busy times.
func StaticPhase(costs [][]float64) (makespan float64, perProc []float64) {
	perProc = make([]float64, len(costs))
	for p, cs := range costs {
		for _, c := range cs {
			perProc[p] += c
		}
		if perProc[p] > makespan {
			makespan = perProc[p]
		}
	}
	return makespan, perProc
}
