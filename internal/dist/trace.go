package dist

import (
	"fmt"
	"io"
)

// TraceEvent is one simulator occurrence, emitted through Config.Trace.
type TraceEvent struct {
	Time float64
	Kind string // "exec", "steal-req", "steal-grant", "steal-deny", "retire"
	Proc int    // acting processor
	Peer int    // counterpart (victim/thief), -1 when not applicable
	Task int    // task ID, -1 when not applicable
}

// String formats the event as one log line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("t=%.1f %-11s proc=%d peer=%d task=%d", e.Time, e.Kind, e.Proc, e.Peer, e.Task)
}

// Tracer receives simulator events in virtual-time order.
type Tracer func(TraceEvent)

// WriteTrace returns a Tracer that writes one line per event to w.
func WriteTrace(w io.Writer) Tracer {
	return func(e TraceEvent) {
		fmt.Fprintln(w, e.String())
	}
}

// trace emits an event if tracing is enabled.
func (s *sim) trace(t float64, kind string, proc, peer, task int) {
	if s.cfg.Trace != nil {
		s.cfg.Trace(TraceEvent{Time: t, Kind: kind, Proc: proc, Peer: peer, Task: task})
	}
}
