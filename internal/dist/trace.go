package dist

// Trace event types live in internal/sched (shared with the host
// executor); dist re-exports them as TraceEvent and Tracer.

// trace emits an event if tracing is enabled.
func (s *sim) trace(t float64, kind string, proc, peer, task int) {
	if s.cfg.Trace != nil {
		s.cfg.Trace(TraceEvent{Time: t, Kind: kind, Proc: proc, Peer: peer, Task: task})
	}
}

// traceExec emits a task-execution span: start time plus duration, so
// trace exporters (e.g. obsv.ChromeTrace) render exact busy intervals.
func (s *sim) traceExec(t float64, proc, task int, dur float64) {
	if s.cfg.Trace != nil {
		s.cfg.Trace(TraceEvent{Time: t, Kind: "exec", Proc: proc, Peer: -1, Task: task, Dur: dur})
	}
}
