package dist

// Trace event types live in internal/sched (shared with the host
// executor); dist re-exports them as TraceEvent and Tracer.

// trace emits an event if tracing is enabled.
func (s *sim) trace(t float64, kind string, proc, peer, task int) {
	if s.cfg.Trace != nil {
		s.cfg.Trace(TraceEvent{Time: t, Kind: kind, Proc: proc, Peer: peer, Task: task})
	}
}
