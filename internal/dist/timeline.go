package dist

import (
	"fmt"
	"strings"
)

// Timeline renders an ASCII utilization chart from a traced run: one row
// per processor, '#' where the processor was executing a task and '.'
// where it was idle or communicating. events must come from a Run with
// Config.Trace installed; rep supplies task costs and totals.
func Timeline(events []TraceEvent, rep Report, procs, width int) []string {
	if width < 1 {
		width = 1
	}
	scale := rep.Makespan / float64(width)
	if scale <= 0 {
		scale = 1
	}
	rows := make([][]byte, procs)
	for p := range rows {
		rows[p] = []byte(strings.Repeat(".", width))
	}
	for _, ev := range events {
		if ev.Kind != "exec" || ev.Proc < 0 || ev.Proc >= procs {
			continue
		}
		from := int(ev.Time / scale)
		to := int((ev.Time + rep.Cost[ev.Task]) / scale)
		for i := from; i <= to && i < width; i++ {
			rows[ev.Proc][i] = '#'
		}
	}
	out := make([]string, procs)
	for p := range rows {
		var ps ProcStats
		if p < len(rep.Workers) {
			ps = rep.Workers[p]
		}
		out[p] = fmt.Sprintf("p%-3d |%s| busy=%.0f local=%d stolen=%d",
			p, rows[p], ps.Busy, ps.TasksLocal, ps.TasksStolen)
	}
	return out
}
