// Package dist simulates a distributed-memory machine executing region
// tasks under a work-stealing scheduler, in deterministic virtual time.
//
// It is the substitute for the paper's STAPL runtime on the Cray XE6 and
// Opteron cluster: P virtual processors each own a deque of region tasks;
// a task's cost is whatever work the real planner performs when the task
// runs (tasks are deterministic, so cost is independent of schedule);
// steal requests, replies and migrations travel as latency-weighted
// messages between processors (intra- vs inter-node latency per the
// machine profile). The simulation is event-driven and fully
// deterministic given the configuration seed, so strong-scaling sweeps to
// thousands of virtual processors run on any host.
package dist

import (
	"container/heap"
	"math"

	"parmp/internal/rng"
	"parmp/internal/steal"
	"parmp/internal/work"
)

// Config parameterizes a simulation run.
type Config struct {
	// Procs is the number of virtual processors.
	Procs int
	// Profile supplies latency and handling constants.
	Profile work.MachineProfile
	// Policy selects steal victims; nil disables stealing entirely
	// (the no-load-balancing and repartitioning-only modes).
	Policy steal.Policy
	// StealChunk is the fraction of a victim's pending deque transferred
	// per successful steal, from the back (default 0.5). At least one
	// task always transfers, so a vanishing fraction means one task per
	// steal.
	StealChunk float64
	// Seed drives victim randomization.
	Seed uint64
	// MaxBackoff caps the exponential retry backoff, as a multiple of the
	// remote latency (default 16).
	MaxBackoff float64
	// MaxRounds bounds how many consecutive unsuccessful victim rounds a
	// thief tries before giving up for good (0 = retry until global
	// termination). Bounded retries model schedulers whose idle
	// processors stop polling, leaving residual imbalance when work is
	// scarce — the paper's "low probability of finding work" effect.
	MaxRounds int
	// Trace, when non-nil, receives simulator events in virtual-time
	// order (see TraceEvent). For debugging and visualization only.
	Trace Tracer
}

func (c Config) stealChunk() float64 {
	if c.StealChunk <= 0 || c.StealChunk > 1 {
		return 0.5
	}
	return c.StealChunk
}

// ProcStats reports one virtual processor's execution profile.
type ProcStats struct {
	Busy                                      float64 // virtual time spent executing tasks
	Idle                                      float64 // makespan minus Busy
	Finish                                    float64 // completion time of the proc's last task
	TasksLocal                                int     // tasks executed from the original assignment
	TasksStolen                               int     // tasks executed that were stolen from others
	StealsIssued, StealsGranted, StealsDenied int
	TasksLost                                 int // tasks stolen away from this proc
}

// Report is the outcome of a simulation.
type Report struct {
	Makespan   float64
	Procs      []ProcStats
	TotalTasks int
	// ExecutedBy[taskID] is the processor that ultimately ran the task
	// (ownership transfer makes this differ from the initial owner).
	ExecutedBy map[int]int
	// Cost[taskID] is the task's measured virtual-time cost.
	Cost map[int]float64
	// Payload[taskID] is the task's reported payload (e.g. roadmap
	// vertices created), for downstream migration pricing.
	Payload map[int]int
	// TerminationCost is the virtual time spent detecting global
	// termination (token ring; zero when stealing is disabled).
	TerminationCost float64
}

// queued is a deque entry.
type queued struct {
	task   work.Task
	stolen bool
}

// event kinds.
const (
	evPop = iota
	evStealArrive
	evStealReply
)

type event struct {
	t    float64
	seq  int
	kind int
	proc int // target processor of the event

	// steal fields
	thief, victim int
	grant         []queued
}

type evHeap []*event

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *evHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// sim is the running simulation state.
type sim struct {
	cfg    Config
	events evHeap
	seq    int

	deque [][]queued
	busy  []bool
	stats []ProcStats
	rngs  []*rng.Stream
	// attempt counts failed steal rounds per thief since last success.
	attempt []int
	// candidates is the remaining victim list of the thief's current round.
	candidates [][]int
	// pending holds steal requests that arrived while the victim was
	// executing a task; they are serviced at the next poll point (task
	// completion), modelling non-preemptive RMI handling.
	pending   [][]*event
	remaining int

	report Report
}

func (s *sim) schedule(t float64, e *event) {
	e.t = t
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// Run executes the simulation. queues[p] is processor p's initial task
// assignment, executed front to back; steals take from the back.
func Run(cfg Config, queues [][]work.Task) Report {
	if cfg.Procs <= 0 || len(queues) != cfg.Procs {
		panic("dist: queues must have exactly Procs entries")
	}
	s := &sim{
		cfg:        cfg,
		deque:      make([][]queued, cfg.Procs),
		busy:       make([]bool, cfg.Procs),
		stats:      make([]ProcStats, cfg.Procs),
		rngs:       make([]*rng.Stream, cfg.Procs),
		attempt:    make([]int, cfg.Procs),
		candidates: make([][]int, cfg.Procs),
		pending:    make([][]*event, cfg.Procs),
		report: Report{
			ExecutedBy: map[int]int{},
			Cost:       map[int]float64{},
			Payload:    map[int]int{},
		},
	}
	for p := 0; p < cfg.Procs; p++ {
		s.rngs[p] = rng.Derive(cfg.Seed, uint64(p)+1)
		for _, t := range queues[p] {
			s.deque[p] = append(s.deque[p], queued{task: t})
			s.remaining++
		}
	}
	s.report.TotalTasks = s.remaining
	for p := 0; p < cfg.Procs; p++ {
		s.schedule(0, &event{kind: evPop, proc: p})
	}
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		switch e.kind {
		case evPop:
			s.pop(e)
		case evStealArrive:
			s.stealArrive(e)
		case evStealReply:
			s.stealReply(e)
		}
	}
	for p := range s.stats {
		if s.stats[p].Finish > s.report.Makespan {
			s.report.Makespan = s.stats[p].Finish
		}
	}
	// Work stealing needs distributed termination detection: a processor
	// with an empty deque cannot distinguish "all done" from "work still
	// in flight" (the paper's Algorithm 3 outer loop). We charge
	// tree-based detection waves after global quiescence, priced like
	// barriers so the overhead grows with log2(P) as in practical
	// implementations; a serial token ring would scale O(P) and swamp the
	// stealing benefit at thousands of processors.
	if cfg.Policy != nil && cfg.Procs > 1 && s.report.TotalTasks > 0 {
		// Two barrier-equivalent reduction waves confirm quiescence.
		s.report.TerminationCost = 2 * cfg.Profile.Barrier(cfg.Procs)
		s.report.Makespan += s.report.TerminationCost
	}
	for p := range s.stats {
		s.stats[p].Idle = s.report.Makespan - s.stats[p].Busy
	}
	s.report.Procs = s.stats
	return s.report
}

// pop makes processor e.proc take its next task or begin stealing.
// Task completion is the processor's poll point: steal requests that
// arrived during the finished task are serviced first.
func (s *sim) pop(e *event) {
	p := e.proc
	s.busy[p] = false
	if len(s.pending[p]) > 0 {
		reqs := s.pending[p]
		s.pending[p] = nil
		for _, req := range reqs {
			s.serveSteal(req, e.t)
		}
	}
	if len(s.deque[p]) > 0 {
		q := s.deque[p][0]
		s.deque[p] = s.deque[p][1:]
		s.execute(p, q, e.t)
		return
	}
	s.tryStealRound(p, e.t)
}

// execute runs a task on p starting at time t.
func (s *sim) execute(p int, q queued, t float64) {
	s.busy[p] = true
	cost, payload := q.task.Run()
	if cost < 0 || math.IsNaN(cost) {
		cost = 0
	}
	done := t + cost
	s.stats[p].Busy += cost
	if done > s.stats[p].Finish {
		s.stats[p].Finish = done
	}
	if q.stolen {
		s.stats[p].TasksStolen++
	} else {
		s.stats[p].TasksLocal++
	}
	s.trace(t, "exec", p, -1, q.task.ID)
	s.report.ExecutedBy[q.task.ID] = p
	s.report.Cost[q.task.ID] = cost
	s.report.Payload[q.task.ID] = payload
	s.remaining--
	s.attempt[p] = 0
	s.candidates[p] = nil
	s.schedule(done, &event{kind: evPop, proc: p})
}

// tryStealRound starts or continues a steal round for thief p at time t.
func (s *sim) tryStealRound(p int, t float64) {
	if s.cfg.Policy == nil || s.remaining == 0 || s.cfg.Procs <= 1 {
		return // processor retires
	}
	if s.cfg.MaxRounds > 0 && s.attempt[p] >= s.cfg.MaxRounds {
		s.trace(t, "retire", p, -1, -1)
		return // too many failed rounds: give up
	}
	if len(s.candidates[p]) == 0 {
		s.candidates[p] = s.cfg.Policy.Victims(p, s.cfg.Procs, s.attempt[p], s.rngs[p])
		if len(s.candidates[p]) == 0 {
			// Policy has nobody to ask (e.g. mesh corner in a tiny
			// system); retire.
			return
		}
	}
	v := s.candidates[p][0]
	s.candidates[p] = s.candidates[p][1:]
	s.stats[p].StealsIssued++
	s.trace(t, "steal-req", p, v, -1)
	s.schedule(t+s.cfg.Profile.Latency(p, v),
		&event{kind: evStealArrive, proc: v, thief: p, victim: v})
}

// stealArrive receives a steal request at the victim. A busy victim
// (non-preemptively executing a region) queues the request until its next
// poll point; an idle one serves it immediately.
func (s *sim) stealArrive(e *event) {
	v := e.victim
	if s.busy[v] {
		s.pending[v] = append(s.pending[v], e)
		return
	}
	s.serveSteal(e, e.t)
}

// serveSteal answers a steal request at time t. Ownership transfer is not
// free: the reply carries each stolen region's descriptor and any data
// already attached to it (its Payload), priced like a migration.
func (s *sim) serveSteal(e *event, t float64) {
	v, thief := e.victim, e.thief
	var grant []queued
	transfer := 0.0
	n := len(s.deque[v])
	if n > 0 {
		take := int(math.Ceil(float64(n) * s.cfg.stealChunk()))
		if take < 1 {
			take = 1
		}
		if take > n {
			take = n
		}
		// Steal from the back of the victim's deque.
		grant = append(grant, s.deque[v][n-take:]...)
		s.deque[v] = s.deque[v][:n-take]
		for i := range grant {
			grant[i].stolen = true
			transfer += s.cfg.Profile.MigrateFixed +
				s.cfg.Profile.MigratePerVertex*float64(grant[i].task.Payload)
		}
		s.stats[v].TasksLost += take
	}
	reply := &event{kind: evStealReply, proc: thief, thief: thief, victim: v, grant: grant}
	s.schedule(t+s.cfg.Profile.StealHandling+s.cfg.Profile.Latency(v, thief)+transfer, reply)
}

// stealReply delivers the victim's response to the thief.
func (s *sim) stealReply(e *event) {
	p := e.thief
	if len(e.grant) > 0 {
		s.stats[p].StealsGranted++
		s.trace(e.t, "steal-grant", p, e.victim, e.grant[0].task.ID)
		s.deque[p] = append(s.deque[p], e.grant...)
		s.attempt[p] = 0
		s.candidates[p] = nil
		if !s.busy[p] {
			s.schedule(e.t, &event{kind: evPop, proc: p})
		}
		return
	}
	s.stats[p].StealsDenied++
	s.trace(e.t, "steal-deny", p, e.victim, -1)
	if s.remaining == 0 {
		s.trace(e.t, "retire", p, -1, -1)
		return
	}
	if len(s.candidates[p]) > 0 {
		// Ask the next candidate of this round immediately.
		s.tryStealRound(p, e.t)
		return
	}
	// Round exhausted: back off exponentially, then start a new round.
	s.attempt[p]++
	backoff := s.cfg.Profile.LatencyRemote * math.Pow(2, float64(s.attempt[p]-1))
	maxB := s.cfg.MaxBackoff
	if maxB <= 0 {
		maxB = 16
	}
	if lim := s.cfg.Profile.LatencyRemote * maxB; backoff > lim {
		backoff = lim
	}
	s.schedule(e.t+backoff, &event{kind: evPop, proc: p})
}
