// Package dist simulates a distributed-memory machine executing region
// tasks under a work-stealing scheduler, in deterministic virtual time.
// It is the virtual-time implementation of the sched.Runtime interface;
// internal/exec is the real-goroutine one.
//
// It is the substitute for the paper's STAPL runtime on the Cray XE6 and
// Opteron cluster: P virtual processors each own a deque of region tasks;
// a task's cost is whatever work the real planner performs when the task
// runs (tasks are deterministic, so cost is independent of schedule);
// steal requests, replies and migrations travel as latency-weighted
// messages between processors (intra- vs inter-node latency per the
// machine profile). The simulation is event-driven and fully
// deterministic given the configuration seed, so strong-scaling sweeps to
// thousands of virtual processors run on any host.
package dist

import (
	"container/heap"
	"math"

	"parmp/internal/rng"
	"parmp/internal/sched"
	"parmp/internal/work"
)

// The scheduler-runtime contract (configuration, report, stats and trace
// types) is shared with the real executor through internal/sched.
type (
	// Config parameterizes a simulation run; Config.Workers is the
	// number of virtual processors.
	Config = sched.Config
	// Report is the outcome of a simulation, in virtual time.
	Report = sched.Report
	// ProcStats reports one virtual processor's execution profile.
	ProcStats = sched.WorkerStats
	// TraceEvent is one simulator occurrence, emitted through Config.Trace.
	TraceEvent = sched.TraceEvent
	// Tracer receives simulator events in virtual-time order.
	Tracer = sched.Tracer
)

// Runtime is the simulator as a pluggable scheduler backend.
var Runtime sched.Runtime = sched.RuntimeFunc(Run)

// event kinds.
const (
	evPop = iota
	evStealArrive
	evStealReply
)

type event struct {
	t    float64
	seq  int
	kind int
	proc int // target processor of the event

	// steal fields
	thief, victim int
	grant         []sched.Entry
}

type evHeap []*event

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *evHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// sim is the running simulation state.
type sim struct {
	cfg    Config
	events evHeap
	seq    int

	deque [][]sched.Entry
	busy  []bool
	stats []ProcStats
	rngs  []*rng.Stream
	// attempt counts failed steal rounds per thief since last success.
	attempt []int
	// candidates is the remaining victim list of the thief's current round.
	candidates [][]int
	// pending holds steal requests that arrived while the victim was
	// executing a task; they are serviced at the next poll point (task
	// completion), modelling non-preemptive RMI handling.
	pending   [][]*event
	remaining int

	report Report
}

func (s *sim) schedule(t float64, e *event) {
	e.t = t
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// Run executes the simulation. queues[p] is processor p's initial task
// assignment, executed front to back; steals take from the back. A queue
// count that differs from cfg.Workers is redistributed round-robin via
// sched.Reshard — the same path the host executor takes, per the
// sched.Runtime contract.
func Run(cfg Config, queues [][]work.Task) Report {
	if cfg.Workers <= 0 {
		panic("dist: Config.Workers must be positive")
	}
	queues = sched.Reshard(queues, cfg.Workers)
	s := &sim{
		cfg:        cfg,
		deque:      make([][]sched.Entry, cfg.Workers),
		busy:       make([]bool, cfg.Workers),
		stats:      make([]ProcStats, cfg.Workers),
		rngs:       make([]*rng.Stream, cfg.Workers),
		attempt:    make([]int, cfg.Workers),
		candidates: make([][]int, cfg.Workers),
		pending:    make([][]*event, cfg.Workers),
		report: Report{
			ExecutedBy: map[int]int{},
			Cost:       map[int]float64{},
			Payload:    map[int]int{},
			Elapsed:    map[int]float64{},
			TaskRegion: map[int]int{},
		},
	}
	for p := 0; p < cfg.Workers; p++ {
		s.rngs[p] = rng.Derive(cfg.Seed, uint64(p)+1)
		for _, t := range queues[p] {
			s.deque[p] = append(s.deque[p], sched.Entry{Task: t})
			s.remaining++
		}
	}
	s.report.TotalTasks = s.remaining
	for p := 0; p < cfg.Workers; p++ {
		s.schedule(0, &event{kind: evPop, proc: p})
	}
	for s.events.Len() > 0 {
		// Event boundaries are the simulator's cancellation checkpoints:
		// the nil fast path in sched.Canceled makes this free when no Stop
		// channel is configured, and a stopped run returns the partial
		// report (executed tasks keep their recorded costs).
		if sched.Canceled(cfg.Stop) {
			s.report.Stopped = true
			break
		}
		e := heap.Pop(&s.events).(*event)
		switch e.kind {
		case evPop:
			s.pop(e)
		case evStealArrive:
			s.stealArrive(e)
		case evStealReply:
			s.stealReply(e)
		}
	}
	for p := range s.stats {
		if s.stats[p].Finish > s.report.Makespan {
			s.report.Makespan = s.stats[p].Finish
		}
	}
	// Work stealing needs distributed termination detection: a processor
	// with an empty deque cannot distinguish "all done" from "work still
	// in flight" (the paper's Algorithm 3 outer loop). We charge
	// tree-based detection waves after global quiescence, priced like
	// barriers so the overhead grows with log2(P) as in practical
	// implementations; a serial token ring would scale O(P) and swamp the
	// stealing benefit at thousands of processors.
	if cfg.Policy != nil && cfg.Workers > 1 && s.report.TotalTasks > 0 && !s.report.Stopped {
		// Two barrier-equivalent reduction waves confirm quiescence.
		s.report.TerminationCost = 2 * cfg.Profile.Barrier(cfg.Workers)
		s.report.Makespan += s.report.TerminationCost
	}
	for p := range s.stats {
		s.stats[p].Idle = s.report.Makespan - s.stats[p].Busy
	}
	s.report.Workers = s.stats
	return s.report
}

// pop makes processor e.proc take its next task or begin stealing.
// Task completion is the processor's poll point: steal requests that
// arrived during the finished task are serviced first.
func (s *sim) pop(e *event) {
	p := e.proc
	s.busy[p] = false
	if len(s.pending[p]) > 0 {
		reqs := s.pending[p]
		s.pending[p] = nil
		for _, req := range reqs {
			s.serveSteal(req, e.t)
		}
	}
	if len(s.deque[p]) > 0 {
		q := s.deque[p][0]
		s.deque[p] = s.deque[p][1:]
		s.execute(p, q, e.t)
		return
	}
	s.tryStealRound(p, e.t)
}

// execute runs a task on p starting at time t.
func (s *sim) execute(p int, q sched.Entry, t float64) {
	s.busy[p] = true
	cost, payload := q.Task.Run()
	if cost < 0 || math.IsNaN(cost) {
		cost = 0
	}
	done := t + cost
	s.stats[p].Busy += cost
	if done > s.stats[p].Finish {
		s.stats[p].Finish = done
	}
	if q.Stolen {
		s.stats[p].TasksStolen++
	} else {
		s.stats[p].TasksLocal++
	}
	s.traceExec(t, p, q.Task.ID, cost)
	s.report.ExecutedBy[q.Task.ID] = p
	s.report.Cost[q.Task.ID] = cost
	s.report.Payload[q.Task.ID] = payload
	// In virtual time a task occupies its worker for exactly its reported
	// cost, so Elapsed == Cost is the simulator's half of the parity
	// contract (the executor records measured wall time instead).
	s.report.Elapsed[q.Task.ID] = cost
	s.report.TaskRegion[q.Task.ID] = q.Task.Region
	s.remaining--
	s.attempt[p] = 0
	s.candidates[p] = nil
	s.schedule(done, &event{kind: evPop, proc: p})
}

// tryStealRound starts or continues a steal round for thief p at time t.
// Every retirement path emits a "retire" trace event — the executor does
// the same, so the two backends' trace streams agree on worker lifecycle
// (asserted by the parity tests in internal/sched).
func (s *sim) tryStealRound(p int, t float64) {
	if s.cfg.Policy == nil || s.cfg.Workers <= 1 {
		return // stealing disabled: no thief lifecycle, no retire event
	}
	if s.remaining == 0 {
		s.trace(t, "retire", p, -1, -1)
		return // all work executed: retire into termination detection
	}
	if s.cfg.MaxRounds > 0 && s.attempt[p] >= s.cfg.MaxRounds {
		s.trace(t, "retire", p, -1, -1)
		return // too many failed rounds: give up
	}
	if len(s.candidates[p]) == 0 {
		s.candidates[p] = s.cfg.Policy.Victims(p, s.cfg.Workers, s.attempt[p], s.rngs[p])
		if len(s.candidates[p]) == 0 {
			// Policy has nobody to ask (e.g. mesh corner in a tiny
			// system); retire.
			s.trace(t, "retire", p, -1, -1)
			return
		}
	}
	v := s.candidates[p][0]
	s.candidates[p] = s.candidates[p][1:]
	s.stats[p].StealsIssued++
	s.trace(t, "steal-req", p, v, -1)
	s.schedule(t+s.cfg.Profile.Latency(p, v),
		&event{kind: evStealArrive, proc: v, thief: p, victim: v})
}

// stealArrive receives a steal request at the victim. A busy victim
// (non-preemptively executing a region) queues the request until its next
// poll point; an idle one serves it immediately.
func (s *sim) stealArrive(e *event) {
	v := e.victim
	if s.busy[v] {
		s.pending[v] = append(s.pending[v], e)
		return
	}
	s.serveSteal(e, e.t)
}

// serveSteal answers a steal request at time t. Ownership transfer is not
// free: the reply carries each stolen region's descriptor and any data
// already attached to it (its Payload), priced like a migration.
func (s *sim) serveSteal(e *event, t float64) {
	v, thief := e.victim, e.thief
	var grant []sched.Entry
	transfer := 0.0
	s.deque[v], grant = sched.StealBack(s.deque[v], s.cfg.Chunk())
	for i := range grant {
		transfer += s.cfg.Profile.MigrateFixed +
			s.cfg.Profile.MigratePerVertex*float64(grant[i].Task.Payload)
	}
	s.stats[v].TasksLost += len(grant)
	reply := &event{kind: evStealReply, proc: thief, thief: thief, victim: v, grant: grant}
	s.schedule(t+s.cfg.Profile.StealHandling+s.cfg.Profile.Latency(v, thief)+transfer, reply)
}

// stealReply delivers the victim's response to the thief.
func (s *sim) stealReply(e *event) {
	p := e.thief
	if len(e.grant) > 0 {
		s.stats[p].StealsGranted++
		s.trace(e.t, "steal-grant", p, e.victim, e.grant[0].Task.ID)
		s.deque[p] = append(s.deque[p], e.grant...)
		s.attempt[p] = 0
		s.candidates[p] = nil
		if !s.busy[p] {
			s.schedule(e.t, &event{kind: evPop, proc: p})
		}
		return
	}
	s.stats[p].StealsDenied++
	s.trace(e.t, "steal-deny", p, e.victim, -1)
	if s.remaining == 0 {
		s.trace(e.t, "retire", p, -1, -1)
		return
	}
	if len(s.candidates[p]) > 0 {
		// Ask the next candidate of this round immediately.
		s.tryStealRound(p, e.t)
		return
	}
	// Round exhausted: back off exponentially, then start a new round.
	s.attempt[p]++
	backoff := sched.Backoff(s.attempt[p], s.cfg.Profile.LatencyRemote, s.cfg.MaxBackoff)
	s.schedule(e.t+backoff, &event{kind: evPop, proc: p})
}
