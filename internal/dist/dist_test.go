package dist

import (
	"math"
	"testing"
	"testing/quick"

	"parmp/internal/rng"
	"parmp/internal/steal"
	"parmp/internal/work"
)

// fixedTasks builds one queue per processor from cost rows.
func fixedTasks(rows [][]float64) [][]work.Task {
	queues := make([][]work.Task, len(rows))
	id := 0
	for p, costs := range rows {
		for _, c := range costs {
			c := c
			queues[p] = append(queues[p], work.Task{
				ID:  id,
				Run: func() (float64, int) { return c, 1 },
			})
			id++
		}
	}
	return queues
}

func testProfile() work.MachineProfile {
	return work.MachineProfile{
		Name: "test", CoresPerNode: 4,
		LatencyLocal: 1, LatencyRemote: 5,
		StealHandling: 1, MigrateFixed: 1, MigratePerVertex: 1,
		LocalAccess: 1, RemoteAccess: 5, BarrierPerLog: 1,
	}
}

func TestNoStealingSequential(t *testing.T) {
	queues := fixedTasks([][]float64{{10, 10}, {1}})
	rep := Run(Config{Workers: 2, Profile: testProfile()}, queues)
	if rep.Makespan != 20 {
		t.Fatalf("makespan = %v, want 20", rep.Makespan)
	}
	if rep.Workers[0].Busy != 20 || rep.Workers[1].Busy != 1 {
		t.Fatalf("busy = %+v", rep.Workers)
	}
	if rep.Workers[1].Idle != 19 {
		t.Fatalf("idle = %v, want 19", rep.Workers[1].Idle)
	}
	if rep.Workers[0].TasksLocal != 2 || rep.Workers[0].TasksStolen != 0 {
		t.Fatalf("task counts = %+v", rep.Workers[0])
	}
	if rep.TotalTasks != 3 {
		t.Fatalf("TotalTasks = %d", rep.TotalTasks)
	}
}

func TestStealingReducesMakespan(t *testing.T) {
	// Proc 0 has lots of small tasks; proc 1 has nothing.
	costs := make([]float64, 40)
	for i := range costs {
		costs[i] = 10
	}
	queues := [][]float64{costs, {}}
	noLB := Run(Config{Workers: 2, Profile: testProfile()}, fixedTasks(queues))
	ws := Run(Config{Workers: 2, Profile: testProfile(), Policy: steal.RandK{K: 1}, Seed: 1}, fixedTasks(queues))
	if noLB.Makespan != 400 {
		t.Fatalf("noLB makespan = %v", noLB.Makespan)
	}
	if ws.Makespan >= noLB.Makespan*0.75 {
		t.Fatalf("stealing makespan %v should be well below %v", ws.Makespan, noLB.Makespan)
	}
	if ws.Workers[1].TasksStolen == 0 {
		t.Fatal("proc 1 should have executed stolen tasks")
	}
	if ws.Workers[0].TasksLost == 0 {
		t.Fatal("proc 0 should have lost tasks")
	}
}

func TestAllTasksExecutedExactlyOnce(t *testing.T) {
	rows := [][]float64{{5, 7, 3, 9, 2}, {}, {1}, {}}
	rep := Run(Config{Workers: 4, Profile: testProfile(), Policy: steal.Hybrid{K: 2}, Seed: 7}, fixedTasks(rows))
	if len(rep.ExecutedBy) != 6 {
		t.Fatalf("executed %d tasks, want 6", len(rep.ExecutedBy))
	}
	total := 0
	for _, ps := range rep.Workers {
		total += ps.TasksLocal + ps.TasksStolen
	}
	if total != 6 {
		t.Fatalf("task count sum = %d", total)
	}
	// Conservation: busy sum equals cost sum.
	var busySum, costSum float64
	for _, ps := range rep.Workers {
		busySum += ps.Busy
	}
	for _, c := range rep.Cost {
		costSum += c
	}
	if math.Abs(busySum-costSum) > 1e-9 {
		t.Fatalf("busy %v != cost %v", busySum, costSum)
	}
}

func TestDeterminism(t *testing.T) {
	rows := [][]float64{{5, 7, 3}, {2}, {9, 9, 9, 9}, {}}
	cfg := Config{Workers: 4, Profile: testProfile(), Policy: steal.RandK{K: 2}, Seed: 99}
	a := Run(cfg, fixedTasks(rows))
	b := Run(cfg, fixedTasks(rows))
	if a.Makespan != b.Makespan {
		t.Fatalf("makespans differ: %v vs %v", a.Makespan, b.Makespan)
	}
	for p := range a.Workers {
		if a.Workers[p] != b.Workers[p] {
			t.Fatalf("proc %d stats differ", p)
		}
	}
	for id, proc := range a.ExecutedBy {
		if b.ExecutedBy[id] != proc {
			t.Fatalf("task %d executed by %d vs %d", id, proc, b.ExecutedBy[id])
		}
	}
}

func TestStealFromBack(t *testing.T) {
	// Proc 0: tasks 0..3 in order. A thief must receive the back half
	// (ids 2,3), leaving the front for the owner.
	rows := [][]float64{{100, 100, 100, 100}, {}}
	rep := Run(Config{Workers: 2, Profile: testProfile(), Policy: steal.RandK{K: 1}, Seed: 1, StealChunk: 0.5}, fixedTasks(rows))
	if rep.ExecutedBy[0] != 0 || rep.ExecutedBy[1] != 0 {
		t.Fatalf("front tasks should stay with owner: %v", rep.ExecutedBy)
	}
	if rep.ExecutedBy[2] != 1 && rep.ExecutedBy[3] != 1 {
		t.Fatalf("back tasks should migrate: %v", rep.ExecutedBy)
	}
}

func TestNoStealWhenBalanced(t *testing.T) {
	// Perfectly balanced queues: stealing should not help nor hurt much
	// (paper's free environment shows no significant overhead).
	rows := [][]float64{{10, 10}, {10, 10}, {10, 10}, {10, 10}}
	noLB := Run(Config{Workers: 4, Profile: testProfile()}, fixedTasks(rows))
	ws := Run(Config{Workers: 4, Profile: testProfile(), Policy: steal.Diffusive{}, Seed: 3}, fixedTasks(rows))
	// Beyond the unavoidable termination-detection ring, stealing must add
	// no meaningful overhead to a balanced run.
	if ws.Makespan-ws.TerminationCost > noLB.Makespan*1.2 {
		t.Fatalf("stealing overhead too high: %v (term %v) vs %v",
			ws.Makespan, ws.TerminationCost, noLB.Makespan)
	}
}

func TestMakespanLowerBound(t *testing.T) {
	// Makespan can never beat total/P nor the largest task.
	rows := [][]float64{{50, 1, 1, 1, 1, 1, 1}, {}, {}, {}}
	rep := Run(Config{Workers: 4, Profile: testProfile(), Policy: steal.Hybrid{K: 3}, Seed: 5}, fixedTasks(rows))
	if rep.Makespan < 50 {
		t.Fatalf("makespan %v below biggest task", rep.Makespan)
	}
	var total float64
	for _, c := range rep.Cost {
		total += c
	}
	if rep.Makespan < total/4 {
		t.Fatalf("makespan %v below work bound %v", rep.Makespan, total/4)
	}
}

func TestSingleProcWithPolicy(t *testing.T) {
	rows := [][]float64{{3, 4}}
	rep := Run(Config{Workers: 1, Profile: testProfile(), Policy: steal.RandK{K: 8}, Seed: 1}, fixedTasks(rows))
	if rep.Makespan != 7 {
		t.Fatalf("makespan = %v", rep.Makespan)
	}
}

func TestEmptySystem(t *testing.T) {
	rep := Run(Config{Workers: 3, Profile: testProfile(), Policy: steal.Diffusive{}}, [][]work.Task{{}, {}, {}})
	if rep.Makespan != 0 || rep.TotalTasks != 0 {
		t.Fatalf("empty system: %+v", rep)
	}
}

func TestQueueMismatchReshards(t *testing.T) {
	// Regression: a queue count differing from Workers used to panic here
	// while the host executor silently re-sharded — both backends now take
	// the shared sched.Reshard round-robin path.
	rows := [][]float64{{3, 3, 3, 3, 3}} // one queue, five tasks, two workers
	rep := Run(Config{Workers: 2, Profile: testProfile()}, fixedTasks(rows))
	if rep.TotalTasks != 5 {
		t.Fatalf("TotalTasks = %d, want 5", rep.TotalTasks)
	}
	if len(rep.ExecutedBy) != 5 {
		t.Fatalf("ExecutedBy has %d entries, want 5", len(rep.ExecutedBy))
	}
	// Round-robin re-shard: tasks 0,2,4 on worker 0; tasks 1,3 on worker 1.
	for id, want := range map[int]int{0: 0, 1: 1, 2: 0, 3: 1, 4: 0} {
		if got := rep.ExecutedBy[id]; got != want {
			t.Errorf("task %d executed by %d, want %d (round-robin)", id, got, want)
		}
	}
}

func TestPanicsOnNonPositiveWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Config{Workers: 0, Profile: testProfile()}, nil)
}

func TestStealCountsConsistent(t *testing.T) {
	rows := [][]float64{{5, 5, 5, 5, 5, 5, 5, 5}, {}, {}, {}}
	rep := Run(Config{Workers: 4, Profile: testProfile(), Policy: steal.RandK{K: 2}, Seed: 11}, fixedTasks(rows))
	for p, ps := range rep.Workers {
		if ps.StealsIssued < ps.StealsGranted+ps.StealsDenied {
			t.Fatalf("proc %d: issued %d < granted %d + denied %d",
				p, ps.StealsIssued, ps.StealsGranted, ps.StealsDenied)
		}
	}
	// A queued task may be re-stolen before it runs, so transfer events
	// (lost) can exceed stolen executions, but never the reverse.
	var lost, stolen int
	for _, ps := range rep.Workers {
		lost += ps.TasksLost
		stolen += ps.TasksStolen
	}
	if lost < stolen {
		t.Fatalf("tasks lost %d < tasks stolen %d", lost, stolen)
	}
	if stolen == 0 {
		t.Fatal("this workload must trigger stealing")
	}
}

func TestImbalanceDecaysWithMoreProcs(t *testing.T) {
	// Strong scaling: same workload, growing P. Stealing benefit must
	// decay as regions per processor shrink (paper Figs 5, 10).
	nTasks := 64
	makeRows := func(p int) [][]float64 {
		rows := make([][]float64, p)
		// All work concentrated on the first quarter of processors.
		for i := 0; i < nTasks; i++ {
			owner := i % (p / 4)
			rows[owner] = append(rows[owner], 10)
		}
		return rows
	}
	speedup := func(p int) float64 {
		rows := makeRows(p)
		noLB := Run(Config{Workers: p, Profile: testProfile()}, fixedTasks(rows))
		ws := Run(Config{Workers: p, Profile: testProfile(), Policy: steal.Hybrid{K: 4}, Seed: 2}, fixedTasks(rows))
		return noLB.Makespan / ws.Makespan
	}
	s8, s32 := speedup(8), speedup(32)
	if s8 <= 1.2 {
		t.Fatalf("speedup at 8 procs = %v, expected substantial", s8)
	}
	if s32 >= s8 {
		t.Fatalf("benefit should decay: s8=%v s32=%v", s8, s32)
	}
}

func TestStaticPhase(t *testing.T) {
	mk, per := StaticPhase([][]float64{{1, 2, 3}, {10}, {}})
	if mk != 10 {
		t.Fatalf("makespan = %v", mk)
	}
	if per[0] != 6 || per[1] != 10 || per[2] != 0 {
		t.Fatalf("perProc = %v", per)
	}
}

func TestTerminationDetectionCharged(t *testing.T) {
	rows := [][]float64{{5, 5}, {5, 5}}
	noLB := Run(Config{Workers: 2, Profile: testProfile()}, fixedTasks(rows))
	if noLB.TerminationCost != 0 {
		t.Fatal("static runs need no termination detection")
	}
	ws := Run(Config{Workers: 2, Profile: testProfile(), Policy: steal.RandK{K: 1}, Seed: 1}, fixedTasks(rows))
	if ws.TerminationCost <= 0 {
		t.Fatal("stealing runs must pay termination detection")
	}
	if ws.Makespan < noLB.Makespan {
		t.Fatal("balanced workload: stealing cannot beat static here")
	}
	// Termination cost grows with P.
	ws8 := Run(Config{Workers: 8, Profile: testProfile(), Policy: steal.RandK{K: 1}, Seed: 1},
		fixedTasks([][]float64{{5}, {5}, {5}, {5}, {5}, {5}, {5}, {5}}))
	if ws8.TerminationCost <= ws.TerminationCost {
		t.Fatalf("termination cost should grow with P: %v vs %v", ws8.TerminationCost, ws.TerminationCost)
	}
}

func TestSimulatorInvariantsProperty(t *testing.T) {
	// For random workloads and policies, the simulation must satisfy:
	// every task executes exactly once; makespan >= max(total/P, max
	// task); busy time sums to total cost; stats are non-negative.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := 2 + r.Intn(10)
		rows := make([][]float64, p)
		total := 0.0
		maxTask := 0.0
		nTasks := 0
		for i := 0; i < p; i++ {
			for j := 0; j < r.Intn(12); j++ {
				c := 1 + r.Float64()*20
				rows[i] = append(rows[i], c)
				total += c
				if c > maxTask {
					maxTask = c
				}
				nTasks++
			}
		}
		policies := []steal.Policy{nil, steal.RandK{K: 2}, steal.Diffusive{}, steal.Hybrid{K: 3}}
		pol := policies[r.Intn(len(policies))]
		rep := Run(Config{Workers: p, Profile: testProfile(), Policy: pol, Seed: seed}, fixedTasks(rows))
		if len(rep.ExecutedBy) != nTasks {
			return false
		}
		if nTasks > 0 && rep.Makespan+1e-9 < maxTask {
			return false
		}
		if nTasks > 0 && rep.Makespan+1e-9 < total/float64(p) {
			return false
		}
		var busy float64
		count := 0
		for _, ps := range rep.Workers {
			if ps.Busy < 0 || ps.Idle < -1e-9 || ps.TasksLocal < 0 || ps.TasksStolen < 0 {
				return false
			}
			busy += ps.Busy
			count += ps.TasksLocal + ps.TasksStolen
		}
		if count != nTasks {
			return false
		}
		return math.Abs(busy-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
