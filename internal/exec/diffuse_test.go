package exec

import (
	"testing"

	"parmp/internal/work"
)

func flatIDs(queues [][]work.Task) map[int]int {
	out := map[int]int{}
	for p, q := range queues {
		for _, t := range q {
			out[t.ID] = p
		}
	}
	return out
}

func loadsOf(queues [][]work.Task, est func(work.Task) float64) []float64 {
	loads := make([]float64, len(queues))
	for p, q := range queues {
		for _, t := range q {
			loads[p] += est(t)
		}
	}
	return loads
}

// TestDiffuseBalancesSkewedQueues piles uniform-cost tasks onto worker 0
// of a 2x2 mesh and asserts diffusion spreads them: every task survives
// exactly once, no pair of mesh neighbors differs by more than one task
// cost, and the imbalance strictly improves.
func TestDiffuseBalancesSkewedQueues(t *testing.T) {
	const workers, tasks = 4, 32
	queues := make([][]work.Task, workers)
	for i := 0; i < tasks; i++ {
		queues[0] = append(queues[0], work.Task{ID: i, Region: i})
	}
	est := func(work.Task) float64 { return 1 }

	moved := Diffuse(queues, est, 8)
	if moved == 0 {
		t.Fatal("no tasks moved off the loaded worker")
	}
	placed := flatIDs(queues)
	if len(placed) != tasks {
		t.Fatalf("placed %d distinct tasks, want %d", len(placed), tasks)
	}
	total := 0
	for _, q := range queues {
		total += len(q)
	}
	if total != tasks {
		t.Fatalf("queues hold %d tasks, want %d", total, tasks)
	}
	loads := loadsOf(queues, est)
	// Unit costs on a connected mesh: pairwise-balanced means max and min
	// within one task of each other across the whole mesh is too strong
	// (diffusion is neighbor-local), but the loaded corner must have
	// shed to near the mean, and no queue may exceed the original pile.
	mean := float64(tasks) / workers
	if loads[0] > 2*mean {
		t.Fatalf("worker 0 kept load %v, want <= %v after diffusion", loads[0], 2*mean)
	}
	for p, l := range loads {
		if l == float64(tasks) {
			t.Fatalf("worker %d still holds everything", p)
		}
		if l < 0 {
			t.Fatalf("worker %d negative load %v", p, l)
		}
	}
}

// TestDiffuseDeterministic: same input, same placement — the pipeline
// replays diffusion in virtual-time runs, so ordering must be fixed.
func TestDiffuseDeterministic(t *testing.T) {
	build := func() [][]work.Task {
		queues := make([][]work.Task, 6)
		for i := 0; i < 40; i++ {
			queues[i%2] = append(queues[i%2], work.Task{ID: i, Region: i})
		}
		return queues
	}
	est := func(t work.Task) float64 { return float64(1 + t.ID%7) }
	a, b := build(), build()
	movedA := Diffuse(a, est, 4)
	movedB := Diffuse(b, est, 4)
	if movedA != movedB {
		t.Fatalf("moved %d vs %d across identical runs", movedA, movedB)
	}
	pa, pb := flatIDs(a), flatIDs(b)
	for id, w := range pa {
		if pb[id] != w {
			t.Fatalf("task %d placed on %d vs %d across identical runs", id, w, pb[id])
		}
	}
	for p := range a {
		if len(a[p]) != len(b[p]) {
			t.Fatalf("worker %d queue length %d vs %d", p, len(a[p]), len(b[p]))
		}
		for i := range a[p] {
			if a[p][i].ID != b[p][i].ID {
				t.Fatalf("worker %d slot %d holds task %d vs %d", p, i, a[p][i].ID, b[p][i].ID)
			}
		}
	}
}

// TestDiffuseZeroEstimateNoOp: tasks the model prices at zero never
// move — an all-cold estimate must not churn ownership.
func TestDiffuseZeroEstimateNoOp(t *testing.T) {
	queues := make([][]work.Task, 4)
	for i := 0; i < 10; i++ {
		queues[0] = append(queues[0], work.Task{ID: i})
	}
	if moved := Diffuse(queues, func(work.Task) float64 { return 0 }, 4); moved != 0 {
		t.Fatalf("moved %d zero-cost tasks, want 0", moved)
	}
	if len(queues[0]) != 10 {
		t.Fatalf("worker 0 holds %d tasks, want 10", len(queues[0]))
	}
}

// TestDiffuseBalancedInputUntouched: a balanced assignment is a fixed
// point — no move strictly improves a pair, so nothing moves and the
// early-out terminates after one sweep regardless of the sweep budget.
func TestDiffuseBalancedInputUntouched(t *testing.T) {
	queues := make([][]work.Task, 4)
	for i := 0; i < 16; i++ {
		queues[i%4] = append(queues[i%4], work.Task{ID: i})
	}
	if moved := Diffuse(queues, func(work.Task) float64 { return 1 }, 1000); moved != 0 {
		t.Fatalf("moved %d tasks from a balanced assignment, want 0", moved)
	}
}

// TestDiffuseSingleWorker and degenerate inputs.
func TestDiffuseSingleWorker(t *testing.T) {
	queues := [][]work.Task{{{ID: 0}, {ID: 1}}}
	if moved := Diffuse(queues, func(work.Task) float64 { return 1 }, 3); moved != 0 {
		t.Fatalf("moved %d on a single worker, want 0", moved)
	}
	if moved := Diffuse(nil, func(work.Task) float64 { return 1 }, 3); moved != 0 {
		t.Fatalf("moved %d on nil queues, want 0", moved)
	}
}
