package exec

import (
	"sync/atomic"
	"testing"
	"time"

	"parmp/internal/steal"
	"parmp/internal/work"
)

// makeTasks builds n tasks that count their executions into ran.
func makeTasks(n int, ran *int64, delay time.Duration) []work.Task {
	ts := make([]work.Task, n)
	for i := 0; i < n; i++ {
		ts[i] = work.Task{
			ID: i,
			Run: func() (float64, int) {
				if delay > 0 {
					time.Sleep(delay)
				}
				atomic.AddInt64(ran, 1)
				return 1, 0
			},
		}
	}
	return ts
}

func TestAllTasksRunOnce(t *testing.T) {
	var ran int64
	tasks := makeTasks(100, &ran, 0)
	queues := [][]work.Task{tasks, nil, nil, nil}
	rep := Run(Config{Workers: 4, Policy: steal.RandK{K: 3}, Seed: 1}, queues)
	if ran != 100 {
		t.Fatalf("ran %d tasks, want 100", ran)
	}
	if len(rep.ExecutedBy) != 100 {
		t.Fatalf("ExecutedBy has %d entries", len(rep.ExecutedBy))
	}
	total := 0
	for _, ws := range rep.Workers {
		total += ws.TasksLocal + ws.TasksStolen
	}
	if total != 100 {
		t.Fatalf("task counts sum to %d", total)
	}
}

func TestStealingSpreadsWork(t *testing.T) {
	var ran int64
	tasks := makeTasks(64, &ran, 200*time.Microsecond)
	queues := [][]work.Task{tasks, nil, nil, nil}
	rep := Run(Config{Workers: 4, Policy: steal.Hybrid{K: 3}, Seed: 2}, queues)
	stolen := 0
	for _, ws := range rep.Workers {
		stolen += ws.TasksStolen
	}
	if stolen == 0 {
		t.Fatal("no tasks stolen from a fully imbalanced queue")
	}
	if ran != 64 {
		t.Fatalf("ran %d, want 64", ran)
	}
}

func TestNoPolicyDrainsOwnQueues(t *testing.T) {
	var ran int64
	queues := [][]work.Task{
		makeTasks(10, &ran, 0),
		nil,
	}
	rep := Run(Config{Workers: 2, Seed: 3}, queues)
	if ran != 10 {
		t.Fatalf("ran %d, want 10", ran)
	}
	if rep.Workers[1].TasksLocal+rep.Workers[1].TasksStolen != 0 {
		t.Fatal("worker 1 should have done nothing without a policy")
	}
}

func TestReshardWhenQueueCountMismatch(t *testing.T) {
	var ran int64
	queues := [][]work.Task{makeTasks(30, &ran, 0)} // 1 queue, 3 workers
	Run(Config{Workers: 3, Policy: steal.Diffusive{}, Seed: 4}, queues)
	if ran != 30 {
		t.Fatalf("ran %d, want 30", ran)
	}
}

func TestSingleWorker(t *testing.T) {
	var ran int64
	queues := [][]work.Task{makeTasks(5, &ran, 0)}
	rep := Run(Config{Workers: 1, Policy: steal.RandK{K: 8}, Seed: 5}, queues)
	if ran != 5 || rep.Workers[0].TasksLocal != 5 {
		t.Fatalf("single worker ran %d local %d", ran, rep.Workers[0].TasksLocal)
	}
}

func TestEmptyRun(t *testing.T) {
	rep := Run(Config{Workers: 2, Policy: steal.Diffusive{}}, [][]work.Task{nil, nil})
	if len(rep.ExecutedBy) != 0 {
		t.Fatal("nothing should have run")
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	var ran int64
	queues := [][]work.Task{makeTasks(8, &ran, 0)}
	Run(Config{Seed: 6}, queues) // default workers; reshard handles mismatch
	if ran != 8 {
		t.Fatalf("ran %d, want 8", ran)
	}
}
