// Package exec is the real shared-memory counterpart of the simulated
// machine in internal/dist: a goroutine-based work-stealing executor that
// runs region tasks on actual OS threads, using the same victim-selection
// policies (steal.Policy) as the simulator.
//
// Use it when planning for real (the library's normal mode on a multicore
// host); use internal/dist when reproducing the paper's strong-scaling
// figures with thousands of virtual processors.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parmp/internal/rng"
	"parmp/internal/steal"
	"parmp/internal/work"
)

// Config parameterizes a run.
type Config struct {
	// Workers is the number of goroutines (default GOMAXPROCS).
	Workers int
	// Policy selects steal victims; nil disables stealing (workers only
	// drain their own queues).
	Policy steal.Policy
	// Seed drives victim randomization.
	Seed uint64
	// StealChunk is the fraction of a victim's pending queue taken per
	// steal (default 0.5).
	StealChunk float64
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) stealChunk() float64 {
	if c.StealChunk <= 0 || c.StealChunk > 1 {
		return 0.5
	}
	return c.StealChunk
}

// WorkerStats reports one worker's execution profile.
type WorkerStats struct {
	TasksLocal  int
	TasksStolen int
	StealsOK    int
	StealsFail  int
	Busy        time.Duration
}

// Report is the outcome of a run.
type Report struct {
	Wall    time.Duration
	Workers []WorkerStats
	// ExecutedBy[taskID] is the worker that ran the task.
	ExecutedBy map[int]int
}

// queued tags tasks with their provenance.
type queued struct {
	task   work.Task
	stolen bool
}

// deque is a mutex-protected double-ended task queue: the owner pops from
// the front, thieves take a chunk from the back.
type deque struct {
	mu    sync.Mutex
	items []queued
}

func (d *deque) popFront() (queued, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return queued{}, false
	}
	q := d.items[0]
	d.items = d.items[1:]
	return q, true
}

func (d *deque) stealBack(frac float64) []queued {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil
	}
	take := int(float64(n) * frac)
	if take < 1 {
		take = 1
	}
	grant := make([]queued, take)
	copy(grant, d.items[n-take:])
	d.items = d.items[:n-take]
	for i := range grant {
		grant[i].stolen = true
	}
	return grant
}

func (d *deque) pushBack(qs []queued) {
	d.mu.Lock()
	d.items = append(d.items, qs...)
	d.mu.Unlock()
}

// Run executes the per-worker task queues to completion and returns the
// execution profile. Task closures run concurrently; they must be safe
// to run in parallel with each other (region tasks are: each touches only
// its own region's data).
func Run(cfg Config, queues [][]work.Task) Report {
	w := cfg.workers()
	if len(queues) != w {
		// Re-shard: distribute the given queues round-robin over workers.
		resharded := make([][]work.Task, w)
		i := 0
		for _, q := range queues {
			for _, t := range q {
				resharded[i%w] = append(resharded[i%w], t)
				i++
			}
		}
		queues = resharded
	}

	deques := make([]*deque, w)
	var remaining int64
	for i := 0; i < w; i++ {
		deques[i] = &deque{}
		for _, t := range queues[i] {
			deques[i].items = append(deques[i].items, queued{task: t})
			remaining++
		}
	}

	stats := make([]WorkerStats, w)
	executedBy := make([]map[int]int, w)
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < w; id++ {
		id := id
		executedBy[id] = map[int]int{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rng.Derive(cfg.Seed, uint64(id)+1)
			attempt := 0
			for atomic.LoadInt64(&remaining) > 0 {
				if q, ok := deques[id].popFront(); ok {
					t0 := time.Now()
					q.task.Run()
					stats[id].Busy += time.Since(t0)
					executedBy[id][q.task.ID] = id
					if q.stolen {
						stats[id].TasksStolen++
					} else {
						stats[id].TasksLocal++
					}
					atomic.AddInt64(&remaining, -1)
					attempt = 0
					continue
				}
				if cfg.Policy == nil || w == 1 {
					return
				}
				stole := false
				for _, v := range cfg.Policy.Victims(id, w, attempt, r) {
					if grant := deques[v].stealBack(cfg.stealChunk()); len(grant) > 0 {
						deques[id].pushBack(grant)
						stats[id].StealsOK++
						stole = true
						break
					}
					stats[id].StealsFail++
				}
				if stole {
					attempt = 0
					continue
				}
				attempt++
				// Nothing stealable right now: yield and re-check; the
				// remaining counter bounds the loop.
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()

	rep := Report{
		Wall:       time.Since(start),
		Workers:    stats,
		ExecutedBy: map[int]int{},
	}
	for id := range executedBy {
		for task, worker := range executedBy[id] {
			rep.ExecutedBy[task] = worker
		}
	}
	return rep
}
