// Package exec is the real shared-memory counterpart of the simulated
// machine in internal/dist: a goroutine-based work-stealing executor that
// runs region tasks on actual OS threads, using the same victim-selection
// policies (steal.Policy) and the same sched.Runtime contract as the
// simulator.
//
// Use it when planning for real (the library's normal mode on a multicore
// host); use internal/dist when reproducing the paper's strong-scaling
// figures with thousands of virtual processors.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parmp/internal/rng"
	"parmp/internal/sched"
	"parmp/internal/work"
)

// The scheduler-runtime contract is shared with the simulator through
// internal/sched.
type (
	// Config parameterizes a run; Config.Workers is the number of
	// goroutines (default GOMAXPROCS). Profile is ignored: the executor
	// pays real costs. MaxBackoff caps the idle-thief sleep backoff just
	// as it caps the simulator's virtual-time backoff.
	Config = sched.Config
	// Report is the outcome of a run; times are wall-clock seconds.
	Report = sched.Report
	// WorkerStats reports one worker's execution profile.
	WorkerStats = sched.WorkerStats
)

// Runtime is the host executor as a pluggable scheduler backend.
var Runtime sched.Runtime = sched.RuntimeFunc(Run)

// stealBackoffBase is the first idle-thief sleep after a fully failed
// steal round; successive failures double it up to Config.MaxBackoff
// (default 16x) times this base, via the shared sched.Backoff curve.
const stealBackoffBase = 20 * time.Microsecond

func workers(cfg Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// deque is a mutex-protected double-ended task queue: the owner pops from
// the front, thieves take a chunk from the back. Steal accounting
// (tasks lost to thieves) happens under the same lock.
type deque struct {
	mu    sync.Mutex
	items []sched.Entry
	lost  int
}

func (d *deque) popFront() (sched.Entry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return sched.Entry{}, false
	}
	q := d.items[0]
	d.items = d.items[1:]
	return q, true
}

// stealBack removes one steal quantum (sched.TakeCount: ceil(n*chunk),
// the same rounding as the simulator) from the back of the deque.
func (d *deque) stealBack(chunk float64) []sched.Entry {
	d.mu.Lock()
	defer d.mu.Unlock()
	var grant []sched.Entry
	d.items, grant = sched.StealBack(d.items, chunk)
	d.lost += len(grant)
	return grant
}

func (d *deque) pushBack(qs []sched.Entry) {
	d.mu.Lock()
	d.items = append(d.items, qs...)
	d.mu.Unlock()
}

// workerState accumulates one worker's results without sharing.
type workerState struct {
	busy       time.Duration
	finish     time.Duration
	local      int
	stolen     int
	issued     int
	granted    int
	denied     int
	executedBy map[int]int
	cost       map[int]float64
	payload    map[int]int
	elapsed    map[int]float64
	region     map[int]int
}

// Run executes the per-worker task queues to completion and returns the
// execution profile. Task closures run concurrently; they must be safe
// to run in parallel with each other (region tasks are: each touches only
// its own region's data).
func Run(cfg Config, queues [][]work.Task) Report {
	w := workers(cfg)
	// Mismatched queue counts redistribute round-robin through the shared
	// sched.Reshard path, identically to the simulator.
	queues = sched.Reshard(queues, w)

	deques := make([]*deque, w)
	var stopped atomic.Bool
	var remaining int64
	for i := 0; i < w; i++ {
		deques[i] = &deque{}
		for _, t := range queues[i] {
			deques[i].items = append(deques[i].items, sched.Entry{Task: t})
			remaining++
		}
	}
	totalTasks := int(remaining)

	// Trace events from concurrent workers are serialized by a mutex; the
	// stream is real-time-ordered per worker but interleaved across them.
	var traceMu sync.Mutex
	start := time.Now()
	emit := func(kind string, proc, peer, task int) {
		if cfg.Trace == nil {
			return
		}
		traceMu.Lock()
		cfg.Trace(sched.TraceEvent{
			Time: time.Since(start).Seconds(), Kind: kind, Proc: proc, Peer: peer, Task: task,
		})
		traceMu.Unlock()
	}
	// Execution spans carry the task's start time and measured duration,
	// matching the simulator's exec events (start + cost), so trace
	// exporters see the same shape from both backends.
	emitExec := func(proc, task int, t0 time.Time, dur time.Duration) {
		if cfg.Trace == nil {
			return
		}
		traceMu.Lock()
		cfg.Trace(sched.TraceEvent{
			Time: t0.Sub(start).Seconds(), Kind: "exec", Proc: proc, Peer: -1, Task: task,
			Dur: dur.Seconds(),
		})
		traceMu.Unlock()
	}

	states := make([]workerState, w)
	var wg sync.WaitGroup
	for id := 0; id < w; id++ {
		id := id
		states[id] = workerState{
			executedBy: map[int]int{},
			cost:       map[int]float64{},
			payload:    map[int]int{},
			elapsed:    map[int]float64{},
			region:     map[int]int{},
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := &states[id]
			r := rng.Derive(cfg.Seed, uint64(id)+1)
			stealing := cfg.Policy != nil && w > 1
			attempt := 0
			for {
				// Cooperative cancellation: between tasks is the worker's
				// checkpoint, so a running task finishes (its result stays
				// valid) and no new one starts after the stop fires.
				if sched.Canceled(cfg.Stop) {
					stopped.Store(true)
					if stealing {
						emit("retire", id, -1, -1)
					}
					return
				}
				if atomic.LoadInt64(&remaining) <= 0 {
					// All work executed. With stealing enabled a worker
					// retires exactly once, with a trace event, on every
					// exit path — the same lifecycle the simulator traces.
					if stealing {
						emit("retire", id, -1, -1)
					}
					return
				}
				if q, ok := deques[id].popFront(); ok {
					t0 := time.Now()
					cost, payload := q.Task.Run()
					d := time.Since(t0)
					st.busy += d
					st.finish = time.Since(start)
					st.executedBy[q.Task.ID] = id
					st.cost[q.Task.ID] = cost
					st.payload[q.Task.ID] = payload
					// Elapsed is the executor's half of the parity
					// contract: measured wall seconds the task occupied
					// this worker (the simulator records Elapsed == Cost).
					st.elapsed[q.Task.ID] = d.Seconds()
					st.region[q.Task.ID] = q.Task.Region
					if q.Stolen {
						st.stolen++
					} else {
						st.local++
					}
					emitExec(id, q.Task.ID, t0, d)
					atomic.AddInt64(&remaining, -1)
					attempt = 0
					continue
				}
				if !stealing {
					return
				}
				if cfg.MaxRounds > 0 && attempt >= cfg.MaxRounds {
					// Too many failed rounds: give up, as in the
					// simulator. Remaining work still completes — every
					// pending task sits in a deque whose owner drains it.
					emit("retire", id, -1, -1)
					return
				}
				victims := cfg.Policy.Victims(id, w, attempt, r)
				if len(victims) == 0 {
					// Policy has nobody to ask (e.g. mesh corner in a
					// tiny system): retire for good, as in the simulator.
					emit("retire", id, -1, -1)
					return
				}
				stole := false
				for _, v := range victims {
					st.issued++
					emit("steal-req", id, v, -1)
					if grant := deques[v].stealBack(cfg.Chunk()); len(grant) > 0 {
						deques[id].pushBack(grant)
						st.granted++
						emit("steal-grant", id, v, grant[0].Task.ID)
						stole = true
						break
					}
					st.denied++
					emit("steal-deny", id, v, -1)
				}
				if stole {
					attempt = 0
					continue
				}
				attempt++
				// Nothing stealable right now: sleep a bounded exponential
				// backoff (the simulator's virtual-time curve, in wall
				// time) instead of hot-spinning on runtime.Gosched, which
				// hammers the victims' deque mutexes while they work. A
				// stop during the sleep wakes the thief immediately so
				// cancellation latency is not a backoff period.
				backoff := time.Duration(sched.Backoff(attempt, float64(stealBackoffBase), cfg.MaxBackoff))
				if cfg.Stop != nil {
					timer := time.NewTimer(backoff)
					select {
					case <-cfg.Stop:
						timer.Stop()
					case <-timer.C:
					}
				} else {
					time.Sleep(backoff)
				}
			}
		}()
	}
	wg.Wait()

	wall := time.Since(start)
	rep := Report{
		Makespan:   wall.Seconds(),
		Wall:       wall,
		Workers:    make([]WorkerStats, w),
		TotalTasks: totalTasks,
		ExecutedBy: map[int]int{},
		Cost:       map[int]float64{},
		Payload:    map[int]int{},
		Elapsed:    map[int]float64{},
		TaskRegion: map[int]int{},
		Stopped:    stopped.Load(),
	}
	for id := range states {
		st := &states[id]
		rep.Workers[id] = WorkerStats{
			Busy:          st.busy.Seconds(),
			Idle:          (wall - st.busy).Seconds(),
			Finish:        st.finish.Seconds(),
			TasksLocal:    st.local,
			TasksStolen:   st.stolen,
			TasksLost:     deques[id].lost,
			StealsIssued:  st.issued,
			StealsGranted: st.granted,
			StealsDenied:  st.denied,
		}
		for task, worker := range st.executedBy {
			rep.ExecutedBy[task] = worker
		}
		for task, c := range st.cost {
			rep.Cost[task] = c
		}
		for task, p := range st.payload {
			rep.Payload[task] = p
		}
		for task, e := range st.elapsed {
			rep.Elapsed[task] = e
		}
		for task, r := range st.region {
			rep.TaskRegion[task] = r
		}
	}
	return rep
}
