package exec

import (
	"parmp/internal/steal"
	"parmp/internal/work"
)

// Diffuse performs a between-rounds diffusive rebalance of per-worker
// task queues: neighbor-local pairwise balancing along the same
// near-square mesh the DIFFUSIVE steal policy uses (steal.MeshNeighbors),
// the scheme the diffusive load-balancing literature prefers over
// bulk-synchronous redistribution when cost estimates are noisy. Unlike
// stealing — a runtime reaction to an already-idle worker — Diffuse runs
// before the round starts, shifting whole tasks from the back of a
// heavier queue to a lighter mesh neighbor while the move strictly
// reduces the pair's imbalance under the given cost estimate.
//
// est prices one task (the cost model's per-region estimate); tasks whose
// estimate is zero or negative never move, so an all-zero estimate makes
// Diffuse a no-op rather than a churn source. sweeps bounds how many
// full passes over the mesh run (values < 1 mean one pass); a pass that
// moves nothing terminates early, so convergence does not depend on the
// bound. The pass order (workers ascending, mesh neighbors in
// MeshNeighbors order, pairs handled once from their lower endpoint) is
// fixed, so the result is deterministic for a given input — the virtual
// time pipeline replays it bit-identically.
//
// Queues are mutated in place; the return value is the number of tasks
// moved. Callers that track ownership must re-derive it from the final
// queue placement (internal/core re-points region owners and prices the
// transfers like migrations).
func Diffuse(queues [][]work.Task, est func(work.Task) float64, sweeps int) int {
	w := len(queues)
	if w <= 1 {
		return 0
	}
	if sweeps < 1 {
		sweeps = 1
	}
	loads := make([]float64, w)
	for p := range queues {
		for _, t := range queues[p] {
			loads[p] += est(t)
		}
	}
	moved := 0
	for s := 0; s < sweeps; s++ {
		movedThisSweep := 0
		for p := 0; p < w; p++ {
			for _, q := range steal.MeshNeighbors(p, w) {
				if q <= p {
					continue // each edge balances once per sweep, from its lower endpoint
				}
				movedThisSweep += balancePair(queues, loads, p, q, est)
			}
		}
		moved += movedThisSweep
		if movedThisSweep == 0 {
			break
		}
	}
	return moved
}

// balancePair moves tasks from the back of the heavier queue of (a, b)
// to the lighter one while each move strictly reduces the pair's
// imbalance: a task of estimated cost c improves |load[hi]-load[lo]|
// exactly when 0 < c < load[hi]-load[lo].
func balancePair(queues [][]work.Task, loads []float64, a, b int, est func(work.Task) float64) int {
	moved := 0
	for {
		hi, lo := a, b
		if loads[lo] > loads[hi] {
			hi, lo = lo, hi
		}
		n := len(queues[hi])
		if n == 0 {
			return moved
		}
		t := queues[hi][n-1]
		c := est(t)
		if c <= 0 || c >= loads[hi]-loads[lo] {
			return moved
		}
		queues[hi] = queues[hi][:n-1]
		queues[lo] = append(queues[lo], t)
		loads[hi] -= c
		loads[lo] += c
		moved++
	}
}
