package rrt

import (
	"math"

	"parmp/internal/cspace"
	"parmp/internal/geom"
	"parmp/internal/knn"
	"parmp/internal/region"
	"parmp/internal/rng"
)

// StarTree is an RRT* branch: like Tree but with path costs maintained
// per node so rewiring can improve them.
type StarTree struct {
	Nodes []Node
	Cost  []float64 // cost-to-root per node
}

// Len returns the node count.
func (t *StarTree) Len() int { return len(t.Nodes) }

// StarParams configures region RRT* growth.
type StarParams struct {
	Params
	// RewireRadius is the neighbourhood radius for choose-parent and
	// rewiring. Zero defaults to 3 x Step.
	RewireRadius float64
}

func (p StarParams) rewireRadius() float64 {
	if p.RewireRadius > 0 {
		return p.RewireRadius
	}
	return 3 * p.Step
}

// StarResult is the product of growing one RRT* region branch.
type StarResult struct {
	Tree    *StarTree
	Work    cspace.Counters
	Iters   int
	Rewires int // parent changes applied by the rewiring step
}

// GrowRegionStar grows an asymptotically-optimal RRT* branch inside reg
// (Karaman & Frazzoli 2011; the GPU-parallelized variant is Bialkowski et
// al. 2011, cited by the paper). It extends like GrowRegion but chooses
// the lowest-cost parent in the rewire neighbourhood and rewires
// neighbours through the new node when that shortens their path to the
// root. The extra local planning makes region costs even more
// heterogeneous, which is why it is interesting for load balancing.
func GrowRegionStar(s *cspace.Space, reg *region.Region, p StarParams, r *rng.Stream) StarResult {
	return GrowStarTree(s, reg, &StarTree{
		Nodes: []Node{{Q: reg.Apex.Clone(), Parent: -1, Region: reg.ID}},
		Cost:  []float64{0},
	}, p, r)
}

// GrowStarTree continues growing an existing RRT* branch until it has
// p.Nodes nodes (total) or the iteration budget runs out. Like
// rrt.GrowTree, a fresh single-node tree reproduces GrowRegionStar
// exactly; an engine's later rounds pass the previous round's tree
// (with its cost-to-root vector) so choose-parent and rewiring keep
// improving the existing branch.
func GrowStarTree(s *cspace.Space, reg *region.Region, tree *StarTree, p StarParams, r *rng.Stream) StarResult {
	a := GetArena()
	defer PutArena(a)
	res := StarResult{Tree: tree}
	target := region.ConeTarget(reg)
	radius := p.rewireRadius()
	for res.Iters = 0; res.Iters < p.maxIters() && res.Tree.Len() < p.Nodes; res.Iters++ {
		if r.Float64() < p.GoalBias {
			a.qRand = geom.CopyInto(a.qRand, target)
		} else {
			a.qRand = region.SampleInConeInto(a.qRand, reg, r)
		}
		qRand := a.qRand
		if cap(a.pts) < res.Tree.Len() {
			a.pts = make([]geom.Vec, res.Tree.Len())
		}
		pts := a.pts[:res.Tree.Len()]
		nearIdx := 0
		bestNear := math.Inf(1)
		for i, n := range res.Tree.Nodes {
			pts[i] = n.Q
			if d := s.Distance(n.Q, qRand); d < bestNear {
				bestNear = d
				nearIdx = i
			}
		}
		res.Work.KNNQueries++
		res.Work.KNNEvals += int64(len(pts))
		a.qNew, _ = s.StepTowardInto(a.qNew, res.Tree.Nodes[nearIdx].Q, qRand, p.Step)
		qNew := a.qNew
		res.Work.Samples++
		if !s.Bounds.Contains(qNew) || !region.InCone(reg, qNew[:reg.Apex.Dim()]) {
			continue
		}
		if !s.ValidS(qNew, &a.sc, &res.Work) {
			continue
		}

		// Choose-parent: the neighbour minimizing cost-to-root + edge.
		neighbours := knn.BruteRadiusInto(pts, qNew, radius, a.near[:0])
		a.near = neighbours
		res.Work.KNNEvals += int64(len(pts))
		bestParent := -1
		bestCost := math.Inf(1)
		if s.LocalPlanS(res.Tree.Nodes[nearIdx].Q, qNew, &a.sc, &res.Work) {
			bestParent = nearIdx
			bestCost = res.Tree.Cost[nearIdx] + s.Distance(res.Tree.Nodes[nearIdx].Q, qNew)
		}
		for _, nb := range neighbours {
			if nb.Index == nearIdx {
				continue
			}
			cand := res.Tree.Cost[nb.Index] + s.Distance(res.Tree.Nodes[nb.Index].Q, qNew)
			if cand >= bestCost {
				continue
			}
			if s.LocalPlanS(res.Tree.Nodes[nb.Index].Q, qNew, &a.sc, &res.Work) {
				bestParent = nb.Index
				bestCost = cand
			}
		}
		if bestParent < 0 {
			continue
		}
		newIdx := res.Tree.Len()
		kept := qNew.Clone()
		res.Tree.Nodes = append(res.Tree.Nodes, Node{Q: kept, Parent: bestParent, Region: reg.ID})
		res.Tree.Cost = append(res.Tree.Cost, bestCost)

		// Rewire: route neighbours through the new node when cheaper.
		for _, nb := range neighbours {
			through := bestCost + s.Distance(kept, res.Tree.Nodes[nb.Index].Q)
			if through >= res.Tree.Cost[nb.Index] {
				continue
			}
			if s.LocalPlanS(kept, res.Tree.Nodes[nb.Index].Q, &a.sc, &res.Work) {
				res.Tree.Nodes[nb.Index].Parent = newIdx
				delta := res.Tree.Cost[nb.Index] - through
				res.Tree.Cost[nb.Index] = through
				res.Rewires++
				propagateCostDrop(res.Tree, nb.Index, delta)
			}
		}
	}
	return res
}

// propagateCostDrop pushes a cost reduction at node idx down to its
// descendants.
func propagateCostDrop(t *StarTree, idx int, delta float64) {
	for i := range t.Nodes {
		if t.Nodes[i].Parent == idx {
			t.Cost[i] -= delta
			propagateCostDrop(t, i, delta)
		}
	}
}
