package rrt

import (
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/region"
	"parmp/internal/rng"
)

func biEqual(t *testing.T, got, want BiResult) {
	t.Helper()
	if got.Iters != want.Iters || got.Work != want.Work {
		t.Fatalf("shape differs: (%d iters, %+v) vs (%d iters, %+v)",
			got.Iters, got.Work, want.Iters, want.Work)
	}
	g, w := got.Bi, want.Bi
	if g.Met != w.Met || g.AMeet != w.AMeet || g.BMeet != w.BMeet {
		t.Fatalf("meet state differs: (%v %d %d) vs (%v %d %d)",
			g.Met, g.AMeet, g.BMeet, w.Met, w.AMeet, w.BMeet)
	}
	treesEqual(t, Result{Tree: g.A}, Result{Tree: w.A})
	if (g.B == nil) != (w.B == nil) {
		t.Fatalf("B presence differs: %v vs %v", g.B == nil, w.B == nil)
	}
	if g.B != nil {
		treesEqual(t, Result{Tree: g.B}, Result{Tree: w.B})
	}
}

// checkRootReachable asserts every node of tr walks to node 0 via parent
// links without cycling (merged trees have reversed edges, so parents
// are not index-ordered).
func checkRootReachable(t *testing.T, tr *Tree) {
	t.Helper()
	for i := range tr.Nodes {
		cur, steps := i, 0
		for tr.Nodes[cur].Parent >= 0 {
			cur = tr.Nodes[cur].Parent
			if steps++; steps > tr.Len() {
				t.Fatalf("node %d: parent walk cycled", i)
			}
		}
		if cur != 0 {
			t.Fatalf("node %d: parent walk ended at %d, want root 0", i, cur)
		}
	}
}

func TestNewBiTreeGoalRoot(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	reg := coneRegion(0, geom.V(1, 0, 0), geom.V(0.5, 0.5, 0.5), 0.45, 0.6)
	goal := cspace.Config(geom.V(0.8, 0.55, 0.5)) // inside the cone
	bi, _ := NewBiTree(s, reg, goal, rng.New(3))
	if bi.B == nil || !bi.B.Nodes[0].Q.Equal(goal, 0) {
		t.Fatalf("goal in cone should root B at goal, got %+v", bi.B)
	}
	if !bi.A.Nodes[0].Q.Equal(reg.Apex, 0) {
		t.Fatalf("A must root at apex")
	}

	// Goal outside the cone: B roots at the cone target instead.
	far := cspace.Config(geom.V(0.1, 0.5, 0.5))
	bi, _ = NewBiTree(s, reg, far, rng.New(3))
	if bi.B == nil || !bi.B.Nodes[0].Q.Equal(region.ConeTarget(reg), 0) {
		t.Fatalf("goal outside cone should root B at cone target, got %+v", bi.B)
	}
}

func TestNewBiTreeBlockedCone(t *testing.T) {
	// The med-cube obstacle spans roughly [0.19, 0.81]^3; this cone sits
	// entirely inside it, so no free goal-side root exists.
	s := cspace.NewPointSpace(env.MedCube())
	reg := coneRegion(0, geom.V(0, 0, 1), geom.V(0.5, 0.5, 0.25), 0.2, 0.3)
	bi, work := NewBiTree(s, reg, nil, rng.New(7))
	if bi.B != nil {
		t.Fatalf("fully blocked cone should leave B nil, got root %v", bi.B.Nodes[0].Q)
	}
	if work.Samples != 32 {
		t.Fatalf("expected 32 fallback samples, got %d", work.Samples)
	}
}

func TestGrowBiTreeMeetsFreeSpace(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	reg := coneRegion(1, geom.V(1, 0, 0), geom.V(0.5, 0.5, 0.5), 0.45, 0.6)
	bi, _ := NewBiTree(s, reg, nil, rng.New(5))
	if bi.B == nil {
		t.Fatalf("free space must root a goal-side tree")
	}
	p := Params{Nodes: 200, Step: 0.05, GoalBias: 0.1}
	res := GrowBiTree(s, reg, bi, p, rng.New(6))
	if !bi.Met {
		t.Fatalf("trees failed to meet in free space after %d iters (%d nodes)", res.Iters, bi.Len())
	}
	if !bi.A.Nodes[bi.AMeet].Q.Equal(bi.B.Nodes[bi.BMeet].Q, 0) {
		t.Fatalf("meeting configurations differ: %v vs %v",
			bi.A.Nodes[bi.AMeet].Q, bi.B.Nodes[bi.BMeet].Q)
	}

	merged := MergeBiTree(bi)
	if merged.Len() != bi.A.Len()+bi.B.Len() {
		t.Fatalf("merged %d nodes, want %d", merged.Len(), bi.A.Len()+bi.B.Len())
	}
	checkRootReachable(t, merged)
	for i, n := range merged.Nodes {
		if i > 0 && !s.Valid(n.Q, nil) {
			t.Fatalf("merged node %d invalid", i)
		}
	}

	// A met pair stops growing: another round must be a no-op.
	again := GrowBiTree(s, reg, bi, p, rng.New(99))
	if again.Iters != 0 || (again.Work != cspace.Counters{}) {
		t.Fatalf("met pair grew again: %d iters, %+v", again.Iters, again.Work)
	}
}

func TestGrowBiTreeArenaReuseBitIdentical(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed30())
	reg := coneRegion(2, geom.V(1, 1, 0), geom.V(0.5, 0.5, 0.5), 0.4, 0.6)
	p := Params{Nodes: 60, Step: 0.05, GoalBias: 0.1}
	dirty := GetArena()
	defer PutArena(dirty)
	for _, seed := range []uint64{31, 32} {
		fr := rng.Derive(seed, 0)
		fbi, fw := NewBiTreeArena(s, reg, nil, fr, new(Arena))
		fres := GrowBiTreeArena(s, reg, fbi, p, fr, new(Arena))
		fres.Work.Add(fw)
		for rep := 0; rep < 3; rep++ {
			dr := rng.Derive(seed, 0)
			dbi, dw := NewBiTreeArena(s, reg, nil, dr, dirty)
			dres := GrowBiTreeArena(s, reg, dbi, p, dr, dirty)
			dres.Work.Add(dw)
			biEqual(t, dres, fres)
		}
	}
}

func TestGrowBiTreeSingleTreeFallback(t *testing.T) {
	// With B nil the pair must grow exactly like a plain region branch.
	s := cspace.NewPointSpace(env.Mixed30())
	reg := coneRegion(3, geom.V(0, 1, 0), geom.V(0.5, 0.5, 0.5), 0.4, 0.6)
	p := Params{Nodes: 40, Step: 0.05, GoalBias: 0.1}

	bi := &BiTree{A: NewTree(reg.Apex, reg.ID)}
	got := GrowBiTree(s, reg, bi, p, rng.New(11))
	want := GrowRegion(s, reg, p, rng.New(11))
	treesEqual(t, Result{Tree: got.Bi.A, Work: got.Work, Iters: got.Iters}, want)
}

func TestBiTreeCopyIsDeep(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	reg := coneRegion(4, geom.V(0, 0, 1), geom.V(0.5, 0.5, 0.5), 0.45, 0.6)
	bi, _ := NewBiTree(s, reg, nil, rng.New(13))
	p := Params{Nodes: 30, Step: 0.05, GoalBias: 0.1}
	GrowBiTree(s, reg, bi, p, rng.New(14))

	cp := bi.Copy()
	lenA, lenB := cp.A.Len(), cp.B.Len()
	GrowBiTree(s, reg, bi, Params{Nodes: 60, Step: 0.05, GoalBias: 0.1}, rng.New(15))
	if cp.A.Len() != lenA || cp.B.Len() != lenB {
		t.Fatalf("copy mutated by later growth: %d/%d vs %d/%d", cp.A.Len(), cp.B.Len(), lenA, lenB)
	}
	if cp.Met != bi.Met && bi.Met {
		// fine: original may have met later; the copy must not change.
		_ = cp
	}
}
