package rrt

import (
	"math"

	"parmp/internal/cspace"
	"parmp/internal/geom"
	"parmp/internal/region"
	"parmp/internal/rng"
)

// BiTree is the bidirectional tree pair one region grows with the
// RRT-Connect strategy (Kuffner & LaValle, 2000): A roots at the shared
// root (the region apex), B at the goal side of the cone. The two trees
// alternately extend toward cone samples and greedily march toward each
// other's newest node until they meet.
type BiTree struct {
	// A is rooted at the region apex (the shared root configuration).
	A *Tree
	// B is the goal-side tree; nil when no free root was found in the
	// cone (the region degrades to single-tree growth).
	B *Tree
	// Met reports the trees bridged; AMeet/BMeet are the meeting node
	// indices (equal configurations, one in each tree).
	Met          bool
	AMeet, BMeet int
}

// Copy returns a deep copy of the bi-tree's node slices (configurations
// are shared — tree nodes are immutable once appended).
func (bi *BiTree) Copy() *BiTree {
	c := &BiTree{Met: bi.Met, AMeet: bi.AMeet, BMeet: bi.BMeet}
	if bi.A != nil {
		c.A = &Tree{Nodes: append([]Node(nil), bi.A.Nodes...)}
	}
	if bi.B != nil {
		c.B = &Tree{Nodes: append([]Node(nil), bi.B.Nodes...)}
	}
	return c
}

// Len returns the combined node count of both trees.
func (bi *BiTree) Len() int {
	n := 0
	if bi.A != nil {
		n += bi.A.Len()
	}
	if bi.B != nil {
		n += bi.B.Len()
	}
	return n
}

// BiResult is the product of one region's RRT-Connect growth.
type BiResult struct {
	Bi    *BiTree
	Work  cspace.Counters
	Iters int
}

// NewBiTree roots a region's tree pair: A always at the region apex; B
// at the global goal when it lies (validly) in the region's cone, else
// at the cone target when free, else at a free configuration sampled in
// the cone (consuming r), else not at all (single-tree degradation).
// The returned counters meter the validity checks and samples spent.
func NewBiTree(s *cspace.Space, reg *region.Region, goal cspace.Config, r *rng.Stream) (*BiTree, cspace.Counters) {
	a := GetArena()
	defer PutArena(a)
	return NewBiTreeArena(s, reg, goal, r, a)
}

// NewBiTreeArena is NewBiTree through an explicit arena.
func NewBiTreeArena(s *cspace.Space, reg *region.Region, goal cspace.Config, r *rng.Stream, a *Arena) (*BiTree, cspace.Counters) {
	var work cspace.Counters
	bi := &BiTree{A: NewTree(reg.Apex, reg.ID)}
	d := reg.Apex.Dim()
	if goal != nil && len(goal) == d && region.InCone(reg, goal) && s.ValidS(goal, &a.sc, &work) {
		bi.B = NewTree(goal, reg.ID)
		return bi, work
	}
	target := boundedConeTarget(s, reg)
	if s.Bounds.Contains(target) && s.ValidS(target, &a.sc, &work) {
		bi.B = NewTree(target, reg.ID)
		return bi, work
	}
	for try := 0; try < 32; try++ {
		a.qRand = region.SampleInConeInto(a.qRand, reg, r)
		work.Samples++
		if !s.Bounds.Contains(a.qRand) {
			continue
		}
		if s.ValidS(a.qRand, &a.sc, &work) {
			bi.B = NewTree(a.qRand, reg.ID)
			return bi, work
		}
	}
	return bi, work
}

// boundedConeTarget returns the cone-axis target clamped to the space
// bounds: the paper's q_i on the subdivision sphere when that lies
// inside, else the point just before the axis exits the bounds. When the
// subdivision radius spans the whole workspace (the single-query
// default), the clamped targets sit on the far boundary — the goal side
// of every cone — which is where a goal-side root is worth growing from.
func boundedConeTarget(s *cspace.Space, reg *region.Region) cspace.Config {
	target := region.ConeTarget(reg)
	if s.Bounds.Contains(target) {
		return target
	}
	tmax := reg.Radius
	for d := 0; d < reg.Apex.Dim(); d++ {
		dir := reg.Ray[d]
		var lim float64
		switch {
		case dir > 0:
			lim = (s.Bounds.Hi[d] - reg.Apex[d]) / dir
		case dir < 0:
			lim = (s.Bounds.Lo[d] - reg.Apex[d]) / dir
		default:
			continue
		}
		if lim < tmax {
			tmax = lim
		}
	}
	if tmax <= 0 {
		return target // apex on or outside the bounds: keep the sphere target
	}
	return reg.Apex.Add(reg.Ray.Scale(tmax * 0.999))
}

// GrowBiTree is GrowBiTreeArena through a pooled arena.
func GrowBiTree(s *cspace.Space, reg *region.Region, bi *BiTree, p Params, r *rng.Stream) BiResult {
	a := GetArena()
	defer PutArena(a)
	return GrowBiTreeArena(s, reg, bi, p, r, a)
}

// GrowBiTreeArena continues growing a region's tree pair until the
// combined node count reaches p.Nodes, the iteration budget runs out,
// or the trees meet (a met pair stops growing — its corridor through
// the region is established). Each iteration extends one tree (they
// alternate) by at most Step toward a cone sample, and on acceptance
// the other tree greedily marches toward the new node until it reaches
// it exactly or a step is blocked. All candidate edges validate through
// the batched SoA collision kernels.
//
// Passing a freshly rooted pair is exactly the one-shot planner's first
// round, so engines resuming a committed pair stay bit-identical to an
// uninterrupted run with the same per-round streams. RRT-Connect
// requires symmetric local motions; callers gate steered spaces out.
func GrowBiTreeArena(s *cspace.Space, reg *region.Region, bi *BiTree, p Params, r *rng.Stream, a *Arena) BiResult {
	res := BiResult{Bi: bi}
	if bi.B == nil {
		// No free goal-side root exists in this region's cone: grow a
		// plain branch so the region still contributes coverage.
		gr := GrowTreeArena(s, reg, bi.A, p, r, a)
		res.Work = gr.Work
		res.Iters = gr.Iters
		return res
	}
	target := region.ConeTarget(reg)
	for res.Iters = 0; res.Iters < p.maxIters() && bi.Len() < p.Nodes && !bi.Met; res.Iters++ {
		cur, other := bi.A, bi.B
		if res.Iters%2 == 1 {
			cur, other = bi.B, bi.A
		}
		if r.Float64() < p.GoalBias {
			a.qRand = geom.CopyInto(a.qRand, target)
		} else {
			a.qRand = region.SampleInConeInto(a.qRand, reg, r)
		}
		newIdx, ok := extendOnce(s, reg, cur, a.qRand, p.Step, &res.Work, a)
		if !ok {
			continue
		}
		meetIdx, reached := connectGreedy(s, reg, other, cur.Nodes[newIdx].Q, p.Step, &res.Work, a)
		if reached {
			bi.Met = true
			if cur == bi.A {
				bi.AMeet, bi.BMeet = newIdx, meetIdx
			} else {
				bi.AMeet, bi.BMeet = meetIdx, newIdx
			}
		}
	}
	return res
}

// extendOnce extends t one step toward qRand, mirroring GrowTreeArena's
// acceptance checks (bounds, cone, validity, batched local plan). It
// returns the new node's index and whether the extension was accepted.
func extendOnce(s *cspace.Space, reg *region.Region, t *Tree, qRand cspace.Config, step float64, w *cspace.Counters, a *Arena) (int, bool) {
	nearIdx := 0
	bestD := math.Inf(1)
	for i, n := range t.Nodes {
		if d := s.Distance(n.Q, qRand); d < bestD {
			bestD = d
			nearIdx = i
		}
	}
	w.KNNQueries++
	w.KNNEvals += int64(t.Len())
	qNear := t.Nodes[nearIdx].Q
	a.qNew, _ = s.StepTowardInto(a.qNew, qNear, qRand, step)
	qNew := a.qNew
	w.Samples++
	if !s.Bounds.Contains(qNew) {
		return 0, false
	}
	if s.Steer == nil && !region.InCone(reg, qNew[:reg.Apex.Dim()]) {
		return 0, false
	}
	if !s.ValidS(qNew, &a.sc, w) {
		return 0, false
	}
	if !s.LocalPlanBatch(qNear, qNew, &a.bt, w) {
		return 0, false
	}
	t.Nodes = append(t.Nodes, Node{Q: qNew.Clone(), Parent: nearIdx, Region: reg.ID})
	return t.Len() - 1, true
}

// connectGreedy is the CONNECT heuristic: starting from t's node
// nearest to q, repeatedly step toward q, appending each accepted step
// as a node, until q is reached exactly (returning its node index and
// true) or a step leaves the region, collides, or the step budget runs
// out (trapped).
func connectGreedy(s *cspace.Space, reg *region.Region, t *Tree, q cspace.Config, step float64, w *cspace.Counters, a *Arena) (int, bool) {
	nearIdx := 0
	bestD := math.Inf(1)
	for i, n := range t.Nodes {
		if d := s.Distance(n.Q, q); d < bestD {
			bestD = d
			nearIdx = i
		}
	}
	w.KNNQueries++
	w.KNNEvals += int64(t.Len())
	// Straight-line marching covers bestD in ceil(bestD/step) steps; the
	// 2x slack plus constant guards float edge cases without allowing
	// unbounded growth.
	maxSteps := 4 + 2*int(math.Ceil(bestD/step))
	cur := nearIdx
	for n := 0; n < maxSteps; n++ {
		qNear := t.Nodes[cur].Q
		var reached bool
		a.qNew, reached = s.StepTowardInto(a.qNew, qNear, q, step)
		qNew := a.qNew
		w.Samples++
		if !s.Bounds.Contains(qNew) {
			return 0, false
		}
		if s.Steer == nil && !region.InCone(reg, qNew[:reg.Apex.Dim()]) {
			return 0, false
		}
		if !s.ValidS(qNew, &a.sc, w) {
			return 0, false
		}
		if !s.LocalPlanBatch(qNear, qNew, &a.bt, w) {
			return 0, false
		}
		t.Nodes = append(t.Nodes, Node{Q: qNew.Clone(), Parent: cur, Region: reg.ID})
		cur = t.Len() - 1
		if reached {
			return cur, true
		}
	}
	return 0, false
}

// MergeBiTree flattens a region's tree pair into one root-anchored
// branch. When the trees met, B is re-rooted at its meeting node and
// grafted under A's meeting node (the edges along B's meet→root path
// reverse), so every merged node reaches the shared root by parent
// walks — the invariant core.TreeIndex path extraction relies on. The
// merged meeting node duplicates A's meeting configuration as a
// zero-length edge, which path extraction tolerates. An unmet pair
// contributes only A: B's nodes cannot reach the root.
func MergeBiTree(bi *BiTree) *Tree {
	if bi.B == nil || !bi.Met {
		return bi.A
	}
	merged := &Tree{Nodes: make([]Node, 0, bi.A.Len()+bi.B.Len())}
	merged.Nodes = append(merged.Nodes, bi.A.Nodes...)
	base := bi.A.Len()

	// Reverse the parent edges along B's meet→root path.
	var path []int
	for i := bi.BMeet; i >= 0; i = bi.B.Nodes[i].Parent {
		path = append(path, i)
	}
	const graft = -2 // sentinel: parent is A's meeting node
	np := make([]int, bi.B.Len())
	for i, n := range bi.B.Nodes {
		np[i] = n.Parent
	}
	np[path[0]] = graft
	for j := 1; j < len(path); j++ {
		np[path[j]] = path[j-1]
	}
	for j, n := range bi.B.Nodes {
		parent := np[j]
		if parent == graft {
			parent = bi.AMeet
		} else {
			parent = base + parent
		}
		merged.Nodes = append(merged.Nodes, Node{Q: n.Q, Parent: parent, Region: n.Region})
	}
	return merged
}
