// Package rrt implements the sequential Rapidly-exploring Random Tree
// (LaValle & Kuffner, 2001) used inside each radial-subdivision region.
//
// Each region grows a branch rooted at the shared root configuration,
// biased toward the region's target point on the subdivision sphere
// (Algorithm 2 of the paper, lines 10–12). Growth is constrained to the
// region's cone (plus overlap), and all collision work is metered through
// cspace.Counters for load accounting.
package rrt

import (
	"math"

	"parmp/internal/cspace"
	"parmp/internal/geom"
	"parmp/internal/knn"
	"parmp/internal/region"
	"parmp/internal/rng"
)

// Node is a tree vertex: configuration plus parent index (-1 for root).
type Node struct {
	Q      cspace.Config
	Parent int
	Region int
}

// Tree is an RRT branch: nodes[0] is the root.
type Tree struct {
	Nodes []Node
}

// NewTree returns a tree containing only root.
func NewTree(root cspace.Config, regionID int) *Tree {
	return &Tree{Nodes: []Node{{Q: root.Clone(), Parent: -1, Region: regionID}}}
}

// Len returns the node count.
func (t *Tree) Len() int { return len(t.Nodes) }

// PathToRoot returns the node indices from node i back to the root.
func (t *Tree) PathToRoot(i int) []int {
	var path []int
	for ; i >= 0; i = t.Nodes[i].Parent {
		path = append(path, i)
	}
	return path
}

// Params configures region RRT growth.
type Params struct {
	// Nodes is the target number of tree nodes to grow in the region.
	Nodes int
	// Step is Δq, the maximum extension step in metric distance.
	Step float64
	// GoalBias is the probability of sampling the region's cone target
	// instead of a uniform point in the cone.
	GoalBias float64
	// MaxIters bounds expansion iterations (default 20 × Nodes).
	MaxIters int
}

func (p Params) maxIters() int {
	if p.MaxIters > 0 {
		return p.MaxIters
	}
	return 20 * p.Nodes
}

// Result is the product of growing one region branch.
type Result struct {
	Tree *Tree
	Work cspace.Counters
	// Iters is the number of expansion iterations consumed.
	Iters int
}

// GrowRegion grows an RRT branch inside reg: sample in the cone (biased
// toward the cone target), extend the nearest tree node by at most Step,
// keep the new node if the extension is collision-free and stays inside
// the (overlap-widened) cone.
//
// The returned work counters reflect the actual collision effort, which
// varies strongly with the obstacle density in the cone's direction —
// exactly the dynamic, hard-to-estimate workload the paper describes for
// radial RRT.
func GrowRegion(s *cspace.Space, reg *region.Region, p Params, r *rng.Stream) Result {
	a := GetArena()
	defer PutArena(a)
	return GrowRegionArena(s, reg, p, r, a)
}

// GrowRegionArena is GrowRegion through an explicit arena: candidate and
// stepped configurations live in reused buffers (cloned only on
// acceptance) and collision checks route through the arena's scratch.
// RNG consumption is identical to the allocating path, so the grown tree
// is the same for the same stream.
func GrowRegionArena(s *cspace.Space, reg *region.Region, p Params, r *rng.Stream, a *Arena) Result {
	return GrowTreeArena(s, reg, NewTree(reg.Apex, reg.ID), p, r, a)
}

// GrowTree continues growing an existing branch inside reg until it has
// p.Nodes nodes (total, not additional) or the iteration budget runs
// out. Passing a fresh single-node tree is exactly GrowRegion — the
// one-shot planners route through here — so an engine's first round is
// bit-identical to the one-shot pipeline; later rounds pass the
// previous round's tree to resume growth.
func GrowTree(s *cspace.Space, reg *region.Region, tree *Tree, p Params, r *rng.Stream) Result {
	a := GetArena()
	defer PutArena(a)
	return GrowTreeArena(s, reg, tree, p, r, a)
}

// GrowTreeArena is GrowTree through an explicit arena.
func GrowTreeArena(s *cspace.Space, reg *region.Region, tree *Tree, p Params, r *rng.Stream, a *Arena) Result {
	res := Result{Tree: tree}
	target := region.ConeTarget(reg)
	// Brute-force nearest neighbour: the tree is rebuilt incrementally and
	// stays small per region; metering matches kd usage elsewhere.
	for res.Iters = 0; res.Iters < p.maxIters() && res.Tree.Len() < p.Nodes; res.Iters++ {
		if r.Float64() < p.GoalBias {
			a.qRand = geom.CopyInto(a.qRand, target)
		} else {
			a.qRand = region.SampleInConeInto(a.qRand, reg, r)
		}
		qRand := a.qRand
		// Nearest node in the branch under the space's weighted metric
		// (angular DOFs are down-weighted so spatial exploration is not
		// dominated by heading differences).
		nearIdx := 0
		bestD := math.Inf(1)
		for i, n := range res.Tree.Nodes {
			if d := s.Distance(n.Q, qRand); d < bestD {
				bestD = d
				nearIdx = i
			}
		}
		res.Work.KNNQueries++
		res.Work.KNNEvals += int64(res.Tree.Len())
		qNear := res.Tree.Nodes[nearIdx].Q

		a.qNew, _ = s.StepTowardInto(a.qNew, qNear, qRand, p.Step)
		qNew := a.qNew
		res.Work.Samples++
		if !s.Bounds.Contains(qNew) {
			continue
		}
		// Stay within the region (cone plus overlap). Steered spaces are
		// exempt: a feasible curve's first step generally does not move
		// toward the sample, so the cone acts as a sampling bias only
		// ("some overlap between regions is allowed so branches can
		// explore part of the space in adjacent regions").
		if s.Steer == nil && !region.InCone(reg, qNew[:reg.Apex.Dim()]) {
			continue
		}
		if !s.ValidS(qNew, &a.sc, &res.Work) {
			continue
		}
		if !s.LocalPlanBatch(qNear, qNew, &a.bt, &res.Work) {
			continue
		}
		res.Tree.Nodes = append(res.Tree.Nodes, Node{Q: qNew.Clone(), Parent: nearIdx, Region: reg.ID})
	}
	return res
}

// Connect attempts to join two region branches: for each frontier node of
// a (up to kFrontier nodes nearest to b's cone target), try a local plan
// to the nearest nodes of b. It returns the first successful bridging pair
// (index in a, index in b) and ok.
func Connect(s *cspace.Space, a, b *Tree, bTarget geom.Vec, kFrontier int, c *cspace.Counters) (int, int, bool) {
	ar := GetArena()
	defer PutArena(ar)
	return ConnectArena(s, a, b, bTarget, kFrontier, c, ar)
}

// ConnectArena is Connect through an explicit arena: both trees' point
// slices, the kd-tree over b and all kNN scratch are reused.
func ConnectArena(s *cspace.Space, a, b *Tree, bTarget geom.Vec, kFrontier int, c *cspace.Counters, ar *Arena) (int, int, bool) {
	if a.Len() == 0 || b.Len() == 0 {
		return 0, 0, false
	}
	aPts := ar.auxPoints(a)
	bPts := ar.treePoints(b)
	// Frontier of a: nodes nearest to b's territory.
	frontier, _ := knn.BruteNearestInto(&ar.qsc, aPts, bTarget, kFrontier, -1, ar.near[:0])
	ar.near = frontier
	ar.tree.Reset(bPts)
	if c != nil {
		c.KNNQueries += int64(1 + len(frontier))
	}
	for _, f := range frontier {
		var evals int
		ar.hits, evals = ar.tree.NearestInto(&ar.qsc, aPts[f.Index], 3, -1, ar.hits[:0])
		if c != nil {
			c.KNNEvals += int64(evals)
		}
		for _, h := range ar.hits {
			if s.LocalPlanBatch(aPts[f.Index], bPts[h.Index], &ar.bt, c) {
				return f.Index, h.Index, true
			}
		}
	}
	return 0, 0, false
}
