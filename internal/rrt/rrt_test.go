package rrt

import (
	"math"
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/region"
	"parmp/internal/rng"
)

func coneRegion(id int, dir geom.Vec, apex geom.Vec, radius, half float64) *region.Region {
	return &region.Region{
		ID: id, Kind: region.KindCone,
		Ray: dir.Unit(), Apex: apex, Radius: radius, HalfAngle: half,
	}
}

func TestGrowRegionFreeSpace(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	reg := coneRegion(0, geom.V(1, 0, 0), geom.V(0.5, 0.5, 0.5), 0.45, 0.6)
	res := GrowRegion(s, reg, Params{Nodes: 40, Step: 0.05, GoalBias: 0.1}, rng.New(1))
	if res.Tree.Len() != 40 {
		t.Fatalf("tree size = %d, want 40", res.Tree.Len())
	}
	// All nodes must be in the cone and collision-free.
	for i, n := range res.Tree.Nodes {
		if i == 0 {
			continue
		}
		if !region.InCone(reg, n.Q) {
			t.Fatalf("node %d at %v escaped cone", i, n.Q)
		}
		if !s.Valid(n.Q, nil) {
			t.Fatalf("node %d invalid", i)
		}
		if n.Parent < 0 || n.Parent >= i {
			t.Fatalf("node %d has bad parent %d", i, n.Parent)
		}
	}
	if res.Work.CDCalls == 0 || res.Work.LPCalls == 0 {
		t.Fatalf("work not metered: %+v", res.Work)
	}
}

func TestGrowRegionDeterministic(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed30())
	reg := coneRegion(3, geom.V(0, 1, 0), geom.V(0.5, 0.5, 0.5), 0.4, 0.5)
	p := Params{Nodes: 25, Step: 0.05, GoalBias: 0.1}
	a := GrowRegion(s, reg, p, rng.Derive(11, 3))
	b := GrowRegion(s, reg, p, rng.Derive(11, 3))
	if a.Tree.Len() != b.Tree.Len() || a.Work != b.Work || a.Iters != b.Iters {
		t.Fatal("identical seeds should replay identically")
	}
	for i := range a.Tree.Nodes {
		if !a.Tree.Nodes[i].Q.Equal(b.Tree.Nodes[i].Q, 0) {
			t.Fatalf("node %d differs", i)
		}
	}
}

func TestGrowRegionStepBound(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	reg := coneRegion(0, geom.V(1, 0, 0), geom.V(0.5, 0.5, 0.5), 0.45, 0.6)
	p := Params{Nodes: 30, Step: 0.04, GoalBias: 0.2}
	res := GrowRegion(s, reg, p, rng.New(2))
	for i := 1; i < res.Tree.Len(); i++ {
		n := res.Tree.Nodes[i]
		d := s.Distance(n.Q, res.Tree.Nodes[n.Parent].Q)
		if d > p.Step+1e-9 {
			t.Fatalf("edge %d length %v exceeds step %v", i, d, p.Step)
		}
	}
}

func TestGrowRegionBlockedDirectionCostsMore(t *testing.T) {
	// Growing toward the obstacle costs more iterations/work per node
	// than growing into free space — the estimation difficulty at the
	// heart of the paper's RRT result.
	e := env.MedCube()
	s := cspace.NewPointSpace(e)
	apex := geom.V(0.1, 0.1, 0.1)
	toward := coneRegion(0, geom.V(1, 1, 1), apex, 1.0, 0.35)
	away := coneRegion(1, geom.V(-1, -1, -1).Unit(), apex.Clone(), 0.15, 0.35)
	p := Params{Nodes: 30, Step: 0.04, GoalBias: 0.1, MaxIters: 900}
	rt := GrowRegion(s, toward, p, rng.Derive(5, 0))
	ra := GrowRegion(s, away, p, rng.Derive(5, 1))
	if rt.Tree.Len() < 2 || ra.Tree.Len() < 2 {
		t.Fatalf("trees too small: %d %d", rt.Tree.Len(), ra.Tree.Len())
	}
	wt := float64(rt.Work.CDObstacle) / float64(rt.Tree.Len())
	wa := float64(ra.Work.CDObstacle) / float64(ra.Tree.Len())
	if wt <= wa {
		t.Fatalf("blocked-direction per-node work %v should exceed open %v", wt, wa)
	}
}

func TestPathToRoot(t *testing.T) {
	tr := NewTree(geom.V(0, 0), 0)
	tr.Nodes = append(tr.Nodes, Node{Q: geom.V(0.1, 0), Parent: 0})
	tr.Nodes = append(tr.Nodes, Node{Q: geom.V(0.2, 0), Parent: 1})
	path := tr.PathToRoot(2)
	want := []int{2, 1, 0}
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v", path)
		}
	}
}

func TestConnectAdjacentBranches(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	apex := geom.V(0.5, 0.5, 0.5)
	a := coneRegion(0, geom.V(1, 0, 0), apex, 0.45, 0.7)
	b := coneRegion(1, geom.V(math.Cos(0.8), math.Sin(0.8), 0), apex.Clone(), 0.45, 0.7)
	p := Params{Nodes: 40, Step: 0.05, GoalBias: 0.15}
	ra := GrowRegion(s, a, p, rng.Derive(9, 0))
	rb := GrowRegion(s, b, p, rng.Derive(9, 1))
	var c cspace.Counters
	ia, ib, ok := Connect(s, ra.Tree, rb.Tree, region.ConeTarget(b), 5, &c)
	if !ok {
		t.Fatal("adjacent free-space branches should connect")
	}
	if ia >= ra.Tree.Len() || ib >= rb.Tree.Len() {
		t.Fatalf("bridge indices out of range: %d %d", ia, ib)
	}
	if !s.LocalPlan(ra.Tree.Nodes[ia].Q, rb.Tree.Nodes[ib].Q, nil) {
		t.Fatal("bridge must be plannable")
	}
	if c.LPCalls == 0 {
		t.Fatal("connect work not metered")
	}
}

func TestConnectEmptyTree(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	a := NewTree(geom.V(0.5, 0.5, 0.5), 0)
	empty := &Tree{}
	if _, _, ok := Connect(s, a, empty, geom.V(1, 1, 1), 3, nil); ok {
		t.Fatal("empty tree should not connect")
	}
}

func TestGrowRegionRespectsMaxIters(t *testing.T) {
	// A cone pointing into the obstacle with a tight budget terminates.
	e := env.MedCube()
	s := cspace.NewPointSpace(e)
	apex := geom.V(0.5, 0.5, 0.05)
	reg := coneRegion(0, geom.V(0, 0, 1), apex, 0.9, 0.1)
	res := GrowRegion(s, reg, Params{Nodes: 1000, Step: 0.05, MaxIters: 50}, rng.New(3))
	if res.Iters > 50 {
		t.Fatalf("iters = %d exceeded budget", res.Iters)
	}
}
