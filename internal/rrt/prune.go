package rrt

import (
	"math"

	"parmp/internal/cspace"
)

// PruneStats summarizes one tree's repair against an environment delta.
type PruneStats struct {
	// CheckedNodes / CheckedEdges count collision re-checks actually
	// paid (culled nodes and edges are free).
	CheckedNodes, CheckedEdges int
	// Removed is the number of nodes dropped (blocked themselves,
	// blocked parent edge, or unsalvageable severed descendants).
	Removed int
	// Grafted is the number of severed-subtree roots reattached to a
	// surviving node by a fresh local plan.
	Grafted int
	Work    cspace.Counters
}

// PruneTree repairs a tree in place against dc and returns the
// compacted tree. A node dies when its configuration is now blocked or
// its parent edge is now blocked; descendants of a dead node are
// severed. The frontier node of each severed subtree (the first node in
// index order whose own configuration and parent edge survived but
// whose parent died) tries to regraft: a fresh local plan to one of its
// graftK nearest surviving ancestors-to-date. A successful graft saves
// the whole subtree below it; a failed one lets the severance
// propagate.
//
// The single forward pass is sound because trees are append-only
// (parent index < child index), so every node's parent fate is decided
// before the node itself. Node order is preserved under compaction,
// which keeps that invariant for future growth. The root is never
// removed — a tree must stay rooted for the engines — even when its
// configuration is blocked (queries through it simply fail validity).
// The returned remap has one entry per old node: its new index, or -1
// if pruned.
func PruneTree(s *cspace.Space, dc *cspace.DeltaChecker, t *Tree, graftK int) (remap []int, st PruneStats) {
	n := t.Len()
	remap = make([]int, n)
	if !dc.Invalidating() || n == 0 {
		for i := range remap {
			remap[i] = i
		}
		return remap, st
	}
	if graftK <= 0 {
		graftK = 3
	}
	alive := make([]bool, n)
	alive[0] = true // the root stays by contract
	for i := 1; i < n; i++ {
		nd := t.Nodes[i]
		if dc.ConfigAffected(nd.Q) {
			st.CheckedNodes++
			if !dc.ConfigStillFree(nd.Q, &st.Work) {
				continue // node itself is blocked
			}
		}
		parentAlive := alive[nd.Parent]
		if parentAlive {
			if dc.EdgeAffected(t.Nodes[nd.Parent].Q, nd.Q) {
				st.CheckedEdges++
				if !dc.EdgeStillFree(t.Nodes[nd.Parent].Q, nd.Q, &st.Work) {
					parentAlive = false // edge severed; try to regraft below
				}
			}
		}
		if parentAlive {
			alive[i] = true
			continue
		}
		// Severed frontier: the node is free but disconnected. Regraft to
		// a surviving node if a nearby one admits a local plan. Candidates
		// are restricted to already-processed nodes (index < i), whose
		// fate is final — which also preserves the parent<child invariant.
		if p, ok := regraft(s, dc, t, alive, i, graftK, &st); ok {
			t.Nodes[i].Parent = p
			alive[i] = true
			st.Grafted++
		}
	}
	// Compact in place, preserving order.
	w := 0
	for i := 0; i < n; i++ {
		if !alive[i] {
			remap[i] = -1
			st.Removed++
			continue
		}
		remap[i] = w
		nd := t.Nodes[i]
		if nd.Parent >= 0 {
			nd.Parent = remap[nd.Parent]
		}
		t.Nodes[w] = nd
		w++
	}
	t.Nodes = t.Nodes[:w]
	return remap, st
}

// regraft finds up to k nearest alive nodes before i and returns the
// first one reachable by a valid local plan. The plan runs against the
// full post-delta space semantics: the old world already validated
// nothing here (this is a brand-new edge), so it must check both the
// delta view and the pre-existing obstacles — which s provides, because
// the caller passes the post-mutation space.
func regraft(s *cspace.Space, dc *cspace.DeltaChecker, t *Tree, alive []bool, i, k int, st *PruneStats) (int, bool) {
	type cand struct {
		idx int
		d   float64
	}
	best := make([]cand, 0, k)
	q := t.Nodes[i].Q
	for j := 0; j < i; j++ {
		if !alive[j] {
			continue
		}
		d := s.Distance(t.Nodes[j].Q, q)
		if len(best) < k {
			best = append(best, cand{j, d})
		} else {
			worst := 0
			for b := 1; b < len(best); b++ {
				if best[b].d > best[worst].d {
					worst = b
				}
			}
			if d < best[worst].d {
				best[worst] = cand{j, d}
			}
		}
		st.Work.KNNEvals++
	}
	st.Work.KNNQueries++
	// Try nearest first.
	for len(best) > 0 {
		bi := 0
		bd := math.Inf(1)
		for b, c := range best {
			if c.d < bd {
				bd = c.d
				bi = b
			}
		}
		c := best[bi]
		best = append(best[:bi], best[bi+1:]...)
		if s.LocalPlan(t.Nodes[c.idx].Q, q, &st.Work) {
			return c.idx, true
		}
	}
	return 0, false
}

// PruneBiTree repairs both trees of a region's RRT-Connect pair and
// re-derives the met state: the pair stays met only when both meeting
// nodes survived (grafting elsewhere cannot fake a meet — the meeting
// configurations themselves are unchanged). Returns the remaps for A
// and B (nil for an absent B).
func PruneBiTree(s *cspace.Space, dc *cspace.DeltaChecker, bi *BiTree, graftK int) (remapA, remapB []int, st PruneStats) {
	remapA, st = PruneTree(s, dc, bi.A, graftK)
	if bi.B == nil {
		return remapA, nil, st
	}
	var stB PruneStats
	remapB, stB = PruneTree(s, dc, bi.B, graftK)
	st.CheckedNodes += stB.CheckedNodes
	st.CheckedEdges += stB.CheckedEdges
	st.Removed += stB.Removed
	st.Grafted += stB.Grafted
	st.Work.Add(stB.Work)
	if bi.Met {
		a, b := remapA[bi.AMeet], remapB[bi.BMeet]
		if a >= 0 && b >= 0 {
			bi.AMeet, bi.BMeet = a, b
		} else {
			bi.Met = false
			bi.AMeet, bi.BMeet = 0, 0
		}
	}
	return remapA, remapB, st
}
