package rrt

import (
	"sync"
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/rng"
)

func treesEqual(t *testing.T, got, want Result) {
	t.Helper()
	if got.Tree.Len() != want.Tree.Len() || got.Iters != want.Iters || got.Work != want.Work {
		t.Fatalf("shape differs: (%d nodes, %d iters, %+v) vs (%d nodes, %d iters, %+v)",
			got.Tree.Len(), got.Iters, got.Work, want.Tree.Len(), want.Iters, want.Work)
	}
	for i := range got.Tree.Nodes {
		g, w := got.Tree.Nodes[i], want.Tree.Nodes[i]
		if !g.Q.Equal(w.Q, 0) || g.Parent != w.Parent || g.Region != w.Region {
			t.Fatalf("node %d differs: %+v vs %+v", i, g, w)
		}
	}
}

// TestGrowRegionArenaReuseBitIdentical replays the same region growth
// through one dirty arena: the tree must reproduce the fresh arena's
// result bit for bit from the same stream.
func TestGrowRegionArenaReuseBitIdentical(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed30())
	reg := coneRegion(2, geom.V(1, 1, 0), geom.V(0.5, 0.5, 0.5), 0.4, 0.6)
	p := Params{Nodes: 30, Step: 0.05, GoalBias: 0.1}
	dirty := GetArena()
	defer PutArena(dirty)
	for _, seed := range []uint64{21, 22} {
		fresh := GrowRegionArena(s, reg, p, rng.Derive(seed, 0), new(Arena))
		for rep := 0; rep < 3; rep++ {
			treesEqual(t, GrowRegionArena(s, reg, p, rng.Derive(seed, 0), dirty), fresh)
		}
	}
}

// TestGrowRegionPoolConcurrent grows many branches concurrently through
// the shared pool and compares each against its sequential twin; under
// -race this verifies pooled arenas are never shared between tasks.
func TestGrowRegionPoolConcurrent(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed30())
	p := Params{Nodes: 20, Step: 0.05, GoalBias: 0.1}
	dirs := []geom.Vec{
		geom.V(1, 0, 0), geom.V(-1, 0, 0), geom.V(0, 1, 0), geom.V(0, -1, 0),
		geom.V(0, 0, 1), geom.V(0, 0, -1), geom.V(1, 1, 0), geom.V(1, 0, 1),
	}
	const branches = 16

	grow := func(i int) Result {
		reg := coneRegion(i, dirs[i%len(dirs)], geom.V(0.5, 0.5, 0.5), 0.4, 0.6)
		return GrowRegion(s, reg, p, rng.Derive(31, uint64(i)))
	}
	want := make([]Result, branches)
	for i := range want {
		want[i] = grow(i)
	}
	got := make([]Result, branches)
	var wg sync.WaitGroup
	for i := 0; i < branches; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = grow(i)
		}(i)
	}
	wg.Wait()
	for i := range want {
		treesEqual(t, got[i], want[i])
	}
}

// TestConnectArenaReuse checks bridging through a dirty arena matches a
// fresh one.
func TestConnectArenaReuse(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	ra := coneRegion(0, geom.V(1, 0, 0), geom.V(0.5, 0.5, 0.5), 0.45, 0.6)
	rb := coneRegion(1, geom.V(-1, 0, 0), geom.V(0.5, 0.5, 0.5), 0.45, 0.6)
	p := Params{Nodes: 25, Step: 0.05, GoalBias: 0.1}
	ta := GrowRegion(s, ra, p, rng.Derive(41, 0)).Tree
	tb := GrowRegion(s, rb, p, rng.Derive(41, 1)).Tree
	var cw cspace.Counters
	wi, wj, wok := ConnectArena(s, ta, tb, geom.V(0.1, 0.5, 0.5), 4, &cw, new(Arena))
	dirty := GetArena()
	defer PutArena(dirty)
	for rep := 0; rep < 3; rep++ {
		var c cspace.Counters
		gi, gj, gok := ConnectArena(s, ta, tb, geom.V(0.1, 0.5, 0.5), 4, &c, dirty)
		if gi != wi || gj != wj || gok != wok || c != cw {
			t.Fatalf("rep %d: got (%d,%d,%v,%+v), want (%d,%d,%v,%+v)", rep, gi, gj, gok, c, wi, wj, wok, cw)
		}
	}
}
