package rrt

import (
	"sync"

	"parmp/internal/cspace"
	"parmp/internal/geom"
	"parmp/internal/knn"
)

// Arena bundles the reusable buffers one RRT task needs: collision
// scratch, kNN query scratch, a rebuildable kd-tree, point slices and
// candidate-configuration buffers. Extend/Connect tasks borrow one from
// a sync.Pool so steady-state growth allocates only the accepted tree
// nodes. An Arena is not safe for concurrent use.
type Arena struct {
	sc    cspace.Scratch
	bt    cspace.Batch
	qsc   knn.QueryScratch
	tree  knn.KDTree
	pts   []geom.Vec
	aux   []geom.Vec
	hits  []knn.Result
	near  []knn.Result
	qRand cspace.Config
	qNew  cspace.Config
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GetArena borrows an arena from the shared pool.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// PutArena returns an arena to the pool.
func PutArena(a *Arena) { arenaPool.Put(a) }

// treePoints fills a.pts with the configurations of t's nodes.
func (a *Arena) treePoints(t *Tree) []geom.Vec {
	if cap(a.pts) < t.Len() {
		a.pts = make([]geom.Vec, t.Len())
	}
	a.pts = a.pts[:t.Len()]
	for i, n := range t.Nodes {
		a.pts[i] = n.Q
	}
	return a.pts
}

// auxPoints fills a.aux with the configurations of t's nodes.
func (a *Arena) auxPoints(t *Tree) []geom.Vec {
	if cap(a.aux) < t.Len() {
		a.aux = make([]geom.Vec, t.Len())
	}
	a.aux = a.aux[:t.Len()]
	for i, n := range t.Nodes {
		a.aux[i] = n.Q
	}
	return a.aux
}
