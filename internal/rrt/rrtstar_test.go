package rrt

import (
	"math"
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/rng"
)

func TestGrowRegionStarBasics(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	reg := coneRegion(0, geom.V(1, 0, 0), geom.V(0.5, 0.5, 0.5), 0.45, 0.7)
	p := StarParams{Params: Params{Nodes: 40, Step: 0.05, GoalBias: 0.1}}
	res := GrowRegionStar(s, reg, p, rng.New(1))
	if res.Tree.Len() != 40 {
		t.Fatalf("tree size = %d", res.Tree.Len())
	}
	if len(res.Tree.Cost) != res.Tree.Len() {
		t.Fatal("cost array out of sync")
	}
	if res.Tree.Cost[0] != 0 {
		t.Fatal("root cost must be 0")
	}
}

func TestStarCostsConsistent(t *testing.T) {
	// Invariant: every node's cost equals parent's cost + edge length.
	s := cspace.NewPointSpace(env.Mixed30())
	reg := coneRegion(1, geom.V(0, 1, 0), geom.V(0.5, 0.5, 0.5), 0.4, 0.6)
	p := StarParams{Params: Params{Nodes: 40, Step: 0.05, GoalBias: 0.1}}
	res := GrowRegionStar(s, reg, p, rng.New(2))
	for i := 1; i < res.Tree.Len(); i++ {
		n := res.Tree.Nodes[i]
		want := res.Tree.Cost[n.Parent] + s.Distance(res.Tree.Nodes[n.Parent].Q, n.Q)
		if math.Abs(res.Tree.Cost[i]-want) > 1e-9 {
			t.Fatalf("node %d cost %v != parent cost + edge %v", i, res.Tree.Cost[i], want)
		}
	}
}

func TestStarNoParentCycles(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	reg := coneRegion(0, geom.V(1, 1, 0).Unit(), geom.V(0.3, 0.3, 0.5), 0.4, 0.7)
	p := StarParams{Params: Params{Nodes: 60, Step: 0.05, GoalBias: 0.1}}
	res := GrowRegionStar(s, reg, p, rng.New(3))
	for i := range res.Tree.Nodes {
		seen := map[int]bool{}
		for cur := i; cur >= 0; cur = res.Tree.Nodes[cur].Parent {
			if seen[cur] {
				t.Fatalf("parent cycle at node %d", i)
			}
			seen[cur] = true
		}
	}
}

func TestStarCostsBeatOrMatchPlainRRT(t *testing.T) {
	// Rewiring must not make any node's path cost worse than the greedy
	// tree's nearest-parent baseline; on average it should be better.
	s := cspace.NewPointSpace(env.Free())
	regStar := coneRegion(0, geom.V(1, 0, 0), geom.V(0.5, 0.5, 0.5), 0.45, 0.7)
	p := StarParams{Params: Params{Nodes: 60, Step: 0.04, GoalBias: 0.1}}
	res := GrowRegionStar(s, regStar, p, rng.New(4))
	// Every node's cost must be >= straight-line distance to root
	// (admissibility) and <= sum of hops (consistency by construction).
	for i := 1; i < res.Tree.Len(); i++ {
		straight := s.Distance(res.Tree.Nodes[0].Q, res.Tree.Nodes[i].Q)
		if res.Tree.Cost[i] < straight-1e-9 {
			t.Fatalf("node %d cost %v below metric lower bound %v", i, res.Tree.Cost[i], straight)
		}
	}
	if res.Rewires == 0 {
		t.Fatal("expected some rewiring in free space")
	}
}

func TestStarDeterministic(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed30())
	reg := coneRegion(2, geom.V(0, 0, 1), geom.V(0.5, 0.5, 0.5), 0.4, 0.6)
	p := StarParams{Params: Params{Nodes: 30, Step: 0.05, GoalBias: 0.1}}
	a := GrowRegionStar(s, reg, p, rng.Derive(9, 2))
	b := GrowRegionStar(s, reg, p, rng.Derive(9, 2))
	if a.Tree.Len() != b.Tree.Len() || a.Rewires != b.Rewires || a.Work != b.Work {
		t.Fatal("RRT* not deterministic")
	}
}

func TestStarCostsMoreThanPlain(t *testing.T) {
	// RRT* does strictly more local-planning work than plain RRT for the
	// same node budget — the load-balancing-relevant property.
	s := cspace.NewPointSpace(env.Free())
	reg := coneRegion(0, geom.V(1, 0, 0), geom.V(0.5, 0.5, 0.5), 0.45, 0.7)
	plain := GrowRegion(s, reg, Params{Nodes: 40, Step: 0.05, GoalBias: 0.1}, rng.Derive(7, 0))
	star := GrowRegionStar(s, reg, StarParams{Params: Params{Nodes: 40, Step: 0.05, GoalBias: 0.1}}, rng.Derive(7, 0))
	if star.Work.LPCalls <= plain.Work.LPCalls {
		t.Fatalf("RRT* LP calls %d should exceed plain %d", star.Work.LPCalls, plain.Work.LPCalls)
	}
}
