package rrt

import (
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
)

// chainTree builds a deterministic path tree: root at start, each node
// the child of the previous, stepping dx along x.
func chainTree(start geom.Vec, n int, dx float64) *Tree {
	t := NewTree(start, 0)
	for i := 1; i < n; i++ {
		q := start.Clone()
		q[0] += float64(i) * dx
		t.Nodes = append(t.Nodes, Node{Q: q, Parent: i - 1})
	}
	return t
}

// checkTreeInvariants asserts the structural contract every engine
// relies on: node 0 is the root (Parent -1) and parents precede
// children.
func checkTreeInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.Len() == 0 || tr.Nodes[0].Parent != -1 {
		t.Fatalf("root invariant broken: len=%d", tr.Len())
	}
	for i := 1; i < tr.Len(); i++ {
		p := tr.Nodes[i].Parent
		if p < 0 || p >= i {
			t.Fatalf("node %d has parent %d (want 0 <= p < %d)", i, p, i)
		}
	}
}

func TestPruneTreeSeversUnreachableSubtree(t *testing.T) {
	base := env.Free()
	s := cspace.NewPointSpace(base)
	tr := chainTree(geom.V(0.1, 0.5, 0.5), 15, 0.05) // x from 0.10 to 0.80

	mutated := base.Clone()
	// A full-height wall at x ∈ [0.40, 0.44] cuts the chain: nodes inside
	// die, and the frontier beyond cannot regraft (any plan back to the
	// surviving prefix must cross the wall).
	d, err := mutated.AddObstacle(env.BoxObstacle{Box: geom.Box3(0.40, 0, 0, 0.44, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	after := s.WithEnv(mutated)
	dc := cspace.NewDeltaChecker(s, d)
	remap, st := PruneTree(after, dc, tr, 3)

	checkTreeInvariants(t, tr)
	if st.Removed == 0 || st.Grafted != 0 {
		t.Fatalf("removed=%d grafted=%d, want removals and no grafts", st.Removed, st.Grafted)
	}
	// Everything surviving must be valid, with a valid parent edge, in
	// the mutated world.
	for i, nd := range tr.Nodes {
		if !after.Valid(nd.Q, nil) {
			t.Fatalf("surviving node %d is blocked", i)
		}
		if nd.Parent >= 0 && !after.LocalPlan(tr.Nodes[nd.Parent].Q, nd.Q, nil) {
			t.Fatalf("surviving edge %d→%d is blocked", nd.Parent, i)
		}
	}
	// Only the prefix before the wall can survive, and the remap reflects
	// exactly that.
	for old, nw := range remap {
		x := 0.1 + float64(old)*0.05
		if x < 0.40-1e-9 {
			if nw < 0 {
				t.Fatalf("node %d (x=%.2f) before the wall was pruned", old, x)
			}
			if got := tr.Nodes[nw].Q[0]; got != x {
				t.Fatalf("remap[%d]=%d points at x=%.2f, want %.2f", old, nw, got, x)
			}
		} else if nw >= 0 {
			t.Fatalf("node %d (x=%.2f) at or past the wall survived", old, x)
		}
	}
}

func TestPruneTreeRegraftsFrontier(t *testing.T) {
	base := env.Free()
	s := cspace.NewPointSpace(base)
	// Root with two children; one child dies but its own child can
	// re-route through the surviving sibling.
	tr := NewTree(geom.V(0.5, 0.5, 0.5), 0)
	tr.Nodes = append(tr.Nodes,
		Node{Q: geom.V(0.5, 0.6, 0.5), Parent: 0}, // 1: survives
		Node{Q: geom.V(0.6, 0.5, 0.5), Parent: 0}, // 2: dies (inside sphere)
		Node{Q: geom.V(0.6, 0.6, 0.5), Parent: 2}, // 3: severed frontier, graftable
		Node{Q: geom.V(0.7, 0.6, 0.5), Parent: 3}, // 4: saved by 3's graft
	)

	mutated := base.Clone()
	d, err := mutated.AddObstacle(env.SphereObstacle{Center: geom.V(0.6, 0.5, 0.5), Radius: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	after := s.WithEnv(mutated)
	dc := cspace.NewDeltaChecker(s, d)
	remap, st := PruneTree(after, dc, tr, 3)

	checkTreeInvariants(t, tr)
	if st.Removed != 1 {
		t.Fatalf("removed %d nodes, want exactly the blocked one", st.Removed)
	}
	if st.Grafted != 1 {
		t.Fatalf("grafted %d frontiers, want 1", st.Grafted)
	}
	if remap[2] != -1 {
		t.Fatal("blocked node survived")
	}
	for _, old := range []int{0, 1, 3, 4} {
		if remap[old] < 0 {
			t.Fatalf("node %d pruned, want saved", old)
		}
	}
	// The frontier's new parent must be a surviving node with a valid
	// edge — and with the geometry above, the nearest candidate is the
	// sibling at (0.5, 0.6, 0.5).
	g := tr.Nodes[remap[3]]
	if g.Parent != remap[1] {
		t.Fatalf("frontier regrafted to new index %d, want sibling %d", g.Parent, remap[1])
	}
	if !after.LocalPlan(tr.Nodes[g.Parent].Q, g.Q, nil) {
		t.Fatal("grafted edge is blocked")
	}
	// The saved descendant still hangs below the frontier.
	if tr.Nodes[remap[4]].Parent != remap[3] {
		t.Fatal("descendant lost its parent under compaction")
	}
}

func TestPruneTreeNonInvalidatingIsIdentity(t *testing.T) {
	base := env.MedCube()
	s := cspace.NewPointSpace(base)
	tr := chainTree(geom.V(0.05, 0.05, 0.05), 5, 0.02)
	before := append([]Node(nil), tr.Nodes...)

	mutated := base.Clone()
	d, err := mutated.RemoveObstacle(0)
	if err != nil {
		t.Fatal(err)
	}
	dc := cspace.NewDeltaChecker(s.WithEnv(mutated), d)
	remap, st := PruneTree(s.WithEnv(mutated), dc, tr, 3)
	if st.Removed != 0 || st.CheckedNodes != 0 || st.CheckedEdges != 0 {
		t.Fatalf("removal-only prune did work: %+v", st)
	}
	for i, nw := range remap {
		if nw != i {
			t.Fatalf("remap[%d]=%d, want identity", i, nw)
		}
	}
	if len(tr.Nodes) != len(before) {
		t.Fatal("removal-only prune changed the tree")
	}
}

func TestPruneBiTreeMeetState(t *testing.T) {
	base := env.Free()
	s := cspace.NewPointSpace(base)
	build := func() *BiTree {
		a := chainTree(geom.V(0.1, 0.5, 0.5), 4, 0.05)  // x 0.10..0.25
		b := chainTree(geom.V(0.9, 0.5, 0.5), 4, -0.05) // x 0.90..0.75
		return &BiTree{A: a, B: b, Met: true, AMeet: 3, BMeet: 3}
	}

	// Delta far from both trees: meet survives, indices unchanged.
	bi := build()
	far := base.Clone()
	dFar, err := far.AddObstacle(env.SphereObstacle{Center: geom.V(0.5, 0.1, 0.1), Radius: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	_, _, st := PruneBiTree(s.WithEnv(far), cspace.NewDeltaChecker(s, dFar), bi, 3)
	if !bi.Met || bi.AMeet != 3 || bi.BMeet != 3 || st.Removed != 0 {
		t.Fatalf("benign delta disturbed the pair: met=%v meet=(%d,%d) removed=%d",
			bi.Met, bi.AMeet, bi.BMeet, st.Removed)
	}

	// Delta on top of B's meet node: the bridge is gone.
	bi = build()
	hit := base.Clone()
	dHit, err := hit.AddObstacle(env.SphereObstacle{Center: geom.V(0.75, 0.5, 0.5), Radius: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	_, remapB, _ := PruneBiTree(s.WithEnv(hit), cspace.NewDeltaChecker(s, dHit), bi, 3)
	if remapB[3] != -1 {
		t.Fatal("B's meet node should have died")
	}
	if bi.Met {
		t.Fatal("pair still met after losing a meeting node")
	}
	checkTreeInvariants(t, bi.A)
	checkTreeInvariants(t, bi.B)
}
