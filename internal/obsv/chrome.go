package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"parmp/internal/sched"
)

// Timestamp scales for NewChromeTrace: trace_event timestamps are
// microseconds, runtime events are in backend units.
const (
	// ScaleVirtual renders one simulator virtual time unit as one
	// microsecond.
	ScaleVirtual = 1.0
	// ScaleSeconds renders host-executor wall-clock seconds.
	ScaleSeconds = 1e6
)

// chromeEvent is one trace_event record. Field order is the on-disk JSON
// key order, so exports are byte-stable for golden tests.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON Object Format of the trace_event spec — the
// container chrome://tracing and Perfetto both accept.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace accumulates runtime trace events and exports them in
// Chrome trace_event JSON: task executions become complete ("X") spans,
// steal protocol events and retirements become instants, one track
// (thread) per processor. Its Event method is a sched.Tracer, so it
// plugs into Config.Trace of either backend — the simulator's
// virtual-time stream (use ScaleVirtual) and the executor's wall-clock
// stream (use ScaleSeconds) export identically.
//
// Event is safe for concurrent use; the executor additionally serializes
// its trace calls, the simulator emits in virtual-time order.
type ChromeTrace struct {
	mu     sync.Mutex
	scale  float64
	events []chromeEvent
	procs  map[int]bool
}

// NewChromeTrace returns an empty trace sink. scale converts event
// timestamps to microseconds: ScaleVirtual for simulator streams,
// ScaleSeconds for executor streams (values <= 0 mean ScaleVirtual).
func NewChromeTrace(scale float64) *ChromeTrace {
	if scale <= 0 {
		scale = ScaleVirtual
	}
	return &ChromeTrace{scale: scale, procs: map[int]bool{}}
}

// Event records one runtime event. Pass it as the trace hook:
//
//	ct := obsv.NewChromeTrace(obsv.ScaleVirtual)
//	cfg.Trace = ct.Event
func (c *ChromeTrace) Event(e sched.TraceEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.procs[e.Proc] = true
	ce := chromeEvent{TS: e.Time * c.scale, PID: 1, TID: e.Proc}
	switch e.Kind {
	case "exec":
		ce.Name = fmt.Sprintf("task %d", e.Task)
		ce.Ph = "X"
		ce.Dur = e.Dur * c.scale
	default:
		// Steal protocol events and retirements are instants on the
		// acting worker's track (thread scope).
		ce.Name = e.Kind
		ce.Ph = "i"
		ce.S = "t"
		args := map[string]any{}
		if e.Peer >= 0 {
			args["peer"] = e.Peer
		}
		if e.Task >= 0 {
			args["task"] = e.Task
		}
		if len(args) > 0 {
			ce.Args = args
		}
	}
	c.events = append(c.events, ce)
}

// WriteTo emits the accumulated trace as indented trace_event JSON:
// process/thread naming metadata first (one named track per processor,
// in processor order), then the events in arrival order. It implements
// io.WriterTo; the sink stays usable afterwards.
func (c *ChromeTrace) WriteTo(w io.Writer) (int64, error) {
	c.mu.Lock()
	procs := make([]int, 0, len(c.procs))
	for p := range c.procs {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	all := make([]chromeEvent, 0, len(procs)+1+len(c.events))
	all = append(all, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "parmp scheduler runtime"},
	})
	for _, p := range procs {
		all = append(all, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: p,
			Args: map[string]any{"name": fmt.Sprintf("proc %d", p)},
		})
	}
	all = append(all, c.events...)
	c.mu.Unlock()

	data, err := json.MarshalIndent(chromeFile{TraceEvents: all, DisplayTimeUnit: "ms"}, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}
