package obsv

import (
	"math"
	"testing"
	"time"

	"parmp/internal/exec"
	"parmp/internal/steal"
	"parmp/internal/work"
)

// sleepTasks builds n tasks of a fixed wall-clock duration, tagged with
// region ids, so the executor's measured per-task costs are known up to
// scheduler jitter.
func sleepTasks(n int, d time.Duration) []work.Task {
	ts := make([]work.Task, n)
	for i := 0; i < n; i++ {
		ts[i] = work.Task{
			ID:     i,
			Region: i,
			Run: func() (float64, int) {
				time.Sleep(d)
				return 1, 0
			},
		}
	}
	return ts
}

// TestWallClockCostMetricsBalanced: on a deterministic evenly-spread
// load the executor's wall-clock report must satisfy the parity
// contract (per-worker Busy == sum of its tasks' measured Elapsed, every
// task cost at least its sleep) and Analyze must read it as balanced and
// well utilized.
func TestWallClockCostMetricsBalanced(t *testing.T) {
	const perWorker, workers = 6, 4
	const delay = 2 * time.Millisecond
	all := sleepTasks(perWorker*workers, delay)
	queues := make([][]work.Task, workers)
	for w := 0; w < workers; w++ {
		queues[w] = all[w*perWorker : (w+1)*perWorker]
	}
	rep := exec.Run(exec.Config{Workers: workers, Seed: 7}, queues)

	if len(rep.Elapsed) != perWorker*workers || len(rep.TaskRegion) != perWorker*workers {
		t.Fatalf("Elapsed/TaskRegion cover %d/%d tasks, want %d",
			len(rep.Elapsed), len(rep.TaskRegion), perWorker*workers)
	}
	for id, e := range rep.Elapsed {
		if e < delay.Seconds() {
			t.Fatalf("task %d elapsed %.6fs, below its %.6fs sleep", id, e, delay.Seconds())
		}
		if rep.TaskRegion[id] != id {
			t.Fatalf("task %d tagged region %d", id, rep.TaskRegion[id])
		}
	}
	// Busy must be exactly the sum of measured task times per worker.
	perWorkerElapsed := make([]float64, workers)
	for id, e := range rep.Elapsed {
		perWorkerElapsed[rep.ExecutedBy[id]] += e
	}
	for w, ws := range rep.Workers {
		if diff := math.Abs(ws.Busy - perWorkerElapsed[w]); diff > 1e-9*(1+ws.Busy) {
			t.Fatalf("worker %d Busy %.9f != sum Elapsed %.9f", w, ws.Busy, perWorkerElapsed[w])
		}
	}

	m := Analyze(rep)
	// Each worker slept the same total, so imbalance stays near 1 even
	// with scheduler jitter, and most of the makespan is busy time.
	if m.Imbalance < 1 || m.Imbalance > 1.5 {
		t.Errorf("balanced load imbalance %.3f outside [1, 1.5]", m.Imbalance)
	}
	if m.Utilization < 0.5 || m.Utilization > 1+1e-9 {
		t.Errorf("balanced load utilization %.3f outside [0.5, 1]", m.Utilization)
	}
	if m.StealEfficiency != 1 || m.TasksMigrated != 0 {
		t.Errorf("no-steal run reported steals: eff %.2f migrated %d", m.StealEfficiency, m.TasksMigrated)
	}
}

// TestWallClockCostMetricsSkewed: all work on one worker. Without a
// steal policy Analyze must expose the imbalance; with stealing enabled
// tasks migrate and both imbalance and utilization improve.
func TestWallClockCostMetricsSkewed(t *testing.T) {
	const n, workers = 32, 4
	const delay = time.Millisecond
	mkQueues := func() [][]work.Task {
		qs := make([][]work.Task, workers)
		qs[0] = sleepTasks(n, delay)
		return qs
	}

	noSteal := Analyze(exec.Run(exec.Config{Workers: workers, Seed: 11}, mkQueues()))
	if noSteal.Imbalance < 2 {
		t.Errorf("fully skewed no-steal imbalance %.3f, want >= 2 (ideal %d)", noSteal.Imbalance, workers)
	}
	if noSteal.Utilization > 0.6 {
		t.Errorf("fully skewed no-steal utilization %.3f, want <= 0.6 (ideal %.2f)",
			noSteal.Utilization, 1.0/workers)
	}

	stealRep := exec.Run(exec.Config{
		Workers: workers, Seed: 11, Policy: steal.RandK{K: 3}, StealChunk: 0.25,
	}, mkQueues())
	withSteal := Analyze(stealRep)
	if withSteal.TasksMigrated == 0 {
		t.Fatal("stealing run migrated no tasks off the loaded worker")
	}
	if withSteal.Imbalance >= noSteal.Imbalance {
		t.Errorf("stealing should cut imbalance: %.3f vs %.3f", withSteal.Imbalance, noSteal.Imbalance)
	}
	if withSteal.Utilization <= noSteal.Utilization {
		t.Errorf("stealing should raise utilization: %.3f vs %.3f", withSteal.Utilization, noSteal.Utilization)
	}
	// Migrated tasks keep their cost attribution: every task still has a
	// measured Elapsed and its original region tag.
	if len(stealRep.Elapsed) != n || len(stealRep.TaskRegion) != n {
		t.Fatalf("stolen run lost cost attribution: %d/%d of %d tasks",
			len(stealRep.Elapsed), len(stealRep.TaskRegion), n)
	}
}
