package obsv

import (
	"math"
	"strings"
	"testing"

	"parmp/internal/sched"
)

// report builds a Report from per-worker busy times and steal counters.
func report(makespan float64, ws []sched.WorkerStats) sched.Report {
	return sched.Report{Makespan: makespan, Workers: ws}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAnalyzeMath(t *testing.T) {
	// Two workers: busy 6 and 2 over a makespan of 8.
	//   utilization = (6+2) / (2*8)   = 0.5
	//   imbalance   = max 6 / mean 4  = 1.5
	//   steal-eff   = 2 granted / 4 issued = 0.5
	rep := report(8, []sched.WorkerStats{
		{Busy: 6, StealsIssued: 3, StealsGranted: 2, StealsDenied: 1, TasksStolen: 2, TasksLost: 0},
		{Busy: 2, StealsIssued: 1, StealsDenied: 1, TasksLost: 3},
	})
	m := Analyze(rep)
	if !almost(m.BusyTotal, 8) {
		t.Errorf("BusyTotal = %v, want 8", m.BusyTotal)
	}
	if !almost(m.Utilization, 0.5) {
		t.Errorf("Utilization = %v, want 0.5", m.Utilization)
	}
	if !almost(m.Imbalance, 1.5) {
		t.Errorf("Imbalance = %v, want 1.5", m.Imbalance)
	}
	if !almost(m.StealEfficiency, 0.5) {
		t.Errorf("StealEfficiency = %v, want 0.5", m.StealEfficiency)
	}
	if m.StealsIssued != 4 || m.StealsGranted != 2 || m.StealsDenied != 2 {
		t.Errorf("steal counts = %d/%d/%d, want 4/2/2",
			m.StealsIssued, m.StealsGranted, m.StealsDenied)
	}
	if m.TasksMigrated != 2 {
		t.Errorf("TasksMigrated = %d, want 2", m.TasksMigrated)
	}
	if m.TaskTransfers != 3 {
		t.Errorf("TaskTransfers = %d, want 3", m.TaskTransfers)
	}
}

func TestAnalyzePerfectBalance(t *testing.T) {
	rep := report(4, []sched.WorkerStats{{Busy: 4}, {Busy: 4}, {Busy: 4}})
	m := Analyze(rep)
	if !almost(m.Imbalance, 1) {
		t.Errorf("Imbalance = %v, want 1 (perfect balance)", m.Imbalance)
	}
	if !almost(m.Utilization, 1) {
		t.Errorf("Utilization = %v, want 1", m.Utilization)
	}
	// No steals issued: nothing wasted, efficiency is 1 by definition.
	if !almost(m.StealEfficiency, 1) {
		t.Errorf("StealEfficiency = %v, want 1 with no steals", m.StealEfficiency)
	}
}

func TestAnalyzeDegenerate(t *testing.T) {
	// Empty report: every ratio must stay finite.
	m := Analyze(sched.Report{})
	if m.Imbalance != 0 || m.Utilization != 0 {
		t.Errorf("empty report: imbalance %v utilization %v, want 0/0", m.Imbalance, m.Utilization)
	}
	// Workers that never ran anything.
	m = Analyze(report(5, []sched.WorkerStats{{}, {}}))
	if m.Imbalance != 0 || m.Utilization != 0 {
		t.Errorf("idle workers: imbalance %v utilization %v, want 0/0", m.Imbalance, m.Utilization)
	}
}

func TestPhaseTable(t *testing.T) {
	phases := []Phase{
		{Name: "sample", Report: report(4, []sched.WorkerStats{{Busy: 4}, {Busy: 4}})},
		{Name: "construct", Report: report(8, []sched.WorkerStats{
			{Busy: 6, StealsIssued: 2, StealsGranted: 1, TasksStolen: 1, TasksLost: 0},
			{Busy: 2, TasksLost: 1},
		})},
	}
	tb := PhaseTable("per-phase load balance", phases)
	if len(tb.XS) != 2 || len(tb.Rows) != 2 {
		t.Fatalf("table has %d/%d rows, want 2", len(tb.XS), len(tb.Rows))
	}
	if len(tb.Columns) != len(tb.Rows[0]) {
		t.Fatalf("%d columns but %d values per row", len(tb.Columns), len(tb.Rows[0]))
	}
	if got := tb.Column("imbalance"); !almost(got[0], 1) || !almost(got[1], 1.5) {
		t.Errorf("imbalance column = %v, want [1 1.5]", got)
	}
	if got := tb.Column("steal-eff"); !almost(got[0], 1) || !almost(got[1], 0.5) {
		t.Errorf("steal-eff column = %v, want [1 0.5]", got)
	}
	// Phase names ride along as notes (X stays numeric so CSV/JSON export
	// work unchanged).
	if len(tb.Notes) != 2 || !strings.Contains(tb.Notes[0], "sample") || !strings.Contains(tb.Notes[1], "construct") {
		t.Errorf("notes should name the phases, got %v", tb.Notes)
	}
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.Contains(sb.String(), "imbalance") {
		t.Errorf("CSV export missing header, got %q", sb.String())
	}
}
