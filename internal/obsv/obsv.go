// Package obsv is the observability layer over the scheduler runtime:
// it derives the paper's load-balance metrics — imbalance factor,
// utilization, steal efficiency, migration volume — from any
// sched.Report (either backend, virtual or wall-clock time), renders
// them as metrics.Table rows so the existing CSV/JSON exporters work
// unchanged, and exports execution traces in Chrome trace_event JSON
// for chrome://tracing and Perfetto (see ChromeTrace).
//
// The paper's central evidence is per-processor utilization over time
// (its Figures 9-12: who was busy, who idled, who stole); this package
// makes those quantities first-class for every phase of a run instead of
// burying them in raw worker stats.
package obsv

import (
	"fmt"

	"parmp/internal/metrics"
	"parmp/internal/sched"
)

// Metrics are the load-balance summaries derived from one sched.Report.
// Times are in the report's units (virtual units for the simulator,
// seconds for the host executor); every ratio is unit-free, so the two
// backends' metrics compare directly.
type Metrics struct {
	// Makespan is the report's completion time.
	Makespan float64
	// BusyTotal is the summed busy time over all workers.
	BusyTotal float64
	// Utilization is BusyTotal / (workers * Makespan): the fraction of
	// available worker-time spent executing tasks (1 = no idling).
	Utilization float64
	// Imbalance is the imbalance factor max(busy) / mean(busy): 1 for a
	// perfectly balanced phase, growing as work concentrates; 0 when no
	// work ran at all.
	Imbalance float64
	// StealEfficiency is StealsGranted / StealsIssued — the fraction of
	// steal requests that came back with work. It is 1 when no steals
	// were issued (nothing was wasted).
	StealEfficiency float64
	// Steal request accounting, summed over workers.
	StealsIssued, StealsGranted, StealsDenied int
	// TasksMigrated counts tasks executed by a worker other than the one
	// originally assigned (the sum of per-worker TasksStolen).
	TasksMigrated int
	// TaskTransfers counts deque-to-deque task moves, including re-steals
	// of tasks that never ran on the intermediate thief (the sum of
	// per-worker TasksLost); it is >= TasksMigrated, and the migration
	// volume the machine actually paid for.
	TaskTransfers int
}

// Analyze derives load-balance metrics from a runtime report.
func Analyze(rep sched.Report) Metrics {
	m := Metrics{Makespan: rep.Makespan}
	var maxBusy float64
	for _, ws := range rep.Workers {
		m.BusyTotal += ws.Busy
		if ws.Busy > maxBusy {
			maxBusy = ws.Busy
		}
		m.StealsIssued += ws.StealsIssued
		m.StealsGranted += ws.StealsGranted
		m.StealsDenied += ws.StealsDenied
		m.TasksMigrated += ws.TasksStolen
		m.TaskTransfers += ws.TasksLost
	}
	if n := len(rep.Workers); n > 0 {
		if mean := m.BusyTotal / float64(n); mean > 0 {
			m.Imbalance = maxBusy / mean
		}
		if m.Makespan > 0 {
			m.Utilization = m.BusyTotal / (float64(n) * m.Makespan)
		}
	}
	m.StealEfficiency = 1
	if m.StealsIssued > 0 {
		m.StealEfficiency = float64(m.StealsGranted) / float64(m.StealsIssued)
	}
	return m
}

// Phase labels one report for table rendering.
type Phase struct {
	Name   string
	Report sched.Report
}

// phaseColumns are the PhaseTable series, one Metrics field each.
var phaseColumns = []string{
	"makespan", "utilization", "imbalance", "steal-eff",
	"steals-issued", "steals-granted", "tasks-migrated", "task-transfers",
}

// PhaseTable derives per-phase load-balance metrics and lays them out as
// one metrics.Table row per phase (X = phase index; a note names each
// index), so Table.WriteCSV / WriteJSON export them unchanged.
func PhaseTable(title string, phases []Phase) *metrics.Table {
	t := &metrics.Table{
		Title:   title,
		XLabel:  "phase",
		Columns: phaseColumns,
	}
	for i, ph := range phases {
		m := Analyze(ph.Report)
		t.AddRow(float64(i),
			m.Makespan, m.Utilization, m.Imbalance, m.StealEfficiency,
			float64(m.StealsIssued), float64(m.StealsGranted),
			float64(m.TasksMigrated), float64(m.TaskTransfers))
		t.Notes = append(t.Notes, fmt.Sprintf("phase %d = %s", i, ph.Name))
	}
	return t
}
