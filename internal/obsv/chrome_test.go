package obsv

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"parmp/internal/dist"
	"parmp/internal/sched"
	"parmp/internal/steal"
	"parmp/internal/work"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedStream is a deterministic trace covering every event kind.
func fixedStream() []sched.TraceEvent {
	return []sched.TraceEvent{
		{Time: 0, Kind: "exec", Proc: 0, Peer: -1, Task: 3, Dur: 10},
		{Time: 0, Kind: "steal-req", Proc: 1, Peer: 0, Task: -1},
		{Time: 5, Kind: "steal-deny", Proc: 1, Peer: 0, Task: -1},
		{Time: 6, Kind: "steal-req", Proc: 1, Peer: 0, Task: -1},
		{Time: 10, Kind: "exec", Proc: 0, Peer: -1, Task: 4, Dur: 2.5},
		{Time: 11, Kind: "steal-grant", Proc: 1, Peer: 0, Task: 5},
		{Time: 12, Kind: "exec", Proc: 1, Peer: -1, Task: 5, Dur: 4},
		{Time: 16, Kind: "retire", Proc: 1, Peer: -1, Task: -1},
		{Time: 16, Kind: "retire", Proc: 0, Peer: -1, Task: -1},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	ct := NewChromeTrace(ScaleVirtual)
	for _, e := range fixedStream() {
		ct.Event(e)
	}
	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace diverged from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// decode parses a trace export back into the generic JSON shape Perfetto
// and chrome://tracing consume.
func decode(t *testing.T, data []byte) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatalf("export has no traceEvents array: %v", doc)
	}
	return doc
}

func TestChromeTraceShape(t *testing.T) {
	ct := NewChromeTrace(2) // 2 microseconds per virtual unit
	for _, e := range fixedStream() {
		ct.Event(e)
	}
	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	doc := decode(t, buf.Bytes())
	events := doc["traceEvents"].([]any)

	tracks := map[float64]bool{}
	execs, retires := 0, 0
	for _, raw := range events {
		e := raw.(map[string]any)
		switch e["ph"] {
		case "X":
			execs++
			tracks[e["tid"].(float64)] = true
			if e["dur"].(float64) <= 0 {
				t.Errorf("exec span without duration: %v", e)
			}
		case "i":
			if e["name"] == "retire" {
				retires++
			}
		case "M":
			// metadata
		default:
			t.Errorf("unexpected phase %q", e["ph"])
		}
	}
	if execs != 3 {
		t.Errorf("exec spans = %d, want 3", execs)
	}
	if retires != 2 {
		t.Errorf("retire instants = %d, want 2", retires)
	}
	if len(tracks) != 2 {
		t.Errorf("exec spans on %d tracks, want 2 (one per processor)", len(tracks))
	}
	// The scale applies to timestamps and durations alike.
	for _, raw := range events {
		e := raw.(map[string]any)
		if e["name"] == "task 5" {
			if got := e["ts"].(float64); got != 24 {
				t.Errorf("task 5 ts = %v, want 24 (12 units x scale 2)", got)
			}
			if got := e["dur"].(float64); got != 8 {
				t.Errorf("task 5 dur = %v, want 8 (4 units x scale 2)", got)
			}
		}
	}
}

// TestChromeTraceFromSimulator drives a real simulated run through the
// exporter end to end: the output must be valid trace_event JSON with one
// named track per processor that did anything.
func TestChromeTraceFromSimulator(t *testing.T) {
	const workers = 4
	queues := make([][]work.Task, workers)
	for i := 0; i < 12; i++ {
		i := i
		queues[0] = append(queues[0], work.Task{
			ID:  i,
			Run: func() (float64, int) { return float64(2 + i%3), 0 },
		})
	}
	ct := NewChromeTrace(ScaleVirtual)
	dist.Run(sched.Config{
		Workers: workers,
		Profile: work.Hopper(),
		Policy:  steal.RandK{K: 2},
		Seed:    9,
		Trace:   ct.Event,
	}, queues)
	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	doc := decode(t, buf.Bytes())
	names := 0
	for _, raw := range doc["traceEvents"].([]any) {
		e := raw.(map[string]any)
		if e["ph"] == "M" && e["name"] == "thread_name" {
			names++
		}
	}
	if names != workers {
		t.Errorf("thread_name metadata for %d procs, want %d", names, workers)
	}
}
