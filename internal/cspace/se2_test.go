package cspace

import (
	"math"
	"testing"

	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/rng"
)

func corridorEnv() *env.Environment {
	// A horizontal corridor of height 0.3 between two slabs.
	return &env.Environment{
		Name:   "corridor",
		Bounds: geom.Box2(0, 0, 1, 1),
		Obstacles: []env.Obstacle{
			env.BoxObstacle{Box: geom.Box2(0, 0, 1, 0.35)},
			env.BoxObstacle{Box: geom.Box2(0, 0.65, 1, 1)},
		},
	}
}

func TestSE2SpaceBasics(t *testing.T) {
	s := NewSE2Space(corridorEnv(), NewRigidRect(0.2, 0.05))
	if s.Dim() != 3 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	// Long thin body horizontal in the corridor: fits.
	if !s.Valid(geom.V(0.5, 0.5, 0), nil) {
		t.Fatal("horizontal body should fit the corridor")
	}
	// Rotated vertical: the 0.4-long body exceeds the 0.3 corridor.
	if s.Valid(geom.V(0.5, 0.5, math.Pi/2), nil) {
		t.Fatal("vertical body should hit the walls")
	}
}

func TestSE2RotationSweep(t *testing.T) {
	s := NewSE2Space(corridorEnv(), NewRigidRect(0.2, 0.05))
	// Local plan that rotates into the wall must fail.
	a := geom.V(0.5, 0.5, 0.0)
	b := geom.V(0.5, 0.5, math.Pi/2)
	if s.LocalPlan(a, b, nil) {
		t.Fatal("rotation into walls should fail")
	}
	// Translation along the corridor is fine.
	c := geom.V(0.3, 0.5, 0.0)
	d := geom.V(0.7, 0.5, 0.0)
	if !s.LocalPlan(c, d, nil) {
		t.Fatal("corridor translation should succeed")
	}
}

func TestSE2OutlineEdgesCatchThinObstacles(t *testing.T) {
	// A thin pillar thinner than the gap between outline vertices: the
	// edge sweep must still catch it when it pierces the body interior
	// boundary.
	e := &env.Environment{
		Name:   "pillar",
		Bounds: geom.Box2(0, 0, 1, 1),
		Obstacles: []env.Obstacle{
			env.BoxObstacle{Box: geom.Box2(0.495, 0.4, 0.505, 0.6)},
		},
	}
	s := NewSE2Space(e, NewRigidRect(0.1, 0.02))
	// Body centered left of the pillar, its right edge crossing it.
	if s.Valid(geom.V(0.45, 0.45, 0), nil) {
		t.Fatal("body outline crossing the pillar should collide")
	}
	if !s.Valid(geom.V(0.2, 0.45, 0), nil) {
		t.Fatal("distant body should be free")
	}
}

func TestSE2WorksWithPRM(t *testing.T) {
	// End-to-end: the SE(2) body plans through the corridor with PRM.
	s := NewSE2Space(corridorEnv(), NewRigidRect(0.1, 0.03))
	// Sampling in the corridor band should succeed often enough.
	valid := 0
	r := rng.New(11)
	var c Counters
	for i := 0; i < 500; i++ {
		q := s.SampleIn(s.Bounds, r, &c)
		if s.Valid(q, &c) {
			valid++
		}
	}
	if valid == 0 {
		t.Fatal("no valid SE(2) samples in corridor")
	}
}
