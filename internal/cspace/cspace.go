// Package cspace models configuration spaces: robots, configurations,
// distance metrics, samplers, validity checking and the straight-line
// local planner.
//
// All validity and local-planning operations report the amount of
// collision-detection work they performed through a Counters value. Those
// counts are the currency of the whole reproduction: the discrete-event
// machine simulator charges each region task exactly the work its planner
// actually did, which is what makes load imbalance genuine rather than
// synthetic.
package cspace

import (
	"fmt"
	"math"

	"parmp/internal/env"
	"parmp/internal/geom"
)

// Config is a point in configuration space: the robot's d independent
// degrees of freedom.
type Config = geom.Vec

// Counters accumulates the algorithmic work performed by planning
// operations.
type Counters struct {
	CDCalls    int64 // configuration validity checks
	CDObstacle int64 // individual obstacle containment/segment tests
	LPSteps    int64 // local-plan resolution steps
	LPCalls    int64 // local-plan invocations
	KNNQueries int64 // k-nearest-neighbour queries
	KNNEvals   int64 // distance evaluations inside kNN queries
	Samples    int64 // configurations generated
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.CDCalls += o.CDCalls
	c.CDObstacle += o.CDObstacle
	c.LPSteps += o.LPSteps
	c.LPCalls += o.LPCalls
	c.KNNQueries += o.KNNQueries
	c.KNNEvals += o.KNNEvals
	c.Samples += o.Samples
}

// String summarizes the counters.
func (c Counters) String() string {
	return fmt.Sprintf("cd=%d obst=%d lp=%d/%d knn=%d/%d samples=%d",
		c.CDCalls, c.CDObstacle, c.LPCalls, c.LPSteps, c.KNNQueries, c.KNNEvals, c.Samples)
}

// Robot maps configurations to workspace collision queries.
type Robot interface {
	// DOF returns the configuration dimension.
	DOF() int
	// ConfigFree reports whether configuration q is collision-free in e
	// and how many obstacle tests were used.
	ConfigFree(e *env.Environment, q Config) (bool, int)
	// EdgeFree reports whether the workspace sweep between two
	// configurations that are already close (one resolution step apart)
	// is collision-free. Implementations may assume a≈b.
	EdgeFree(e *env.Environment, a, b Config) (bool, int)
}

// PointRobot is a point in the workspace; its configuration is its
// position. The simplest and fastest robot, used by the theoretical model
// experiments.
type PointRobot struct {
	Dim int
}

// DOF implements Robot.
func (r PointRobot) DOF() int { return r.Dim }

// ConfigFree implements Robot.
func (r PointRobot) ConfigFree(e *env.Environment, q Config) (bool, int) {
	return e.CheckPoint(q)
}

// EdgeFree implements Robot.
func (r PointRobot) EdgeFree(e *env.Environment, a, b Config) (bool, int) {
	return e.SegmentFree(a, b)
}

// RigidBody is a free-flying rigid body in 3D. Configurations are
// (x, y, z, roll, pitch, yaw); collision is checked by transforming a set
// of body sample points (vertices of the body's shape) into the workspace.
// This is the rigid-body robot of the paper's PRM experiments.
type RigidBody struct {
	// BodyPoints are collision probe points in the body frame.
	BodyPoints []geom.Vec
}

// NewRigidBox returns a rigid body shaped as a box with the given half
// extents, probed at its 8 corners and center.
func NewRigidBox(hx, hy, hz float64) RigidBody {
	pts := []geom.Vec{geom.V(0, 0, 0)}
	for _, sx := range []float64{-1, 1} {
		for _, sy := range []float64{-1, 1} {
			for _, sz := range []float64{-1, 1} {
				pts = append(pts, geom.V(sx*hx, sy*hy, sz*hz))
			}
		}
	}
	return RigidBody{BodyPoints: pts}
}

// DOF implements Robot.
func (r RigidBody) DOF() int { return 6 }

// pose converts a configuration to a rigid transform. The translation
// aliases q's first three components, so it costs no allocation.
func (r RigidBody) pose(q Config) geom.Transform {
	return geom.Transform{
		R: geom.QuatFromEuler(q[3], q[4], q[5]),
		T: q[0:3:3],
	}
}

// ConfigFree implements Robot. Probe points are checked individually and
// the spokes from the first probe (the body center) to every other probe
// are swept so thin obstacles crossing the body interior are caught.
func (r RigidBody) ConfigFree(e *env.Environment, q Config) (bool, int) {
	tr := r.pose(q)
	tests := 0
	world := make([]geom.Vec, len(r.BodyPoints))
	for i, bp := range r.BodyPoints {
		world[i] = tr.Apply(bp)
		free, n := e.CheckPoint(world[i])
		tests += n
		if !free {
			return false, tests
		}
	}
	for i := 1; i < len(world); i++ {
		free, n := e.SegmentFree(world[0], world[i])
		tests += n
		if !free {
			return false, tests
		}
	}
	return true, tests
}

// EdgeFree implements Robot.
func (r RigidBody) EdgeFree(e *env.Environment, a, b Config) (bool, int) {
	ta, tb := r.pose(a), r.pose(b)
	tests := 0
	for _, bp := range r.BodyPoints {
		free, n := e.SegmentFree(ta.Apply(bp), tb.Apply(bp))
		tests += n
		if !free {
			return false, tests
		}
	}
	return true, tests
}

// Linkage is a planar articulated chain anchored at Base: configuration
// components are absolute joint angles; link i spans LinkLen[i]. Collision
// is checked by sampling points along each link. This is the
// many-degrees-of-freedom robot class (manipulators, protein backbones)
// the paper's introduction motivates.
type Linkage struct {
	Base     geom.Vec // anchor point in a 2D workspace
	LinkLen  []float64
	ProbesPL int // collision probe points per link (default 4)
}

// DOF implements Robot.
func (l Linkage) DOF() int { return len(l.LinkLen) }

// jointPositions returns the chain's joint endpoint positions for q.
func (l Linkage) jointPositions(q Config) []geom.Vec {
	pos := make([]geom.Vec, len(l.LinkLen)+1)
	pos[0] = l.Base
	for i, length := range l.LinkLen {
		pos[i+1] = pos[i].Add(geom.V(length*math.Cos(q[i]), length*math.Sin(q[i])))
	}
	return pos
}

// EndEffector returns the workspace position of the chain tip for q.
func (l Linkage) EndEffector(q Config) geom.Vec {
	pos := l.jointPositions(q)
	return pos[len(pos)-1]
}

func (l Linkage) probes() int {
	if l.ProbesPL <= 0 {
		return 4
	}
	return l.ProbesPL
}

// ConfigFree implements Robot. Each link is a workspace segment, so
// collision is exact: joints are point-checked (bounds + obstacles) and
// link bodies are segment-swept.
func (l Linkage) ConfigFree(e *env.Environment, q Config) (bool, int) {
	pos := l.jointPositions(q)
	tests := 0
	for _, p := range pos {
		free, n := e.CheckPoint(p)
		tests += n
		if !free {
			return false, tests
		}
	}
	for i := 0; i+1 < len(pos); i++ {
		free, n := e.SegmentFree(pos[i], pos[i+1])
		tests += n
		if !free {
			return false, tests
		}
	}
	return true, tests
}

// EdgeFree implements Robot. For small steps the swept volume is
// approximated by checking link probe-point segments between the two
// configurations.
func (l Linkage) EdgeFree(e *env.Environment, a, b Config) (bool, int) {
	pa, pb := l.jointPositions(a), l.jointPositions(b)
	tests := 0
	np := l.probes()
	for i := 0; i+1 < len(pa); i++ {
		for p := 0; p <= np; p++ {
			t := float64(p) / float64(np)
			free, n := e.SegmentFree(pa[i].Lerp(pa[i+1], t), pb[i].Lerp(pb[i+1], t))
			tests += n
			if !free {
				return false, tests
			}
		}
	}
	return true, tests
}
