package cspace

import "parmp/internal/rng"

// PathLength returns the total metric length of a waypoint path.
func PathLength(s *Space, path []Config) float64 {
	var total float64
	for i := 0; i+1 < len(path); i++ {
		total += s.Distance(path[i], path[i+1])
	}
	return total
}

// PathValid reports whether every hop of the path is a valid local plan,
// metering work into c.
func PathValid(s *Space, path []Config, c *Counters) bool {
	if len(path) == 0 {
		return false
	}
	if !s.Valid(path[0], c) {
		return false
	}
	for i := 0; i+1 < len(path); i++ {
		if !s.LocalPlan(path[i], path[i+1], c) {
			return false
		}
	}
	return true
}

// Shortcut post-processes a path with random shortcutting: repeatedly
// pick two waypoints and replace the intervening subpath when the direct
// local plan between them is valid. iters bounds the attempts. The input
// slice is not modified; the (possibly shorter) result is returned.
func Shortcut(s *Space, path []Config, iters int, r *rng.Stream, c *Counters) []Config {
	if len(path) < 3 {
		return append([]Config(nil), path...)
	}
	out := make([]Config, len(path))
	copy(out, path)
	for it := 0; it < iters && len(out) > 2; it++ {
		i := r.Intn(len(out) - 2)
		j := i + 2 + r.Intn(len(out)-i-2)
		if s.LocalPlan(out[i], out[j], c) {
			out = append(out[:i+1], out[j:]...)
		}
	}
	return out
}

// Densify inserts intermediate configurations so that no hop exceeds
// maxStep in metric distance, which is useful before executing a path on
// a controller with bounded step size.
func Densify(s *Space, path []Config, maxStep float64) []Config {
	if len(path) == 0 || maxStep <= 0 {
		return append([]Config(nil), path...)
	}
	out := []Config{path[0].Clone()}
	for i := 0; i+1 < len(path); i++ {
		d := s.Distance(path[i], path[i+1])
		steps := int(d / maxStep)
		for k := 1; k <= steps; k++ {
			t := float64(k) / float64(steps+1)
			out = append(out, path[i].Lerp(path[i+1], t))
		}
		out = append(out, path[i+1].Clone())
	}
	return out
}
