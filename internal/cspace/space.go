package cspace

import (
	"math"

	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/rng"
)

// Space binds a robot to an environment and defines the planning C-space:
// bounds per DOF, the distance metric, sampling, validity and local
// planning.
type Space struct {
	Env   *env.Environment
	Robot Robot
	// Bounds delimits each configuration dimension. For positional DOFs
	// this is usually the workspace bounds; for angular DOFs [-pi, pi].
	Bounds geom.AABB
	// Weights scales each dimension in the distance metric (angular DOFs
	// typically get smaller weight). Nil means all ones.
	Weights []float64
	// Resolution is the local planner step size in metric distance.
	Resolution float64
	// Steer, when non-nil, replaces straight-line motion in LocalPlan and
	// StepToward with a kinematically feasible curve (e.g. Dubins paths
	// for a car). Distance remains the symmetric metric used by
	// nearest-neighbour structures.
	Steer Steering
}

// Steering generates feasible motions between configurations for
// non-holonomic robots.
type Steering interface {
	// PathLength returns the length of the feasible path from a to b
	// (may differ from the metric and need not be symmetric).
	PathLength(a, b Config) float64
	// Interp returns the configuration at arc length s in [0,
	// PathLength(a, b)] along the feasible path.
	Interp(a, b Config, s float64) Config
}

// NewPointSpace returns a Space for a point robot in e: the C-space equals
// the workspace.
func NewPointSpace(e *env.Environment) *Space {
	return &Space{
		Env:        e,
		Robot:      PointRobot{Dim: e.Dim()},
		Bounds:     e.Bounds,
		Resolution: defaultResolution(e.Bounds),
	}
}

// NewRigidBodySpace returns a Space for a rigid body in a 3D environment:
// 6 DOF (x, y, z, roll, pitch, yaw) with angular dimensions bounded by
// [-pi, pi] and down-weighted in the metric.
func NewRigidBodySpace(e *env.Environment, body RigidBody) *Space {
	lo := geom.V(e.Bounds.Lo[0], e.Bounds.Lo[1], e.Bounds.Lo[2], -math.Pi, -math.Pi, -math.Pi)
	hi := geom.V(e.Bounds.Hi[0], e.Bounds.Hi[1], e.Bounds.Hi[2], math.Pi, math.Pi, math.Pi)
	b := geom.NewAABB(lo, hi)
	return &Space{
		Env:        e,
		Robot:      body,
		Bounds:     b,
		Weights:    []float64{1, 1, 1, 0.1, 0.1, 0.1},
		Resolution: defaultResolution(e.Bounds),
	}
}

// NewLinkageSpace returns a Space for an articulated planar linkage: each
// DOF is an absolute joint angle in [-pi, pi].
func NewLinkageSpace(e *env.Environment, l Linkage) *Space {
	d := l.DOF()
	lo := make(geom.Vec, d)
	hi := make(geom.Vec, d)
	for i := 0; i < d; i++ {
		lo[i], hi[i] = -math.Pi, math.Pi
	}
	return &Space{
		Env:        e,
		Robot:      l,
		Bounds:     geom.NewAABB(lo, hi),
		Resolution: 0.05,
	}
}

func defaultResolution(b geom.AABB) float64 {
	// 1/100 of the workspace diagonal.
	return b.Extent().Norm() / 100
}

// Dim returns the C-space dimension.
func (s *Space) Dim() int { return s.Bounds.Dim() }

// Distance returns the (weighted) Euclidean metric between a and b.
func (s *Space) Distance(a, b Config) float64 {
	if s.Weights == nil {
		return a.Dist(b)
	}
	var sum float64
	for i := range a {
		d := (a[i] - b[i]) * s.Weights[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// SampleIn draws a uniform configuration whose positional coordinates lie
// in region (a sub-box of the first region.Dim() C-space dimensions);
// remaining dimensions are drawn from the full C-space bounds. The sample
// is not validity-checked.
func (s *Space) SampleIn(region geom.AABB, r *rng.Stream, c *Counters) Config {
	q := make(Config, s.Dim())
	for i := range q {
		if i < region.Dim() {
			q[i] = r.Range(region.Lo[i], region.Hi[i])
		} else {
			q[i] = r.Range(s.Bounds.Lo[i], s.Bounds.Hi[i])
		}
	}
	if c != nil {
		c.Samples++
	}
	return q
}

// SampleFreeIn draws uniform configurations in region until one is valid
// or maxTries is exhausted; ok reports success. Collision work is
// accumulated into c.
func (s *Space) SampleFreeIn(region geom.AABB, r *rng.Stream, maxTries int, c *Counters) (Config, bool) {
	for t := 0; t < maxTries; t++ {
		q := s.SampleIn(region, r, c)
		if s.Valid(q, c) {
			return q, true
		}
	}
	return nil, false
}

// Valid reports whether q is collision-free, metering work into c.
func (s *Space) Valid(q Config, c *Counters) bool {
	free, tests := s.Robot.ConfigFree(s.Env, q)
	if c != nil {
		c.CDCalls++
		c.CDObstacle += int64(tests)
	}
	return free
}

// LocalPlan reports whether the path a→b (straight line, or the steering
// curve when Steer is set) is valid at the space's resolution. Work (one
// validity check plus one edge sweep per step) is metered into c. The
// endpoints are assumed already validated.
func (s *Space) LocalPlan(a, b Config, c *Counters) bool {
	if c != nil {
		c.LPCalls++
	}
	var total float64
	interp := func(t float64) Config { return a.Lerp(b, t) }
	if s.Steer != nil {
		total = s.Steer.PathLength(a, b)
		interp = func(t float64) Config { return s.Steer.Interp(a, b, t*total) }
	} else {
		total = s.Distance(a, b)
	}
	steps := int(math.Ceil(total / s.Resolution))
	if steps < 1 {
		steps = 1
	}
	prev := a
	for i := 1; i <= steps; i++ {
		q := interp(float64(i) / float64(steps))
		if c != nil {
			c.LPSteps++
		}
		if !s.Valid(q, c) {
			return false
		}
		free, tests := s.Robot.EdgeFree(s.Env, prev, q)
		if c != nil {
			c.CDObstacle += int64(tests)
		}
		if !free {
			return false
		}
		prev = q
	}
	return true
}

// Interpolate returns the configuration at fraction t along a→b.
func (s *Space) Interpolate(a, b Config, t float64) Config {
	return a.Lerp(b, t)
}

// StepToward returns the configuration at most stepSize from a toward b —
// along the straight line (metric distance) or the steering curve (arc
// length) when Steer is set — and whether it reached b exactly.
func (s *Space) StepToward(a, b Config, stepSize float64) (Config, bool) {
	if s.Steer != nil {
		d := s.Steer.PathLength(a, b)
		if d <= stepSize {
			return b.Clone(), true
		}
		return s.Steer.Interp(a, b, stepSize), false
	}
	d := s.Distance(a, b)
	if d <= stepSize {
		return b.Clone(), true
	}
	return a.Lerp(b, stepSize/d), false
}
