package cspace

import (
	"parmp/internal/env"
	"parmp/internal/geom"
)

// WithEnv returns a shallow copy of s bound to e: same robot, bounds,
// metric, resolution and steering, different world. This is the
// copy-on-write step of environment versioning — published snapshots
// keep their old space while new rounds plan against the mutated one.
func (s *Space) WithEnv(e *env.Environment) *Space {
	c := *s
	c.Env = e
	return &c
}

// A DeltaChecker re-validates configurations and edges that were free
// before an environment mutation against only the obstacles the
// mutation added. Two facts make this sound:
//
//   - Removing an obstacle can only free configurations, so a delta
//     with no Added obstacles invalidates nothing.
//   - LocalPlan's step discretization depends only on the metric and
//     resolution, never on the environment, so checking an edge against
//     a world containing only the added obstacles visits exactly the
//     same intermediate configurations as a full recheck — restricted
//     to the obstacles that could have changed the answer.
//
// On top of that the checker culls conservatively: configurations whose
// workspace extent provably cannot reach the added obstacles are
// declared unaffected without any collision test. Culling errs toward
// "affected" (costing a redundant check, never a wrong answer): robots
// without a positional configuration prefix (Linkage) fall back to an
// all-or-nothing reachability disk, and steered edges are culled by the
// arc-length ball around their source.
type DeltaChecker struct {
	deltaSpace *Space // s with the env replaced by added-obstacles-only
	// invalidating is false for removal-only (or empty) deltas: nothing
	// can have become blocked.
	invalidating bool
	// neverAffected short-circuits everything: the delta lies entirely
	// outside the robot's reachable workspace (Linkage case).
	neverAffected bool
	// cull is the union bounds of the added obstacles inflated by the
	// robot's reach; canCull gates its use (false when the robot's
	// position cannot be read off the configuration prefix).
	cull    geom.AABB
	canCull bool
	posDims int
}

// NewDeltaChecker builds a checker for re-validating s-space state
// against d. The checker is read-only and safe for concurrent use by
// multiple workers.
func NewDeltaChecker(s *Space, d env.Delta) *DeltaChecker {
	dc := &DeltaChecker{invalidating: d.Invalidating()}
	if !dc.invalidating {
		return dc
	}
	deltaEnv := &env.Environment{
		Name:      s.Env.Name + "+delta",
		Bounds:    s.Env.Bounds,
		Obstacles: d.Added,
	}
	dc.deltaSpace = s.WithEnv(deltaEnv)
	posDims, reach, ok := robotReach(s.Robot)
	if ok {
		if b, has := d.AddedBounds(reach); has {
			dc.cull, dc.canCull = b, true
			dc.posDims = posDims
		}
		return dc
	}
	// No positional prefix: the only cull available is global. A planar
	// linkage lives inside the disk around its base with radius equal
	// to the total link length; a delta outside that disk can never
	// touch it.
	if l, isLinkage := s.Robot.(Linkage); isLinkage {
		var total float64
		for _, ll := range l.LinkLen {
			total += ll
		}
		if b, has := d.AddedBounds(0); has {
			if b.DistanceTo(l.Base) > total {
				dc.neverAffected = true
			}
		}
	}
	return dc
}

// robotReach returns the number of leading configuration dimensions
// that are workspace positions and the maximum workspace distance any
// point of the robot body can lie from that position. ok=false means
// the robot's extent cannot be bounded from a configuration prefix.
func robotReach(r Robot) (posDims int, reach float64, ok bool) {
	switch rb := r.(type) {
	case PointRobot:
		return rb.Dim, 0, true
	case RigidBody:
		var m float64
		for _, p := range rb.BodyPoints {
			if n := p.Norm(); n > m {
				m = n
			}
		}
		return 3, m, true
	case RigidBody2D:
		var m float64
		for _, p := range rb.Outline {
			if n := p.Norm(); n > m {
				m = n
			}
		}
		return 2, m, true
	}
	return 0, 0, false
}

// Invalidating reports whether any previously free configuration or
// edge can have become blocked.
func (dc *DeltaChecker) Invalidating() bool {
	return dc.invalidating && !dc.neverAffected
}

// CullBall returns a workspace ball guaranteed to contain every
// configuration whose freeness the delta can have changed, for use as a
// kd radius query, and ok=false when no such ball applies (the checker
// cannot cull, or the configuration prefix is not the full unweighted
// C-space as in point-robot planning).
func (dc *DeltaChecker) CullBall() (center geom.Vec, radius float64, ok bool) {
	if !dc.Invalidating() || !dc.canCull {
		return nil, 0, false
	}
	s := dc.deltaSpace
	if dc.posDims != s.Dim() || s.Weights != nil {
		return nil, 0, false
	}
	c := dc.cull.Center()
	return c, dc.cull.Extent().Norm() / 2, true
}

// ConfigAffected conservatively reports whether q's freeness can have
// changed. False is a guarantee; true means "re-check".
func (dc *DeltaChecker) ConfigAffected(q Config) bool {
	if !dc.Invalidating() {
		return false
	}
	if dc.canCull {
		for i := 0; i < dc.posDims; i++ {
			if q[i] < dc.cull.Lo[i] || q[i] > dc.cull.Hi[i] {
				return false
			}
		}
	}
	return true
}

// EdgeAffected conservatively reports whether the edge a→b can have
// become blocked.
func (dc *DeltaChecker) EdgeAffected(a, b Config) bool {
	if !dc.Invalidating() {
		return false
	}
	if !dc.canCull {
		return true
	}
	if dc.deltaSpace.Steer != nil {
		// A steered path of arc length L starting at a stays within
		// workspace distance L of a's position, so cull with the
		// L-ball around a (extent bound: positional speed along the
		// path is at most 1 per unit arc length).
		l := dc.deltaSpace.Steer.PathLength(a, b)
		for i := 0; i < dc.posDims; i++ {
			if a[i]+l < dc.cull.Lo[i] || a[i]-l > dc.cull.Hi[i] {
				return false
			}
		}
		return true
	}
	// Straight-line motion: the positional sweep lies in the AABB of
	// the two endpoint positions.
	for i := 0; i < dc.posDims; i++ {
		lo, hi := a[i], b[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi < dc.cull.Lo[i] || lo > dc.cull.Hi[i] {
			return false
		}
	}
	return true
}

// ConfigStillFree reports whether a configuration that was free before
// the delta remains free after it, metering work into c.
func (dc *DeltaChecker) ConfigStillFree(q Config, c *Counters) bool {
	if !dc.ConfigAffected(q) {
		return true
	}
	return dc.deltaSpace.Valid(q, c)
}

// EdgeStillFree reports whether an edge that was valid before the delta
// remains valid after it, metering work into c. Endpoints are assumed
// re-validated separately (the LocalPlan convention).
func (dc *DeltaChecker) EdgeStillFree(a, b Config, c *Counters) bool {
	if !dc.EdgeAffected(a, b) {
		return true
	}
	return dc.deltaSpace.LocalPlan(a, b, c)
}
