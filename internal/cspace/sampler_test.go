package cspace

import (
	"testing"

	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/rng"
)

func wallEnv() *env.Environment {
	// A thin wall with a narrow slit: narrow-passage samplers should find
	// configurations in/near the slit far more often than uniform.
	return &env.Environment{
		Name:   "slit",
		Bounds: geom.Box2(0, 0, 1, 1),
		Obstacles: []env.Obstacle{
			env.BoxObstacle{Box: geom.Box2(0.45, 0, 0.55, 0.47)},
			env.BoxObstacle{Box: geom.Box2(0.45, 0.53, 0.55, 1)},
		},
	}
}

func TestUniformSamplerYield(t *testing.T) {
	e := env.MedCube()
	s := NewPointSpace(e)
	r := rng.New(1)
	var c Counters
	valid := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if _, ok := (UniformSampler{}).Sample(s, e.Bounds, r, &c); ok {
			valid++
		}
	}
	// Yield should approximate the free fraction (76 %).
	frac := float64(valid) / n
	if frac < 0.70 || frac > 0.82 {
		t.Fatalf("uniform yield %v, want ~0.76", frac)
	}
	if c.CDCalls == 0 {
		t.Fatal("sampler must meter collision work")
	}
}

func TestGaussianSamplerNearObstacles(t *testing.T) {
	e := wallEnv()
	s := NewPointSpace(e)
	r := rng.New(2)
	var c Counters
	g := GaussianSampler{Sigma: 0.05}
	near, total := 0, 0
	for i := 0; i < 4000; i++ {
		q, ok := g.Sample(s, e.Bounds, r, &c)
		if !ok {
			continue
		}
		total++
		// Near the wall band (x within 0.1 of it)?
		if q[0] > 0.35 && q[0] < 0.65 {
			near++
		}
	}
	if total == 0 {
		t.Fatal("gaussian sampler produced nothing")
	}
	// The wall band is 30 % of the width; obstacle-based samples must be
	// strongly concentrated there.
	frac := float64(near) / float64(total)
	if frac < 0.5 {
		t.Fatalf("gaussian concentration near obstacles = %v, want > 0.5", frac)
	}
}

func TestGaussianSamplesAreValid(t *testing.T) {
	e := wallEnv()
	s := NewPointSpace(e)
	r := rng.New(3)
	g := GaussianSampler{}
	for i := 0; i < 2000; i++ {
		q, ok := g.Sample(s, e.Bounds, r, nil)
		if ok && !s.Valid(q, nil) {
			t.Fatal("accepted sample collides")
		}
	}
}

func TestBridgeSamplerFindsPassage(t *testing.T) {
	e := wallEnv()
	s := NewPointSpace(e)
	r := rng.New(4)
	b := BridgeSampler{Sigma: 0.1}
	inSlit := 0
	accepted := 0
	for i := 0; i < 20000; i++ {
		q, ok := b.Sample(s, e.Bounds, r, nil)
		if !ok {
			continue
		}
		accepted++
		if !s.Valid(q, nil) {
			t.Fatal("bridge sample collides")
		}
		if q[0] > 0.42 && q[0] < 0.58 && q[1] > 0.40 && q[1] < 0.60 {
			inSlit++
		}
	}
	if accepted == 0 {
		t.Fatal("bridge sampler accepted nothing")
	}
	// The slit is ~0.6% of free area; bridge samples must concentrate.
	if frac := float64(inSlit) / float64(accepted); frac < 0.3 {
		t.Fatalf("bridge slit concentration = %v, want > 0.3", frac)
	}
}

func TestMixedSampler(t *testing.T) {
	e := env.Free()
	s := NewPointSpace(e)
	r := rng.New(5)
	m := MixedSampler{Primary: UniformSampler{}, Secondary: GaussianSampler{}, Fraction: 0.3}
	if m.Name() != "uniform+gaussian" {
		t.Fatalf("Name = %q", m.Name())
	}
	ok := 0
	for i := 0; i < 200; i++ {
		if _, valid := m.Sample(s, e.Bounds, r, nil); valid {
			ok++
		}
	}
	// In free space uniform always succeeds; gaussian never (no obstacle
	// boundary), so yield ~ 0.7.
	if ok < 100 || ok > 180 {
		t.Fatalf("mixed yield = %d/200", ok)
	}
}

func TestSamplerByName(t *testing.T) {
	for _, name := range []string{"uniform", "gaussian", "bridge", "mixed"} {
		if _, ok := SamplerByName(name); !ok {
			t.Fatalf("SamplerByName(%q) failed", name)
		}
	}
	if _, ok := SamplerByName("quantum"); ok {
		t.Fatal("unknown sampler should fail")
	}
}

func TestPathLengthAndValid(t *testing.T) {
	s := NewPointSpace(env.Free())
	path := []Config{geom.V(0, 0, 0), geom.V(0.3, 0, 0), geom.V(0.3, 0.4, 0)}
	if got := PathLength(s, path); got != 0.7 {
		t.Fatalf("PathLength = %v", got)
	}
	if !PathValid(s, path, nil) {
		t.Fatal("straight free path should be valid")
	}
	if PathValid(s, nil, nil) {
		t.Fatal("empty path should be invalid")
	}
	blocked := cspaceWithWall()
	bad := []Config{geom.V(0.1, 0.5), geom.V(0.9, 0.5)}
	if PathValid(blocked, bad, nil) {
		t.Fatal("path through wall should be invalid")
	}
}

// cspaceWithWall returns a 2D space whose wall spans the full width of
// the middle except for a gap above y = 0.9.
func cspaceWithWall() *Space {
	return NewPointSpace(&env.Environment{
		Name:   "wall",
		Bounds: geom.Box2(0, 0, 1, 1),
		Obstacles: []env.Obstacle{
			env.BoxObstacle{Box: geom.Box2(0.45, 0, 0.55, 0.9)},
		},
	})
}

func TestShortcutShortensDetour(t *testing.T) {
	s := NewPointSpace(env.Free())
	// A needless detour in free space.
	path := []Config{
		geom.V(0.1, 0.1, 0.1),
		geom.V(0.5, 0.9, 0.5),
		geom.V(0.9, 0.1, 0.9),
	}
	r := rng.New(6)
	var c Counters
	short := Shortcut(s, path, 50, r, &c)
	if PathLength(s, short) >= PathLength(s, path) {
		t.Fatalf("shortcut did not shorten: %v >= %v", PathLength(s, short), PathLength(s, path))
	}
	if !PathValid(s, short, nil) {
		t.Fatal("shortcut path invalid")
	}
	if !short[0].Equal(path[0], 0) || !short[len(short)-1].Equal(path[len(path)-1], 0) {
		t.Fatal("shortcut must preserve endpoints")
	}
}

func TestShortcutPreservesValidityAroundObstacle(t *testing.T) {
	s := cspaceWithWall()
	// A valid path around the wall via the top; shortcutting must not
	// produce a path through the wall.
	path := []Config{
		geom.V(0.1, 0.5), geom.V(0.2, 0.9), geom.V(0.5, 0.97),
		geom.V(0.8, 0.9), geom.V(0.9, 0.5),
	}
	if !PathValid(s, path, nil) {
		t.Fatal("fixture path should be valid")
	}
	r := rng.New(7)
	short := Shortcut(s, path, 100, r, nil)
	if !PathValid(s, short, nil) {
		t.Fatal("shortcut broke validity")
	}
}

func TestShortcutTrivialPaths(t *testing.T) {
	s := NewPointSpace(env.Free())
	r := rng.New(8)
	two := []Config{geom.V(0, 0, 0), geom.V(1, 1, 1)}
	if got := Shortcut(s, two, 10, r, nil); len(got) != 2 {
		t.Fatalf("two-point path should be unchanged, got %d", len(got))
	}
}

func TestDensify(t *testing.T) {
	s := NewPointSpace(env.Free())
	path := []Config{geom.V(0, 0, 0), geom.V(1, 0, 0)}
	dense := Densify(s, path, 0.25)
	if len(dense) < 4 {
		t.Fatalf("densified length = %d", len(dense))
	}
	for i := 0; i+1 < len(dense); i++ {
		if d := s.Distance(dense[i], dense[i+1]); d > 0.25+1e-9 {
			t.Fatalf("hop %d length %v exceeds max step", i, d)
		}
	}
	if !dense[0].Equal(path[0], 0) || !dense[len(dense)-1].Equal(path[1], 0) {
		t.Fatal("densify must preserve endpoints")
	}
	if got := Densify(s, nil, 0.1); len(got) != 0 {
		t.Fatal("empty densify")
	}
}
