package cspace

import (
	"testing"

	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/rng"
)

// BenchmarkKernelConfigFree measures rigid-body validity checking — the
// inner collision kernel of the PRM experiments — through the pooled
// scratch path that planner tasks use.
func BenchmarkKernelConfigFree(b *testing.B) {
	e := env.MedCube()
	body := NewRigidBox(0.03, 0.02, 0.01)
	s := NewRigidBodySpace(e, body)
	r := rng.New(11)
	var c Counters
	var sc Scratch
	qs := make([]Config, 64)
	for i := range qs {
		qs[i] = s.SampleIn(s.Bounds, r, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ValidS(qs[i%len(qs)], &sc, &c)
	}
}

// BenchmarkKernelEdgeFreeLinkage measures articulated-linkage edge
// sweeping (joint position buffers dominate the allocation profile).
func BenchmarkKernelEdgeFreeLinkage(b *testing.B) {
	e := env.Maze2D(4, 0.2)
	l := Linkage{Base: geom.V(0.5, 0.5), LinkLen: []float64{0.1, 0.1, 0.08, 0.06}}
	r := rng.New(13)
	s := NewLinkageSpace(e, l)
	var sc Scratch
	qa := s.SampleIn(s.Bounds, r, nil)
	qb := qa.Clone()
	for i := range qb {
		qb[i] += 0.01
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.EdgeFreeS(e, qa, qb, &sc)
	}
}

// BenchmarkKernelLocalPlan measures the local planner at the space's
// resolution (interpolation + validity per step) through the scratch
// bisection path.
func BenchmarkKernelLocalPlan(b *testing.B) {
	e := env.MedCube()
	s := NewPointSpace(e)
	var c Counters
	var sc Scratch
	a := geom.V(0.1, 0.1, 0.1)
	q := geom.V(0.35, 0.3, 0.32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LocalPlanS(a, q, &sc, &c)
	}
}
