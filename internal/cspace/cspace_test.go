package cspace

import (
	"math"
	"testing"
	"testing/quick"

	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/rng"
)

func TestPointRobotValidity(t *testing.T) {
	e := env.MedCube()
	s := NewPointSpace(e)
	var c Counters
	if s.Valid(geom.V(0.5, 0.5, 0.5), &c) {
		t.Fatal("obstacle center should be invalid")
	}
	if !s.Valid(geom.V(0.05, 0.05, 0.05), &c) {
		t.Fatal("corner should be valid")
	}
	if c.CDCalls != 2 || c.CDObstacle == 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestLocalPlanBlockedAndFree(t *testing.T) {
	e := env.MedCube()
	s := NewPointSpace(e)
	var c Counters
	if s.LocalPlan(geom.V(0.05, 0.5, 0.5), geom.V(0.95, 0.5, 0.5), &c) {
		t.Fatal("path through the cube should fail")
	}
	if !s.LocalPlan(geom.V(0.05, 0.05, 0.05), geom.V(0.95, 0.05, 0.05), &c) {
		t.Fatal("path along the edge should succeed")
	}
	if c.LPCalls != 2 || c.LPSteps == 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestLocalPlanWorkScalesWithDistance(t *testing.T) {
	s := NewPointSpace(env.Free())
	var short, long Counters
	s.LocalPlan(geom.V(0.1, 0.1, 0.1), geom.V(0.12, 0.1, 0.1), &short)
	s.LocalPlan(geom.V(0.1, 0.1, 0.1), geom.V(0.9, 0.9, 0.9), &long)
	if long.LPSteps <= short.LPSteps {
		t.Fatalf("long plan steps %d should exceed short %d", long.LPSteps, short.LPSteps)
	}
}

func TestSampleInRegion(t *testing.T) {
	s := NewPointSpace(env.Free())
	region := geom.Box3(0.2, 0.2, 0.2, 0.3, 0.3, 0.3)
	r := rng.New(1)
	var c Counters
	for i := 0; i < 100; i++ {
		q := s.SampleIn(region, r, &c)
		if !region.Contains(q) {
			t.Fatalf("sample %v outside region", q)
		}
	}
	if c.Samples != 100 {
		t.Fatalf("Samples = %d", c.Samples)
	}
}

func TestSampleFreeInRejectsObstacle(t *testing.T) {
	e := env.MedCube()
	s := NewPointSpace(e)
	r := rng.New(2)
	var c Counters
	// Region straddling the obstacle boundary (the med-cube obstacle
	// spans [0.189, 0.811]^3): samples must all be free.
	region := geom.Box3(0.0, 0.0, 0.0, 0.5, 0.5, 0.5)
	found := 0
	for i := 0; i < 50; i++ {
		q, ok := s.SampleFreeIn(region, r, 50, &c)
		if ok {
			found++
			if !s.Valid(q, nil) {
				t.Fatal("SampleFreeIn returned colliding sample")
			}
		}
	}
	if found == 0 {
		t.Fatal("no free samples found in partially-free region")
	}
	// Fully-blocked region must fail.
	blocked := geom.Box3(0.3, 0.3, 0.3, 0.7, 0.7, 0.7)
	if _, ok := s.SampleFreeIn(blocked, r, 20, &c); ok {
		t.Fatal("fully-blocked region should not yield a sample")
	}
}

func TestWeightedDistance(t *testing.T) {
	s := &Space{Weights: []float64{1, 0.5}}
	got := s.Distance(geom.V(0, 0), geom.V(3, 4))
	want := math.Sqrt(9 + 4)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Distance = %v, want %v", got, want)
	}
	s2 := &Space{}
	if s2.Distance(geom.V(0, 0), geom.V(3, 4)) != 5 {
		t.Fatal("unweighted distance wrong")
	}
}

func TestStepToward(t *testing.T) {
	s := NewPointSpace(env.Free())
	a, b := geom.V(0, 0, 0), geom.V(1, 0, 0)
	q, reached := s.StepToward(a, b, 0.25)
	if reached || math.Abs(q[0]-0.25) > 1e-12 {
		t.Fatalf("step = %v reached=%v", q, reached)
	}
	q, reached = s.StepToward(a, b, 2)
	if !reached || !q.Equal(b, 1e-12) {
		t.Fatalf("full step = %v reached=%v", q, reached)
	}
}

func TestRigidBodySpace(t *testing.T) {
	e := env.MedCube()
	body := NewRigidBox(0.02, 0.02, 0.02)
	s := NewRigidBodySpace(e, body)
	if s.Dim() != 6 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	var c Counters
	// Body centered in the obstacle collides regardless of orientation.
	if s.Valid(geom.V(0.5, 0.5, 0.5, 0, 0, 0), &c) {
		t.Fatal("body inside obstacle should collide")
	}
	if !s.Valid(geom.V(0.1, 0.1, 0.1, 0.3, 0.2, 0.1), &c) {
		t.Fatal("body in open corner should be free")
	}
}

func TestRigidBodyOrientationMatters(t *testing.T) {
	// A thin wall with the body just beside it: rotated long body hits it.
	e := &env.Environment{
		Name:   "wall",
		Bounds: geom.Box3(0, 0, 0, 1, 1, 1),
		Obstacles: []env.Obstacle{
			env.BoxObstacle{Box: geom.Box3(0.5, 0, 0, 0.52, 1, 1)},
		},
	}
	body := NewRigidBox(0.2, 0.01, 0.01) // long in body x
	s := NewRigidBodySpace(e, body)
	at := geom.V(0.4, 0.5, 0.5)
	aligned := append(at.Clone(), 0, 0, 0)         // long axis toward wall -> hits
	rotated := append(at.Clone(), 0, 0, math.Pi/2) // long axis parallel to wall -> clears
	if s.Valid(aligned, nil) {
		t.Fatal("aligned long body should hit the wall")
	}
	if !s.Valid(rotated, nil) {
		t.Fatal("rotated body should clear the wall")
	}
}

func TestLinkageKinematics(t *testing.T) {
	l := Linkage{Base: geom.V(0.5, 0.5), LinkLen: []float64{0.1, 0.1}}
	tip := l.EndEffector(geom.V(0, 0))
	if !tip.Equal(geom.V(0.7, 0.5), 1e-12) {
		t.Fatalf("straight tip = %v", tip)
	}
	tip = l.EndEffector(geom.V(0, math.Pi/2))
	if !tip.Equal(geom.V(0.6, 0.6), 1e-12) {
		t.Fatalf("bent tip = %v", tip)
	}
}

func TestLinkageCollision(t *testing.T) {
	e := env.Maze2D(1, 0.2)
	l := Linkage{Base: geom.V(0.1, 0.5), LinkLen: []float64{0.3, 0.3}}
	s := NewLinkageSpace(e, l)
	// Arm reaching right into the wall at x=0.5, y=0.5 collides.
	if s.Valid(geom.V(0, 0), nil) {
		t.Fatal("arm through wall should collide")
	}
	// Arm folded up and back down in the open left half is free.
	if !s.Valid(geom.V(math.Pi/2, -math.Pi/2), nil) {
		t.Fatal("folded arm should be free")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{CDCalls: 1, CDObstacle: 2, LPSteps: 3, LPCalls: 4, KNNQueries: 5, KNNEvals: 6, Samples: 7}
	b := a
	a.Add(b)
	if a.CDCalls != 2 || a.Samples != 14 || a.KNNEvals != 12 {
		t.Fatalf("Add = %+v", a)
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	s := NewRigidBodySpace(env.Free(), NewRigidBox(0.01, 0.01, 0.01))
	f := func(a1, a2, a3, b1, b2, b3 float64) bool {
		wrap := func(x float64) float64 { return math.Mod(x, 1) }
		a := geom.V(wrap(a1), wrap(a2), wrap(a3), 0.1, 0.2, 0.3)
		b := geom.V(wrap(b1), wrap(b2), wrap(b3), -0.1, 0.4, 0)
		if math.IsNaN(a1 + a2 + a3 + b1 + b2 + b3) {
			return true
		}
		return math.Abs(s.Distance(a, b)-s.Distance(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterpolate(t *testing.T) {
	s := NewPointSpace(env.Free())
	q := s.Interpolate(geom.V(0, 0, 0), geom.V(1, 2, 3), 0.5)
	if !q.Equal(geom.V(0.5, 1, 1.5), 1e-12) {
		t.Fatalf("Interpolate = %v", q)
	}
}
