package cspace

import (
	"math"

	"parmp/internal/env"
	"parmp/internal/geom"
)

// Batch is a struct-of-arrays scratch for the batched collision
// kernels: candidate configurations (and edge endpoints) live in
// per-dimension contiguous float columns, so the per-obstacle inner
// loops of env.CheckPointsSoA / env.SegmentsFreeSoA stream over flat
// slices with no interface dispatch and no per-candidate allocation.
// A batch fails fast on the first colliding candidate.
//
// Block A holds candidate configurations; block B, when filled by the
// edge appenders, pairs with A so edge i runs A[i]→B[i]. Robot kernels
// expand the configuration blocks into workspace probe columns
// internally. A Batch is not safe for concurrent use; the zero value is
// ready after Reset.
type Batch struct {
	n   int
	dim int
	a   [][]float64 // block A: candidate configurations, one column per DOF
	b   [][]float64 // block B: edge end configurations paired with block A

	wa, wb, wc, wd [][]float64 // workspace probe columns built by robot kernels

	esc env.BatchScratch
	sc  Scratch  // scalar fallback for robots without batch kernels
	pa  geom.Vec // probe temporary
}

// resetCols resizes cols to d empty columns, reusing storage.
func resetCols(cols [][]float64, d int) [][]float64 {
	if cap(cols) < d {
		next := make([][]float64, d)
		copy(next, cols[:cap(cols)])
		cols = next
	}
	cols = cols[:d]
	for k := range cols {
		cols[k] = cols[k][:0]
	}
	return cols
}

// Reset empties the batch for candidates of the given dimension.
func (bt *Batch) Reset(dim int) {
	bt.n = 0
	bt.dim = dim
	bt.a = resetCols(bt.a, dim)
	bt.b = resetCols(bt.b, dim)
}

// Len returns the number of batched candidates.
func (bt *Batch) Len() int { return bt.n }

// Append adds configuration q to block A.
func (bt *Batch) Append(q Config) {
	for k := 0; k < bt.dim; k++ {
		bt.a[k] = append(bt.a[k], q[k])
	}
	bt.n++
}

// AppendLerp adds the interpolated configuration a + t*(b-a) to block
// A, with the same per-component arithmetic as geom.LerpInto so batched
// candidates are bit-identical to the scalar planner's.
func (bt *Batch) AppendLerp(a, b Config, t float64) {
	for k := 0; k < bt.dim; k++ {
		bt.a[k] = append(bt.a[k], a[k]+t*(b[k]-a[k]))
	}
	bt.n++
}

// AppendEdge adds the edge qa→qb to blocks A and B.
func (bt *Batch) AppendEdge(qa, qb Config) {
	for k := 0; k < bt.dim; k++ {
		bt.a[k] = append(bt.a[k], qa[k])
		bt.b[k] = append(bt.b[k], qb[k])
	}
	bt.n++
}

// AppendEdgeLerp adds the edge between the interpolations of a→b at t0
// and t1.
func (bt *Batch) AppendEdgeLerp(a, b Config, t0, t1 float64) {
	for k := 0; k < bt.dim; k++ {
		ak := a[k]
		d := b[k] - ak
		bt.a[k] = append(bt.a[k], ak+t0*d)
		bt.b[k] = append(bt.b[k], ak+t1*d)
	}
	bt.n++
}

// BatchRobot is implemented by robots whose collision kernels can run
// over a whole batch of candidates at once. The batch variants must
// accept/reject exactly as running ConfigFree/EdgeFree per candidate,
// and on an all-free batch the returned test count must equal the sum
// of the scalar counts; a rejecting batch may stop at a different count
// (the same fail-fast contract LocalPlanS documents for rejected
// edges).
type BatchRobot interface {
	Robot
	// ConfigFreeBatch validates every configuration in the batch's
	// block A.
	ConfigFreeBatch(e *env.Environment, bt *Batch) (bool, int)
	// EdgeFreeBatch validates the workspace sweep of every edge
	// A[i]→B[i]; as with EdgeFree, endpoints are assumed close.
	EdgeFreeBatch(e *env.Environment, bt *Batch) (bool, int)
}

// ConfigFreeBatch implements BatchRobot: the configuration columns are
// the workspace point columns.
func (r PointRobot) ConfigFreeBatch(e *env.Environment, bt *Batch) (bool, int) {
	return e.CheckPointsSoA(bt.a, bt.n, &bt.esc)
}

// EdgeFreeBatch implements BatchRobot.
func (r PointRobot) EdgeFreeBatch(e *env.Environment, bt *Batch) (bool, int) {
	return e.SegmentsFreeSoA(bt.a, bt.b, bt.n, &bt.esc)
}

// ConfigFreeBatch implements BatchRobot: only the (x, y) columns are
// geometric; heading is kinematic.
func (dubinsPoint) ConfigFreeBatch(e *env.Environment, bt *Batch) (bool, int) {
	return e.CheckPointsSoA(bt.a[:2], bt.n, &bt.esc)
}

// EdgeFreeBatch implements BatchRobot.
func (dubinsPoint) EdgeFreeBatch(e *env.Environment, bt *Batch) (bool, int) {
	return e.SegmentsFreeSoA(bt.a[:2], bt.b[:2], bt.n, &bt.esc)
}

// bodyPointsInto expands the rigid body's probe points for every
// configuration in the SoA block cfg, config-major (config i's probe p
// lands at column index i*len(r.BodyPoints)+p). The world coordinates
// match Transform.ApplyInto bit for bit.
func (r RigidBody) bodyPointsInto(bt *Batch, cfg [][]float64, dst [][]float64) [][]float64 {
	dst = resetCols(dst, 3)
	for i := 0; i < bt.n; i++ {
		rot := geom.QuatFromEuler(cfg[3][i], cfg[4][i], cfg[5][i])
		tx, ty, tz := cfg[0][i], cfg[1][i], cfg[2][i]
		for _, bp := range r.BodyPoints {
			bt.pa = rot.RotateInto(bt.pa, bp)
			dst[0] = append(dst[0], bt.pa[0]+tx)
			dst[1] = append(dst[1], bt.pa[1]+ty)
			dst[2] = append(dst[2], bt.pa[2]+tz)
		}
	}
	return dst
}

// ConfigFreeBatch implements BatchRobot: all probe points of all
// configurations are checked in one SoA sweep, then all center→probe
// spokes in another.
func (r RigidBody) ConfigFreeBatch(e *env.Environment, bt *Batch) (bool, int) {
	np := len(r.BodyPoints)
	if np == 0 || bt.n == 0 {
		return true, 0
	}
	bt.wa = r.bodyPointsInto(bt, bt.a, bt.wa)
	free, tests := e.CheckPointsSoA(bt.wa, bt.n*np, &bt.esc)
	if !free {
		return false, tests
	}
	bt.wb = resetCols(bt.wb, 3)
	bt.wc = resetCols(bt.wc, 3)
	for i := 0; i < bt.n; i++ {
		base := i * np
		for p := 1; p < np; p++ {
			for k := 0; k < 3; k++ {
				bt.wb[k] = append(bt.wb[k], bt.wa[k][base])
				bt.wc[k] = append(bt.wc[k], bt.wa[k][base+p])
			}
		}
	}
	sfree, stests := e.SegmentsFreeSoA(bt.wb, bt.wc, bt.n*(np-1), &bt.esc)
	return sfree, tests + stests
}

// EdgeFreeBatch implements BatchRobot: every probe point of every edge
// sweeps one segment, all checked in one SoA sweep.
func (r RigidBody) EdgeFreeBatch(e *env.Environment, bt *Batch) (bool, int) {
	np := len(r.BodyPoints)
	if np == 0 || bt.n == 0 {
		return true, 0
	}
	bt.wa = r.bodyPointsInto(bt, bt.a, bt.wa)
	bt.wb = r.bodyPointsInto(bt, bt.b, bt.wb)
	return e.SegmentsFreeSoA(bt.wa, bt.wb, bt.n*np, &bt.esc)
}

// jointColumnsInto expands the chain's joint positions for every
// configuration in cfg, config-major (config i's joint j at column
// index i*(len(l.LinkLen)+1)+j), matching jointPositionsInto bit for
// bit.
func (l Linkage) jointColumnsInto(bt *Batch, cfg [][]float64, dst [][]float64) [][]float64 {
	dst = resetCols(dst, 2)
	for i := 0; i < bt.n; i++ {
		x, y := l.Base[0], l.Base[1]
		dst[0] = append(dst[0], x)
		dst[1] = append(dst[1], y)
		for j, length := range l.LinkLen {
			x = x + length*math.Cos(cfg[j][i])
			y = y + length*math.Sin(cfg[j][i])
			dst[0] = append(dst[0], x)
			dst[1] = append(dst[1], y)
		}
	}
	return dst
}

// ConfigFreeBatch implements BatchRobot: all joints of all
// configurations are point-checked in one sweep, then all link bodies
// are segment-swept in another.
func (l Linkage) ConfigFreeBatch(e *env.Environment, bt *Batch) (bool, int) {
	nj := len(l.LinkLen) + 1
	if bt.n == 0 {
		return true, 0
	}
	bt.wa = l.jointColumnsInto(bt, bt.a, bt.wa)
	free, tests := e.CheckPointsSoA(bt.wa, bt.n*nj, &bt.esc)
	if !free {
		return false, tests
	}
	bt.wb = resetCols(bt.wb, 2)
	bt.wc = resetCols(bt.wc, 2)
	for i := 0; i < bt.n; i++ {
		base := i * nj
		for j := 0; j+1 < nj; j++ {
			for k := 0; k < 2; k++ {
				bt.wb[k] = append(bt.wb[k], bt.wa[k][base+j])
				bt.wc[k] = append(bt.wc[k], bt.wa[k][base+j+1])
			}
		}
	}
	sfree, stests := e.SegmentsFreeSoA(bt.wb, bt.wc, bt.n*(nj-1), &bt.esc)
	return sfree, tests + stests
}

// EdgeFreeBatch implements BatchRobot: the probe points interpolated
// along each link sweep segments between the two configurations of
// every edge, all checked in one SoA sweep.
func (l Linkage) EdgeFreeBatch(e *env.Environment, bt *Batch) (bool, int) {
	nj := len(l.LinkLen) + 1
	if bt.n == 0 || nj < 2 {
		return true, 0
	}
	np := l.probes()
	bt.wa = l.jointColumnsInto(bt, bt.a, bt.wa)
	bt.wb = l.jointColumnsInto(bt, bt.b, bt.wb)
	bt.wc = resetCols(bt.wc, 2)
	bt.wd = resetCols(bt.wd, 2)
	for i := 0; i < bt.n; i++ {
		base := i * nj
		for j := 0; j+1 < nj; j++ {
			for p := 0; p <= np; p++ {
				t := float64(p) / float64(np)
				for k := 0; k < 2; k++ {
					a0 := bt.wa[k][base+j]
					b0 := bt.wb[k][base+j]
					bt.wc[k] = append(bt.wc[k], a0+t*(bt.wa[k][base+j+1]-a0))
					bt.wd[k] = append(bt.wd[k], b0+t*(bt.wb[k][base+j+1]-b0))
				}
			}
		}
	}
	return e.SegmentsFreeSoA(bt.wc, bt.wd, bt.n*(nj-1)*(np+1), &bt.esc)
}

// outlineColumnsInto expands the placed outline for every configuration
// in cfg, config-major, matching placedInto bit for bit.
func (r RigidBody2D) outlineColumnsInto(bt *Batch, cfg [][]float64, dst [][]float64) [][]float64 {
	dst = resetCols(dst, 2)
	for i := 0; i < bt.n; i++ {
		sin, cos := math.Sincos(cfg[2][i])
		x, y := cfg[0][i], cfg[1][i]
		for _, v := range r.Outline {
			dst[0] = append(dst[0], x+v[0]*cos-v[1]*sin)
			dst[1] = append(dst[1], y+v[0]*sin+v[1]*cos)
		}
	}
	return dst
}

// ConfigFreeBatch implements BatchRobot: all outline vertices of all
// configurations are point-checked in one sweep, then all outline edges
// (with wraparound) are segment-swept in another.
func (r RigidBody2D) ConfigFreeBatch(e *env.Environment, bt *Batch) (bool, int) {
	nv := len(r.Outline)
	if nv == 0 || bt.n == 0 {
		return true, 0
	}
	bt.wa = r.outlineColumnsInto(bt, bt.a, bt.wa)
	free, tests := e.CheckPointsSoA(bt.wa, bt.n*nv, &bt.esc)
	if !free {
		return false, tests
	}
	bt.wb = resetCols(bt.wb, 2)
	bt.wc = resetCols(bt.wc, 2)
	for i := 0; i < bt.n; i++ {
		base := i * nv
		for v := 0; v < nv; v++ {
			for k := 0; k < 2; k++ {
				bt.wb[k] = append(bt.wb[k], bt.wa[k][base+v])
				bt.wc[k] = append(bt.wc[k], bt.wa[k][base+(v+1)%nv])
			}
		}
	}
	sfree, stests := e.SegmentsFreeSoA(bt.wb, bt.wc, bt.n*nv, &bt.esc)
	return sfree, tests + stests
}

// EdgeFreeBatch implements BatchRobot: every outline vertex of every
// edge sweeps one segment.
func (r RigidBody2D) EdgeFreeBatch(e *env.Environment, bt *Batch) (bool, int) {
	nv := len(r.Outline)
	if nv == 0 || bt.n == 0 {
		return true, 0
	}
	bt.wa = r.outlineColumnsInto(bt, bt.a, bt.wa)
	bt.wb = r.outlineColumnsInto(bt, bt.b, bt.wb)
	return e.SegmentsFreeSoA(bt.wa, bt.wb, bt.n*nv, &bt.esc)
}

// LocalPlanBatch is the batched local planner: the interpolated
// configurations of the whole edge are laid out in the batch's SoA
// block and validated with one ConfigFreeBatch sweep, then all step
// edges with one EdgeFreeBatch sweep. Obstacle-major iteration inside
// the sweeps amortizes interface dispatch across the batch, and each
// sweep fails fast on the first hit.
//
// The accept/reject outcome is identical to LocalPlan/LocalPlanS: all
// three reject iff any of the same point or edge checks fails, and on
// the success path the same checks run exactly once each, so work
// counters agree. Only the counter totals on *rejected* edges differ
// (the sweeps stop at a different check than the scalar orders).
// Steered spaces fall back to LocalPlan, robots without batch kernels
// to LocalPlanS through the batch's embedded scratch.
func (s *Space) LocalPlanBatch(a, b Config, bt *Batch, c *Counters) bool {
	if s.Steer != nil || bt == nil {
		return s.LocalPlan(a, b, c)
	}
	br, ok := s.Robot.(BatchRobot)
	if !ok {
		return s.LocalPlanS(a, b, &bt.sc, c)
	}
	if c != nil {
		c.LPCalls++
	}
	steps := int(math.Ceil(s.Distance(a, b) / s.Resolution))
	if steps < 1 {
		steps = 1
	}
	bt.Reset(s.Dim())
	for i := 1; i <= steps; i++ {
		bt.AppendLerp(a, b, float64(i)/float64(steps))
	}
	free, tests := br.ConfigFreeBatch(s.Env, bt)
	if c != nil {
		// Charged up front: on acceptance the totals are exactly what the
		// scalar planner counts (steps validity checks, all tests).
		c.LPSteps += int64(steps)
		c.CDCalls += int64(steps)
		c.CDObstacle += int64(tests)
	}
	if !free {
		return false
	}
	bt.Reset(s.Dim())
	for i := 1; i <= steps; i++ {
		bt.AppendEdgeLerp(a, b, float64(i-1)/float64(steps), float64(i)/float64(steps))
	}
	free, tests = br.EdgeFreeBatch(s.Env, bt)
	if c != nil {
		c.CDObstacle += int64(tests)
	}
	return free
}
