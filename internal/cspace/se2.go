package cspace

import (
	"math"

	"parmp/internal/env"
	"parmp/internal/geom"
)

// RigidBody2D is a free-flying rigid body in a 2D workspace.
// Configurations are (x, y, theta); collision is checked on the rotated
// outline of a convex body polygon (vertices in body frame), with the
// outline edges swept as segments so thin obstacles cannot slip between
// probe points.
type RigidBody2D struct {
	// Outline is the body's convex outline in the body frame, CCW.
	Outline []geom.Vec
}

// NewRigidRect returns a rectangle body with half extents (hx, hy).
func NewRigidRect(hx, hy float64) RigidBody2D {
	return RigidBody2D{Outline: []geom.Vec{
		geom.V(-hx, -hy), geom.V(hx, -hy), geom.V(hx, hy), geom.V(-hx, hy),
	}}
}

// DOF implements Robot.
func (r RigidBody2D) DOF() int { return 3 }

// placed returns the workspace outline for configuration q.
func (r RigidBody2D) placed(q Config) []geom.Vec {
	sin, cos := math.Sincos(q[2])
	out := make([]geom.Vec, len(r.Outline))
	for i, v := range r.Outline {
		out[i] = geom.V(q[0]+v[0]*cos-v[1]*sin, q[1]+v[0]*sin+v[1]*cos)
	}
	return out
}

// ConfigFree implements Robot: every outline vertex must be free and
// every outline edge must avoid obstacles.
func (r RigidBody2D) ConfigFree(e *env.Environment, q Config) (bool, int) {
	pts := r.placed(q)
	tests := 0
	for _, p := range pts {
		free, n := e.CheckPoint(p)
		tests += n
		if !free {
			return false, tests
		}
	}
	n := len(pts)
	for i := 0; i < n; i++ {
		free, k := e.SegmentFree(pts[i], pts[(i+1)%n])
		tests += k
		if !free {
			return false, tests
		}
	}
	return true, tests
}

// EdgeFree implements Robot: each outline vertex sweeps a segment between
// the two configurations (valid for the small steps the local planner
// takes).
func (r RigidBody2D) EdgeFree(e *env.Environment, a, b Config) (bool, int) {
	pa, pb := r.placed(a), r.placed(b)
	tests := 0
	for i := range pa {
		free, n := e.SegmentFree(pa[i], pb[i])
		tests += n
		if !free {
			return false, tests
		}
	}
	return true, tests
}

// NewSE2Space returns the 3-DOF C-space (x, y, theta) of a 2D rigid body
// in e, with theta in [-pi, pi] and down-weighted in the metric.
func NewSE2Space(e *env.Environment, body RigidBody2D) *Space {
	lo := geom.V(e.Bounds.Lo[0], e.Bounds.Lo[1], -math.Pi)
	hi := geom.V(e.Bounds.Hi[0], e.Bounds.Hi[1], math.Pi)
	return &Space{
		Env:        e,
		Robot:      body,
		Bounds:     geom.NewAABB(lo, hi),
		Weights:    []float64{1, 1, 0.2},
		Resolution: defaultResolution(e.Bounds),
	}
}
