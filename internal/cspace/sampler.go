package cspace

import (
	"parmp/internal/geom"
	"parmp/internal/rng"
)

// Sampler generates candidate configurations within a region of C-space.
// Different strategies trade sample quality for collision-check cost;
// all meter their work through Counters.
type Sampler interface {
	// Sample draws one candidate in region and reports whether it is
	// valid. Invalid candidates may still be returned (q, false) so
	// callers can count attempts.
	Sample(s *Space, region geom.AABB, r *rng.Stream, c *Counters) (Config, bool)
	// Name identifies the sampler in reports.
	Name() string
}

// UniformSampler draws uniformly at random in the region — the baseline
// PRM sampler whose per-region yield is proportional to free volume.
type UniformSampler struct{}

// Name implements Sampler.
func (UniformSampler) Name() string { return "uniform" }

// Sample implements Sampler.
func (UniformSampler) Sample(s *Space, region geom.AABB, r *rng.Stream, c *Counters) (Config, bool) {
	q := s.SampleIn(region, r, c)
	return q, s.Valid(q, c)
}

// GaussianSampler implements Gaussian obstacle-based sampling (Boor,
// Overmars, van der Stappen 1999): draw a pair (q1, q2) a Gaussian
// distance apart and keep q1 only if exactly one of the two collides.
// Samples concentrate near obstacle boundaries, which is where narrow
// passage connectivity lives.
type GaussianSampler struct {
	// Sigma is the standard deviation of the pair distance, in metric
	// units. Zero defaults to 2 x the space resolution.
	Sigma float64
}

// Name implements Sampler.
func (GaussianSampler) Name() string { return "gaussian" }

// Sample implements Sampler.
func (g GaussianSampler) Sample(s *Space, region geom.AABB, r *rng.Stream, c *Counters) (Config, bool) {
	sigma := g.Sigma
	if sigma <= 0 {
		sigma = 2 * s.Resolution
	}
	q1 := s.SampleIn(region, r, c)
	// Perturb every dimension by a Gaussian step.
	q2 := q1.Clone()
	for i := range q2 {
		q2[i] += r.NormFloat64() * sigma
	}
	q2 = s.Bounds.Clamp(q2)
	v1 := s.Valid(q1, c)
	v2 := s.Valid(q2, c)
	if v1 && !v2 {
		return q1, true
	}
	if v2 && !v1 {
		return q2, true
	}
	return q1, false
}

// BridgeSampler implements the bridge test (Hsu et al. 2003): draw a pair
// of colliding configurations and keep their midpoint when it is free —
// the signature of a narrow passage.
type BridgeSampler struct {
	// Sigma is the standard deviation of the bridge length. Zero
	// defaults to 4 x the space resolution.
	Sigma float64
}

// Name implements Sampler.
func (BridgeSampler) Name() string { return "bridge" }

// Sample implements Sampler.
func (b BridgeSampler) Sample(s *Space, region geom.AABB, r *rng.Stream, c *Counters) (Config, bool) {
	sigma := b.Sigma
	if sigma <= 0 {
		sigma = 4 * s.Resolution
	}
	q1 := s.SampleIn(region, r, c)
	if s.Valid(q1, c) {
		return q1, false // bridge endpoints must collide
	}
	q2 := q1.Clone()
	for i := range q2 {
		q2[i] += r.NormFloat64() * sigma
	}
	q2 = s.Bounds.Clamp(q2)
	if s.Valid(q2, c) {
		return q2, false
	}
	mid := q1.Lerp(q2, 0.5)
	return mid, s.Valid(mid, c)
}

// MixedSampler draws from Primary with probability 1-Fraction and from
// Secondary otherwise — the standard way to blend a narrow-passage
// sampler into uniform sampling.
type MixedSampler struct {
	Primary, Secondary Sampler
	// Fraction of draws routed to Secondary, in [0, 1].
	Fraction float64
}

// Name implements Sampler.
func (m MixedSampler) Name() string {
	return m.Primary.Name() + "+" + m.Secondary.Name()
}

// Sample implements Sampler.
func (m MixedSampler) Sample(s *Space, region geom.AABB, r *rng.Stream, c *Counters) (Config, bool) {
	if r.Float64() < m.Fraction {
		return m.Secondary.Sample(s, region, r, c)
	}
	return m.Primary.Sample(s, region, r, c)
}

// SamplerByName returns a sampler by name ("uniform", "gaussian",
// "bridge", "mixed"). ok is false for unknown names.
func SamplerByName(name string) (Sampler, bool) {
	switch name {
	case "uniform":
		return UniformSampler{}, true
	case "gaussian":
		return GaussianSampler{}, true
	case "bridge":
		return BridgeSampler{}, true
	case "mixed":
		return MixedSampler{Primary: UniformSampler{}, Secondary: GaussianSampler{}, Fraction: 0.5}, true
	}
	return nil, false
}
