package cspace

import (
	"testing"

	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/rng"
)

// batchCase binds a space (and its robot) to the sampling ranges the
// parity sweeps draw from.
type batchCase struct {
	name string
	s    *Space
}

func batchCases() []batchCase {
	return []batchCase{
		{"point/mixed-30", NewPointSpace(env.Mixed30())},
		{"point/med-cube", NewPointSpace(env.MedCube())},
		{"rigid/med-cube", NewRigidBodySpace(env.MedCube(), NewRigidBox(0.03, 0.02, 0.01))},
		{"linkage/maze-2d", NewLinkageSpace(env.Maze2D(4, 0.2), Linkage{Base: geom.V(0.5, 0.5), LinkLen: []float64{0.1, 0.1, 0.08, 0.06}})},
		{"se2/maze-2d", NewSE2Space(env.Maze2D(4, 0.2), NewRigidRect(0.04, 0.02))},
		{"dubins/maze-2d", NewDubinsSpace(env.Maze2D(4, 0.2), 0.1)},
	}
}

// randomConfigIn draws a uniform configuration in s.Bounds, overshooting
// slightly on positional dimensions so bounds rejections are exercised.
func randomConfigIn(s *Space, r *rng.Stream, overshoot float64) Config {
	q := make(Config, s.Dim())
	for k := range q {
		q[k] = r.Range(s.Bounds.Lo[k]-overshoot, s.Bounds.Hi[k]+overshoot)
	}
	return q
}

// scalarConfigFree routes through the scratch kernel when the robot has
// one (they are themselves parity-tested against the allocating form).
func scalarConfigFree(s *Space, q Config, sc *Scratch) (bool, int) {
	if sr, ok := s.Robot.(ScratchRobot); ok {
		return sr.ConfigFreeS(s.Env, q, sc)
	}
	return s.Robot.ConfigFree(s.Env, q)
}

func scalarEdgeFree(s *Space, a, b Config, sc *Scratch) (bool, int) {
	if sr, ok := s.Robot.(ScratchRobot); ok {
		return sr.EdgeFreeS(s.Env, a, b, sc)
	}
	return s.Robot.EdgeFree(s.Env, a, b)
}

func checkConfigBatchParity(t *testing.T, name string, s *Space, cfgs []Config, bt *Batch) {
	t.Helper()
	br, ok := s.Robot.(BatchRobot)
	if !ok {
		t.Fatalf("%s: robot %T does not implement BatchRobot", name, s.Robot)
	}
	bt.Reset(s.Dim())
	for _, q := range cfgs {
		bt.Append(q)
	}
	gotFree, gotTests := br.ConfigFreeBatch(s.Env, bt)
	var sc Scratch
	wantFree := true
	wantTests := 0
	for _, q := range cfgs {
		free, tests := scalarConfigFree(s, q, &sc)
		wantTests += tests
		if !free {
			wantFree = false
			break
		}
	}
	if gotFree != wantFree {
		t.Fatalf("%s: ConfigFreeBatch=%v, scalar=%v (batch of %d)", name, gotFree, wantFree, len(cfgs))
	}
	if wantFree && gotTests != wantTests {
		t.Fatalf("%s: all-free batch counted %d tests, scalar sum %d", name, gotTests, wantTests)
	}
}

func checkEdgeBatchParity(t *testing.T, name string, s *Space, as, bs []Config, bt *Batch) {
	t.Helper()
	br := s.Robot.(BatchRobot)
	bt.Reset(s.Dim())
	for i := range as {
		bt.AppendEdge(as[i], bs[i])
	}
	gotFree, gotTests := br.EdgeFreeBatch(s.Env, bt)
	var sc Scratch
	wantFree := true
	wantTests := 0
	for i := range as {
		free, tests := scalarEdgeFree(s, as[i], bs[i], &sc)
		wantTests += tests
		if !free {
			wantFree = false
			break
		}
	}
	if gotFree != wantFree {
		t.Fatalf("%s: EdgeFreeBatch=%v, scalar=%v (batch of %d)", name, gotFree, wantFree, len(as))
	}
	if wantFree && gotTests != wantTests {
		t.Fatalf("%s: all-free batch counted %d tests, scalar sum %d", name, gotTests, wantTests)
	}
}

// TestConfigFreeBatchParity sweeps random batches through every robot
// type: outcomes must match the scalar kernels exactly, and all-free
// batches must count exactly the scalar test totals.
func TestConfigFreeBatchParity(t *testing.T) {
	for _, tc := range batchCases() {
		r := rng.New(97)
		var bt Batch
		for trial := 0; trial < 120; trial++ {
			n := 1 + r.Intn(13)
			cfgs := make([]Config, n)
			for i := range cfgs {
				cfgs[i] = randomConfigIn(tc.s, r, 0.05)
			}
			checkConfigBatchParity(t, tc.name, tc.s, cfgs, &bt)
		}
	}
}

// TestEdgeFreeBatchParity does the same for the edge-sweep kernels.
func TestEdgeFreeBatchParity(t *testing.T) {
	for _, tc := range batchCases() {
		r := rng.New(131)
		var bt Batch
		for trial := 0; trial < 120; trial++ {
			n := 1 + r.Intn(13)
			as := make([]Config, n)
			bs := make([]Config, n)
			for i := range as {
				as[i] = randomConfigIn(tc.s, r, 0)
				b := as[i].Clone()
				for k := range b {
					b[k] += r.Range(-0.03, 0.03)
				}
				bs[i] = b
			}
			checkEdgeBatchParity(t, tc.name, tc.s, as, bs, &bt)
		}
	}
}

// TestLocalPlanBatchParity compares the batched local planner against
// the scalar fail-fast one: identical outcomes always, identical
// counters on accepted edges.
func TestLocalPlanBatchParity(t *testing.T) {
	for _, tc := range batchCases() {
		r := rng.New(211)
		var bt Batch
		var sc Scratch
		for trial := 0; trial < 80; trial++ {
			a := randomConfigIn(tc.s, r, 0)
			b := randomConfigIn(tc.s, r, 0)
			var cb, cs Counters
			gotOK := tc.s.LocalPlanBatch(a, b, &bt, &cb)
			wantOK := tc.s.LocalPlanS(a, b, &sc, &cs)
			if gotOK != wantOK {
				t.Fatalf("%s trial %d: LocalPlanBatch=%v, LocalPlanS=%v", tc.name, trial, gotOK, wantOK)
			}
			if gotOK && cb != cs {
				t.Fatalf("%s trial %d: accepted-edge counters differ: batch %+v, scalar %+v", tc.name, trial, cb, cs)
			}
		}
	}
}

// TestLocalPlanBatchSteadyStateAllocs confirms the batched planner
// allocates nothing once its columns are warm.
func TestLocalPlanBatchSteadyStateAllocs(t *testing.T) {
	s := NewPointSpace(env.MedCube())
	a := geom.V(0.05, 0.05, 0.05)
	b := geom.V(0.1, 0.9, 0.1)
	var bt Batch
	var c Counters
	if !s.LocalPlanBatch(a, b, &bt, &c) {
		t.Fatal("warmup local plan rejected a free edge")
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.LocalPlanBatch(a, b, &bt, &c)
	})
	if allocs != 0 {
		t.Fatalf("steady-state LocalPlanBatch allocates %v per op, want 0", allocs)
	}
}

// TestLocalPlanBatchFallbacks: steered spaces route to LocalPlan and a
// nil batch to LocalPlan, preserving outcomes.
func TestLocalPlanBatchFallbacks(t *testing.T) {
	s := NewDubinsSpace(env.Maze2D(4, 0.2), 0.1)
	a := geom.V(0.1, 0.1, 0)
	b := geom.V(0.3, 0.12, 0.2)
	var bt Batch
	if got, want := s.LocalPlanBatch(a, b, &bt, nil), s.LocalPlan(a, b, nil); got != want {
		t.Fatalf("steered fallback: batch=%v, plain=%v", got, want)
	}
	ps := NewPointSpace(env.MedCube())
	pa, pb := geom.V(0.1, 0.1, 0.1), geom.V(0.2, 0.2, 0.2)
	if got, want := ps.LocalPlanBatch(pa, pb, nil, nil), ps.LocalPlan(pa, pb, nil); got != want {
		t.Fatalf("nil-batch fallback: batch=%v, plain=%v", got, want)
	}
}

func fuzzSpace(sel byte) batchCase {
	cases := batchCases()
	return cases[int(sel)%len(cases)]
}

// FuzzConfigFreeBatchParity fuzzes batch-vs-scalar parity of the
// configuration kernels over every robot type.
func FuzzConfigFreeBatchParity(f *testing.F) {
	for seed := uint64(1); seed <= 6; seed++ {
		f.Add(seed, uint8(seed), uint8(7))
	}
	f.Fuzz(func(t *testing.T, seed uint64, sel, size uint8) {
		tc := fuzzSpace(sel)
		r := rng.New(seed)
		n := 1 + int(size)%16
		cfgs := make([]Config, n)
		for i := range cfgs {
			cfgs[i] = randomConfigIn(tc.s, r, 0.05)
		}
		var bt Batch
		checkConfigBatchParity(t, tc.name, tc.s, cfgs, &bt)
	})
}

// FuzzEdgeFreeBatchParity fuzzes batch-vs-scalar parity of the edge
// kernels over every robot type.
func FuzzEdgeFreeBatchParity(f *testing.F) {
	for seed := uint64(1); seed <= 6; seed++ {
		f.Add(seed, uint8(seed), uint8(5))
	}
	f.Fuzz(func(t *testing.T, seed uint64, sel, size uint8) {
		tc := fuzzSpace(sel)
		r := rng.New(seed)
		n := 1 + int(size)%16
		as := make([]Config, n)
		bs := make([]Config, n)
		for i := range as {
			as[i] = randomConfigIn(tc.s, r, 0)
			b := as[i].Clone()
			for k := range b {
				b[k] += r.Range(-0.03, 0.03)
			}
			bs[i] = b
		}
		var bt Batch
		checkEdgeBatchParity(t, tc.name, tc.s, as, bs, &bt)
	})
}
