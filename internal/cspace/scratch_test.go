package cspace

import (
	"testing"

	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/rng"
)

// scratchSpaces enumerates one space per ScratchRobot implementation,
// each in an environment with enough clutter that both free and
// colliding configurations occur.
func scratchSpaces() map[string]*Space {
	return map[string]*Space{
		"rigidbody": NewRigidBodySpace(env.MedCube(), NewRigidBox(0.05, 0.04, 0.03)),
		"linkage": NewLinkageSpace(env.Maze2D(4, 0.2),
			Linkage{Base: geom.V(0.5, 0.5), LinkLen: []float64{0.15, 0.12, 0.1, 0.08}}),
		"se2": NewSE2Space(env.Maze2D(3, 0.25), NewRigidRect(0.06, 0.03)),
	}
}

// TestScratchKernelsMatchReference is the pooled-vs-fresh property test:
// for every ScratchRobot, ConfigFreeS/EdgeFreeS with a (reused, dirty)
// scratch must return exactly what the allocating reference kernels
// return — same verdict, same obstacle-test count.
func TestScratchKernelsMatchReference(t *testing.T) {
	for name, s := range scratchSpaces() {
		t.Run(name, func(t *testing.T) {
			sr := s.Robot.(ScratchRobot)
			r := rng.New(101)
			var sc Scratch // shared across all trials: stale state must not leak
			for trial := 0; trial < 400; trial++ {
				qa := s.SampleIn(s.Bounds, r, nil)
				qb := qa.Clone()
				for i := range qb {
					qb[i] += (r.Float64() - 0.5) * 0.05
				}
				wantFree, wantTests := s.Robot.ConfigFree(s.Env, qa)
				gotFree, gotTests := sr.ConfigFreeS(s.Env, qa, &sc)
				if gotFree != wantFree || gotTests != wantTests {
					t.Fatalf("ConfigFreeS(%v) = (%v, %d), reference = (%v, %d)",
						qa, gotFree, gotTests, wantFree, wantTests)
				}
				wantFree, wantTests = s.Robot.EdgeFree(s.Env, qa, qb)
				gotFree, gotTests = sr.EdgeFreeS(s.Env, qa, qb, &sc)
				if gotFree != wantFree || gotTests != wantTests {
					t.Fatalf("EdgeFreeS(%v, %v) = (%v, %d), reference = (%v, %d)",
						qa, qb, gotFree, gotTests, wantFree, wantTests)
				}
			}
		})
	}
}

// TestLocalPlanSMatchesLocalPlan checks the bisection-ordered planner
// agrees with the sequential reference on the accept/reject verdict for
// every edge, and on the full work counters whenever the edge is
// accepted (on rejection only the verdict is contractual — fail-fast
// stops at a different check).
func TestLocalPlanSMatchesLocalPlan(t *testing.T) {
	spaces := scratchSpaces()
	spaces["point"] = NewPointSpace(env.MedCube())
	for name, s := range spaces {
		t.Run(name, func(t *testing.T) {
			r := rng.New(103)
			var sc Scratch
			accepts, rejects := 0, 0
			for trial := 0; trial < 200; trial++ {
				qa := s.SampleIn(s.Bounds, r, nil)
				qb := s.SampleIn(s.Bounds, r, nil)
				// Mix of short and long edges.
				if trial%2 == 0 {
					qb = qa.Lerp(qb, 0.1)
				}
				var cRef, cScr Counters
				want := s.LocalPlan(qa, qb, &cRef)
				got := s.LocalPlanS(qa, qb, &sc, &cScr)
				if got != want {
					t.Fatalf("LocalPlanS(%v, %v) = %v, LocalPlan = %v", qa, qb, got, want)
				}
				if want {
					accepts++
					if cRef != cScr {
						t.Fatalf("accepted edge counters differ: scratch %+v, reference %+v", cScr, cRef)
					}
				} else {
					rejects++
				}
			}
			if accepts == 0 || rejects == 0 {
				t.Fatalf("degenerate trial mix: %d accepts, %d rejects", accepts, rejects)
			}
		})
	}
}

// TestScratchKernelsAllocFree pins the steady-state allocation contract
// of the pooled kernels.
func TestScratchKernelsAllocFree(t *testing.T) {
	s := NewRigidBodySpace(env.MedCube(), NewRigidBox(0.03, 0.02, 0.01))
	r := rng.New(107)
	var sc Scratch
	var c Counters
	qa := s.SampleIn(s.Bounds, r, nil)
	qb := s.SampleIn(s.Bounds, r, nil)
	qb = qa.Lerp(qb, 0.05)
	s.LocalPlanS(qa, qb, &sc, &c) // warm the buffers
	avg := testing.AllocsPerRun(100, func() {
		s.ValidS(qa, &sc, &c)
		s.LocalPlanS(qa, qb, &sc, &c)
	})
	if avg != 0 {
		t.Fatalf("scratch kernels allocate %.1f allocs/run in steady state, want 0", avg)
	}
}

// TestSampleInIntoMatchesSampleIn verifies the destination-passing
// sampler consumes the RNG stream identically to the allocating one.
func TestSampleInIntoMatchesSampleIn(t *testing.T) {
	s := NewRigidBodySpace(env.MedCube(), NewRigidBox(0.03, 0.02, 0.01))
	r1, r2 := rng.New(109), rng.New(109)
	var dst Config
	for trial := 0; trial < 100; trial++ {
		want := s.SampleIn(s.Bounds, r1, nil)
		dst = s.SampleInInto(dst, s.Bounds, r2, nil)
		if !want.Equal(dst, 0) {
			t.Fatalf("trial %d: SampleInInto = %v, SampleIn = %v", trial, dst, want)
		}
	}
}

// TestStepTowardIntoMatchesStepToward verifies the destination-passing
// steering step.
func TestStepTowardIntoMatchesStepToward(t *testing.T) {
	s := NewPointSpace(env.MedCube())
	r := rng.New(113)
	var dst Config
	for trial := 0; trial < 100; trial++ {
		a := s.SampleIn(s.Bounds, r, nil)
		b := s.SampleIn(s.Bounds, r, nil)
		step := r.Float64()
		want, wantHit := s.StepToward(a, b, step)
		var gotHit bool
		dst, gotHit = s.StepTowardInto(dst, a, b, step)
		if gotHit != wantHit || !want.Equal(dst, 0) {
			t.Fatalf("StepTowardInto = (%v, %v), StepToward = (%v, %v)", dst, gotHit, want, wantHit)
		}
	}
}
