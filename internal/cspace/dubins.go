package cspace

import (
	"math"

	"parmp/internal/dubins"
	"parmp/internal/env"
	"parmp/internal/geom"
)

// DubinsSteering steers a forward-only car with bounded turning radius:
// feasible motions between (x, y, heading) configurations are shortest
// Dubins paths.
type DubinsSteering struct {
	Radius float64
}

// PathLength implements Steering.
func (d DubinsSteering) PathLength(a, b Config) float64 {
	p, ok := dubins.Shortest(a[0], a[1], a[2], b[0], b[1], b[2], d.Radius)
	if !ok {
		return math.Inf(1)
	}
	return p.Length()
}

// Interp implements Steering. Headings are normalized into [-pi, pi] to
// match the C-space bounds.
func (d DubinsSteering) Interp(a, b Config, s float64) Config {
	p, ok := dubins.Shortest(a[0], a[1], a[2], b[0], b[1], b[2], d.Radius)
	if !ok {
		return a.Clone()
	}
	x, y, th := p.At(s)
	if th > math.Pi {
		th -= 2 * math.Pi
	}
	return geom.V(x, y, th)
}

// NewDubinsSpace returns the C-space of a Dubins car (a point vehicle
// with bounded turning radius) in a 2D environment: configurations are
// (x, y, heading), local plans follow shortest Dubins curves, and the
// metric remains the weighted Euclidean distance so nearest-neighbour
// structures stay symmetric.
func NewDubinsSpace(e *env.Environment, radius float64) *Space {
	lo := geom.V(e.Bounds.Lo[0], e.Bounds.Lo[1], -math.Pi)
	hi := geom.V(e.Bounds.Hi[0], e.Bounds.Hi[1], math.Pi)
	return &Space{
		Env:        e,
		Robot:      dubinsPoint{},
		Bounds:     geom.NewAABB(lo, hi),
		Weights:    []float64{1, 1, 0.2},
		Resolution: defaultResolution(e.Bounds),
		Steer:      DubinsSteering{Radius: radius},
	}
}

// dubinsPoint checks only the car's (x, y) position against obstacles;
// the heading dimension is kinematic, not geometric.
type dubinsPoint struct{}

func (dubinsPoint) DOF() int { return 3 }

func (dubinsPoint) ConfigFree(e *env.Environment, q Config) (bool, int) {
	return e.CheckPoint(geom.V(q[0], q[1]))
}

func (dubinsPoint) EdgeFree(e *env.Environment, a, b Config) (bool, int) {
	return e.SegmentFree(geom.V(a[0], a[1]), geom.V(b[0], b[1]))
}
