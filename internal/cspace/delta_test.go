package cspace

import (
	"testing"

	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/rng"
)

// TestDeltaCheckerSoundness fuzzes the contract that matters: for any
// configuration/edge free before the mutation, ConfigStillFree and
// EdgeStillFree must agree with a full recheck against the mutated
// world. (The converse — flagging something still free as affected —
// only costs time and is exercised by the culling tests.)
func TestDeltaCheckerSoundness(t *testing.T) {
	base := env.Mixed30()
	s := NewPointSpace(base)
	mutated := base.Clone()
	d, err := mutated.AddObstacle(env.BoxObstacle{Box: geom.Box3(0.3, 0.3, 0.3, 0.55, 0.55, 0.55)})
	if err != nil {
		t.Fatal(err)
	}
	after := s.WithEnv(mutated)
	dc := NewDeltaChecker(s, d)

	r := rng.New(42)
	var cfgs []Config
	for len(cfgs) < 200 {
		q, ok := s.SampleFreeIn(s.Bounds, r, 50, nil)
		if !ok {
			continue
		}
		cfgs = append(cfgs, q)
	}
	for _, q := range cfgs {
		got := dc.ConfigStillFree(q, nil)
		want := after.Valid(q, nil)
		if got != want {
			t.Fatalf("ConfigStillFree(%v) = %v, full recheck = %v", q, got, want)
		}
	}
	edges := 0
	for i := 0; i+1 < len(cfgs) && edges < 100; i += 2 {
		a, b := cfgs[i], cfgs[i+1]
		if !s.LocalPlan(a, b, nil) {
			continue // only pre-mutation-valid edges are in scope
		}
		edges++
		got := dc.EdgeStillFree(a, b, nil)
		want := after.LocalPlan(a, b, nil)
		if got != want {
			t.Fatalf("EdgeStillFree = %v, full recheck = %v", got, want)
		}
	}
	if edges == 0 {
		t.Fatal("no valid edges sampled")
	}
}

func TestDeltaCheckerRemovalOnly(t *testing.T) {
	base := env.MedCube()
	s := NewPointSpace(base)
	mutated := base.Clone()
	d, err := mutated.RemoveObstacle(0)
	if err != nil {
		t.Fatal(err)
	}
	dc := NewDeltaChecker(s, d)
	if dc.Invalidating() {
		t.Fatal("removal-only delta reported invalidating")
	}
	// Everything stays free without a single collision test.
	var c Counters
	if !dc.ConfigStillFree(geom.V(0.1, 0.1, 0.1), &c) {
		t.Fatal("removal invalidated a config")
	}
	if !dc.EdgeStillFree(geom.V(0.1, 0.1, 0.1), geom.V(0.9, 0.9, 0.9), &c) {
		t.Fatal("removal invalidated an edge")
	}
	if c.CDCalls != 0 || c.LPCalls != 0 {
		t.Fatalf("removal-only recheck did work: %v", c)
	}
}

func TestDeltaCheckerCulling(t *testing.T) {
	base := env.Free()
	s := NewPointSpace(base)
	mutated := base.Clone()
	d, err := mutated.AddObstacle(env.BoxObstacle{Box: geom.Box3(0.45, 0.45, 0.45, 0.55, 0.55, 0.55)})
	if err != nil {
		t.Fatal(err)
	}
	dc := NewDeltaChecker(s, d)
	// A config far from the delta is culled without collision work.
	var c Counters
	if !dc.ConfigStillFree(geom.V(0.05, 0.05, 0.05), &c) || c.CDCalls != 0 {
		t.Fatalf("far config not culled (counters %v)", c)
	}
	if dc.ConfigAffected(geom.V(0.05, 0.05, 0.05)) {
		t.Fatal("far config reported affected")
	}
	if !dc.ConfigAffected(geom.V(0.5, 0.5, 0.5)) {
		t.Fatal("config inside the delta reported unaffected")
	}
	// An edge whose endpoint AABB misses the delta is culled; one that
	// crosses it is not (even with both endpoints outside).
	if dc.EdgeAffected(geom.V(0.1, 0.1, 0.1), geom.V(0.2, 0.1, 0.1)) {
		t.Fatal("distant edge reported affected")
	}
	if !dc.EdgeAffected(geom.V(0.5, 0.5, 0.1), geom.V(0.5, 0.5, 0.9)) {
		t.Fatal("crossing edge reported unaffected")
	}
	if dc.EdgeStillFree(geom.V(0.5, 0.5, 0.1), geom.V(0.5, 0.5, 0.9), nil) {
		t.Fatal("edge through the new obstacle survived")
	}
	// The cull ball is available for point spaces and contains the
	// obstacle.
	center, radius, ok := dc.CullBall()
	if !ok {
		t.Fatal("cull ball unavailable for a point space")
	}
	if center.Dist(geom.V(0.5, 0.5, 0.5)) > 1e-12 {
		t.Fatalf("cull ball center %v", center)
	}
	if radius <= 0 {
		t.Fatalf("cull ball radius %g", radius)
	}
}

func TestDeltaCheckerRigidBodyReach(t *testing.T) {
	base := env.Free()
	body := NewRigidBox(0.08, 0.08, 0.08)
	s := NewRigidBodySpace(base, body)
	mutated := base.Clone()
	d, err := mutated.AddObstacle(env.BoxObstacle{Box: geom.Box3(0.45, 0.45, 0.45, 0.55, 0.55, 0.55)})
	if err != nil {
		t.Fatal(err)
	}
	dc := NewDeltaChecker(s, d)
	// A pose whose body can graze the new obstacle must not be culled:
	// center at distance < body half-diagonal from the box face.
	q := geom.V(0.58, 0.5, 0.5, 0.7, 0, 0) // rotated so corners stick out
	if !dc.ConfigAffected(q) {
		t.Fatal("pose within body reach of the delta was culled")
	}
	after := s.WithEnv(mutated)
	if dc.ConfigStillFree(q, nil) != after.Valid(q, nil) {
		t.Fatal("rigid-body recheck disagrees with full recheck")
	}
	// No cull ball: the C-space is weighted and 6-dimensional.
	if _, _, ok := dc.CullBall(); ok {
		t.Fatal("cull ball offered for a weighted 6-DOF space")
	}
}

func TestDeltaCheckerLinkageDisk(t *testing.T) {
	base := &env.Environment{Name: "plane", Bounds: geom.NewAABB(geom.V(0, 0), geom.V(1, 1))}
	l := Linkage{Base: geom.V(0.2, 0.2), LinkLen: []float64{0.1, 0.1}}
	s := NewLinkageSpace(base, l)

	// Delta outside the reachability disk: never affected.
	far := base.Clone()
	dFar, err := far.AddObstacle(env.BoxObstacle{Box: geom.Box2(0.8, 0.8, 0.9, 0.9)})
	if err != nil {
		t.Fatal(err)
	}
	dc := NewDeltaChecker(s, dFar)
	if dc.Invalidating() {
		t.Fatal("unreachable delta reported invalidating for linkage")
	}

	// Delta inside the disk: all-or-nothing, every config re-checked.
	near := base.Clone()
	dNear, err := near.AddObstacle(env.BoxObstacle{Box: geom.Box2(0.3, 0.18, 0.4, 0.24)})
	if err != nil {
		t.Fatal(err)
	}
	dc = NewDeltaChecker(s, dNear)
	if !dc.Invalidating() {
		t.Fatal("reachable delta not invalidating")
	}
	qStraight := geom.V(0.0, 0.0) // arm pointing +x: collides with the bar
	qUp := geom.V(1.57, 1.57)     // arm pointing +y: clear
	if !dc.ConfigAffected(qStraight) || !dc.ConfigAffected(qUp) {
		t.Fatal("linkage culling must be all-or-nothing")
	}
	afterNear := s.WithEnv(near)
	for _, q := range []Config{qStraight, qUp} {
		if dc.ConfigStillFree(q, nil) != afterNear.Valid(q, nil) {
			t.Fatalf("linkage recheck disagrees with full recheck at %v", q)
		}
	}
}
