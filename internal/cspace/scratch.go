package cspace

import (
	"math"

	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/rng"
)

// Scratch holds the per-worker reusable buffers the collision kernels
// write through: workspace probe positions, interpolated configurations
// and probe temporaries. A Scratch is not safe for concurrent use — each
// worker (or pooled task) owns one. All kernels accept a nil Scratch and
// fall back to their allocating form, so callers opt in incrementally.
type Scratch struct {
	worldA []geom.Vec // probe positions at the first configuration
	worldB []geom.Vec // probe positions at the second configuration
	qa, qb Config     // interpolated configurations (LocalPlanS ping-pong)
	pa, pb geom.Vec   // per-probe temporaries (must not alias qa/qb)
}

// growVecs resizes buf to n vectors of dimension dim, reusing both the
// outer slice and each vector's storage.
func growVecs(buf []geom.Vec, n, dim int) []geom.Vec {
	if cap(buf) < n {
		next := make([]geom.Vec, n)
		copy(next, buf[:cap(buf)])
		buf = next
	}
	buf = buf[:n]
	for i := range buf {
		if cap(buf[i]) < dim {
			buf[i] = make(geom.Vec, dim)
		} else {
			buf[i] = buf[i][:dim]
		}
	}
	return buf
}

// ScratchRobot is implemented by robots whose collision kernels can run
// allocation-free through a Scratch. The S variants must return exactly
// what ConfigFree/EdgeFree return for the same inputs.
type ScratchRobot interface {
	Robot
	ConfigFreeS(e *env.Environment, q Config, sc *Scratch) (bool, int)
	EdgeFreeS(e *env.Environment, a, b Config, sc *Scratch) (bool, int)
}

// ConfigFreeS implements ScratchRobot: probe points land in the scratch
// world buffer instead of a fresh slice.
func (r RigidBody) ConfigFreeS(e *env.Environment, q Config, sc *Scratch) (bool, int) {
	if sc == nil {
		return r.ConfigFree(e, q)
	}
	tr := r.pose(q)
	sc.worldA = growVecs(sc.worldA, len(r.BodyPoints), 3)
	world := sc.worldA
	tests := 0
	for i, bp := range r.BodyPoints {
		tr.ApplyInto(world[i], bp)
		free, n := e.CheckPoint(world[i])
		tests += n
		if !free {
			return false, tests
		}
	}
	for i := 1; i < len(world); i++ {
		free, n := e.SegmentFree(world[0], world[i])
		tests += n
		if !free {
			return false, tests
		}
	}
	return true, tests
}

// EdgeFreeS implements ScratchRobot.
func (r RigidBody) EdgeFreeS(e *env.Environment, a, b Config, sc *Scratch) (bool, int) {
	if sc == nil {
		return r.EdgeFree(e, a, b)
	}
	ta, tb := r.pose(a), r.pose(b)
	tests := 0
	for _, bp := range r.BodyPoints {
		sc.pa = ta.ApplyInto(sc.pa, bp)
		sc.pb = tb.ApplyInto(sc.pb, bp)
		free, n := e.SegmentFree(sc.pa, sc.pb)
		tests += n
		if !free {
			return false, tests
		}
	}
	return true, tests
}

// jointPositionsInto fills pos (length len(LinkLen)+1) with the chain's
// joint endpoint positions for q.
func (l Linkage) jointPositionsInto(q Config, pos []geom.Vec) {
	copy(pos[0], l.Base)
	for i, length := range l.LinkLen {
		pos[i+1][0] = pos[i][0] + length*math.Cos(q[i])
		pos[i+1][1] = pos[i][1] + length*math.Sin(q[i])
	}
}

// ConfigFreeS implements ScratchRobot.
func (l Linkage) ConfigFreeS(e *env.Environment, q Config, sc *Scratch) (bool, int) {
	if sc == nil {
		return l.ConfigFree(e, q)
	}
	sc.worldA = growVecs(sc.worldA, len(l.LinkLen)+1, 2)
	pos := sc.worldA
	l.jointPositionsInto(q, pos)
	tests := 0
	for _, p := range pos {
		free, n := e.CheckPoint(p)
		tests += n
		if !free {
			return false, tests
		}
	}
	for i := 0; i+1 < len(pos); i++ {
		free, n := e.SegmentFree(pos[i], pos[i+1])
		tests += n
		if !free {
			return false, tests
		}
	}
	return true, tests
}

// EdgeFreeS implements ScratchRobot.
func (l Linkage) EdgeFreeS(e *env.Environment, a, b Config, sc *Scratch) (bool, int) {
	if sc == nil {
		return l.EdgeFree(e, a, b)
	}
	nj := len(l.LinkLen) + 1
	sc.worldA = growVecs(sc.worldA, nj, 2)
	sc.worldB = growVecs(sc.worldB, nj, 2)
	pa, pb := sc.worldA, sc.worldB
	l.jointPositionsInto(a, pa)
	l.jointPositionsInto(b, pb)
	tests := 0
	np := l.probes()
	for i := 0; i+1 < nj; i++ {
		for p := 0; p <= np; p++ {
			t := float64(p) / float64(np)
			sc.pa = geom.LerpInto(sc.pa, pa[i], pa[i+1], t)
			sc.pb = geom.LerpInto(sc.pb, pb[i], pb[i+1], t)
			free, n := e.SegmentFree(sc.pa, sc.pb)
			tests += n
			if !free {
				return false, tests
			}
		}
	}
	return true, tests
}

// placedInto fills out (length len(Outline)) with the workspace outline
// for configuration q.
func (r RigidBody2D) placedInto(q Config, out []geom.Vec) {
	sin, cos := math.Sincos(q[2])
	for i, v := range r.Outline {
		out[i][0] = q[0] + v[0]*cos - v[1]*sin
		out[i][1] = q[1] + v[0]*sin + v[1]*cos
	}
}

// ConfigFreeS implements ScratchRobot.
func (r RigidBody2D) ConfigFreeS(e *env.Environment, q Config, sc *Scratch) (bool, int) {
	if sc == nil {
		return r.ConfigFree(e, q)
	}
	sc.worldA = growVecs(sc.worldA, len(r.Outline), 2)
	pts := sc.worldA
	r.placedInto(q, pts)
	tests := 0
	for _, p := range pts {
		free, n := e.CheckPoint(p)
		tests += n
		if !free {
			return false, tests
		}
	}
	n := len(pts)
	for i := 0; i < n; i++ {
		free, k := e.SegmentFree(pts[i], pts[(i+1)%n])
		tests += k
		if !free {
			return false, tests
		}
	}
	return true, tests
}

// EdgeFreeS implements ScratchRobot.
func (r RigidBody2D) EdgeFreeS(e *env.Environment, a, b Config, sc *Scratch) (bool, int) {
	if sc == nil {
		return r.EdgeFree(e, a, b)
	}
	sc.worldA = growVecs(sc.worldA, len(r.Outline), 2)
	sc.worldB = growVecs(sc.worldB, len(r.Outline), 2)
	pa, pb := sc.worldA, sc.worldB
	r.placedInto(a, pa)
	r.placedInto(b, pb)
	tests := 0
	for i := range pa {
		free, n := e.SegmentFree(pa[i], pb[i])
		tests += n
		if !free {
			return false, tests
		}
	}
	return true, tests
}

// ValidS is Valid routed through a scratch when the robot supports it.
func (s *Space) ValidS(q Config, sc *Scratch, c *Counters) bool {
	sr, ok := s.Robot.(ScratchRobot)
	if !ok || sc == nil {
		return s.Valid(q, c)
	}
	free, tests := sr.ConfigFreeS(s.Env, q, sc)
	if c != nil {
		c.CDCalls++
		c.CDObstacle += int64(tests)
	}
	return free
}

// edgeFreeS dispatches an edge sweep through the scratch when possible.
func (s *Space) edgeFreeS(a, b Config, sc *Scratch) (bool, int) {
	if sr, ok := s.Robot.(ScratchRobot); ok && sc != nil {
		return sr.EdgeFreeS(s.Env, a, b, sc)
	}
	return s.Robot.EdgeFree(s.Env, a, b)
}

// LocalPlanS is the allocation-free local planner: interpolated
// configurations live in the scratch's ping-pong buffers and the
// intermediate points are validity-checked in bisection order (endpoint
// first, then recursive midpoints) before the edge sweeps run, so paths
// that clip an obstacle mid-span fail after O(log steps) checks instead
// of a linear march into it.
//
// The accept/reject outcome is identical to LocalPlan: both reject iff
// any of the same point or edge checks fails, and on the success path the
// same checks run exactly once each, so work counters agree. Only the
// counter totals on *rejected* edges differ (fail-fast stops earlier,
// possibly at a different check). Steered spaces fall back to LocalPlan —
// Steering.Interp allocates its result by contract.
func (s *Space) LocalPlanS(a, b Config, sc *Scratch, c *Counters) bool {
	if s.Steer != nil || sc == nil {
		return s.LocalPlan(a, b, c)
	}
	if c != nil {
		c.LPCalls++
	}
	steps := int(math.Ceil(s.Distance(a, b) / s.Resolution))
	if steps < 1 {
		steps = 1
	}
	check := func(i int) bool {
		sc.qa = geom.LerpInto(sc.qa, a, b, float64(i)/float64(steps))
		if c != nil {
			c.LPSteps++
		}
		return s.ValidS(sc.qa, sc, c)
	}
	// Bisection order: the endpoint, then each interior index i = odd·2^k
	// grouped by descending stride 2^k. Every index in [1, steps] is
	// visited exactly once.
	if !check(steps) {
		return false
	}
	stride := 1
	for stride < steps {
		stride <<= 1
	}
	for stride >>= 1; stride >= 1; stride >>= 1 {
		for i := stride; i < steps; i += 2 * stride {
			if !check(i) {
				return false
			}
		}
	}
	// All points are valid; sweep the connecting edges in order. prev and
	// cur ping-pong between the two scratch configuration buffers.
	prev := geom.CopyInto(sc.qb, a)
	sc.qb = prev
	for i := 1; i <= steps; i++ {
		sc.qa = geom.LerpInto(sc.qa, a, b, float64(i)/float64(steps))
		free, tests := s.edgeFreeS(prev, sc.qa, sc)
		if c != nil {
			c.CDObstacle += int64(tests)
		}
		if !free {
			return false
		}
		sc.qa, sc.qb = sc.qb, sc.qa
		prev = sc.qb
	}
	return true
}

// SampleInInto is SampleIn writing into dst (growing it as needed). The
// RNG stream consumption is identical to SampleIn.
func (s *Space) SampleInInto(dst Config, region geom.AABB, r *rng.Stream, c *Counters) Config {
	d := s.Dim()
	if cap(dst) < d {
		dst = make(Config, d)
	}
	dst = dst[:d]
	for i := range dst {
		if i < region.Dim() {
			dst[i] = r.Range(region.Lo[i], region.Hi[i])
		} else {
			dst[i] = r.Range(s.Bounds.Lo[i], s.Bounds.Hi[i])
		}
	}
	if c != nil {
		c.Samples++
	}
	return dst
}

// SampleFreeInInto is SampleFreeIn through scratch buffers: candidates
// are drawn into dst and validity-checked via ValidS. On success the
// returned config is dst itself — callers must Clone before retaining it
// past the next use of dst.
func (s *Space) SampleFreeInInto(dst Config, region geom.AABB, r *rng.Stream, maxTries int, sc *Scratch, c *Counters) (Config, bool) {
	for t := 0; t < maxTries; t++ {
		dst = s.SampleInInto(dst, region, r, c)
		if s.ValidS(dst, sc, c) {
			return dst, true
		}
	}
	return dst, false
}

// StepTowardInto is StepToward writing into dst. The returned config is
// dst (or a copy of b into dst when b is reached).
func (s *Space) StepTowardInto(dst Config, a, b Config, stepSize float64) (Config, bool) {
	if s.Steer != nil {
		d := s.Steer.PathLength(a, b)
		if d <= stepSize {
			return geom.CopyInto(dst, b), true
		}
		return geom.CopyInto(dst, s.Steer.Interp(a, b, stepSize)), false
	}
	d := s.Distance(a, b)
	if d <= stepSize {
		return geom.CopyInto(dst, b), true
	}
	return geom.LerpInto(dst, a, b, stepSize/d), false
}
