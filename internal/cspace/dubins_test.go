package cspace

import (
	"math"
	"testing"

	"parmp/internal/env"
	"parmp/internal/geom"
)

func TestDubinsSpaceLocalPlanFollowsCurve(t *testing.T) {
	s := NewDubinsSpace(env.Maze2D(0, 0.2), 0.1) // empty 2D env
	a := geom.V(0.2, 0.5, 0)
	b := geom.V(0.8, 0.5, math.Pi) // arrive facing backwards: must loop
	if !s.LocalPlan(a, b, nil) {
		t.Fatal("open-space Dubins plan should succeed")
	}
	// The feasible path is much longer than the straight-line metric.
	straight := s.Distance(a, b)
	curve := s.Steer.PathLength(a, b)
	if curve <= straight {
		t.Fatalf("Dubins length %v should exceed metric %v", curve, straight)
	}
}

func TestDubinsStepTowardAdvancesAlongCurve(t *testing.T) {
	s := NewDubinsSpace(env.Maze2D(0, 0.2), 0.1)
	a := geom.V(0.2, 0.2, 0)
	b := geom.V(0.8, 0.8, math.Pi/2)
	q, reached := s.StepToward(a, b, 0.05)
	if reached {
		t.Fatal("short step should not reach")
	}
	// The step lands on the Dubins curve at arc length 0.05 from a.
	if d := math.Hypot(q[0]-a[0], q[1]-a[1]); d > 0.05+1e-9 {
		t.Fatalf("stepped %v > 0.05 in workspace", d)
	}
	full, reached := s.StepToward(a, b, 1e9)
	if !reached || !full.Equal(b, 1e-6) {
		t.Fatalf("long step should reach b exactly, got %v", full)
	}
}

func TestDubinsLocalPlanDetectsCollision(t *testing.T) {
	// A wall between start and goal: straight-line would fail anyway, but
	// here the Dubins curve also crosses it.
	e := &env.Environment{
		Name:   "wall",
		Bounds: geom.Box2(0, 0, 1, 1),
		Obstacles: []env.Obstacle{
			env.BoxObstacle{Box: geom.Box2(0.45, 0, 0.55, 1)},
		},
	}
	s := NewDubinsSpace(e, 0.05)
	if s.LocalPlan(geom.V(0.2, 0.5, 0), geom.V(0.8, 0.5, 0), nil) {
		t.Fatal("plan through the wall should fail")
	}
}

func TestDubinsRRTGrowth(t *testing.T) {
	// The radial RRT should grow feasible car trajectories: every tree
	// edge's Dubins connection must be collision-free when replayed.
	s := NewDubinsSpace(env.Maze2D(2, 0.3), 0.06)
	if s.Steer == nil {
		t.Fatal("steering not installed")
	}
	var c Counters
	if !s.Valid(geom.V(0.1, 0.15, 0), &c) {
		t.Fatal("start free")
	}
}
