package serve

import (
	"strings"
	"testing"

	"parmp"
)

func TestSpecCanonicalKey(t *testing.T) {
	// Every way of writing the same planning problem must land on the
	// same tenant key.
	base, err := Spec{Env: "med-cube"}.Canonical(3)
	if err != nil {
		t.Fatal(err)
	}
	same := []Spec{
		{Env: "MED-CUBE"},
		{Env: " med-cube "},
		{Env: "med-cube", Robot: "point", Planner: "prm"},
		{Env: "med-cube", Procs: 8, Samples: 16, Seed: 1, Strategy: "repartition", Rounds: 3},
	}
	for i, sp := range same {
		c, err := sp.Canonical(3)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if c.Key() != base.Key() {
			t.Fatalf("spec %d key %q != base %q", i, c.Key(), base.Key())
		}
	}
	diff := []Spec{
		{Env: "small-cube"},
		{Env: "med-cube", Seed: 2},
		{Env: "med-cube", Samples: 32},
		{Env: "med-cube", Strategy: "none"},
		{Env: "med-cube", Rounds: 5},
		{EnvText: "name x\nbounds 0 0 0 1 1 1\n"},
	}
	for i, sp := range diff {
		c, err := sp.Canonical(3)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if c.Key() == base.Key() {
			t.Fatalf("spec %d unexpectedly shares the base key", i)
		}
	}
}

func TestSpecCanonicalErrors(t *testing.T) {
	bad := []struct {
		name string
		sp   Spec
		want string
	}{
		{"no env", Spec{}, "exactly one"},
		{"both envs", Spec{Env: "med-cube", EnvText: "bounds 0 0 1 1"}, "exactly one"},
		{"unknown env", Spec{Env: "nope"}, "unknown environment"},
		{"unknown planner", Spec{Env: "med-cube", Planner: "prm*"}, "unknown planner"},
		{"rrt without root", Spec{Env: "med-cube", Planner: "rrt"}, "requires root"},
		{"rrtconnect without goal", Spec{Env: "med-cube", Planner: "rrtconnect", Root: []float64{0.5, 0.5, 0.5}}, "requires root and goal"},
		{"unknown strategy", Spec{Env: "med-cube", Strategy: "magic"}, "unknown strategy"},
		{"unknown robot", Spec{Env: "med-cube", Robot: "blob"}, "unknown robot"},
		{"bad robot params", Spec{Env: "med-cube", Robot: "se2:0.1"}, "needs 2 half-extents"},
		{"negative half-extent", Spec{Env: "med-cube", Robot: "rigid:-1,1,1"}, "bad half-extent"},
		{"portfolio without query", Spec{Env: "med-cube", Portfolio: 2}, "requires root and goal"},
		{"bad restart schedule", Spec{Env: "med-cube", Portfolio: 2, Root: []float64{0.1, 0.1, 0.1}, Goal: []float64{0.9, 0.9, 0.9}, Restarts: "fibonacci"}, "unknown restart schedule"},
	}
	for _, tc := range bad {
		if _, err := tc.sp.Canonical(3); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestSpecBuildInlineEnv(t *testing.T) {
	sp, err := Spec{EnvText: "name inline\nbounds 0 0 0 1 1 1\nbox 0.4 0.4 0.4 0.6 0.6 0.6\n"}.Canonical(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, space, err := sp.build()
	if err != nil {
		t.Fatal(err)
	}
	if eng == nil || space == nil || space.Dim() != 3 {
		t.Fatalf("inline build: eng=%v dim=%d", eng, space.Dim())
	}

	// A 3D environment cannot carry an SE(2) robot.
	sp2, err := Spec{EnvText: "bounds 0 0 0 1 1 1", Robot: "se2:0.05,0.05"}.Canonical(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sp2.build(); err == nil || !strings.Contains(err.Error(), "2D environment") {
		t.Fatalf("se2-in-3D build err = %v", err)
	}
}

func TestSpecPortfolioCanonicalAndBuild(t *testing.T) {
	root, goal := []float64{0.05, 0.05, 0.05}, []float64{0.95, 0.95, 0.95}
	sp, err := Spec{Env: "walls", Portfolio: 2, Root: root, Goal: goal, Procs: 2, Regions: 16, Samples: 8}.Canonical(1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Restarts != "luby" {
		t.Fatalf("Restarts = %q, want luby default", sp.Restarts)
	}
	// A PRM portfolio keeps its race query — unlike a plain PRM spec —
	// and the portfolio fields flow into the tenant key.
	if len(sp.Root) == 0 || len(sp.Goal) == 0 {
		t.Fatal("canonical portfolio spec dropped the race query")
	}
	plain, err := Spec{Env: "walls", Procs: 2, Regions: 16, Samples: 8}.Canonical(1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Key() == plain.Key() {
		t.Fatal("portfolio spec shares a tenant with the plain spec")
	}
	none, err := Spec{Env: "walls", Portfolio: 2, Restarts: "none", Root: root, Goal: goal, Procs: 2, Regions: 16, Samples: 8}.Canonical(1)
	if err != nil {
		t.Fatal(err)
	}
	if none.Key() == sp.Key() {
		t.Fatal("restart schedule does not differentiate tenants")
	}
	// Restarts without Portfolio is not a distinct tenant.
	stray, err := Spec{Env: "walls", Restarts: "luby", Procs: 2, Regions: 16, Samples: 8}.Canonical(1)
	if err != nil {
		t.Fatal(err)
	}
	if stray.Key() != plain.Key() {
		t.Fatal("stray Restarts field leaked into the tenant key")
	}

	eng, _, err := sp.build()
	if err != nil {
		t.Fatal(err)
	}
	pf, ok := eng.(*parmp.Portfolio)
	if !ok {
		t.Fatalf("portfolio spec built %T, want *parmp.Portfolio", eng)
	}
	if st := pf.Stats(); st.Racers != 2 || st.Winner != -1 {
		t.Fatalf("fresh portfolio stats %+v", st)
	}
}
