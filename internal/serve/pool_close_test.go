package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"parmp"
)

// TestPoolCloseRace hammers Tenant creation, queries, and LRU eviction
// concurrently with Close. Run with -race: the pre-fix pool called
// wg.Add from tenant.close and tenant.init while Close could already be
// in wg.Wait (a WaitGroup misuse that panics or races), and Tenant
// could create tenants after Close, leaking goroutines on a dead
// context. Post-fix, every spawned request must come back as a path or
// a clean error — never hang — and Tenant must refuse a closed pool
// with ErrPoolClosed.
func TestPoolCloseRace(t *testing.T) {
	for iter := 0; iter < 8; iter++ {
		cfg := testConfig()
		cfg.MaxTenants = 2 // small cap: creations force evictions
		cfg.RequestTimeout = 2 * time.Second
		p := NewPool(cfg)

		specs := make([]Spec, 6)
		for i := range specs {
			sp, err := Spec{Env: "small-cube", Seed: uint64(i + 1), Procs: 2, Regions: 8, Samples: 4}.Canonical(1)
			if err != nil {
				t.Fatal(err)
			}
			specs[i] = sp
		}

		var wg sync.WaitGroup
		start := make(chan struct{})
		type outcome struct {
			id  int
			err error
		}
		results := make(chan outcome, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 8; i++ {
					ten, err := p.Tenant(specs[(g+i)%len(specs)])
					if err != nil {
						if !errors.Is(err, ErrPoolClosed) {
							results <- outcome{g*100 + i, fmt.Errorf("Tenant: %v", err)}
							return
						}
						continue
					}
					if ten.buildErr != nil {
						results <- outcome{g*100 + i, ten.buildErr}
						return
					}
					ctx, cancel := context.WithTimeout(context.Background(), cfg.RequestTimeout)
					req := &request{
						ctx:   ctx,
						key:   fmt.Sprintf("g%d-i%d", g, i),
						start: parmp.Config{0.1, 0.1, 0.1},
						goal:  parmp.Config{0.9, 0.9, 0.9},
						k:     4,
						resp:  make(chan response, 1),
					}
					select {
					case ten.pending <- req:
						// Every admitted request must be answered: by a
						// worker, a drain, or the tenant dying under it.
						select {
						case <-req.resp:
						case <-ten.ctx.Done():
						case <-time.After(2 * cfg.RequestTimeout):
							results <- outcome{g*100 + i, errors.New("admitted request hung")}
							cancel()
							return
						}
					default:
					}
					cancel()
				}
			}(g)
		}
		close(start)
		// Close mid-hammer, concurrently with creations and evictions.
		time.Sleep(time.Duration(iter) * 3 * time.Millisecond)
		p.Close()
		wg.Wait()
		close(results)
		for r := range results {
			t.Errorf("iter %d worker %d: %v", iter, r.id, r.err)
		}
		if t.Failed() {
			return
		}
		// Post-close semantics: no new tenants, ever.
		if _, err := p.Tenant(specs[0]); !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("Tenant after Close returned %v, want ErrPoolClosed", err)
		}
	}
}

// TestPoolCloseDrainsQueued verifies the batcher drain: requests
// already admitted to a tenant's queue when the pool closes are
// answered with a clean shutdown error rather than waiting out their
// own deadlines.
func TestPoolCloseDrainsQueued(t *testing.T) {
	cfg := testConfig()
	cfg.BatchWorkers = 1
	cfg.RequestTimeout = 30 * time.Second // a hang would be obvious
	p := NewPool(cfg)
	sp, err := Spec{Env: "small-cube", Procs: 2, Regions: 8, Samples: 4}.Canonical(1)
	if err != nil {
		t.Fatal(err)
	}
	ten, err := p.Tenant(sp)
	if err != nil {
		t.Fatal(err)
	}
	if ten.buildErr != nil {
		t.Fatal(ten.buildErr)
	}
	// Queue requests, then close. The worker (or its exit drain) must
	// answer every one of them promptly.
	reqs := make([]*request, 16)
	for i := range reqs {
		reqs[i] = &request{
			ctx:   context.Background(),
			key:   fmt.Sprintf("q%d", i),
			start: parmp.Config{0.1, 0.1, 0.1},
			goal:  parmp.Config{0.9, 0.9, 0.9},
			k:     4,
			resp:  make(chan response, 1),
		}
		ten.pending <- reqs[i]
	}
	p.Close()
	for i, r := range reqs {
		select {
		case resp := <-r.resp:
			if resp.err != nil && !errors.Is(resp.err, errTenantClosed) {
				t.Fatalf("request %d: unexpected error %v", i, resp.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d unanswered after Close", i)
		}
	}
}
