// Package serve is the planning-as-a-service tier: an HTTP/JSON front
// end over parmp.Engine that turns the repository's resumable planners
// into a multi-tenant server.
//
// The pieces, bottom-up:
//
//   - Spec canonicalizes an environment/robot/planner/options request
//     into a tenant key, so every way of writing the same planning
//     problem lands on the same engine.
//   - Pool maps tenant keys to lazily constructed engines. Each tenant
//     grows its roadmap in a background goroutine toward a target round
//     count; every committed round atomically publishes a fresh
//     snapshot (graceful rollover — in-flight queries keep their old
//     snapshot) and invalidates the tenant's path cache. Tenants are
//     evicted least-recently-used beyond the pool cap.
//   - Each tenant runs a set of batch workers that drain a bounded
//     admission queue, coalescing concurrent requests into batches
//     answered against one snapshot via Snapshot.QueryBatch — kd
//     lookups amortized through knn.NearestBatch and one multi-source
//     Dijkstra per distinct goal.
//   - pathCache is a per-tenant LRU over (start, goal, k) keyed by
//     exact float bits, tagged with the snapshot round it answers for
//     and dropped wholesale on rollover.
//   - Backpressure: when a tenant's admission queue is full the server
//     answers 429 with Retry-After instead of queueing unboundedly, and
//     every request carries a context deadline that propagates through
//     admission and batching.
//
// cmd/mpserved wraps this package in a binary; cmd/mploadgen drives it
// with millions of queries and feeds the percentiles into the
// servebench regression gate.
package serve

import (
	"runtime"
	"time"
)

// Config tunes the server. The zero value is not usable; call
// (*Config).withDefaults or use New, which applies defaults.
type Config struct {
	// MaxTenants caps the number of live engines; beyond it the
	// least-recently-used tenant is evicted. Default 8.
	MaxTenants int
	// QueueDepth bounds each tenant's admission queue; a full queue
	// answers 429. Default 256.
	QueueDepth int
	// BatchWorkers is the number of goroutines draining each tenant's
	// queue. Default runtime.GOMAXPROCS(0).
	BatchWorkers int
	// BatchMax caps how many requests one worker coalesces into a
	// batch. 1 disables batching. Default 32.
	BatchMax int
	// BatchWindow is how long a worker waits for stragglers after the
	// first request of a batch. Negative coalesces only what is
	// already queued (no wait). Default 200µs.
	BatchWindow time.Duration
	// CacheSize is the per-tenant path-cache capacity in entries.
	// Negative disables caching. Default 4096.
	CacheSize int
	// GrowRounds is the default background growth target for tenants
	// whose spec does not set Rounds. Default 3.
	GrowRounds int
	// GrowInterval pauses between background growth rounds, leaving
	// CPU for serving. Default 0 (grow back-to-back).
	GrowInterval time.Duration
	// RequestTimeout bounds each request's total time in the server
	// (admission wait included). Default 10s.
	RequestTimeout time.Duration
	// DefaultK is the attachment count used when a query omits k.
	// Default 8.
	DefaultK int
}

// withDefaults fills unset fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxTenants <= 0 {
		c.MaxTenants = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	} else if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	} else if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.GrowRounds <= 0 {
		c.GrowRounds = 3
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 8
	}
	return c
}
