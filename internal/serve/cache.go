package serve

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"parmp"
)

// pathCache is a per-tenant LRU over answered queries. Entries are
// tagged with the snapshot round they were computed against: a snapshot
// rollover (new round published) invalidates the whole cache, both so
// misses get retried against the grown roadmap and so fresher, shorter
// paths replace stale ones. Only hits are cached — a negative answer is
// exactly what growth is about to change.
type pathCache struct {
	mu      sync.Mutex
	max     int
	gen     int64 // snapshot round the live entries answer for
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key  string
	path []parmp.Config // read-only by contract
}

// newPathCache returns a cache holding at most max entries; max <= 0
// disables it (every lookup misses, every insert is dropped).
func newPathCache(max int) *pathCache {
	return &pathCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// cacheKey packs (start, goal, k) into an exact map key.
func cacheKey(start, goal parmp.Config, k int) string {
	b := make([]byte, 8*(len(start)+len(goal))+9)
	for i, v := range start {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	off := 8 * len(start)
	b[off] = 0xff // separator: (a,b|c) must not collide with (a|b,c)
	for i, v := range goal {
		binary.LittleEndian.PutUint64(b[off+1+8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint64(b[len(b)-8:], uint64(k))
	return string(b)
}

// get returns the cached path for key when present and computed against
// snapshot round gen. The returned path is shared: callers must not
// mutate it.
func (c *pathCache) get(key string, gen int64) ([]parmp.Config, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		c.misses.Add(1)
		return nil, false
	}
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).path, true
}

// put caches path under key for snapshot round gen, evicting the least
// recently used entry beyond capacity. A put tagged with a round other
// than the cache's current one is dropped: the batch that computed it
// raced a rollover, and its answer may already be stale.
func (c *pathCache) put(key string, gen int64, path []parmp.Config) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).path = path
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, path: path})
	for len(c.entries) > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
	}
}

// invalidate drops every entry and retags the cache for snapshot round
// gen. Idempotent per round.
func (c *pathCache) invalidate(gen int64) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen == gen {
		return
	}
	c.gen = gen
	c.entries = make(map[string]*list.Element)
	c.order.Init()
}

// len returns the number of live entries.
func (c *pathCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
