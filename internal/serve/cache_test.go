package serve

import (
	"testing"

	"parmp"
)

func cfgPath(vals ...float64) []parmp.Config {
	path := make([]parmp.Config, len(vals))
	for i, v := range vals {
		path[i] = parmp.Config{v, v, v}
	}
	return path
}

func TestPathCacheLRU(t *testing.T) {
	c := newPathCache(2)
	a := cacheKey(parmp.Config{0.1}, parmp.Config{0.9}, 8)
	b := cacheKey(parmp.Config{0.2}, parmp.Config{0.8}, 8)
	d := cacheKey(parmp.Config{0.3}, parmp.Config{0.7}, 8)

	c.put(a, 0, cfgPath(1))
	c.put(b, 0, cfgPath(2))
	if _, ok := c.get(a, 0); !ok {
		t.Fatal("a must be cached")
	}
	// a was just touched, so inserting d evicts b.
	c.put(d, 0, cfgPath(3))
	if _, ok := c.get(b, 0); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get(a, 0); !ok {
		t.Fatal("a must survive (recently used)")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestPathCacheKeyExactness(t *testing.T) {
	// (start, goal) boundaries and k are part of the key: no collisions
	// between rearrangements of the same floats.
	a := cacheKey(parmp.Config{1, 2}, parmp.Config{3}, 8)
	b := cacheKey(parmp.Config{1}, parmp.Config{2, 3}, 8)
	if a == b {
		t.Fatal("start/goal boundary not encoded")
	}
	if cacheKey(parmp.Config{1}, parmp.Config{2}, 4) == cacheKey(parmp.Config{1}, parmp.Config{2}, 8) {
		t.Fatal("k not encoded")
	}
}

func TestPathCacheRolloverInvalidation(t *testing.T) {
	c := newPathCache(8)
	key := cacheKey(parmp.Config{0.1}, parmp.Config{0.9}, 8)
	c.put(key, 0, cfgPath(1))
	if _, ok := c.get(key, 0); !ok {
		t.Fatal("entry must hit at its own round")
	}
	// A reader already on the new snapshot misses even before invalidate.
	if _, ok := c.get(key, 1); ok {
		t.Fatal("new-round reader must miss stale entries")
	}
	c.invalidate(1)
	if _, ok := c.get(key, 1); ok {
		t.Fatal("rollover must drop entries")
	}
	if c.len() != 0 {
		t.Fatalf("len = %d after invalidate", c.len())
	}
	// A straggler batch from the old round must not poison the cache.
	c.put(key, 0, cfgPath(1))
	if _, ok := c.get(key, 1); ok {
		t.Fatal("stale put must be dropped")
	}
	c.put(key, 1, cfgPath(2))
	if path, ok := c.get(key, 1); !ok || path[0][0] != 2 {
		t.Fatal("current-round put must land")
	}
}

func TestPathCacheDisabled(t *testing.T) {
	c := newPathCache(0)
	key := cacheKey(parmp.Config{0.1}, parmp.Config{0.9}, 8)
	c.put(key, 0, cfgPath(1))
	if _, ok := c.get(key, 0); ok {
		t.Fatal("disabled cache must never hit")
	}
}
