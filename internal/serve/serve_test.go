package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// testConfig keeps tenants tiny and growth fast for tests.
func testConfig() Config {
	return Config{
		MaxTenants:     2,
		QueueDepth:     64,
		BatchWorkers:   4,
		BatchMax:       16,
		BatchWindow:    100 * time.Microsecond,
		CacheSize:      128,
		GrowRounds:     1,
		RequestTimeout: 5 * time.Second,
		DefaultK:       8,
	}
}

func testSpec() Spec {
	return Spec{Env: "med-cube", Procs: 4, Regions: 32, Samples: 10}
}

func postJSON(t *testing.T, client *http.Client, url string, body, out any) (int, http.Header) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// waitGrown polls until the tenant for spec reports grow_done.
func waitGrown(t *testing.T, client *http.Client, base string, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		resp, err := client.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st StatsResponse
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		done := len(st.Tenants) > 0
		for _, ten := range st.Tenants {
			if !ten.GrowDone && ten.BuildErr == "" {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("tenant never finished growing")
}

func TestServeQueryEndToEnd(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := QueryRequest{
		Spec:  testSpec(),
		Start: []float64{0.05, 0.05, 0.05},
		Goal:  []float64{0.95, 0.95, 0.95},
	}
	var qr QueryResponse
	code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query", req, &qr)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	waitGrown(t, ts.Client(), ts.URL, 10*time.Second)

	// After growth the corner query must solve; asking again must
	// eventually come from the cache.
	code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/query", req, &qr)
	if code != http.StatusOK || !qr.OK {
		t.Fatalf("post-growth query: status %d ok=%v", code, qr.OK)
	}
	if len(qr.Path) < 2 {
		t.Fatalf("path has %d waypoints", len(qr.Path))
	}
	var hit QueryResponse
	code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/query", req, &hit)
	if code != http.StatusOK || !hit.OK || !hit.CacheHit {
		t.Fatalf("repeat query: status %d ok=%v cache_hit=%v", code, hit.OK, hit.CacheHit)
	}

	// Malformed inputs are client errors, not panics.
	var er errorResponse
	code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/query", QueryRequest{Spec: Spec{Env: "nope"}}, &er)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown env: status %d (%s)", code, er.Error)
	}
	// Wrong-dimension endpoints answer a clean miss.
	bad := req
	bad.Start = []float64{0.1}
	code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/query", bad, &qr)
	if code != http.StatusOK || qr.OK {
		t.Fatalf("wrong-dim query: status %d ok=%v", code, qr.OK)
	}
}

// A portfolio-built tenant serves through the same endpoints: the race
// runs in the background grow loop, the winner's snapshot answers the
// race query, and stats report the race's progress.
func TestServePortfolioTenant(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	start, goal := []float64{0.05, 0.05, 0.05}, []float64{0.95, 0.95, 0.95}
	spec := Spec{Env: "walls", Portfolio: 2, Root: start, Goal: goal, Procs: 2, Regions: 16, Samples: 8}
	req := QueryRequest{Spec: spec, Start: start, Goal: goal}
	var qr QueryResponse
	code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query", req, &qr)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	waitGrown(t, ts.Client(), ts.URL, 30*time.Second)

	code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/query", req, &qr)
	if code != http.StatusOK || !qr.OK || len(qr.Path) < 2 {
		t.Fatalf("post-race query: status %d ok=%v path=%d", code, qr.OK, len(qr.Path))
	}
	stats := srv.Pool().Stats()
	if len(stats) != 1 {
		t.Fatalf("tenants = %d, want 1", len(stats))
	}
	st := stats[0]
	if st.Racers != 2 || st.Winner == nil || st.Waves == 0 {
		t.Fatalf("portfolio stats %+v: want 2 racers, a winner, and waves > 0", st)
	}
}

func TestServeBatchEndpoint(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := []BatchQuery{
		{Start: []float64{0.05, 0.05, 0.05}, Goal: []float64{0.95, 0.95, 0.95}},
		{Start: []float64{0.1, 0.9, 0.1}, Goal: []float64{0.95, 0.95, 0.95}},
		{Start: []float64{0.05, 0.05, 0.05}, Goal: []float64{0.95, 0.95, 0.95}}, // duplicate of 0
	}
	// Warm the tenant, then wait out growth for deterministic answers.
	postJSON(t, ts.Client(), ts.URL+"/v1/batch", BatchRequest{Spec: testSpec(), Queries: queries[:1]}, nil)
	waitGrown(t, ts.Client(), ts.URL, 10*time.Second)

	var br BatchResponse
	code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", BatchRequest{Spec: testSpec(), Queries: queries}, &br)
	if code != http.StatusOK || len(br.Results) != 3 {
		t.Fatalf("batch: status %d results %d", code, len(br.Results))
	}
	for i, res := range br.Results {
		if !res.OK {
			t.Fatalf("batch query %d missed", i)
		}
	}
	// Duplicate queries must agree with each other.
	if fmt.Sprint(br.Results[0].Path) != fmt.Sprint(br.Results[2].Path) {
		t.Fatal("duplicate batch queries disagree")
	}
	if code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", BatchRequest{Spec: testSpec()}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}
}

// Concurrent clients on one tenant: everything answers, batches form,
// and the cache serves repeats. This is the coalescing path under real
// contention.
func TestServeConcurrentClientsBatchAndCache(t *testing.T) {
	cfg := testConfig()
	srv := New(cfg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/v1/query", QueryRequest{
		Spec: testSpec(), Start: []float64{0.05, 0.05, 0.05}, Goal: []float64{0.95, 0.95, 0.95},
	}, nil)
	waitGrown(t, ts.Client(), ts.URL, 10*time.Second)

	// A small hot set so distinct goals still repeat across clients. The
	// test roadmap is deliberately tiny, so keep only the pairs it
	// actually solves — the contract under test is coalescing + caching,
	// not roadmap coverage. Growth is done, so solvability is stable.
	candidates := [][2][]float64{
		{{0.05, 0.05, 0.05}, {0.95, 0.95, 0.95}},
		{{0.1, 0.9, 0.1}, {0.9, 0.1, 0.9}},
		{{0.2, 0.2, 0.8}, {0.8, 0.8, 0.2}},
	}
	var hot [][2][]float64
	for _, pair := range candidates {
		var qr QueryResponse
		code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query", QueryRequest{
			Spec: testSpec(), Start: pair[0], Goal: pair[1],
		}, &qr)
		if code != http.StatusOK {
			t.Fatalf("pre-check: status %d", code)
		}
		if qr.OK {
			hot = append(hot, pair)
		}
	}
	if len(hot) == 0 {
		t.Fatal("no hot pair solvable after growth")
	}
	const clients, perClient = 8, 30
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				pair := hot[(c+i)%len(hot)]
				var qr QueryResponse
				b, _ := json.Marshal(QueryRequest{Spec: testSpec(), Start: pair[0], Goal: pair[1]})
				resp, err := ts.Client().Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(b))
				if err != nil {
					errs <- err
					return
				}
				code := resp.StatusCode
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK || !qr.OK {
					errs <- fmt.Errorf("client %d query %d: status %d ok=%v", c, i, code, qr.OK)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats := srv.Pool().Stats()
	if len(stats) != 1 {
		t.Fatalf("tenants = %d, want 1", len(stats))
	}
	st := stats[0]
	if st.Queries < clients*perClient {
		t.Fatalf("queries = %d, want >= %d", st.Queries, clients*perClient)
	}
	if st.CacheHits == 0 {
		t.Fatal("hot pairs produced no cache hits")
	}
}

// A full admission queue must answer 429 with Retry-After, not block.
func TestServeBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 1
	cfg.BatchWorkers = 1
	cfg.BatchMax = 1
	cfg.CacheSize = -1 // force every request through the queue
	srv := New(cfg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Build the tenant, then wedge it: stop its worker and fill the
	// depth-1 queue directly, so the next admission deterministically
	// overflows instead of racing the worker's drain speed.
	spec, err := testSpec().Canonical(cfg.GrowRounds)
	if err != nil {
		t.Fatal(err)
	}
	ten, err := srv.Pool().Tenant(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ten.buildErr != nil {
		t.Fatal(ten.buildErr)
	}
	ten.cancel()
	ten.workers.Wait()
	ten.pending <- &request{resp: make(chan response, 1)}

	q := QueryRequest{
		Spec:  testSpec(),
		Start: []float64{0.05, 0.05, 0.05},
		Goal:  []float64{0.95, 0.95, 0.95},
	}
	var er errorResponse
	code, hdr := postJSON(t, ts.Client(), ts.URL+"/v1/query", q, &er)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", code, er.Error)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 carried no Retry-After header")
	}
	if st := srv.Pool().Stats(); st[0].Rejected == 0 {
		t.Fatal("stats did not count rejections")
	}
	// Free the queue slot: an admitted request on a canceled tenant is
	// answered 503, never silently dropped.
	<-ten.pending
	code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/query", q, &er)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503 from canceled tenant", code, er.Error)
	}
}

// The pool must build tenants lazily, share them by canonical key, and
// evict LRU beyond MaxTenants.
func TestPoolLazyAndLRU(t *testing.T) {
	cfg := testConfig()
	cfg.MaxTenants = 2
	p := NewPool(cfg)
	defer p.Close()

	mk := func(env string, seed uint64) Spec {
		sp, err := Spec{Env: env, Seed: seed, Procs: 2, Regions: 16, Samples: 4}.Canonical(1)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	get := func(sp Spec) *tenant {
		t.Helper()
		ten, err := p.Tenant(sp)
		if err != nil {
			t.Fatal(err)
		}
		return ten
	}
	a := get(mk("med-cube", 1))
	if a.buildErr != nil {
		t.Fatal(a.buildErr)
	}
	if again := get(mk("med-cube", 1)); again != a {
		t.Fatal("same canonical spec must share the tenant")
	}
	b := get(mk("small-cube", 1))
	// Touch a so the next insert evicts b.
	get(mk("med-cube", 1))
	get(mk("free", 1))
	stats := p.Stats()
	if len(stats) != 2 {
		t.Fatalf("tenants = %d, want 2 after eviction", len(stats))
	}
	for _, st := range stats {
		if st.Env == "small-cube" {
			t.Fatal("LRU tenant was not evicted")
		}
	}
	// The evicted tenant's context must be canceled.
	select {
	case <-b.ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("evicted tenant not canceled")
	}
}

// Rollover under load: queries served while the engine grows must stay
// well-formed, and the cache must never serve a path tagged for an
// older snapshot round.
func TestServeRolloverConsistency(t *testing.T) {
	cfg := testConfig()
	cfg.GrowRounds = 4
	cfg.GrowInterval = 2 * time.Millisecond
	srv := New(cfg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := testSpec()
	spec.Rounds = 4
	req := QueryRequest{Spec: spec, Start: []float64{0.05, 0.05, 0.05}, Goal: []float64{0.95, 0.95, 0.95}}
	lastRounds := -1
	for i := 0; i < 200; i++ {
		var qr QueryResponse
		code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query", req, &qr)
		if code != http.StatusOK {
			t.Fatalf("iter %d: status %d", i, code)
		}
		if qr.Rounds < lastRounds {
			t.Fatalf("iter %d: rounds went backwards %d -> %d", i, lastRounds, qr.Rounds)
		}
		lastRounds = qr.Rounds
		if qr.OK {
			if got := qr.Path[0]; got[0] != 0.05 {
				t.Fatalf("iter %d: path does not start at start", i)
			}
		}
		if qr.GrowDone && qr.CacheHit {
			break // steady state reached and cache warm: done
		}
	}
}
