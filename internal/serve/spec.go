package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"parmp"
)

// Spec describes a tenant: the planning problem a client wants served.
// Two requests whose canonicalized specs are equal share one engine, so
// the canonical form — defaults applied, names normalized — is the
// tenant key.
type Spec struct {
	// Env names a built-in benchmark environment. Exactly one of Env
	// and EnvText must be set.
	Env string `json:"env,omitempty"`
	// EnvText is an inline environment in the env text format
	// (name / bounds / box / sphere directives).
	EnvText string `json:"env_text,omitempty"`
	// Robot selects the C-space: "point" (default), "se2:hx,hy" or
	// "rigid:hx,hy,hz".
	Robot string `json:"robot,omitempty"`
	// Planner is "prm" (default), "rrt" or "rrtconnect". Tree planners
	// require Root (and, for rrtconnect, Goal).
	Planner string    `json:"planner,omitempty"`
	Root    []float64 `json:"root,omitempty"`
	Goal    []float64 `json:"goal,omitempty"`

	Procs   int    `json:"procs,omitempty"`
	Regions int    `json:"regions,omitempty"`
	Samples int    `json:"samples,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Strategy is "none", "repartition" (default), "hybrid", "rand-8"
	// or "diffusive".
	Strategy string `json:"strategy,omitempty"`
	// Rounds is the background growth target; 0 uses the server
	// default.
	Rounds int `json:"rounds,omitempty"`

	// Portfolio races this many derived-seed configurations of the
	// planner to first solution (Luby restarts, lowest-index
	// arbitration) instead of growing one engine; 0 serves a single
	// engine. Requires Root and Goal — the race query.
	Portfolio int `json:"portfolio,omitempty"`
	// Restarts is the portfolio restart schedule, "luby" (default) or
	// "none"; only meaningful with Portfolio > 0.
	Restarts string `json:"restarts,omitempty"`
}

// Canonical returns the spec with defaults applied and names
// normalized, or an error when the spec cannot name a tenant. growRounds
// is the server's default growth target.
func (sp Spec) Canonical(growRounds int) (Spec, error) {
	c := sp
	c.Env = strings.ToLower(strings.TrimSpace(c.Env))
	c.EnvText = strings.TrimSpace(c.EnvText)
	if (c.Env == "") == (c.EnvText == "") {
		return c, fmt.Errorf("spec: exactly one of env and env_text is required")
	}
	if c.Env != "" && parmp.EnvironmentByName(c.Env) == nil {
		return c, fmt.Errorf("spec: unknown environment %q (have %s)", c.Env, strings.Join(parmp.EnvironmentNames(), ", "))
	}
	c.Robot = strings.ToLower(strings.TrimSpace(c.Robot))
	if c.Robot == "" {
		c.Robot = "point"
	}
	if _, err := robotHalves(c.Robot); err != nil {
		return c, err
	}
	c.Planner = strings.ToLower(strings.TrimSpace(c.Planner))
	if c.Planner == "" {
		c.Planner = "prm"
	}
	switch c.Planner {
	case "prm", "rrt", "rrtconnect":
	default:
		return c, fmt.Errorf("spec: unknown planner %q (want %s)", c.Planner, strings.Join(parmp.PlannerNames(), ", "))
	}
	if c.Portfolio < 0 {
		c.Portfolio = 0
	}
	if c.Portfolio > 0 {
		// A portfolio tenant always carries the race query, whatever the
		// planner family.
		if len(c.Root) == 0 || len(c.Goal) == 0 {
			return c, fmt.Errorf("spec: portfolio requires root and goal (the race query)")
		}
		c.Restarts = strings.ToLower(strings.TrimSpace(c.Restarts))
		if c.Restarts == "" {
			c.Restarts = "luby"
		}
		if c.Restarts != "luby" && c.Restarts != "none" {
			return c, fmt.Errorf("spec: unknown restart schedule %q (want luby or none)", c.Restarts)
		}
	} else {
		c.Restarts = ""
		switch c.Planner {
		case "prm":
			c.Root, c.Goal = nil, nil
		case "rrt":
			if len(c.Root) == 0 {
				return c, fmt.Errorf("spec: planner rrt requires root")
			}
			c.Goal = nil
		case "rrtconnect":
			if len(c.Root) == 0 || len(c.Goal) == 0 {
				return c, fmt.Errorf("spec: planner rrtconnect requires root and goal")
			}
		}
	}
	if c.Procs <= 0 {
		c.Procs = 8
	}
	if c.Regions < 0 {
		c.Regions = 0
	}
	if c.Samples <= 0 {
		c.Samples = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Strategy = strings.ToLower(strings.TrimSpace(c.Strategy))
	if c.Strategy == "" {
		c.Strategy = "repartition"
	}
	if _, _, err := strategyOptions(c.Strategy); err != nil {
		return c, err
	}
	if c.Rounds <= 0 {
		c.Rounds = growRounds
	}
	return c, nil
}

// Key returns the canonical spec's tenant key. Only call on the result
// of Canonical: the key is the deterministic JSON encoding, so equal
// canonical specs — and only those — collide.
func (sp Spec) Key() string {
	b, err := json.Marshal(sp)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on one.
		panic(err)
	}
	return string(b)
}

// robotHalves parses the Robot field into its half-extent parameters.
func robotHalves(robot string) ([]float64, error) {
	name, args, _ := strings.Cut(robot, ":")
	var want int
	switch name {
	case "point":
		if args != "" {
			return nil, fmt.Errorf("spec: robot point takes no parameters")
		}
		return nil, nil
	case "se2":
		want = 2
	case "rigid":
		want = 3
	default:
		return nil, fmt.Errorf("spec: unknown robot %q (want point, se2:hx,hy or rigid:hx,hy,hz)", robot)
	}
	parts := strings.Split(args, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("spec: robot %s needs %d half-extents", name, want)
	}
	halves := make([]float64, want)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || !(v > 0) {
			return nil, fmt.Errorf("spec: bad half-extent %q in robot %q", p, robot)
		}
		halves[i] = v
	}
	return halves, nil
}

// strategyOptions maps a strategy name onto Options fields.
func strategyOptions(name string) (parmp.Strategy, parmp.StealPolicy, error) {
	switch name {
	case "none":
		return parmp.NoLB, nil, nil
	case "repartition":
		return parmp.Repartition, nil, nil
	case "hybrid":
		return parmp.WorkStealing, parmp.Hybrid(8), nil
	case "rand-8":
		return parmp.WorkStealing, parmp.RandK(8), nil
	case "diffusive":
		return parmp.WorkStealing, parmp.Diffusive(), nil
	}
	return 0, nil, fmt.Errorf("spec: unknown strategy %q (want none, repartition, hybrid, rand-8, diffusive)", name)
}

// portfolioMaxWaves bounds background racing: an unsolvable race query
// stops burning CPU after this many lockstep waves (the tenant keeps
// serving its empty snapshot and surfaces grow_error in stats).
const portfolioMaxWaves = 256

// build constructs the tenant's space and engine — a plain Engine, or a
// Portfolio when the spec races one — from a canonical spec.
func (sp Spec) build() (engine, *parmp.Space, error) {
	var e *parmp.Environment
	if sp.Env != "" {
		e = parmp.EnvironmentByName(sp.Env)
		if e == nil {
			return nil, nil, fmt.Errorf("unknown environment %q", sp.Env)
		}
	} else {
		var err error
		e, err = parmp.ParseEnvironment(strings.NewReader(sp.EnvText))
		if err != nil {
			return nil, nil, fmt.Errorf("env_text: %w", err)
		}
	}
	halves, err := robotHalves(sp.Robot)
	if err != nil {
		return nil, nil, err
	}
	var space *parmp.Space
	switch {
	case sp.Robot == "point":
		space = parmp.NewPointSpace(e)
	case strings.HasPrefix(sp.Robot, "se2"):
		if e.Dim() != 2 {
			return nil, nil, fmt.Errorf("robot se2 needs a 2D environment, %s is %dD", e.Name, e.Dim())
		}
		space = parmp.NewSE2Space(e, halves[0], halves[1])
	default: // rigid
		if e.Dim() != 3 {
			return nil, nil, fmt.Errorf("robot rigid needs a 3D environment, %s is %dD", e.Name, e.Dim())
		}
		space = parmp.NewRigidBodySpace(e, halves[0], halves[1], halves[2])
	}

	strategy, policy, err := strategyOptions(sp.Strategy)
	if err != nil {
		return nil, nil, err
	}
	opts := parmp.Options{
		Procs:            sp.Procs,
		Regions:          sp.Regions,
		SamplesPerRegion: sp.Samples,
		NodesPerRegion:   sp.Samples,
		Seed:             sp.Seed,
		Strategy:         strategy,
		Policy:           policy,
	}
	if sp.Planner != "prm" {
		// Default the radial reach to the environment diagonal, like
		// mpsolve: corner-to-corner queries stay inside every cone.
		var d2 float64
		for d := 0; d < e.Dim(); d++ {
			span := e.Bounds.Hi[d] - e.Bounds.Lo[d]
			d2 += span * span
		}
		opts.Radius = math.Sqrt(d2)
	}

	dim := space.Dim()
	toConfig := func(v []float64, what string) (parmp.Config, error) {
		if len(v) != dim {
			return nil, fmt.Errorf("%s has %d coordinates, space is %dD", what, len(v), dim)
		}
		return parmp.Config(v), nil
	}
	if sp.Portfolio > 0 {
		root, err := toConfig(sp.Root, "root")
		if err != nil {
			return nil, nil, err
		}
		goal, err := toConfig(sp.Goal, "goal")
		if err != nil {
			return nil, nil, err
		}
		pf, err := parmp.NewPortfolio(space, root, goal, opts, parmp.PortfolioOptions{
			Racers:   sp.Portfolio,
			Planners: []string{sp.Planner},
			Restarts: sp.Restarts,
			MaxWaves: portfolioMaxWaves,
		})
		return pf, space, err
	}
	switch sp.Planner {
	case "prm":
		eng, err := parmp.NewEngine(space, opts)
		return eng, space, err
	case "rrt":
		root, err := toConfig(sp.Root, "root")
		if err != nil {
			return nil, nil, err
		}
		eng, err := parmp.NewRRTEngine(space, root, opts)
		return eng, space, err
	default: // rrtconnect
		root, err := toConfig(sp.Root, "root")
		if err != nil {
			return nil, nil, err
		}
		goal, err := toConfig(sp.Goal, "goal")
		if err != nil {
			return nil, nil, err
		}
		eng, err := parmp.NewRRTConnectEngine(space, root, goal, opts)
		return eng, space, err
	}
}
