package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// The mutate endpoint's core guarantee: once the mutate response has
// committed, no query — cached or planned — returns a path through the
// new obstacle. This is the serve-tier stale-path gate.
func TestServeMutateStaleQueryNeverServed(t *testing.T) {
	cfg := testConfig()
	cfg.GrowRounds = 2
	srv := New(cfg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := Spec{Env: "free", Procs: 4, Regions: 32, Samples: 10, Rounds: 2}
	q := QueryRequest{
		Spec:  spec,
		Start: []float64{0.05, 0.5, 0.5},
		Goal:  []float64{0.95, 0.5, 0.5},
	}
	postJSON(t, ts.Client(), ts.URL+"/v1/query", q, nil)
	waitGrown(t, ts.Client(), ts.URL, 10*time.Second)

	// Solve once, then again so the answer is warm in the path cache.
	var qr QueryResponse
	code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query", q, &qr)
	if code != http.StatusOK || !qr.OK {
		t.Fatalf("pre-mutation query: status %d ok=%v", code, qr.OK)
	}
	code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/query", q, &qr)
	if code != http.StatusOK || !qr.OK || !qr.CacheHit {
		t.Fatalf("pre-mutation repeat: status %d ok=%v cache_hit=%v", code, qr.OK, qr.CacheHit)
	}

	// Wall off the workspace: a full-height slab across x. Every
	// start-to-goal path crosses it, so the cached path is now a lie.
	mreq := MutateRequest{Spec: spec, Mutations: []MutationSpec{{
		Op:  "add",
		Box: &BoxSpec{Lo: []float64{0.45, 0, 0}, Hi: []float64{0.55, 1, 1}},
	}}}
	var mr MutateResponse
	code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/env/mutate", mreq, &mr)
	if code != http.StatusOK {
		t.Fatalf("mutate: status %d", code)
	}
	if mr.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", mr.Epoch)
	}
	if mr.Deltas != 1 {
		t.Fatalf("deltas = %d, want 1", mr.Deltas)
	}
	if mr.RemovedNodes+mr.RemovedEdges == 0 {
		t.Fatal("a full slab through a free-space roadmap removed nothing")
	}

	// The same query must now miss — and must not be a cache hit.
	code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/query", q, &qr)
	if code != http.StatusOK {
		t.Fatalf("post-mutation query: status %d", code)
	}
	if qr.OK || qr.CacheHit {
		t.Fatalf("stale path served after mutation: ok=%v cache_hit=%v", qr.OK, qr.CacheHit)
	}
	// Batch path too: same generation-keyed cache, same gate.
	var br BatchResponse
	code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/batch", BatchRequest{
		Spec:    spec,
		Queries: []BatchQuery{{Start: q.Start, Goal: q.Goal}},
	}, &br)
	if code != http.StatusOK || len(br.Results) != 1 {
		t.Fatalf("post-mutation batch: status %d results %d", code, len(br.Results))
	}
	if br.Results[0].OK {
		t.Fatal("batch served a stale path after mutation")
	}

	// Stats surface the dynamic-world accounting.
	stats := srv.Pool().Stats()
	if len(stats) != 1 {
		t.Fatalf("tenants = %d, want 1", len(stats))
	}
	st := stats[0]
	if st.Epoch != 1 || st.Repairs != 1 {
		t.Fatalf("stats epoch=%d repairs=%d, want 1 and 1", st.Epoch, st.Repairs)
	}
	if st.RepairUS <= 0 {
		t.Fatal("stats recorded no repair latency")
	}
	if st.Generation < 3 {
		t.Fatalf("generation = %d, want >= 3 (build + grow + mutate)", st.Generation)
	}
}

// Invalid mutation batches are client errors with the world untouched.
func TestServeMutateRejectsInvalid(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := Spec{Env: "free", Procs: 2, Regions: 16, Samples: 4}
	bad := []struct {
		name string
		muts []MutationSpec
	}{
		{"empty batch", nil},
		{"unknown op", []MutationSpec{{Op: "teleport"}}},
		{"add without shape", []MutationSpec{{Op: "add"}}},
		{"add with two shapes", []MutationSpec{{
			Op:     "add",
			Box:    &BoxSpec{Lo: []float64{0, 0, 0}, Hi: []float64{0.1, 0.1, 0.1}},
			Sphere: &SphereSpec{Center: []float64{0.5, 0.5, 0.5}, Radius: 0.1},
		}}},
		{"degenerate sphere", []MutationSpec{{Op: "add", Sphere: &SphereSpec{Center: []float64{0.5, 0.5, 0.5}}}}},
		{"remove missing index", []MutationSpec{{Op: "remove", Index: 7}}},
		{"move without by", []MutationSpec{{Op: "move", Index: 0}}},
		{"atomic batch with bad tail", []MutationSpec{
			{Op: "add", Sphere: &SphereSpec{Center: []float64{0.5, 0.5, 0.5}, Radius: 0.1}},
			{Op: "remove", Index: 9},
		}},
	}
	for _, tc := range bad {
		var er errorResponse
		code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/env/mutate", MutateRequest{Spec: spec, Mutations: tc.muts}, &er)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", tc.name, code, er.Error)
		}
	}
	// Every rejection left the world at epoch 0 — including the atomic
	// batch whose first mutation was valid.
	for _, st := range srv.Pool().Stats() {
		if st.Epoch != 0 || st.Repairs != 0 {
			t.Fatalf("rejected mutations moved the world: epoch=%d repairs=%d", st.Epoch, st.Repairs)
		}
	}
}

// A portfolio tenant takes mutations too: every racer repairs, the
// winner's snapshot reflects the new epoch, and stats agree.
func TestServeMutatePortfolioTenant(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	start, goal := []float64{0.05, 0.05, 0.05}, []float64{0.95, 0.95, 0.95}
	spec := Spec{Env: "free", Portfolio: 2, Root: start, Goal: goal, Procs: 2, Regions: 16, Samples: 8}
	postJSON(t, ts.Client(), ts.URL+"/v1/query", QueryRequest{Spec: spec, Start: start, Goal: goal}, nil)
	waitGrown(t, ts.Client(), ts.URL, 30*time.Second)

	var mr MutateResponse
	code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/env/mutate", MutateRequest{
		Spec: spec,
		Mutations: []MutationSpec{{
			Op:     "add",
			Sphere: &SphereSpec{Center: []float64{0.5, 0.9, 0.5}, Radius: 0.05},
		}},
	}, &mr)
	if code != http.StatusOK {
		t.Fatalf("portfolio mutate: status %d", code)
	}
	if mr.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", mr.Epoch)
	}
	st := srv.Pool().Stats()[0]
	if st.Epoch != 1 || st.Repairs != 1 {
		t.Fatalf("stats epoch=%d repairs=%d, want 1 and 1", st.Epoch, st.Repairs)
	}
}
