package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"parmp"
)

// QueryRequest is the body of POST /v1/query: the tenant spec plus one
// (start, goal) query.
type QueryRequest struct {
	Spec  Spec      `json:"spec"`
	Start []float64 `json:"start"`
	Goal  []float64 `json:"goal"`
	// K is the attachment count (PRM); 0 uses the server default.
	K int `json:"k,omitempty"`
}

// QueryResponse answers one query. A planning miss (no path yet) is a
// 200 with OK=false — only transport, validation and capacity problems
// are non-2xx.
type QueryResponse struct {
	OK   bool        `json:"ok"`
	Path [][]float64 `json:"path,omitempty"`
	// Rounds is the snapshot round that answered; GrowDone reports
	// whether background growth has reached its target.
	Rounds   int  `json:"rounds"`
	GrowDone bool `json:"grow_done"`
	// CacheHit marks answers served from the path cache; BatchSize is
	// the coalesced batch this query rode in (1 = alone, 0 = cache hit
	// answered before admission).
	CacheHit  bool `json:"cache_hit"`
	BatchSize int  `json:"batch_size,omitempty"`
	// ServeUS is the server-side processing time in microseconds,
	// admission queueing included.
	ServeUS float64 `json:"serve_us"`
}

// BatchRequest is the body of POST /v1/batch: one tenant spec and many
// queries, answered together against one snapshot.
type BatchRequest struct {
	Spec    Spec         `json:"spec"`
	Queries []BatchQuery `json:"queries"`
}

// BatchQuery is one (start, goal, k) in a client-side batch.
type BatchQuery struct {
	Start []float64 `json:"start"`
	Goal  []float64 `json:"goal"`
	K     int       `json:"k,omitempty"`
}

// BatchResponse answers a client-side batch, aligned with the request's
// queries.
type BatchResponse struct {
	Results []QueryResponse `json:"results"`
	ServeUS float64         `json:"serve_us"`
}

// MutateRequest is the body of POST /v1/env/mutate: the tenant spec
// plus an ordered mutation batch, applied atomically (all commit or the
// tenant's world is untouched).
type MutateRequest struct {
	Spec      Spec           `json:"spec"`
	Mutations []MutationSpec `json:"mutations"`
}

// MutationSpec is one environment edit in a mutate request. Op selects
// the kind and which fields are read:
//
//	"add"     Box or Sphere (exactly one)
//	"remove"  Index
//	"move"    Index, By
type MutationSpec struct {
	Op     string      `json:"op"`
	Box    *BoxSpec    `json:"box,omitempty"`
	Sphere *SphereSpec `json:"sphere,omitempty"`
	Index  int         `json:"index,omitempty"`
	By     []float64   `json:"by,omitempty"`
}

// BoxSpec is an axis-aligned box obstacle spanning [lo, hi].
type BoxSpec struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

// SphereSpec is a sphere obstacle.
type SphereSpec struct {
	Center []float64 `json:"center"`
	Radius float64   `json:"radius"`
}

// mutation converts the wire spec to a parmp.Mutation, or rejects it.
func (m MutationSpec) mutation() (parmp.Mutation, error) {
	switch m.Op {
	case "add":
		switch {
		case m.Box != nil && m.Sphere == nil:
			return parmp.AddObstacle{Obstacle: parmp.NewBoxObstacle(m.Box.Lo, m.Box.Hi)}, nil
		case m.Sphere != nil && m.Box == nil:
			return parmp.AddObstacle{Obstacle: parmp.NewSphereObstacle(m.Sphere.Center, m.Sphere.Radius)}, nil
		default:
			return nil, fmt.Errorf(`op "add" needs exactly one of "box" or "sphere"`)
		}
	case "remove":
		return parmp.RemoveObstacle{Index: m.Index}, nil
	case "move":
		if len(m.By) == 0 {
			return nil, fmt.Errorf(`op "move" needs a non-empty "by" vector`)
		}
		return parmp.MoveObstacle{Index: m.Index, By: m.By}, nil
	default:
		return nil, fmt.Errorf("unknown mutation op %q (want add, remove or move)", m.Op)
	}
}

// MutateResponse reports a committed mutation batch: the new
// environment epoch and snapshot generation, the incremental-repair
// work this batch cost, and the server-side latency.
type MutateResponse struct {
	Epoch      uint64 `json:"epoch"`
	Generation uint64 `json:"generation"`
	// Repair work for this batch: deltas applied, state re-validated,
	// state removed, frontier branches regrafted.
	Deltas       int     `json:"deltas"`
	CheckedNodes int     `json:"checked_nodes"`
	CheckedEdges int     `json:"checked_edges"`
	RemovedNodes int     `json:"removed_nodes"`
	RemovedEdges int     `json:"removed_edges"`
	Grafted      int     `json:"grafted"`
	ServeUS      float64 `json:"serve_us"`
}

// StatsResponse is GET /v1/stats.
type StatsResponse struct {
	UptimeSec float64       `json:"uptime_sec"`
	Tenants   []TenantStats `json:"tenants"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies (env_text is the only large field).
const maxBodyBytes = 1 << 20

// maxBatchQueries bounds one client-side batch.
const maxBatchQueries = 1024

// Server is the HTTP planning service: a Pool behind these endpoints.
//
//	POST /v1/query       one query; coalesced server-side
//	POST /v1/batch       many queries answered against one snapshot
//	POST /v1/env/mutate  edit a tenant's world; incremental repair
//	GET  /v1/stats       pool and per-tenant counters
//	GET  /healthz        liveness
type Server struct {
	cfg   Config
	pool  *Pool
	mux   *http.ServeMux
	start time.Time
}

// New creates a Server with cfg's defaults applied.
func New(cfg Config) *Server {
	s := &Server{
		cfg:   cfg.withDefaults(),
		pool:  NewPool(cfg),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/env/mutate", s.handleMutate)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool returns the server's engine pool (mainly for tests and stats).
func (s *Server) Pool() *Pool { return s.pool }

// Close shuts the pool down.
func (s *Server) Close() { s.pool.Close() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decode reads a bounded JSON body.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// tenantFor canonicalizes and resolves the request's tenant, writing
// the error response on failure.
func (s *Server) tenantFor(w http.ResponseWriter, spec Spec) *tenant {
	canon, err := spec.Canonical(s.cfg.GrowRounds)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil
	}
	t, err := s.pool.Tenant(canon)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return nil
	}
	if t.buildErr != nil {
		writeError(w, http.StatusBadRequest, "tenant build failed: %v", t.buildErr)
		return nil
	}
	return t
}

// pathFloats converts a path for JSON encoding.
func pathFloats(path []parmp.Config) [][]float64 {
	out := make([][]float64, len(path))
	for i, q := range path {
		out[i] = q
	}
	return out
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var qr QueryRequest
	if !decode(w, r, &qr) {
		return
	}
	t := s.tenantFor(w, qr.Spec)
	if t == nil {
		return
	}
	k := qr.K
	if k == 0 {
		k = s.cfg.DefaultK
	}
	start, goal := parmp.Config(qr.Start), parmp.Config(qr.Goal)
	key := cacheKey(start, goal, k)

	// Fast path: answer straight from the cache, before admission. The
	// cache is keyed on the snapshot generation, not rounds: an
	// environment mutation publishes a repaired snapshot without growing,
	// and its paths must not be served from the pre-mutation cache.
	snap := t.eng.Snapshot()
	if path, ok := t.cache.get(key, int64(snap.Generation())); ok {
		t.queries.Add(1)
		t.cacheHits.Add(1)
		writeJSON(w, http.StatusOK, QueryResponse{
			OK: true, Path: pathFloats(path),
			Rounds: snap.Rounds(), GrowDone: t.growDone.Load(),
			CacheHit: true, ServeUS: us(time.Since(t0)),
		})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	req := &request{
		ctx:   ctx,
		key:   key,
		start: start,
		goal:  goal,
		k:     k,
		resp:  make(chan response, 1),
	}
	// Admission: a full queue rejects now — with a hint — rather than
	// queueing without bound.
	select {
	case t.pending <- req:
		t.queries.Add(1)
	default:
		t.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "tenant queue full (%d deep); retry", s.cfg.QueueDepth)
		return
	}
	select {
	case resp := <-req.resp:
		if resp.err != nil {
			if errors.Is(resp.err, errTenantClosed) {
				writeError(w, http.StatusServiceUnavailable, "%v", resp.err)
			} else {
				writeError(w, http.StatusRequestTimeout, "request expired in queue: %v", resp.err)
			}
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{
			OK: resp.ok, Path: pathFloats(resp.path),
			Rounds: resp.rounds, GrowDone: t.growDone.Load(),
			CacheHit: resp.cacheHit, BatchSize: resp.batchSize,
			ServeUS: us(time.Since(t0)),
		})
	case <-ctx.Done():
		writeError(w, http.StatusRequestTimeout, "request timed out after %v", s.cfg.RequestTimeout)
	case <-t.ctx.Done():
		writeError(w, http.StatusServiceUnavailable, "tenant shutting down")
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var br BatchRequest
	if !decode(w, r, &br) {
		return
	}
	if len(br.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(br.Queries) > maxBatchQueries {
		writeError(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds %d", len(br.Queries), maxBatchQueries)
		return
	}
	t := s.tenantFor(w, br.Spec)
	if t == nil {
		return
	}
	snap := t.eng.Snapshot()
	gen := int64(snap.Generation())
	rounds := snap.Rounds()
	grown := t.growDone.Load()
	results := make([]QueryResponse, len(br.Queries))
	t.queries.Add(int64(len(br.Queries)))

	// Cache pass, then one QueryBatch per distinct k over the misses.
	byK := make(map[int][]int, 1)
	keys := make([]string, len(br.Queries))
	for i, q := range br.Queries {
		k := q.K
		if k == 0 {
			k = s.cfg.DefaultK
		}
		keys[i] = cacheKey(parmp.Config(q.Start), parmp.Config(q.Goal), k)
		if path, ok := t.cache.get(keys[i], gen); ok {
			t.cacheHits.Add(1)
			results[i] = QueryResponse{OK: true, Path: pathFloats(path), Rounds: rounds, GrowDone: grown, CacheHit: true}
			continue
		}
		byK[k] = append(byK[k], i)
	}
	for k, idxs := range byK {
		starts := make([]parmp.Config, len(idxs))
		goals := make([]parmp.Config, len(idxs))
		for j, i := range idxs {
			starts[j] = parmp.Config(br.Queries[i].Start)
			goals[j] = parmp.Config(br.Queries[i].Goal)
		}
		paths, oks := snap.QueryBatch(starts, goals, k)
		t.batches.Add(1)
		t.batched.Add(int64(len(idxs)))
		for j, i := range idxs {
			if oks[j] {
				t.cache.put(keys[i], gen, paths[j])
			}
			results[i] = QueryResponse{
				OK: oks[j], Path: pathFloats(paths[j]),
				Rounds: rounds, GrowDone: grown, BatchSize: len(idxs),
			}
		}
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results, ServeUS: us(time.Since(t0))})
}

// handleMutate edits a tenant's environment through the engine's
// incremental repair path. Mutations in one request commit atomically;
// a rejected mutation (unknown op, degenerate obstacle, bad index,
// out-of-bounds move) is a 400 with the world untouched. On commit the
// path cache is retagged to the repaired snapshot's generation, so no
// query answered after this response can carry a pre-mutation path.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var mr MutateRequest
	if !decode(w, r, &mr) {
		return
	}
	if len(mr.Mutations) == 0 {
		writeError(w, http.StatusBadRequest, "empty mutation batch")
		return
	}
	muts := make([]parmp.Mutation, len(mr.Mutations))
	for i, ms := range mr.Mutations {
		m, err := ms.mutation()
		if err != nil {
			writeError(w, http.StatusBadRequest, "mutation %d: %v", i, err)
			return
		}
		muts[i] = m
	}
	t := s.tenantFor(w, mr.Spec)
	if t == nil {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Serialize mutations per tenant: concurrent mutate requests apply
	// in some order, each seeing the world the previous one left.
	t.mu.Lock()
	rep, err := t.eng.ApplyDelta(ctx, muts...)
	if err != nil {
		t.mu.Unlock()
		switch {
		case errors.Is(err, parmp.ErrStopped):
			writeError(w, http.StatusRequestTimeout, "mutation timed out; world unchanged: %v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	snap := t.eng.Snapshot()
	t.cache.invalidate(int64(snap.Generation()))
	t.mu.Unlock()
	t.repairs.Add(1)
	t.repairUS.Add(time.Since(t0).Microseconds())
	writeJSON(w, http.StatusOK, MutateResponse{
		Epoch:        snap.Epoch(),
		Generation:   snap.Generation(),
		Deltas:       rep.Deltas,
		CheckedNodes: rep.CheckedNodes,
		CheckedEdges: rep.CheckedEdges,
		RemovedNodes: rep.RemovedNodes,
		RemovedEdges: rep.RemovedEdges,
		Grafted:      rep.Grafted,
		ServeUS:      us(time.Since(t0)),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSec: time.Since(s.start).Seconds(),
		Tenants:   s.pool.Stats(),
	})
}

// us converts a duration to microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
