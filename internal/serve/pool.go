package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"parmp"
)

// engine is what a tenant serves: a plain parmp.Engine or a
// parmp.Portfolio, both of which grow round-by-round under cooperative
// cancellation, accept environment mutations with incremental repair,
// and publish immutable snapshots.
type engine interface {
	Grow(ctx context.Context) error
	Rounds() int
	Snapshot() *parmp.Snapshot
	ApplyDelta(ctx context.Context, muts ...parmp.Mutation) (parmp.RepairStats, error)
}

// Pool owns the server's engines: one tenant per canonical spec,
// constructed lazily on first request, grown in the background, evicted
// least-recently-used beyond the cap.
//
// WaitGroup discipline: every p.wg.Add happens under p.mu while closed
// is provably false, so Close's Wait never races an Add — the Go
// WaitGroup contract forbids Add concurrent with Wait.
type Pool struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	tenants map[string]*tenant
	order   *list.List // *tenant, front = most recently used
}

// tenant is one engine plus its serving machinery. The engine is built
// by the first request (buildOnce), so pool bookkeeping never blocks on
// C-space subdivision; until then eng/space are nil and buildErr is
// unset.
type tenant struct {
	key  string
	spec Spec
	pool *Pool
	elem *list.Element

	buildOnce sync.Once
	built     atomic.Bool // set after buildOnce completes; gates buildErr/eng/space reads
	buildErr  error
	eng       engine
	space     *parmp.Space

	cache   *pathCache
	pending chan *request
	ctx     context.Context
	cancel  context.CancelFunc
	workers sync.WaitGroup // live batch workers (tests wait on it)

	queries   atomic.Int64 // admitted requests
	cacheHits atomic.Int64
	rejected  atomic.Int64 // 429s and requests expired in queue
	batches   atomic.Int64 // coalesced batches served
	batched   atomic.Int64 // requests served through batches
	growDone  atomic.Bool
	growErr   atomic.Pointer[error] // terminal (non-cancellation) Grow failure

	// Environment-mutation accounting (POST /v1/env/mutate).
	mu       sync.Mutex   // serializes ApplyDelta per tenant
	repairs  atomic.Int64 // committed mutate requests
	repairUS atomic.Int64 // cumulative wall-clock repair latency, microseconds
}

// errTenantClosed is returned to requests stranded in the queue of a
// tenant that was evicted or whose pool is shutting down.
var errTenantClosed = errTenant("tenant closed (evicted or pool shutting down); retry")

// ErrPoolClosed is returned by Tenant after Close: a closed pool
// refuses new tenants instead of leaking goroutines on a dead context.
var ErrPoolClosed = errors.New("serve: pool closed")

type errTenant string

func (e errTenant) Error() string { return string(e) }

// NewPool creates an empty pool with cfg's defaults applied.
func NewPool(cfg Config) *Pool {
	ctx, cancel := context.WithCancel(context.Background())
	return &Pool{
		cfg:     cfg.withDefaults(),
		ctx:     ctx,
		cancel:  cancel,
		tenants: make(map[string]*tenant),
		order:   list.New(),
	}
}

// Close cancels every tenant's growth and serving and waits for their
// goroutines — grow loops, batch workers, eviction drains — to exit.
// After Close, Tenant returns ErrPoolClosed and requests already queued
// are answered with errTenantClosed by the exiting workers; engines are
// left to the garbage collector. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cancel()
	for _, t := range p.tenants {
		t.cancel()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Tenant returns the live tenant for a canonical spec, creating (and
// lazily building) it on first use and touching it in the LRU order.
// After Close it returns ErrPoolClosed. The returned tenant's init must
// be checked: a build error makes it unservable.
func (p *Pool) Tenant(spec Spec) (*tenant, error) {
	key := spec.Key()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if t, ok := p.tenants[key]; ok {
		p.order.MoveToFront(t.elem)
		p.mu.Unlock()
		t.init()
		return t, nil
	}
	ctx, cancel := context.WithCancel(p.ctx)
	t := &tenant{
		key:     key,
		spec:    spec,
		pool:    p,
		cache:   newPathCache(p.cfg.CacheSize),
		pending: make(chan *request, p.cfg.QueueDepth),
		ctx:     ctx,
		cancel:  cancel,
	}
	t.elem = p.order.PushFront(t)
	p.tenants[key] = t
	var evicted *tenant
	if len(p.tenants) > p.cfg.MaxTenants {
		back := p.order.Back()
		evicted = back.Value.(*tenant)
		p.order.Remove(back)
		delete(p.tenants, evicted.key)
		// Reserve the eviction drain's WaitGroup slot here, while the
		// pool is provably open, so Close waits for the drain too.
		p.wg.Add(1)
	}
	p.mu.Unlock()
	if evicted != nil {
		evicted.close()
	}
	t.init()
	return t, nil
}

// init builds the engine and starts the tenant's background goroutines,
// exactly once. Safe to call from every request. If the pool closed
// while the engine was building, no goroutines start — the tenant's
// context is already dead and queued requests are handled by the
// closing pool.
func (t *tenant) init() {
	t.buildOnce.Do(func() {
		eng, space, err := t.spec.build()
		if err != nil {
			t.buildErr = err
			t.built.Store(true)
			return
		}
		t.eng, t.space = eng, space
		t.built.Store(true)
		p := t.pool
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.wg.Add(1 + p.cfg.BatchWorkers)
		t.workers.Add(p.cfg.BatchWorkers)
		p.mu.Unlock()
		go t.growLoop()
		for i := 0; i < p.cfg.BatchWorkers; i++ {
			go t.batchWorker()
		}
	})
}

// close cancels the tenant and drains queued requests with
// errTenantClosed until the queue has been quiet for a grace period, so
// no admitted request is silently dropped. The caller (eviction in
// Pool.Tenant) has already reserved this goroutine's WaitGroup slot
// under p.mu.
func (t *tenant) close() {
	t.cancel()
	go func() {
		defer t.pool.wg.Done()
		grace := time.NewTimer(t.pool.cfg.RequestTimeout)
		defer grace.Stop()
		for {
			select {
			case r := <-t.pending:
				r.respond(response{err: errTenantClosed})
			case <-grace.C:
				return
			case <-t.pool.ctx.Done():
				// Pool closing: answer what is already queued and exit
				// now — Close is waiting on this goroutine.
				for {
					select {
					case r := <-t.pending:
						r.respond(response{err: errTenantClosed})
					default:
						return
					}
				}
			}
		}
	}()
}

// growLoop grows the tenant's engine toward its spec's round target,
// invalidating the path cache after every committed round (snapshot
// rollover). Serving never blocks on growth: queries read whichever
// snapshot is currently published. A non-cancellation Grow error is
// terminal for growth but not for serving: it is recorded on the tenant
// (surfaced as grow_error in stats) and the already-committed snapshots
// keep answering queries.
func (t *tenant) growLoop() {
	defer t.pool.wg.Done()
	for t.eng.Rounds() < t.spec.Rounds {
		if err := t.eng.Grow(t.ctx); err != nil {
			if errors.Is(err, parmp.ErrStopped) || t.ctx.Err() != nil {
				return // canceled: pool closing or tenant evicted
			}
			t.growErr.Store(&err)
			return
		}
		t.cache.invalidate(int64(t.eng.Snapshot().Generation()))
		if iv := t.pool.cfg.GrowInterval; iv > 0 {
			select {
			case <-time.After(iv):
			case <-t.ctx.Done():
				return
			}
		}
	}
	t.growDone.Store(true)
}

// TenantStats is one tenant's row in the stats endpoint.
type TenantStats struct {
	Env      string `json:"env"`
	Planner  string `json:"planner"`
	Seed     uint64 `json:"seed"`
	BuildErr string `json:"build_error,omitempty"`
	// GrowError is a terminal background-growth failure; the tenant
	// still serves its last committed snapshot.
	GrowError string `json:"grow_error,omitempty"`
	Rounds    int    `json:"rounds"`
	Nodes     int    `json:"nodes"`
	GrowDone  bool   `json:"grow_done"`
	Queries   int64  `json:"queries"`
	CacheHits int64  `json:"cache_hits"`
	CacheLen  int    `json:"cache_len"`
	Rejected  int64  `json:"rejected"`
	Batches   int64  `json:"batches"`
	Batched   int64  `json:"batched"`
	QueueLen  int    `json:"queue_len"`
	// Dynamic-world accounting: the snapshot's environment epoch and
	// publish generation, mutate-request count, cumulative wall-clock
	// repair latency and the repair work committed so far (virtual
	// makespan plus node/edge casualties).
	Epoch          uint64  `json:"epoch"`
	Generation     uint64  `json:"generation"`
	Repairs        int64   `json:"repairs,omitempty"`
	RepairUS       float64 `json:"repair_us,omitempty"`
	RepairMakespan float64 `json:"repair_makespan,omitempty"`
	RepairRemoved  int     `json:"repair_removed,omitempty"`
	// Portfolio tenants additionally report the race's progress.
	Racers   int `json:"racers,omitempty"`
	Waves    int `json:"waves,omitempty"`
	Restarts int `json:"restarts,omitempty"`
	// Winner is the winning racer index; absent while the race is
	// undecided (only set when Racers > 0).
	Winner *int `json:"winner,omitempty"`
}

// Stats snapshots every live tenant, most recently used first.
func (p *Pool) Stats() []TenantStats {
	p.mu.Lock()
	ts := make([]*tenant, 0, p.order.Len())
	for el := p.order.Front(); el != nil; el = el.Next() {
		ts = append(ts, el.Value.(*tenant))
	}
	p.mu.Unlock()
	out := make([]TenantStats, 0, len(ts))
	for _, t := range ts {
		env := t.spec.Env
		if env == "" {
			env = "inline"
		}
		st := TenantStats{
			Env:       env,
			Planner:   t.spec.Planner,
			Seed:      t.spec.Seed,
			Queries:   t.queries.Load(),
			CacheHits: t.cacheHits.Load(),
			CacheLen:  t.cache.len(),
			Rejected:  t.rejected.Load(),
			Batches:   t.batches.Load(),
			Batched:   t.batched.Load(),
			QueueLen:  len(t.pending),
			GrowDone:  t.growDone.Load(),
		}
		if errp := t.growErr.Load(); errp != nil {
			st.GrowError = (*errp).Error()
		}
		if t.built.Load() {
			if t.buildErr != nil {
				st.BuildErr = t.buildErr.Error()
			} else {
				snap := t.eng.Snapshot()
				st.Rounds = snap.Rounds()
				st.Nodes = snap.NumNodes()
				st.Epoch = snap.Epoch()
				st.Generation = snap.Generation()
				st.Repairs = t.repairs.Load()
				st.RepairUS = float64(t.repairUS.Load())
				var rep parmp.RepairStats
				if r := snap.PRM(); r != nil {
					rep = r.Repairs
				} else if r := snap.RRT(); r != nil {
					rep = r.Repairs
				}
				st.RepairMakespan = rep.Makespan
				st.RepairRemoved = rep.RemovedNodes + rep.RemovedEdges
				if pf, ok := t.eng.(*parmp.Portfolio); ok {
					ps := pf.Stats()
					st.Racers = ps.Racers
					st.Waves = ps.Waves
					st.Restarts = ps.Restarts
					if w := ps.Winner; w >= 0 {
						st.Winner = &w
					}
				}
			}
		}
		out = append(out, st)
	}
	return out
}
