package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"parmp"
)

// Pool owns the server's engines: one tenant per canonical spec,
// constructed lazily on first request, grown in the background, evicted
// least-recently-used beyond the cap.
type Pool struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	tenants map[string]*tenant
	order   *list.List // *tenant, front = most recently used
}

// tenant is one engine plus its serving machinery. The engine is built
// by the first request (buildOnce), so pool bookkeeping never blocks on
// C-space subdivision; until then eng/space are nil and buildErr is
// unset.
type tenant struct {
	key  string
	spec Spec
	pool *Pool
	elem *list.Element

	buildOnce sync.Once
	built     atomic.Bool // set after buildOnce completes; gates buildErr/eng/space reads
	buildErr  error
	eng       *parmp.Engine
	space     *parmp.Space

	cache   *pathCache
	pending chan *request
	ctx     context.Context
	cancel  context.CancelFunc
	workers sync.WaitGroup // live batch workers (tests wait on it)

	queries   atomic.Int64 // admitted requests
	cacheHits atomic.Int64
	rejected  atomic.Int64 // 429s
	batches   atomic.Int64 // coalesced batches served
	batched   atomic.Int64 // requests served through batches
	growDone  atomic.Bool
}

// errTenantClosed is returned to requests stranded in an evicted
// tenant's queue.
var errTenantClosed = errTenant("tenant evicted; retry to rebuild")

type errTenant string

func (e errTenant) Error() string { return string(e) }

// NewPool creates an empty pool with cfg's defaults applied.
func NewPool(cfg Config) *Pool {
	ctx, cancel := context.WithCancel(context.Background())
	return &Pool{
		cfg:     cfg.withDefaults(),
		ctx:     ctx,
		cancel:  cancel,
		tenants: make(map[string]*tenant),
		order:   list.New(),
	}
}

// Close cancels every tenant's growth and serving and waits for their
// goroutines to exit. Engines are left to the garbage collector.
func (p *Pool) Close() {
	p.cancel()
	p.mu.Lock()
	for _, t := range p.tenants {
		t.cancel()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Tenant returns the live tenant for a canonical spec, creating (and
// lazily building) it on first use and touching it in the LRU order.
// The returned tenant's init must be checked: a build error makes it
// unservable.
func (p *Pool) Tenant(spec Spec) *tenant {
	key := spec.Key()
	p.mu.Lock()
	if t, ok := p.tenants[key]; ok {
		p.order.MoveToFront(t.elem)
		p.mu.Unlock()
		t.init()
		return t
	}
	ctx, cancel := context.WithCancel(p.ctx)
	t := &tenant{
		key:     key,
		spec:    spec,
		pool:    p,
		cache:   newPathCache(p.cfg.CacheSize),
		pending: make(chan *request, p.cfg.QueueDepth),
		ctx:     ctx,
		cancel:  cancel,
	}
	t.elem = p.order.PushFront(t)
	p.tenants[key] = t
	var evicted *tenant
	if len(p.tenants) > p.cfg.MaxTenants {
		back := p.order.Back()
		evicted = back.Value.(*tenant)
		p.order.Remove(back)
		delete(p.tenants, evicted.key)
	}
	p.mu.Unlock()
	if evicted != nil {
		evicted.close()
	}
	t.init()
	return t
}

// init builds the engine and starts the tenant's background goroutines,
// exactly once. Safe to call from every request.
func (t *tenant) init() {
	t.buildOnce.Do(func() {
		eng, space, err := t.spec.build()
		if err != nil {
			t.buildErr = err
			t.built.Store(true)
			return
		}
		t.eng, t.space = eng, space
		t.built.Store(true)
		t.pool.wg.Add(1 + t.pool.cfg.BatchWorkers)
		t.workers.Add(t.pool.cfg.BatchWorkers)
		go t.growLoop()
		for i := 0; i < t.pool.cfg.BatchWorkers; i++ {
			go t.batchWorker()
		}
	})
}

// close cancels the tenant and drains queued requests with
// errTenantClosed until the queue has been quiet for a grace period, so
// no admitted request is silently dropped.
func (t *tenant) close() {
	t.cancel()
	t.pool.wg.Add(1)
	go func() {
		defer t.pool.wg.Done()
		grace := time.NewTimer(t.pool.cfg.RequestTimeout)
		defer grace.Stop()
		for {
			select {
			case r := <-t.pending:
				r.respond(response{err: errTenantClosed})
			case <-grace.C:
				return
			}
		}
	}()
}

// growLoop grows the tenant's engine toward its spec's round target,
// invalidating the path cache after every committed round (snapshot
// rollover). Serving never blocks on growth: queries read whichever
// snapshot is currently published.
func (t *tenant) growLoop() {
	defer t.pool.wg.Done()
	for t.eng.Rounds() < t.spec.Rounds {
		if err := t.eng.Grow(t.ctx); err != nil {
			return // canceled: pool closing or tenant evicted
		}
		t.cache.invalidate(int64(t.eng.Snapshot().Rounds()))
		if iv := t.pool.cfg.GrowInterval; iv > 0 {
			select {
			case <-time.After(iv):
			case <-t.ctx.Done():
				return
			}
		}
	}
	t.growDone.Store(true)
}

// TenantStats is one tenant's row in the stats endpoint.
type TenantStats struct {
	Env       string `json:"env"`
	Planner   string `json:"planner"`
	Seed      uint64 `json:"seed"`
	BuildErr  string `json:"build_error,omitempty"`
	Rounds    int    `json:"rounds"`
	Nodes     int    `json:"nodes"`
	GrowDone  bool   `json:"grow_done"`
	Queries   int64  `json:"queries"`
	CacheHits int64  `json:"cache_hits"`
	CacheLen  int    `json:"cache_len"`
	Rejected  int64  `json:"rejected"`
	Batches   int64  `json:"batches"`
	Batched   int64  `json:"batched"`
	QueueLen  int    `json:"queue_len"`
}

// Stats snapshots every live tenant, most recently used first.
func (p *Pool) Stats() []TenantStats {
	p.mu.Lock()
	ts := make([]*tenant, 0, p.order.Len())
	for el := p.order.Front(); el != nil; el = el.Next() {
		ts = append(ts, el.Value.(*tenant))
	}
	p.mu.Unlock()
	out := make([]TenantStats, 0, len(ts))
	for _, t := range ts {
		env := t.spec.Env
		if env == "" {
			env = "inline"
		}
		st := TenantStats{
			Env:       env,
			Planner:   t.spec.Planner,
			Seed:      t.spec.Seed,
			Queries:   t.queries.Load(),
			CacheHits: t.cacheHits.Load(),
			CacheLen:  t.cache.len(),
			Rejected:  t.rejected.Load(),
			Batches:   t.batches.Load(),
			Batched:   t.batched.Load(),
			QueueLen:  len(t.pending),
			GrowDone:  t.growDone.Load(),
		}
		if t.built.Load() {
			if t.buildErr != nil {
				st.BuildErr = t.buildErr.Error()
			} else {
				snap := t.eng.Snapshot()
				st.Rounds = snap.Rounds()
				st.Nodes = snap.NumNodes()
			}
		}
		out = append(out, st)
	}
	return out
}
