package serve

import (
	"context"
	"time"

	"parmp"
)

// request is one admitted query waiting in a tenant's queue.
type request struct {
	ctx         context.Context
	key         string // cache key
	start, goal parmp.Config
	k           int
	resp        chan response // buffered 1: respond never blocks
}

// response is a batch worker's answer to one request.
type response struct {
	path      []parmp.Config // shared with the cache: read-only
	ok        bool
	cacheHit  bool
	batchSize int
	rounds    int
	err       error // admission-level failure (timeout, tenant closed)
}

// respond delivers r's answer without blocking; a request whose handler
// already gave up (deadline passed) just drops it.
func (r *request) respond(resp response) {
	select {
	case r.resp <- resp:
	default:
	}
}

// batchWorker drains the tenant's admission queue: it blocks for one
// request, coalesces whatever else arrives within the batch window (up
// to BatchMax), and answers the whole batch against one snapshot.
// Several workers run per tenant, so coalescing never serializes the
// tenant — under light load every batch has size 1 and latency is the
// plain query latency; under heavy load batches fill up and the
// amortized kd/Dijkstra sharing kicks in exactly when it is needed.
func (t *tenant) batchWorker() {
	defer t.pool.wg.Done()
	defer t.workers.Done()
	batch := make([]*request, 0, t.pool.cfg.BatchMax)
	for {
		select {
		case <-t.ctx.Done():
			t.drainPending()
			return
		case first := <-t.pending:
			batch = append(batch[:0], first)
			batch = t.coalesce(batch)
			t.serveBatch(batch)
		}
	}
}

// drainPending answers everything already admitted to the queue with a
// clean shutdown error, so a cancelled tenant (pool close) never leaves
// a request waiting out its own deadline. Requests admitted after the
// drain are covered by the handler's own tenant-context select.
func (t *tenant) drainPending() {
	for {
		select {
		case r := <-t.pending:
			r.respond(response{err: errTenantClosed})
		default:
			return
		}
	}
}

// coalesce tops batch up from the queue until BatchMax or the batch
// window closes. With a non-positive window only already-queued
// requests join.
func (t *tenant) coalesce(batch []*request) []*request {
	max := t.pool.cfg.BatchMax
	window := t.pool.cfg.BatchWindow
	var deadline <-chan time.Time
	if window > 0 && max > 1 {
		timer := time.NewTimer(window)
		defer timer.Stop()
		deadline = timer.C
	}
	for len(batch) < max {
		if deadline == nil {
			select {
			case r := <-t.pending:
				batch = append(batch, r)
			default:
				return batch
			}
		} else {
			select {
			case r := <-t.pending:
				batch = append(batch, r)
			case <-deadline:
				return batch
			}
		}
	}
	return batch
}

// serveBatch answers every request in batch against one snapshot:
// expired requests are failed, cache hits answered immediately (the
// entry may have appeared since admission), and the remaining misses go
// through Snapshot.QueryBatch grouped by k. Positive answers are
// inserted into the path cache tagged with the snapshot's round, so a
// concurrent rollover drops rather than poisons them.
func (t *tenant) serveBatch(batch []*request) {
	snap := t.eng.Snapshot()
	// Generation, not rounds: a mutate publishes a repaired snapshot
	// without growing, and pre-mutation paths must not survive it.
	gen := int64(snap.Generation())
	rounds := snap.Rounds()
	size := len(batch)
	var misses []*request
	for _, r := range batch {
		if r.ctx.Err() != nil {
			t.rejected.Add(1)
			r.respond(response{err: r.ctx.Err()})
			continue
		}
		if path, ok := t.cache.get(r.key, gen); ok {
			t.cacheHits.Add(1)
			r.respond(response{path: path, ok: true, cacheHit: true, batchSize: size, rounds: rounds})
			continue
		}
		misses = append(misses, r)
	}
	if len(misses) == 0 {
		return
	}
	// k is almost always the default, but a mixed batch still answers
	// correctly: one sub-batch per distinct k.
	byK := make(map[int][]*request, 1)
	for _, r := range misses {
		byK[r.k] = append(byK[r.k], r)
	}
	for k, group := range byK {
		starts := make([]parmp.Config, len(group))
		goals := make([]parmp.Config, len(group))
		for i, r := range group {
			starts[i], goals[i] = r.start, r.goal
		}
		paths, oks := snap.QueryBatch(starts, goals, k)
		t.batches.Add(1)
		t.batched.Add(int64(len(group)))
		for i, r := range group {
			if oks[i] {
				t.cache.put(r.key, gen, paths[i])
			}
			r.respond(response{path: paths[i], ok: oks[i], batchSize: size, rounds: rounds})
		}
	}
}
