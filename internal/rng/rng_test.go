package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at step %d", i)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(7, 1)
	b := Derive(7, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams with distinct ids collided %d times", same)
	}
}

func TestDeriveDeterminism(t *testing.T) {
	f := func(seed, id uint64) bool {
		return Derive(seed, id).Uint64() == Derive(seed, id).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRangeBounds(t *testing.T) {
	s := New(2)
	for i := 0; i < 10000; i++ {
		v := s.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range out of [-3,5): %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[s.Intn(7)]++
	}
	for d, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) digit %d count %d far from uniform 10000", d, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(0).Intn(0)
}

func TestFloat64Mean(t *testing.T) {
	s := New(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	for n := 0; n < 50; n++ {
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(6)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestMul128(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}
