// Package rng provides small, fast, deterministic random number streams.
//
// Every region in a subdivision-based parallel planner owns an independent
// stream seeded from a global seed and the region's identifier. This makes
// planner output a pure function of (seed, parameters): results do not
// depend on which processor executed which region, nor on the order in
// which regions ran. That property is what allows the discrete-event
// machine simulator to replay identical workloads under different load
// balancing policies.
package rng

import "math"

// splitmix64 is the SplitMix64 generator (Steele, Lea, Flood; JAVA 8's
// SplittableRandom finalizer). It is used both as a stream on its own and
// as the seeding function that decorrelates per-region streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a deterministic pseudo-random stream. The zero value is a valid
// stream seeded with 0; prefer New or Derive for decorrelated streams.
type Stream struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Stream {
	// Mix once so nearby seeds do not yield nearby first outputs.
	return &Stream{state: splitmix64(seed)}
}

// Derive returns an independent stream identified by (seed, id). Streams
// with distinct ids are decorrelated even for adjacent ids.
func Derive(seed, id uint64) *Stream {
	return &Stream{state: splitmix64(seed ^ splitmix64(id+0x632be59bd9b4e019))}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (s *Stream) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	alo, ahi := a&mask, a>>32
	blo, bhi := b&mask, b>>32
	t := alo * blo
	w0 := t & mask
	k := t >> 32
	t = ahi*blo + k
	w1 := t & mask
	w2 := t >> 32
	t = alo*bhi + w1
	hi = ahi*bhi + w2 + (t >> 32)
	lo = (t << 32) + w0
	return hi, lo
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Marsaglia polar method.
func (s *Stream) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
