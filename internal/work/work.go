// Package work defines the cost model that converts measured planner work
// (collision checks, local-plan steps, kNN evaluations) into virtual time,
// and the machine profiles (latency/topology constants) for the simulated
// distributed machines standing in for the paper's Cray XE6 ("Hopper")
// and Opteron cluster.
//
// The central idea of the reproduction: planners genuinely execute and
// meter their own work; the discrete-event simulator charges each region
// task its measured work under a profile's constants. Load-balancing
// behaviour then depends only on the *distribution* of work and message
// costs — the same quantities that governed the paper's results — not on
// the wall-clock speed of the host.
package work

import "parmp/internal/cspace"

// CostModel weighs each metered operation in abstract work units
// (interpreted as microseconds of virtual time).
type CostModel struct {
	CDCall     float64 // fixed overhead per validity check
	CDObstacle float64 // per obstacle containment/segment test
	LPCall     float64 // fixed overhead per local-plan invocation
	LPStep     float64 // per resolution step
	KNNQuery   float64 // fixed overhead per kNN query
	KNNEval    float64 // per distance evaluation
	Sample     float64 // per configuration generated
}

// DefaultCostModel mirrors the relative costs of a typical PRM stack:
// local planning dominates (the paper measures node connection at ~90 % of
// total time), collision tests are the inner kernel, sampling is cheap.
func DefaultCostModel() CostModel {
	return CostModel{
		CDCall:     1.0,
		CDObstacle: 0.5,
		LPCall:     2.0,
		LPStep:     1.0,
		KNNQuery:   1.0,
		KNNEval:    0.02,
		Sample:     0.2,
	}
}

// Time converts counters to virtual time units.
func (m CostModel) Time(c cspace.Counters) float64 {
	return m.CDCall*float64(c.CDCalls) +
		m.CDObstacle*float64(c.CDObstacle) +
		m.LPCall*float64(c.LPCalls) +
		m.LPStep*float64(c.LPSteps) +
		m.KNNQuery*float64(c.KNNQueries) +
		m.KNNEval*float64(c.KNNEvals) +
		m.Sample*float64(c.Samples)
}

// MachineProfile captures the communication constants of a distributed
// machine in the same virtual time units as CostModel.
type MachineProfile struct {
	Name string
	// CoresPerNode determines which processor pairs communicate at
	// intra-node cost.
	CoresPerNode int
	// LatencyLocal is the one-way message latency between cores on the
	// same node; LatencyRemote between nodes.
	LatencyLocal, LatencyRemote float64
	// StealHandling is the victim-side cost to serve one steal request.
	StealHandling float64
	// MigrateFixed is the fixed cost to migrate one region's ownership;
	// MigratePerVertex adds per roadmap vertex moved with it.
	MigrateFixed, MigratePerVertex float64
	// RemoteAccess is the added cost of touching a graph element owned by
	// another processor (region-connection phase); LocalAccess the cost
	// when it is local.
	LocalAccess, RemoteAccess float64
	// BarrierPerLog is the cost of a global barrier per log2(P).
	BarrierPerLog float64
}

// Hopper approximates a Cray XE6: 24 cores per node, fast Gemini
// interconnect (small remote/local latency ratio).
func Hopper() MachineProfile {
	return MachineProfile{
		Name:             "hopper",
		CoresPerNode:     24,
		LatencyLocal:     20,
		LatencyRemote:    120,
		StealHandling:    10,
		MigrateFixed:     50,
		MigratePerVertex: 0.5,
		LocalAccess:      1,
		RemoteAccess:     30,
		BarrierPerLog:    25,
	}
}

// OpteronCluster approximates a commodity Opteron/InfiniBand cluster:
// 8 cores per node, higher remote latency.
func OpteronCluster() MachineProfile {
	return MachineProfile{
		Name:             "opteron-cluster",
		CoresPerNode:     8,
		LatencyLocal:     25,
		LatencyRemote:    300,
		StealHandling:    15,
		MigrateFixed:     100,
		MigratePerVertex: 1,
		LocalAccess:      1,
		RemoteAccess:     60,
		BarrierPerLog:    40,
	}
}

// ProfileByName looks up a machine profile ("hopper" or
// "opteron-cluster"). ok is false for unknown names.
func ProfileByName(name string) (MachineProfile, bool) {
	switch name {
	case "hopper":
		return Hopper(), true
	case "opteron-cluster", "opteron":
		return OpteronCluster(), true
	}
	return MachineProfile{}, false
}

// Latency returns the one-way latency between processors a and b.
func (p MachineProfile) Latency(a, b int) float64 {
	if p.CoresPerNode <= 0 {
		return p.LatencyLocal
	}
	if a/p.CoresPerNode == b/p.CoresPerNode {
		return p.LatencyLocal
	}
	return p.LatencyRemote
}

// Barrier returns the cost of a global barrier across p processors.
func (p MachineProfile) Barrier(procs int) float64 {
	if procs <= 1 {
		return 0
	}
	logs := 0
	for n := procs - 1; n > 0; n >>= 1 {
		logs++
	}
	return p.BarrierPerLog * float64(logs)
}

// NoRegion marks a task that is not attributable to a single region
// (e.g. a region-connection task spanning a pair). The zero value of
// Task.Region is region 0 — a valid region — so producers that care
// about attribution must tag explicitly.
const NoRegion = -1

// Task is one quantum of schedulable work: a region whose planning cost is
// determined by actually running the closure. Run must be safe to call
// exactly once; it returns the task's virtual-time cost and an opaque
// payload size (e.g. roadmap vertices created) used to price subsequent
// migrations of the task's output.
//
// Payload is the size of the data that must move WITH the task when its
// ownership transfers before execution (e.g. the samples already
// generated in a PRM region). Stealing a task is priced like migrating
// it: ownership transfer is never free.
//
// Region tags the task with the decomposition region whose work it
// performs, so scheduler reports can attribute observed costs to regions
// for the online cost model (internal/costmodel). Use NoRegion for tasks
// that have no single home region.
type Task struct {
	ID      int
	Payload int
	Region  int
	Run     func() (cost float64, payload int)
}
