package work

import (
	"math"
	"testing"

	"parmp/internal/cspace"
)

func TestTimeLinear(t *testing.T) {
	m := DefaultCostModel()
	c := cspace.Counters{CDCalls: 10, CDObstacle: 4, LPCalls: 2, LPSteps: 20, KNNQueries: 1, KNNEvals: 50, Samples: 5}
	want := 10*m.CDCall + 4*m.CDObstacle + 2*m.LPCall + 20*m.LPStep + 1*m.KNNQuery + 50*m.KNNEval + 5*m.Sample
	if got := m.Time(c); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Time = %v, want %v", got, want)
	}
	// Additivity.
	var c2 cspace.Counters
	c2.Add(c)
	c2.Add(c)
	if math.Abs(m.Time(c2)-2*want) > 1e-9 {
		t.Fatal("Time not additive")
	}
}

func TestTimeZero(t *testing.T) {
	if DefaultCostModel().Time(cspace.Counters{}) != 0 {
		t.Fatal("zero counters should cost zero")
	}
}

func TestLatencyNodeStructure(t *testing.T) {
	p := Hopper()
	if p.Latency(0, 23) != p.LatencyLocal {
		t.Fatal("same-node latency should be local")
	}
	if p.Latency(0, 24) != p.LatencyRemote {
		t.Fatal("cross-node latency should be remote")
	}
	if p.Latency(25, 47) != p.LatencyLocal {
		t.Fatal("second node internal latency should be local")
	}
}

func TestLatencyDegenerateProfile(t *testing.T) {
	p := MachineProfile{LatencyLocal: 5}
	if p.Latency(0, 99) != 5 {
		t.Fatal("zero CoresPerNode should use local latency")
	}
}

func TestBarrierGrowth(t *testing.T) {
	p := Hopper()
	if p.Barrier(1) != 0 {
		t.Fatal("single-proc barrier should be free")
	}
	b2 := p.Barrier(2)
	b1024 := p.Barrier(1024)
	if b2 <= 0 || b1024 <= b2 {
		t.Fatalf("barrier not growing: %v %v", b2, b1024)
	}
	if math.Abs(b1024-10*p.BarrierPerLog) > 1e-9 {
		t.Fatalf("barrier(1024) = %v, want %v", b1024, 10*p.BarrierPerLog)
	}
}

func TestProfileByName(t *testing.T) {
	if p, ok := ProfileByName("hopper"); !ok || p.Name != "hopper" {
		t.Fatal("hopper lookup failed")
	}
	if p, ok := ProfileByName("opteron"); !ok || p.Name != "opteron-cluster" {
		t.Fatal("opteron lookup failed")
	}
	if _, ok := ProfileByName("cray-unknown"); ok {
		t.Fatal("unknown profile should fail")
	}
}

func TestProfilesDistinct(t *testing.T) {
	h, o := Hopper(), OpteronCluster()
	if h.LatencyRemote >= o.LatencyRemote {
		t.Fatal("Hopper interconnect should be faster than commodity cluster")
	}
	if h.CoresPerNode <= o.CoresPerNode {
		t.Fatal("XE6 nodes are wider")
	}
}
