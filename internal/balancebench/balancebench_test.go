package balancebench

import (
	"bytes"
	"testing"
)

// TestBalanceBenchDeterministicCostProfile: the virtual-time benchmark
// is bit-stable — two runs of the same config serialize identically, so
// the CI gate never sees noise.
func TestBalanceBenchDeterministicCostProfile(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rounds = 2 // keep the test cheap; determinism is round-count independent
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := Write(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("two identical runs serialized differently")
	}

	if len(a.Phases) == 0 {
		t.Fatal("no per-phase rows")
	}
	if a.ConstructCVMean <= 0 {
		t.Fatal("construct CV not populated")
	}
	if a.UtilizationMean <= 0 || a.UtilizationMean > 1 {
		t.Fatalf("mean utilization %.4f outside (0, 1]", a.UtilizationMean)
	}
	if a.ImbalanceMax < 1 {
		t.Fatalf("max imbalance %.4f below 1", a.ImbalanceMax)
	}
	if a.MigratedRegions == 0 {
		t.Fatal("repartitioning benchmark migrated no regions")
	}
	if a.CostModel != "observed" || a.Rebalance != "diffusive" || a.Strategy != "repartition" {
		t.Fatalf("unexpected config echo: %s/%s/%s", a.Strategy, a.CostModel, a.Rebalance)
	}
}

// TestBalanceGateRebalanceRegression: the gate passes on an identical
// result and reports every violated threshold on a degraded one.
func TestBalanceGateRebalanceRegression(t *testing.T) {
	base := Result{
		ConstructCVMean:  0.10,
		UtilizationMean:  0.90,
		TotalVirtualTime: 100,
	}
	g := Gate{MaxCVRegress: 0.10, MaxUtilDrop: 0.05, MaxTimeRegress: 0.10}

	if err := g.Check(base, &base); err != nil {
		t.Fatalf("identical result failed the gate: %v", err)
	}
	if err := g.Check(base, nil); err != nil {
		t.Fatalf("nil baseline should check nothing: %v", err)
	}

	within := base
	within.ConstructCVMean = 0.105
	within.UtilizationMean = 0.87
	within.TotalVirtualTime = 105
	if err := g.Check(within, &base); err != nil {
		t.Fatalf("within-threshold result failed: %v", err)
	}

	bad := base
	bad.ConstructCVMean = 0.15
	bad.UtilizationMean = 0.80
	bad.TotalVirtualTime = 150
	err := g.Check(bad, &base)
	if err == nil {
		t.Fatal("degraded result passed the gate")
	}
	for _, want := range []string{"construct CV", "utilization", "virtual time"} {
		if !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Errorf("gate error missing %q violation:\n%v", want, err)
		}
	}

	off := Gate{MaxCVRegress: -1, MaxUtilDrop: -1, MaxTimeRegress: -1}
	if err := off.Check(bad, &base); err != nil {
		t.Fatalf("disabled gate still failed: %v", err)
	}
}
