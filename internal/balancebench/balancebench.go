// Package balancebench defines the load-balance benchmark schema
// (BENCH_balance.json) and its regression gate — the balance sibling of
// internal/kernelbench's allocation gate and internal/servebench's
// tail-latency gate.
//
// The benchmark runs the closed-loop planner configuration (observed-cost
// repartitioning plus between-rounds diffusive rebalance) on the
// deterministic virtual-time backend, so every number here is
// machine-independent and bit-stable: the per-phase imbalance factor,
// utilization and steal efficiency that the paper's figures are built
// from (derived via internal/obsv) can be gated in CI against a
// checked-in baseline without flakiness.
package balancebench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"parmp/internal/core"
	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/metrics"
	"parmp/internal/obsv"
	"parmp/internal/work"
)

// PhaseBalance is one phase's load-balance profile, one row per
// (round, phase) of the run.
type PhaseBalance struct {
	Round int    `json:"round"`
	Phase string `json:"phase"`
	// Makespan is the phase's virtual completion time.
	Makespan float64 `json:"makespan"`
	// Utilization, Imbalance and StealEfficiency are obsv.Metrics ratios
	// (unit-free; see internal/obsv).
	Utilization     float64 `json:"utilization"`
	Imbalance       float64 `json:"imbalance"`
	StealEfficiency float64 `json:"steal_efficiency"`
	TasksMigrated   int     `json:"tasks_migrated"`
	// BusyCV is the coefficient of variation of per-worker busy time —
	// the paper's imbalance measure for the phase.
	BusyCV float64 `json:"busy_cv"`
}

// Result is one balance benchmark run: the BENCH_balance.json schema.
type Result struct {
	Source    string `json:"source"` // "mpbench"
	Env       string `json:"env"`
	Procs     int    `json:"procs"`
	Regions   int    `json:"regions"`
	Rounds    int    `json:"rounds"`
	Strategy  string `json:"strategy"`
	CostModel string `json:"cost_model"`
	Rebalance string `json:"rebalance"`

	// TotalVirtualTime is the cumulative virtual makespan of every round.
	TotalVirtualTime float64 `json:"total_virtual_time"`
	// ConstructCVMean averages BusyCV over the construct phases of the
	// warm rounds (round >= 1) — the quantity the observed-cost model
	// exists to shrink. With a single round it falls back to round 0.
	ConstructCVMean float64 `json:"construct_cv_mean"`
	// UtilizationMean averages utilization over all phases.
	UtilizationMean float64 `json:"utilization_mean"`
	// ImbalanceMax is the worst per-phase imbalance factor of the run.
	ImbalanceMax float64 `json:"imbalance_max"`
	// StealEfficiencyMin is the worst per-phase steal efficiency (1 when
	// no phase issued steals).
	StealEfficiencyMin float64 `json:"steal_efficiency_min"`
	// MigratedRegions / DiffusedRegions count ownership transfers due to
	// bulk repartitioning and the diffusive rebalance respectively.
	MigratedRegions int `json:"migrated_regions"`
	DiffusedRegions int `json:"diffused_regions"`

	Phases []PhaseBalance `json:"phases"`
}

// Config parameterizes Run. The zero value is not runnable; use
// DefaultConfig for the CI shape.
type Config struct {
	Env     string // environment name understood by env.ByName
	Procs   int
	Regions int
	Rounds  int
	Seed    int64
	// SamplesPerRegion per round (PRM).
	SamplesPerRegion int
}

// DefaultConfig is the CI benchmark shape: big enough that imbalance and
// stealing actually occur, small enough to finish in well under a second.
func DefaultConfig() Config {
	return Config{
		Env:              "med-cube",
		Procs:            8,
		Regions:          128,
		Rounds:           4,
		Seed:             1,
		SamplesPerRegion: 5,
	}
}

// Run executes the closed-loop PRM configuration (repartition on
// observed costs + diffusive rebalance) for cfg.Rounds rounds on the
// virtual-time backend and derives the balance profile. Deterministic:
// equal cfg always yields an identical Result.
func Run(cfg Config) (Result, error) {
	e := env.ByName(cfg.Env)
	if e == nil {
		return Result{}, fmt.Errorf("unknown environment %q", cfg.Env)
	}
	s := cspace.NewPointSpace(e)
	opts := core.Options{
		Procs:            cfg.Procs,
		Regions:          cfg.Regions,
		SamplesPerRegion: cfg.SamplesPerRegion,
		ConnectK:         3,
		Seed:             uint64(cfg.Seed),
		Profile:          work.Hopper(),
		Strategy:         core.Repartition,
		CostModel:        core.CostObserved,
		Rebalance:        core.RebalanceDiffusive,
	}
	eng, err := core.NewPRMEngine(s, opts)
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < cfg.Rounds; i++ {
		if err := eng.GrowRound(nil); err != nil {
			return Result{}, err
		}
	}
	res := eng.Result()

	r := Result{
		Source:             "mpbench",
		Env:                cfg.Env,
		Procs:              cfg.Procs,
		Regions:            cfg.Regions,
		Rounds:             cfg.Rounds,
		Strategy:           opts.Strategy.String(),
		CostModel:          opts.CostModel.String(),
		Rebalance:          opts.Rebalance.String(),
		TotalVirtualTime:   res.TotalTime,
		MigratedRegions:    res.MigratedRegions,
		DiffusedRegions:    res.DiffusedRegions,
		StealEfficiencyMin: 1,
	}
	var utilSum, cvSum float64
	var cvN int
	for _, pr := range res.PhaseReports {
		m := obsv.Analyze(pr.Report)
		busy := make([]float64, len(pr.Report.Workers))
		for i, ws := range pr.Report.Workers {
			busy[i] = ws.Busy
		}
		cv := metrics.CV(busy)
		r.Phases = append(r.Phases, PhaseBalance{
			Round:           pr.Round,
			Phase:           pr.Phase,
			Makespan:        m.Makespan,
			Utilization:     m.Utilization,
			Imbalance:       m.Imbalance,
			StealEfficiency: m.StealEfficiency,
			TasksMigrated:   m.TasksMigrated,
			BusyCV:          cv,
		})
		utilSum += m.Utilization
		if m.Imbalance > r.ImbalanceMax {
			r.ImbalanceMax = m.Imbalance
		}
		if m.StealEfficiency < r.StealEfficiencyMin {
			r.StealEfficiencyMin = m.StealEfficiency
		}
		if pr.Phase == "construct" && (pr.Round >= 1 || cfg.Rounds == 1) {
			cvSum += cv
			cvN++
		}
	}
	if n := len(r.Phases); n > 0 {
		r.UtilizationMean = utilSum / float64(n)
	}
	if cvN > 0 {
		r.ConstructCVMean = cvSum / float64(cvN)
	}
	return r, nil
}

// Write marshals r as indented JSON.
func Write(w io.Writer, r Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes r to path ("-" for stdout).
func WriteFile(path string, r Result) error {
	if path == "-" {
		return Write(os.Stdout, r)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a Result from path.
func Load(path string) (Result, error) {
	var r Result
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Gate bundles the balance regression thresholds. The benchmark is
// deterministic, so any drift is a real behavior change: thresholds
// exist to let intentional small improvements land without a baseline
// refresh, not to absorb noise.
type Gate struct {
	// MaxCVRegress fails the run when the warm-round construct CV exceeds
	// the baseline's by more than this fraction. Negative disables.
	MaxCVRegress float64
	// MaxUtilDrop fails the run when mean utilization falls more than
	// this many absolute points below the baseline's. Negative disables.
	MaxUtilDrop float64
	// MaxTimeRegress fails the run when total virtual time exceeds the
	// baseline's by more than this fraction. Negative disables.
	MaxTimeRegress float64
}

// Check enforces g against r relative to baseline. It returns every
// violation, not just the first; nil baseline checks nothing.
func (g Gate) Check(r Result, baseline *Result) error {
	if baseline == nil {
		return nil
	}
	var errs []error
	if g.MaxCVRegress >= 0 && baseline.ConstructCVMean > 0 {
		if limit := baseline.ConstructCVMean * (1 + g.MaxCVRegress); r.ConstructCVMean > limit {
			errs = append(errs, fmt.Errorf("construct CV %.4f exceeds baseline %.4f by more than %.0f%% (limit %.4f)",
				r.ConstructCVMean, baseline.ConstructCVMean, 100*g.MaxCVRegress, limit))
		}
	}
	if g.MaxUtilDrop >= 0 {
		if limit := baseline.UtilizationMean - g.MaxUtilDrop; r.UtilizationMean < limit {
			errs = append(errs, fmt.Errorf("mean utilization %.4f below baseline %.4f by more than %.2f (limit %.4f)",
				r.UtilizationMean, baseline.UtilizationMean, g.MaxUtilDrop, limit))
		}
	}
	if g.MaxTimeRegress >= 0 && baseline.TotalVirtualTime > 0 {
		if limit := baseline.TotalVirtualTime * (1 + g.MaxTimeRegress); r.TotalVirtualTime > limit {
			errs = append(errs, fmt.Errorf("total virtual time %.2f exceeds baseline %.2f by more than %.0f%% (limit %.2f)",
				r.TotalVirtualTime, baseline.TotalVirtualTime, 100*g.MaxTimeRegress, limit))
		}
	}
	if len(errs) == 0 {
		return nil
	}
	msg := "balance gate:"
	for _, e := range errs {
		msg += "\n  " + e.Error()
	}
	return fmt.Errorf("%s", msg)
}
