// Package model implements the paper's theoretical model environment
// (Section IV-B): a 2D workspace with a single square obstacle equidistant
// from the bounding box. Because free volume is exactly computable per
// region, the model predicts the load imbalance of the naive
// column-partitioned mapping, bounds the best achievable balance with a
// greedy global partition, and thereby bounds the improvement *any* load
// balancing technique can achieve.
package model

import (
	"parmp/internal/env"
	"parmp/internal/metrics"
	"parmp/internal/region"
	"parmp/internal/repart"
)

// Model is the analytic environment: Blocked is the obstacle's area
// fraction, Grid the number of regions per side (Grid×Grid regions).
type Model struct {
	Blocked float64
	Grid    int
}

// Env returns the concrete 2D environment for the model.
func (m Model) Env() *env.Environment { return env.Model2D(m.Blocked) }

// Regions returns the uniform Grid×Grid region graph over the model. The
// spec is valid by construction for any positive Grid.
func (m Model) Regions() *region.Graph {
	return region.MustUniformGrid(m.Env().Bounds, region.GridSpec{Cells: []int{m.Grid, m.Grid}})
}

// VFree returns each region's exact free-space volume, in region-ID
// (row-major) order. Per the paper, "the total load that the region will
// experience is proportional to V_free".
func (m Model) VFree() []float64 {
	e := m.Env()
	rg := m.Regions()
	w := make([]float64, rg.NumRegions())
	for i := range w {
		w[i] = e.FreeVolumeIn(rg.Region(i).Core, 0, 1)
	}
	return w
}

// NaiveLoads returns the per-processor V_free totals under the naive 1D
// column partition of the region mesh.
func (m Model) NaiveLoads(p int) []float64 {
	rg := m.Regions()
	w := m.VFree()
	region.NaiveColumnPartition(rg, p)
	load := make([]float64, p)
	for i, wi := range w {
		load[rg.Owner[i]] += wi
	}
	return load
}

// BestLoads returns the per-processor V_free totals under the greedy
// global partition (edge cuts ignored, as in the paper's model analysis).
func (m Model) BestLoads(p int) []float64 {
	w := m.VFree()
	assign := repart.GreedyLPT(w, p)
	load := make([]float64, p)
	for i, a := range assign {
		load[a] += w[i]
	}
	return load
}

// NaiveCV is the model-predicted coefficient of variation of the naive
// mapping (Fig. 4(a), "Model imbalance").
func (m Model) NaiveCV(p int) float64 { return metrics.CV(m.NaiveLoads(p)) }

// BestCV is the model-predicted coefficient of variation of the best
// greedy partition (Fig. 4(a), "Model improvement").
func (m Model) BestCV(p int) float64 { return metrics.CV(m.BestLoads(p)) }

// TheoreticalImprovement is the percentage reduction in the maximum
// per-processor V_free achieved by the best partition over the naive one
// (Fig. 4(b), "Theoretical (unit area)"). Zero when no improvement is
// possible.
func (m Model) TheoreticalImprovement(p int) float64 {
	naive := metrics.Max(m.NaiveLoads(p))
	best := metrics.Max(m.BestLoads(p))
	if naive <= 0 {
		return 0
	}
	imp := 100 * (naive - best) / naive
	if imp < 0 {
		return 0
	}
	return imp
}
