package model

import (
	"math"
	"testing"

	"parmp/internal/metrics"
)

func TestVFreeSumsToFreeArea(t *testing.T) {
	m := Model{Blocked: 0.25, Grid: 16}
	w := m.VFree()
	if len(w) != 256 {
		t.Fatalf("len = %d", len(w))
	}
	if got := metrics.Sum(w); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("total VFree = %v, want 0.75", got)
	}
	// Corner regions are fully free; the obstacle spans [0.25,0.75]^2 so
	// central regions are fully blocked.
	cell := 1.0 / 16 / 16
	if math.Abs(w[0]-cell) > 1e-12 {
		t.Fatalf("corner region VFree = %v, want %v", w[0], cell)
	}
	// Region at grid coord (8,8): core [0.5,0.5625]x[0.5,0.5625] inside
	// the obstacle.
	center := 8*16 + 8
	if w[center] != 0 {
		t.Fatalf("central region VFree = %v, want 0", w[center])
	}
}

func TestNaiveCVPositiveAndBestLower(t *testing.T) {
	m := Model{Blocked: 0.25, Grid: 32}
	for _, p := range []int{2, 4, 8, 16, 32} {
		naive := m.NaiveCV(p)
		best := m.BestCV(p)
		if p > 2 && naive <= 0 {
			t.Fatalf("p=%d: naive CV = %v, expected imbalance", p, naive)
		}
		if best > naive+1e-12 {
			t.Fatalf("p=%d: best CV %v exceeds naive %v", p, best, naive)
		}
	}
}

func TestBestCVNearZeroForManyRegions(t *testing.T) {
	// With 1024 regions over 8 procs, greedy LPT should balance V_free
	// almost perfectly.
	m := Model{Blocked: 0.25, Grid: 32}
	if cv := m.BestCV(8); cv > 0.01 {
		t.Fatalf("best CV = %v, expected near zero", cv)
	}
}

func TestImprovementDecaysWithProcs(t *testing.T) {
	// The paper: "the best possible distribution of regions to processors
	// for higher core counts shows less benefit" — at 128 cores on a
	// 256-region model "there is no better distribution of load possible".
	// The effect is a granularity limit: once each processor holds only a
	// couple of regions, greedy cannot beat the naive mapping.
	m := Model{Blocked: 0.25, Grid: 16}
	low := m.TheoreticalImprovement(4)
	high := m.TheoreticalImprovement(128)
	if low <= 0 {
		t.Fatalf("improvement at 4 procs = %v, expected positive", low)
	}
	if high >= low {
		t.Fatalf("improvement should decay: %v at 4p vs %v at 128p", low, high)
	}
	if high != 0 {
		t.Fatalf("at 128 procs over 256 regions no improvement should remain, got %v", high)
	}
}

func TestNoObstacleNoImbalance(t *testing.T) {
	m := Model{Blocked: 0, Grid: 16}
	if cv := m.NaiveCV(4); cv > 1e-9 {
		t.Fatalf("free model naive CV = %v", cv)
	}
	if imp := m.TheoreticalImprovement(4); imp != 0 {
		t.Fatalf("free model improvement = %v", imp)
	}
}

func TestLoadsConserveVolume(t *testing.T) {
	m := Model{Blocked: 0.25, Grid: 16}
	for _, p := range []int{2, 5, 8} {
		if got := metrics.Sum(m.NaiveLoads(p)); math.Abs(got-0.75) > 1e-9 {
			t.Fatalf("naive loads sum %v", got)
		}
		if got := metrics.Sum(m.BestLoads(p)); math.Abs(got-0.75) > 1e-9 {
			t.Fatalf("best loads sum %v", got)
		}
	}
}
