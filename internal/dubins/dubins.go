// Package dubins computes shortest paths for the Dubins car — a vehicle
// that moves only forward with a bounded turning radius. Configurations
// are (x, y, heading).
//
// The paper notes RRTs are "particularly well suited for non-holonomic
// and kinodynamic motion planning problems"; plugging Dubins steering
// into the planning stack (cspace.Space.Steer) turns the straight-line
// local planner into a feasible-curve follower, giving the radial RRT a
// genuinely non-holonomic workload.
//
// The construction follows the classical six-word taxonomy (Dubins 1957;
// formulas after Shkel & Lugovoy 2001): every optimal path is one of
// LSL, RSR, LSR, RSL, RLR, LRL, where L/R are minimum-radius arcs and S
// a straight segment.
package dubins

import (
	"math"
)

// Word identifies a Dubins path type.
type Word int

// The six Dubins words.
const (
	LSL Word = iota
	RSR
	LSR
	RSL
	RLR
	LRL
)

// String names the word.
func (w Word) String() string {
	switch w {
	case LSL:
		return "LSL"
	case RSR:
		return "RSR"
	case LSR:
		return "LSR"
	case RSL:
		return "RSL"
	case RLR:
		return "RLR"
	case LRL:
		return "LRL"
	}
	return "???"
}

// segmentKinds maps each word to its three motion primitives
// ('L', 'S', 'R').
var segmentKinds = [6][3]byte{
	LSL: {'L', 'S', 'L'},
	RSR: {'R', 'S', 'R'},
	LSR: {'L', 'S', 'R'},
	RSL: {'R', 'S', 'L'},
	RLR: {'R', 'L', 'R'},
	LRL: {'L', 'R', 'L'},
}

// Path is a Dubins path from Start to an implied end configuration.
type Path struct {
	Start  [3]float64 // x, y, heading
	Radius float64
	Word   Word
	// Seg holds the three normalized segment lengths (arcs in radians,
	// the straight segment in units of Radius).
	Seg [3]float64
}

// Length returns the path's total length in workspace units.
func (p Path) Length() float64 {
	return (p.Seg[0] + p.Seg[1] + p.Seg[2]) * p.Radius
}

func mod2pi(x float64) float64 {
	x = math.Mod(x, 2*math.Pi)
	if x < 0 {
		x += 2 * math.Pi
	}
	return x
}

type triple struct {
	t, p, q float64
	ok      bool
}

func lsl(a, b, d float64) triple {
	sa, ca := math.Sincos(a)
	sb, cb := math.Sincos(b)
	psq := 2 + d*d - 2*math.Cos(a-b) + 2*d*(sa-sb)
	if psq < 0 {
		return triple{}
	}
	tmp := math.Atan2(cb-ca, d+sa-sb)
	return triple{mod2pi(-a + tmp), math.Sqrt(psq), mod2pi(b - tmp), true}
}

func rsr(a, b, d float64) triple {
	sa, ca := math.Sincos(a)
	sb, cb := math.Sincos(b)
	psq := 2 + d*d - 2*math.Cos(a-b) + 2*d*(sb-sa)
	if psq < 0 {
		return triple{}
	}
	tmp := math.Atan2(ca-cb, d-sa+sb)
	return triple{mod2pi(a - tmp), math.Sqrt(psq), mod2pi(-b + tmp), true}
}

func lsr(a, b, d float64) triple {
	sa, ca := math.Sincos(a)
	sb, cb := math.Sincos(b)
	psq := -2 + d*d + 2*math.Cos(a-b) + 2*d*(sa+sb)
	if psq < 0 {
		return triple{}
	}
	p := math.Sqrt(psq)
	tmp := math.Atan2(-ca-cb, d+sa+sb) - math.Atan2(-2, p)
	return triple{mod2pi(-a + tmp), p, mod2pi(-mod2pi(b) + tmp), true}
}

func rsl(a, b, d float64) triple {
	sa, ca := math.Sincos(a)
	sb, cb := math.Sincos(b)
	psq := -2 + d*d + 2*math.Cos(a-b) - 2*d*(sa+sb)
	if psq < 0 {
		return triple{}
	}
	p := math.Sqrt(psq)
	tmp := math.Atan2(ca+cb, d-sa-sb) - math.Atan2(2, p)
	return triple{mod2pi(a - tmp), p, mod2pi(b - tmp), true}
}

func rlr(a, b, d float64) triple {
	sa, ca := math.Sincos(a)
	sb, cb := math.Sincos(b)
	tmp := (6 - d*d + 2*math.Cos(a-b) + 2*d*(sa-sb)) / 8
	if math.Abs(tmp) > 1 {
		return triple{}
	}
	p := mod2pi(2*math.Pi - math.Acos(tmp))
	t := mod2pi(a - math.Atan2(ca-cb, d-sa+sb) + p/2)
	q := mod2pi(a - b - t + p)
	_ = ca
	_ = cb
	return triple{t, p, q, true}
}

func lrl(a, b, d float64) triple {
	sa, ca := math.Sincos(a)
	sb, cb := math.Sincos(b)
	tmp := (6 - d*d + 2*math.Cos(a-b) + 2*d*(sb-sa)) / 8
	if math.Abs(tmp) > 1 {
		return triple{}
	}
	p := mod2pi(2*math.Pi - math.Acos(tmp))
	t := mod2pi(-a + math.Atan2(-ca+cb, d+sa-sb) + p/2)
	q := mod2pi(mod2pi(b) - a - t + p)
	return triple{t, p, q, true}
}

var solvers = [6]func(a, b, d float64) triple{lsl, rsr, lsr, rsl, rlr, lrl}

// Shortest returns the minimum-length Dubins path from (x0, y0, th0) to
// (x1, y1, th1) with the given turning radius. ok is false only for a
// non-positive radius.
func Shortest(x0, y0, th0, x1, y1, th1, radius float64) (Path, bool) {
	if radius <= 0 {
		return Path{}, false
	}
	dx, dy := x1-x0, y1-y0
	bigD := math.Hypot(dx, dy)
	d := bigD / radius
	phi := math.Atan2(dy, dx)
	a := mod2pi(th0 - phi)
	b := mod2pi(th1 - phi)

	best := Path{Start: [3]float64{x0, y0, th0}, Radius: radius}
	bestLen := math.Inf(1)
	found := false
	for w, solve := range solvers {
		tr := solve(a, b, d)
		if !tr.ok {
			continue
		}
		l := tr.t + tr.p + tr.q
		if l < bestLen {
			bestLen = l
			best.Word = Word(w)
			best.Seg = [3]float64{tr.t, tr.p, tr.q}
			found = true
		}
	}
	if !found {
		// Degenerate inputs (NaN); should not happen for finite configs.
		return Path{}, false
	}
	return best, true
}

// step advances a configuration by normalized length s (units of Radius)
// along primitive kind.
func step(q [3]float64, kind byte, s float64) [3]float64 {
	sin, cos := math.Sincos(q[2])
	switch kind {
	case 'S':
		return [3]float64{q[0] + s*cos, q[1] + s*sin, q[2]}
	case 'L':
		return [3]float64{
			q[0] + math.Sin(q[2]+s) - sin,
			q[1] - math.Cos(q[2]+s) + cos,
			q[2] + s,
		}
	case 'R':
		return [3]float64{
			q[0] - math.Sin(q[2]-s) + sin,
			q[1] + math.Cos(q[2]-s) - cos,
			q[2] - s,
		}
	}
	return q
}

// At returns the configuration at arc length s (workspace units) along
// the path, clamped to [0, Length].
func (p Path) At(s float64) (x, y, th float64) {
	if s < 0 {
		s = 0
	}
	total := p.Length()
	if s > total {
		s = total
	}
	// Work in normalized units with a unit-radius frame centred on Start.
	sn := s / p.Radius
	q := [3]float64{0, 0, p.Start[2]}
	kinds := segmentKinds[p.Word]
	for i := 0; i < 3; i++ {
		if sn <= 0 {
			break
		}
		take := p.Seg[i]
		if take > sn {
			take = sn
		}
		q = step(q, kinds[i], take)
		sn -= take
	}
	return p.Start[0] + q[0]*p.Radius, p.Start[1] + q[1]*p.Radius, mod2pi(q[2])
}

// End returns the path's terminal configuration.
func (p Path) End() (x, y, th float64) { return p.At(p.Length()) }
