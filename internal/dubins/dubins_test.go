package dubins

import (
	"math"
	"testing"

	"parmp/internal/rng"
)

func angleDiff(a, b float64) float64 {
	d := math.Abs(mod2pi(a) - mod2pi(b))
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

func TestStraightLineCase(t *testing.T) {
	p, ok := Shortest(0, 0, 0, 5, 0, 0, 1)
	if !ok {
		t.Fatal("no path")
	}
	if math.Abs(p.Length()-5) > 1e-9 {
		t.Fatalf("aligned path length = %v, want 5", p.Length())
	}
	x, y, th := p.End()
	if math.Abs(x-5) > 1e-9 || math.Abs(y) > 1e-9 || angleDiff(th, 0) > 1e-9 {
		t.Fatalf("end = (%v,%v,%v)", x, y, th)
	}
}

func TestEndpointsReachedRandom(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 500; trial++ {
		x0, y0 := r.Range(-5, 5), r.Range(-5, 5)
		x1, y1 := r.Range(-5, 5), r.Range(-5, 5)
		th0, th1 := r.Range(0, 2*math.Pi), r.Range(0, 2*math.Pi)
		rho := r.Range(0.2, 2)
		p, ok := Shortest(x0, y0, th0, x1, y1, th1, rho)
		if !ok {
			t.Fatalf("trial %d: no path", trial)
		}
		x, y, th := p.End()
		if math.Abs(x-x1) > 1e-6 || math.Abs(y-y1) > 1e-6 {
			t.Fatalf("trial %d (%s): end (%v,%v) != (%v,%v)", trial, p.Word, x, y, x1, y1)
		}
		if angleDiff(th, th1) > 1e-6 {
			t.Fatalf("trial %d (%s): heading %v != %v", trial, p.Word, th, th1)
		}
	}
}

func TestLengthLowerBound(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 300; trial++ {
		x1, y1 := r.Range(-5, 5), r.Range(-5, 5)
		th0, th1 := r.Range(0, 2*math.Pi), r.Range(0, 2*math.Pi)
		rho := r.Range(0.2, 1.5)
		p, ok := Shortest(0, 0, th0, x1, y1, th1, rho)
		if !ok {
			t.Fatal("no path")
		}
		euclid := math.Hypot(x1, y1)
		if p.Length() < euclid-1e-9 {
			t.Fatalf("trial %d: length %v below euclidean %v", trial, p.Length(), euclid)
		}
		// Generous upper bound: straight distance + two full circles.
		if p.Length() > euclid+4*math.Pi*rho+1e-9 {
			t.Fatalf("trial %d: length %v implausibly long", trial, p.Length())
		}
	}
}

func TestPathMonotoneSampling(t *testing.T) {
	// Successive samples along the path are at most ds apart (the car
	// moves at unit speed along arc length).
	p, ok := Shortest(0, 0, 0, 1, 2, math.Pi/2, 0.5)
	if !ok {
		t.Fatal("no path")
	}
	total := p.Length()
	const n = 200
	px, py, _ := p.At(0)
	if math.Abs(px) > 1e-9 || math.Abs(py) > 1e-9 {
		t.Fatal("At(0) must be the start")
	}
	for i := 1; i <= n; i++ {
		s := total * float64(i) / n
		x, y, _ := p.At(s)
		ds := math.Hypot(x-px, y-py)
		if ds > total/n+1e-9 {
			t.Fatalf("sample %d jumped %v > %v", i, ds, total/n)
		}
		px, py = x, y
	}
}

func TestClampAndWordNames(t *testing.T) {
	p, _ := Shortest(0, 0, 0, 2, 1, 1, 0.7)
	x0, y0, _ := p.At(-5)
	if math.Abs(x0) > 1e-9 || math.Abs(y0) > 1e-9 {
		t.Fatal("negative s should clamp to start")
	}
	xe, ye, _ := p.At(1e9)
	ex, ey, _ := p.End()
	if xe != ex || ye != ey {
		t.Fatal("overlong s should clamp to end")
	}
	for w := LSL; w <= LRL; w++ {
		if w.String() == "???" {
			t.Fatalf("word %d unnamed", w)
		}
	}
	if Word(99).String() != "???" {
		t.Fatal("unknown word should print ???")
	}
}

func TestInvalidRadius(t *testing.T) {
	if _, ok := Shortest(0, 0, 0, 1, 1, 0, 0); ok {
		t.Fatal("zero radius should fail")
	}
	if _, ok := Shortest(0, 0, 0, 1, 1, 0, -1); ok {
		t.Fatal("negative radius should fail")
	}
}

func TestAllWordsReachable(t *testing.T) {
	// Sweep configurations and record which optimal words appear; the
	// four CSC words must all occur (CCC words need close quarters).
	r := rng.New(3)
	seen := map[Word]bool{}
	for trial := 0; trial < 3000; trial++ {
		p, ok := Shortest(0, 0, r.Range(0, 2*math.Pi),
			r.Range(-3, 3), r.Range(-3, 3), r.Range(0, 2*math.Pi), 1)
		if ok {
			seen[p.Word] = true
		}
	}
	for _, w := range []Word{LSL, RSR, LSR, RSL} {
		if !seen[w] {
			t.Fatalf("word %s never optimal across sweep", w)
		}
	}
}

func TestTightTurnUsesCCC(t *testing.T) {
	// Start and goal close together facing the same way but offset: a
	// CCC word is typically optimal when d < 4 rho. Just require the
	// solver finds SOME valid path and the end matches.
	p, ok := Shortest(0, 0, 0, 0.1, 0.3, math.Pi, 1)
	if !ok {
		t.Fatal("no path for tight manoeuvre")
	}
	x, y, th := p.End()
	if math.Abs(x-0.1) > 1e-6 || math.Abs(y-0.3) > 1e-6 || angleDiff(th, math.Pi) > 1e-6 {
		t.Fatalf("tight end = (%v,%v,%v) word=%s", x, y, th, p.Word)
	}
}
