package geom

import "math"

// Quat is a unit quaternion representing a 3D rotation, stored as
// (W, X, Y, Z) with W the scalar part.
type Quat struct {
	W, X, Y, Z float64
}

// QuatIdentity is the identity rotation.
var QuatIdentity = Quat{W: 1}

// QuatFromEuler builds a rotation from Z-Y-X (yaw, pitch, roll) Euler
// angles in radians.
func QuatFromEuler(roll, pitch, yaw float64) Quat {
	cr, sr := math.Cos(roll/2), math.Sin(roll/2)
	cp, sp := math.Cos(pitch/2), math.Sin(pitch/2)
	cy, sy := math.Cos(yaw/2), math.Sin(yaw/2)
	return Quat{
		W: cr*cp*cy + sr*sp*sy,
		X: sr*cp*cy - cr*sp*sy,
		Y: cr*sp*cy + sr*cp*sy,
		Z: cr*cp*sy - sr*sp*cy,
	}
}

// QuatFromAxisAngle builds a rotation of angle radians about axis (which
// need not be normalized).
func QuatFromAxisAngle(axis Vec, angle float64) Quat {
	u := axis.Unit()
	s := math.Sin(angle / 2)
	return Quat{W: math.Cos(angle / 2), X: u[0] * s, Y: u[1] * s, Z: u[2] * s}
}

// Mul returns the composition q∘r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Norm returns the quaternion magnitude.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalize returns q scaled to unit magnitude. The identity is returned
// for a zero quaternion.
func (q Quat) Normalize() Quat {
	n := q.Norm()
	if n == 0 {
		return QuatIdentity
	}
	return Quat{W: q.W / n, X: q.X / n, Y: q.Y / n, Z: q.Z / n}
}

// Rotate applies the rotation to a 3D vector.
func (q Quat) Rotate(v Vec) Vec {
	// v' = q * (0, v) * q^-1, expanded.
	tx := 2 * (q.Y*v[2] - q.Z*v[1])
	ty := 2 * (q.Z*v[0] - q.X*v[2])
	tz := 2 * (q.X*v[1] - q.Y*v[0])
	return Vec{
		v[0] + q.W*tx + q.Y*tz - q.Z*ty,
		v[1] + q.W*ty + q.Z*tx - q.X*tz,
		v[2] + q.W*tz + q.X*ty - q.Y*tx,
	}
}

// Transform is a rigid-body transform in 3D: rotate then translate.
type Transform struct {
	R Quat
	T Vec
}

// TransformIdentity returns the identity transform in 3D.
func TransformIdentity() Transform {
	return Transform{R: QuatIdentity, T: V(0, 0, 0)}
}

// Apply maps a point from body frame to world frame.
func (t Transform) Apply(p Vec) Vec {
	return t.R.Rotate(p).Add(t.T)
}

// Compose returns the transform equivalent to applying u first, then t.
func (t Transform) Compose(u Transform) Transform {
	return Transform{R: t.R.Mul(u.R), T: t.R.Rotate(u.T).Add(t.T)}
}
