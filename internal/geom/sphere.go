package geom

import (
	"math"

	"parmp/internal/rng"
)

// SampleOnSphere returns a uniformly distributed point on the surface of
// the unit (d-1)-sphere embedded in d dimensions, using normalized
// Gaussian coordinates. It panics for d < 1.
func SampleOnSphere(d int, r *rng.Stream) Vec {
	return SampleOnSphereInto(nil, d, r)
}

// SampleOnSphereInto is SampleOnSphere writing into dst (growing it as
// needed). The RNG stream consumption is identical to SampleOnSphere.
func SampleOnSphereInto(dst Vec, d int, r *rng.Stream) Vec {
	if d < 1 {
		panic("geom: SampleOnSphere requires d >= 1")
	}
	dst = grow(dst, d)
	if d == 1 {
		if r.Float64() < 0.5 {
			dst[0] = -1
		} else {
			dst[0] = 1
		}
		return dst
	}
	for {
		var n2 float64
		for i := range dst {
			dst[i] = r.NormFloat64()
			n2 += dst[i] * dst[i]
		}
		if n2 > 1e-20 {
			dst.ScaleInPlace(1 / math.Sqrt(n2))
			return dst
		}
	}
}

// SampleInBall returns a uniformly distributed point inside the unit
// d-ball, via surface sample scaled by U^(1/d).
func SampleInBall(d int, r *rng.Stream) Vec {
	s := SampleOnSphere(d, r)
	return s.Scale(math.Pow(r.Float64(), 1/float64(d)))
}

// FibonacciSphere returns n nearly-uniform deterministic points on the
// 2-sphere in 3D (the Fibonacci lattice). Useful for reproducible radial
// subdivisions independent of a random stream.
func FibonacciSphere(n int) []Vec {
	pts := make([]Vec, n)
	golden := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < n; i++ {
		y := 1 - 2*(float64(i)+0.5)/float64(n)
		r := math.Sqrt(1 - y*y)
		th := golden * float64(i)
		pts[i] = V(r*math.Cos(th), y, r*math.Sin(th))
	}
	return pts
}

// CirclePoints returns n evenly spaced unit vectors in 2D starting at
// angle phase.
func CirclePoints(n int, phase float64) []Vec {
	pts := make([]Vec, n)
	for i := 0; i < n; i++ {
		a := phase + 2*math.Pi*float64(i)/float64(n)
		pts[i] = V(math.Cos(a), math.Sin(a))
	}
	return pts
}

// AngleBetween returns the angle in radians between unit-or-not vectors
// u and v, clamped for numeric safety.
func AngleBetween(u, v Vec) float64 {
	nu, nv := u.Norm(), v.Norm()
	if nu == 0 || nv == 0 {
		return 0
	}
	c := u.Dot(v) / (nu * nv)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}
