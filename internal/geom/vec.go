// Package geom provides the d-dimensional geometric primitives underlying
// the motion planning stack: vectors, axis-aligned boxes, segments, rays,
// quaternion rotations, and sampling on hyperspheres.
//
// Everything operates on float64 slices so the same code serves 2D and 3D
// workspaces as well as higher-dimensional configuration spaces.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Vec is a point or direction in d-dimensional space.
type Vec []float64

// NewVec returns a zero vector of dimension d.
func NewVec(d int) Vec { return make(Vec, d) }

// V constructs a vector from its components.
func V(xs ...float64) Vec { return Vec(xs) }

// Dim returns the dimension of v.
func (v Vec) Dim() int { return len(v) }

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec {
	c := make(Vec, len(v))
	for i := range v {
		c[i] = v[i] + w[i]
	}
	return c
}

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec {
	c := make(Vec, len(v))
	for i := range v {
		c[i] = v[i] - w[i]
	}
	return c
}

// Scale returns s * v.
func (v Vec) Scale(s float64) Vec {
	c := make(Vec, len(v))
	for i := range v {
		c[i] = s * v[i]
	}
	return c
}

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) float64 {
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return math.Sqrt(v.Dist2(w)) }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec) Dist2(w Vec) float64 {
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// Unit returns v normalized to unit length. A zero vector is returned
// unchanged.
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n == 0 {
		return v.Clone()
	}
	return v.Scale(1 / n)
}

// Lerp returns the linear interpolation (1-t)*v + t*w.
func (v Vec) Lerp(w Vec, t float64) Vec {
	c := make(Vec, len(v))
	for i := range v {
		c[i] = v[i] + t*(w[i]-v[i])
	}
	return c
}

// Equal reports whether v and w are component-wise equal within eps.
func (v Vec) Equal(w Vec, eps float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > eps {
			return false
		}
	}
	return true
}

// Cross returns the 3D cross product v × w. It panics unless both vectors
// are 3-dimensional.
func (v Vec) Cross(w Vec) Vec {
	if len(v) != 3 || len(w) != 3 {
		panic("geom: Cross requires 3D vectors")
	}
	return Vec{
		v[1]*w[2] - v[2]*w[1],
		v[2]*w[0] - v[0]*w[2],
		v[0]*w[1] - v[1]*w[0],
	}
}

// String formats v as "(x, y, ...)" with compact precision.
func (v Vec) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.4g", x)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
