package geom

import (
	"math"
	"testing"
	"testing/quick"

	"parmp/internal/rng"
)

func TestVecArithmetic(t *testing.T) {
	v := V(1, 2, 3)
	w := V(4, 5, 6)
	if got := v.Add(w); !got.Equal(V(5, 7, 9), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(V(3, 3, 3), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(V(2, 4, 6), 0) {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestVecNormDist(t *testing.T) {
	v := V(3, 4)
	if v.Norm() != 5 {
		t.Fatalf("Norm = %v", v.Norm())
	}
	if v.Dist(V(0, 0)) != 5 {
		t.Fatalf("Dist = %v", v.Dist(V(0, 0)))
	}
	if u := v.Unit(); math.Abs(u.Norm()-1) > 1e-12 {
		t.Fatalf("Unit norm = %v", u.Norm())
	}
	z := V(0, 0)
	if !z.Unit().Equal(z, 0) {
		t.Fatal("Unit of zero vector should be zero")
	}
}

func TestVecLerpEndpoints(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 1e6), math.Mod(b, 1e6)
		if math.IsNaN(a) || math.IsNaN(b) {
			a, b = 0, 0
		}
		v, w := V(a, b), V(b, a)
		return v.Lerp(w, 0).Equal(v, 1e-6) && v.Lerp(w, 1).Equal(w, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCross(t *testing.T) {
	got := V(1, 0, 0).Cross(V(0, 1, 0))
	if !got.Equal(V(0, 0, 1), 1e-12) {
		t.Fatalf("Cross = %v", got)
	}
	// Anti-commutativity property.
	f := func(a, b, c, d, e, g float64) bool {
		u, v := V(a, b, c), V(d, e, g)
		return u.Cross(v).Equal(v.Cross(u).Scale(-1), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAABBContains(t *testing.T) {
	b := Box2(0, 0, 1, 1)
	if !b.Contains(V(0.5, 0.5)) || !b.Contains(V(0, 0)) || !b.Contains(V(1, 1)) {
		t.Fatal("boundary/interior points should be contained")
	}
	if b.Contains(V(1.01, 0.5)) || b.Contains(V(-0.01, 0.5)) {
		t.Fatal("outside points should not be contained")
	}
	if b.ContainsOpen(V(0, 0.5)) {
		t.Fatal("boundary not strictly inside")
	}
}

func TestAABBVolumeCenter(t *testing.T) {
	b := Box3(0, 0, 0, 2, 3, 4)
	if b.Volume() != 24 {
		t.Fatalf("Volume = %v", b.Volume())
	}
	if !b.Center().Equal(V(1, 1.5, 2), 1e-12) {
		t.Fatalf("Center = %v", b.Center())
	}
	if !b.Extent().Equal(V(2, 3, 4), 1e-12) {
		t.Fatalf("Extent = %v", b.Extent())
	}
}

func TestAABBIntersection(t *testing.T) {
	a := Box2(0, 0, 2, 2)
	b := Box2(1, 1, 3, 3)
	if !a.Intersects(b) {
		t.Fatal("overlapping boxes should intersect")
	}
	inter, ok := a.Intersection(b)
	if !ok || inter.Volume() != 1 {
		t.Fatalf("Intersection = %v ok=%v", inter, ok)
	}
	if got := a.IntersectionVolume(b); got != 1 {
		t.Fatalf("IntersectionVolume = %v", got)
	}
	c := Box2(5, 5, 6, 6)
	if a.Intersects(c) {
		t.Fatal("disjoint boxes should not intersect")
	}
	if a.IntersectionVolume(c) != 0 {
		t.Fatal("disjoint intersection volume should be 0")
	}
}

func TestAABBIntersectionVolumeSymmetric(t *testing.T) {
	f := func(x0, y0, x1, y1 float64) bool {
		lo := V(math.Min(x0, x1), math.Min(y0, y1))
		hi := V(math.Max(x0, x1), math.Max(y0, y1))
		a := NewAABB(lo, hi)
		b := Box2(-1, -1, 1, 1)
		return math.Abs(a.IntersectionVolume(b)-b.IntersectionVolume(a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAABBExpandClamp(t *testing.T) {
	b := Box2(0, 0, 1, 1)
	e := b.Expand(0.5)
	if !e.Lo.Equal(V(-0.5, -0.5), 1e-12) || !e.Hi.Equal(V(1.5, 1.5), 1e-12) {
		t.Fatalf("Expand = %v", e)
	}
	s := b.Expand(-1) // over-shrink collapses to center
	if !s.Lo.Equal(V(0.5, 0.5), 1e-12) || !s.Hi.Equal(V(0.5, 0.5), 1e-12) {
		t.Fatalf("over-shrink = %v", s)
	}
	if got := b.Clamp(V(5, -5)); !got.Equal(V(1, 0), 1e-12) {
		t.Fatalf("Clamp = %v", got)
	}
}

func TestAABBDistanceTo(t *testing.T) {
	b := Box2(0, 0, 1, 1)
	if b.DistanceTo(V(0.5, 0.5)) != 0 {
		t.Fatal("inside distance should be 0")
	}
	if d := b.DistanceTo(V(2, 1)); math.Abs(d-1) > 1e-12 {
		t.Fatalf("edge distance = %v", d)
	}
	if d := b.DistanceTo(V(2, 2)); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("corner distance = %v", d)
	}
}

func TestSegmentIntersects(t *testing.T) {
	b := Box2(1, 1, 2, 2)
	cases := []struct {
		a, c Vec
		want bool
	}{
		{V(0, 0), V(3, 3), true},         // diagonal through
		{V(0, 0), V(0.5, 0.5), false},    // stops short
		{V(1.5, 0), V(1.5, 3), true},     // vertical through
		{V(0, 0), V(3, 0), false},        // passes below
		{V(1.5, 1.5), V(1.6, 1.6), true}, // fully inside
		{V(0, 1), V(1, 1), true},         // touches corner edge
	}
	for i, c := range cases {
		if got := b.SegmentIntersects(c.a, c.c); got != c.want {
			t.Fatalf("case %d: SegmentIntersects(%v,%v) = %v, want %v", i, c.a, c.c, got, c.want)
		}
	}
}

func TestRayEnter(t *testing.T) {
	b := Box2(1, -1, 2, 1)
	tEnter, ok := b.RayEnter(V(0, 0), V(1, 0))
	if !ok || math.Abs(tEnter-1) > 1e-12 {
		t.Fatalf("RayEnter = %v ok=%v", tEnter, ok)
	}
	if _, ok := b.RayEnter(V(0, 0), V(-1, 0)); ok {
		t.Fatal("ray pointing away should miss")
	}
	tEnter, ok = b.RayEnter(V(1.5, 0), V(1, 0))
	if !ok || tEnter != 0 {
		t.Fatalf("ray starting inside: t=%v ok=%v", tEnter, ok)
	}
}

func TestQuatRotate(t *testing.T) {
	q := QuatFromAxisAngle(V(0, 0, 1), math.Pi/2)
	got := q.Rotate(V(1, 0, 0))
	if !got.Equal(V(0, 1, 0), 1e-12) {
		t.Fatalf("Rotate = %v", got)
	}
}

func TestQuatComposition(t *testing.T) {
	q1 := QuatFromAxisAngle(V(0, 0, 1), math.Pi/2)
	q2 := QuatFromAxisAngle(V(1, 0, 0), math.Pi/2)
	v := V(0, 1, 0)
	seq := q1.Rotate(q2.Rotate(v))
	comp := q1.Mul(q2).Rotate(v)
	if !seq.Equal(comp, 1e-12) {
		t.Fatalf("composition mismatch: %v vs %v", seq, comp)
	}
}

func TestQuatConjInverse(t *testing.T) {
	q := QuatFromEuler(0.3, -0.7, 1.1)
	v := V(1, 2, 3)
	back := q.Conj().Rotate(q.Rotate(v))
	if !back.Equal(v, 1e-12) {
		t.Fatalf("conjugate did not invert: %v", back)
	}
}

func TestQuatRotationPreservesNorm(t *testing.T) {
	clamp := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 100)
	}
	f := func(roll, pitch, yaw, x, y, z float64) bool {
		q := QuatFromEuler(clamp(roll), clamp(pitch), clamp(yaw))
		v := V(clamp(x), clamp(y), clamp(z))
		return math.Abs(q.Rotate(v).Norm()-v.Norm()) < 1e-6*(1+v.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransformApplyCompose(t *testing.T) {
	a := Transform{R: QuatFromAxisAngle(V(0, 0, 1), math.Pi/2), T: V(1, 0, 0)}
	b := Transform{R: QuatIdentity, T: V(0, 1, 0)}
	p := V(1, 0, 0)
	seq := a.Apply(b.Apply(p))
	comp := a.Compose(b).Apply(p)
	if !seq.Equal(comp, 1e-12) {
		t.Fatalf("compose mismatch: %v vs %v", seq, comp)
	}
}

func TestSampleOnSphereUnit(t *testing.T) {
	r := rng.New(1)
	for d := 1; d <= 6; d++ {
		for i := 0; i < 200; i++ {
			p := SampleOnSphere(d, r)
			if math.Abs(p.Norm()-1) > 1e-9 {
				t.Fatalf("d=%d sample norm %v != 1", d, p.Norm())
			}
		}
	}
}

func TestSampleInBallInside(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 1000; i++ {
		p := SampleInBall(3, r)
		if p.Norm() > 1+1e-12 {
			t.Fatalf("ball sample outside: %v", p.Norm())
		}
	}
}

func TestSampleOnSphereMeanNearZero(t *testing.T) {
	r := rng.New(3)
	mean := NewVec(3)
	const n = 20000
	for i := 0; i < n; i++ {
		mean = mean.Add(SampleOnSphere(3, r))
	}
	mean = mean.Scale(1.0 / n)
	if mean.Norm() > 0.02 {
		t.Fatalf("sphere sample mean %v not near origin", mean)
	}
}

func TestFibonacciSphere(t *testing.T) {
	pts := FibonacciSphere(64)
	if len(pts) != 64 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.Norm()-1) > 1e-9 {
			t.Fatalf("fibonacci point norm %v", p.Norm())
		}
	}
	// Distinctness.
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Equal(pts[j], 1e-9) {
				t.Fatalf("points %d and %d coincide", i, j)
			}
		}
	}
}

func TestCirclePoints(t *testing.T) {
	pts := CirclePoints(4, 0)
	want := []Vec{V(1, 0), V(0, 1), V(-1, 0), V(0, -1)}
	for i := range pts {
		if !pts[i].Equal(want[i], 1e-12) {
			t.Fatalf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestAngleBetween(t *testing.T) {
	if a := AngleBetween(V(1, 0), V(0, 1)); math.Abs(a-math.Pi/2) > 1e-12 {
		t.Fatalf("angle = %v", a)
	}
	if a := AngleBetween(V(1, 0), V(1, 0)); a != 0 {
		t.Fatalf("self angle = %v", a)
	}
	if a := AngleBetween(V(1, 0), V(-2, 0)); math.Abs(a-math.Pi) > 1e-12 {
		t.Fatalf("opposite angle = %v", a)
	}
	if a := AngleBetween(V(0, 0), V(1, 0)); a != 0 {
		t.Fatalf("zero-vector angle = %v", a)
	}
}

func TestNewAABBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted AABB should panic")
		}
	}()
	NewAABB(V(1, 0), V(0, 1))
}
