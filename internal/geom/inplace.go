package geom

// In-place and destination-passing variants of the Vec operations used on
// the planners' hot paths. They exist so per-worker scratch buffers can
// absorb what would otherwise be one allocation per interpolation step or
// per collision probe.

// grow returns dst resized to d, reallocating only when capacity is
// insufficient.
func grow(dst Vec, d int) Vec {
	if cap(dst) < d {
		return make(Vec, d)
	}
	return dst[:d]
}

// CopyInto writes src into dst (growing it as needed) and returns dst.
func CopyInto(dst, src Vec) Vec {
	dst = grow(dst, len(src))
	copy(dst, src)
	return dst
}

// LerpInto writes (1-t)*a + t*b into dst (growing it as needed) and
// returns dst. dst may alias a or b.
func LerpInto(dst, a, b Vec, t float64) Vec {
	dst = grow(dst, len(a))
	for i := range a {
		dst[i] = a[i] + t*(b[i]-a[i])
	}
	return dst
}

// AddInPlace accumulates w into v component-wise.
func (v Vec) AddInPlace(w Vec) {
	for i := range v {
		v[i] += w[i]
	}
}

// ScaleInPlace multiplies v by s component-wise.
func (v Vec) ScaleInPlace(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// RotateInto writes the rotation of 3D vector v into dst (growing it as
// needed) and returns dst. dst may alias v.
func (q Quat) RotateInto(dst, v Vec) Vec {
	dst = grow(dst, 3)
	tx := 2 * (q.Y*v[2] - q.Z*v[1])
	ty := 2 * (q.Z*v[0] - q.X*v[2])
	tz := 2 * (q.X*v[1] - q.Y*v[0])
	x := v[0] + q.W*tx + q.Y*tz - q.Z*ty
	y := v[1] + q.W*ty + q.Z*tx - q.X*tz
	z := v[2] + q.W*tz + q.X*ty - q.Y*tx
	dst[0], dst[1], dst[2] = x, y, z
	return dst
}

// ApplyInto writes the body-to-world mapping of p into dst (growing it as
// needed) and returns dst. dst may alias p.
func (t Transform) ApplyInto(dst, p Vec) Vec {
	dst = t.R.RotateInto(dst, p)
	dst.AddInPlace(t.T)
	return dst
}
