package geom

import (
	"fmt"
	"math"
)

// AABB is a d-dimensional axis-aligned box [Lo, Hi].
type AABB struct {
	Lo, Hi Vec
}

// NewAABB returns the box spanning [lo, hi]. It panics if dimensions differ
// or any lo component exceeds the matching hi component.
func NewAABB(lo, hi Vec) AABB {
	if len(lo) != len(hi) {
		panic("geom: AABB corner dimensions differ")
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("geom: AABB lo[%d]=%g > hi[%d]=%g", i, lo[i], i, hi[i]))
		}
	}
	return AABB{Lo: lo.Clone(), Hi: hi.Clone()}
}

// Box2 returns a 2D box.
func Box2(x0, y0, x1, y1 float64) AABB {
	return NewAABB(V(x0, y0), V(x1, y1))
}

// Box3 returns a 3D box.
func Box3(x0, y0, z0, x1, y1, z1 float64) AABB {
	return NewAABB(V(x0, y0, z0), V(x1, y1, z1))
}

// Dim returns the box dimension.
func (b AABB) Dim() int { return len(b.Lo) }

// Contains reports whether p lies inside b (boundary inclusive).
func (b AABB) Contains(p Vec) bool {
	for i := range b.Lo {
		if p[i] < b.Lo[i] || p[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsOpen reports whether p lies strictly inside b.
func (b AABB) ContainsOpen(p Vec) bool {
	for i := range b.Lo {
		if p[i] <= b.Lo[i] || p[i] >= b.Hi[i] {
			return false
		}
	}
	return true
}

// Center returns the midpoint of b.
func (b AABB) Center() Vec {
	c := make(Vec, len(b.Lo))
	for i := range c {
		c[i] = 0.5 * (b.Lo[i] + b.Hi[i])
	}
	return c
}

// Extent returns the side lengths of b.
func (b AABB) Extent() Vec {
	e := make(Vec, len(b.Lo))
	for i := range e {
		e[i] = b.Hi[i] - b.Lo[i]
	}
	return e
}

// Volume returns the d-dimensional volume of b.
func (b AABB) Volume() float64 {
	v := 1.0
	for i := range b.Lo {
		v *= b.Hi[i] - b.Lo[i]
	}
	return v
}

// Intersects reports whether b and o overlap (boundary touching counts).
func (b AABB) Intersects(o AABB) bool {
	for i := range b.Lo {
		if b.Hi[i] < o.Lo[i] || o.Hi[i] < b.Lo[i] {
			return false
		}
	}
	return true
}

// Intersection returns the overlap of b and o and whether it is non-empty.
// The returned box may be degenerate (zero width) when boxes merely touch.
func (b AABB) Intersection(o AABB) (AABB, bool) {
	lo := make(Vec, len(b.Lo))
	hi := make(Vec, len(b.Lo))
	for i := range b.Lo {
		lo[i] = math.Max(b.Lo[i], o.Lo[i])
		hi[i] = math.Min(b.Hi[i], o.Hi[i])
		if lo[i] > hi[i] {
			return AABB{}, false
		}
	}
	return AABB{Lo: lo, Hi: hi}, true
}

// IntersectionVolume returns the volume of the overlap of b and o, or 0 if
// they are disjoint.
func (b AABB) IntersectionVolume(o AABB) float64 {
	v := 1.0
	for i := range b.Lo {
		lo := math.Max(b.Lo[i], o.Lo[i])
		hi := math.Min(b.Hi[i], o.Hi[i])
		if lo >= hi {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Expand returns b grown by margin on every side (shrunk if negative;
// sides collapse to the center rather than inverting).
func (b AABB) Expand(margin float64) AABB {
	lo := make(Vec, len(b.Lo))
	hi := make(Vec, len(b.Lo))
	for i := range b.Lo {
		lo[i] = b.Lo[i] - margin
		hi[i] = b.Hi[i] + margin
		if lo[i] > hi[i] {
			m := 0.5 * (b.Lo[i] + b.Hi[i])
			lo[i], hi[i] = m, m
		}
	}
	return AABB{Lo: lo, Hi: hi}
}

// Clamp returns p with each component clamped into b.
func (b AABB) Clamp(p Vec) Vec {
	c := make(Vec, len(p))
	for i := range p {
		c[i] = math.Min(math.Max(p[i], b.Lo[i]), b.Hi[i])
	}
	return c
}

// DistanceTo returns the Euclidean distance from p to the closest point of
// b; 0 if p is inside.
func (b AABB) DistanceTo(p Vec) float64 {
	var s float64
	for i := range p {
		if p[i] < b.Lo[i] {
			d := b.Lo[i] - p[i]
			s += d * d
		} else if p[i] > b.Hi[i] {
			d := p[i] - b.Hi[i]
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// SegmentIntersects reports whether the segment a→b2 passes through the box,
// using the slab method. Touching the boundary counts as intersecting.
func (b AABB) SegmentIntersects(a, b2 Vec) bool {
	tMin, tMax := 0.0, 1.0
	for i := range b.Lo {
		d := b2[i] - a[i]
		if math.Abs(d) < 1e-15 {
			if a[i] < b.Lo[i] || a[i] > b.Hi[i] {
				return false
			}
			continue
		}
		t1 := (b.Lo[i] - a[i]) / d
		t2 := (b.Hi[i] - a[i]) / d
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		tMin = math.Max(tMin, t1)
		tMax = math.Min(tMax, t2)
		if tMin > tMax {
			return false
		}
	}
	return true
}

// RayEnter returns the parameter t >= 0 at which the ray origin+t*dir first
// enters the box, and ok=false if the ray misses it. A ray starting inside
// returns t=0.
func (b AABB) RayEnter(origin, dir Vec) (float64, bool) {
	tMin, tMax := 0.0, math.Inf(1)
	for i := range b.Lo {
		if math.Abs(dir[i]) < 1e-15 {
			if origin[i] < b.Lo[i] || origin[i] > b.Hi[i] {
				return 0, false
			}
			continue
		}
		t1 := (b.Lo[i] - origin[i]) / dir[i]
		t2 := (b.Hi[i] - origin[i]) / dir[i]
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		tMin = math.Max(tMin, t1)
		tMax = math.Min(tMax, t2)
		if tMin > tMax {
			return 0, false
		}
	}
	return tMin, true
}

// String formats the box as "[lo..hi]".
func (b AABB) String() string {
	return fmt.Sprintf("[%v..%v]", b.Lo, b.Hi)
}
