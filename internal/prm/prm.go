// Package prm implements the sequential Probabilistic Roadmap Method
// (Kavraki et al., 1996) used inside each subdivision region, plus the
// roadmap data type and query answering.
//
// The parallel driver in internal/core invokes BuildRegion once per
// region (Algorithm 1, line 8) and ConnectBoundary for each adjacent
// region pair (lines 10–12). All collision and nearest-neighbour work is
// metered through cspace.Counters so the load-balancing layers can charge
// virtual processors for the work actually performed.
package prm

import (
	"parmp/internal/cspace"
	"parmp/internal/geom"
	"parmp/internal/graph"
	"parmp/internal/knn"
	"parmp/internal/rng"
)

// Node is a roadmap vertex: a free configuration tagged with the region
// that produced it.
type Node struct {
	Q      cspace.Config
	Region int
}

// Roadmap is a graph over free configurations; edge weights are metric
// distances.
type Roadmap struct {
	G *graph.Graph[Node]
}

// NewRoadmap returns an empty roadmap.
func NewRoadmap() *Roadmap {
	return &Roadmap{G: graph.New[Node](0)}
}

// AddNode appends a roadmap vertex.
func (m *Roadmap) AddNode(n Node) graph.ID { return m.G.AddVertex(n) }

// NumNodes returns the vertex count.
func (m *Roadmap) NumNodes() int { return m.G.NumVertices() }

// NumEdges returns the edge count.
func (m *Roadmap) NumEdges() int { return m.G.NumEdges() }

// Params configures the sequential PRM planner.
type Params struct {
	// SamplesPerRegion is the number of sampling attempts per region;
	// valid configurations among them become roadmap nodes.
	SamplesPerRegion int
	// K is the number of nearest neighbours per connection attempt.
	K int
	// MaxTries bounds sampling attempts per requested sample (default 20)
	// for SampleFreeIn-style callers.
	MaxTries int
	// Sampler generates candidates (default uniform). Narrow-passage
	// samplers (Gaussian, bridge) concentrate nodes where connectivity is
	// hard, at higher collision cost per attempt.
	Sampler cspace.Sampler
}

func (p Params) sampler() cspace.Sampler {
	if p.Sampler == nil {
		return cspace.UniformSampler{}
	}
	return p.Sampler
}

func (p Params) maxTries() int {
	if p.MaxTries <= 0 {
		return 20
	}
	return p.MaxTries
}

// RegionResult is the product of planning one region.
type RegionResult struct {
	Nodes []Node          // free configurations generated in the region
	Edges [][2]int        // local indices into Nodes
	Work  cspace.Counters // work performed, for load accounting
}

// SampleRegion draws p.SamplesPerRegion uniform configurations in box and
// keeps the valid ones — the cheap first sub-phase whose per-region node
// counts are the paper's repartitioning weight for PRM. Fixed-attempt
// sampling makes a region's node count proportional to its free volume,
// which is the load model the paper's theoretical analysis assumes ("the
// total load that the region will experience is proportional to V_free").
func SampleRegion(s *cspace.Space, box geom.AABB, regionID int, p Params, r *rng.Stream) ([]Node, cspace.Counters) {
	a := GetArena()
	defer PutArena(a)
	return SampleRegionArena(s, box, regionID, p, r, a)
}

// SampleRegionArena is SampleRegion through an explicit arena. Uniform
// sampling draws candidates into the arena's scratch configuration and
// clones only the accepted ones; custom samplers keep their allocating
// contract but validity still routes through the collision scratch.
func SampleRegionArena(s *cspace.Space, box geom.AABB, regionID int, p Params, r *rng.Stream, a *Arena) ([]Node, cspace.Counters) {
	var work cspace.Counters
	nodes := make([]Node, 0, p.SamplesPerRegion)
	if _, uniform := p.sampler().(cspace.UniformSampler); uniform {
		for i := 0; i < p.SamplesPerRegion; i++ {
			a.sample = s.SampleInInto(a.sample, box, r, &work)
			if s.ValidS(a.sample, &a.sc, &work) {
				nodes = append(nodes, Node{Q: a.sample.Clone(), Region: regionID})
			}
		}
		return nodes, work
	}
	sampler := p.sampler()
	for i := 0; i < p.SamplesPerRegion; i++ {
		q, ok := sampler.Sample(s, box, r, &work)
		if ok {
			nodes = append(nodes, Node{Q: q, Region: regionID})
		}
	}
	return nodes, work
}

// ConnectRegion connects each node to its K nearest neighbours within the
// region with the local planner — the expensive sub-phase ("the most time
// consuming phase of the entire computation", ~90 % of total execution in
// the paper's breakdown). Every k-nearest pair is attempted exactly once
// (the paper's PRM attempts all k-nearest connections; no
// connected-component shortcut).
func ConnectRegion(s *cspace.Space, nodes []Node, p Params) ([][2]int, cspace.Counters) {
	a := GetArena()
	defer PutArena(a)
	return ConnectRegionArena(s, nodes, p, a)
}

// ConnectRegionArena is ConnectRegion through an explicit arena: the
// point slice, kd-tree, query scratch, dedup set and edge accumulator
// all live in the arena, so the only retained allocation is the returned
// edge list.
func ConnectRegionArena(s *cspace.Space, nodes []Node, p Params, a *Arena) ([][2]int, cspace.Counters) {
	return ConnectRegionIncrementalArena(s, nodes, 0, p, a)
}

// ConnectRegionIncremental is ConnectRegionIncrementalArena through a
// pooled arena.
func ConnectRegionIncremental(s *cspace.Space, nodes []Node, firstNew int, p Params) ([][2]int, cspace.Counters) {
	a := GetArena()
	defer PutArena(a)
	return ConnectRegionIncrementalArena(s, nodes, firstNew, p, a)
}

// ConnectRegionIncrementalArena is the round-growth variant of
// ConnectRegionArena: only nodes[firstNew:] issue kNN queries, against
// the full node set, so a later engine round pays for its new samples
// without re-attempting the previous rounds' pairs. firstNew = 0 is
// exactly ConnectRegionArena (the one-shot planners route through here),
// so the first round of an engine run is bit-identical to the one-shot
// pipeline.
func ConnectRegionIncrementalArena(s *cspace.Space, nodes []Node, firstNew int, p Params, a *Arena) ([][2]int, cspace.Counters) {
	var work cspace.Counters
	if len(nodes) < 2 || firstNew >= len(nodes) {
		return nil, work
	}
	pts := a.points(nodes)
	a.tree.Reset(pts)
	seen := a.resetSeen()
	a.edges = a.edges[:0]
	k := p.K
	if k > len(pts)-1 {
		k = len(pts) - 1
	}
	// All kNN queries run as one batch through shared scratch (the tree
	// is static during connection), then candidate edges validate through
	// the batched SoA collision kernels.
	var evals int
	a.hits, a.offs, evals = a.tree.NearestBatch(&a.qsc, pts[firstNew:], k, firstNew, a.hits[:0], a.offs)
	work.KNNQueries += int64(len(pts) - firstNew)
	work.KNNEvals += int64(evals)
	for i := firstNew; i < len(pts); i++ {
		j := i - firstNew
		for _, h := range a.hits[a.offs[j]:a.offs[j+1]] {
			x, y := i, h.Index
			if x > y {
				x, y = y, x
			}
			key := [2]int{x, y}
			if seen[key] {
				continue
			}
			seen[key] = true
			if s.LocalPlanBatch(pts[x], pts[y], &a.bt, &work) {
				a.edges = append(a.edges, key)
			}
		}
	}
	return copyEdges(a.edges), work
}

// BuildRegion runs sequential PRM restricted to box (the region's
// expanded sampling volume): SampleRegion followed by ConnectRegion.
// Deterministic given the stream.
func BuildRegion(s *cspace.Space, box geom.AABB, regionID int, p Params, r *rng.Stream) RegionResult {
	a := GetArena()
	defer PutArena(a)
	var res RegionResult
	res.Nodes, res.Work = SampleRegionArena(s, box, regionID, p, r, a)
	edges, connectWork := ConnectRegionArena(s, res.Nodes, p, a)
	res.Edges = edges
	res.Work.Add(connectWork)
	return res
}

// BoundaryResult is the product of connecting two adjacent regions.
type BoundaryResult struct {
	// Edges are (index into a's nodes, index into b's nodes) pairs that
	// were successfully connected.
	Edges [][2]int
	Work  cspace.Counters
	// Attempts is the number of cross-region connection attempts, each of
	// which is a remote access when the regions live on different
	// processors.
	Attempts int
}

// ConnectBoundary attempts connections between the roadmaps of two
// adjacent regions: the maxSources nodes of region a closest to region
// b's roadmap (the boundary frontier — only samples near the shared
// boundary participate, which is what the inter-region overlap exists
// for) each try the local planner against their k nearest nodes in b.
// maxSources <= 0 uses every node of a.
func ConnectBoundary(s *cspace.Space, aNodes, bNodes []Node, k, maxSources int) BoundaryResult {
	ar := GetArena()
	defer PutArena(ar)
	return ConnectBoundaryArena(s, aNodes, bNodes, k, maxSources, ar)
}

// ConnectBoundaryArena is ConnectBoundary through an explicit arena. The
// frontier centroid accumulates in place in a reused buffer (the
// allocating version rebuilt the centroid vector once per added point),
// and both regions' point slices, the kd-tree and all kNN scratch come
// from the arena.
func ConnectBoundaryArena(s *cspace.Space, aNodes, bNodes []Node, k, maxSources int, ar *Arena) BoundaryResult {
	var res BoundaryResult
	if len(aNodes) == 0 || len(bNodes) == 0 {
		return res
	}
	bPts := ar.points(bNodes)
	ar.tree.Reset(bPts)
	if k <= 0 {
		k = 1
	}

	// Frontier selection: a's nodes nearest to the centroid of b.
	if cap(ar.sources) < len(aNodes) {
		ar.sources = make([]int, 0, len(aNodes))
	}
	sources := ar.sources[:0]
	if maxSources > 0 && maxSources < len(aNodes) {
		dim := len(bPts[0])
		if cap(ar.centroid) < dim {
			ar.centroid = make(geom.Vec, dim)
		}
		centroid := ar.centroid[:dim]
		for i := range centroid {
			centroid[i] = 0
		}
		for _, p := range bPts {
			centroid.AddInPlace(p)
		}
		centroid.ScaleInPlace(1 / float64(len(bPts)))
		aPts := ar.auxPoints(aNodes)
		var hits []knn.Result
		hits, _ = knn.BruteNearestInto(&ar.qsc, aPts, centroid, maxSources, -1, ar.hits[:0])
		ar.hits = hits
		res.Work.KNNQueries++
		res.Work.KNNEvals += int64(len(aPts))
		for _, h := range hits {
			sources = append(sources, h.Index)
		}
	} else {
		for i := range aNodes {
			sources = append(sources, i)
		}
	}
	ar.sources = sources

	ar.edges = ar.edges[:0]
	for _, i := range sources {
		var evals int
		ar.hits, evals = ar.tree.NearestInto(&ar.qsc, aNodes[i].Q, k, -1, ar.hits[:0])
		res.Work.KNNQueries++
		res.Work.KNNEvals += int64(evals)
		for _, h := range ar.hits {
			res.Attempts++
			if s.LocalPlanBatch(aNodes[i].Q, bNodes[h.Index].Q, &ar.bt, &res.Work) {
				ar.edges = append(ar.edges, [2]int{i, h.Index})
				break // one bridge per source node suffices
			}
		}
	}
	res.Edges = copyEdges(ar.edges)
	return res
}

// Query connects start and goal to the roadmap (each to its k nearest
// nodes) and extracts a shortest path. It returns the configuration
// sequence including start and goal, and ok=false if no path exists.
// The roadmap is left unchanged on return, but it IS temporarily
// mutated (transient attachment vertices are added and removed), so
// concurrent callers must serialize.
//
// Deprecated: Query re-gathers every roadmap point and rebuilds the
// kd-tree per call. Build an Index once and use Index.Query, which is
// non-mutating, concurrency-safe and amortizes the build cost across
// calls. Every caller outside this function's own regression tests has
// been migrated (the public parmp.Query now routes through BuildIndex);
// Query will be removed together with the next roadmap-format change.
func Query(s *cspace.Space, m *Roadmap, start, goal cspace.Config, k int, c *cspace.Counters) ([]cspace.Config, bool) {
	if !s.Valid(start, c) || !s.Valid(goal, c) {
		return nil, false
	}
	pts := make([]geom.Vec, m.NumNodes())
	for i := 0; i < m.NumNodes(); i++ {
		pts[i] = m.G.Vertex(graph.ID(i)).Q
	}
	// Full-roadmap trees are the largest built anywhere; the parallel
	// build produces a bit-identical tree faster for big maps.
	tree := knn.BuildParallel(pts, 0)

	attach := func(q cspace.Config) (graph.ID, bool) {
		id := m.G.AddVertex(Node{Q: q, Region: -1})
		hits, evals := tree.Nearest(q, k)
		if c != nil {
			c.KNNQueries++
			c.KNNEvals += int64(evals)
		}
		connected := false
		for _, h := range hits {
			if s.LocalPlan(q, pts[h.Index], c) {
				m.G.AddEdge(id, graph.ID(h.Index), s.Distance(q, pts[h.Index]))
				connected = true
			}
		}
		return id, connected
	}

	sid, okS := attach(start)
	gid, okG := attach(goal)
	// Remove the transient vertices before returning (goal first: it was
	// added last).
	defer func() {
		m.G.RemoveLastVertex()
		m.G.RemoveLastVertex()
	}()
	if !okS || !okG {
		return nil, false
	}
	ids, _, ok := m.G.ShortestPath(sid, gid)
	if !ok {
		return nil, false
	}
	path := make([]cspace.Config, len(ids))
	for i, id := range ids {
		path[i] = m.G.Vertex(id).Q.Clone()
	}
	return path, true
}
