package prm

import (
	"sync"
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/rng"
)

func regionsEqual(t *testing.T, got, want RegionResult) {
	t.Helper()
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("node count %d, want %d", len(got.Nodes), len(want.Nodes))
	}
	for i := range got.Nodes {
		if !got.Nodes[i].Q.Equal(want.Nodes[i].Q, 0) || got.Nodes[i].Region != want.Nodes[i].Region {
			t.Fatalf("node %d differs: %+v vs %+v", i, got.Nodes[i], want.Nodes[i])
		}
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("edge count %d, want %d", len(got.Edges), len(want.Edges))
	}
	for i := range got.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, got.Edges[i], want.Edges[i])
		}
	}
	if got.Work != want.Work {
		t.Fatalf("work differs: %+v vs %+v", got.Work, want.Work)
	}
}

// TestArenaReuseBitIdentical replays the same region many times through
// one deliberately dirty arena: every replay must reproduce the fresh
// arena's result bit for bit, or pooled state is leaking into results.
func TestArenaReuseBitIdentical(t *testing.T) {
	s := cspace.NewRigidBodySpace(env.MedCube(), cspace.NewRigidBox(0.03, 0.02, 0.01))
	box := geom.Box3(0, 0, 0, 1, 1, 1)
	p := Params{SamplesPerRegion: 40, K: 5}

	build := func(a *Arena, seed uint64) RegionResult {
		var res RegionResult
		r := rng.Derive(seed, 0)
		res.Nodes, res.Work = SampleRegionArena(s, box, 0, p, r, a)
		edges, cw := ConnectRegionArena(s, res.Nodes, p, a)
		res.Edges = edges
		res.Work.Add(cw)
		return res
	}

	dirty := GetArena()
	defer PutArena(dirty)
	for _, seed := range []uint64{3, 4, 5} {
		fresh := build(new(Arena), seed)
		for rep := 0; rep < 3; rep++ {
			regionsEqual(t, build(dirty, seed), fresh)
		}
	}
}

// TestArenaPoolConcurrent builds many regions concurrently through the
// shared arena pool and compares every result against its sequential
// twin. Run under -race this is the pooled-kernel safety test: arenas
// must never be visible to two tasks at once.
func TestArenaPoolConcurrent(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed30())
	box := geom.Box3(0, 0, 0, 1, 1, 1)
	p := Params{SamplesPerRegion: 30, K: 4}
	const regions = 24

	want := make([]RegionResult, regions)
	for i := range want {
		want[i] = BuildRegion(s, box, i, p, rng.Derive(99, uint64(i)))
	}

	got := make([]RegionResult, regions)
	var wg sync.WaitGroup
	for i := 0; i < regions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = BuildRegion(s, box, i, p, rng.Derive(99, uint64(i)))
		}(i)
	}
	wg.Wait()
	for i := range want {
		regionsEqual(t, got[i], want[i])
	}
}

// TestConnectBoundaryArenaReuse replays boundary connection through a
// dirty arena, including the frontier (maxSources) path whose centroid
// buffer is reused.
func TestConnectBoundaryArenaReuse(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed30())
	aNodes, _ := SampleRegion(s, geom.Box3(0, 0, 0, 0.5, 1, 1), 0, Params{SamplesPerRegion: 40}, rng.Derive(5, 0))
	bNodes, _ := SampleRegion(s, geom.Box3(0.5, 0, 0, 1, 1, 1), 1, Params{SamplesPerRegion: 40}, rng.Derive(5, 1))
	for _, maxSources := range []int{0, 8} {
		fresh := ConnectBoundaryArena(s, aNodes, bNodes, 3, maxSources, new(Arena))
		dirty := GetArena()
		for rep := 0; rep < 3; rep++ {
			got := ConnectBoundaryArena(s, aNodes, bNodes, 3, maxSources, dirty)
			if got.Attempts != fresh.Attempts || got.Work != fresh.Work || len(got.Edges) != len(fresh.Edges) {
				t.Fatalf("maxSources=%d rep %d: got %+v, want %+v", maxSources, rep, got, fresh)
			}
			for i := range got.Edges {
				if got.Edges[i] != fresh.Edges[i] {
					t.Fatalf("edge %d differs: %v vs %v", i, got.Edges[i], fresh.Edges[i])
				}
			}
		}
		PutArena(dirty)
	}
}
