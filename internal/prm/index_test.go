package prm

import (
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/graph"
	"parmp/internal/rng"
)

// buildTestRoadmap assembles a roadmap from one BuildRegion pass.
func buildTestRoadmap(t *testing.T, s *cspace.Space, samples int, seed uint64) *Roadmap {
	t.Helper()
	m := NewRoadmap()
	res := BuildRegion(s, geom.Box3(0, 0, 0, 1, 1, 1), 0, Params{SamplesPerRegion: samples, K: 6}, rng.New(seed))
	for _, n := range res.Nodes {
		m.AddNode(n)
	}
	for _, e := range res.Edges {
		m.G.AddEdge(graph.ID(e[0]), graph.ID(e[1]), s.Distance(res.Nodes[e[0]].Q, res.Nodes[e[1]].Q))
	}
	return m
}

func TestIndexQueryFindsValidPath(t *testing.T) {
	s := freeSpace()
	m := buildTestRoadmap(t, s, 60, 7)
	ix := BuildIndex(m)
	if ix.NumNodes() != m.NumNodes() {
		t.Fatalf("index has %d nodes for %d roadmap nodes", ix.NumNodes(), m.NumNodes())
	}
	start, goal := geom.V(0.05, 0.05, 0.05), geom.V(0.95, 0.95, 0.95)
	var c cspace.Counters
	path, ok := ix.Query(s, start, goal, 5, &c)
	if !ok {
		t.Fatal("query in free space should succeed")
	}
	if !path[0].Equal(start, 1e-12) || !path[len(path)-1].Equal(goal, 1e-12) {
		t.Fatal("path must run start to goal")
	}
	for i := 0; i+1 < len(path); i++ {
		if !s.LocalPlan(path[i], path[i+1], nil) {
			t.Fatalf("path hop %d invalid", i)
		}
	}
	if c.KNNQueries == 0 {
		t.Fatal("query work not metered")
	}
}

func TestIndexQueryMatchesLegacyQuery(t *testing.T) {
	// The index must agree with the mutating Query on success/failure
	// across environments and endpoints.
	cases := []struct {
		name  string
		space *cspace.Space
	}{
		{"free", freeSpace()},
		{"med-cube", cspace.NewPointSpace(env.MedCube())},
	}
	endpoints := [][2]geom.Vec{
		{geom.V(0.05, 0.05, 0.05), geom.V(0.95, 0.95, 0.95)},
		{geom.V(0.1, 0.9, 0.1), geom.V(0.9, 0.1, 0.9)},
		{geom.V(0.5, 0.5, 0.5), geom.V(0.95, 0.95, 0.95)}, // center is blocked in med-cube
	}
	for _, tc := range cases {
		m := buildTestRoadmap(t, tc.space, 80, 11)
		ix := BuildIndex(m)
		for i, ep := range endpoints {
			legacyPath, legacyOK := Query(tc.space, m, ep[0], ep[1], 4, nil)
			ixPath, ixOK := ix.Query(tc.space, ep[0], ep[1], 4, nil)
			if legacyOK != ixOK {
				t.Fatalf("%s endpoint %d: legacy ok=%v, index ok=%v", tc.name, i, legacyOK, ixOK)
			}
			if ixOK && (len(ixPath) < 2 || len(legacyPath) < 2) {
				t.Fatalf("%s endpoint %d: degenerate path", tc.name, i)
			}
		}
	}
}

func TestIndexQueryDisconnected(t *testing.T) {
	e := &env.Environment{
		Name:   "wall",
		Bounds: geom.Box3(0, 0, 0, 1, 1, 1),
		Obstacles: []env.Obstacle{
			env.BoxObstacle{Box: geom.Box3(0.45, 0, 0, 0.55, 1, 1)},
		},
	}
	s := cspace.NewPointSpace(e)
	m := NewRoadmap()
	m.AddNode(Node{Q: geom.V(0.1, 0.5, 0.5)})
	m.AddNode(Node{Q: geom.V(0.9, 0.5, 0.5)})
	ix := BuildIndex(m)
	if ix.Components() != 2 {
		t.Fatalf("components = %d, want 2", ix.Components())
	}
	if _, ok := ix.Query(s, geom.V(0.05, 0.5, 0.5), geom.V(0.95, 0.5, 0.5), 1, nil); ok {
		t.Fatal("wall-separated query must fail")
	}
}

func TestIndexQueryDoesNotMutate(t *testing.T) {
	s := freeSpace()
	m := buildTestRoadmap(t, s, 40, 21)
	ix := BuildIndex(m)
	nodes, edges := m.NumNodes(), m.NumEdges()
	for i := 0; i < 5; i++ {
		ix.Query(s, geom.V(0.1, 0.1, 0.1), geom.V(0.9, 0.9, 0.9), 4, nil)
	}
	if m.NumNodes() != nodes || m.NumEdges() != edges {
		t.Fatalf("index query mutated roadmap: %d/%d -> %d/%d", nodes, edges, m.NumNodes(), m.NumEdges())
	}
}

func TestIndexQueryEmptyRoadmap(t *testing.T) {
	s := freeSpace()
	ix := BuildIndex(NewRoadmap())
	if _, ok := ix.Query(s, geom.V(0.1, 0.1, 0.1), geom.V(0.9, 0.9, 0.9), 4, nil); ok {
		t.Fatal("empty roadmap query must fail")
	}
}

func TestConnectRegionIncrementalMatchesFull(t *testing.T) {
	// firstNew = 0 must be exactly the full connect (the one-shot path),
	// and an incremental pass over appended nodes must only produce edges
	// touching at least one new node.
	s := freeSpace()
	res := BuildRegion(s, geom.Box3(0, 0, 0, 1, 1, 1), 0, Params{SamplesPerRegion: 50, K: 4}, rng.New(3))
	p := Params{SamplesPerRegion: 50, K: 4}

	a := GetArena()
	defer PutArena(a)
	full, _ := ConnectRegionIncrementalArena(s, res.Nodes, 0, p, a)
	ref, _ := ConnectRegion(s, res.Nodes, p)
	if len(full) != len(ref) {
		t.Fatalf("firstNew=0 produced %d edges, full connect %d", len(full), len(ref))
	}
	for i := range full {
		if full[i] != ref[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, full[i], ref[i])
		}
	}

	// Append more nodes and connect incrementally.
	more := BuildRegion(s, geom.Box3(0, 0, 0, 1, 1, 1), 0, Params{SamplesPerRegion: 30, K: 4}, rng.New(4))
	firstNew := len(res.Nodes)
	all := append(append([]Node(nil), res.Nodes...), more.Nodes...)
	inc, _ := ConnectRegionIncrementalArena(s, all, firstNew, p, a)
	if len(inc) == 0 {
		t.Fatal("incremental connect found no edges in free space")
	}
	for _, e := range inc {
		if e[0] < firstNew && e[1] < firstNew {
			t.Fatalf("incremental edge %v touches only old nodes", e)
		}
	}
}
