package prm

import (
	"fmt"

	"parmp/internal/graph"
)

// Stats summarizes roadmap quality: connectivity is what decides whether
// queries succeed, and the component structure shows whether the
// subdivision's region-connection phase actually stitched the regional
// roadmaps together.
type Stats struct {
	Nodes, Edges int
	// Components is the number of connected components; LargestComponent
	// the node count of the biggest one.
	Components       int
	LargestComponent int
	// IsolatedNodes counts degree-0 vertices.
	IsolatedNodes int
	// AvgDegree is mean vertex degree.
	AvgDegree float64
}

// ComputeStats analyses the roadmap.
func ComputeStats(m *Roadmap) Stats {
	s := Stats{Nodes: m.NumNodes(), Edges: m.NumEdges()}
	if s.Nodes == 0 {
		return s
	}
	labels, count := m.G.ConnectedComponents()
	s.Components = count
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	for _, sz := range sizes {
		if sz > s.LargestComponent {
			s.LargestComponent = sz
		}
	}
	for i := 0; i < s.Nodes; i++ {
		if m.G.Degree(graph.ID(i)) == 0 {
			s.IsolatedNodes++
		}
	}
	s.AvgDegree = 2 * float64(s.Edges) / float64(s.Nodes)
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d components=%d largest=%d isolated=%d avg-degree=%.2f",
		s.Nodes, s.Edges, s.Components, s.LargestComponent, s.IsolatedNodes, s.AvgDegree)
}
