package prm

import (
	"container/heap"
	"encoding/binary"
	"math"

	"parmp/internal/cspace"
	"parmp/internal/geom"
	"parmp/internal/graph"
	"parmp/internal/knn"
)

// BatchScratch holds the reusable state of one in-flight batched query:
// the kd query scratch plus the flat hit and offset buffers NearestBatch
// appends into. One scratch per serving worker makes the kd side of a
// steady-state batch allocation-free; the zero value is ready to use. A
// scratch must not be shared by concurrent batches.
type BatchScratch struct {
	knn  knn.QueryScratch
	dst  []knn.Result
	offs []int
}

// configKey packs a configuration's float bits into a map key, so
// identical endpoints dedupe exactly (no epsilon).
func configKey(q cspace.Config) string {
	b := make([]byte, 8*len(q))
	for i, v := range q {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return string(b)
}

// endpoint is one distinct query endpoint (start or goal) in a batch:
// its configuration and, once attached, the feasible roadmap entry
// points. ok is false when the endpoint is invalid (wrong dimension or
// in collision) or attaches to nothing.
type endpoint struct {
	q   cspace.Config
	att []attachment
	ok  bool
}

// QueryBatch answers len(starts) motion-planning queries against the
// frozen roadmap in one pass, amortizing work that a loop over Query
// would repeat per call:
//
//   - distinct endpoints are deduplicated, so a batch of queries over a
//     hot set of (start, goal) pairs validates and attaches each
//     configuration once;
//   - all endpoint kNN lookups go through one knn.NearestBatch call
//     sharing one scratch;
//   - queries with a common goal share one multi-source Dijkstra seeded
//     from the goal's attachments (the roadmap is undirected, so
//     goal-side distances answer every start in the group).
//
// Query i's answer lands in paths[i]/oks[i] with Query's semantics:
// success iff some start attachment shares a connected component with
// some goal attachment, and the returned path minimizes attachment cost
// plus roadmap distance. Among exact metric ties the node sequence may
// differ from Query's, but the total length is equal.
//
// sc may be nil (a scratch is allocated); pass one per worker to reuse
// kd buffers across batches. Safe for concurrent use with distinct
// scratches.
func (ix *Index) QueryBatch(s *cspace.Space, starts, goals []cspace.Config, k int, sc *BatchScratch, c *cspace.Counters) ([][]cspace.Config, []bool) {
	n := len(starts)
	paths := make([][]cspace.Config, n)
	oks := make([]bool, n)
	if len(goals) != n || n == 0 || k <= 0 || len(ix.pts) == 0 {
		return paths, oks
	}
	if sc == nil {
		sc = &BatchScratch{}
	}

	// Dedupe endpoints: one validation + one attach per distinct config.
	slot := make(map[string]int, 2*n)
	var eps []*endpoint
	startEp := make([]int, n)
	goalEp := make([]int, n)
	intern := func(q cspace.Config) int {
		key := configKey(q)
		if i, ok := slot[key]; ok {
			return i
		}
		i := len(eps)
		slot[key] = i
		eps = append(eps, &endpoint{q: q})
		return i
	}
	for i := range starts {
		startEp[i] = intern(starts[i])
		goalEp[i] = intern(goals[i])
	}

	// Validate distinct endpoints, then attach the valid ones through one
	// batched kd pass.
	var queries []geom.Vec
	var queryEp []int
	for i, ep := range eps {
		if len(ep.q) == s.Dim() && s.Valid(ep.q, c) {
			queries = append(queries, ep.q)
			queryEp = append(queryEp, i)
		}
	}
	if len(queries) > 0 {
		var evals int
		sc.dst, sc.offs, evals = ix.tree.NearestBatch(&sc.knn, queries, k, -1, sc.dst[:0], sc.offs[:0])
		if c != nil {
			c.KNNQueries += int64(len(queries))
			c.KNNEvals += int64(evals)
		}
		for j, i := range queryEp {
			ep := eps[i]
			for _, h := range sc.dst[sc.offs[j]:sc.offs[j+1]] {
				if s.LocalPlan(ep.q, ix.pts[h.Index], c) {
					ep.att = append(ep.att, attachment{node: h.Index, cost: s.Distance(ep.q, ix.pts[h.Index])})
				}
			}
			ep.ok = len(ep.att) > 0
		}
	}

	// Group queries by goal endpoint: each group shares one Dijkstra.
	groups := make(map[int][]int, len(eps))
	for i := 0; i < n; i++ {
		if !eps[startEp[i]].ok || !eps[goalEp[i]].ok {
			continue
		}
		groups[goalEp[i]] = append(groups[goalEp[i]], i)
	}
	for gi, members := range groups {
		ix.solveGoalGroup(eps, gi, members, startEp, paths, oks)
	}
	return paths, oks
}

// solveGoalGroup answers every query in members (all sharing goal
// endpoint gi) with one multi-source Dijkstra seeded from the goal's
// attachments. Distances flow goal→roadmap, so each query just takes the
// cheapest of its start attachments; prev chains already point toward
// the goal and reconstruct the path start→…→goal directly.
func (ix *Index) solveGoalGroup(eps []*endpoint, gi int, members []int, startEp []int, paths [][]cspace.Config, oks []bool) {
	goal := eps[gi]

	// Component pre-check (Query's exact success criterion): a start
	// attachment is a useful target only when it shares a component with
	// some goal attachment.
	goalComp := make(map[int]bool, len(goal.att))
	for _, ga := range goal.att {
		goalComp[ix.labels[ga.node]] = true
	}
	targets := make(map[int]bool)
	for _, qi := range members {
		for _, sa := range eps[startEp[qi]].att {
			if goalComp[ix.labels[sa.node]] {
				targets[sa.node] = true
			}
		}
	}
	if len(targets) == 0 {
		return // every query in the group is disconnected
	}

	// Multi-source Dijkstra from the goal attachments, run until every
	// reachable target start-attachment node is settled.
	dist := make(map[int]float64, 64)
	prev := make(map[int]int, 64)
	q := &attachPQ{}
	for _, ga := range goal.att {
		if d, ok := dist[ga.node]; !ok || ga.cost < d {
			dist[ga.node] = ga.cost
			prev[ga.node] = -1
			heap.Push(q, pqEntry{node: ga.node, dist: ga.cost})
		}
	}
	done := make(map[int]bool, 64)
	remaining := len(targets)
	for q.Len() > 0 && remaining > 0 {
		it := heap.Pop(q).(pqEntry)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if targets[it.node] {
			remaining--
		}
		for _, e := range ix.m.G.Neighbors(graph.ID(it.node)) {
			nd := it.dist + e.Weight
			if d, ok := dist[int(e.To)]; !ok || nd < d {
				dist[int(e.To)] = nd
				prev[int(e.To)] = it.node
				heap.Push(q, pqEntry{node: int(e.To), dist: nd})
			}
		}
	}

	for _, qi := range members {
		start := eps[startEp[qi]]
		bestNode := -1
		bestTotal := -1.0
		for _, sa := range start.att {
			d, ok := dist[sa.node]
			if !ok || !done[sa.node] {
				continue
			}
			if total := sa.cost + d; bestTotal < 0 || total < bestTotal {
				bestTotal = total
				bestNode = sa.node
			}
		}
		if bestNode < 0 {
			continue
		}
		// Reconstruct start → attachment chain → goal; prev points toward
		// the goal-side sources, which is exactly the forward direction.
		path := make([]cspace.Config, 0, 8)
		path = append(path, start.q.Clone())
		for cur := bestNode; cur != -1; cur = prev[cur] {
			path = append(path, ix.pts[cur].Clone())
		}
		path = append(path, goal.q.Clone())
		paths[qi] = path
		oks[qi] = true
	}
}
