package prm

import (
	"container/heap"

	"parmp/internal/cspace"
	"parmp/internal/geom"
	"parmp/internal/graph"
	"parmp/internal/knn"
)

// Index is a prebuilt query accelerator over a frozen roadmap: the full
// kd-tree, the gathered point slice and the connected-component labels
// are computed once at build time, so answering a query costs two kNN
// lookups plus a shortest-path search instead of re-gathering every
// roadmap point and rebuilding the tree per call (what the legacy Query
// does). An Index never mutates its roadmap, which is what makes a
// published engine snapshot safe for concurrent readers.
type Index struct {
	m      *Roadmap
	pts    []geom.Vec
	tree   *knn.KDTree
	labels []int
	comps  int
}

// BuildIndex gathers m's configurations, builds the kd-tree (in
// parallel for large maps) and labels connected components. The index
// keeps references into m; the roadmap must not be mutated afterwards.
func BuildIndex(m *Roadmap) *Index {
	pts := make([]geom.Vec, m.NumNodes())
	for i := range pts {
		pts[i] = m.G.Vertex(graph.ID(i)).Q
	}
	labels, comps := m.G.ConnectedComponents()
	return &Index{
		m:      m,
		pts:    pts,
		tree:   knn.BuildParallel(pts, 0),
		labels: labels,
		comps:  comps,
	}
}

// Roadmap returns the indexed roadmap (read-only by contract).
func (ix *Index) Roadmap() *Roadmap { return ix.m }

// NumNodes returns the number of indexed roadmap nodes.
func (ix *Index) NumNodes() int { return len(ix.pts) }

// Components returns the number of connected components.
func (ix *Index) Components() int { return ix.comps }

// Label returns the component label of node i.
func (ix *Index) Label(i int) int { return ix.labels[i] }

// attachment is a feasible roadmap entry/exit point for a query
// endpoint: roadmap node plus the metric cost of the connecting local
// path.
type attachment struct {
	node int
	cost float64
}

// attach finds the k nearest roadmap nodes to q that the local planner
// can reach, without touching the roadmap.
func (ix *Index) attach(s *cspace.Space, q cspace.Config, k int, c *cspace.Counters) []attachment {
	hits, evals := ix.tree.Nearest(q, k)
	if c != nil {
		c.KNNQueries++
		c.KNNEvals += int64(evals)
	}
	var out []attachment
	for _, h := range hits {
		if s.LocalPlan(q, ix.pts[h.Index], c) {
			out = append(out, attachment{node: h.Index, cost: s.Distance(q, ix.pts[h.Index])})
		}
	}
	return out
}

// Query answers a motion-planning query against the frozen roadmap
// without mutating it: start and goal each attach to their k nearest
// reachable nodes, and a multi-source Dijkstra over the roadmap finds
// the cheapest start-attachment → goal-attachment path. The returned
// path includes start and goal; ok is false when no connection exists.
// Success semantics match the legacy Query exactly: the query succeeds
// iff some start attachment and some goal attachment share a connected
// component. Safe for concurrent use.
func (ix *Index) Query(s *cspace.Space, start, goal cspace.Config, k int, c *cspace.Counters) ([]cspace.Config, bool) {
	if !s.Valid(start, c) || !s.Valid(goal, c) {
		return nil, false
	}
	if len(ix.pts) == 0 {
		return nil, false
	}
	starts := ix.attach(s, start, k, c)
	goals := ix.attach(s, goal, k, c)
	if len(starts) == 0 || len(goals) == 0 {
		return nil, false
	}
	// Component pre-check: cheap reject for disconnected queries, and the
	// exact success criterion of the legacy mutating Query.
	reachable := false
	for _, sa := range starts {
		for _, ga := range goals {
			if ix.labels[sa.node] == ix.labels[ga.node] {
				reachable = true
			}
		}
	}
	if !reachable {
		return nil, false
	}

	// Exit costs: cheapest goal attachment per roadmap node.
	exit := make(map[int]float64, len(goals))
	for _, ga := range goals {
		if w, ok := exit[ga.node]; !ok || ga.cost < w {
			exit[ga.node] = ga.cost
		}
	}

	// Multi-source Dijkstra seeded with every start attachment.
	dist := make(map[int]float64, 64)
	prev := make(map[int]int, 64)
	q := &attachPQ{}
	for _, sa := range starts {
		if d, ok := dist[sa.node]; !ok || sa.cost < d {
			dist[sa.node] = sa.cost
			prev[sa.node] = -1
			heap.Push(q, pqEntry{node: sa.node, dist: sa.cost})
		}
	}
	bestTotal := -1.0
	bestExit := -1
	done := make(map[int]bool, 64)
	for q.Len() > 0 {
		it := heap.Pop(q).(pqEntry)
		if bestTotal >= 0 && it.dist >= bestTotal {
			break // every remaining route is at least this long
		}
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if w, ok := exit[it.node]; ok {
			if total := it.dist + w; bestTotal < 0 || total < bestTotal {
				bestTotal = total
				bestExit = it.node
			}
		}
		for _, e := range ix.m.G.Neighbors(graph.ID(it.node)) {
			nd := it.dist + e.Weight
			if d, ok := dist[int(e.To)]; !ok || nd < d {
				dist[int(e.To)] = nd
				prev[int(e.To)] = it.node
				heap.Push(q, pqEntry{node: int(e.To), dist: nd})
			}
		}
	}
	if bestExit < 0 {
		// Unreachable despite the component pre-check can't happen (labels
		// come from the same graph), but guard anyway.
		return nil, false
	}

	// Reconstruct: start, attachment chain, goal.
	var rev []int
	for cur := bestExit; cur != -1; cur = prev[cur] {
		rev = append(rev, cur)
	}
	path := make([]cspace.Config, 0, len(rev)+2)
	path = append(path, start.Clone())
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, ix.pts[rev[i]].Clone())
	}
	path = append(path, goal.Clone())
	return path, true
}

// pqEntry is a priority-queue entry for the index's Dijkstra.
type pqEntry struct {
	node int
	dist float64
}

type attachPQ []pqEntry

func (q attachPQ) Len() int           { return len(q) }
func (q attachPQ) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q attachPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *attachPQ) Push(x any)        { *q = append(*q, x.(pqEntry)) }
func (q *attachPQ) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
