package prm

import (
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/rng"
)

// benchRegion builds a realistic node-connection workload: one med-cube
// region's worth of free samples for a point robot.
func benchRegion(samples int) (*cspace.Space, []Node, Params) {
	s := cspace.NewPointSpace(env.MedCube())
	p := Params{SamplesPerRegion: samples, K: 8}
	nodes, _ := SampleRegion(s, s.Bounds, 0, p, rng.New(7))
	return s, nodes, p
}

// BenchmarkKernelConnectRegion measures the node-connection kernel — the
// paper's dominant phase (~90 % of execution) and the main target of the
// allocation-free scratch layer.
func BenchmarkKernelConnectRegion(b *testing.B) {
	s, nodes, p := benchRegion(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectRegion(s, nodes, p)
	}
}

// BenchmarkKernelConnectBoundary measures the cross-region connection
// kernel (frontier selection + bridging attempts).
func BenchmarkKernelConnectBoundary(b *testing.B) {
	s, nodes, p := benchRegion(240)
	half := len(nodes) / 2
	aNodes, bNodes := nodes[:half], nodes[half:]
	_ = p
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectBoundary(s, aNodes, bNodes, 4, 16)
	}
}
