package prm

import (
	"bytes"
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/graph"
	"parmp/internal/rng"
)

func TestRoadmapSaveLoadRoundTrip(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	res := BuildRegion(s, geom.Box3(0, 0, 0, 1, 1, 1), 0,
		Params{SamplesPerRegion: 40, K: 4}, rng.New(1))
	m := NewRoadmap()
	for _, n := range res.Nodes {
		m.AddNode(n)
	}
	for _, e := range res.Edges {
		m.G.AddEdge(graph.ID(e[0]), graph.ID(e[1]), s.Distance(res.Nodes[e[0]].Q, res.Nodes[e[1]].Q))
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != m.NumNodes() || back.NumEdges() != m.NumEdges() {
		t.Fatalf("round trip: %d/%d vs %d/%d",
			back.NumNodes(), back.NumEdges(), m.NumNodes(), m.NumEdges())
	}
	for i := 0; i < m.NumNodes(); i++ {
		a := m.G.Vertex(graph.ID(i))
		b := back.G.Vertex(graph.ID(i))
		if !a.Q.Equal(b.Q, 0) || a.Region != b.Region {
			t.Fatalf("node %d differs", i)
		}
	}
	// A query must work identically on the reloaded roadmap.
	p1, ok1 := Query(s, m, geom.V(0.05, 0.05, 0.05), geom.V(0.95, 0.05, 0.05), 5, nil)
	p2, ok2 := Query(s, back, geom.V(0.05, 0.05, 0.05), geom.V(0.95, 0.05, 0.05), 5, nil)
	if ok1 != ok2 || len(p1) != len(p2) {
		t.Fatalf("query mismatch after reload: %v/%d vs %v/%d", ok1, len(p1), ok2, len(p2))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a roadmap"))); err == nil {
		t.Fatal("garbage should fail to decode")
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRoadmap().Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 0 || back.NumEdges() != 0 {
		t.Fatal("empty roadmap round trip failed")
	}
}
