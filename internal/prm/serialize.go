package prm

import (
	"encoding/gob"
	"fmt"
	"io"

	"parmp/internal/graph"
)

// wireRoadmap is the flat on-wire representation of a Roadmap.
type wireRoadmap struct {
	Nodes []Node
	Edges []wireEdge
}

type wireEdge struct {
	A, B   int
	Weight float64
}

// Save writes the roadmap to w in a self-contained binary format (gob).
// Roadmaps are expensive to build; persisting them lets many queries
// amortize one construction.
func (m *Roadmap) Save(w io.Writer) error {
	wr := wireRoadmap{Nodes: make([]Node, m.NumNodes())}
	for i := 0; i < m.NumNodes(); i++ {
		wr.Nodes[i] = m.G.Vertex(graph.ID(i))
	}
	m.G.ForEachEdge(func(a, b graph.ID, weight float64) {
		wr.Edges = append(wr.Edges, wireEdge{A: int(a), B: int(b), Weight: weight})
	})
	return gob.NewEncoder(w).Encode(wr)
}

// Load reads a roadmap previously written by Save.
func Load(r io.Reader) (*Roadmap, error) {
	var wr wireRoadmap
	if err := gob.NewDecoder(r).Decode(&wr); err != nil {
		return nil, fmt.Errorf("prm: decode roadmap: %w", err)
	}
	m := NewRoadmap()
	for _, n := range wr.Nodes {
		m.AddNode(n)
	}
	for _, e := range wr.Edges {
		if e.A < 0 || e.B < 0 || e.A >= m.NumNodes() || e.B >= m.NumNodes() {
			return nil, fmt.Errorf("prm: edge (%d,%d) out of range", e.A, e.B)
		}
		m.G.AddEdge(graph.ID(e.A), graph.ID(e.B), e.Weight)
	}
	return m, nil
}
