package prm

import (
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/rng"
)

// pathLength sums a path's metric hops.
func pathLength(s *cspace.Space, path []cspace.Config) float64 {
	var sum float64
	for i := 0; i+1 < len(path); i++ {
		sum += s.Distance(path[i], path[i+1])
	}
	return sum
}

func randomValid(s *cspace.Space, r *rng.Stream) cspace.Config {
	for {
		q := make(cspace.Config, s.Dim())
		for d := 0; d < s.Dim(); d++ {
			q[d] = r.Range(s.Bounds.Lo[d], s.Bounds.Hi[d])
		}
		if s.Valid(q, nil) {
			return q
		}
	}
}

func TestQueryBatchMatchesQuery(t *testing.T) {
	// Every batch answer must agree with the scalar Query: same
	// success/failure, equal total path length (the node sequence may
	// differ among exact metric ties), and a valid hop chain.
	cases := []struct {
		name  string
		space *cspace.Space
	}{
		{"free", freeSpace()},
		{"med-cube", cspace.NewPointSpace(env.MedCube())},
	}
	for _, tc := range cases {
		m := buildTestRoadmap(t, tc.space, 80, 11)
		ix := BuildIndex(m)
		r := rng.New(99)
		const nq = 40
		starts := make([]cspace.Config, nq)
		goals := make([]cspace.Config, nq)
		// Mix of distinct pairs, repeated pairs (cache-hot shape) and
		// shared goals (the Dijkstra-sharing shape).
		hotGoal := randomValid(tc.space, r)
		for i := range starts {
			switch i % 4 {
			case 0, 1:
				starts[i] = randomValid(tc.space, r)
				goals[i] = randomValid(tc.space, r)
			case 2:
				starts[i] = randomValid(tc.space, r)
				goals[i] = hotGoal
			default:
				starts[i] = starts[i-3]
				goals[i] = goals[i-3]
			}
		}
		sc := &BatchScratch{}
		paths, oks := ix.QueryBatch(tc.space, starts, goals, 4, sc, nil)
		for i := range starts {
			refPath, refOK := ix.Query(tc.space, starts[i], goals[i], 4, nil)
			if oks[i] != refOK {
				t.Fatalf("%s query %d: batch ok=%v, scalar ok=%v", tc.name, i, oks[i], refOK)
			}
			if !oks[i] {
				if paths[i] != nil {
					t.Fatalf("%s query %d: missed query returned a path", tc.name, i)
				}
				continue
			}
			if !paths[i][0].Equal(starts[i], 0) || !paths[i][len(paths[i])-1].Equal(goals[i], 0) {
				t.Fatalf("%s query %d: path endpoints wrong", tc.name, i)
			}
			for h := 0; h+1 < len(paths[i]); h++ {
				if !tc.space.LocalPlan(paths[i][h], paths[i][h+1], nil) {
					t.Fatalf("%s query %d: hop %d invalid", tc.name, i, h)
				}
			}
			got, want := pathLength(tc.space, paths[i]), pathLength(tc.space, refPath)
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s query %d: batch length %.12f, scalar %.12f", tc.name, i, got, want)
			}
		}
	}
}

func TestQueryBatchDegenerate(t *testing.T) {
	s := freeSpace()
	m := buildTestRoadmap(t, s, 40, 5)
	ix := BuildIndex(m)
	a, b := geom.V(0.1, 0.1, 0.1), geom.V(0.9, 0.9, 0.9)

	// k <= 0, mismatched slice lengths, empty batch: all-miss, no panic.
	if paths, oks := ix.QueryBatch(s, []cspace.Config{a}, []cspace.Config{b}, 0, nil, nil); oks[0] || paths[0] != nil {
		t.Fatal("k=0 must miss")
	}
	if _, oks := ix.QueryBatch(s, []cspace.Config{a}, nil, 4, nil, nil); len(oks) != 1 || oks[0] {
		t.Fatal("mismatched lengths must miss")
	}
	if paths, _ := ix.QueryBatch(s, nil, nil, 4, nil, nil); len(paths) != 0 {
		t.Fatal("empty batch must return empty results")
	}

	// Wrong-dimension and in-collision endpoints miss without disturbing
	// the rest of the batch.
	blocked := cspace.NewPointSpace(env.MedCube())
	mb := buildTestRoadmap(t, blocked, 80, 11)
	ixb := BuildIndex(mb)
	starts := []cspace.Config{geom.V(0.1, 0.1), geom.V(0.5, 0.5, 0.5), geom.V(0.05, 0.05, 0.05)}
	goals := []cspace.Config{geom.V(0.9, 0.9, 0.9), geom.V(0.9, 0.9, 0.9), geom.V(0.95, 0.95, 0.95)}
	paths, oks := ixb.QueryBatch(blocked, starts, goals, 4, nil, nil)
	if oks[0] || oks[1] {
		t.Fatal("invalid endpoints must miss")
	}
	refPath, refOK := ixb.Query(blocked, starts[2], goals[2], 4, nil)
	if oks[2] != refOK {
		t.Fatalf("valid query in mixed batch: ok=%v, scalar=%v", oks[2], refOK)
	}
	if refOK && pathLength(blocked, paths[2])-pathLength(blocked, refPath) > 1e-9 {
		t.Fatal("valid query in mixed batch returned a longer path")
	}

	// Empty roadmap: all-miss.
	ixe := BuildIndex(NewRoadmap())
	if _, oks := ixe.QueryBatch(s, []cspace.Config{a}, []cspace.Config{b}, 4, nil, nil); oks[0] {
		t.Fatal("empty roadmap must miss")
	}
}

func TestQueryBatchDisconnected(t *testing.T) {
	e := &env.Environment{
		Name:   "wall",
		Bounds: geom.Box3(0, 0, 0, 1, 1, 1),
		Obstacles: []env.Obstacle{
			env.BoxObstacle{Box: geom.Box3(0.45, 0, 0, 0.55, 1, 1)},
		},
	}
	s := cspace.NewPointSpace(e)
	m := NewRoadmap()
	m.AddNode(Node{Q: geom.V(0.1, 0.5, 0.5)})
	m.AddNode(Node{Q: geom.V(0.9, 0.5, 0.5)})
	ix := BuildIndex(m)
	starts := []cspace.Config{geom.V(0.05, 0.5, 0.5), geom.V(0.05, 0.5, 0.5)}
	goals := []cspace.Config{geom.V(0.95, 0.5, 0.5), geom.V(0.15, 0.5, 0.5)}
	paths, oks := ix.QueryBatch(s, starts, goals, 1, nil, nil)
	if oks[0] {
		t.Fatal("wall-separated query must fail")
	}
	if !oks[1] {
		t.Fatal("same-side query must succeed")
	}
	if len(paths[1]) < 2 {
		t.Fatal("same-side path degenerate")
	}
}

func TestQueryBatchScratchReuse(t *testing.T) {
	// Reusing one scratch across batches must keep answers identical.
	s := freeSpace()
	m := buildTestRoadmap(t, s, 60, 7)
	ix := BuildIndex(m)
	r := rng.New(3)
	starts := make([]cspace.Config, 8)
	goals := make([]cspace.Config, 8)
	for i := range starts {
		starts[i] = randomValid(s, r)
		goals[i] = randomValid(s, r)
	}
	sc := &BatchScratch{}
	_, first := ix.QueryBatch(s, starts, goals, 4, sc, nil)
	for trial := 0; trial < 3; trial++ {
		_, again := ix.QueryBatch(s, starts, goals, 4, sc, nil)
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("trial %d query %d: ok changed %v -> %v", trial, i, first[i], again[i])
			}
		}
	}
}
