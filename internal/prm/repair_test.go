package prm

import (
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/graph"
	"parmp/internal/rng"
)

// buildRepairRoadmap grows a small roadmap in e and returns it with its
// space.
func buildRepairRoadmap(t *testing.T, e *env.Environment, samples int) (*cspace.Space, *Roadmap) {
	t.Helper()
	s := cspace.NewPointSpace(e)
	p := Params{SamplesPerRegion: samples, K: 6}
	r := rng.New(11)
	nodes, _ := SampleRegion(s, e.Bounds, 0, p, r)
	edges, _ := ConnectRegion(s, nodes, p)
	m := NewRoadmap()
	for _, nd := range nodes {
		m.AddNode(nd)
	}
	for _, ed := range edges {
		m.G.AddEdge(graph.ID(ed[0]), graph.ID(ed[1]), s.Distance(nodes[ed[0]].Q, nodes[ed[1]].Q))
	}
	return s, m
}

func TestRevalidateRegionAgainstFullRecheck(t *testing.T) {
	base := env.Free()
	s, m := buildRepairRoadmap(t, base, 250)
	nodes := make([]Node, m.NumNodes())
	for i := range nodes {
		nodes[i] = m.G.Vertex(graph.ID(i))
	}
	var edges [][2]int
	m.G.ForEachEdge(func(a, b graph.ID, w float64) { edges = append(edges, [2]int{int(a), int(b)}) })

	mutated := base.Clone()
	d, err := mutated.AddObstacle(env.BoxObstacle{Box: geom.Box3(0.35, 0.35, 0.35, 0.6, 0.6, 0.6)})
	if err != nil {
		t.Fatal(err)
	}
	dc := cspace.NewDeltaChecker(s, d)
	rr := RevalidateRegion(dc, nodes, edges, nil)

	after := s.WithEnv(mutated)
	deadN, deadE := 0, 0
	for i, nd := range nodes {
		want := after.Valid(nd.Q, nil)
		if rr.Alive[i] != want {
			t.Fatalf("node %d alive=%v, full recheck %v", i, rr.Alive[i], want)
		}
		if !want {
			deadN++
		}
	}
	for j, ed := range edges {
		want := after.Valid(nodes[ed[0]].Q, nil) && after.Valid(nodes[ed[1]].Q, nil) &&
			after.LocalPlan(nodes[ed[0]].Q, nodes[ed[1]].Q, nil)
		if rr.KeepEdge[j] != want {
			t.Fatalf("edge %d keep=%v, full recheck %v", j, rr.KeepEdge[j], want)
		}
		if !want {
			deadE++
		}
	}
	if deadN == 0 || deadE == 0 {
		t.Fatalf("weak test: deadN=%d deadE=%d (want both > 0)", deadN, deadE)
	}
	if rr.DeadNodes != deadN || rr.DeadEdges != deadE {
		t.Fatalf("stats dead=%d/%d, counted %d/%d", rr.DeadNodes, rr.DeadEdges, deadN, deadE)
	}
	// Culling must have saved work: the obstacle covers a corner of the
	// volume, so most nodes are screened out geometrically.
	if rr.CheckedNodes >= len(nodes) {
		t.Fatalf("no node culling: checked %d of %d", rr.CheckedNodes, len(nodes))
	}
}

func TestAffectedVerticesSuperset(t *testing.T) {
	base := env.Free()
	s, m := buildRepairRoadmap(t, base, 300)
	ix := BuildIndex(m)
	mutated := base.Clone()
	d, err := mutated.AddObstacle(env.SphereObstacle{Center: geom.V(0.5, 0.5, 0.5), Radius: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	dc := cspace.NewDeltaChecker(s, d)
	cand := ix.AffectedVertices(dc)
	in := make(map[int]bool, len(cand))
	for _, i := range cand {
		in[i] = true
	}
	after := s.WithEnv(mutated)
	for i := 0; i < m.NumNodes(); i++ {
		q := m.G.Vertex(graph.ID(i)).Q
		if !after.Valid(q, nil) && !in[i] {
			t.Fatalf("vertex %d became blocked but is not a candidate", i)
		}
	}
	if len(cand) == 0 || len(cand) == m.NumNodes() {
		t.Fatalf("weak candidate set: %d of %d", len(cand), m.NumNodes())
	}
	// Removal-only deltas select nothing.
	m2 := base.Clone()
	m2.Obstacles = append(m2.Obstacles, env.SphereObstacle{Center: geom.V(0.2, 0.2, 0.2), Radius: 0.05})
	dRem, err := m2.RemoveObstacle(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.AffectedVertices(cspace.NewDeltaChecker(s, dRem)); got != nil {
		t.Fatalf("removal delta selected %d candidates", len(got))
	}
}

func TestRelabelScopedMatchesFullRelabel(t *testing.T) {
	base := env.Free()
	s, m := buildRepairRoadmap(t, base, 220)
	oldLabels, _ := m.G.ConnectedComponents()

	// Simulate a repair: drop every vertex in a slab of the workspace by
	// rebuilding the roadmap without them (what the engine's compaction
	// does), tracking old→new ids.
	mutated := base.Clone()
	d, err := mutated.AddObstacle(env.BoxObstacle{Box: geom.Box3(0.45, 0, 0, 0.55, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	dc := cspace.NewDeltaChecker(s, d)

	oldToNew := make([]int, m.NumNodes())
	repaired := NewRoadmap()
	for i := 0; i < m.NumNodes(); i++ {
		nd := m.G.Vertex(graph.ID(i))
		if dc.ConfigStillFree(nd.Q, nil) {
			oldToNew[i] = int(repaired.AddNode(nd))
		} else {
			oldToNew[i] = -1
		}
	}
	touched := make([]bool, m.NumNodes()) // labels bounded by node count
	markTouched := func(oldID int) { touched[oldLabels[oldID]] = true }
	m.G.ForEachEdge(func(a, b graph.ID, w float64) {
		na, nb := oldToNew[a], oldToNew[b]
		if na < 0 || nb < 0 {
			markTouched(int(a))
			return
		}
		va := repaired.G.Vertex(graph.ID(na)).Q
		vb := repaired.G.Vertex(graph.ID(nb)).Q
		if dc.EdgeStillFree(va, vb, nil) {
			repaired.G.AddEdge(graph.ID(na), graph.ID(nb), w)
		} else {
			markTouched(int(a))
		}
	})
	for i, nn := range oldToNew {
		if nn < 0 {
			markTouched(i)
		}
	}

	oldLabelOfNew := make([]int, repaired.NumNodes())
	for oldID, newID := range oldToNew {
		if newID >= 0 {
			oldLabelOfNew[newID] = oldLabels[oldID]
		}
	}
	gotLabels, gotComps := RelabelScoped(repaired, oldLabelOfNew, touched)
	wantLabels, wantComps := repaired.G.ConnectedComponents()
	if gotComps != wantComps {
		t.Fatalf("scoped comps = %d, full = %d", gotComps, wantComps)
	}
	// Labels must agree up to a bijection.
	fwd := make(map[int]int)
	for v := range gotLabels {
		if mapped, ok := fwd[gotLabels[v]]; ok {
			if mapped != wantLabels[v] {
				t.Fatalf("vertex %d: scoped label %d maps to both %d and %d",
					v, gotLabels[v], mapped, wantLabels[v])
			}
		} else {
			fwd[gotLabels[v]] = wantLabels[v]
		}
	}
	if len(fwd) != wantComps {
		t.Fatalf("label bijection has %d entries, want %d", len(fwd), wantComps)
	}
	// Sanity: the slab actually split or shrank something.
	if repaired.NumNodes() == m.NumNodes() {
		t.Fatal("weak test: no vertex died")
	}
	// And IndexFromParts serves queries with those labels.
	ix := IndexFromParts(repaired, gotLabels, gotComps)
	if ix.Components() != gotComps || ix.NumNodes() != repaired.NumNodes() {
		t.Fatal("IndexFromParts lost parts")
	}
}
