package prm

import (
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/graph"
	"parmp/internal/rng"
)

func freeSpace() *cspace.Space { return cspace.NewPointSpace(env.Free()) }

func TestBuildRegionGeneratesNodes(t *testing.T) {
	s := freeSpace()
	box := geom.Box3(0, 0, 0, 0.5, 0.5, 0.5)
	res := BuildRegion(s, box, 3, Params{SamplesPerRegion: 50, K: 5}, rng.New(1))
	if len(res.Nodes) != 50 {
		t.Fatalf("nodes = %d, want 50 in free space", len(res.Nodes))
	}
	for _, n := range res.Nodes {
		if !box.Contains(n.Q) {
			t.Fatalf("node %v outside region box", n.Q)
		}
		if n.Region != 3 {
			t.Fatalf("node region = %d", n.Region)
		}
	}
	if len(res.Edges) == 0 {
		t.Fatal("free-space region should produce edges")
	}
	if res.Work.Samples != 50 || res.Work.CDCalls == 0 || res.Work.LPCalls == 0 {
		t.Fatalf("work counters look wrong: %+v", res.Work)
	}
}

func TestBuildRegionDeterministic(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	box := geom.Box3(0, 0, 0, 1, 1, 1)
	p := Params{SamplesPerRegion: 30, K: 4}
	a := BuildRegion(s, box, 0, p, rng.Derive(7, 0))
	b := BuildRegion(s, box, 0, p, rng.Derive(7, 0))
	if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
		t.Fatal("identical seeds should give identical results")
	}
	for i := range a.Nodes {
		if !a.Nodes[i].Q.Equal(b.Nodes[i].Q, 0) {
			t.Fatal("node mismatch under identical seed")
		}
	}
	if a.Work != b.Work {
		t.Fatalf("work mismatch: %+v vs %+v", a.Work, b.Work)
	}
}

func TestBuildRegionBlockedRegion(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	// Entirely inside the obstacle.
	box := geom.Box3(0.3, 0.3, 0.3, 0.7, 0.7, 0.7)
	res := BuildRegion(s, box, 0, Params{SamplesPerRegion: 10, K: 3, MaxTries: 5}, rng.New(2))
	if len(res.Nodes) != 0 {
		t.Fatalf("blocked region produced %d nodes", len(res.Nodes))
	}
	if res.Work.CDCalls == 0 {
		t.Fatal("failed sampling still costs collision checks")
	}
}

func TestBuildRegionEdgesValid(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	box := geom.Box3(0, 0, 0, 1, 1, 1)
	res := BuildRegion(s, box, 0, Params{SamplesPerRegion: 40, K: 5}, rng.New(3))
	for _, e := range res.Edges {
		if e[0] < 0 || e[0] >= len(res.Nodes) || e[1] < 0 || e[1] >= len(res.Nodes) || e[0] == e[1] {
			t.Fatalf("edge %v out of range", e)
		}
		// Edge endpoints must be locally plannable (re-check).
		if !s.LocalPlan(res.Nodes[e[0]].Q, res.Nodes[e[1]].Q, nil) {
			t.Fatalf("edge %v not plannable", e)
		}
	}
}

func TestWorkHeterogeneity(t *testing.T) {
	// A cluttered region must cost more collision work per produced node
	// than an open one — the root cause of the paper's load imbalance.
	e := env.MedCube()
	s := cspace.NewPointSpace(e)
	open := geom.Box3(0, 0, 0, 0.15, 0.15, 0.15)
	clutter := geom.Box3(0.15, 0.15, 0.15, 0.85, 0.85, 0.85) // mostly obstacle
	p := Params{SamplesPerRegion: 30, K: 4}
	ro := BuildRegion(s, open, 0, p, rng.New(4))
	rc := BuildRegion(s, clutter, 1, p, rng.New(4))
	if len(ro.Nodes) == 0 || len(rc.Nodes) == 0 {
		t.Fatal("both regions should produce some nodes")
	}
	perNodeOpen := float64(ro.Work.CDCalls) / float64(len(ro.Nodes))
	perNodeClutter := float64(rc.Work.CDCalls) / float64(len(rc.Nodes))
	if perNodeClutter <= perNodeOpen {
		t.Fatalf("cluttered per-node cost %v should exceed open %v", perNodeClutter, perNodeOpen)
	}
}

func TestConnectBoundary(t *testing.T) {
	s := freeSpace()
	p := Params{SamplesPerRegion: 20, K: 3}
	a := BuildRegion(s, geom.Box3(0, 0, 0, 0.5, 1, 1), 0, p, rng.Derive(5, 0))
	b := BuildRegion(s, geom.Box3(0.5, 0, 0, 1, 1, 1), 1, p, rng.Derive(5, 1))
	res := ConnectBoundary(s, a.Nodes, b.Nodes, 3, 0)
	if len(res.Edges) == 0 {
		t.Fatal("adjacent free regions should connect")
	}
	if res.Attempts < len(res.Edges) {
		t.Fatalf("attempts %d < edges %d", res.Attempts, len(res.Edges))
	}
	for _, e := range res.Edges {
		if e[0] >= len(a.Nodes) || e[1] >= len(b.Nodes) {
			t.Fatalf("edge %v out of range", e)
		}
	}
}

func TestConnectBoundaryEmpty(t *testing.T) {
	s := freeSpace()
	res := ConnectBoundary(s, nil, nil, 3, 0)
	if len(res.Edges) != 0 || res.Attempts != 0 {
		t.Fatal("empty inputs should do nothing")
	}
}

func TestConnectBoundaryBlockedWall(t *testing.T) {
	// A full wall between the regions: no connections possible.
	e := &env.Environment{
		Name:   "solid-wall",
		Bounds: geom.Box3(0, 0, 0, 1, 1, 1),
		Obstacles: []env.Obstacle{
			env.BoxObstacle{Box: geom.Box3(0.45, 0, 0, 0.55, 1, 1)},
		},
	}
	s := cspace.NewPointSpace(e)
	p := Params{SamplesPerRegion: 15, K: 3}
	a := BuildRegion(s, geom.Box3(0, 0, 0, 0.45, 1, 1), 0, p, rng.Derive(6, 0))
	b := BuildRegion(s, geom.Box3(0.55, 0, 0, 1, 1, 1), 1, p, rng.Derive(6, 1))
	res := ConnectBoundary(s, a.Nodes, b.Nodes, 3, 0)
	if len(res.Edges) != 0 {
		t.Fatalf("wall-separated regions connected %d times", len(res.Edges))
	}
}

func TestQueryFindsPath(t *testing.T) {
	s := freeSpace()
	m := NewRoadmap()
	res := BuildRegion(s, geom.Box3(0, 0, 0, 1, 1, 1), 0, Params{SamplesPerRegion: 60, K: 6}, rng.New(7))
	ids := make([]graph.ID, len(res.Nodes))
	for i, n := range res.Nodes {
		ids[i] = m.AddNode(n)
	}
	for _, e := range res.Edges {
		m.G.AddEdge(ids[e[0]], ids[e[1]], s.Distance(res.Nodes[e[0]].Q, res.Nodes[e[1]].Q))
	}
	var c cspace.Counters
	path, ok := Query(s, m, geom.V(0.05, 0.05, 0.05), geom.V(0.95, 0.95, 0.95), 5, &c)
	if !ok {
		t.Fatal("query in free space should succeed")
	}
	if len(path) < 2 {
		t.Fatalf("path too short: %d", len(path))
	}
	if !path[0].Equal(geom.V(0.05, 0.05, 0.05), 1e-12) {
		t.Fatal("path must start at start")
	}
	if !path[len(path)-1].Equal(geom.V(0.95, 0.95, 0.95), 1e-12) {
		t.Fatal("path must end at goal")
	}
	// Every hop must be a valid local plan.
	for i := 0; i+1 < len(path); i++ {
		if !s.LocalPlan(path[i], path[i+1], nil) {
			t.Fatalf("path hop %d invalid", i)
		}
	}
}

func TestQueryInvalidEndpoints(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	m := NewRoadmap()
	m.AddNode(Node{Q: geom.V(0.05, 0.05, 0.05)})
	if _, ok := Query(s, m, geom.V(0.5, 0.5, 0.5), geom.V(0.05, 0.05, 0.05), 2, nil); ok {
		t.Fatal("start inside obstacle must fail")
	}
}

func TestQueryDisconnected(t *testing.T) {
	// Roadmap with two far nodes and no edges; start near one, goal near
	// the other but local planner blocked by wall.
	e := &env.Environment{
		Name:   "wall",
		Bounds: geom.Box3(0, 0, 0, 1, 1, 1),
		Obstacles: []env.Obstacle{
			env.BoxObstacle{Box: geom.Box3(0.45, 0, 0, 0.55, 1, 1)},
		},
	}
	s := cspace.NewPointSpace(e)
	m := NewRoadmap()
	m.AddNode(Node{Q: geom.V(0.1, 0.5, 0.5)})
	m.AddNode(Node{Q: geom.V(0.9, 0.5, 0.5)})
	if _, ok := Query(s, m, geom.V(0.05, 0.5, 0.5), geom.V(0.95, 0.5, 0.5), 1, nil); ok {
		t.Fatal("wall-separated query must fail")
	}
}

func TestQueryDoesNotMutateRoadmap(t *testing.T) {
	s := freeSpace()
	m := NewRoadmap()
	res := BuildRegion(s, geom.Box3(0, 0, 0, 1, 1, 1), 0, Params{SamplesPerRegion: 40, K: 5}, rng.New(21))
	for _, n := range res.Nodes {
		m.AddNode(n)
	}
	for _, e := range res.Edges {
		m.G.AddEdge(graph.ID(e[0]), graph.ID(e[1]), s.Distance(res.Nodes[e[0]].Q, res.Nodes[e[1]].Q))
	}
	nodes, edges := m.NumNodes(), m.NumEdges()
	for i := 0; i < 5; i++ {
		Query(s, m, geom.V(0.1, 0.1, 0.1), geom.V(0.9, 0.9, 0.9), 4, nil)
	}
	if m.NumNodes() != nodes || m.NumEdges() != edges {
		t.Fatalf("query mutated roadmap: %d/%d -> %d/%d", nodes, edges, m.NumNodes(), m.NumEdges())
	}
}
