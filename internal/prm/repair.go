package prm

import (
	"sort"

	"parmp/internal/cspace"
	"parmp/internal/geom"
	"parmp/internal/graph"
	"parmp/internal/knn"
)

// RegionRepair is the product of re-validating one region's committed
// nodes and local edges against an environment delta: survival marks
// plus the collision work spent, which feeds the load accounting the
// same way construction work does (repair concentrates around the
// mutated obstacle, so its distribution is exactly the skewed workload
// the observed-cost balancer handles).
type RegionRepair struct {
	// Alive[i] reports node i survived (configuration still free).
	Alive []bool
	// KeepEdge[j] reports local edge j survived (both endpoints alive
	// and the sweep still valid).
	KeepEdge []bool
	// CheckedNodes / CheckedEdges count the candidates that actually
	// paid a collision re-check (culled ones are free).
	CheckedNodes, CheckedEdges int
	// DeadNodes / DeadEdges count the casualties.
	DeadNodes, DeadEdges int
	Work                 cspace.Counters
}

// RevalidateRegion re-checks one region's nodes and local edges against
// dc. candidates, when non-nil, lists the only node indices that can
// have been invalidated (from a kd radius query over the committed
// snapshot); nil screens every node through the checker's cull. Edges
// are screened geometrically regardless — an edge can cross the delta
// with both endpoints far outside it.
func RevalidateRegion(dc *cspace.DeltaChecker, nodes []Node, edges [][2]int, candidates []int) RegionRepair {
	rr := RegionRepair{
		Alive:    make([]bool, len(nodes)),
		KeepEdge: make([]bool, len(edges)),
	}
	for i := range rr.Alive {
		rr.Alive[i] = true
	}
	check := func(i int) {
		if !dc.ConfigAffected(nodes[i].Q) {
			return
		}
		rr.CheckedNodes++
		if !dc.ConfigStillFree(nodes[i].Q, &rr.Work) {
			rr.Alive[i] = false
			rr.DeadNodes++
		}
	}
	if candidates != nil {
		for _, i := range candidates {
			check(i)
		}
	} else {
		for i := range nodes {
			check(i)
		}
	}
	for j, ed := range edges {
		a, b := ed[0], ed[1]
		if !rr.Alive[a] || !rr.Alive[b] {
			rr.DeadEdges++
			continue
		}
		if !dc.EdgeAffected(nodes[a].Q, nodes[b].Q) {
			rr.KeepEdge[j] = true
			continue
		}
		rr.CheckedEdges++
		if dc.EdgeStillFree(nodes[a].Q, nodes[b].Q, &rr.Work) {
			rr.KeepEdge[j] = true
		} else {
			rr.DeadEdges++
		}
	}
	return rr
}

// AffectedVertices returns the indices of roadmap vertices whose
// validity the delta may have changed — a superset by construction
// (culling is conservative), so callers re-check members and trust
// non-members. When the checker offers a cull ball (point-robot
// C-spaces) the selection is a kd radius query over the index's
// committed tree, filtered through the tighter box test; otherwise it
// degrades to a scan. Sorted ascending. A nil return means "nothing
// affected".
func (ix *Index) AffectedVertices(dc *cspace.DeltaChecker) []int {
	if !dc.Invalidating() {
		return nil
	}
	if center, radius, ok := dc.CullBall(); ok {
		hits, _ := ix.tree.Radius(center, radius)
		out := make([]int, 0, len(hits))
		for _, h := range hits {
			if dc.ConfigAffected(ix.pts[h.Index]) {
				out = append(out, h.Index)
			}
		}
		sort.Ints(out)
		return out
	}
	var out []int
	for i, p := range ix.pts {
		if dc.ConfigAffected(p) {
			out = append(out, i)
		}
	}
	return out
}

// RelabelScoped computes connected-component labels for a repaired
// roadmap without touching the components the repair left alone.
// oldLabel maps each vertex of m to its pre-repair component label and
// touched marks the old labels whose components lost a vertex or an
// edge. Vertices of untouched components keep their old connectivity —
// repair only removes, and every edge was intra-component, so an
// untouched component is bit-identical to before — and get their old
// label compacted into the new dense label space. Touched components
// are relabeled by a union-find restricted to their own vertices and
// surviving edges, which is where splits appear (a door closing severs
// the two sides of the passage).
func RelabelScoped(m *Roadmap, oldLabel []int, touched []bool) (labels []int, comps int) {
	n := m.NumNodes()
	labels = make([]int, n)
	// Dense relabeling for the untouched components, in old-label order.
	remap := make(map[int]int)
	for v := 0; v < n; v++ {
		ol := oldLabel[v]
		if ol >= 0 && ol < len(touched) && touched[ol] {
			labels[v] = -1 // relabel below
			continue
		}
		nl, ok := remap[ol]
		if !ok {
			nl = comps
			comps++
			remap[ol] = nl
		}
		labels[v] = nl
	}
	// Union-find over the touched vertices only.
	var touchedVerts []int
	for v := 0; v < n; v++ {
		if labels[v] == -1 {
			touchedVerts = append(touchedVerts, v)
		}
	}
	if len(touchedVerts) == 0 {
		return labels, comps
	}
	local := make(map[int]int, len(touchedVerts))
	for i, v := range touchedVerts {
		local[v] = i
	}
	uf := graph.NewUnionFind(len(touchedVerts))
	for _, v := range touchedVerts {
		for _, e := range m.G.Neighbors(graph.ID(v)) {
			w := int(e.To)
			if w < v {
				continue // each undirected edge once
			}
			if lw, ok := local[w]; ok {
				uf.Union(local[v], lw)
			}
		}
	}
	fresh := make(map[int]int)
	for i, v := range touchedVerts {
		root := uf.Find(i)
		nl, ok := fresh[root]
		if !ok {
			nl = comps
			comps++
			fresh[root] = nl
		}
		labels[v] = nl
	}
	return labels, comps
}

// RepairIndex builds the query index for a repaired roadmap m from the
// pre-repair index: remap maps old vertex ids to new ones (-1 =
// removed) and touchedVerts lists old vertex ids whose components lost
// a vertex or an edge. Labels carry over for untouched components (the
// scoped relabel), only the kd-tree and the touched components rebuild.
func RepairIndex(old *Index, m *Roadmap, remap []int, touchedVerts []int) *Index {
	touched := make([]bool, old.comps)
	for _, v := range touchedVerts {
		touched[old.labels[v]] = true
	}
	oldLabelOfNew := make([]int, m.NumNodes())
	for oldID, newID := range remap {
		if newID >= 0 {
			oldLabelOfNew[newID] = old.labels[oldID]
		}
	}
	labels, comps := RelabelScoped(m, oldLabelOfNew, touched)
	return IndexFromParts(m, labels, comps)
}

// IndexFromParts builds a query index over a repaired roadmap from
// precomputed component labels (the scoped relabel), rebuilding only
// the kd-tree — the one structure whose point set changed.
func IndexFromParts(m *Roadmap, labels []int, comps int) *Index {
	pts := make([]geom.Vec, m.NumNodes())
	for i := range pts {
		pts[i] = m.G.Vertex(graph.ID(i)).Q
	}
	return &Index{
		m:      m,
		pts:    pts,
		tree:   knn.BuildParallel(pts, 0),
		labels: labels,
		comps:  comps,
	}
}
