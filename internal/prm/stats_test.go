package prm

import (
	"strings"
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/graph"
	"parmp/internal/rng"
)

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(NewRoadmap())
	if s.Nodes != 0 || s.Components != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestComputeStats(t *testing.T) {
	m := NewRoadmap()
	a := m.AddNode(Node{Q: geom.V(0, 0)})
	b := m.AddNode(Node{Q: geom.V(1, 0)})
	c := m.AddNode(Node{Q: geom.V(2, 0)})
	m.AddNode(Node{Q: geom.V(9, 9)}) // isolated
	m.G.AddEdge(a, b, 1)
	m.G.AddEdge(b, c, 1)
	s := ComputeStats(m)
	if s.Nodes != 4 || s.Edges != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Components != 2 || s.LargestComponent != 3 {
		t.Fatalf("components = %+v", s)
	}
	if s.IsolatedNodes != 1 {
		t.Fatalf("isolated = %d", s.IsolatedNodes)
	}
	if s.AvgDegree != 1 {
		t.Fatalf("avg degree = %v", s.AvgDegree)
	}
	if !strings.Contains(s.String(), "components=2") {
		t.Fatal("String missing fields")
	}
}

func TestEvaluateQueries(t *testing.T) {
	s := cspaceFree()
	res := BuildRegion(s, s.Bounds, 0, Params{SamplesPerRegion: 80, K: 8}, rng.New(1))
	m := NewRoadmap()
	ids := make([]graph.ID, len(res.Nodes))
	for i, n := range res.Nodes {
		ids[i] = m.AddNode(n)
	}
	for _, e := range res.Edges {
		m.G.AddEdge(ids[e[0]], ids[e[1]], s.Distance(res.Nodes[e[0]].Q, res.Nodes[e[1]].Q))
	}
	stats := EvaluateQueries(s, m, 20, 6, rng.New(2))
	if stats.Attempted != 20 {
		t.Fatalf("attempted = %d", stats.Attempted)
	}
	if stats.SuccessRate() < 0.8 {
		t.Fatalf("free-space success rate = %v, want high", stats.SuccessRate())
	}
	if stats.AvgLength <= 0 || stats.AvgWaypoints < 2 {
		t.Fatalf("path quality stats: %+v", stats)
	}
	if stats.String() == "" {
		t.Fatal("empty String")
	}
}

func TestEvaluateQueriesEmptyRoadmap(t *testing.T) {
	s := cspaceFree()
	stats := EvaluateQueries(s, NewRoadmap(), 5, 3, rng.New(3))
	if stats.Solved != 0 {
		t.Fatal("empty roadmap cannot solve queries")
	}
	if stats.SuccessRate() != 0 {
		t.Fatal("success rate should be 0")
	}
}

func cspaceFree() *cspace.Space { return cspace.NewPointSpace(env.Free()) }
