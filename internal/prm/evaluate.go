package prm

import (
	"fmt"

	"parmp/internal/cspace"
	"parmp/internal/rng"
)

// QueryStats summarizes a multi-query evaluation of a roadmap — the
// operational quality measure for a planner: how often random feasible
// queries succeed and how long the returned paths are.
type QueryStats struct {
	Attempted, Solved int
	// AvgLength is the mean metric length of solved paths.
	AvgLength float64
	// AvgWaypoints is the mean waypoint count of solved paths.
	AvgWaypoints float64
	Work         cspace.Counters
}

// SuccessRate returns Solved/Attempted (0 for no attempts).
func (q QueryStats) SuccessRate() float64 {
	if q.Attempted == 0 {
		return 0
	}
	return float64(q.Solved) / float64(q.Attempted)
}

// String renders the stats on one line.
func (q QueryStats) String() string {
	return fmt.Sprintf("queries=%d solved=%d (%.0f%%) avg-length=%.3f avg-waypoints=%.1f",
		q.Attempted, q.Solved, 100*q.SuccessRate(), q.AvgLength, q.AvgWaypoints)
}

// EvaluateQueries draws n random valid start/goal pairs and answers each
// with Query(k nearest attachments), reporting aggregate success and path
// quality. Deterministic given the stream.
func EvaluateQueries(s *cspace.Space, m *Roadmap, n, k int, r *rng.Stream) QueryStats {
	var stats QueryStats
	var totalLen, totalWp float64
	for i := 0; i < n; i++ {
		start, ok1 := s.SampleFreeIn(s.Bounds, r, 50, &stats.Work)
		goal, ok2 := s.SampleFreeIn(s.Bounds, r, 50, &stats.Work)
		if !ok1 || !ok2 {
			continue
		}
		stats.Attempted++
		path, ok := Query(s, m, start, goal, k, &stats.Work)
		if !ok {
			continue
		}
		stats.Solved++
		totalLen += cspace.PathLength(s, path)
		totalWp += float64(len(path))
	}
	if stats.Solved > 0 {
		stats.AvgLength = totalLen / float64(stats.Solved)
		stats.AvgWaypoints = totalWp / float64(stats.Solved)
	}
	return stats
}
