package prm

import (
	"sync"

	"parmp/internal/cspace"
	"parmp/internal/geom"
	"parmp/internal/knn"
)

// Arena bundles the reusable buffers one PRM task needs: collision
// scratch, kNN query scratch, a rebuildable kd-tree, point slices, hit
// and edge accumulators, and the dedup set. Region tasks borrow one from
// a sync.Pool for the duration of a kernel call, so steady-state
// planning allocates only the nodes and edges it actually returns. An
// Arena is not safe for concurrent use.
type Arena struct {
	sc       cspace.Scratch
	bt       cspace.Batch
	qsc      knn.QueryScratch
	tree     knn.KDTree
	pts      []geom.Vec
	aux      []geom.Vec
	hits     []knn.Result
	offs     []int
	edges    [][2]int
	sources  []int
	centroid geom.Vec
	sample   cspace.Config
	seen     map[[2]int]bool
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GetArena borrows an arena from the shared pool.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// PutArena returns an arena to the pool. The arena keeps its buffers;
// only logical state is cleared by the kernels that use it.
func PutArena(a *Arena) { arenaPool.Put(a) }

// points fills a.pts with the configurations of nodes.
func (a *Arena) points(nodes []Node) []geom.Vec {
	if cap(a.pts) < len(nodes) {
		a.pts = make([]geom.Vec, len(nodes))
	}
	a.pts = a.pts[:len(nodes)]
	for i, n := range nodes {
		a.pts[i] = n.Q
	}
	return a.pts
}

// auxPoints fills a.aux with the configurations of nodes.
func (a *Arena) auxPoints(nodes []Node) []geom.Vec {
	if cap(a.aux) < len(nodes) {
		a.aux = make([]geom.Vec, len(nodes))
	}
	a.aux = a.aux[:len(nodes)]
	for i, n := range nodes {
		a.aux[i] = n.Q
	}
	return a.aux
}

// resetSeen returns the cleared dedup set.
func (a *Arena) resetSeen() map[[2]int]bool {
	if a.seen == nil {
		a.seen = make(map[[2]int]bool)
	} else {
		clear(a.seen)
	}
	return a.seen
}

// copyEdges returns an owned copy of the arena's edge accumulator, or
// nil when no edges were found (matching the allocating kernels).
func copyEdges(edges [][2]int) [][2]int {
	if len(edges) == 0 {
		return nil
	}
	out := make([][2]int, len(edges))
	copy(out, edges)
	return out
}
