package core

import (
	"parmp/internal/cspace"
	"parmp/internal/prm"
	"parmp/internal/region"
	"parmp/internal/sched"
)

// PRMResult is the outcome of a parallel PRM run.
type PRMResult struct {
	Roadmap     *prm.Roadmap
	RegionGraph *region.Graph
	Phases      PhaseBreakdown
	// TotalTime is the virtual makespan of the whole pipeline.
	TotalTime float64
	// ProcStats is the construction-phase execution profile.
	ProcStats []sched.WorkerStats
	// PhaseReports holds every phase's virtual-time runtime report, in
	// replay order, so per-phase load-balance metrics (internal/obsv)
	// derive from a finished run without re-executing it.
	PhaseReports []PhaseReport
	// NodeLoads[p] counts roadmap nodes on processor p after the run —
	// the paper's load-profile quantity (Fig. 5(c)).
	NodeLoads []float64
	// CVBefore/CVAfter are the node-count coefficients of variation under
	// the naive partition and the final ownership (Fig. 5(b)).
	CVBefore, CVAfter float64
	// Remote-access accounting for the region-connection phase
	// (Fig. 7(b)): RegionRemote counts region-graph edges crossing
	// processors; RoadmapRemote counts cross-processor roadmap accesses.
	RegionRemote, RoadmapRemote int
	EdgeCut                     int
	// MigratedRegions counts ownership transfers due to repartitioning;
	// DiffusedRegions those due to the between-rounds diffusive rebalance
	// (Options.Rebalance).
	MigratedRegions int
	DiffusedRegions int
	// RegionCosts[i] summarizes region i's observed construct-phase task
	// costs over all committed rounds (count/sum/max; see RegionCost).
	// The bounded replacement for the per-task maps the retained
	// PhaseReports drop.
	RegionCosts []RegionCost
	// Repairs summarizes the incremental-repair work committed by
	// ApplyDelta calls (zero while the world never mutates).
	Repairs RepairStats
}

// prmRegionData memoizes per-region planning output.
type prmRegionData struct {
	nodes       []prm.Node
	sampleWork  cspace.Counters
	edges       [][2]int
	connectWork cspace.Counters
}

// ParallelPRM runs the uniform-subdivision parallel PRM (Algorithm 1)
// with the configured load-balancing strategy on space s. Every phase —
// sample, weight, repartition, construct (node connection), region
// connection, merge — executes through the scheduler runtime pipeline,
// so heavy phases parallelize on the host (Options.HostWorkers) while
// the virtual-time accounting stays deterministic.
//
// ParallelPRM is exactly one growth round of a PRMEngine; long-lived
// callers that want to keep growing the same roadmap (or cancel
// mid-build) should construct the engine directly.
func ParallelPRM(s *cspace.Space, opts Options) (*PRMResult, error) {
	eng, err := NewPRMEngine(s, opts)
	if err != nil {
		return nil, err
	}
	if err := eng.GrowRound(nil); err != nil {
		return nil, err
	}
	return eng.Result(), nil
}

// boundaryEdge records cross-region connections for the merge step.
type boundaryEdge struct {
	a, b  int
	pairs [][2]int
}
