package core

import (
	"parmp/internal/cspace"
	"parmp/internal/graph"
	"parmp/internal/metrics"
	"parmp/internal/prm"
	"parmp/internal/region"
	"parmp/internal/repart"
	"parmp/internal/rng"
	"parmp/internal/sched"
	"parmp/internal/work"
)

// PRMResult is the outcome of a parallel PRM run.
type PRMResult struct {
	Roadmap     *prm.Roadmap
	RegionGraph *region.Graph
	Phases      PhaseBreakdown
	// TotalTime is the virtual makespan of the whole pipeline.
	TotalTime float64
	// ProcStats is the construction-phase execution profile.
	ProcStats []sched.WorkerStats
	// PhaseReports holds every phase's virtual-time runtime report, in
	// replay order, so per-phase load-balance metrics (internal/obsv)
	// derive from a finished run without re-executing it.
	PhaseReports []PhaseReport
	// NodeLoads[p] counts roadmap nodes on processor p after the run —
	// the paper's load-profile quantity (Fig. 5(c)).
	NodeLoads []float64
	// CVBefore/CVAfter are the node-count coefficients of variation under
	// the naive partition and the final ownership (Fig. 5(b)).
	CVBefore, CVAfter float64
	// Remote-access accounting for the region-connection phase
	// (Fig. 7(b)): RegionRemote counts region-graph edges crossing
	// processors; RoadmapRemote counts cross-processor roadmap accesses.
	RegionRemote, RoadmapRemote int
	EdgeCut                     int
	// MigratedRegions counts ownership transfers due to repartitioning.
	MigratedRegions int
}

// prmRegionData memoizes per-region planning output.
type prmRegionData struct {
	nodes       []prm.Node
	sampleWork  cspace.Counters
	edges       [][2]int
	connectWork cspace.Counters
}

// ParallelPRM runs the uniform-subdivision parallel PRM (Algorithm 1)
// with the configured load-balancing strategy on space s. Every phase —
// sample, weight, repartition, construct (node connection), region
// connection, merge — executes through the scheduler runtime pipeline,
// so heavy phases parallelize on the host (Options.HostWorkers) while
// the virtual-time accounting stays deterministic.
func ParallelPRM(s *cspace.Space, opts Options) (*PRMResult, error) {
	opts = opts.Defaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res := &PRMResult{Roadmap: prm.NewRoadmap()}
	pl := newPipeline(opts)

	// --- Setup: subdivide C-space, build region graph, naive partition.
	dims := s.Env.Dim()
	spec := region.SplitEvenly(dims, opts.Regions, opts.Overlap)
	var rg *region.Graph
	if opts.Adaptive {
		rg = region.AdaptiveGrid(s.Env, region.AdaptiveSpec{
			Base:     spec,
			MaxDepth: opts.AdaptiveDepth,
		})
	} else {
		rg = region.UniformGrid(s.Bounds, spec)
	}
	region.NaiveColumnPartition(rg, opts.Procs)
	res.RegionGraph = rg
	n := rg.NumRegions()
	res.Phases.Setup = pl.barrier()

	params := prm.Params{SamplesPerRegion: opts.SamplesPerRegion, K: opts.ConnectK, Sampler: opts.Sampler}
	data := make([]prmRegionData, n)

	// --- Sampling phase (cheap, bulk-synchronous, host-parallel).
	sampleRep := pl.run(phaseSpec{
		name: "sample",
		queues: queuesByOwner(opts.Procs, rg.Owner, n, func(i int) work.Task {
			return work.Task{
				ID: i,
				Run: func() (float64, int) {
					r := rng.Derive(opts.Seed, uint64(i))
					data[i].nodes, data[i].sampleWork = prm.SampleRegion(s, rg.Region(i).Box, i, params, r)
					return opts.Cost.Time(data[i].sampleWork), len(data[i].nodes)
				},
			}
		}),
	})
	res.Phases.Sampling = sampleRep.Makespan + pl.barrier()
	sampleCounts := make([]int, n)
	for i := 0; i < n; i++ {
		sampleCounts[i] = len(data[i].nodes)
	}

	// --- Weight phase: sample counts estimate region work (a good
	// estimator for PRM — the paper's Fig. 4/5 contrast with RRT).
	weights := repart.SampleCountWeights(sampleCounts)
	rg.SetWeights(weights)
	res.CVBefore = metrics.CV(rg.LoadPerProcessor(opts.Procs))

	// --- Optional repartitioning before the expensive phase.
	if opts.Strategy == Repartition {
		// Rebalance only when the candidate meaningfully lowers the
		// bottleneck load; an already-balanced run (e.g. the free
		// environment) keeps its partition and pays only the check.
		migrated, cost := pl.rebalance(rg, weights, sampleCounts)
		res.MigratedRegions = migrated
		res.Phases.Redistribution = cost + pl.barrier()
	}

	// --- Node-connection phase (expensive; stealable).
	report := pl.run(phaseSpec{
		name: "construct",
		queues: queuesByOwner(opts.Procs, rg.Owner, n, func(i int) work.Task {
			return work.Task{
				ID:      i,
				Payload: len(data[i].nodes), // stealing this region moves its samples
				Run: func() (float64, int) {
					data[i].edges, data[i].connectWork = prm.ConnectRegion(s, data[i].nodes, params)
					return opts.Cost.Time(data[i].connectWork), len(data[i].nodes)
				},
			}
		}),
		policy: pl.stealPolicy(),
		salt:   saltPRMConstruct,
	})
	res.ProcStats = report.Workers
	res.Phases.NodeConnection = report.Makespan + pl.barrier()

	// Work stealing permanently migrates the region and its data: record
	// the final ownership so the region-connection phase sees it.
	pl.applyOwnership(rg, report)
	res.EdgeCut = rg.EdgeCut()

	// --- Region-connection phase (Algorithm 1, lines 10-12). The
	// boundary-connection work per cut edge runs host-parallel; a cut
	// edge's connection can then run on either endpoint's owner, and the
	// currently lighter one takes it (both owners hold the region graph,
	// so this needs no extra coordination).
	var pairs [][2]int
	rg.ForEachAdjacentPair(func(a, b int) { pairs = append(pairs, [2]int{a, b}) })
	brs := make([]prm.BoundaryResult, len(pairs))
	connectTasks := [][]work.Task{make([]work.Task, len(pairs))}
	for idx := range pairs {
		idx := idx
		a, b := pairs[idx][0], pairs[idx][1]
		connectTasks[0][idx] = work.Task{
			ID: idx,
			Run: func() (float64, int) {
				brs[idx] = prm.ConnectBoundary(s, data[a].nodes, data[b].nodes, opts.BoundaryK, opts.BoundaryFrontier)
				return opts.Cost.Time(brs[idx].Work), 0
			},
		}
	}
	pl.hostExec("region-connect", connectTasks)
	connLoad := make([]float64, opts.Procs)
	connQueues := make([][]work.Task, opts.Procs)
	var boundaryEdges []boundaryEdge
	for idx := range pairs {
		a, b := pairs[idx][0], pairs[idx][1]
		cost, _ := connectTasks[0][idx].Run() // memoized after the host pass
		br := brs[idx]
		ownerA, ownerB := rg.Owner[a], rg.Owner[b]
		if ownerA != ownerB {
			res.RegionRemote++
			res.RoadmapRemote += br.Attempts
			cost += opts.Profile.RemoteAccess * float64(1+br.Attempts)
		} else {
			cost += opts.Profile.LocalAccess * float64(1+br.Attempts)
		}
		runner := ownerA
		if connLoad[ownerB] < connLoad[ownerA] {
			runner = ownerB
		}
		connLoad[runner] += cost
		connQueues[runner] = append(connQueues[runner], costTask(idx, cost))
		boundaryEdges = append(boundaryEdges, boundaryEdge{a: a, b: b, pairs: br.Edges})
	}
	connRep := pl.replay(phaseSpec{name: "region-connect", queues: connQueues})
	res.Phases.RegionConnection = connRep.Makespan + pl.barrier()

	// --- Merge into a single roadmap.
	base := make([]int, n)
	for i := 0; i < n; i++ {
		base[i] = res.Roadmap.NumNodes()
		for _, nd := range data[i].nodes {
			res.Roadmap.AddNode(nd)
		}
	}
	for i := 0; i < n; i++ {
		for _, e := range data[i].edges {
			a, b := graph.ID(base[i]+e[0]), graph.ID(base[i]+e[1])
			res.Roadmap.G.AddEdge(a, b, s.Distance(data[i].nodes[e[0]].Q, data[i].nodes[e[1]].Q))
		}
	}
	for _, be := range boundaryEdges {
		for _, pr := range be.pairs {
			a := graph.ID(base[be.a] + pr[0])
			b := graph.ID(base[be.b] + pr[1])
			res.Roadmap.G.AddEdge(a, b, s.Distance(data[be.a].nodes[pr[0]].Q, data[be.b].nodes[pr[1]].Q))
		}
	}
	res.Phases.Other = pl.barrier()

	// --- Load profile and totals.
	res.NodeLoads = make([]float64, opts.Procs)
	for i := 0; i < n; i++ {
		res.NodeLoads[rg.Owner[i]] += float64(len(data[i].nodes))
	}
	res.CVAfter = metrics.CV(res.NodeLoads)
	res.TotalTime = res.Phases.Total()
	res.PhaseReports = pl.reports
	return res, nil
}

// boundaryEdge records cross-region connections for the merge step.
type boundaryEdge struct {
	a, b  int
	pairs [][2]int
}
