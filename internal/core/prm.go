package core

import (
	"parmp/internal/cspace"
	"parmp/internal/dist"
	"parmp/internal/graph"
	"parmp/internal/metrics"
	"parmp/internal/prm"
	"parmp/internal/region"
	"parmp/internal/repart"
	"parmp/internal/rng"
	"parmp/internal/work"
)

// PRMResult is the outcome of a parallel PRM run.
type PRMResult struct {
	Roadmap     *prm.Roadmap
	RegionGraph *region.Graph
	Phases      PhaseBreakdown
	// TotalTime is the virtual makespan of the whole pipeline.
	TotalTime float64
	// ProcStats is the construction-phase execution profile.
	ProcStats []dist.ProcStats
	// NodeLoads[p] counts roadmap nodes on processor p after the run —
	// the paper's load-profile quantity (Fig. 5(c)).
	NodeLoads []float64
	// CVBefore/CVAfter are the node-count coefficients of variation under
	// the naive partition and the final ownership (Fig. 5(b)).
	CVBefore, CVAfter float64
	// Remote-access accounting for the region-connection phase
	// (Fig. 7(b)): RegionRemote counts region-graph edges crossing
	// processors; RoadmapRemote counts cross-processor roadmap accesses.
	RegionRemote, RoadmapRemote int
	EdgeCut                     int
	// MigratedRegions counts ownership transfers due to repartitioning.
	MigratedRegions int
}

// prmRegionData memoizes per-region planning output.
type prmRegionData struct {
	nodes       []prm.Node
	sampleWork  cspace.Counters
	edges       [][2]int
	connectWork cspace.Counters
}

// ParallelPRM runs the uniform-subdivision parallel PRM (Algorithm 1)
// with the configured load-balancing strategy on space s.
func ParallelPRM(s *cspace.Space, opts Options) (*PRMResult, error) {
	opts = opts.Defaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res := &PRMResult{Roadmap: prm.NewRoadmap()}

	// --- Setup: subdivide C-space, build region graph, naive partition.
	dims := s.Env.Dim()
	spec := region.SplitEvenly(dims, opts.Regions, opts.Overlap)
	var rg *region.Graph
	if opts.Adaptive {
		rg = region.AdaptiveGrid(s.Env, region.AdaptiveSpec{
			Base:     spec,
			MaxDepth: opts.AdaptiveDepth,
		})
	} else {
		rg = region.UniformGrid(s.Bounds, spec)
	}
	region.NaiveColumnPartition(rg, opts.Procs)
	res.RegionGraph = rg
	n := rg.NumRegions()
	res.Phases.Setup = opts.Profile.Barrier(opts.Procs)

	params := prm.Params{SamplesPerRegion: opts.SamplesPerRegion, K: opts.ConnectK, Sampler: opts.Sampler}
	data := make([]prmRegionData, n)

	// --- Sampling sub-phase (cheap, static).
	sampleCosts := make([][]float64, opts.Procs)
	sampleCounts := make([]int, n)
	for i := 0; i < n; i++ {
		r := rng.Derive(opts.Seed, uint64(i))
		data[i].nodes, data[i].sampleWork = prm.SampleRegion(s, rg.Region(i).Box, i, params, r)
		sampleCounts[i] = len(data[i].nodes)
		owner := rg.Owner[i]
		sampleCosts[owner] = append(sampleCosts[owner], opts.Cost.Time(data[i].sampleWork))
	}
	samplingMakespan, _ := dist.StaticPhase(sampleCosts)
	res.Phases.Sampling = samplingMakespan + opts.Profile.Barrier(opts.Procs)

	weights := repart.SampleCountWeights(sampleCounts)
	rg.SetWeights(weights)
	res.CVBefore = metrics.CV(rg.LoadPerProcessor(opts.Procs))

	// --- Optional repartitioning before the expensive phase.
	if opts.Strategy == Repartition {
		var assign []int
		switch opts.Partitioner {
		case PartitionLPT:
			assign = repart.GreedyLPT(weights, opts.Procs)
		default:
			assign = repart.GreedySpatial(rg, weights, opts.Procs, 0.05)
		}
		// Rebalance only when the candidate meaningfully lowers the
		// bottleneck load; an already-balanced run (e.g. the free
		// environment) keeps its partition and pays only the check.
		if worthRebalancing(weights, rg.Owner, assign, opts.Procs) {
			plan := repart.MakePlan(rg, assign)
			res.MigratedRegions = len(plan.Moved)
			res.Phases.Redistribution = plan.MigrationCost(rg, opts.Profile, sampleCounts, opts.Procs) +
				opts.Profile.Barrier(opts.Procs)
			plan.Apply(rg)
		} else {
			res.Phases.Redistribution = opts.Profile.Barrier(opts.Procs)
		}
	}

	// --- Node-connection phase (expensive; stealable).
	queues := make([][]work.Task, opts.Procs)
	for i := 0; i < n; i++ {
		i := i
		task := work.Task{
			ID:      i,
			Payload: len(data[i].nodes), // stealing this region moves its samples
			Run: func() (float64, int) {
				data[i].edges, data[i].connectWork = prm.ConnectRegion(s, data[i].nodes, params)
				return opts.Cost.Time(data[i].connectWork), len(data[i].nodes)
			},
		}
		queues[rg.Owner[i]] = append(queues[rg.Owner[i]], task)
	}
	var policy = opts.Policy
	if opts.Strategy != WorkStealing {
		policy = nil
	}
	hostPrePass(opts, queues)
	report := dist.Run(dist.Config{
		Procs:      opts.Procs,
		Profile:    opts.Profile,
		Policy:     policy,
		StealChunk: opts.StealChunk,
		MaxRounds:  4,
		Seed:       opts.Seed ^ 0x9e37,
	}, queues)
	res.ProcStats = report.Procs
	res.Phases.NodeConnection = report.Makespan + opts.Profile.Barrier(opts.Procs)

	// Work stealing permanently migrates the region and its data: record
	// the final ownership so the region-connection phase sees it.
	if opts.Strategy == WorkStealing {
		for id, p := range report.ExecutedBy {
			rg.Owner[id] = p
		}
	}
	res.EdgeCut = rg.EdgeCut()

	// --- Region-connection phase (Algorithm 1, lines 10-12). A cut
	// edge's connection work can run on either endpoint's owner; the
	// currently lighter one takes it (both owners hold the region graph,
	// so this needs no extra coordination).
	connCosts := make([][]float64, opts.Procs)
	connLoad := make([]float64, opts.Procs)
	var boundaryEdges []boundaryEdge
	rg.ForEachAdjacentPair(func(a, b int) {
		br := prm.ConnectBoundary(s, data[a].nodes, data[b].nodes, opts.BoundaryK, opts.BoundaryFrontier)
		cost := opts.Cost.Time(br.Work)
		ownerA, ownerB := rg.Owner[a], rg.Owner[b]
		if ownerA != ownerB {
			res.RegionRemote++
			res.RoadmapRemote += br.Attempts
			cost += opts.Profile.RemoteAccess * float64(1+br.Attempts)
		} else {
			cost += opts.Profile.LocalAccess * float64(1+br.Attempts)
		}
		runner := ownerA
		if connLoad[ownerB] < connLoad[ownerA] {
			runner = ownerB
		}
		connLoad[runner] += cost
		connCosts[runner] = append(connCosts[runner], cost)
		boundaryEdges = append(boundaryEdges, boundaryEdge{a: a, b: b, pairs: br.Edges})
	})
	regionConnMakespan, _ := dist.StaticPhase(connCosts)
	res.Phases.RegionConnection = regionConnMakespan + opts.Profile.Barrier(opts.Procs)

	// --- Merge into a single roadmap.
	base := make([]int, n)
	for i := 0; i < n; i++ {
		base[i] = res.Roadmap.NumNodes()
		for _, nd := range data[i].nodes {
			res.Roadmap.AddNode(nd)
		}
	}
	for i := 0; i < n; i++ {
		for _, e := range data[i].edges {
			a, b := graph.ID(base[i]+e[0]), graph.ID(base[i]+e[1])
			res.Roadmap.G.AddEdge(a, b, s.Distance(data[i].nodes[e[0]].Q, data[i].nodes[e[1]].Q))
		}
	}
	for _, be := range boundaryEdges {
		for _, pr := range be.pairs {
			a := graph.ID(base[be.a] + pr[0])
			b := graph.ID(base[be.b] + pr[1])
			res.Roadmap.G.AddEdge(a, b, s.Distance(data[be.a].nodes[pr[0]].Q, data[be.b].nodes[pr[1]].Q))
		}
	}
	res.Phases.Other = opts.Profile.Barrier(opts.Procs)

	// --- Load profile and totals.
	res.NodeLoads = make([]float64, opts.Procs)
	for i := 0; i < n; i++ {
		res.NodeLoads[rg.Owner[i]] += float64(len(data[i].nodes))
	}
	res.CVAfter = metrics.CV(res.NodeLoads)
	res.TotalTime = res.Phases.Total()
	return res, nil
}

// boundaryEdge records cross-region connections for the merge step.
type boundaryEdge struct {
	a, b  int
	pairs [][2]int
}

// worthRebalancing reports whether the candidate assignment lowers the
// bottleneck (maximum per-processor) load by more than a small threshold.
// Migrating for marginal gains costs more than it saves — the paper's
// free-environment experiments show effective balancers must be no-ops on
// balanced workloads.
func worthRebalancing(weights []float64, current, candidate []int, procs int) bool {
	maxLoad := func(assign []int) float64 {
		load := make([]float64, procs)
		for i, w := range weights {
			load[assign[i]] += w
		}
		var m float64
		for _, l := range load {
			if l > m {
				m = l
			}
		}
		return m
	}
	const threshold = 0.05
	cur := maxLoad(current)
	return cur > 0 && maxLoad(candidate) < cur*(1-threshold)
}
