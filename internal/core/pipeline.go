package core

import (
	"sync"

	"parmp/internal/costmodel"
	"parmp/internal/dist"
	"parmp/internal/exec"
	"parmp/internal/region"
	"parmp/internal/repart"
	"parmp/internal/sched"
	"parmp/internal/steal"
	"parmp/internal/work"
)

// Phase seed salts keep victim randomization independent across the
// pipeline's stealable phases (and across PRM vs RRT).
const (
	saltPRMConstruct     = 0x9e37
	saltRRTConstruct     = 0x51ab
	saltConnectConstruct = 0x77cd
)

// phaseSpec describes one pipeline phase as a first-class record: named
// per-processor task queues plus the steal policy governing execution.
// A nil policy makes the phase bulk-synchronous (each processor drains
// its own queue; the phase ends at the slowest one).
type phaseSpec struct {
	name   string
	queues [][]work.Task
	policy steal.Policy
	salt   uint64
}

// PhaseReport couples one pipeline phase's virtual-time runtime report
// with the phase name and its position in the replay sequence. The
// planners keep every phase's report in their results, so per-phase
// load-balance metrics (imbalance, utilization, steal efficiency — see
// internal/obsv) are derivable from a finished run without re-executing
// it.
//
// Memory bound: the retained reports drop their per-task maps
// (ExecutedBy/Cost/Payload/Elapsed/TaskRegion) after the pipeline has
// derived what it needs from them — the cost model observes the live
// report before retention — so a result holds O(rounds × phases ×
// workers) worker stats, not O(rounds × tasks) task entries. Per-region
// cost detail survives in the results' bounded RegionCosts summary
// (count/sum/max per region, O(regions) total).
type PhaseReport struct {
	// Phase is the phase name ("sample", "construct", "weight",
	// "region-connect", ...).
	Phase string
	// Round is the 0-based position of this report in the pipeline's
	// replay order (phases that execute more than once get one report,
	// and one Round, per execution).
	Round int
	// Report is the scheduler runtime's execution profile for the phase.
	Report sched.Report
}

// pipeline executes planner phases through the scheduler runtime layer:
// every heavy phase runs once, concurrently, on the host executor (when
// Options.HostWorkers > 1), and then replays deterministically on the
// virtual-time runtime for the paper's load-balance accounting. Results
// and virtual times are bit-identical to a sequential run because region
// tasks are deterministic and memoized.
type pipeline struct {
	opts Options
	vt   sched.Runtime // virtual-time backend (default: the DES in internal/dist)
	host sched.Runtime // real-goroutine backend for the host pre-pass
	// reports accumulates every replayed phase's runtime report, in
	// replay order, for the planner results' PhaseReports.
	reports []PhaseReport
	// stop, when non-nil, cooperatively cancels phase execution: both
	// backends observe it between tasks/events and return early with
	// Report.Stopped set. The engines set it per growth round from the
	// caller's context; one-shot runs leave it nil (zero overhead).
	stop <-chan struct{}
	// cm is the observed per-region cost model (CostObserved only),
	// lazily built at the first construct observation. The engines feed
	// it at commit time, so an aborted round never pollutes it.
	cm costmodel.Model
}

func newPipeline(opts Options) *pipeline {
	vt := opts.Runtime
	if vt == nil {
		vt = dist.Runtime
	}
	return &pipeline{opts: opts, vt: vt, host: exec.Runtime}
}

// hostPhaseObserver, when non-nil, receives each phase's host pre-pass
// report. Test hook only.
var hostPhaseObserver func(phase string, rep sched.Report)

// hostExec memoizes the queued tasks in place and executes them
// concurrently on HostWorkers goroutines. A no-op for HostWorkers <= 1,
// where tasks run lazily (and sequentially) during the virtual-time
// replay instead.
func (pl *pipeline) hostExec(name string, queues [][]work.Task) {
	if pl.opts.HostWorkers <= 1 {
		return
	}
	for p := range queues {
		queues[p] = memoize(queues[p])
	}
	pre := make([][]work.Task, len(queues))
	for p := range queues {
		pre[p] = append([]work.Task(nil), queues[p]...)
	}
	rep := pl.host.Run(sched.Config{
		Workers: pl.opts.HostWorkers,
		Policy:  steal.RandK{K: 2},
		Seed:    pl.opts.Seed,
		Stop:    pl.stop,
	}, pre)
	if hostPhaseObserver != nil {
		hostPhaseObserver(name, rep)
	}
}

// replay plays a phase on the virtual-time runtime and returns its
// report, keeping a copy in the pipeline's phase-report log. Memoized
// tasks answer instantly with their recorded cost, so the replay is pure
// accounting after a host pre-pass. The retained copy is trimmed of its
// per-task maps (see PhaseReport's memory bound); the returned report is
// the full one, so same-round consumers (ownership write-back, cost
// observation, weight correlation) see every task.
func (pl *pipeline) replay(ph phaseSpec) sched.Report {
	rep := pl.vt.Run(sched.Config{
		Workers:    pl.opts.Procs,
		Profile:    pl.opts.Profile,
		Policy:     ph.policy,
		StealChunk: pl.opts.StealChunk,
		MaxRounds:  pl.opts.maxRounds(),
		Seed:       pl.opts.Seed ^ ph.salt,
		Stop:       pl.stop,
	}, ph.queues)
	pl.reports = append(pl.reports, PhaseReport{Phase: ph.name, Round: len(pl.reports), Report: trimReport(rep)})
	return rep
}

// trimReport returns a copy of rep without the per-task maps, keeping the
// O(workers) profile (stats, makespan, totals) that per-phase metrics
// derive from. Retaining full reports across an engine's lifetime would
// grow O(rounds × tasks); the bounded per-region view lives in the
// results' RegionCosts instead.
func trimReport(rep sched.Report) sched.Report {
	rep.ExecutedBy = nil
	rep.Cost = nil
	rep.Payload = nil
	rep.Elapsed = nil
	rep.TaskRegion = nil
	return rep
}

// run executes a phase end to end: concurrent host pass, then the
// deterministic virtual-time replay.
func (pl *pipeline) run(ph phaseSpec) sched.Report {
	pl.hostExec(ph.name, ph.queues)
	return pl.replay(ph)
}

// RegionCost is a bounded summary of one region's observed
// construct-phase task costs across an engine's committed rounds: how
// many construct tasks the region ran, their total virtual cost, and the
// most expensive single task. It replaces retaining the full per-task
// event stream on results — O(regions) however many rounds run.
type RegionCost struct {
	Count int
	Sum   float64
	Max   float64
}

// Mean is the region's average per-round construct cost (0 before the
// first observation).
func (c RegionCost) Mean() float64 {
	if c.Count == 0 {
		return 0
	}
	return c.Sum / float64(c.Count)
}

// accumulateRegionCosts folds one construct report's per-task costs into
// the per-region accumulator, keyed by TaskRegion. Untagged tasks
// (work.NoRegion) are skipped.
func accumulateRegionCosts(acc []RegionCost, rep sched.Report) {
	for id, c := range rep.Cost {
		r, ok := rep.TaskRegion[id]
		if !ok || r < 0 || r >= len(acc) {
			continue
		}
		acc[r].Count++
		acc[r].Sum += c
		if c > acc[r].Max {
			acc[r].Max = c
		}
	}
}

// stealPolicy returns the victim policy for stealable phases, nil unless
// the run's strategy is WorkStealing.
func (pl *pipeline) stealPolicy() steal.Policy {
	if pl.opts.Strategy != WorkStealing {
		return nil
	}
	return pl.opts.Policy
}

// barrier prices one global barrier on the configured machine.
func (pl *pipeline) barrier() float64 {
	return pl.opts.Profile.Barrier(pl.opts.Procs)
}

// queuesByOwner shards n region tasks into per-processor queues by
// current region ownership, preserving region order within each queue.
// Every task is tagged with its region (Task.Region = i) so scheduler
// reports attribute observed costs per region for the cost model.
func queuesByOwner(procs int, owner []int, n int, mk func(i int) work.Task) [][]work.Task {
	queues := make([][]work.Task, procs)
	for i := 0; i < n; i++ {
		t := mk(i)
		t.Region = i
		queues[owner[i]] = append(queues[owner[i]], t)
	}
	return queues
}

// costTask wraps a precomputed cost as a task for bulk-synchronous
// accounting phases. Its ID is phase-local (a pair index, not a region),
// so it carries no region attribution unless a caller tags it.
func costTask(id int, cost float64) work.Task {
	return work.Task{ID: id, Region: work.NoRegion, Run: func() (float64, int) { return cost, 0 }}
}

// observeConstruct folds one round's construct-phase report into the
// observed cost model, attributing each task's occupancy time (Elapsed,
// which equals the virtual cost on the virtual-time backend) to its
// TaskRegion. When units is non-nil the model tracks cost per work unit
// (cost divided by units[r] — for PRM, the region's fresh sample count
// that round) instead of raw task cost, which keeps the estimate
// comparable across rounds whose unit counts differ; regions with zero
// units that round carry no information and are skipped. No-op unless
// Options.CostModel is CostObserved. The engines call it at commit time
// only, so aborted rounds leave the model untouched.
func (pl *pipeline) observeConstruct(n int, rep sched.Report, units []int) {
	if pl.opts.CostModel != CostObserved {
		return
	}
	if pl.cm == nil {
		pl.cm = costmodel.NewEWMA(n, pl.opts.CostAlpha)
	}
	costs := make([]float64, n)
	seen := make([]bool, n)
	for id, c := range rep.Elapsed {
		r, ok := rep.TaskRegion[id]
		if !ok || r < 0 || r >= n {
			continue
		}
		costs[r] += c
		seen[r] = true
	}
	if units != nil {
		for r := 0; r < n; r++ {
			if !seen[r] {
				continue
			}
			if units[r] <= 0 {
				seen[r] = false
				costs[r] = 0
				continue
			}
			costs[r] /= float64(units[r])
		}
	}
	pl.cm.Observe(costs, seen)
}

// roundWeights maps a static per-region estimate through the observed
// cost model: under CostStatic (or before the model's first observation
// — the cold start) the static weights pass through unchanged, so round
// 0 is bit-identical across cost models; once warm, observed regions get
// the EWMA estimate and cold ones the static weight rescaled into
// observed units (costmodel.EWMA.Blend).
//
// units mirrors observeConstruct: when non-nil the model holds per-unit
// costs, so the fitted weight is estimate × units[i] — the zero-lag unit
// count carries this round's volume while the model carries the measured
// per-unit heterogeneity. The cold-start blend then uses a unit static
// estimate (1 per unit), so unobserved regions get the mean observed
// per-unit cost.
func (pl *pipeline) roundWeights(static []float64, units []int) []float64 {
	if pl.opts.CostModel != CostObserved || pl.cm == nil || pl.cm.Rounds() == 0 {
		return static
	}
	if units == nil {
		return pl.cm.Blend(static)
	}
	ones := make([]float64, len(static))
	for i := range ones {
		ones[i] = 1
	}
	per := pl.cm.Blend(ones)
	out := make([]float64, len(static))
	for i := range out {
		out[i] = per[i] * float64(units[i])
	}
	return out
}

// diffuse applies the between-rounds diffusive rebalance to the
// construct queues: exec.Diffuse shifts region tasks along the steal
// mesh toward the weight equilibrium, then the resulting placement is
// written back as region ownership and the transfers priced like
// migrations (vertexCounts supplies the per-vertex payload). Returns the
// number of regions whose ownership moved and the migration cost; (0, 0)
// unless Options.Rebalance is RebalanceDiffusive. Unlike the bulk
// repartition there is no global barrier to charge — diffusion is
// neighbor-local, which is its point.
func (pl *pipeline) diffuse(rg *region.Graph, queues [][]work.Task, weights []float64, vertexCounts []int) (moved int, cost float64) {
	if pl.opts.Rebalance != RebalanceDiffusive {
		return 0, 0
	}
	sweeps := pl.opts.DiffuseSweeps
	if sweeps <= 0 {
		sweeps = 3
	}
	est := func(t work.Task) float64 {
		if t.Region >= 0 && t.Region < len(weights) {
			return weights[t.Region]
		}
		return 0
	}
	if exec.Diffuse(queues, est, sweeps) == 0 {
		return 0, 0
	}
	assign := append([]int(nil), rg.Owner...)
	for p, q := range queues {
		for _, t := range q {
			if t.Region >= 0 && t.Region < len(assign) {
				assign[t.Region] = p
			}
		}
	}
	plan := repart.MakePlan(rg, assign)
	cost = plan.MigrationCost(rg, pl.opts.Profile, vertexCounts, pl.opts.Procs)
	plan.Apply(rg)
	return len(plan.Moved), cost
}

// applyOwnership writes the final task ownership back into the region
// graph after a stealable phase: work stealing permanently migrates the
// region and its data, so downstream phases see the new owners.
func (pl *pipeline) applyOwnership(rg *region.Graph, rep sched.Report) {
	if pl.opts.Strategy != WorkStealing {
		return
	}
	for id, p := range rep.ExecutedBy {
		rg.Owner[id] = p
	}
}

// rebalance runs the configured partitioner over the weighted region
// graph and applies the migration plan when it meaningfully lowers the
// bottleneck load (worthRebalancing). vertexCounts, when non-nil, prices
// per-vertex migration payload (PRM samples). It returns the number of
// migrated regions and the migration cost (0, 0 when rebalancing is
// declined).
func (pl *pipeline) rebalance(rg *region.Graph, weights []float64, vertexCounts []int) (migrated int, cost float64) {
	var assign []int
	switch pl.opts.Partitioner {
	case PartitionLPT:
		assign = repart.GreedyLPT(weights, pl.opts.Procs)
	default:
		assign = repart.GreedySpatial(rg, weights, pl.opts.Procs, 0.05)
	}
	if !worthRebalancing(weights, rg.Owner, assign, pl.opts.Procs) {
		return 0, 0
	}
	plan := repart.MakePlan(rg, assign)
	cost = plan.MigrationCost(rg, pl.opts.Profile, vertexCounts, pl.opts.Procs)
	plan.Apply(rg)
	return len(plan.Moved), cost
}

// worthRebalancing reports whether the candidate assignment lowers the
// bottleneck (maximum per-processor) load by more than a small threshold.
// Migrating for marginal gains costs more than it saves — the paper's
// free-environment experiments show effective balancers must be no-ops on
// balanced workloads.
func worthRebalancing(weights []float64, current, candidate []int, procs int) bool {
	maxLoad := func(assign []int) float64 {
		load := make([]float64, procs)
		for i, w := range weights {
			load[assign[i]] += w
		}
		var m float64
		for _, l := range load {
			if l > m {
				m = l
			}
		}
		return m
	}
	const threshold = 0.05
	cur := maxLoad(current)
	return cur > 0 && maxLoad(candidate) < cur*(1-threshold)
}

// memoize wraps tasks so each Run body executes at most once even when a
// concurrent host pre-pass and the virtual-time replay both invoke it.
func memoize(tasks []work.Task) []work.Task {
	out := make([]work.Task, len(tasks))
	for i := range tasks {
		inner := tasks[i].Run
		var once sync.Once
		var cost float64
		var payload int
		out[i] = work.Task{
			ID:      tasks[i].ID,
			Payload: tasks[i].Payload,
			Region:  tasks[i].Region,
			Run: func() (float64, int) {
				once.Do(func() { cost, payload = inner() })
				return cost, payload
			},
		}
	}
	return out
}
