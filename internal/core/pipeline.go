package core

import (
	"sync"

	"parmp/internal/dist"
	"parmp/internal/exec"
	"parmp/internal/region"
	"parmp/internal/repart"
	"parmp/internal/sched"
	"parmp/internal/steal"
	"parmp/internal/work"
)

// Phase seed salts keep victim randomization independent across the
// pipeline's stealable phases (and across PRM vs RRT).
const (
	saltPRMConstruct     = 0x9e37
	saltRRTConstruct     = 0x51ab
	saltConnectConstruct = 0x77cd
)

// phaseSpec describes one pipeline phase as a first-class record: named
// per-processor task queues plus the steal policy governing execution.
// A nil policy makes the phase bulk-synchronous (each processor drains
// its own queue; the phase ends at the slowest one).
type phaseSpec struct {
	name   string
	queues [][]work.Task
	policy steal.Policy
	salt   uint64
}

// PhaseReport couples one pipeline phase's virtual-time runtime report
// with the phase name and its position in the replay sequence. The
// planners keep every phase's report in their results, so per-phase
// load-balance metrics (imbalance, utilization, steal efficiency — see
// internal/obsv) are derivable after the run without re-executing it.
type PhaseReport struct {
	// Phase is the phase name ("sample", "construct", "weight",
	// "region-connect", ...).
	Phase string
	// Round is the 0-based position of this report in the pipeline's
	// replay order (phases that execute more than once get one report,
	// and one Round, per execution).
	Round int
	// Report is the scheduler runtime's execution profile for the phase.
	Report sched.Report
}

// pipeline executes planner phases through the scheduler runtime layer:
// every heavy phase runs once, concurrently, on the host executor (when
// Options.HostWorkers > 1), and then replays deterministically on the
// virtual-time runtime for the paper's load-balance accounting. Results
// and virtual times are bit-identical to a sequential run because region
// tasks are deterministic and memoized.
type pipeline struct {
	opts Options
	vt   sched.Runtime // virtual-time backend (default: the DES in internal/dist)
	host sched.Runtime // real-goroutine backend for the host pre-pass
	// reports accumulates every replayed phase's runtime report, in
	// replay order, for the planner results' PhaseReports.
	reports []PhaseReport
	// stop, when non-nil, cooperatively cancels phase execution: both
	// backends observe it between tasks/events and return early with
	// Report.Stopped set. The engines set it per growth round from the
	// caller's context; one-shot runs leave it nil (zero overhead).
	stop <-chan struct{}
}

func newPipeline(opts Options) *pipeline {
	vt := opts.Runtime
	if vt == nil {
		vt = dist.Runtime
	}
	return &pipeline{opts: opts, vt: vt, host: exec.Runtime}
}

// hostPhaseObserver, when non-nil, receives each phase's host pre-pass
// report. Test hook only.
var hostPhaseObserver func(phase string, rep sched.Report)

// hostExec memoizes the queued tasks in place and executes them
// concurrently on HostWorkers goroutines. A no-op for HostWorkers <= 1,
// where tasks run lazily (and sequentially) during the virtual-time
// replay instead.
func (pl *pipeline) hostExec(name string, queues [][]work.Task) {
	if pl.opts.HostWorkers <= 1 {
		return
	}
	for p := range queues {
		queues[p] = memoize(queues[p])
	}
	pre := make([][]work.Task, len(queues))
	for p := range queues {
		pre[p] = append([]work.Task(nil), queues[p]...)
	}
	rep := pl.host.Run(sched.Config{
		Workers: pl.opts.HostWorkers,
		Policy:  steal.RandK{K: 2},
		Seed:    pl.opts.Seed,
		Stop:    pl.stop,
	}, pre)
	if hostPhaseObserver != nil {
		hostPhaseObserver(name, rep)
	}
}

// replay plays a phase on the virtual-time runtime and returns its
// report, keeping a copy in the pipeline's phase-report log. Memoized
// tasks answer instantly with their recorded cost, so the replay is pure
// accounting after a host pre-pass.
func (pl *pipeline) replay(ph phaseSpec) sched.Report {
	rep := pl.vt.Run(sched.Config{
		Workers:    pl.opts.Procs,
		Profile:    pl.opts.Profile,
		Policy:     ph.policy,
		StealChunk: pl.opts.StealChunk,
		MaxRounds:  pl.opts.maxRounds(),
		Seed:       pl.opts.Seed ^ ph.salt,
		Stop:       pl.stop,
	}, ph.queues)
	pl.reports = append(pl.reports, PhaseReport{Phase: ph.name, Round: len(pl.reports), Report: rep})
	return rep
}

// run executes a phase end to end: concurrent host pass, then the
// deterministic virtual-time replay.
func (pl *pipeline) run(ph phaseSpec) sched.Report {
	pl.hostExec(ph.name, ph.queues)
	return pl.replay(ph)
}

// stealPolicy returns the victim policy for stealable phases, nil unless
// the run's strategy is WorkStealing.
func (pl *pipeline) stealPolicy() steal.Policy {
	if pl.opts.Strategy != WorkStealing {
		return nil
	}
	return pl.opts.Policy
}

// barrier prices one global barrier on the configured machine.
func (pl *pipeline) barrier() float64 {
	return pl.opts.Profile.Barrier(pl.opts.Procs)
}

// queuesByOwner shards n region tasks into per-processor queues by
// current region ownership, preserving region order within each queue.
func queuesByOwner(procs int, owner []int, n int, mk func(i int) work.Task) [][]work.Task {
	queues := make([][]work.Task, procs)
	for i := 0; i < n; i++ {
		queues[owner[i]] = append(queues[owner[i]], mk(i))
	}
	return queues
}

// costTask wraps a precomputed cost as a task for bulk-synchronous
// accounting phases.
func costTask(id int, cost float64) work.Task {
	return work.Task{ID: id, Run: func() (float64, int) { return cost, 0 }}
}

// applyOwnership writes the final task ownership back into the region
// graph after a stealable phase: work stealing permanently migrates the
// region and its data, so downstream phases see the new owners.
func (pl *pipeline) applyOwnership(rg *region.Graph, rep sched.Report) {
	if pl.opts.Strategy != WorkStealing {
		return
	}
	for id, p := range rep.ExecutedBy {
		rg.Owner[id] = p
	}
}

// rebalance runs the configured partitioner over the weighted region
// graph and applies the migration plan when it meaningfully lowers the
// bottleneck load (worthRebalancing). vertexCounts, when non-nil, prices
// per-vertex migration payload (PRM samples). It returns the number of
// migrated regions and the migration cost (0, 0 when rebalancing is
// declined).
func (pl *pipeline) rebalance(rg *region.Graph, weights []float64, vertexCounts []int) (migrated int, cost float64) {
	var assign []int
	switch pl.opts.Partitioner {
	case PartitionLPT:
		assign = repart.GreedyLPT(weights, pl.opts.Procs)
	default:
		assign = repart.GreedySpatial(rg, weights, pl.opts.Procs, 0.05)
	}
	if !worthRebalancing(weights, rg.Owner, assign, pl.opts.Procs) {
		return 0, 0
	}
	plan := repart.MakePlan(rg, assign)
	cost = plan.MigrationCost(rg, pl.opts.Profile, vertexCounts, pl.opts.Procs)
	plan.Apply(rg)
	return len(plan.Moved), cost
}

// worthRebalancing reports whether the candidate assignment lowers the
// bottleneck (maximum per-processor) load by more than a small threshold.
// Migrating for marginal gains costs more than it saves — the paper's
// free-environment experiments show effective balancers must be no-ops on
// balanced workloads.
func worthRebalancing(weights []float64, current, candidate []int, procs int) bool {
	maxLoad := func(assign []int) float64 {
		load := make([]float64, procs)
		for i, w := range weights {
			load[assign[i]] += w
		}
		var m float64
		for _, l := range load {
			if l > m {
				m = l
			}
		}
		return m
	}
	const threshold = 0.05
	cur := maxLoad(current)
	return cur > 0 && maxLoad(candidate) < cur*(1-threshold)
}

// memoize wraps tasks so each Run body executes at most once even when a
// concurrent host pre-pass and the virtual-time replay both invoke it.
func memoize(tasks []work.Task) []work.Task {
	out := make([]work.Task, len(tasks))
	for i := range tasks {
		inner := tasks[i].Run
		var once sync.Once
		var cost float64
		var payload int
		out[i] = work.Task{
			ID:      tasks[i].ID,
			Payload: tasks[i].Payload,
			Run: func() (float64, int) {
				once.Do(func() { cost, payload = inner() })
				return cost, payload
			},
		}
	}
	return out
}
