package core

import (
	"errors"

	"parmp/internal/cspace"
	"parmp/internal/graph"
	"parmp/internal/metrics"
	"parmp/internal/prm"
	"parmp/internal/region"
	"parmp/internal/repart"
	"parmp/internal/rng"
	"parmp/internal/sched"
	"parmp/internal/work"
)

// ErrStopped reports that a growth round was canceled at a cooperative
// checkpoint. The engine discards the aborted round's partial buffers,
// so the last committed result (and any snapshot built from it) stays
// valid — cancellation never tears state.
var ErrStopped = errors.New("core: growth round canceled")

// roundSalt derives the per-region RNG stream id for a growth round.
// Round 0 uses the bare region index, which makes an engine's first
// round bit-identical to the one-shot planners; later rounds fold the
// round number into the high bits so every round samples an
// independent, deterministic stream.
func roundSalt(round, i int) uint64 {
	if round == 0 {
		return uint64(i)
	}
	return uint64(round)<<32 | uint64(i)
}

// PRMEngine grows a roadmap incrementally: each GrowRound runs one full
// pass of the paper's phase pipeline (sample → weight → [repartition] →
// node connection → region connection → merge) over the SAME region
// graph, kd indexes and ownership state, appending new samples to the
// per-region roadmaps instead of starting over. The one-shot
// ParallelPRM is exactly one round of this engine.
//
// A PRMEngine is not safe for concurrent use; the serving layer
// (package parmp) serializes growth and publishes immutable snapshots
// for concurrent queries.
type PRMEngine struct {
	s      *cspace.Space
	opts   Options
	pl     *pipeline
	rg     *region.Graph
	params prm.Params

	// data accumulates each region's committed nodes and local edges
	// across rounds. Edge indices are local to the region's node slice.
	data []prmRegionData
	// costAcc accumulates the bounded per-region construct-cost summary
	// across committed rounds (published as Result().RegionCosts).
	costAcc []RegionCost
	// boundary accumulates committed cross-region edges across rounds.
	boundary []boundaryEdge
	// repairAcc accumulates committed ApplyDelta repair stats.
	repairAcc RepairStats

	res   *PRMResult // last committed cumulative result
	round int        // rounds committed so far
}

// NewPRMEngine validates opts, subdivides the C-space and builds the
// naive initial partition. No planning work happens until GrowRound.
func NewPRMEngine(s *cspace.Space, opts Options) (*PRMEngine, error) {
	opts = opts.Defaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	dims := s.Env.Dim()
	spec := region.SplitEvenly(dims, opts.Regions, opts.Overlap)
	var rg *region.Graph
	var err error
	if opts.Adaptive {
		rg, err = region.AdaptiveGrid(s.Env, region.AdaptiveSpec{
			Base:     spec,
			MaxDepth: opts.AdaptiveDepth,
		})
	} else {
		rg, err = region.UniformGrid(s.Bounds, spec)
	}
	if err != nil {
		return nil, err
	}
	region.NaiveColumnPartition(rg, opts.Procs)
	e := &PRMEngine{
		s:       s,
		opts:    opts,
		pl:      newPipeline(opts),
		rg:      rg,
		params:  prm.Params{SamplesPerRegion: opts.SamplesPerRegion, K: opts.ConnectK, Sampler: opts.Sampler},
		data:    make([]prmRegionData, rg.NumRegions()),
		costAcc: make([]RegionCost, rg.NumRegions()),
	}
	e.res = &PRMResult{Roadmap: prm.NewRoadmap(), RegionGraph: rg}
	return e, nil
}

// Rounds returns the number of committed growth rounds.
func (e *PRMEngine) Rounds() int { return e.round }

// Result returns the cumulative result of all committed rounds. The
// returned value is immutable: later rounds build a fresh result rather
// than mutating this one, so callers may hold it (and index its
// roadmap) while the engine keeps growing.
func (e *PRMEngine) Result() *PRMResult { return e.res }

// GrowRound runs one pipeline pass, appending SamplesPerRegion new
// sampling attempts per region and connecting the accepted samples into
// the roadmap. stop, when non-nil, cancels cooperatively: the runtime
// backends observe it between tasks/events and the engine checks it at
// every phase barrier. On cancellation GrowRound returns ErrStopped and
// discards the round's partial buffers — the previously committed
// result is untouched.
func (e *PRMEngine) GrowRound(stop <-chan struct{}) error {
	opts := e.opts
	pl := e.pl
	rg := e.rg
	n := rg.NumRegions()
	round := e.round

	pl.stop = stop
	defer func() { pl.stop = nil }()
	reportMark := len(pl.reports)
	ownerMark := append([]int(nil), rg.Owner...)
	abort := func() error {
		pl.reports = pl.reports[:reportMark]
		copy(rg.Owner, ownerMark)
		return ErrStopped
	}

	var phases PhaseBreakdown
	if round == 0 {
		phases.Setup = pl.barrier()
	}

	// --- Sampling phase: fresh per-round streams keep determinism.
	type roundRegion struct {
		nodes       []prm.Node
		sampleWork  cspace.Counters
		edges       [][2]int
		connectWork cspace.Counters
	}
	fresh := make([]roundRegion, n)
	sampleRep := pl.run(phaseSpec{
		name: "sample",
		queues: queuesByOwner(opts.Procs, rg.Owner, n, func(i int) work.Task {
			return work.Task{
				ID: i,
				Run: func() (float64, int) {
					r := rng.Derive(opts.Seed, roundSalt(round, i))
					fresh[i].nodes, fresh[i].sampleWork = prm.SampleRegion(e.s, rg.Region(i).Box, i, e.params, r)
					return opts.Cost.Time(fresh[i].sampleWork), len(fresh[i].nodes)
				},
			}
		}),
	})
	if sampleRep.Stopped || sched.Canceled(stop) {
		return abort()
	}
	phases.Sampling = sampleRep.Makespan + pl.barrier()
	sampleCounts := make([]int, n)
	for i := 0; i < n; i++ {
		sampleCounts[i] = len(fresh[i].nodes)
	}

	// --- Weight phase: this round's sample counts estimate this round's
	// connection work (the construct phase only processes new samples).
	// Under CostObserved, warm rounds replace the sample-count estimate
	// with the EWMA of the construct costs actually observed in prior
	// rounds (round 0 passes through unchanged — the cold start).
	weights := pl.roundWeights(repart.SampleCountWeights(sampleCounts), sampleCounts)
	if err := rg.SetWeights(weights); err != nil {
		return err
	}
	cvBefore := metrics.CV(rg.LoadPerProcessor(opts.Procs))

	// --- Optional repartitioning before the expensive phase.
	migrated := 0
	if opts.Strategy == Repartition {
		var cost float64
		migrated, cost = pl.rebalance(rg, weights, sampleCounts)
		phases.Redistribution = cost + pl.barrier()
	}
	if sched.Canceled(stop) {
		return abort()
	}

	// --- Node-connection phase (expensive; stealable). Each region
	// connects only its new samples, querying against old + new nodes.
	combined := make([][]prm.Node, n)
	firstNew := make([]int, n)
	for i := 0; i < n; i++ {
		firstNew[i] = len(e.data[i].nodes)
		combined[i] = make([]prm.Node, 0, firstNew[i]+len(fresh[i].nodes))
		combined[i] = append(combined[i], e.data[i].nodes...)
		combined[i] = append(combined[i], fresh[i].nodes...)
	}
	constructQueues := queuesByOwner(opts.Procs, rg.Owner, n, func(i int) work.Task {
		return work.Task{
			ID:      i,
			Payload: len(combined[i]), // stealing this region moves its samples
			Run: func() (float64, int) {
				fresh[i].edges, fresh[i].connectWork = prm.ConnectRegionIncremental(e.s, combined[i], firstNew[i], e.params)
				return opts.Cost.Time(fresh[i].connectWork), len(combined[i])
			},
		}
	})
	// Optional between-rounds diffusive rebalance: polish the construct
	// queues along the steal mesh toward the weight equilibrium (after
	// any bulk repartition, before the phase runs).
	diffused, diffuseCost := pl.diffuse(rg, constructQueues, weights, sampleCounts)
	phases.Redistribution += diffuseCost
	report := pl.run(phaseSpec{
		name:   "construct",
		queues: constructQueues,
		policy: pl.stealPolicy(),
		salt:   saltPRMConstruct,
	})
	if report.Stopped || sched.Canceled(stop) {
		return abort()
	}
	phases.NodeConnection = report.Makespan + pl.barrier()

	// Work stealing permanently migrates the region and its data: record
	// the final ownership so the region-connection phase sees it.
	pl.applyOwnership(rg, report)

	// --- Region-connection phase. Each adjacent pair connects its new
	// nodes against the other side's full node set (new×all plus
	// old×new), so pairs whose regions gained nothing cost nothing.
	var pairs [][2]int
	rg.ForEachAdjacentPair(func(a, b int) { pairs = append(pairs, [2]int{a, b}) })
	brs := make([]prm.BoundaryResult, len(pairs))
	connectTasks := [][]work.Task{make([]work.Task, len(pairs))}
	for idx := range pairs {
		idx := idx
		a, b := pairs[idx][0], pairs[idx][1]
		connectTasks[0][idx] = work.Task{
			ID: idx,
			Run: func() (float64, int) {
				brs[idx] = e.connectPairIncremental(a, b, combined, firstNew)
				return opts.Cost.Time(brs[idx].Work), 0
			},
		}
	}
	pl.hostExec("region-connect", connectTasks)
	if sched.Canceled(stop) {
		return abort()
	}
	connLoad := make([]float64, opts.Procs)
	connQueues := make([][]work.Task, opts.Procs)
	var newBoundary []boundaryEdge
	regionRemote, roadmapRemote := 0, 0
	for idx := range pairs {
		a, b := pairs[idx][0], pairs[idx][1]
		cost, _ := connectTasks[0][idx].Run() // memoized after the host pass
		br := brs[idx]
		ownerA, ownerB := rg.Owner[a], rg.Owner[b]
		if ownerA != ownerB {
			regionRemote++
			roadmapRemote += br.Attempts
			cost += opts.Profile.RemoteAccess * float64(1+br.Attempts)
		} else {
			cost += opts.Profile.LocalAccess * float64(1+br.Attempts)
		}
		runner := ownerA
		if connLoad[ownerB] < connLoad[ownerA] {
			runner = ownerB
		}
		connLoad[runner] += cost
		connQueues[runner] = append(connQueues[runner], costTask(idx, cost))
		newBoundary = append(newBoundary, boundaryEdge{a: a, b: b, pairs: br.Edges})
	}
	connRep := pl.replay(phaseSpec{name: "region-connect", queues: connQueues})
	if connRep.Stopped || sched.Canceled(stop) {
		return abort()
	}
	phases.RegionConnection = connRep.Makespan + pl.barrier()
	phases.Other = pl.barrier()

	// --- Commit: append the round's output, rebuild the roadmap, and
	// publish a fresh cumulative result. Nothing before this point
	// mutated e.data/e.boundary/e.res, so an abort above left the engine
	// on its previous committed state.
	for i := 0; i < n; i++ {
		e.data[i].nodes = combined[i]
		e.data[i].edges = append(e.data[i].edges, fresh[i].edges...)
		e.data[i].sampleWork.Add(fresh[i].sampleWork)
		e.data[i].connectWork.Add(fresh[i].connectWork)
	}
	e.boundary = append(e.boundary, newBoundary...)
	// Feed the committed round's observed construct costs to the cost
	// model (next round's weights) and the bounded per-region summary.
	pl.observeConstruct(n, report, sampleCounts)
	accumulateRegionCosts(e.costAcc, report)
	e.round++

	prev := e.res
	res := &PRMResult{
		Roadmap:         e.mergeRoadmap(),
		RegionGraph:     rg,
		ProcStats:       report.Workers,
		PhaseReports:    pl.reports,
		EdgeCut:         rg.EdgeCut(),
		RegionRemote:    prev.RegionRemote + regionRemote,
		RoadmapRemote:   prev.RoadmapRemote + roadmapRemote,
		MigratedRegions: prev.MigratedRegions + migrated,
		DiffusedRegions: prev.DiffusedRegions + diffused,
		RegionCosts:     append([]RegionCost(nil), e.costAcc...),
		Repairs:         e.repairAcc,
		CVBefore:        prev.CVBefore,
	}
	if round == 0 {
		res.CVBefore = cvBefore
	}
	res.Phases = prev.Phases
	res.Phases.Setup += phases.Setup
	res.Phases.Sampling += phases.Sampling
	res.Phases.Redistribution += phases.Redistribution
	res.Phases.NodeConnection += phases.NodeConnection
	res.Phases.RegionConnection += phases.RegionConnection
	res.Phases.Other += phases.Other
	res.TotalTime = res.Phases.Total()
	res.NodeLoads = make([]float64, opts.Procs)
	for i := 0; i < n; i++ {
		res.NodeLoads[rg.Owner[i]] += float64(len(e.data[i].nodes))
	}
	res.CVAfter = metrics.CV(res.NodeLoads)
	e.res = res
	return nil
}

// connectPairIncremental connects regions a and b after a round: a's new
// nodes against all of b, then a's old nodes against b's new nodes.
// Edge indices are mapped into the regions' final (committed) node
// order. In round 0 "old" is empty, so the single new×all call is
// exactly the one-shot ConnectBoundary.
func (e *PRMEngine) connectPairIncremental(a, b int, combined [][]prm.Node, firstNew []int) prm.BoundaryResult {
	var out prm.BoundaryResult
	newA := combined[a][firstNew[a]:]
	oldA := combined[a][:firstNew[a]]
	newB := combined[b][firstNew[b]:]
	if len(newA) > 0 {
		br := prm.ConnectBoundary(e.s, newA, combined[b], e.opts.BoundaryK, e.opts.BoundaryFrontier)
		out.Work.Add(br.Work)
		out.Attempts += br.Attempts
		for _, pr := range br.Edges {
			out.Edges = append(out.Edges, [2]int{firstNew[a] + pr[0], pr[1]})
		}
	}
	if len(oldA) > 0 && len(newB) > 0 {
		br := prm.ConnectBoundary(e.s, oldA, newB, e.opts.BoundaryK, e.opts.BoundaryFrontier)
		out.Work.Add(br.Work)
		out.Attempts += br.Attempts
		for _, pr := range br.Edges {
			out.Edges = append(out.Edges, [2]int{pr[0], firstNew[b] + pr[1]})
		}
	}
	return out
}

// mergeRoadmap rebuilds the cumulative roadmap from the committed
// per-region data. Building fresh every round (rather than mutating the
// previous roadmap) is what lets published results stay immutable for
// concurrent readers.
func (e *PRMEngine) mergeRoadmap() *prm.Roadmap {
	n := e.rg.NumRegions()
	m := prm.NewRoadmap()
	base := make([]int, n)
	for i := 0; i < n; i++ {
		base[i] = m.NumNodes()
		for _, nd := range e.data[i].nodes {
			m.AddNode(nd)
		}
	}
	for i := 0; i < n; i++ {
		for _, ed := range e.data[i].edges {
			a, b := graph.ID(base[i]+ed[0]), graph.ID(base[i]+ed[1])
			m.G.AddEdge(a, b, e.s.Distance(e.data[i].nodes[ed[0]].Q, e.data[i].nodes[ed[1]].Q))
		}
	}
	for _, be := range e.boundary {
		for _, pr := range be.pairs {
			a := graph.ID(base[be.a] + pr[0])
			b := graph.ID(base[be.b] + pr[1])
			m.G.AddEdge(a, b, e.s.Distance(e.data[be.a].nodes[pr[0]].Q, e.data[be.b].nodes[pr[1]].Q))
		}
	}
	return m
}
