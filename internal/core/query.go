package core

import (
	"sort"

	"parmp/internal/cspace"
	"parmp/internal/geom"
)

// ExtractPath returns a collision-free configuration path from the RRT
// root to goal: the tree node nearest to goal is located across all
// branches, connected to goal with the local planner, and walked back to
// the root along parent links. ok is false when the goal cannot be
// attached to the tree.
//
// Deprecated: ExtractPath re-gathers and fully sorts every tree node on
// every call. Callers answering repeated queries against a frozen
// result should build a TreeIndex once and use TreeIndex.ExtractPath
// (what engine snapshots do). Every caller outside this method's own
// regression tests has been migrated; ExtractPath will be removed
// together with the next RRTResult-format change.
func (r *RRTResult) ExtractPath(s *cspace.Space, goal cspace.Config, c *cspace.Counters) ([]cspace.Config, bool) {
	if !s.Valid(goal, c) {
		return nil, false
	}
	// Gather all tree nodes with back-references to (branch, index).
	type ref struct{ branch, node int }
	var pts []geom.Vec
	var refs []ref
	for bi, tree := range r.Branches {
		if tree == nil {
			continue
		}
		for ni, n := range tree.Nodes {
			pts = append(pts, n.Q)
			refs = append(refs, ref{branch: bi, node: ni})
		}
	}
	if len(pts) == 0 {
		return nil, false
	}
	// Try candidates in increasing metric order (the space's weighted
	// metric, so angular DOFs do not dominate). Nearby nodes can all be
	// unreachable — wrong side of a wall, incompatible heading — so keep
	// trying until a generous attempt budget runs out.
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	dist := make([]float64, len(pts))
	for i, p := range pts {
		dist[i] = s.Distance(goal, p)
	}
	sort.Slice(order, func(a, b int) bool { return dist[order[a]] < dist[order[b]] })
	if c != nil {
		c.KNNQueries++
		c.KNNEvals += int64(len(pts))
	}
	// No attempt cap: failed plans abort at the first collision, so even
	// an unreachable goal costs only one cheap sweep per node, and a
	// reachable one stops at the first success.
	for _, idx := range order {
		rf := refs[idx]
		branch := r.Branches[rf.branch]
		// Plan tree → goal: steering may be asymmetric (a forward-only
		// car cannot drive a path backwards).
		if !s.LocalPlan(branch.Nodes[rf.node].Q, goal, c) {
			continue
		}
		// Walk to the branch root (== the global root).
		idxPath := branch.PathToRoot(rf.node)
		path := make([]cspace.Config, 0, len(idxPath)+1)
		for i := len(idxPath) - 1; i >= 0; i-- {
			path = append(path, branch.Nodes[idxPath[i]].Q.Clone())
		}
		path = append(path, goal.Clone())
		return path, true
	}
	return nil, false
}
