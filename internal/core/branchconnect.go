package core

import (
	"parmp/internal/cspace"
	"parmp/internal/graph"
	"parmp/internal/region"
	"parmp/internal/rrt"
	"parmp/internal/sched"
	"parmp/internal/work"
)

// branchConnectOutcome is the branch-connection phase's product: the
// round's new cycle-free bridges, how many candidates were pruned, how
// many attempts crossed processors, and the phase's virtual makespan.
type branchConnectOutcome struct {
	newBridges   [][4]int
	newPruned    int
	regionRemote int
	makespan     float64
	stopped      bool
}

// runBranchConnect executes the tree planners' shared branch-connection
// phase: for every adjacent region pair, attempt a bridge between the
// two branches (host-concurrent, then replayed in virtual time on the
// pair's owner), and keep only bridges that merge distinct components
// of the committed region-level tree ("if any edge connection creates a
// cycle, the tree is pruned so as to remove the cycle"). The union-find
// is rebuilt from committedBridges each round, so an aborted round
// costs nothing to undo.
func runBranchConnect(pl *pipeline, rg *region.Graph, s *cspace.Space, opts Options,
	branches []*rrt.Tree, committedBridges [][4]int, stop <-chan struct{}) branchConnectOutcome {

	n := rg.NumRegions()
	var pairs [][2]int
	rg.ForEachAdjacentPair(func(a, b int) { pairs = append(pairs, [2]int{a, b}) })
	type connResult struct {
		ia, ib int
		ok     bool
	}
	conns := make([]connResult, len(pairs))
	connectTasks := [][]work.Task{make([]work.Task, len(pairs))}
	for idx := range pairs {
		idx := idx
		a, b := pairs[idx][0], pairs[idx][1]
		connectTasks[0][idx] = work.Task{
			ID: idx,
			Run: func() (float64, int) {
				var c cspace.Counters
				target := region.ConeTarget(rg.Region(b))
				ia, ib, ok := rrt.Connect(s, branches[a], branches[b], target, 3, &c)
				conns[idx] = connResult{ia: ia, ib: ib, ok: ok}
				return opts.Cost.Time(c), 0
			},
		}
	}
	pl.hostExec("region-connect", connectTasks)
	if sched.Canceled(stop) {
		return branchConnectOutcome{stopped: true}
	}
	uf := graph.NewUnionFind(n)
	for _, br := range committedBridges {
		uf.Union(br[0], br[2])
	}
	var out branchConnectOutcome
	connQueues := make([][]work.Task, opts.Procs)
	for idx := range pairs {
		a, b := pairs[idx][0], pairs[idx][1]
		cost, _ := connectTasks[0][idx].Run() // memoized after the host pass
		ownerA, ownerB := rg.Owner[a], rg.Owner[b]
		if ownerA != ownerB {
			out.regionRemote++
			cost += opts.Profile.RemoteAccess
		} else {
			cost += opts.Profile.LocalAccess
		}
		connQueues[ownerA] = append(connQueues[ownerA], costTask(idx, cost))
		if conns[idx].ok {
			if uf.Union(a, b) {
				out.newBridges = append(out.newBridges, [4]int{a, conns[idx].ia, b, conns[idx].ib})
			} else {
				out.newPruned++
			}
		}
	}
	connRep := pl.replay(phaseSpec{name: "region-connect", queues: connQueues})
	if connRep.Stopped || sched.Canceled(stop) {
		out.stopped = true
		return out
	}
	out.makespan = connRep.Makespan
	return out
}
