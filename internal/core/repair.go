package core

import (
	"sort"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/metrics"
	"parmp/internal/prm"
	"parmp/internal/rrt"
	"parmp/internal/sched"
	"parmp/internal/work"
)

// saltRepair keeps the repair phase's victim randomization independent
// of the construct phases'.
const saltRepair = 0x6b1d

// repairGraftK is how many surviving neighbours a severed RRT subtree
// frontier tries to regraft to.
const repairGraftK = 4

// RepairStats summarizes the incremental-repair work an engine has
// committed across ApplyDelta calls.
type RepairStats struct {
	// Deltas counts committed ApplyDelta calls.
	Deltas int
	// CheckedNodes / CheckedEdges count the collision re-checks actually
	// paid (conservative culling makes everything else free).
	CheckedNodes, CheckedEdges int
	// RemovedNodes / RemovedEdges count roadmap vertices / edges (or
	// tree nodes / bridges) invalidated by the deltas.
	RemovedNodes, RemovedEdges int
	// Grafted counts severed RRT subtrees saved by regrafting.
	Grafted int
	// Makespan is the cumulative virtual time of the repair phases.
	Makespan float64
	Work     cspace.Counters
}

// Add folds b into a.
func (a *RepairStats) Add(b RepairStats) {
	a.Deltas += b.Deltas
	a.CheckedNodes += b.CheckedNodes
	a.CheckedEdges += b.CheckedEdges
	a.RemovedNodes += b.RemovedNodes
	a.RemovedEdges += b.RemovedEdges
	a.Grafted += b.Grafted
	a.Makespan += b.Makespan
	a.Work.Add(b.Work)
}

// PRMRepair is the outcome of one PRMEngine.ApplyDelta.
type PRMRepair struct {
	Stats RepairStats
	// VertexRemap maps pre-repair merged-roadmap vertex ids to their
	// post-repair ids (-1 = removed). Nil means identity (nothing could
	// have been invalidated).
	VertexRemap []int
	// TouchedVertices lists pre-repair vertex ids belonging to connected
	// components that lost a vertex or an edge — the components whose
	// labels a scoped relabel must recompute (prm.RepairIndex).
	TouchedVertices []int
}

// RRTRepair is the outcome of one ApplyDelta on a tree engine.
type RRTRepair struct {
	Stats RepairStats
	// BranchRemaps[i] maps region i's pre-repair branch node ids to
	// post-repair ids (-1 = pruned). For the RRT-Connect engine the ids
	// are into the merged, root-anchored branch (what snapshots index).
	// A nil entry is the identity.
	BranchRemaps [][]int
	// RemovedBridges counts cross-region bridges dropped because an
	// endpoint died or the bridging edge is now blocked.
	RemovedBridges int
}

// ApplyDelta incrementally repairs the engine's committed roadmap
// against an environment mutation, between growth rounds: every
// region's nodes and local edges re-validate against only the delta
// (conservatively culled), then boundary edges, and the survivors are
// compacted in place. s is the engine's space re-bound to the mutated
// environment (cspace.Space.WithEnv on a mutated clone — the old space,
// and any snapshot holding it, must stay unchanged); future GrowRound
// calls sample the new world.
//
// candidates, when non-nil, lists the only merged-roadmap vertex ids
// whose validity the delta can have changed, sorted ascending — the
// product of a kd radius query over a committed snapshot's index
// (prm.Index.AffectedVertices). Nil falls back to screening every node
// through the checker's geometric cull.
//
// Repair tasks run through the same phase pipeline as construction —
// region-tagged, stealable, virtually timed — so the repair load
// (concentrated around the mutated obstacle, the paper's skewed-
// workload shape) is balanced like any other phase. Cancellation
// matches GrowRound: on a fired stop channel ApplyDelta returns
// ErrStopped and the committed state, the cost model and the published
// result are untouched.
func (e *PRMEngine) ApplyDelta(s *cspace.Space, d env.Delta, candidates []int, stop <-chan struct{}) (*PRMRepair, error) {
	opts := e.opts
	pl := e.pl
	rg := e.rg
	n := rg.NumRegions()

	pl.stop = stop
	defer func() { pl.stop = nil }()
	reportMark := len(pl.reports)
	abort := func() error {
		pl.reports = pl.reports[:reportMark]
		return ErrStopped
	}

	out := &PRMRepair{Stats: RepairStats{Deltas: 1}}
	dc := cspace.NewDeltaChecker(e.s, d)
	if !dc.Invalidating() {
		// Removal-only (or empty) delta: nothing to re-check. The world
		// still changes — future sampling sees the freed space.
		e.s = s
		e.commitRepair(out.Stats)
		return out, nil
	}

	// Split the global candidate list into per-region local indices
	// using the merged-roadmap base offsets (mergeRoadmap order).
	base := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		base[i] = total
		total += len(e.data[i].nodes)
	}
	var localCand [][]int
	if candidates != nil {
		localCand = make([][]int, n)
		ri := 0
		for _, c := range candidates {
			for ri < n-1 && c >= base[ri]+len(e.data[ri].nodes) {
				ri++
			}
			localCand[ri] = append(localCand[ri], c-base[ri])
		}
	}

	// --- Repair phase (stealable, region-tagged).
	rrs := make([]prm.RegionRepair, n)
	queues := queuesByOwner(opts.Procs, rg.Owner, n, func(i int) work.Task {
		return work.Task{
			ID:      i,
			Payload: len(e.data[i].nodes),
			Run: func() (float64, int) {
				var cand []int
				if localCand != nil {
					cand = localCand[i]
					if cand == nil {
						cand = []int{} // non-nil empty: nothing to re-check here
					}
				}
				rrs[i] = prm.RevalidateRegion(dc, e.data[i].nodes, e.data[i].edges, cand)
				return opts.Cost.Time(rrs[i].Work), len(e.data[i].nodes)
			},
		}
	})
	report := pl.run(phaseSpec{name: "repair", queues: queues, policy: pl.stealPolicy(), salt: saltRepair})
	if report.Stopped || sched.Canceled(stop) {
		return nil, abort()
	}
	makespan := report.Makespan + pl.barrier()

	// --- Boundary-edge revalidation: an edge between two regions can
	// cross the delta even when both regions' own repair was empty.
	type boundaryRepair struct {
		keep             []bool
		checked, removed int
		work             cspace.Counters
	}
	brs := make([]boundaryRepair, len(e.boundary))
	btasks := [][]work.Task{make([]work.Task, len(e.boundary))}
	for idx := range e.boundary {
		idx := idx
		be := e.boundary[idx]
		btasks[0][idx] = work.Task{
			ID: idx,
			Run: func() (float64, int) {
				br := boundaryRepair{keep: make([]bool, len(be.pairs))}
				for k, pr := range be.pairs {
					if !rrs[be.a].Alive[pr[0]] || !rrs[be.b].Alive[pr[1]] {
						br.removed++
						continue
					}
					qa := e.data[be.a].nodes[pr[0]].Q
					qb := e.data[be.b].nodes[pr[1]].Q
					if !dc.EdgeAffected(qa, qb) {
						br.keep[k] = true
						continue
					}
					br.checked++
					if dc.EdgeStillFree(qa, qb, &br.work) {
						br.keep[k] = true
					} else {
						br.removed++
					}
				}
				brs[idx] = br
				return opts.Cost.Time(br.work), 0
			},
		}
	}
	pl.hostExec("repair-boundary", btasks)
	if sched.Canceled(stop) {
		return nil, abort()
	}
	bq := make([][]work.Task, opts.Procs)
	for idx := range e.boundary {
		cost, _ := btasks[0][idx].Run() // memoized after the host pass
		bq[rg.Owner[e.boundary[idx].a]] = append(bq[rg.Owner[e.boundary[idx].a]], costTask(idx, cost))
	}
	brep := pl.replay(phaseSpec{name: "repair-boundary", queues: bq})
	if brep.Stopped || sched.Canceled(stop) {
		return nil, abort()
	}
	makespan += brep.Makespan + pl.barrier()

	// --- Commit: compact every region's data, remap boundary pairs,
	// rebuild the merged roadmap. Nothing above mutated committed state.
	st := &out.Stats
	st.Makespan = makespan
	touched := map[int]bool{}
	remaps := make([][]int, n)
	for i := 0; i < n; i++ {
		rr := rrs[i]
		st.CheckedNodes += rr.CheckedNodes
		st.CheckedEdges += rr.CheckedEdges
		st.RemovedNodes += rr.DeadNodes
		st.RemovedEdges += rr.DeadEdges
		st.Work.Add(rr.Work)

		remap := make([]int, len(e.data[i].nodes))
		w := 0
		for l := range e.data[i].nodes {
			if rr.Alive[l] {
				remap[l] = w
				e.data[i].nodes[w] = e.data[i].nodes[l]
				w++
			} else {
				remap[l] = -1
				touched[base[i]+l] = true
			}
		}
		e.data[i].nodes = e.data[i].nodes[:w]
		remaps[i] = remap

		we := 0
		for j, ed := range e.data[i].edges {
			if !rr.KeepEdge[j] {
				// A blocked edge with both endpoints alive splits work
				// onto its component; dead endpoints are touched already.
				if rr.Alive[ed[0]] && rr.Alive[ed[1]] {
					touched[base[i]+ed[0]] = true
				}
				continue
			}
			e.data[i].edges[we] = [2]int{remap[ed[0]], remap[ed[1]]}
			we++
		}
		e.data[i].edges = e.data[i].edges[:we]
	}
	newBoundary := e.boundary[:0]
	for idx, be := range e.boundary {
		br := brs[idx]
		st.CheckedEdges += br.checked
		st.RemovedEdges += br.removed
		st.Work.Add(br.work)
		pairs := be.pairs[:0]
		for k, pr := range be.pairs {
			if br.keep[k] {
				pairs = append(pairs, [2]int{remaps[be.a][pr[0]], remaps[be.b][pr[1]]})
			} else if rrs[be.a].Alive[pr[0]] && rrs[be.b].Alive[pr[1]] {
				touched[base[be.a]+pr[0]] = true
			}
		}
		if len(pairs) > 0 {
			newBoundary = append(newBoundary, boundaryEdge{a: be.a, b: be.b, pairs: pairs})
		}
	}
	e.boundary = newBoundary

	out.VertexRemap = make([]int, total)
	newBase := 0
	for i := 0; i < n; i++ {
		for l, nw := range remaps[i] {
			if nw >= 0 {
				out.VertexRemap[base[i]+l] = newBase + nw
			} else {
				out.VertexRemap[base[i]+l] = -1
			}
		}
		newBase += len(e.data[i].nodes)
	}
	for v := range touched {
		out.TouchedVertices = append(out.TouchedVertices, v)
	}
	sort.Ints(out.TouchedVertices)

	e.s = s
	e.commitRepair(out.Stats)
	return out, nil
}

// commitRepair folds one repair's stats into the engine accumulator and
// publishes a fresh result over the repaired data (same immutability
// contract as GrowRound's commit).
func (e *PRMEngine) commitRepair(st RepairStats) {
	e.repairAcc.Add(st)
	prev := e.res
	res := *prev
	res.Roadmap = e.mergeRoadmap()
	res.Phases.Repair += st.Makespan
	res.TotalTime = res.Phases.Total()
	res.PhaseReports = e.pl.reports
	res.Repairs = e.repairAcc
	res.NodeLoads = make([]float64, e.opts.Procs)
	for i := 0; i < e.rg.NumRegions(); i++ {
		res.NodeLoads[e.rg.Owner[i]] += float64(len(e.data[i].nodes))
	}
	res.CVAfter = metrics.CV(res.NodeLoads)
	e.res = &res
}

// ApplyDelta incrementally repairs the engine's committed branches
// against an environment mutation, between growth rounds: every
// region's tree prunes nodes and edges the delta blocked (severed
// subtrees regraft to surviving neighbours where a fresh local plan
// allows), and cross-region bridges whose endpoint died or whose edge
// is now blocked are dropped. Contracts (s, candidates-free culling,
// pipeline accounting, cancellation) match PRMEngine.ApplyDelta.
//
// Under the observed cost model the repair phase's measured costs feed
// the same per-region EWMA as construction, so the next round's
// repartition sees the mutation's load concentration.
func (e *RRTEngine) ApplyDelta(s *cspace.Space, d env.Delta, stop <-chan struct{}) (*RRTRepair, error) {
	pl := e.pl
	rg := e.rg
	n := rg.NumRegions()

	pl.stop = stop
	defer func() { pl.stop = nil }()
	reportMark := len(pl.reports)
	abort := func() error {
		pl.reports = pl.reports[:reportMark]
		return ErrStopped
	}

	out := &RRTRepair{Stats: RepairStats{Deltas: 1}}
	dc := cspace.NewDeltaChecker(e.s, d)
	if !dc.Invalidating() {
		e.s = s
		e.commitRepair(out.Stats, e.committedBranches(), e.bridges)
		return out, nil
	}

	// --- Prune phase (stealable, region-tagged): each region prunes a
	// round-local copy, so an abort leaves committed trees untouched.
	newTrees := make([]*rrt.Tree, n)
	newStars := make([]*rrt.StarTree, n)
	remaps := make([][]int, n)
	sts := make([]rrt.PruneStats, n)
	counts := e.nodeCounts()
	queues := queuesByOwner(e.opts.Procs, rg.Owner, n, func(i int) work.Task {
		return work.Task{
			ID:      i,
			Payload: counts[i],
			Run: func() (float64, int) {
				if e.opts.Star {
					if e.starTrees[i] == nil {
						return 0, 0
					}
					star := e.roundStarTree(i)
					view := &rrt.Tree{Nodes: star.Nodes}
					remaps[i], sts[i] = rrt.PruneTree(s, dc, view, repairGraftK)
					star.Nodes = view.Nodes
					star.Cost = recomputeStarCosts(s, star, star.Cost[:0])
					newStars[i] = star
					return e.opts.Cost.Time(sts[i].Work), star.Len()
				}
				if e.trees[i] == nil {
					return 0, 0
				}
				t := e.roundTree(i)
				remaps[i], sts[i] = rrt.PruneTree(s, dc, t, repairGraftK)
				newTrees[i] = t
				return e.opts.Cost.Time(sts[i].Work), t.Len()
			},
		}
	})
	report := pl.run(phaseSpec{name: "repair", queues: queues, policy: pl.stealPolicy(), salt: saltRepair})
	if report.Stopped || sched.Canceled(stop) {
		return nil, abort()
	}
	makespan := report.Makespan + pl.barrier()

	branches := make([]*rrt.Tree, n)
	for i := 0; i < n; i++ {
		if e.opts.Star {
			if newStars[i] != nil {
				branches[i] = &rrt.Tree{Nodes: newStars[i].Nodes}
			}
		} else {
			branches[i] = newTrees[i]
		}
	}
	newBridges, removed, bridgeMakespan, stopped := e.repairBridges(dc, branches, remaps, &out.Stats)
	if stopped {
		return nil, abort()
	}
	makespan += bridgeMakespan

	// --- Commit.
	st := &out.Stats
	st.Makespan = makespan
	for i := 0; i < n; i++ {
		st.CheckedNodes += sts[i].CheckedNodes
		st.CheckedEdges += sts[i].CheckedEdges
		st.RemovedNodes += sts[i].Removed
		st.Grafted += sts[i].Grafted
		st.Work.Add(sts[i].Work)
		if e.opts.Star {
			if newStars[i] != nil {
				e.starTrees[i] = newStars[i]
			}
		} else if newTrees[i] != nil {
			e.trees[i] = newTrees[i]
		}
	}
	out.BranchRemaps = remaps
	out.RemovedBridges = removed
	st.RemovedEdges += removed
	e.bridges = newBridges
	pl.observeConstruct(n, report, nil)
	e.s = s
	e.commitRepair(out.Stats, branches, newBridges)
	return out, nil
}

// committedBranches returns the engine's committed trees as plain
// branches (shared node slices — the usual immutable-result contract).
func (e *RRTEngine) committedBranches() []*rrt.Tree {
	n := e.rg.NumRegions()
	branches := make([]*rrt.Tree, n)
	for i := 0; i < n; i++ {
		if e.opts.Star {
			if e.starTrees[i] != nil {
				branches[i] = &rrt.Tree{Nodes: e.starTrees[i].Nodes}
			}
		} else {
			branches[i] = e.trees[i]
		}
	}
	return branches
}

// repairBridges re-validates the committed cross-region bridges against
// the delta using the repaired branches: a bridge survives when both
// endpoints survived and its edge is still free. The per-bridge checks
// run as a priced accounting phase on each bridge's owning processor.
func (e *RRTEngine) repairBridges(dc *cspace.DeltaChecker, branches []*rrt.Tree, remaps [][]int, st *RepairStats) (kept [][4]int, removed int, makespan float64, stopped bool) {
	return repairBridgeSet(e.pl, e.rg.Owner, e.opts, dc, e.bridges, branches, remaps, st)
}

// repairBridgeSet is the shared bridge-repair pass for the tree
// engines. remaps[i] == nil means region i's branch is unchanged.
func repairBridgeSet(pl *pipeline, owner []int, opts Options, dc *cspace.DeltaChecker,
	bridges [][4]int, branches []*rrt.Tree, remaps [][]int, st *RepairStats) (kept [][4]int, removed int, makespan float64, stopped bool) {

	mapIdx := func(remap []int, idx int) int {
		if remap == nil {
			return idx
		}
		if idx >= len(remap) {
			return -1
		}
		return remap[idx]
	}
	costs := make([]float64, len(bridges))
	for bi, br := range bridges {
		a, b := br[0], br[2]
		na, nb := mapIdx(remaps[a], br[1]), mapIdx(remaps[b], br[3])
		if na < 0 || nb < 0 || branches[a] == nil || branches[b] == nil {
			removed++
			continue
		}
		qa, qb := branches[a].Nodes[na].Q, branches[b].Nodes[nb].Q
		if dc.EdgeAffected(qa, qb) {
			st.CheckedEdges++
			var c cspace.Counters
			ok := dc.EdgeStillFree(qa, qb, &c)
			costs[bi] = opts.Cost.Time(c)
			st.Work.Add(c)
			if !ok {
				removed++
				continue
			}
		}
		kept = append(kept, [4]int{a, na, b, nb})
	}
	queues := make([][]work.Task, opts.Procs)
	for bi, br := range bridges {
		queues[owner[br[0]]] = append(queues[owner[br[0]]], costTask(bi, costs[bi]))
	}
	rep := pl.replay(phaseSpec{name: "repair-bridges", queues: queues})
	if rep.Stopped {
		return nil, 0, 0, true
	}
	return kept, removed, rep.Makespan + pl.barrier(), false
}

// recomputeStarCosts rebuilds an RRT* branch's cost-to-root vector by a
// forward pass (parents precede children), which also prices any
// regrafted edges.
func recomputeStarCosts(s *cspace.Space, t *rrt.StarTree, costs []float64) []float64 {
	for _, nd := range t.Nodes {
		if nd.Parent < 0 {
			costs = append(costs, 0)
			continue
		}
		costs = append(costs, costs[nd.Parent]+s.Distance(t.Nodes[nd.Parent].Q, nd.Q))
	}
	return costs
}

// commitRepair publishes a fresh RRT result over the repaired branches.
func (e *RRTEngine) commitRepair(st RepairStats, branches []*rrt.Tree, bridges [][4]int) {
	e.repairAcc.Add(st)
	prev := e.res
	res := *prev
	res.Branches = branches
	res.Bridges = bridges
	res.Phases.Repair += st.Makespan
	res.TotalTime = res.Phases.Total()
	res.PhaseReports = e.pl.reports
	res.Repairs = e.repairAcc
	res.NodeLoads = make([]float64, e.opts.Procs)
	for i, t := range branches {
		if t != nil {
			res.NodeLoads[e.rg.Owner[i]] += float64(t.Len())
		}
	}
	res.CVAfter = metrics.CV(res.NodeLoads)
	e.res = &res
}

// ApplyDelta incrementally repairs the engine's committed tree pairs
// against an environment mutation: both trees of every pair prune and
// regraft like plain RRT branches, the met state is re-derived (a pair
// whose meeting node died un-meets and resumes growing next round), and
// bridges between merged branches re-validate. Contracts match
// RRTEngine.ApplyDelta. The returned BranchRemaps are in merged-branch
// ids — what snapshot tree indexes reference.
func (e *RRTConnectEngine) ApplyDelta(s *cspace.Space, d env.Delta, stop <-chan struct{}) (*RRTRepair, error) {
	pl := e.pl
	rg := e.rg
	n := rg.NumRegions()

	pl.stop = stop
	defer func() { pl.stop = nil }()
	reportMark := len(pl.reports)
	abort := func() error {
		pl.reports = pl.reports[:reportMark]
		return ErrStopped
	}

	out := &RRTRepair{Stats: RepairStats{Deltas: 1}}
	dc := cspace.NewDeltaChecker(e.s, d)
	if !dc.Invalidating() {
		e.s = s
		branches := make([]*rrt.Tree, n)
		for i, bi := range e.bis {
			if bi != nil {
				branches[i] = rrt.MergeBiTree(bi)
			}
		}
		e.commitRepair(out.Stats, branches, e.bridges)
		return out, nil
	}

	// --- Prune phase over round-local pair copies.
	newBis := make([]*rrt.BiTree, n)
	mergedRemaps := make([][]int, n)
	sts := make([]rrt.PruneStats, n)
	counts := e.nodeCounts()
	queues := queuesByOwner(e.opts.Procs, rg.Owner, n, func(i int) work.Task {
		return work.Task{
			ID:      i,
			Payload: counts[i],
			Run: func() (float64, int) {
				old := e.bis[i]
				if old == nil {
					return 0, 0
				}
				oldLenA := old.A.Len()
				oldMerged := oldLenA
				if old.Met && old.B != nil {
					oldMerged += old.B.Len()
				}
				bi := old.Copy()
				remapA, remapB, st := rrt.PruneBiTree(s, dc, bi, repairGraftK)
				sts[i] = st
				newBis[i] = bi
				// Translate tree-local remaps into merged-branch ids:
				// A nodes keep their (compacted) ids; B nodes followed at
				// offset lenA and survive only while the pair stays met.
				mr := make([]int, oldMerged)
				copy(mr, remapA)
				for j := oldLenA; j < oldMerged; j++ {
					bj := j - oldLenA
					if bi.Met && remapB[bj] >= 0 {
						mr[j] = bi.A.Len() + remapB[bj]
					} else {
						mr[j] = -1
					}
				}
				mergedRemaps[i] = mr
				return e.opts.Cost.Time(st.Work), bi.Len()
			},
		}
	})
	report := pl.run(phaseSpec{name: "repair", queues: queues, policy: pl.stealPolicy(), salt: saltRepair})
	if report.Stopped || sched.Canceled(stop) {
		return nil, abort()
	}
	makespan := report.Makespan + pl.barrier()

	branches := make([]*rrt.Tree, n)
	for i := 0; i < n; i++ {
		if newBis[i] != nil {
			branches[i] = rrt.MergeBiTree(newBis[i])
		}
	}
	newBridges, removed, bridgeMakespan, stopped := repairBridgeSet(pl, rg.Owner, e.opts, dc, e.bridges, branches, mergedRemaps, &out.Stats)
	if stopped {
		return nil, abort()
	}
	makespan += bridgeMakespan

	// --- Commit.
	st := &out.Stats
	st.Makespan = makespan
	for i := 0; i < n; i++ {
		st.CheckedNodes += sts[i].CheckedNodes
		st.CheckedEdges += sts[i].CheckedEdges
		st.RemovedNodes += sts[i].Removed
		st.Grafted += sts[i].Grafted
		st.Work.Add(sts[i].Work)
		if newBis[i] != nil {
			e.bis[i] = newBis[i]
		}
	}
	out.BranchRemaps = mergedRemaps
	out.RemovedBridges = removed
	st.RemovedEdges += removed
	e.bridges = newBridges
	pl.observeConstruct(n, report, nil)
	e.s = s
	e.commitRepair(out.Stats, branches, newBridges)
	return out, nil
}

// commitRepair publishes a fresh RRT-Connect result over the repaired
// pairs, re-deriving the met/goal summary (a door closing can un-meet
// the goal region's pair, flipping GoalConnected back off).
func (e *RRTConnectEngine) commitRepair(st RepairStats, branches []*rrt.Tree, bridges [][4]int) {
	e.repairAcc.Add(st)
	prev := e.res
	res := *prev
	res.Branches = branches
	res.Bridges = bridges
	res.Phases.Repair += st.Makespan
	res.TotalTime = res.Phases.Total()
	res.PhaseReports = e.pl.reports
	res.Repairs = e.repairAcc
	res.TreesMet = 0
	res.GoalConnected = false
	for _, bi := range e.bis {
		if bi == nil || !bi.Met {
			continue
		}
		res.TreesMet++
		if bi.B != nil && bi.B.Nodes[0].Q.Equal(e.goal, 0) {
			res.GoalConnected = true
		}
	}
	res.NodeLoads = make([]float64, e.opts.Procs)
	for i, t := range branches {
		if t != nil {
			res.NodeLoads[e.rg.Owner[i]] += float64(t.Len())
		}
	}
	res.CVAfter = metrics.CV(res.NodeLoads)
	e.res = &res
}
