package core

import (
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/metrics"
)

// growN runs n engine rounds, failing the test on any error.
func growPRM(t *testing.T, e *PRMEngine, n int) *PRMResult {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.GrowRound(nil); err != nil {
			t.Fatal(err)
		}
	}
	return e.Result()
}

func growRRT(t *testing.T, e *RRTEngine, n int) *RRTResult {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.GrowRound(nil); err != nil {
			t.Fatal(err)
		}
	}
	return e.Result()
}

// constructCVs extracts the per-round construct-phase busy-time CV from
// the retained phase reports (which keep worker stats; per-task maps are
// trimmed).
func constructCVs(reports []PhaseReport) []float64 {
	var out []float64
	for _, pr := range reports {
		if pr.Phase != "construct" {
			continue
		}
		busy := make([]float64, len(pr.Report.Workers))
		for i, w := range pr.Report.Workers {
			busy[i] = w.Busy
		}
		out = append(out, metrics.CV(busy))
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TestCostModelContentInvariant: the cost model and the diffusive
// rebalance change WHO does the work, never WHAT is computed — every
// CostModel × Rebalance combination commits the identical roadmap.
func TestCostModelContentInvariant(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	type combo struct {
		name string
		cm   CostModelKind
		rb   RebalanceKind
	}
	combos := []combo{
		{"static-none", CostStatic, RebalanceNone},
		{"static-diffusive", CostStatic, RebalanceDiffusive},
		{"observed-none", CostObserved, RebalanceNone},
		{"observed-diffusive", CostObserved, RebalanceDiffusive},
	}
	var nodes, edges int
	for i, c := range combos {
		opts := quickOpts(4, 64)
		opts.Strategy = Repartition
		opts.CostModel = c.cm
		opts.Rebalance = c.rb
		e, err := NewPRMEngine(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		res := growPRM(t, e, 3)
		if i == 0 {
			nodes, edges = res.Roadmap.NumNodes(), res.Roadmap.NumEdges()
			continue
		}
		if res.Roadmap.NumNodes() != nodes || res.Roadmap.NumEdges() != edges {
			t.Errorf("%s: roadmap %d nodes/%d edges, want %d/%d",
				c.name, res.Roadmap.NumNodes(), res.Roadmap.NumEdges(), nodes, edges)
		}
	}
}

// TestCostModelRoundZeroColdStartIdentical: with no observations yet the
// observed model falls back to the static estimator, so a single round
// is bit-identical across cost models (the engines' round-0 == one-shot
// guarantee survives the new options).
func TestCostModelRoundZeroColdStartIdentical(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	static := quickOpts(4, 64)
	static.Strategy = Repartition
	observed := static
	observed.CostModel = CostObserved

	a, err := ParallelPRM(s, static)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParallelPRM(s, observed)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime {
		t.Fatalf("round-0 virtual time diverged: static %v observed %v", a.TotalTime, b.TotalTime)
	}
	if a.CVAfter != b.CVAfter {
		t.Fatalf("round-0 CV diverged: static %v observed %v", a.CVAfter, b.CVAfter)
	}
}

// TestObservedCostWeightsTrackMeasuredWork: from round 1 on, the RRT
// engine's repartition weights under CostObserved are the EWMA of
// measured branch costs, so their correlation with the next round's
// actual costs must beat the static k-ray estimate's (the paper's
// poor-estimator result, closed). Both runs are deterministic, so the
// comparison is stable.
func TestObservedCostWeightsTrackMeasuredWork(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed30())
	root := geom.V(0.5, 0.5, 0.5)

	static := rrtOpts(8, 64)
	static.Strategy = Repartition
	eStatic, err := NewRRTEngine(s, root, static)
	if err != nil {
		t.Fatal(err)
	}
	resStatic := growRRT(t, eStatic, 4)

	observed := static
	observed.CostModel = CostObserved
	eObs, err := NewRRTEngine(s, root, observed)
	if err != nil {
		t.Fatal(err)
	}
	resObs := growRRT(t, eObs, 4)

	if resObs.WeightActualCorr <= resStatic.WeightActualCorr {
		t.Errorf("observed-cost weight correlation %.3f should beat k-ray %.3f",
			resObs.WeightActualCorr, resStatic.WeightActualCorr)
	}
	// Forest content must match: weights only move ownership.
	if resObs.TotalNodes() != resStatic.TotalNodes() {
		t.Errorf("total nodes diverged: observed %d static %d", resObs.TotalNodes(), resStatic.TotalNodes())
	}
	// Observed mode repartitions every warm round, so migrations can
	// exceed the static single-shot round-0 count; at minimum the model
	// must have been consulted (RegionCosts populated every round).
	for i, rc := range resObs.RegionCosts {
		if rc.Count != 4 {
			t.Fatalf("region %d observed %d construct rounds, want 4", i, rc.Count)
		}
		if rc.Sum < 0 || rc.Max > rc.Sum {
			t.Fatalf("region %d inconsistent summary %+v", i, rc)
		}
	}
}

// TestObservedCostWeightsCutPRMImbalance: PRM repartitioning on observed
// construct costs must balance the expensive phase better than
// sample-count weighting from round 1 on, on an environment where
// per-sample connection cost varies by region (sample counts are a
// proxy for task count; observed costs measure the actual work). On
// cost-homogeneous environments sample counts remain competitive — see
// EXPERIMENTS.md for the full comparison.
func TestObservedCostWeightsCutPRMImbalance(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed())
	static := quickOpts(8, 128)
	static.SamplesPerRegion = 5
	static.Strategy = Repartition

	eStatic, err := NewPRMEngine(s, static)
	if err != nil {
		t.Fatal(err)
	}
	resStatic := growPRM(t, eStatic, 4)

	observed := static
	observed.CostModel = CostObserved
	eObs, err := NewPRMEngine(s, observed)
	if err != nil {
		t.Fatal(err)
	}
	resObs := growPRM(t, eObs, 4)

	// Round 0 is identical (cold start); compare the warm rounds.
	cvStatic := mean(constructCVs(resStatic.PhaseReports)[1:])
	cvObs := mean(constructCVs(resObs.PhaseReports)[1:])
	if cvObs >= cvStatic {
		t.Errorf("observed-cost construct CV %.4f should beat sample-count %.4f", cvObs, cvStatic)
	}
	if resObs.Roadmap.NumNodes() != resStatic.Roadmap.NumNodes() {
		t.Errorf("roadmap diverged: %d vs %d nodes", resObs.Roadmap.NumNodes(), resStatic.Roadmap.NumNodes())
	}
}

// TestDiffusiveRebalanceMovesOwnership: with no bulk repartitioner, the
// diffusive step is the only balancer; on a skewed environment it must
// move regions off the loaded processors and leave the committed roadmap
// identical to a run without it.
func TestDiffusiveRebalanceMovesOwnership(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	plain := quickOpts(8, 128)
	plain.SamplesPerRegion = 5
	ePlain, err := NewPRMEngine(s, plain)
	if err != nil {
		t.Fatal(err)
	}
	resPlain := growPRM(t, ePlain, 3)

	diff := plain
	diff.CostModel = CostObserved
	diff.Rebalance = RebalanceDiffusive
	eDiff, err := NewPRMEngine(s, diff)
	if err != nil {
		t.Fatal(err)
	}
	resDiff := growPRM(t, eDiff, 3)

	if resDiff.DiffusedRegions == 0 {
		t.Fatal("diffusive rebalance moved nothing on a skewed workload")
	}
	if resDiff.Roadmap.NumNodes() != resPlain.Roadmap.NumNodes() ||
		resDiff.Roadmap.NumEdges() != resPlain.Roadmap.NumEdges() {
		t.Fatalf("diffusion changed the roadmap: %d/%d vs %d/%d nodes/edges",
			resDiff.Roadmap.NumNodes(), resDiff.Roadmap.NumEdges(),
			resPlain.Roadmap.NumNodes(), resPlain.Roadmap.NumEdges())
	}
	// Redistribution cost is charged for the moves.
	if resDiff.Phases.Redistribution <= 0 {
		t.Fatal("diffusive moves should charge migration cost")
	}
}

// TestPhaseReportsTrimmedAndRegionCostsBounded pins the retention
// contract: retained phase reports drop their per-task maps (the memory
// fix), and the bounded per-region summary carries the per-region cost
// detail instead.
func TestPhaseReportsTrimmedAndRegionCostsBounded(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	opts := quickOpts(4, 64)
	e, err := NewPRMEngine(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := growPRM(t, e, 2)
	if len(res.PhaseReports) == 0 {
		t.Fatal("no phase reports retained")
	}
	for _, pr := range res.PhaseReports {
		rep := pr.Report
		if rep.ExecutedBy != nil || rep.Cost != nil || rep.Payload != nil ||
			rep.Elapsed != nil || rep.TaskRegion != nil {
			t.Fatalf("phase %q round %d retained per-task maps", pr.Phase, pr.Round)
		}
		if len(rep.Workers) == 0 {
			t.Fatalf("phase %q round %d lost its worker stats", pr.Phase, pr.Round)
		}
	}
	if len(res.RegionCosts) != res.RegionGraph.NumRegions() {
		t.Fatalf("RegionCosts len %d, want %d", len(res.RegionCosts), res.RegionGraph.NumRegions())
	}
	var total float64
	for i, rc := range res.RegionCosts {
		if rc.Count != 2 {
			t.Fatalf("region %d counted %d construct tasks, want 2 (one per round)", i, rc.Count)
		}
		if rc.Max > rc.Sum || rc.Sum < 0 {
			t.Fatalf("region %d inconsistent summary %+v", i, rc)
		}
		if got, want := rc.Mean(), rc.Sum/2; got != want {
			t.Fatalf("region %d mean %v, want %v", i, got, want)
		}
		total += rc.Sum
	}
	if total <= 0 {
		t.Fatal("no construct cost recorded in RegionCosts")
	}
}
