package core

import (
	"parmp/internal/cspace"
	"parmp/internal/geom"
	"parmp/internal/knn"
)

// treeRef maps a flattened point index back to (branch, node).
type treeRef struct{ branch, node int }

// TreeIndex is a prebuilt query accelerator over a frozen RRT result:
// every branch node is gathered once and indexed in a kd-tree at build
// time, so extracting a path to a goal costs a handful of kNN lookups
// instead of re-gathering and fully sorting every tree node per call
// (what the legacy RRTResult.ExtractPath does). A TreeIndex never
// mutates its result, which is what makes a published engine snapshot
// safe for concurrent readers.
type TreeIndex struct {
	res  *RRTResult
	pts  []geom.Vec
	refs []treeRef
	tree *knn.KDTree
}

// BuildTreeIndex gathers r's branch nodes and builds the kd-tree (in
// parallel for large trees). The index keeps references into r; the
// result must not be mutated afterwards — engine results are immutable
// by construction, so any Result()/snapshot value qualifies.
func BuildTreeIndex(r *RRTResult) *TreeIndex {
	var pts []geom.Vec
	var refs []treeRef
	for bi, tree := range r.Branches {
		if tree == nil {
			continue
		}
		for ni, n := range tree.Nodes {
			pts = append(pts, n.Q)
			refs = append(refs, treeRef{branch: bi, node: ni})
		}
	}
	return &TreeIndex{res: r, pts: pts, refs: refs, tree: knn.BuildParallel(pts, 0)}
}

// Result returns the indexed RRT result (read-only by contract).
func (ix *TreeIndex) Result() *RRTResult { return ix.res }

// NumNodes returns the number of indexed tree nodes.
func (ix *TreeIndex) NumNodes() int { return len(ix.pts) }

// ExtractPath returns a collision-free path from the RRT root to goal,
// like RRTResult.ExtractPath but against the prebuilt index: candidates
// come from kd-tree lookups with a doubling neighbourhood instead of a
// full per-call sort, so the common case (a nearby node connects) costs
// O(log n) per lookup. Like the legacy path it keeps widening until
// every node has been tried, so reachability semantics are identical;
// only the candidate order among metric ties may differ. Safe for
// concurrent use.
func (ix *TreeIndex) ExtractPath(s *cspace.Space, goal cspace.Config, c *cspace.Counters) ([]cspace.Config, bool) {
	if !s.Valid(goal, c) {
		return nil, false
	}
	n := len(ix.pts)
	if n == 0 {
		return nil, false
	}
	tried := 0
	for k := 8; tried < n; k *= 2 {
		hits, evals := ix.tree.Nearest(goal, k)
		if c != nil {
			c.KNNQueries++
			c.KNNEvals += int64(evals)
		}
		// hits are sorted closest-first; the first `tried` were already
		// attempted in the previous, smaller neighbourhood.
		for _, h := range hits[tried:] {
			rf := ix.refs[h.Index]
			branch := ix.res.Branches[rf.branch]
			// Plan tree → goal: steering may be asymmetric (a forward-only
			// car cannot drive a path backwards).
			if !s.LocalPlan(branch.Nodes[rf.node].Q, goal, c) {
				continue
			}
			idxPath := branch.PathToRoot(rf.node)
			path := make([]cspace.Config, 0, len(idxPath)+1)
			for i := len(idxPath) - 1; i >= 0; i-- {
				path = append(path, branch.Nodes[idxPath[i]].Q.Clone())
			}
			path = append(path, goal.Clone())
			return path, true
		}
		tried = len(hits)
		if len(hits) < k {
			break // neighbourhood already covered the whole tree
		}
	}
	return nil, false
}
