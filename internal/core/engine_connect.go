package core

import (
	"errors"
	"fmt"
	"math"

	"parmp/internal/cspace"
	"parmp/internal/geom"
	"parmp/internal/metrics"
	"parmp/internal/region"
	"parmp/internal/repart"
	"parmp/internal/rng"
	"parmp/internal/rrt"
	"parmp/internal/sched"
	"parmp/internal/work"
)

// RRTConnectEngine grows the radial-subdivision parallel RRT-Connect
// incrementally: every region grows TWO trees — one rooted at the shared
// root (the subdivision apex), one at the goal side of its cone (at the
// global goal for the region containing it) — alternately extending and
// greedily connecting until they meet. Met regions stop growing; their
// merged, root-anchored branch joins the cross-region connection phase
// exactly like a plain RRT branch, so the whole load-balancing pipeline
// (k-ray weights, repartitioning, work stealing, bridge pruning) applies
// unchanged. The one-shot ParallelRRTConnect is exactly one round.
//
// An RRTConnectEngine is not safe for concurrent use; the serving layer
// (package parmp) serializes growth and publishes immutable snapshots.
type RRTConnectEngine struct {
	s      *cspace.Space
	root   cspace.Config
	goal   cspace.Config
	opts   Options
	pl     *pipeline
	rg     *region.Graph
	params rrt.Params

	// bis holds each region's committed tree pair (nil before the
	// region's first committed round).
	bis          []*rrt.BiTree
	bridges      [][4]int
	prunedCycles int
	// costAcc accumulates the bounded per-region construct-cost summary
	// across committed rounds (published as Result().RegionCosts).
	costAcc []RegionCost
	// repairAcc accumulates committed ApplyDelta repair stats.
	repairAcc RepairStats

	res   *RRTResult // last committed cumulative result
	round int
}

// NewRRTConnectEngine validates opts and builds the radial subdivision
// about root. RRT-Connect marches both trees along straight local plans
// in both directions, so it requires symmetric local motions: spaces
// with a steering function (Dubins) are rejected. The goal must be a
// valid-length configuration; it seeds the goal-side tree of whichever
// region contains it.
func NewRRTConnectEngine(s *cspace.Space, root, goal cspace.Config, opts Options) (*RRTConnectEngine, error) {
	opts = opts.Defaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if s.Steer != nil {
		return nil, errors.New("core: RRT-Connect requires symmetric local motions (steered spaces are not supported)")
	}
	if goal == nil {
		return nil, errors.New("core: RRT-Connect requires a goal configuration")
	}
	if goal.Dim() != root.Dim() {
		return nil, fmt.Errorf("core: goal dimension %d != root dimension %d", goal.Dim(), root.Dim())
	}
	apex := root.Clone()
	setupRNG := rng.Derive(opts.Seed, 0xabcdef)
	rg := region.RadialSubdivision(apex, region.RadialSpec{
		Regions:      opts.Regions,
		K:            opts.RegionK,
		Radius:       opts.Radius,
		OverlapAngle: opts.Overlap,
	}, setupRNG)
	assignContiguous(rg, opts.Procs)
	// Random radial cones cover direction space only approximately (each
	// half-angle is the nearest-ray spacing), so the goal's direction can
	// fall in a gap between every cone. Deterministically widen the cone
	// nearest the goal until it contains it: RRT-Connect's advantage
	// hinges on exactly one region rooting its goal-side tree at the goal.
	if goal.Dim() == apex.Dim() {
		if v := goal.Sub(apex); v.Norm() > 0 && v.Norm() <= opts.Radius {
			best, bestAngle := -1, math.MaxFloat64
			for i := 0; i < rg.NumRegions(); i++ {
				if a := geom.AngleBetween(v, rg.Region(i).Ray); a < bestAngle {
					best, bestAngle = i, a
				}
			}
			if reg := rg.Region(best); reg.HalfAngle <= bestAngle {
				reg.HalfAngle = bestAngle + 1e-9
			}
		}
	}
	e := &RRTConnectEngine{
		s:      s,
		root:   apex,
		goal:   goal.Clone(),
		opts:   opts,
		pl:     newPipeline(opts),
		rg:     rg,
		params: rrt.Params{Nodes: opts.NodesPerRegion, Step: opts.Step, GoalBias: opts.GoalBias},
	}
	e.bis = make([]*rrt.BiTree, rg.NumRegions())
	e.costAcc = make([]RegionCost, rg.NumRegions())
	e.res = &RRTResult{RegionGraph: rg}
	return e, nil
}

// Rounds returns the number of committed growth rounds.
func (e *RRTConnectEngine) Rounds() int { return e.round }

// Result returns the cumulative result of all committed rounds. The
// returned value is immutable: Branches are freshly merged per round, so
// holding a result (or a snapshot built from it) is safe while the
// engine keeps growing.
func (e *RRTConnectEngine) Result() *RRTResult { return e.res }

// GrowRound runs one pipeline pass: every unmet region's tree pair grows
// toward a cumulative node target (met pairs are no-ops), then adjacent
// regions' merged branches attempt cross-region bridges. Cancellation
// semantics match RRTEngine.GrowRound: on a fired stop channel the
// round's partial buffers are discarded and ErrStopped returned.
func (e *RRTConnectEngine) GrowRound(stop <-chan struct{}) error {
	opts := e.opts
	pl := e.pl
	rg := e.rg
	n := rg.NumRegions()
	round := e.round

	pl.stop = stop
	defer func() { pl.stop = nil }()
	reportMark := len(pl.reports)
	ownerMark := append([]int(nil), rg.Owner...)
	abort := func() error {
		pl.reports = pl.reports[:reportMark]
		copy(rg.Owner, ownerMark)
		return ErrStopped
	}

	var phases PhaseBreakdown
	if round == 0 {
		phases.Setup = pl.barrier()
	}

	// --- Weight phase with the k-ray estimate (round 0 only), exactly as
	// in RRTEngine: the probe is a static workspace property.
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	migrated := 0
	if round == 0 {
		if e.s.Dim() == e.s.Env.Dim() {
			weights = repart.KRayWeights(e.s.Env, rg, opts.KRays, opts.Seed)
		}
		if err := rg.SetWeights(weights); err != nil {
			return err
		}
		e.res.CVBefore = metrics.CV(rg.LoadPerProcessor(opts.Procs))
		if opts.Strategy == Repartition {
			rayCost := float64(opts.KRays) * opts.Cost.CDObstacle * float64(len(e.s.Env.Obstacles)+1)
			rayRep := pl.replay(phaseSpec{
				name: "weight",
				queues: queuesByOwner(opts.Procs, rg.Owner, n, func(i int) work.Task {
					return costTask(i, rayCost)
				}),
			})
			phases.Redistribution = rayRep.Makespan + pl.barrier()
			var cost float64
			migrated, cost = pl.rebalance(rg, weights, nil)
			phases.Redistribution += cost
		}
	}
	// Observed cost model: warm rounds re-weigh on measured pair-growth
	// costs and re-repartition every round, exactly as in RRTEngine.
	if round > 0 && opts.CostModel == CostObserved {
		weights = pl.roundWeights(weights, nil)
		if err := rg.SetWeights(weights); err != nil {
			return err
		}
		if opts.Strategy == Repartition {
			var cost float64
			migrated, cost = pl.rebalance(rg, weights, e.nodeCounts())
			if migrated > 0 {
				phases.Redistribution = cost + pl.barrier()
			}
		}
	}
	if sched.Canceled(stop) {
		return abort()
	}

	// --- Tree-pair growth phase (expensive; stealable). Round 0 roots
	// each pair (consuming the region's stream before growth, so the
	// one-shot planner and the engine agree); later rounds grow a
	// round-local copy of the committed pair, so an aborted round leaves
	// committed state untouched.
	targetNodes := (round + 1) * opts.NodesPerRegion
	params := e.params
	params.Nodes = targetNodes
	results := make([]rrt.BiResult, n)
	constructQueues := queuesByOwner(opts.Procs, rg.Owner, n, func(i int) work.Task {
		return work.Task{
			ID: i,
			Run: func() (float64, int) {
				r := rng.Derive(opts.Seed, roundSalt(round, i))
				bi := e.roundBiTree(i)
				var rootWork cspace.Counters
				if bi == nil {
					bi, rootWork = rrt.NewBiTree(e.s, rg.Region(i), e.goal, r)
				}
				results[i] = rrt.GrowBiTree(e.s, rg.Region(i), bi, params, r)
				results[i].Work.Add(rootWork)
				return opts.Cost.Time(results[i].Work), bi.Len()
			},
		}
	})
	diffused, diffuseCost := pl.diffuse(rg, constructQueues, weights, e.nodeCounts())
	phases.Redistribution += diffuseCost
	report := pl.run(phaseSpec{
		name:   "construct",
		queues: constructQueues,
		policy: pl.stealPolicy(),
		salt:   saltConnectConstruct,
	})
	if report.Stopped || sched.Canceled(stop) {
		return abort()
	}
	phases.NodeConnection = report.Makespan + pl.barrier()
	pl.applyOwnership(rg, report)

	weightCorr := e.res.WeightActualCorr
	if opts.Strategy == Repartition && (round == 0 || opts.CostModel == CostObserved) {
		costs := make([]float64, n)
		for i := 0; i < n; i++ {
			costs[i] = report.Cost[i]
		}
		weightCorr = metrics.Pearson(weights, costs)
	}

	// --- Branch connection phase over the merged, root-anchored
	// branches. Unmet goal-side trees are excluded (their nodes cannot
	// reach the root), but stay in the engine to keep growing next round.
	branches := make([]*rrt.Tree, n)
	for i := 0; i < n; i++ {
		branches[i] = rrt.MergeBiTree(results[i].Bi)
	}
	conn := runBranchConnect(pl, rg, e.s, opts, branches, e.bridges, stop)
	if conn.stopped {
		return abort()
	}
	phases.RegionConnection = conn.makespan + pl.barrier()
	phases.Other = pl.barrier()

	// --- Commit.
	for i := 0; i < n; i++ {
		e.bis[i] = results[i].Bi
	}
	e.bridges = append(e.bridges, conn.newBridges...)
	e.prunedCycles += conn.newPruned
	pl.observeConstruct(n, report, nil)
	accumulateRegionCosts(e.costAcc, report)
	e.round++

	prev := e.res
	res := &RRTResult{
		Branches:         branches,
		Bridges:          e.bridges,
		PrunedCycles:     e.prunedCycles,
		RegionGraph:      rg,
		ProcStats:        report.Workers,
		PhaseReports:     pl.reports,
		EdgeCut:          rg.EdgeCut(),
		RegionRemote:     prev.RegionRemote + conn.regionRemote,
		MigratedRegions:  prev.MigratedRegions + migrated,
		DiffusedRegions:  prev.DiffusedRegions + diffused,
		RegionCosts:      append([]RegionCost(nil), e.costAcc...),
		Repairs:          e.repairAcc,
		CVBefore:         prev.CVBefore,
		WeightActualCorr: weightCorr,
	}
	for i := 0; i < n; i++ {
		bi := e.bis[i]
		if bi == nil || !bi.Met {
			continue
		}
		res.TreesMet++
		if bi.B != nil && bi.B.Nodes[0].Q.Equal(e.goal, 0) {
			res.GoalConnected = true
		}
	}
	res.Phases = prev.Phases
	res.Phases.Setup += phases.Setup
	res.Phases.Redistribution += phases.Redistribution
	res.Phases.NodeConnection += phases.NodeConnection
	res.Phases.RegionConnection += phases.RegionConnection
	res.Phases.Other += phases.Other
	res.TotalTime = res.Phases.Total()
	res.NodeLoads = make([]float64, opts.Procs)
	for i := 0; i < n; i++ {
		res.NodeLoads[rg.Owner[i]] += float64(branches[i].Len())
	}
	res.CVAfter = metrics.CV(res.NodeLoads)
	e.res = res
	return nil
}

// nodeCounts returns the committed tree-pair size per region — the
// per-vertex migration payload when repartitioning or diffusing between
// rounds (nil pairs, i.e. before round 0 commits, count zero).
func (e *RRTConnectEngine) nodeCounts() []int {
	counts := make([]int, len(e.bis))
	for i, bi := range e.bis {
		if bi != nil {
			counts[i] = bi.Len()
		}
	}
	return counts
}

// roundBiTree returns a round-local deep copy of region i's committed
// tree pair, or nil before the region's first committed round (the
// growth task then roots a fresh pair, consuming the round's stream
// exactly like the one-shot planner).
func (e *RRTConnectEngine) roundBiTree(i int) *rrt.BiTree {
	if e.bis[i] == nil {
		return nil
	}
	return e.bis[i].Copy()
}

// ParallelRRTConnect runs the radial-subdivision parallel RRT-Connect
// rooted at root, with every region's goal-side tree anchored toward
// goal (exactly at goal for the region containing it). It is exactly one
// growth round of an RRTConnectEngine; long-lived callers that want to
// keep extending the same pairs (or cancel mid-build) should construct
// the engine directly.
func ParallelRRTConnect(s *cspace.Space, root, goal cspace.Config, opts Options) (*RRTResult, error) {
	eng, err := NewRRTConnectEngine(s, root, goal, opts)
	if err != nil {
		return nil, err
	}
	if err := eng.GrowRound(nil); err != nil {
		return nil, err
	}
	return eng.Result(), nil
}
