package core

import (
	"parmp/internal/cspace"
	"parmp/internal/metrics"
	"parmp/internal/region"
	"parmp/internal/repart"
	"parmp/internal/rng"
	"parmp/internal/rrt"
	"parmp/internal/sched"
	"parmp/internal/work"
)

// RRTEngine grows the radial-subdivision parallel RRT incrementally:
// each GrowRound extends every region's branch by NodesPerRegion more
// nodes through the phase pipeline (growth stealable, then branch
// connection with cycle pruning), reusing the region graph, cone
// geometry and ownership state across rounds. The one-shot ParallelRRT
// is exactly one round of this engine.
//
// An RRTEngine is not safe for concurrent use; the serving layer
// (package parmp) serializes growth and publishes immutable snapshots.
type RRTEngine struct {
	s      *cspace.Space
	root   cspace.Config
	opts   Options
	pl     *pipeline
	rg     *region.Graph
	params rrt.Params

	// Committed growth state: exactly one of trees/starTrees is used.
	trees     []*rrt.Tree
	starTrees []*rrt.StarTree
	// bridges and prunedCycles accumulate the committed branch
	// connections; the per-round union-find is rebuilt from bridges.
	bridges      [][4]int
	prunedCycles int
	// costAcc accumulates the bounded per-region construct-cost summary
	// across committed rounds (published as Result().RegionCosts).
	costAcc []RegionCost
	// repairAcc accumulates committed ApplyDelta repair stats.
	repairAcc RepairStats

	res   *RRTResult // last committed cumulative result
	round int
}

// NewRRTEngine validates opts and builds the radial subdivision about
// root. No planning work happens until GrowRound.
func NewRRTEngine(s *cspace.Space, root cspace.Config, opts Options) (*RRTEngine, error) {
	opts = opts.Defaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	apex := root.Clone()
	setupRNG := rng.Derive(opts.Seed, 0xabcdef)
	rg := region.RadialSubdivision(apex, region.RadialSpec{
		Regions:      opts.Regions,
		K:            opts.RegionK,
		Radius:       opts.Radius,
		OverlapAngle: opts.Overlap,
	}, setupRNG)
	// The naive mapping groups spatially adjacent cones on the same
	// processor (contiguous blocks of a BFS sweep over the region graph),
	// mirroring the paper's mesh-aligned distribution.
	assignContiguous(rg, opts.Procs)
	e := &RRTEngine{
		s:      s,
		root:   apex,
		opts:   opts,
		pl:     newPipeline(opts),
		rg:     rg,
		params: rrt.Params{Nodes: opts.NodesPerRegion, Step: opts.Step, GoalBias: opts.GoalBias},
	}
	n := rg.NumRegions()
	if opts.Star {
		e.starTrees = make([]*rrt.StarTree, n)
	} else {
		e.trees = make([]*rrt.Tree, n)
	}
	e.costAcc = make([]RegionCost, n)
	e.res = &RRTResult{RegionGraph: rg}
	return e, nil
}

// Rounds returns the number of committed growth rounds.
func (e *RRTEngine) Rounds() int { return e.round }

// Result returns the cumulative result of all committed rounds. The
// returned value is immutable — Branches are per-round copies, so
// holding a result (or a snapshot built from it) is safe while the
// engine keeps growing and RRT* rewiring keeps mutating parents.
func (e *RRTEngine) Result() *RRTResult { return e.res }

// GrowRound runs one pipeline pass, extending every region's branch by
// NodesPerRegion nodes and attempting cross-region connections for
// still-disconnected adjacent pairs. Cancellation semantics match
// PRMEngine.GrowRound: on a fired stop channel the round's partial
// buffers are discarded and ErrStopped returned.
func (e *RRTEngine) GrowRound(stop <-chan struct{}) error {
	opts := e.opts
	pl := e.pl
	rg := e.rg
	n := rg.NumRegions()
	round := e.round

	pl.stop = stop
	defer func() { pl.stop = nil }()
	reportMark := len(pl.reports)
	ownerMark := append([]int(nil), rg.Owner...)
	abort := func() error {
		pl.reports = pl.reports[:reportMark]
		copy(rg.Owner, ownerMark)
		return ErrStopped
	}

	var phases PhaseBreakdown
	if round == 0 {
		phases.Setup = pl.barrier()
	}

	// --- Weight phase with the k-ray estimate (round 0 only: the probe
	// is a static workspace property, so later rounds reuse the
	// partition it produced).
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	migrated := 0
	if round == 0 {
		if e.s.Dim() == e.s.Env.Dim() {
			weights = repart.KRayWeights(e.s.Env, rg, opts.KRays, opts.Seed)
		}
		if err := rg.SetWeights(weights); err != nil {
			return err
		}
		e.res.CVBefore = metrics.CV(rg.LoadPerProcessor(opts.Procs))
		if opts.Strategy == Repartition {
			// The weight pass itself costs k rays per region on the owner.
			rayCost := float64(opts.KRays) * opts.Cost.CDObstacle * float64(len(e.s.Env.Obstacles)+1)
			rayRep := pl.replay(phaseSpec{
				name: "weight",
				queues: queuesByOwner(opts.Procs, rg.Owner, n, func(i int) work.Task {
					return costTask(i, rayCost)
				}),
			})
			phases.Redistribution = rayRep.Makespan + pl.barrier()
			// Note: unlike PRM there is no balanced-already escape hatch
			// here — the k-ray estimate CLAIMS imbalance whether or not it
			// is real, which is the paper's point. Migration proceeds
			// whenever the estimated loads look improvable.
			var cost float64
			migrated, cost = pl.rebalance(rg, weights, nil)
			phases.Redistribution += cost
		}
	}
	// Under the observed cost model, later rounds re-weigh on the EWMA of
	// measured branch costs and — unlike the static k-ray setup, which
	// repartitions only once — re-repartition every round: region costs
	// are temporally autocorrelated, so last rounds' measurements are the
	// good estimator the k-ray probe is not.
	if round > 0 && opts.CostModel == CostObserved {
		weights = pl.roundWeights(weights, nil)
		if err := rg.SetWeights(weights); err != nil {
			return err
		}
		if opts.Strategy == Repartition {
			var cost float64
			migrated, cost = pl.rebalance(rg, weights, e.nodeCounts())
			if migrated > 0 {
				phases.Redistribution = cost + pl.barrier()
			}
		}
	}
	if sched.Canceled(stop) {
		return abort()
	}

	// --- Branch growth phase (expensive; stealable). Each round grows
	// toward a cumulative per-region target on a round-local copy of the
	// committed tree, so an aborted round leaves the branches untouched.
	targetNodes := (round + 1) * opts.NodesPerRegion
	params := e.params
	params.Nodes = targetNodes
	results := make([]rrt.Result, n)
	starResults := make([]*rrt.StarTree, n)
	rewires := make([]int, n)
	constructQueues := queuesByOwner(opts.Procs, rg.Owner, n, func(i int) work.Task {
		return work.Task{
			ID: i,
			Run: func() (float64, int) {
				r := rng.Derive(opts.Seed, roundSalt(round, i))
				if opts.Star {
					tree := e.roundStarTree(i)
					starRes := rrt.GrowStarTree(e.s, rg.Region(i), tree,
						rrt.StarParams{Params: params, RewireRadius: opts.RewireRadius}, r)
					starResults[i] = starRes.Tree
					results[i] = rrt.Result{
						Tree:  &rrt.Tree{Nodes: starRes.Tree.Nodes},
						Work:  starRes.Work,
						Iters: starRes.Iters,
					}
					rewires[i] = starRes.Rewires
				} else {
					results[i] = rrt.GrowTree(e.s, rg.Region(i), e.roundTree(i), params, r)
				}
				return opts.Cost.Time(results[i].Work), results[i].Tree.Len()
			},
		}
	})
	diffused, diffuseCost := pl.diffuse(rg, constructQueues, weights, e.nodeCounts())
	phases.Redistribution += diffuseCost
	report := pl.run(phaseSpec{
		name:   "construct",
		queues: constructQueues,
		policy: pl.stealPolicy(),
		salt:   saltRRTConstruct,
	})
	if report.Stopped || sched.Canceled(stop) {
		return abort()
	}
	phases.NodeConnection = report.Makespan + pl.barrier()
	pl.applyOwnership(rg, report)

	// Correlation between weight estimate and measured cost: round 0
	// (where the static estimate was computed), and every warm round
	// under the observed model (whose whole point is that this
	// correlation is high where the k-ray probe's is not).
	weightCorr := e.res.WeightActualCorr
	if opts.Strategy == Repartition && (round == 0 || opts.CostModel == CostObserved) {
		costs := make([]float64, n)
		for i := 0; i < n; i++ {
			costs[i] = report.Cost[i]
		}
		weightCorr = metrics.Pearson(weights, costs)
	}

	// --- Branch connection phase with cycle pruning (shared with the
	// RRT-Connect engine; see runBranchConnect).
	branches := make([]*rrt.Tree, n)
	for i := 0; i < n; i++ {
		branches[i] = results[i].Tree
	}
	conn := runBranchConnect(pl, rg, e.s, opts, branches, e.bridges, stop)
	if conn.stopped {
		return abort()
	}
	phases.RegionConnection = conn.makespan + pl.barrier()
	phases.Other = pl.barrier()

	// --- Commit.
	if opts.Star {
		copy(e.starTrees, starResults)
	} else {
		for i := 0; i < n; i++ {
			e.trees[i] = results[i].Tree
		}
	}
	e.bridges = append(e.bridges, conn.newBridges...)
	e.prunedCycles += conn.newPruned
	pl.observeConstruct(n, report, nil)
	accumulateRegionCosts(e.costAcc, report)
	e.round++

	prev := e.res
	res := &RRTResult{
		Branches:         branches,
		Bridges:          e.bridges,
		PrunedCycles:     e.prunedCycles,
		RegionGraph:      rg,
		ProcStats:        report.Workers,
		PhaseReports:     pl.reports,
		EdgeCut:          rg.EdgeCut(),
		RegionRemote:     prev.RegionRemote + conn.regionRemote,
		MigratedRegions:  prev.MigratedRegions + migrated,
		DiffusedRegions:  prev.DiffusedRegions + diffused,
		RegionCosts:      append([]RegionCost(nil), e.costAcc...),
		Repairs:          e.repairAcc,
		CVBefore:         prev.CVBefore,
		Rewires:          prev.Rewires,
		WeightActualCorr: weightCorr,
	}
	for i := 0; i < n; i++ {
		res.Rewires += rewires[i]
	}
	res.Phases = prev.Phases
	res.Phases.Setup += phases.Setup
	res.Phases.Redistribution += phases.Redistribution
	res.Phases.NodeConnection += phases.NodeConnection
	res.Phases.RegionConnection += phases.RegionConnection
	res.Phases.Other += phases.Other
	res.TotalTime = res.Phases.Total()
	res.NodeLoads = make([]float64, opts.Procs)
	for i := 0; i < n; i++ {
		res.NodeLoads[rg.Owner[i]] += float64(branches[i].Len())
	}
	res.CVAfter = metrics.CV(res.NodeLoads)
	e.res = res
	return nil
}

// nodeCounts returns the committed tree size per region — the per-vertex
// migration payload when repartitioning or diffusing between rounds
// (nil-tree regions, i.e. before round 0 commits, count zero).
func (e *RRTEngine) nodeCounts() []int {
	n := e.rg.NumRegions()
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		if e.opts.Star {
			if e.starTrees[i] != nil {
				counts[i] = len(e.starTrees[i].Nodes)
			}
		} else if e.trees[i] != nil {
			counts[i] = e.trees[i].Len()
		}
	}
	return counts
}

// roundTree returns a round-local working copy of region i's committed
// branch: a fresh single-node tree on round 0 (exactly the one-shot
// starting state), a deep node copy afterwards so an aborted round
// never mutates committed state shared with published results.
func (e *RRTEngine) roundTree(i int) *rrt.Tree {
	if e.trees[i] == nil {
		reg := e.rg.Region(i)
		return rrt.NewTree(reg.Apex, reg.ID)
	}
	return &rrt.Tree{Nodes: append([]rrt.Node(nil), e.trees[i].Nodes...)}
}

// roundStarTree is roundTree for RRT* branches (costs copied too).
func (e *RRTEngine) roundStarTree(i int) *rrt.StarTree {
	if e.starTrees[i] == nil {
		reg := e.rg.Region(i)
		return &rrt.StarTree{
			Nodes: []rrt.Node{{Q: reg.Apex.Clone(), Parent: -1, Region: reg.ID}},
			Cost:  []float64{0},
		}
	}
	return &rrt.StarTree{
		Nodes: append([]rrt.Node(nil), e.starTrees[i].Nodes...),
		Cost:  append([]float64(nil), e.starTrees[i].Cost...),
	}
}
