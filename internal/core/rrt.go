package core

import (
	"parmp/internal/cspace"
	"parmp/internal/region"
	"parmp/internal/rrt"
	"parmp/internal/sched"
)

// RRTResult is the outcome of a parallel radial RRT run.
type RRTResult struct {
	// Branches holds each region's grown subtree, indexed by region ID.
	Branches []*rrt.Tree
	// Bridges are successful cross-region connections (regionA, nodeA,
	// regionB, nodeB). Bridges that would close a cycle in the
	// region-level tree are pruned (Algorithm 2, lines 15-17).
	Bridges [][4]int
	// PrunedCycles counts bridge candidates discarded to keep the
	// region-level structure a tree.
	PrunedCycles int

	RegionGraph *region.Graph
	Phases      PhaseBreakdown
	TotalTime   float64
	ProcStats   []sched.WorkerStats
	// PhaseReports holds every phase's virtual-time runtime report, in
	// replay order (see PRMResult.PhaseReports).
	PhaseReports []PhaseReport
	// NodeLoads[p] counts tree nodes on processor p after the run.
	NodeLoads         []float64
	CVBefore, CVAfter float64
	RegionRemote      int
	EdgeCut           int
	MigratedRegions   int
	// DiffusedRegions counts ownership transfers due to the
	// between-rounds diffusive rebalance (Options.Rebalance).
	DiffusedRegions int
	// RegionCosts[i] summarizes region i's observed construct-phase task
	// costs over all committed rounds (see PRMResult.RegionCosts).
	RegionCosts []RegionCost
	// Rewires counts RRT* parent improvements (0 for plain RRT).
	Rewires int
	// TreesMet counts regions whose RRT-Connect tree pairs have bridged
	// (0 for single-tree RRT).
	TreesMet int
	// GoalConnected reports that the region containing the goal rooted
	// its goal-side tree at the goal configuration and that pair met —
	// i.e. the merged forest contains a path from the root to the exact
	// goal (RRT-Connect only).
	GoalConnected bool
	// WeightActualCorr is the Pearson correlation between the k-ray
	// weight estimate and the measured branch cost — the paper's evidence
	// that the estimator is poor (only populated when Strategy is
	// Repartition).
	WeightActualCorr float64
	// Repairs summarizes the incremental-repair work committed by
	// ApplyDelta calls (zero while the world never mutates).
	Repairs RepairStats
}

// TotalNodes sums the nodes of all branches.
func (r *RRTResult) TotalNodes() int {
	total := 0
	for _, t := range r.Branches {
		if t != nil {
			total += t.Len()
		}
	}
	return total
}

// ParallelRRT runs the uniform radial subdivision parallel RRT
// (Algorithm 2) rooted at root with the configured load balancing. Like
// ParallelPRM it is a phase pipeline over the scheduler runtime: weight,
// repartition, branch growth (stealable) and branch connection all
// execute through the runtime, sharing the PRM pipeline's skeleton.
//
// ParallelRRT is exactly one growth round of an RRTEngine; long-lived
// callers that want to keep extending the same branches (or cancel
// mid-build) should construct the engine directly.
func ParallelRRT(s *cspace.Space, root cspace.Config, opts Options) (*RRTResult, error) {
	eng, err := NewRRTEngine(s, root, opts)
	if err != nil {
		return nil, err
	}
	if err := eng.GrowRound(nil); err != nil {
		return nil, err
	}
	return eng.Result(), nil
}

// assignContiguous partitions regions into equal-count contiguous chunks
// of a BFS sweep over the region graph.
func assignContiguous(rg *region.Graph, procs int) {
	n := rg.NumRegions()
	order := make([]int, 0, n)
	seen := make([]bool, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			order = append(order, cur)
			for _, nb := range rg.Adjacent(cur) {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	for rank, ri := range order {
		owner := rank * procs / n
		if owner >= procs {
			owner = procs - 1
		}
		rg.Owner[ri] = owner
	}
}
