package core

import (
	"math"

	"parmp/internal/cspace"
	"parmp/internal/graph"
	"parmp/internal/metrics"
	"parmp/internal/region"
	"parmp/internal/repart"
	"parmp/internal/rng"
	"parmp/internal/rrt"
	"parmp/internal/sched"
	"parmp/internal/work"
)

// RRTResult is the outcome of a parallel radial RRT run.
type RRTResult struct {
	// Branches holds each region's grown subtree, indexed by region ID.
	Branches []*rrt.Tree
	// Bridges are successful cross-region connections (regionA, nodeA,
	// regionB, nodeB). Bridges that would close a cycle in the
	// region-level tree are pruned (Algorithm 2, lines 15-17).
	Bridges [][4]int
	// PrunedCycles counts bridge candidates discarded to keep the
	// region-level structure a tree.
	PrunedCycles int

	RegionGraph *region.Graph
	Phases      PhaseBreakdown
	TotalTime   float64
	ProcStats   []sched.WorkerStats
	// PhaseReports holds every phase's virtual-time runtime report, in
	// replay order (see PRMResult.PhaseReports).
	PhaseReports []PhaseReport
	// NodeLoads[p] counts tree nodes on processor p after the run.
	NodeLoads         []float64
	CVBefore, CVAfter float64
	RegionRemote      int
	EdgeCut           int
	MigratedRegions   int
	// Rewires counts RRT* parent improvements (0 for plain RRT).
	Rewires int
	// WeightActualCorr is the Pearson correlation between the k-ray
	// weight estimate and the measured branch cost — the paper's evidence
	// that the estimator is poor (only populated when Strategy is
	// Repartition).
	WeightActualCorr float64
}

// TotalNodes sums the nodes of all branches.
func (r *RRTResult) TotalNodes() int {
	total := 0
	for _, t := range r.Branches {
		if t != nil {
			total += t.Len()
		}
	}
	return total
}

// ParallelRRT runs the uniform radial subdivision parallel RRT
// (Algorithm 2) rooted at root with the configured load balancing. Like
// ParallelPRM it is a phase pipeline over the scheduler runtime: weight,
// repartition, branch growth (stealable) and branch connection all
// execute through the runtime, sharing the PRM pipeline's skeleton.
func ParallelRRT(s *cspace.Space, root cspace.Config, opts Options) (*RRTResult, error) {
	opts = opts.Defaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res := &RRTResult{}
	pl := newPipeline(opts)

	// --- Setup: radial subdivision about the root. The subdivision
	// sphere lives in the full d-dimensional C-space ("a hypersphere is
	// created in d-dimensional C-space centered at q_root"), so cones are
	// joint-space sectors for articulated robots.
	apex := root.Clone()
	setupRNG := rng.Derive(opts.Seed, 0xabcdef)
	rg := region.RadialSubdivision(apex, region.RadialSpec{
		Regions:      opts.Regions,
		K:            opts.RegionK,
		Radius:       opts.Radius,
		OverlapAngle: opts.Overlap,
	}, setupRNG)
	// The naive mapping groups spatially adjacent cones on the same
	// processor (contiguous blocks of a BFS sweep over the region graph),
	// mirroring the paper's mesh-aligned distribution. This is what makes
	// workload heterogeneity hit whole processors rather than averaging
	// out across random cone assignments.
	assignContiguous(rg, opts.Procs)
	res.RegionGraph = rg
	n := rg.NumRegions()
	res.Phases.Setup = pl.barrier()

	// --- Weight phase with the k-ray estimate (computed up front: unlike
	// PRM there is no cheap sampling phase whose output predicts work,
	// which is exactly the paper's point). The ray probe is a workspace
	// concept, so it only applies when the C-space is the workspace
	// (point robots); articulated robots fall back to uniform weights,
	// making repartitioning a no-op for them.
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	if s.Dim() == s.Env.Dim() {
		weights = repart.KRayWeights(s.Env, rg, opts.KRays, opts.Seed)
	}
	rg.SetWeights(weights)
	res.CVBefore = metrics.CV(rg.LoadPerProcessor(opts.Procs))
	if opts.Strategy == Repartition {
		// The weight pass itself costs k rays per region on the owner.
		rayCost := float64(opts.KRays) * opts.Cost.CDObstacle * float64(len(s.Env.Obstacles)+1)
		rayRep := pl.replay(phaseSpec{
			name: "weight",
			queues: queuesByOwner(opts.Procs, rg.Owner, n, func(i int) work.Task {
				return costTask(i, rayCost)
			}),
		})
		res.Phases.Redistribution = rayRep.Makespan + pl.barrier()
		// Note: unlike PRM there is no balanced-already escape hatch
		// here — the k-ray estimate CLAIMS imbalance whether or not it is
		// real, which is the paper's point. Migration proceeds whenever
		// the estimated loads look improvable.
		migrated, cost := pl.rebalance(rg, weights, nil)
		res.MigratedRegions = migrated
		res.Phases.Redistribution += cost
	}

	// --- Branch growth phase (expensive; stealable).
	params := rrt.Params{Nodes: opts.NodesPerRegion, Step: opts.Step, GoalBias: opts.GoalBias}
	results := make([]rrt.Result, n)
	rewires := make([]int, n)
	report := pl.run(phaseSpec{
		name: "construct",
		queues: queuesByOwner(opts.Procs, rg.Owner, n, func(i int) work.Task {
			return work.Task{
				ID: i,
				Run: func() (float64, int) {
					if opts.Star {
						starRes := rrt.GrowRegionStar(s, rg.Region(i),
							rrt.StarParams{Params: params, RewireRadius: opts.RewireRadius},
							rng.Derive(opts.Seed, uint64(i)))
						results[i] = rrt.Result{
							Tree:  &rrt.Tree{Nodes: starRes.Tree.Nodes},
							Work:  starRes.Work,
							Iters: starRes.Iters,
						}
						rewires[i] = starRes.Rewires
					} else {
						results[i] = rrt.GrowRegion(s, rg.Region(i), params, rng.Derive(opts.Seed, uint64(i)))
					}
					return opts.Cost.Time(results[i].Work), results[i].Tree.Len()
				},
			}
		}),
		policy: pl.stealPolicy(),
		salt:   saltRRTConstruct,
	})
	res.ProcStats = report.Workers
	res.Phases.NodeConnection = report.Makespan + pl.barrier()
	pl.applyOwnership(rg, report)
	res.EdgeCut = rg.EdgeCut()
	res.Branches = make([]*rrt.Tree, n)
	for i := 0; i < n; i++ {
		res.Branches[i] = results[i].Tree
		res.Rewires += rewires[i]
	}

	// Correlation between weight estimate and measured cost.
	if opts.Strategy == Repartition {
		costs := make([]float64, n)
		for i := 0; i < n; i++ {
			costs[i] = report.Cost[i]
		}
		res.WeightActualCorr = pearson(weights, costs)
	}

	// --- Branch connection phase with cycle pruning. The connection
	// attempts run host-parallel; the cycle check is a deterministic
	// sequential sweep in region-graph order.
	var pairs [][2]int
	rg.ForEachAdjacentPair(func(a, b int) { pairs = append(pairs, [2]int{a, b}) })
	type connResult struct {
		ia, ib int
		ok     bool
	}
	conns := make([]connResult, len(pairs))
	connectTasks := [][]work.Task{make([]work.Task, len(pairs))}
	for idx := range pairs {
		idx := idx
		a, b := pairs[idx][0], pairs[idx][1]
		connectTasks[0][idx] = work.Task{
			ID: idx,
			Run: func() (float64, int) {
				var c cspace.Counters
				target := region.ConeTarget(rg.Region(b))
				ia, ib, ok := rrt.Connect(s, res.Branches[a], res.Branches[b], target, 3, &c)
				conns[idx] = connResult{ia: ia, ib: ib, ok: ok}
				return opts.Cost.Time(c), 0
			},
		}
	}
	pl.hostExec("region-connect", connectTasks)
	uf := graph.NewUnionFind(n)
	connQueues := make([][]work.Task, opts.Procs)
	for idx := range pairs {
		a, b := pairs[idx][0], pairs[idx][1]
		cost, _ := connectTasks[0][idx].Run() // memoized after the host pass
		ownerA, ownerB := rg.Owner[a], rg.Owner[b]
		if ownerA != ownerB {
			res.RegionRemote++
			cost += opts.Profile.RemoteAccess
		} else {
			cost += opts.Profile.LocalAccess
		}
		connQueues[ownerA] = append(connQueues[ownerA], costTask(idx, cost))
		if conns[idx].ok {
			// "If any edge connection creates a cycle, the tree is pruned
			// so as to remove the cycle": keep the bridge only if it
			// merges two distinct components.
			if uf.Union(a, b) {
				res.Bridges = append(res.Bridges, [4]int{a, conns[idx].ia, b, conns[idx].ib})
			} else {
				res.PrunedCycles++
			}
		}
	}
	connRep := pl.replay(phaseSpec{name: "region-connect", queues: connQueues})
	res.Phases.RegionConnection = connRep.Makespan + pl.barrier()
	res.Phases.Other = pl.barrier()

	res.NodeLoads = make([]float64, opts.Procs)
	for i := 0; i < n; i++ {
		res.NodeLoads[rg.Owner[i]] += float64(res.Branches[i].Len())
	}
	res.CVAfter = metrics.CV(res.NodeLoads)
	res.TotalTime = res.Phases.Total()
	res.PhaseReports = pl.reports
	return res, nil
}

// assignContiguous partitions regions into equal-count contiguous chunks
// of a BFS sweep over the region graph.
func assignContiguous(rg *region.Graph, procs int) {
	n := rg.NumRegions()
	order := make([]int, 0, n)
	seen := make([]bool, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			order = append(order, cur)
			for _, nb := range rg.Adjacent(cur) {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	for rank, ri := range order {
		owner := rank * procs / n
		if owner >= procs {
			owner = procs - 1
		}
		rg.Owner[ri] = owner
	}
}

// pearson returns the Pearson correlation coefficient of xs and ys
// (0 when undefined).
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n == 0 || len(xs) != len(ys) {
		return 0
	}
	mx, my := metrics.Mean(xs), metrics.Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
