package core

import (
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/graph"
	"parmp/internal/prm"
)

// mutateAddBox clones base, adds a box obstacle, and returns the
// mutated environment with its delta.
func mutateAddBox(t *testing.T, base *env.Environment, box geom.AABB) (*env.Environment, env.Delta) {
	t.Helper()
	mutated := base.Clone()
	d, err := mutated.AddObstacle(env.BoxObstacle{Box: box})
	if err != nil {
		t.Fatal(err)
	}
	return mutated, d
}

// assertRoadmapValid fully re-checks every vertex and edge of m against
// s — the ground truth any repair must reproduce.
func assertRoadmapValid(t *testing.T, s *cspace.Space, m *prm.Roadmap) {
	t.Helper()
	for i := 0; i < m.NumNodes(); i++ {
		if !s.Valid(m.G.Vertex(graph.ID(i)).Q, nil) {
			t.Fatalf("repaired roadmap keeps blocked vertex %d", i)
		}
	}
	bad := 0
	m.G.ForEachEdge(func(a, b graph.ID, w float64) {
		if !s.LocalPlan(m.G.Vertex(a).Q, m.G.Vertex(b).Q, nil) {
			bad++
		}
	})
	if bad > 0 {
		t.Fatalf("repaired roadmap keeps %d blocked edges", bad)
	}
}

func TestPRMEngineApplyDelta(t *testing.T) {
	base := env.Free()
	s := cspace.NewPointSpace(base)
	opts := quickOpts(4, 64)
	opts.SamplesPerRegion = 8
	eng, err := NewPRMEngine(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if err := eng.GrowRound(nil); err != nil {
			t.Fatal(err)
		}
	}
	before := eng.Result()
	beforeNodes := before.Roadmap.NumNodes()

	mutated, d := mutateAddBox(t, base, geom.Box3(0.3, 0.3, 0.3, 0.6, 0.6, 0.6))
	after := s.WithEnv(mutated)
	rep, err := eng.ApplyDelta(after, d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Result()
	if res == before {
		t.Fatal("ApplyDelta did not publish a fresh result")
	}
	if res.Roadmap.NumNodes() >= beforeNodes {
		t.Fatalf("no vertices removed: %d -> %d", beforeNodes, res.Roadmap.NumNodes())
	}
	assertRoadmapValid(t, after, res.Roadmap)
	// The pre-repair result is untouched (immutability contract).
	if before.Roadmap.NumNodes() != beforeNodes {
		t.Fatal("published result mutated by repair")
	}
	// Remap fidelity: every surviving old vertex maps to the same
	// configuration in the new merged roadmap.
	if len(rep.VertexRemap) != beforeNodes {
		t.Fatalf("remap has %d entries, want %d", len(rep.VertexRemap), beforeNodes)
	}
	for old, nw := range rep.VertexRemap {
		if nw < 0 {
			continue
		}
		if !before.Roadmap.G.Vertex(graph.ID(old)).Q.Equal(res.Roadmap.G.Vertex(graph.ID(nw)).Q, 0) {
			t.Fatalf("remap %d -> %d points at a different configuration", old, nw)
		}
	}
	if rep.Stats.RemovedNodes == 0 || rep.Stats.CheckedNodes == 0 {
		t.Fatalf("stats empty: %+v", rep.Stats)
	}
	if res.Repairs.Deltas != 1 || res.Phases.Repair <= 0 {
		t.Fatalf("repair accounting missing: deltas=%d repair=%v", res.Repairs.Deltas, res.Phases.Repair)
	}
	if len(rep.TouchedVertices) == 0 {
		t.Fatal("no touched vertices despite removals")
	}

	// The engine keeps growing in the mutated world, and the grown
	// roadmap stays fully valid there.
	if err := eng.GrowRound(nil); err != nil {
		t.Fatal(err)
	}
	grown := eng.Result()
	if grown.Roadmap.NumNodes() <= res.Roadmap.NumNodes() {
		t.Fatal("post-repair round grew nothing")
	}
	assertRoadmapValid(t, after, grown.Roadmap)
}

func TestPRMEngineApplyDeltaWithCandidates(t *testing.T) {
	base := env.Free()
	s := cspace.NewPointSpace(base)
	opts := quickOpts(2, 16)
	opts.SamplesPerRegion = 10
	run := func(candidates func(ix *prm.Index, dc *cspace.DeltaChecker) []int) (*PRMResult, RepairStats) {
		eng, err := NewPRMEngine(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.GrowRound(nil); err != nil {
			t.Fatal(err)
		}
		mutated, d := mutateAddBox(t, base, geom.Box3(0.4, 0.4, 0.4, 0.62, 0.62, 0.62))
		var cand []int
		if candidates != nil {
			ix := prm.BuildIndex(eng.Result().Roadmap)
			cand = candidates(ix, cspace.NewDeltaChecker(s, d))
		}
		rep, err := eng.ApplyDelta(s.WithEnv(mutated), d, cand, nil)
		if err != nil {
			t.Fatal(err)
		}
		return eng.Result(), rep.Stats
	}
	full, fullStats := run(nil)
	scoped, scopedStats := run(func(ix *prm.Index, dc *cspace.DeltaChecker) []int {
		return ix.AffectedVertices(dc)
	})
	// The kd-scoped candidate set must reach the same repaired roadmap.
	if full.Roadmap.NumNodes() != scoped.Roadmap.NumNodes() ||
		full.Roadmap.NumEdges() != scoped.Roadmap.NumEdges() {
		t.Fatalf("candidate-scoped repair diverged: %d/%d nodes, %d/%d edges",
			scoped.Roadmap.NumNodes(), full.Roadmap.NumNodes(),
			scoped.Roadmap.NumEdges(), full.Roadmap.NumEdges())
	}
	if scopedStats.CheckedNodes > fullStats.CheckedNodes {
		t.Fatalf("candidates increased work: %d > %d", scopedStats.CheckedNodes, fullStats.CheckedNodes)
	}
}

func TestPRMEngineApplyDeltaRemovalOnly(t *testing.T) {
	base := env.MedCube()
	s := cspace.NewPointSpace(base)
	eng, err := NewPRMEngine(s, quickOpts(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.GrowRound(nil); err != nil {
		t.Fatal(err)
	}
	nodes := eng.Result().Roadmap.NumNodes()
	edges := eng.Result().Roadmap.NumEdges()

	mutated := base.Clone()
	d, err := mutated.RemoveObstacle(0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.ApplyDelta(s.WithEnv(mutated), d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VertexRemap != nil {
		t.Fatal("removal-only delta produced a non-identity remap")
	}
	if got := eng.Result().Roadmap; got.NumNodes() != nodes || got.NumEdges() != edges {
		t.Fatal("removal-only delta changed the roadmap")
	}
	if rep.Stats.CheckedNodes != 0 || rep.Stats.Work.CDCalls != 0 {
		t.Fatalf("removal-only repair did collision work: %+v", rep.Stats)
	}
}

func TestPRMEngineApplyDeltaCancellation(t *testing.T) {
	base := env.Free()
	s := cspace.NewPointSpace(base)
	eng, err := NewPRMEngine(s, quickOpts(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.GrowRound(nil); err != nil {
		t.Fatal(err)
	}
	before := eng.Result()
	reports := len(before.PhaseReports)

	mutated, d := mutateAddBox(t, base, geom.Box3(0.3, 0.3, 0.3, 0.7, 0.7, 0.7))
	stop := make(chan struct{})
	close(stop)
	if _, err := eng.ApplyDelta(s.WithEnv(mutated), d, nil, stop); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if eng.Result() != before {
		t.Fatal("canceled repair replaced the published result")
	}
	if len(eng.pl.reports) != reports {
		t.Fatal("canceled repair leaked phase reports")
	}
	// A later, uncanceled repair still works.
	if _, err := eng.ApplyDelta(s.WithEnv(mutated), d, nil, nil); err != nil {
		t.Fatal(err)
	}
	assertRoadmapValid(t, s.WithEnv(mutated), eng.Result().Roadmap)
}

// assertForestValid fully re-checks every branch and bridge of an RRT
// result against s.
func assertForestValid(t *testing.T, s *cspace.Space, res *RRTResult) {
	t.Helper()
	for bi, tree := range res.Branches {
		if tree == nil {
			continue
		}
		for i, nd := range tree.Nodes {
			if i == 0 {
				continue // the root stays by contract even if blocked
			}
			if !s.Valid(nd.Q, nil) {
				t.Fatalf("branch %d keeps blocked node %d", bi, i)
			}
			if nd.Parent > 0 && !s.LocalPlan(tree.Nodes[nd.Parent].Q, nd.Q, nil) {
				t.Fatalf("branch %d keeps blocked edge %d->%d", bi, nd.Parent, i)
			}
		}
	}
	for _, br := range res.Bridges {
		a, ia, b, ib := br[0], br[1], br[2], br[3]
		qa := res.Branches[a].Nodes[ia].Q
		qb := res.Branches[b].Nodes[ib].Q
		if !s.LocalPlan(qa, qb, nil) {
			t.Fatalf("bridge %v is blocked", br)
		}
	}
}

func repairRRTOpts(procs, regions int) Options {
	o := quickOpts(procs, regions)
	o.NodesPerRegion = 30
	o.Step = 0.05
	o.Radius = 0.9
	return o
}

func TestRRTEngineApplyDelta(t *testing.T) {
	base := env.Free()
	s := cspace.NewPointSpace(base)
	eng, err := NewRRTEngine(s, geom.V(0.1, 0.1, 0.1), repairRRTOpts(4, 16))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if err := eng.GrowRound(nil); err != nil {
			t.Fatal(err)
		}
	}
	before := eng.Result()
	beforeNodes := before.TotalNodes()

	mutated, d := mutateAddBox(t, base, geom.Box3(0.35, 0.35, 0.35, 0.65, 0.65, 0.65))
	after := s.WithEnv(mutated)
	rep, err := eng.ApplyDelta(after, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Result()
	if res.TotalNodes() >= beforeNodes {
		t.Fatalf("no nodes pruned: %d -> %d", beforeNodes, res.TotalNodes())
	}
	assertForestValid(t, after, res)
	if before.TotalNodes() != beforeNodes {
		t.Fatal("published result mutated by repair")
	}
	if rep.Stats.RemovedNodes == 0 {
		t.Fatalf("stats empty: %+v", rep.Stats)
	}
	if res.Repairs.Deltas != 1 || res.Phases.Repair <= 0 {
		t.Fatal("repair accounting missing")
	}

	// Growth resumes in the mutated world and stays valid there.
	if err := eng.GrowRound(nil); err != nil {
		t.Fatal(err)
	}
	assertForestValid(t, after, eng.Result())
}

func TestRRTStarEngineApplyDeltaCosts(t *testing.T) {
	base := env.Free()
	s := cspace.NewPointSpace(base)
	opts := repairRRTOpts(2, 8)
	opts.Star = true
	eng, err := NewRRTEngine(s, geom.V(0.1, 0.1, 0.1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.GrowRound(nil); err != nil {
		t.Fatal(err)
	}
	mutated, d := mutateAddBox(t, base, geom.Box3(0.4, 0.4, 0.4, 0.6, 0.6, 0.6))
	after := s.WithEnv(mutated)
	if _, err := eng.ApplyDelta(after, d, nil); err != nil {
		t.Fatal(err)
	}
	// Cost-to-root must be consistent with the repaired parent edges.
	for i, st := range eng.starTrees {
		if st == nil {
			continue
		}
		if len(st.Cost) != len(st.Nodes) {
			t.Fatalf("region %d: %d costs for %d nodes", i, len(st.Cost), len(st.Nodes))
		}
		for j, nd := range st.Nodes {
			if nd.Parent < 0 {
				if st.Cost[j] != 0 {
					t.Fatalf("region %d root cost %v", i, st.Cost[j])
				}
				continue
			}
			want := st.Cost[nd.Parent] + after.Distance(st.Nodes[nd.Parent].Q, nd.Q)
			if diff := st.Cost[j] - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("region %d node %d cost %v, want %v", i, j, st.Cost[j], want)
			}
		}
	}
	if err := eng.GrowRound(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRRTConnectEngineApplyDelta(t *testing.T) {
	base := env.Free()
	s := cspace.NewPointSpace(base)
	root, goal := geom.V(0.1, 0.1, 0.1), geom.V(0.9, 0.9, 0.9)
	eng, err := NewRRTConnectEngine(s, root, goal, repairRRTOpts(4, 16))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if err := eng.GrowRound(nil); err != nil {
			t.Fatal(err)
		}
	}
	before := eng.Result()

	mutated, d := mutateAddBox(t, base, geom.Box3(0.35, 0.35, 0.35, 0.65, 0.65, 0.65))
	after := s.WithEnv(mutated)
	rep, err := eng.ApplyDelta(after, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Result()
	assertForestValid(t, after, res)
	if res.TotalNodes() >= before.TotalNodes() {
		t.Fatalf("no nodes pruned: %d -> %d", before.TotalNodes(), res.TotalNodes())
	}
	if res.TreesMet > before.TreesMet {
		t.Fatal("repair invented met pairs")
	}
	_ = rep
	// Pairs keep growing (un-met pairs resume) and stay valid.
	if err := eng.GrowRound(nil); err != nil {
		t.Fatal(err)
	}
	assertForestValid(t, after, eng.Result())
}
