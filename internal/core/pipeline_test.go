package core

import (
	"runtime"
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/obsv"
	"parmp/internal/sched"
	"parmp/internal/steal"
)

func TestMaxRoundsDefaultsAndMapping(t *testing.T) {
	if got := (Options{}).Defaults().MaxRounds; got != 4 {
		t.Fatalf("default MaxRounds = %d, want 4", got)
	}
	if got := (Options{MaxRounds: 9}).Defaults().MaxRounds; got != 9 {
		t.Fatalf("explicit MaxRounds overridden: %d", got)
	}
	if got := (Options{MaxRounds: -1}).Defaults().MaxRounds; got != -1 {
		t.Fatalf("negative MaxRounds should survive Defaults: %d", got)
	}
	// Runtime convention: 0 = unbounded.
	if got := (Options{MaxRounds: -1}).maxRounds(); got != 0 {
		t.Fatalf("negative MaxRounds should map to unbounded (0), got %d", got)
	}
	if got := (Options{MaxRounds: 7}).maxRounds(); got != 7 {
		t.Fatalf("maxRounds() = %d, want 7", got)
	}
}

func TestMaxRoundsSweepable(t *testing.T) {
	// MaxRounds is a first-class ablation knob: any bound must leave the
	// planning output untouched (it only changes who gives up stealing
	// when) while remaining deterministic.
	s := cspace.NewPointSpace(env.MedCube())
	base := quickOpts(4, 64)
	base.Strategy = WorkStealing
	base.Policy = steal.RandK{K: 2}
	var ref *PRMResult
	for _, rounds := range []int{1, 4, -1} {
		opts := base
		opts.MaxRounds = rounds
		res, err := ParallelPRM(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Roadmap.NumNodes() != ref.Roadmap.NumNodes() ||
			res.Roadmap.NumEdges() != ref.Roadmap.NumEdges() {
			t.Fatalf("MaxRounds=%d changed the roadmap: %d/%d vs %d/%d", rounds,
				res.Roadmap.NumNodes(), res.Roadmap.NumEdges(),
				ref.Roadmap.NumNodes(), ref.Roadmap.NumEdges())
		}
	}
}

func TestPRMPhaseReportsExposed(t *testing.T) {
	// The pipeline used to discard every phase's sched.Report after
	// accounting; results now keep them all, in replay order, so
	// load-balance metrics derive from a finished run without rerunning.
	s := cspace.NewPointSpace(env.MedCube())
	opts := quickOpts(4, 64)
	opts.Strategy = WorkStealing
	opts.Policy = steal.RandK{K: 2}
	res, err := ParallelPRM(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantPhases := []string{"sample", "construct", "region-connect"}
	if len(res.PhaseReports) != len(wantPhases) {
		t.Fatalf("got %d phase reports (%v), want %d", len(res.PhaseReports), res.PhaseReports, len(wantPhases))
	}
	for i, pr := range res.PhaseReports {
		if pr.Phase != wantPhases[i] {
			t.Errorf("phase %d = %q, want %q", i, pr.Phase, wantPhases[i])
		}
		if pr.Round != i {
			t.Errorf("phase %q Round = %d, want %d", pr.Phase, pr.Round, i)
		}
		if pr.Report.TotalTasks == 0 {
			t.Errorf("phase %q report has no tasks", pr.Phase)
		}
		if len(pr.Report.Workers) != opts.Procs {
			t.Errorf("phase %q report covers %d workers, want %d", pr.Phase, len(pr.Report.Workers), opts.Procs)
		}
	}
	// The construct report is the one already surfaced as ProcStats.
	construct := res.PhaseReports[1].Report
	if len(construct.Workers) != len(res.ProcStats) || construct.Workers[0] != res.ProcStats[0] {
		t.Errorf("construct phase report disagrees with ProcStats")
	}
	// Derived metrics must come out finite and sane via internal/obsv.
	for _, pr := range res.PhaseReports {
		m := obsv.Analyze(pr.Report)
		if m.Utilization <= 0 || m.Utilization > 1+1e-9 {
			t.Errorf("phase %q utilization = %v, want in (0, 1]", pr.Phase, m.Utilization)
		}
		if m.Imbalance < 1 {
			t.Errorf("phase %q imbalance = %v, want >= 1", pr.Phase, m.Imbalance)
		}
	}
}

func TestRRTPhaseReportsExposed(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed30())
	opts := rrtOpts(4, 24)
	opts.Strategy = Repartition
	res, err := ParallelRRT(s, geom.V(0.5, 0.5, 0.5), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Repartition adds the k-ray weight phase ahead of construct.
	wantPhases := []string{"weight", "construct", "region-connect"}
	if len(res.PhaseReports) != len(wantPhases) {
		t.Fatalf("got %d phase reports, want %d", len(res.PhaseReports), len(wantPhases))
	}
	for i, pr := range res.PhaseReports {
		if pr.Phase != wantPhases[i] {
			t.Errorf("phase %d = %q, want %q", i, pr.Phase, wantPhases[i])
		}
		if pr.Round != i {
			t.Errorf("phase %q Round = %d, want %d", pr.Phase, pr.Round, i)
		}
	}
	tb := obsv.PhaseTable("rrt phases", []obsv.Phase{
		{Name: res.PhaseReports[0].Phase, Report: res.PhaseReports[0].Report},
		{Name: res.PhaseReports[1].Phase, Report: res.PhaseReports[1].Report},
	})
	if len(tb.Rows) != 2 {
		t.Fatalf("phase table rows = %d, want 2", len(tb.Rows))
	}
}

// phaseParticipation counts host workers that executed at least one task
// in each observed phase.
func phaseParticipation(reports map[string]sched.Report) map[string]int {
	out := map[string]int{}
	for name, rep := range reports {
		for _, ws := range rep.Workers {
			if ws.TasksLocal+ws.TasksStolen > 0 {
				out[name]++
			}
		}
	}
	return out
}

func TestPRMHostPhasesRunConcurrently(t *testing.T) {
	// The acceptance check for the pipeline refactor: with HostWorkers set,
	// PRM sampling AND region connection (not just node connection) execute
	// through the host executor with real multi-worker participation.
	hw := runtime.GOMAXPROCS(0)
	if hw < 2 {
		hw = 4
	}
	reports := map[string]sched.Report{}
	hostPhaseObserver = func(phase string, rep sched.Report) { reports[phase] = rep }
	defer func() { hostPhaseObserver = nil }()

	s := cspace.NewPointSpace(env.MedCube())
	opts := quickOpts(4, 64)
	opts.HostWorkers = hw
	if _, err := ParallelPRM(s, opts); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"sample", "construct", "region-connect"} {
		if _, ok := reports[phase]; !ok {
			t.Fatalf("phase %q never reached the host executor (got %v)", phase, reports)
		}
	}
	// 64 regions over 4 queues (sample/construct) and a round-robin reshard
	// of the pair tasks (region-connect): every phase has enough work that
	// at least two host workers must have executed tasks.
	checkParticipation(t, reports, "sample", "construct", "region-connect")
}

// checkParticipation asserts multi-worker participation per phase. On a
// single-CPU host goroutines only interleave at preemption points, so one
// worker regularly drains a short phase alone — participation there is
// scheduler luck, not a pipeline property, and the assertion is skipped.
func checkParticipation(t *testing.T, reports map[string]sched.Report, phases ...string) {
	t.Helper()
	if runtime.NumCPU() < 2 {
		t.Logf("single-CPU host: skipping multi-worker participation check")
		return
	}
	part := phaseParticipation(reports)
	for _, phase := range phases {
		if part[phase] < 2 {
			t.Errorf("phase %q: only %d host workers participated", phase, part[phase])
		}
	}
}

func TestRRTHostPhasesRunConcurrently(t *testing.T) {
	hw := runtime.GOMAXPROCS(0)
	if hw < 2 {
		hw = 4
	}
	reports := map[string]sched.Report{}
	hostPhaseObserver = func(phase string, rep sched.Report) { reports[phase] = rep }
	defer func() { hostPhaseObserver = nil }()

	s := cspace.NewPointSpace(env.Mixed30())
	opts := rrtOpts(4, 24)
	opts.HostWorkers = hw
	if _, err := ParallelRRT(s, geom.V(0.5, 0.5, 0.5), opts); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"construct", "region-connect"} {
		if _, ok := reports[phase]; !ok {
			t.Fatalf("phase %q never reached the host executor (got %v)", phase, reports)
		}
	}
	checkParticipation(t, reports, "construct", "region-connect")
}
