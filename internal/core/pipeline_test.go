package core

import (
	"runtime"
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/sched"
	"parmp/internal/steal"
)

func TestMaxRoundsDefaultsAndMapping(t *testing.T) {
	if got := (Options{}).Defaults().MaxRounds; got != 4 {
		t.Fatalf("default MaxRounds = %d, want 4", got)
	}
	if got := (Options{MaxRounds: 9}).Defaults().MaxRounds; got != 9 {
		t.Fatalf("explicit MaxRounds overridden: %d", got)
	}
	if got := (Options{MaxRounds: -1}).Defaults().MaxRounds; got != -1 {
		t.Fatalf("negative MaxRounds should survive Defaults: %d", got)
	}
	// Runtime convention: 0 = unbounded.
	if got := (Options{MaxRounds: -1}).maxRounds(); got != 0 {
		t.Fatalf("negative MaxRounds should map to unbounded (0), got %d", got)
	}
	if got := (Options{MaxRounds: 7}).maxRounds(); got != 7 {
		t.Fatalf("maxRounds() = %d, want 7", got)
	}
}

func TestMaxRoundsSweepable(t *testing.T) {
	// MaxRounds is a first-class ablation knob: any bound must leave the
	// planning output untouched (it only changes who gives up stealing
	// when) while remaining deterministic.
	s := cspace.NewPointSpace(env.MedCube())
	base := quickOpts(4, 64)
	base.Strategy = WorkStealing
	base.Policy = steal.RandK{K: 2}
	var ref *PRMResult
	for _, rounds := range []int{1, 4, -1} {
		opts := base
		opts.MaxRounds = rounds
		res, err := ParallelPRM(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Roadmap.NumNodes() != ref.Roadmap.NumNodes() ||
			res.Roadmap.NumEdges() != ref.Roadmap.NumEdges() {
			t.Fatalf("MaxRounds=%d changed the roadmap: %d/%d vs %d/%d", rounds,
				res.Roadmap.NumNodes(), res.Roadmap.NumEdges(),
				ref.Roadmap.NumNodes(), ref.Roadmap.NumEdges())
		}
	}
}

// phaseParticipation counts host workers that executed at least one task
// in each observed phase.
func phaseParticipation(reports map[string]sched.Report) map[string]int {
	out := map[string]int{}
	for name, rep := range reports {
		for _, ws := range rep.Workers {
			if ws.TasksLocal+ws.TasksStolen > 0 {
				out[name]++
			}
		}
	}
	return out
}

func TestPRMHostPhasesRunConcurrently(t *testing.T) {
	// The acceptance check for the pipeline refactor: with HostWorkers set,
	// PRM sampling AND region connection (not just node connection) execute
	// through the host executor with real multi-worker participation.
	hw := runtime.GOMAXPROCS(0)
	if hw < 2 {
		hw = 4
	}
	reports := map[string]sched.Report{}
	hostPhaseObserver = func(phase string, rep sched.Report) { reports[phase] = rep }
	defer func() { hostPhaseObserver = nil }()

	s := cspace.NewPointSpace(env.MedCube())
	opts := quickOpts(4, 64)
	opts.HostWorkers = hw
	if _, err := ParallelPRM(s, opts); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"sample", "construct", "region-connect"} {
		if _, ok := reports[phase]; !ok {
			t.Fatalf("phase %q never reached the host executor (got %v)", phase, reports)
		}
	}
	part := phaseParticipation(reports)
	// 64 regions over 4 queues (sample/construct) and a round-robin reshard
	// of the pair tasks (region-connect): every phase has enough work that
	// at least two host workers must have executed tasks.
	for _, phase := range []string{"sample", "construct", "region-connect"} {
		if part[phase] < 2 {
			t.Errorf("phase %q: only %d host workers participated", phase, part[phase])
		}
	}
}

func TestRRTHostPhasesRunConcurrently(t *testing.T) {
	hw := runtime.GOMAXPROCS(0)
	if hw < 2 {
		hw = 4
	}
	reports := map[string]sched.Report{}
	hostPhaseObserver = func(phase string, rep sched.Report) { reports[phase] = rep }
	defer func() { hostPhaseObserver = nil }()

	s := cspace.NewPointSpace(env.Mixed30())
	opts := rrtOpts(4, 24)
	opts.HostWorkers = hw
	if _, err := ParallelRRT(s, geom.V(0.5, 0.5, 0.5), opts); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"construct", "region-connect"} {
		if _, ok := reports[phase]; !ok {
			t.Fatalf("phase %q never reached the host executor (got %v)", phase, reports)
		}
	}
	part := phaseParticipation(reports)
	for _, phase := range []string{"construct", "region-connect"} {
		if part[phase] < 2 {
			t.Errorf("phase %q: only %d host workers participated", phase, part[phase])
		}
	}
}
