package core

import (
	"math"
	"testing"

	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/graph"
	"parmp/internal/steal"
	"parmp/internal/work"
)

func quickOpts(procs, regions int) Options {
	return Options{
		Procs:            procs,
		Regions:          regions,
		SamplesPerRegion: 4,
		ConnectK:         3,
		Seed:             1,
		Profile:          work.Hopper(),
	}
}

func TestParallelPRMBasic(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	res, err := ParallelPRM(s, quickOpts(4, 64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Roadmap.NumNodes() == 0 {
		t.Fatal("no roadmap nodes")
	}
	if res.Roadmap.NumEdges() == 0 {
		t.Fatal("no roadmap edges")
	}
	if res.TotalTime <= 0 {
		t.Fatal("no virtual time accumulated")
	}
	if res.Phases.NodeConnection <= 0 || res.Phases.Sampling <= 0 {
		t.Fatalf("phases missing: %+v", res.Phases)
	}
	if math.Abs(res.TotalTime-res.Phases.Total()) > 1e-9 {
		t.Fatal("TotalTime != phase sum")
	}
	if len(res.NodeLoads) != 4 {
		t.Fatalf("NodeLoads = %v", res.NodeLoads)
	}
	var loadSum float64
	for _, l := range res.NodeLoads {
		loadSum += l
	}
	if int(loadSum) != res.Roadmap.NumNodes() {
		t.Fatalf("load sum %v != nodes %d", loadSum, res.Roadmap.NumNodes())
	}
}

func TestParallelPRMDeterministicAcrossStrategies(t *testing.T) {
	// The roadmap content must be identical for every strategy: load
	// balancing changes WHO does the work, never WHAT is computed.
	s := cspace.NewPointSpace(env.MedCube())
	base := quickOpts(4, 64)

	noLB, err := ParallelPRM(s, base)
	if err != nil {
		t.Fatal(err)
	}
	rp := base
	rp.Strategy = Repartition
	repart, err := ParallelPRM(s, rp)
	if err != nil {
		t.Fatal(err)
	}
	ws := base
	ws.Strategy = WorkStealing
	ws.Policy = steal.Hybrid{K: 4}
	stolen, err := ParallelPRM(s, ws)
	if err != nil {
		t.Fatal(err)
	}
	if noLB.Roadmap.NumNodes() != repart.Roadmap.NumNodes() ||
		noLB.Roadmap.NumNodes() != stolen.Roadmap.NumNodes() {
		t.Fatalf("node counts differ: %d %d %d",
			noLB.Roadmap.NumNodes(), repart.Roadmap.NumNodes(), stolen.Roadmap.NumNodes())
	}
	if noLB.Roadmap.NumEdges() != repart.Roadmap.NumEdges() ||
		noLB.Roadmap.NumEdges() != stolen.Roadmap.NumEdges() {
		t.Fatalf("edge counts differ: %d %d %d",
			noLB.Roadmap.NumEdges(), repart.Roadmap.NumEdges(), stolen.Roadmap.NumEdges())
	}
}

func TestRepartitioningImprovesImbalancedPRM(t *testing.T) {
	// med-cube with naive column partitioning is imbalanced; the paper
	// reports 2.9x at 96 procs. At small scale we just require a solid
	// improvement and a CV drop.
	s := cspace.NewPointSpace(env.MedCube())
	base := quickOpts(8, 128)
	base.SamplesPerRegion = 5
	noLB, err := ParallelPRM(s, base)
	if err != nil {
		t.Fatal(err)
	}
	rp := base
	rp.Strategy = Repartition
	res, err := ParallelPRM(s, rp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.NodeConnection >= noLB.Phases.NodeConnection {
		t.Fatalf("repartitioning should cut node connection: %v vs %v",
			res.Phases.NodeConnection, noLB.Phases.NodeConnection)
	}
	if res.CVAfter >= res.CVBefore {
		t.Fatalf("CV should drop: before %v after %v", res.CVBefore, res.CVAfter)
	}
	if res.MigratedRegions == 0 {
		t.Fatal("repartitioning should migrate regions")
	}
}

func TestWorkStealingImprovesImbalancedPRM(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	base := quickOpts(8, 128)
	base.SamplesPerRegion = 5
	noLB, err := ParallelPRM(s, base)
	if err != nil {
		t.Fatal(err)
	}
	ws := base
	ws.Strategy = WorkStealing
	ws.Policy = steal.Hybrid{K: 8}
	res, err := ParallelPRM(s, ws)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.NodeConnection >= noLB.Phases.NodeConnection {
		t.Fatalf("stealing should cut node connection: %v vs %v",
			res.Phases.NodeConnection, noLB.Phases.NodeConnection)
	}
	stolen := 0
	for _, ps := range res.ProcStats {
		stolen += ps.TasksStolen
	}
	if stolen == 0 {
		t.Fatal("no tasks were stolen on an imbalanced workload")
	}
}

func TestFreeEnvironmentNoLBOverheadPRM(t *testing.T) {
	// Paper: in the free environment all LB variants show no significant
	// overhead over the baseline.
	s := cspace.NewPointSpace(env.Free())
	base := quickOpts(8, 128)
	noLB, err := ParallelPRM(s, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Options{
		func() Options { o := base; o.Strategy = Repartition; return o }(),
		func() Options { o := base; o.Strategy = WorkStealing; o.Policy = steal.Diffusive{}; return o }(),
	} {
		res, err := ParallelPRM(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalTime > noLB.TotalTime*1.35 {
			t.Fatalf("%v overhead too high: %v vs %v", cfg.Strategy, res.TotalTime, noLB.TotalTime)
		}
	}
}

func TestPRMRemoteAccessesIncreaseWithRepartitioning(t *testing.T) {
	// Paper Fig 7(b): repartitioning increases region-connection remote
	// accesses because migration raises the edge cut relative to the
	// contiguous naive mapping.
	s := cspace.NewPointSpace(env.MedCube())
	base := quickOpts(8, 128)
	base.SamplesPerRegion = 5
	noLB, _ := ParallelPRM(s, base)
	rp := base
	rp.Strategy = Repartition
	rp.Partitioner = PartitionLPT // scatters regions, maximizing the effect
	res, _ := ParallelPRM(s, rp)
	if res.RegionRemote <= noLB.RegionRemote {
		t.Fatalf("remote accesses should rise: %d vs %d", res.RegionRemote, noLB.RegionRemote)
	}
	if res.EdgeCut <= noLB.EdgeCut {
		t.Fatalf("edge cut should rise: %d vs %d", res.EdgeCut, noLB.EdgeCut)
	}
}

func TestOptionsValidation(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	if _, err := ParallelPRM(s, Options{Procs: 8, Regions: 4}); err == nil {
		t.Fatal("Regions < Procs should fail")
	}
	bad := quickOpts(2, 8)
	bad.Strategy = WorkStealing // no policy
	if _, err := ParallelPRM(s, bad); err == nil {
		t.Fatal("WorkStealing without policy should fail")
	}
}

func TestStrategyString(t *testing.T) {
	if NoLB.String() != "no-lb" || Repartition.String() != "repartition" ||
		WorkStealing.String() != "work-stealing" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(99).String() == "" {
		t.Fatal("unknown strategy should still print")
	}
}

func rrtOpts(procs, regions int) Options {
	return Options{
		Procs:          procs,
		Regions:        regions,
		NodesPerRegion: 12,
		Step:           0.05,
		Radius:         0.45,
		Seed:           3,
		Profile:        work.OpteronCluster(),
	}
}

func TestParallelRRTBasic(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed30())
	root := geom.V(0.5, 0.5, 0.5)
	res, err := ParallelRRT(s, root, rrtOpts(4, 32))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalNodes() < 32 {
		t.Fatalf("total nodes = %d, too few", res.TotalNodes())
	}
	if len(res.Branches) != 32 {
		t.Fatalf("branches = %d", len(res.Branches))
	}
	if res.TotalTime <= 0 {
		t.Fatal("no virtual time")
	}
	// Every branch must be rooted at the root configuration.
	for i, tr := range res.Branches {
		if tr.Len() > 0 && !tr.Nodes[0].Q.Equal(root, 1e-9) {
			t.Fatalf("branch %d not rooted at root", i)
		}
	}
}

func TestParallelRRTBridgesAcyclic(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	res, err := ParallelRRT(s, geom.V(0.5, 0.5, 0.5), rrtOpts(4, 24))
	if err != nil {
		t.Fatal(err)
	}
	// Region-level bridges must form a forest: edges <= regions - 1.
	if len(res.Bridges) >= 24 {
		t.Fatalf("too many bridges for a forest: %d", len(res.Bridges))
	}
	// In a free environment most adjacent branches connect, so pruning
	// must have occurred given the region graph has > n-1 edges.
	if res.PrunedCycles == 0 {
		t.Fatal("expected some pruned cycles in free space")
	}
}

func TestRRTStealingHelpsInMixed(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed())
	base := rrtOpts(8, 64)
	noLB, err := ParallelRRT(s, geom.V(0.3, 0.7, 0.5), base)
	if err != nil {
		t.Fatal(err)
	}
	ws := base
	ws.Strategy = WorkStealing
	ws.Policy = steal.Diffusive{}
	res, err := ParallelRRT(s, geom.V(0.3, 0.7, 0.5), ws)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.NodeConnection >= noLB.Phases.NodeConnection {
		t.Fatalf("stealing should cut growth phase: %v vs %v",
			res.Phases.NodeConnection, noLB.Phases.NodeConnection)
	}
}

func TestRRTRepartitioningWeightIsPoor(t *testing.T) {
	// The paper's key negative result: the k-ray weight correlates poorly
	// with actual branch cost, so repartitioning gives little benefit or
	// hurts. We check the correlation is far from 1.
	s := cspace.NewPointSpace(env.Mixed())
	rp := rrtOpts(8, 64)
	rp.Strategy = Repartition
	res, err := ParallelRRT(s, geom.V(0.3, 0.7, 0.5), rp)
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightActualCorr > 0.85 {
		t.Fatalf("k-ray weight unexpectedly good: corr=%v", res.WeightActualCorr)
	}
}

func TestParallelRRTDeterministic(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed30())
	a, err := ParallelRRT(s, geom.V(0.5, 0.5, 0.5), rrtOpts(4, 24))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParallelRRT(s, geom.V(0.5, 0.5, 0.5), rrtOpts(4, 24))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalNodes() != b.TotalNodes() || a.TotalTime != b.TotalTime {
		t.Fatal("RRT runs with same seed should be identical")
	}
}

func TestHostPrePassIdenticalResults(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	base := quickOpts(4, 64)
	seq, err := ParallelPRM(s, base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.HostWorkers = 4
	conc, err := ParallelPRM(s, par)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Roadmap.NumNodes() != conc.Roadmap.NumNodes() ||
		seq.Roadmap.NumEdges() != conc.Roadmap.NumEdges() {
		t.Fatalf("host pre-pass changed the roadmap: %d/%d vs %d/%d",
			seq.Roadmap.NumNodes(), seq.Roadmap.NumEdges(),
			conc.Roadmap.NumNodes(), conc.Roadmap.NumEdges())
	}
	if seq.TotalTime != conc.TotalTime {
		t.Fatalf("host pre-pass changed virtual time: %v vs %v", seq.TotalTime, conc.TotalTime)
	}
}

func TestRRTHostPrePassIdentical(t *testing.T) {
	s := cspace.NewPointSpace(env.Mixed30())
	base := rrtOpts(4, 24)
	seq, err := ParallelRRT(s, geom.V(0.5, 0.5, 0.5), base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.HostWorkers = 3
	conc, err := ParallelRRT(s, geom.V(0.5, 0.5, 0.5), par)
	if err != nil {
		t.Fatal(err)
	}
	if seq.TotalNodes() != conc.TotalNodes() || seq.TotalTime != conc.TotalTime {
		t.Fatal("host pre-pass changed RRT results")
	}
}

func TestRRTExtractPath(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	root := geom.V(0.5, 0.5, 0.5)
	opts := rrtOpts(4, 32)
	opts.NodesPerRegion = 20
	res, err := ParallelRRT(s, root, opts)
	if err != nil {
		t.Fatal(err)
	}
	goal := geom.V(0.7, 0.6, 0.5)
	var c cspace.Counters
	path, ok := res.ExtractPath(s, goal, &c)
	if !ok {
		t.Fatal("free-space goal near the root should be reachable")
	}
	if !path[0].Equal(root, 1e-9) {
		t.Fatalf("path must start at root, got %v", path[0])
	}
	if !path[len(path)-1].Equal(goal, 1e-9) {
		t.Fatal("path must end at goal")
	}
	if !cspace.PathValid(s, path, nil) {
		t.Fatal("extracted path invalid")
	}
	if c.KNNQueries == 0 {
		t.Fatal("extraction work not metered")
	}
}

func TestRRTExtractPathInvalidGoal(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	res, err := ParallelRRT(s, geom.V(0.05, 0.05, 0.05), rrtOpts(4, 24))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.ExtractPath(s, geom.V(0.5, 0.5, 0.5), nil); ok {
		t.Fatal("goal inside the obstacle must fail")
	}
}

func TestNarrowPassageSamplerInPipeline(t *testing.T) {
	// The bridge sampler yields fewer but better-placed nodes; the
	// pipeline must accept it and keep load accounting consistent.
	s := cspace.NewPointSpace(env.MedCube())
	opts := quickOpts(4, 64)
	opts.SamplesPerRegion = 12
	opts.Sampler = cspace.MixedSampler{
		Primary:   cspace.UniformSampler{},
		Secondary: cspace.GaussianSampler{},
		Fraction:  0.5,
	}
	res, err := ParallelPRM(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Roadmap.NumNodes() == 0 {
		t.Fatal("mixed sampler produced no nodes")
	}
	var loadSum float64
	for _, l := range res.NodeLoads {
		loadSum += l
	}
	if int(loadSum) != res.Roadmap.NumNodes() {
		t.Fatal("load accounting inconsistent with custom sampler")
	}
	// All roadmap nodes must be valid.
	for i := 0; i < res.Roadmap.NumNodes(); i++ {
		// Sampling ran under the mixed strategy; every accepted node is
		// validity-checked by construction, spot-check a few.
		if i%17 == 0 && !s.Valid(res.Roadmap.G.Vertex(graph.ID(i)).Q, nil) {
			t.Fatalf("node %d invalid", i)
		}
	}
}

func TestParallelRRTStar(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	root := geom.V(0.5, 0.5, 0.5)
	base := rrtOpts(4, 24)
	plain, err := ParallelRRT(s, root, base)
	if err != nil {
		t.Fatal(err)
	}
	star := base
	star.Star = true
	starRes, err := ParallelRRT(s, root, star)
	if err != nil {
		t.Fatal(err)
	}
	if starRes.Rewires == 0 {
		t.Fatal("RRT* in free space should rewire")
	}
	if plain.Rewires != 0 {
		t.Fatal("plain RRT must not rewire")
	}
	// RRT* does strictly more work per node, so the growth phase costs more.
	if starRes.Phases.NodeConnection <= plain.Phases.NodeConnection {
		t.Fatalf("RRT* growth %v should exceed plain %v",
			starRes.Phases.NodeConnection, plain.Phases.NodeConnection)
	}
}

func TestAdaptivePRM(t *testing.T) {
	s := cspace.NewPointSpace(env.MedCube())
	base := quickOpts(4, 27)
	base.Regions = 27
	uniform, err := ParallelPRM(s, base)
	if err != nil {
		t.Fatal(err)
	}
	ad := base
	ad.Adaptive = true
	ad.AdaptiveDepth = 2
	adaptive, err := ParallelPRM(s, ad)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.RegionGraph.NumRegions() <= uniform.RegionGraph.NumRegions() {
		t.Fatalf("adaptive should refine: %d vs %d regions",
			adaptive.RegionGraph.NumRegions(), uniform.RegionGraph.NumRegions())
	}
	if adaptive.Roadmap.NumNodes() == 0 {
		t.Fatal("adaptive run produced no roadmap")
	}
}

func TestPRMWithOverlap(t *testing.T) {
	// Overlapping region boxes let boundary samples land outside the core
	// cell, which eases cross-region connection. The run must stay
	// consistent and produce at least as many boundary bridges.
	s := cspace.NewPointSpace(env.Free())
	base := quickOpts(4, 27)
	base.SamplesPerRegion = 8
	noOv, err := ParallelPRM(s, base)
	if err != nil {
		t.Fatal(err)
	}
	ov := base
	ov.Overlap = 0.25
	withOv, err := ParallelPRM(s, ov)
	if err != nil {
		t.Fatal(err)
	}
	if withOv.Roadmap.NumNodes() != noOv.Roadmap.NumNodes() {
		// Same sampling attempts in free space -> same node count.
		t.Fatalf("node counts differ: %d vs %d", withOv.Roadmap.NumNodes(), noOv.Roadmap.NumNodes())
	}
	// Overlapped sampling boxes must exceed core cells.
	r0 := withOv.RegionGraph.Region(0)
	if r0.Box.Volume() <= r0.Core.Volume() {
		t.Fatal("overlap did not expand sampling boxes")
	}
}

func TestRRTOptionsValidation(t *testing.T) {
	s := cspace.NewPointSpace(env.Free())
	bad := rrtOpts(4, 2) // Regions < Procs
	if _, err := ParallelRRT(s, geom.V(0.5, 0.5, 0.5), bad); err == nil {
		t.Fatal("Regions < Procs should fail for RRT too")
	}
}
