// Package core is the paper's primary contribution: parallel
// subdivision-based PRM and radial RRT drivers with pluggable load
// balancing — none, adaptive work stealing (RAND-K / DIFFUSIVE / HYBRID
// victim policies), or bulk-synchronous repartitioning driven by
// per-region work estimates.
//
// Execution is phased exactly as in the paper:
//
//	PRM:  subdivide → sample → [weight → repartition → migrate] →
//	      node connection (stealable) → region connection → merge
//	RRT:  radial subdivide → [k-ray weight → repartition] →
//	      branch growth (stealable) → branch connection → merge
//
// The expensive phases run on a simulated distributed machine
// (internal/dist) in virtual time, with every region task charged the
// work the sequential planner actually performed, so strong-scaling
// sweeps reproduce the paper's load-balance phenomenology on any host.
package core

import (
	"errors"
	"fmt"

	"parmp/internal/cspace"
	"parmp/internal/sched"
	"parmp/internal/steal"
	"parmp/internal/work"
)

// Strategy selects the load balancing approach.
type Strategy int

const (
	// NoLB runs the naive static partition without balancing.
	NoLB Strategy = iota
	// Repartition redistributes regions bulk-synchronously using a
	// per-region work estimate before the expensive phase.
	Repartition
	// WorkStealing steals regions (ownership transfer) during the
	// expensive phase using Options.Policy.
	WorkStealing
)

// String names the strategy for reports.
func (s Strategy) String() string {
	switch s {
	case NoLB:
		return "no-lb"
	case Repartition:
		return "repartition"
	case WorkStealing:
		return "work-stealing"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// CostModelKind selects the per-region cost estimate driving
// repartitioning (and the diffusive rebalance equilibrium).
type CostModelKind int

const (
	// CostStatic uses the paper's static estimators: this round's sample
	// counts for PRM, the round-0 k-random-ray probe for the tree
	// planners. The paper's own result is that the k-ray estimate is
	// noisy enough to make RRT repartitioning counter-productive.
	CostStatic CostModelKind = iota
	// CostObserved closes the loop: an EWMA (internal/costmodel) over the
	// per-region task times the scheduler actually observed in prior
	// rounds replaces the static estimate from round 1 on (round 0 has no
	// observations, so it falls back to the static estimator and stays
	// bit-identical to CostStatic). With CostObserved the tree planners
	// also re-weigh and re-repartition every round, not just round 0.
	CostObserved
)

// String names the cost model for reports.
func (k CostModelKind) String() string {
	switch k {
	case CostStatic:
		return "static"
	case CostObserved:
		return "observed"
	}
	return fmt.Sprintf("costmodel(%d)", int(k))
}

// RebalanceKind selects the between-rounds rebalance step applied to the
// construct phase's task queues before the round starts.
type RebalanceKind int

const (
	// RebalanceNone starts each round from the current region ownership.
	RebalanceNone RebalanceKind = iota
	// RebalanceDiffusive shifts queued construct tasks along the steal
	// mesh (steal.MeshNeighbors) toward the cost-model equilibrium before
	// the round runs — neighbor-local pairwise balancing, the scheme the
	// diffusive load-balancing literature prefers over bulk-synchronous
	// redistribution when estimates are noisy. Composes with any
	// Strategy: after a bulk repartition it polishes the residual
	// imbalance; without one it is the only balancer.
	RebalanceDiffusive
)

// String names the rebalance step for reports.
func (k RebalanceKind) String() string {
	switch k {
	case RebalanceNone:
		return "none"
	case RebalanceDiffusive:
		return "diffusive"
	}
	return fmt.Sprintf("rebalance(%d)", int(k))
}

// Partitioner selects the repartitioning algorithm.
type Partitioner int

const (
	// PartitionSpatial balances weights while preserving spatial
	// contiguity of the region graph (lower edge cut; the default).
	PartitionSpatial Partitioner = iota
	// PartitionLPT is pure longest-processing-time greedy balancing,
	// ignoring edge cuts (the paper's model-analysis partitioner).
	PartitionLPT
)

// Options configures a parallel planning run.
type Options struct {
	// Procs is the number of virtual processors.
	Procs int
	// Regions is the over-decomposition degree (total region count); it
	// should be >= Procs. For grid subdivision the actual count is the
	// nearest grid product >= Regions.
	Regions int
	// Overlap is the inter-region sampling overlap fraction for grid
	// subdivision, or the cone overlap angle (radians) for radial.
	Overlap float64
	// Adaptive refines grid cells that straddle obstacle boundaries
	// (one extra split level along the longest axis, up to AdaptiveDepth)
	// so granularity concentrates where workloads are heterogeneous.
	Adaptive      bool
	AdaptiveDepth int

	// Strategy picks the load balancer; Policy the steal victim policy
	// (required for WorkStealing); Partitioner the repartition algorithm.
	Strategy    Strategy
	Policy      steal.Policy
	Partitioner Partitioner
	// StealChunk is the fraction of a victim's pending regions taken per
	// steal. The default (a vanishing fraction, i.e. one region per
	// steal) matches the paper's region-at-a-time ownership transfer;
	// raise it toward 0.5 for classic steal-half behaviour (see the
	// ablation benchmarks).
	StealChunk float64
	// MaxRounds bounds how many consecutive unsuccessful victim rounds a
	// thief tries before giving up for good (default 4, the paper's
	// bounded-retry behaviour; set negative for unbounded retries until
	// global termination). Sweepable for ablations.
	MaxRounds int

	// CostModel selects what the repartitioner balances on: the static
	// estimators (default; the paper's setup) or the observed per-region
	// task times of prior rounds (CostObserved — see internal/costmodel).
	// Zero-valued fields reproduce the legacy behaviour bit-identically.
	CostModel CostModelKind
	// CostAlpha is the observed cost model's EWMA smoothing factor in
	// (0, 1]; 0 selects costmodel.DefaultAlpha.
	CostAlpha float64
	// Rebalance optionally adds a between-rounds diffusive rebalance of
	// the construct queues along the steal mesh (RebalanceDiffusive).
	Rebalance RebalanceKind
	// DiffuseSweeps bounds the diffusive rebalance's mesh passes per
	// round (0 = 3). Each pass terminates early once no move improves a
	// neighbor pair.
	DiffuseSweeps int

	// Profile and Cost define the virtual machine.
	Profile work.MachineProfile
	Cost    work.CostModel

	// Seed makes the run deterministic.
	Seed uint64

	// HostWorkers > 1 executes every heavy phase's region closures
	// (PRM sampling, node connection, region connection; RRT branch
	// growth and connection) concurrently on that many OS goroutines
	// before the virtual-time replay, using the real work-stealing
	// executor (internal/exec). Results and the reported virtual times
	// are bit-identical to the sequential run — region tasks are
	// deterministic and memoized — so this is purely a wall-clock
	// accelerator on multicore hosts.
	HostWorkers int

	// Runtime overrides the scheduler backend executing the virtual-time
	// phases (nil = the discrete-event simulator in internal/dist). Any
	// sched.Runtime — including a future network-distributed backend —
	// plugs in here without the planners changing.
	Runtime sched.Runtime

	// PRM parameters.
	SamplesPerRegion int
	ConnectK         int
	BoundaryK        int
	// Sampler generates PRM candidates (nil = uniform). Narrow-passage
	// samplers concentrate nodes near obstacles.
	Sampler cspace.Sampler
	// BoundaryFrontier caps how many of a region's nodes participate in
	// each cross-region connection attempt (the boundary frontier).
	BoundaryFrontier int

	// RRT parameters.
	NodesPerRegion int
	Step           float64
	GoalBias       float64
	RegionK        int     // adjacent cone count in the radial region graph
	Radius         float64 // radial subdivision sphere radius
	KRays          int     // rays per region for the RRT weight estimate
	// Star grows asymptotically-optimal RRT* branches (choose-parent +
	// rewiring) instead of plain RRT. More local-planning work per node,
	// and even more heterogeneous region costs.
	Star bool
	// RewireRadius is the RRT* neighbourhood radius (0 = 3 x Step).
	RewireRadius float64
}

// Defaults fills unset fields with sensible values.
func (o Options) Defaults() Options {
	if o.Procs <= 0 {
		o.Procs = 4
	}
	if o.Regions <= 0 {
		o.Regions = 8 * o.Procs
	}
	if o.Profile.Name == "" {
		o.Profile = work.Hopper()
	}
	if (o.Cost == work.CostModel{}) {
		o.Cost = work.DefaultCostModel()
	}
	if o.SamplesPerRegion <= 0 {
		o.SamplesPerRegion = 10
	}
	if o.ConnectK <= 0 {
		o.ConnectK = 5
	}
	if o.BoundaryK <= 0 {
		o.BoundaryK = 2
	}
	if o.BoundaryFrontier <= 0 {
		o.BoundaryFrontier = 1
	}
	if o.NodesPerRegion <= 0 {
		o.NodesPerRegion = 20
	}
	if o.Step <= 0 {
		o.Step = 0.05
	}
	if o.GoalBias <= 0 {
		o.GoalBias = 0.1
	}
	if o.RegionK <= 0 {
		o.RegionK = 4
	}
	if o.Radius <= 0 {
		o.Radius = 0.5
	}
	if o.KRays <= 0 {
		o.KRays = 8
	}
	if o.StealChunk <= 0 {
		o.StealChunk = 1e-9 // one region per steal
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 4
	}
	return o
}

// maxRounds maps the Options convention (0 = default 4, negative =
// unbounded) onto the runtime convention (0 = unbounded).
func (o Options) maxRounds() int {
	if o.MaxRounds < 0 {
		return 0
	}
	return o.MaxRounds
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	if o.Procs <= 0 {
		return errors.New("core: Procs must be positive")
	}
	if o.Regions < o.Procs {
		return fmt.Errorf("core: Regions (%d) must be >= Procs (%d) for over-decomposition", o.Regions, o.Procs)
	}
	if o.Strategy == WorkStealing && o.Policy == nil {
		return errors.New("core: WorkStealing requires a steal policy")
	}
	return nil
}

// PhaseBreakdown records virtual time per phase (Fig. 7(a)).
type PhaseBreakdown struct {
	Setup            float64 // subdivision + initial partition barrier
	Sampling         float64 // PRM sampling sub-phase
	Redistribution   float64 // weight computation + migration (repartition)
	NodeConnection   float64 // PRM node connection / RRT branch growth
	RegionConnection float64 // cross-region connection
	Repair           float64 // incremental revalidation after ApplyDelta
	Other            float64 // barriers and merge
}

// Total sums all phases.
func (p PhaseBreakdown) Total() float64 {
	return p.Setup + p.Sampling + p.Redistribution + p.NodeConnection + p.RegionConnection + p.Repair + p.Other
}
