// Package costmodel fits per-region cost estimates from the task times
// the scheduler actually observed in prior rounds, closing the paper's
// open load-balancing loop: its static estimators (sample counts for
// PRM, k random rays for RRT) are noisy enough that repartitioning on
// them can hurt — the paper's own negative result — while observed costs
// are strongly autocorrelated round to round, so an exponentially
// weighted moving average over them is a far better predictor of next
// round's work.
//
// The model consumes sched.Report's per-task Elapsed times attributed by
// TaskRegion (internal/core folds them per region before calling
// Observe) and produces the weight vector internal/core feeds to
// region.Graph.SetWeights before repartitioning. Cold start falls back
// to the caller's static estimate: Blend rescales static weights into
// observed units for regions the model has not seen yet, so a partially
// warm model never compares microseconds against raw sample counts.
package costmodel

// Model is a pluggable per-region cost estimator fed one observation
// vector per round. Implementations must be deterministic: the virtual
// time pipeline replays rounds bit-identically, so the model may not
// consult wall clocks or randomness of its own.
type Model interface {
	// Observe folds one round's measured per-region costs into the model.
	// observed[i] reports whether region i actually executed this round
	// (costs[i] is meaningless when false) — unobserved regions keep
	// their previous estimate.
	Observe(costs []float64, observed []bool)
	// Estimate returns the model's current cost estimate for region i and
	// whether the model has ever observed that region.
	Estimate(i int) (float64, bool)
	// Blend combines the model with a static fallback estimate: observed
	// regions get the model's estimate, unobserved ones get the static
	// weight rescaled into the model's units. A nil static slice makes
	// unobserved regions default to the mean observed cost.
	Blend(static []float64) []float64
	// Rounds is how many observation rounds the model has absorbed.
	Rounds() int
	// Name identifies the model in experiment tables.
	Name() string
}

// DefaultAlpha is the EWMA smoothing factor used when none is given:
// half the weight on the newest round, which tracks the strong
// round-to-round autocorrelation of region costs while still damping
// one-round noise spikes.
const DefaultAlpha = 0.5

// EWMA is the default Model: an exponentially weighted moving average of
// each region's observed cost, est ← α·cost + (1−α)·est.
type EWMA struct {
	alpha  float64
	est    []float64
	seen   []bool
	rounds int
}

// NewEWMA returns an EWMA model over n regions. alpha outside (0, 1]
// selects DefaultAlpha.
func NewEWMA(n int, alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &EWMA{
		alpha: alpha,
		est:   make([]float64, n),
		seen:  make([]bool, n),
	}
}

// Observe implements Model. The first observation of a region seeds the
// estimate directly (no decay from an arbitrary zero), later ones decay.
func (m *EWMA) Observe(costs []float64, observed []bool) {
	any := false
	for i := range m.est {
		if i >= len(costs) || i >= len(observed) || !observed[i] {
			continue
		}
		c := costs[i]
		if c < 0 {
			c = 0
		}
		if m.seen[i] {
			m.est[i] = m.alpha*c + (1-m.alpha)*m.est[i]
		} else {
			m.est[i] = c
			m.seen[i] = true
		}
		any = true
	}
	if any {
		m.rounds++
	}
}

// Estimate implements Model.
func (m *EWMA) Estimate(i int) (float64, bool) {
	if i < 0 || i >= len(m.est) || !m.seen[i] {
		return 0, false
	}
	return m.est[i], true
}

// Rounds implements Model.
func (m *EWMA) Rounds() int { return m.rounds }

// Name implements Model.
func (m *EWMA) Name() string { return "ewma" }

// Blend implements Model. Static weights are rescaled by the ratio of
// the mean observed estimate to the mean static weight over observed
// regions, mapping the static estimator's unit (sample counts, ray
// costs) into the model's unit so a half-warm weight vector is
// commensurable. Degenerate scales (nothing observed yet, zero-mean
// static) fall back to a copy of static, or to the mean observed
// estimate when static is nil.
func (m *EWMA) Blend(static []float64) []float64 {
	n := len(m.est)
	out := make([]float64, n)
	var obsSum, statSum float64
	obsCount := 0
	for i := 0; i < n; i++ {
		if m.seen[i] {
			obsSum += m.est[i]
			obsCount++
			if static != nil && i < len(static) {
				statSum += static[i]
			}
		}
	}
	if obsCount == 0 {
		for i := 0; i < n; i++ {
			if static != nil && i < len(static) {
				out[i] = static[i]
			}
		}
		return out
	}
	meanObs := obsSum / float64(obsCount)
	scale := 1.0
	if static != nil && statSum > 0 {
		scale = obsSum / statSum
	}
	for i := 0; i < n; i++ {
		switch {
		case m.seen[i]:
			out[i] = m.est[i]
		case static != nil && i < len(static) && statSum > 0:
			out[i] = static[i] * scale
		default:
			out[i] = meanObs
		}
	}
	return out
}
