package costmodel

import (
	"math"
	"testing"
)

func TestCostModelEWMAObserve(t *testing.T) {
	m := NewEWMA(3, 0.5)
	if m.Rounds() != 0 {
		t.Fatalf("fresh model rounds = %d, want 0", m.Rounds())
	}
	if _, ok := m.Estimate(0); ok {
		t.Fatal("fresh model claims an estimate")
	}

	// First observation seeds directly — no decay from zero.
	m.Observe([]float64{10, 20, 0}, []bool{true, true, false})
	if e, ok := m.Estimate(0); !ok || e != 10 {
		t.Fatalf("Estimate(0) = %v,%v, want 10,true", e, ok)
	}
	if e, ok := m.Estimate(1); !ok || e != 20 {
		t.Fatalf("Estimate(1) = %v,%v, want 20,true", e, ok)
	}
	if _, ok := m.Estimate(2); ok {
		t.Fatal("unobserved region claims an estimate")
	}
	if m.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", m.Rounds())
	}

	// Second observation decays: 0.5*20 + 0.5*10 = 15.
	m.Observe([]float64{20, 20, 30}, []bool{true, false, true})
	if e, _ := m.Estimate(0); e != 15 {
		t.Fatalf("Estimate(0) after decay = %v, want 15", e)
	}
	// Unobserved region keeps its previous estimate.
	if e, _ := m.Estimate(1); e != 20 {
		t.Fatalf("Estimate(1) unchanged = %v, want 20", e)
	}
	if e, _ := m.Estimate(2); e != 30 {
		t.Fatalf("Estimate(2) seeded = %v, want 30", e)
	}
	if m.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2", m.Rounds())
	}

	// Out-of-range indices and bad alphas never panic.
	if _, ok := m.Estimate(-1); ok {
		t.Fatal("Estimate(-1) claims ok")
	}
	if _, ok := m.Estimate(99); ok {
		t.Fatal("Estimate(99) claims ok")
	}
	if a := NewEWMA(2, -1).alpha; a != DefaultAlpha {
		t.Fatalf("alpha fallback = %v, want %v", a, DefaultAlpha)
	}
}

func TestCostModelBlendColdStart(t *testing.T) {
	m := NewEWMA(4, 0.5)
	static := []float64{1, 2, 3, 4}

	// Fully cold: Blend is a copy of static.
	got := m.Blend(static)
	for i, w := range static {
		if got[i] != w {
			t.Fatalf("cold Blend = %v, want %v", got, static)
		}
	}

	// Half warm: regions 0,1 observed at mean 30; static mean over the
	// observed regions is (1+2)/2, so unobserved static weights scale by
	// 60/3 = 20 to land in observed units.
	m.Observe([]float64{20, 40, 0, 0}, []bool{true, true, false, false})
	got = m.Blend(static)
	want := []float64{20, 40, 3 * 20, 4 * 20}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("half-warm Blend = %v, want %v", got, want)
		}
	}

	// Nil static: unobserved regions get the mean observed estimate.
	got = m.Blend(nil)
	want = []float64{20, 40, 30, 30}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("nil-static Blend = %v, want %v", got, want)
		}
	}

	// Zero-mean static degenerates to the copy path, not a divide by zero.
	zero := []float64{0, 0, 0, 0}
	got = m.Blend(zero)
	want = []float64{20, 40, 30, 30}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("zero-static Blend = %v, want %v", got, want)
		}
	}
}

// TestCostModelTracksDrift pins the point of the EWMA over a last-value
// model: a one-round noise spike moves the estimate only alpha of the
// way, while a sustained level change converges geometrically.
func TestCostModelTracksDrift(t *testing.T) {
	m := NewEWMA(1, 0.5)
	all := []bool{true}
	m.Observe([]float64{100}, all)
	m.Observe([]float64{1000}, all) // spike
	if e, _ := m.Estimate(0); e != 550 {
		t.Fatalf("post-spike estimate = %v, want 550", e)
	}
	for i := 0; i < 20; i++ {
		m.Observe([]float64{200}, all) // new sustained level
	}
	if e, _ := m.Estimate(0); math.Abs(e-200) > 1 {
		t.Fatalf("converged estimate = %v, want ~200", e)
	}
}
