package graph

import "container/heap"

// AStar returns the minimum-weight path from a to b guided by an
// admissible heuristic h (a lower bound on remaining cost). With a nil or
// zero heuristic it degenerates to Dijkstra. ok is false when b is
// unreachable. Edge weights must be non-negative.
func (g *Graph[V]) AStar(a, b ID, h func(ID) float64) (path []ID, dist float64, ok bool) {
	n := len(g.adj)
	if int(a) >= n || int(b) >= n {
		return nil, 0, false
	}
	if h == nil {
		h = func(ID) float64 { return 0 }
	}
	prev := make([]ID, n)
	gScore := make([]float64, n)
	closed := make([]bool, n)
	for i := range prev {
		prev[i] = InvalidID
		gScore[i] = -1
	}
	gScore[a] = 0
	q := &pq{{id: a, dist: h(a)}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if closed[it.id] {
			continue
		}
		closed[it.id] = true
		if it.id == b {
			break
		}
		for _, e := range g.adj[it.id] {
			ng := gScore[it.id] + e.Weight
			if gScore[e.To] < 0 || ng < gScore[e.To] {
				gScore[e.To] = ng
				prev[e.To] = it.id
				heap.Push(q, pqItem{id: e.To, dist: ng + h(e.To)})
			}
		}
	}
	if !closed[b] {
		return nil, 0, false
	}
	for cur := b; cur != InvalidID; cur = prev[cur] {
		path = append(path, cur)
		if cur == a {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, gScore[b], true
}
